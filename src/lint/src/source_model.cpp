#include "lint/src/source_model.hpp"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <regex>
#include <string_view>
#include <utility>

namespace epp::lint::srcmodel {
namespace {

/// Two same-shape views of the source: `code` blanks comments only
/// (string literals survive, so declaration labels can be read);
/// `pure` additionally blanks string/char literal contents, so token
/// scans never match quoted or commented-out code. Line structure is
/// preserved exactly in both.
struct StrippedViews {
  std::string code;
  std::string pure;
};

StrippedViews strip(const std::string& text) {
  StrippedViews views;
  views.code = text;
  views.pure = text;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          views.code[i] = views.pure[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          views.code[i] = views.pure[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n')
          state = State::kCode;
        else
          views.code[i] = views.pure[i] = ' ';
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          views.code[i] = views.pure[i] = ' ';
          views.code[i + 1] = views.pure[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          views.code[i] = views.pure[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          views.pure[i] = ' ';
          if (next != '\n' && next != '\0') views.pure[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          views.pure[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          views.pure[i] = ' ';
          if (next != '\n' && next != '\0') views.pure[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        } else if (c != '\n') {
          views.pure[i] = ' ';
        }
        break;
    }
  }
  return views;
}

std::vector<std::size_t> line_starts(const std::string& text) {
  std::vector<std::size_t> starts{0};
  for (std::size_t i = 0; i < text.size(); ++i)
    if (text[i] == '\n') starts.push_back(i + 1);
  return starts;
}

int line_of(const std::vector<std::size_t>& starts, std::size_t pos) {
  const auto it = std::upper_bound(starts.begin(), starts.end(), pos);
  return static_cast<int>(it - starts.begin());
}

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Find the keyword owning the block opened at `brace` (skipping back
/// over an optional parenthesized head), or "" when the block belongs
/// to a function body, class, lambda, initializer, etc.
std::string block_keyword(const std::string& pure, std::size_t brace) {
  std::size_t i = brace;
  while (i > 0 &&
         std::isspace(static_cast<unsigned char>(pure[i - 1])))
    --i;
  if (i == 0) return "";
  if (pure[i - 1] == ')') {
    int depth = 0;
    std::size_t j = i;  // j-1 is ')'
    while (j > 0) {
      --j;
      if (pure[j] == ')') ++depth;
      if (pure[j] == '(') {
        --depth;
        if (depth == 0) break;
      }
    }
    if (depth != 0) return "";
    i = j;
    while (i > 0 &&
           std::isspace(static_cast<unsigned char>(pure[i - 1])))
      --i;
  }
  std::size_t end = i;
  while (i > 0 && is_ident(pure[i - 1])) --i;
  return pure.substr(i, end - i);
}

/// Count the top-level arguments of a call whose opening parenthesis is
/// at `open`; returns -1 when the parens never balance.
int count_call_args(const std::string& pure, std::size_t open) {
  int depth = 0;
  int commas = 0;
  bool any_token = false;
  for (std::size_t i = open; i < pure.size(); ++i) {
    const char c = pure[i];
    if (c == '(' || c == '[' || c == '{') {
      ++depth;
    } else if (c == ')' || c == ']' || c == '}') {
      --depth;
      if (depth == 0) return any_token ? commas + 1 : 0;
    } else if (depth == 1) {
      if (c == ',')
        ++commas;
      else if (!std::isspace(static_cast<unsigned char>(c)))
        any_token = true;
    }
  }
  return -1;
}

/// Read the argument text of a call/init whose opening '(' or '{' is at
/// `open`, up to the matching close bracket; "" when never balanced.
std::string bracket_args(const std::string& pure, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < pure.size(); ++i) {
    const char c = pure[i];
    if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
    if (c == ')' || c == ']' || c == '}' || c == '>') {
      --depth;
      if (depth == 0) return pure.substr(open + 1, i - open - 1);
    }
  }
  return "";
}

/// The identifier assigned on this line (`seed = time(nullptr)` ->
/// "seed"), or "" when the line has no simple top-level assignment.
std::string assign_target(const std::string& line_text) {
  for (std::size_t i = 1; i < line_text.size(); ++i) {
    if (line_text[i] != '=') continue;
    if (i + 1 < line_text.size() && line_text[i + 1] == '=') {
      ++i;
      continue;
    }
    const char before = line_text[i - 1];
    if (before == '=' || before == '!' || before == '<' || before == '>' ||
        before == '+' || before == '-' || before == '*' || before == '/' ||
        before == '%' || before == '&' || before == '|' || before == '^')
      continue;
    std::size_t end = i;
    while (end > 0 &&
           std::isspace(static_cast<unsigned char>(line_text[end - 1])))
      --end;
    std::size_t begin = end;
    while (begin > 0 && is_ident(line_text[begin - 1])) --begin;
    return line_text.substr(begin, end - begin);
  }
  return "";
}

/// One active guard scope (or statement-form bare .lock()).
struct GuardScope {
  std::vector<std::string> names;
  int depth = 0;
  bool bare = false;  // released by .unlock(), not by scope exit
};

const std::regex& guard_pattern() {
  static const std::regex pattern(
      R"((?:std::)?(lock_guard|unique_lock|scoped_lock|shared_lock)\s*(?:<[^;{}<>]*>)?\s+[A-Za-z_]\w*\s*[({]([^;]*?)[)}]\s*;)"
      R"(|(?:util::)?(MutexLock|SharedMutexLock)\s+[A-Za-z_]\w*\s*[({]([^;]*?)[)}]\s*;)");
  return pattern;
}

const std::regex& bare_lock_pattern() {
  static const std::regex pattern(
      R"(^\s*([A-Za-z_][\w.\->\[\]]*?)(?:\.|->)(lock|lock_shared|unlock|unlock_shared)\(\)\s*;\s*$)");
  return pattern;
}

std::vector<std::string> split_guard_args(const std::string& args) {
  std::vector<std::string> names;
  std::string current;
  int depth = 0;
  for (const char c : args) {
    if (c == '(' || c == '<' || c == '[') ++depth;
    if (c == ')' || c == '>' || c == ']') --depth;
    if (c == ',' && depth == 0) {
      names.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  names.push_back(current);
  std::vector<std::string> normalized;
  for (std::string& name : names) {
    std::string n = normalize_mutex_name(std::move(name));
    // Lock-tag arguments are not mutexes.
    if (n.empty() || n == "adopt_lock" || n == "defer_lock" ||
        n == "try_to_lock")
      continue;
    normalized.push_back(std::move(n));
  }
  return normalized;
}

}  // namespace

std::string normalize_mutex_name(std::string expr) {
  // Trim whitespace and address-of.
  std::size_t begin = 0;
  std::size_t end = expr.size();
  while (begin < end &&
         (std::isspace(static_cast<unsigned char>(expr[begin])) ||
          expr[begin] == '&' || expr[begin] == '*'))
    ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(expr[end - 1])))
    --end;
  expr = expr.substr(begin, end - begin);
  // Take the last member-access component: "this->pool.mutex_" -> "mutex_".
  std::size_t cut = 0;
  for (std::size_t i = 0; i + 1 < expr.size(); ++i) {
    if (expr[i] == '.')
      cut = i + 1;
    else if (expr[i] == '-' && expr[i + 1] == '>')
      cut = i + 2;
  }
  expr = expr.substr(cut);
  // Drop trailing array / call decoration.
  const std::size_t decoration = expr.find_first_of("([");
  if (decoration != std::string::npos) expr = expr.substr(0, decoration);
  return expr;
}

FileModel scan_file(const std::string& path, const std::string& text) {
  FileModel model;
  model.path = path;

  const StrippedViews views = strip(text);
  const std::vector<std::size_t> starts = line_starts(text);
  model.line_count = static_cast<int>(starts.size());

  // --- declarations (on `code`, labels intact) -----------------------
  {
    static const std::regex ranked(
        R"((?:util::)?Ranked(Shared)?Mutex\s+([A-Za-z_]\w*)\s*([{(]))");
    static const std::regex rank_macro(R"(EPP_LOCK_RANK\(\s*(\d+)\s*\))");
    static const std::regex label_literal("\"([^\"]*)\"");
    for (auto it = std::sregex_iterator(views.code.begin(), views.code.end(),
                                        ranked);
         it != std::sregex_iterator(); ++it) {
      MutexDecl decl;
      decl.file = path;
      decl.line = line_of(starts, static_cast<std::size_t>(it->position(2)));
      decl.name = (*it)[2];
      decl.shared = (*it)[1].matched;
      decl.ranked_type = true;
      // The initializer runs to the statement end; read the rank macro
      // and label out of it.
      const std::size_t init_begin =
          static_cast<std::size_t>(it->position(3));
      const std::size_t init_end = views.code.find(';', init_begin);
      const std::string init = views.code.substr(
          init_begin, init_end == std::string::npos
                          ? std::string::npos
                          : init_end - init_begin);
      std::smatch m;
      if (std::regex_search(init, m, rank_macro)) decl.rank = std::stoi(m[1]);
      if (std::regex_search(init, m, label_literal)) decl.label = m[1];
      model.decls.push_back(std::move(decl));
    }
    static const std::regex std_mutex(
        R"(std::(recursive_timed_mutex|recursive_mutex|timed_mutex|shared_mutex|mutex)\s+([A-Za-z_]\w*)\s*[;{(=])");
    for (auto it = std::sregex_iterator(views.code.begin(), views.code.end(),
                                        std_mutex);
         it != std::sregex_iterator(); ++it) {
      MutexDecl decl;
      decl.file = path;
      decl.line = line_of(starts, static_cast<std::size_t>(it->position(2)));
      decl.name = (*it)[2];
      decl.shared = (*it)[1] == "shared_mutex";
      decl.std_type = true;
      model.decls.push_back(std::move(decl));
    }
  }

  // --- guarded-field bindings ---------------------------------------
  {
    static const std::regex guarded(
        R"(([A-Za-z_]\w*)\s+EPP_GUARDED_BY\(\s*([^)]+?)\s*\))");
    for (auto it = std::sregex_iterator(views.code.begin(), views.code.end(),
                                        guarded);
         it != std::sregex_iterator(); ++it) {
      GuardedField field;
      field.name = (*it)[1];
      if (field.name == "define") continue;  // the macro's own definition
      field.file = path;
      field.line = line_of(starts, static_cast<std::size_t>(it->position(1)));
      field.mutex_name = normalize_mutex_name((*it)[2]);
      model.guarded.push_back(std::move(field));
    }
  }

  // --- determinism declarations (EPP-DET) ---------------------------
  {
    // util::Rng declarations. `Rng name(seed, stream);` seeds at the
    // declaration; `Rng name;` may still be seeded by a constructor
    // init list (`: name(seed, stream)`) elsewhere in the TU — only
    // when neither exists is the declaration default-seeded.
    static const std::regex rng_decl(R"(\bRng\s+([A-Za-z_]\w*)\s*([;({=]))");
    for (auto it = std::sregex_iterator(views.pure.begin(), views.pure.end(),
                                        rng_decl);
         it != std::sregex_iterator(); ++it) {
      RngDecl decl;
      decl.line = line_of(starts, static_cast<std::size_t>(it->position(1)));
      decl.name = (*it)[1];
      const char term = views.pure[static_cast<std::size_t>(it->position(2))];
      if (term == '(' || term == '{') {
        const std::string args = bracket_args(
            views.pure, static_cast<std::size_t>(it->position(2)));
        bool any = false;
        for (const char c : args)
          if (!std::isspace(static_cast<unsigned char>(c))) any = true;
        if (!any) continue;  // `Rng spawn() noexcept;` — a function
        model.seed_sinks.push_back(SeedSink{decl.line, args});
      } else if (term == ';') {
        // Seeded by a constructor init list? Match `: name(...)` or
        // `, name(...)` anywhere in the TU.
        const std::regex ctor_init("[:,]\\s*" + decl.name + "\\s*[({]");
        std::smatch m;
        std::string::const_iterator search = views.pure.cbegin();
        bool seeded = false;
        while (std::regex_search(search, views.pure.cend(), m, ctor_init)) {
          const std::size_t open = static_cast<std::size_t>(
              (search - views.pure.cbegin()) + m.position(0) + m.length(0) -
              1);
          const std::string args = bracket_args(views.pure, open);
          bool any = false;
          for (const char c : args)
            if (!std::isspace(static_cast<unsigned char>(c))) any = true;
          if (any) {
            seeded = true;
            model.seed_sinks.push_back(
                SeedSink{line_of(starts, open), args});
          }
          search += m.position(0) + m.length(0);
        }
        decl.default_seeded = !seeded;
      }
      // `=` means an initializer expression; the per-line entropy scan
      // covers what flows into it.
      model.rngs.push_back(std::move(decl));
    }

    // Associative containers whose key/iteration order matters. Angle
    // brackets are balanced by hand because template arguments nest
    // (`std::unordered_map<K, std::list<V>::iterator>`).
    static const std::regex assoc(
        R"(std::(unordered_)?(?:multi)?(?:map|set)\s*<)");
    for (auto it = std::sregex_iterator(views.pure.begin(), views.pure.end(),
                                        assoc);
         it != std::sregex_iterator(); ++it) {
      const std::size_t open =
          static_cast<std::size_t>(it->position(0)) +
          static_cast<std::size_t>(it->length(0)) - 1;
      int angle = 1;
      std::string first_arg;
      std::size_t i = open + 1;
      for (; i < views.pure.size() && angle > 0; ++i) {
        const char c = views.pure[i];
        if (c == '<') ++angle;
        if (c == '>') --angle;
        if (angle == 1 && c == ',' && first_arg.empty())
          first_arg = views.pure.substr(open + 1, i - open - 1);
        if (c == ';' || c == '{') break;  // never balanced; bail out
      }
      if (angle != 0) continue;
      if (first_arg.empty())
        first_arg = views.pure.substr(open + 1, i - 1 - open - 1);
      // The declared identifier follows the closing '>' (possibly a
      // reference/pointer parameter); anything else (`::iterator`, a
      // function name before '(') is not a variable.
      std::size_t p = i;
      while (p < views.pure.size() &&
             (std::isspace(static_cast<unsigned char>(views.pure[p])) ||
              views.pure[p] == '&' || views.pure[p] == '*'))
        ++p;
      std::size_t name_begin = p;
      while (p < views.pure.size() && is_ident(views.pure[p])) ++p;
      if (p == name_begin) continue;
      const std::string name = views.pure.substr(name_begin, p - name_begin);
      while (p < views.pure.size() &&
             std::isspace(static_cast<unsigned char>(views.pure[p])))
        ++p;
      if (p < views.pure.size() && views.pure[p] == '(')
        continue;  // a function returning the container
      ContainerDecl decl;
      decl.line = line_of(starts, name_begin);
      decl.name = name;
      decl.unordered = (*it)[1].matched;
      decl.pointer_key = first_arg.find('*') != std::string::npos;
      model.containers.push_back(std::move(decl));
    }
  }

  // --- scope walk over `pure` ---------------------------------------
  const std::string& pure = views.pure;
  model.held_by_line.resize(static_cast<std::size_t>(model.line_count));
  model.tokens.resize(static_cast<std::size_t>(model.line_count));

  int depth = 0;
  std::vector<GuardScope> guards;
  std::vector<int> loop_blocks;  // depth values of active loop bodies
  std::vector<bool> loop_keyword_line(
      static_cast<std::size_t>(model.line_count) + 1, false);

  // Determinism walk state: a loop head / lambda introduction arms a
  // pending record that the next matching '{' turns into an open scope;
  // the matching '}' closes it into the model.
  struct OpenContainerLoop {
    std::string container;
    int head_line = 0;
    int body_begin = 0;
    int depth = 0;
  };
  std::vector<OpenContainerLoop> open_container_loops;
  std::string pending_loop_container;
  int pending_loop_line = 0;
  struct OpenLambda {
    std::string name;
    int intro_line = 0;
    int body_begin = 0;
    int depth = 0;
  };
  std::vector<OpenLambda> open_lambdas;
  bool pending_lambda = false;
  std::string pending_lambda_name;
  int pending_lambda_line = 0;

  static const std::regex loop_kw(R"(\b(while|for|do)\b)");
  static const std::regex blocking_kw(
      R"((\.join|\bsleep_for|\bsleep_until|\brecv|\bpoll|\baccept|\bconnect|\bsystem|\bgetline)\s*\()");
  static const std::regex wait_kw(R"(\.(wait|wait_for|wait_until)\s*(\())");
  static const std::regex detach_kw(R"(\.detach\s*\()");
  static const std::regex cas_kw(R"(\bcompare_exchange_weak\b)");
  static const std::regex hot_kw(R"(EPP_HOT_(BEGIN|END)\(\s*(\w+)\s*\))");
  static const std::regex range_for_kw(
      R"(\bfor\s*\([^;)]*:\s*([A-Za-z_][\w.\->\[\]]*)\s*\))");
  static const std::regex iter_for_kw(
      R"(\bfor\s*\([^;]*=\s*([A-Za-z_][\w.\->]*)\.c?begin\s*\()");
  static const std::regex named_ref_lambda_kw(
      R"(\bauto\s+([A-Za-z_]\w*)\s*=\s*\[[^\]\n]*&)");
  static const std::regex inline_pool_lambda_kw(
      R"(\b(?:parallel_for|for_each_index|submit)\s*\([^;[]*\[[^\]\n]*&)");
  static const std::regex entropy_device_kw(R"(std::random_device)");
  static const std::regex entropy_time_kw(R"(\btime\s*\(\s*(?:nullptr|NULL|0|&)\s*)");
  static const std::regex entropy_clock_kw(
      R"(\b([A-Za-z_][\w:]*[Cc]lock)::now\s*\()");
  static const std::regex float_decl_kw(
      R"(\b(?:double|float|std::atomic<\s*(?:double|float)\s*>)\s+([A-Za-z_]\w*)\s*[;={])");
  static const std::regex seed_call_kw(R"((?:\.seed|\bsrand)\s*(\())");
  static const std::regex rng_temp_kw(R"(::Rng\s*(\())");

  for (int line = 1; line <= model.line_count; ++line) {
    const std::size_t begin = starts[static_cast<std::size_t>(line - 1)];
    const std::size_t end = static_cast<std::size_t>(line) < starts.size()
                                ? starts[static_cast<std::size_t>(line)]
                                : pure.size();
    const std::string line_text = pure.substr(begin, end - begin);
    model.tokens[static_cast<std::size_t>(line - 1)] = line_text;

    if (std::regex_search(line_text, loop_kw))
      loop_keyword_line[static_cast<std::size_t>(line)] = true;

    // Arm pending determinism scopes; a pending record that never meets
    // its '{' within two lines is stale (braceless statement) and drops.
    if (!pending_loop_container.empty() && line - pending_loop_line > 2)
      pending_loop_container.clear();
    if (pending_lambda && line - pending_lambda_line > 2)
      pending_lambda = false;
    {
      std::smatch m;
      if (std::regex_search(line_text, m, range_for_kw) ||
          std::regex_search(line_text, m, iter_for_kw)) {
        pending_loop_container = normalize_mutex_name(m[1]);
        pending_loop_line = line;
      }
      if (std::regex_search(line_text, m, named_ref_lambda_kw)) {
        pending_lambda = true;
        pending_lambda_name = m[1];
        pending_lambda_line = line;
      } else if (std::regex_search(line_text, m, inline_pool_lambda_kw)) {
        pending_lambda = true;
        pending_lambda_name.clear();
        pending_lambda_line = line;
      }
    }

    // Events on this line, in positional order: brace depth changes and
    // guard constructions (a guard guards everything after it).
    struct Event {
      std::size_t pos;
      int kind;  // 0 = '{', 1 = '}', 2 = guard, 3 = bare lock/unlock
      std::vector<std::string> names;
      bool unlock = false;
      bool loop_head = false;
      bool plain = false;  // keyword-less block: lambda body, init list
    };
    std::vector<Event> events;
    for (std::size_t i = 0; i < line_text.size(); ++i) {
      if (line_text[i] == '{') {
        Event event{i, 0, {}, false, false, false};
        const std::string kw = block_keyword(pure, begin + i);
        event.loop_head = kw == "while" || kw == "for" || kw == "do";
        event.plain = kw.empty();
        events.push_back(std::move(event));
      } else if (line_text[i] == '}') {
        events.push_back(Event{i, 1, {}, false, false, false});
      }
    }
    for (auto it = std::sregex_iterator(line_text.begin(), line_text.end(),
                                        guard_pattern());
         it != std::sregex_iterator(); ++it) {
      const std::string args = (*it)[2].matched ? (*it)[2] : (*it)[4];
      if (args.find("defer_lock") != std::string::npos)
        continue;  // constructed unlocked
      Event event{static_cast<std::size_t>(it->position(0)), 2,
                  split_guard_args(args), false, false};
      if (!event.names.empty()) events.push_back(std::move(event));
    }
    {
      std::smatch m;
      if (std::regex_match(line_text, m, bare_lock_pattern())) {
        const std::string op = m[2];
        Event event{static_cast<std::size_t>(m.position(1)), 3,
                    {normalize_mutex_name(m[1])},
                    op == "unlock" || op == "unlock_shared", false};
        events.push_back(std::move(event));
      }
    }
    std::sort(events.begin(), events.end(),
              [](const Event& a, const Event& b) { return a.pos < b.pos; });

    for (Event& event : events) {
      switch (event.kind) {
        case 0:
          ++depth;
          if (event.loop_head) {
            loop_blocks.push_back(depth);
            if (!pending_loop_container.empty()) {
              open_container_loops.push_back(OpenContainerLoop{
                  pending_loop_container, pending_loop_line, line, depth});
              pending_loop_container.clear();
            }
          } else if (event.plain && pending_lambda) {
            open_lambdas.push_back(OpenLambda{pending_lambda_name,
                                              pending_lambda_line, line,
                                              depth});
            pending_lambda = false;
          }
          break;
        case 1:
          --depth;
          while (!guards.empty() && guards.back().depth > depth)
            guards.pop_back();
          while (!loop_blocks.empty() && loop_blocks.back() > depth)
            loop_blocks.pop_back();
          while (!open_container_loops.empty() &&
                 open_container_loops.back().depth > depth) {
            const OpenContainerLoop& open = open_container_loops.back();
            model.container_loops.push_back(ContainerLoop{
                open.head_line, open.body_begin, line, open.container});
            open_container_loops.pop_back();
          }
          while (!open_lambdas.empty() && open_lambdas.back().depth > depth) {
            const OpenLambda& open = open_lambdas.back();
            model.pool_lambdas.push_back(PoolLambda{
                open.intro_line, open.body_begin, line, open.name});
            open_lambdas.pop_back();
          }
          break;
        case 2:
        case 3: {
          if (event.kind == 3 && event.unlock) {
            // Release the most recent matching bare acquisition.
            for (auto it = guards.rbegin(); it != guards.rend(); ++it) {
              if (it->bare && it->names.size() == 1 &&
                  it->names[0] == event.names[0]) {
                guards.erase(std::next(it).base());
                break;
              }
            }
            break;
          }
          std::vector<std::string> held;
          for (const GuardScope& guard : guards)
            held.insert(held.end(), guard.names.begin(), guard.names.end());
          for (const std::string& name : event.names) {
            Acquisition acquisition;
            acquisition.line = line;
            acquisition.mutex_name = name;
            acquisition.held = held;
            model.acquisitions.push_back(std::move(acquisition));
            held.push_back(name);  // scoped_lock(a, b): b sees a held
          }
          GuardScope scope;
          scope.names = std::move(event.names);
          scope.depth = depth;
          scope.bare = event.kind == 3;
          guards.push_back(std::move(scope));
          break;
        }
        default:
          break;
      }
    }

    std::vector<std::string>& held_now =
        model.held_by_line[static_cast<std::size_t>(line - 1)];
    for (const GuardScope& guard : guards)
      held_now.insert(held_now.end(), guard.names.begin(), guard.names.end());

    // --- per-line call sites ----------------------------------------
    if (!held_now.empty()) {
      for (auto it = std::sregex_iterator(line_text.begin(), line_text.end(),
                                          blocking_kw);
           it != std::sregex_iterator(); ++it) {
        std::string token = (*it)[1];
        while (!token.empty() && !is_ident(token.front()))
          token.erase(token.begin());
        model.blocking.push_back(BlockingCall{line, token});
      }
    }
    for (auto it = std::sregex_iterator(line_text.begin(), line_text.end(),
                                        wait_kw);
         it != std::sregex_iterator(); ++it) {
      WaitCall wait;
      wait.line = line;
      wait.token = (*it)[1];
      wait.args = count_call_args(
          pure, begin + static_cast<std::size_t>(it->position(2)));
      model.waits.push_back(std::move(wait));
    }
    if (std::regex_search(line_text, detach_kw))
      model.detaches.push_back(DetachCall{line});
    if (std::regex_search(line_text, cas_kw)) {
      CasCall cas;
      cas.line = line;
      cas.in_loop = !loop_blocks.empty();
      // A CAS in a loop *head* sits before the body's '{' — accept a
      // loop keyword within the previous few lines as evidence too.
      for (int back = std::max(1, line - 3); !cas.in_loop && back <= line;
           ++back)
        cas.in_loop = loop_keyword_line[static_cast<std::size_t>(back)];
      model.cas.push_back(cas);
    }
    for (auto it = std::sregex_iterator(line_text.begin(), line_text.end(),
                                        hot_kw);
         it != std::sregex_iterator(); ++it) {
      HotMarker marker;
      marker.line = line;
      marker.begin = (*it)[1] == "BEGIN";
      marker.label = (*it)[2];
      model.hot_markers.push_back(std::move(marker));
    }

    // --- determinism per-line facts ---------------------------------
    {
      std::smatch m;
      std::string token;
      if (std::regex_search(line_text, m, entropy_device_kw))
        token = "std::random_device";
      else if (std::regex_search(line_text, m, entropy_clock_kw))
        token = std::string(m[1]) + "::now";
      else if (std::regex_search(line_text, m, entropy_time_kw))
        token = "time";
      if (!token.empty())
        model.entropy.push_back(
            EntropyUse{line, token, assign_target(line_text)});
    }
    for (auto it = std::sregex_iterator(line_text.begin(), line_text.end(),
                                        float_decl_kw);
         it != std::sregex_iterator(); ++it)
      model.floats.push_back(FloatDecl{line, (*it)[1]});
    for (auto it = std::sregex_iterator(line_text.begin(), line_text.end(),
                                        seed_call_kw);
         it != std::sregex_iterator(); ++it)
      model.seed_sinks.push_back(SeedSink{
          line, bracket_args(
                    pure, begin + static_cast<std::size_t>(it->position(1)))});
    for (auto it = std::sregex_iterator(line_text.begin(), line_text.end(),
                                        rng_temp_kw);
         it != std::sregex_iterator(); ++it) {
      const std::string args = bracket_args(
          pure, begin + static_cast<std::size_t>(it->position(1)));
      bool any = false;
      for (const char c : args)
        if (!std::isspace(static_cast<unsigned char>(c))) any = true;
      if (any) model.seed_sinks.push_back(SeedSink{line, args});
    }
  }

  return model;
}

}  // namespace epp::lint::srcmodel
