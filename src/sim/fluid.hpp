// Fluid (mean-field ODE) fast path for very large client populations.
//
// Above a few thousand clients the discrete-event engine's cost grows
// linearly with population while the metrics it produces converge to the
// mean-field limit: per-class *masses* of clients at each station evolve
// by deterministic flow equations. This module integrates those equations
// to steady state and back-solves the RunResult fields the exact engine
// would report. It is the "fluid fast path" run_testbed switches to when
// TestbedConfig::fluid_threshold engages (see testbed.hpp), letting load
// sweeps scale to 10^6+ clients in microseconds per point.
//
// Stations and flows (per service class c):
//
//   think --1/Z_c--> app CPU --D^app_c--> db CPU --D^db_c--> disk --+
//     ^                                                             |
//     +------------------------- completion ------------------------+
//
// Processor-sharing stations serve class c at rate
// (m_c / max(1, m_total)) / D_c — full speed while total mass is below
// one server's worth, fair-shared beyond it. Admission caps (app/db
// slots) are not modelled: the stations are work-conserving either way,
// so caps shift where jobs wait without changing steady-state throughput
// or total response time. Approximations (documented in DESIGN.md):
// p90 is the exponential-tail estimate mean·ln(10), not an order
// statistic; the session cache is all-or-nothing (every session fits, or
// none does); per-request variability (operation mix, Bernoulli DB
// calls) is collapsed to class means.
#pragma once

#include "sim/trade/testbed.hpp"

namespace epp::sim::trade {

/// True when `config` asks for the fluid path: fluid_threshold > 0 and
/// the total closed-loop population reaches it.
bool fluid_engages(const TestbedConfig& config);

/// Solve `config` with the fluid model. The result has solved_by_fluid
/// set; rt_samples_s stays empty (there are no discrete samples).
RunResult run_testbed_fluid(const TestbedConfig& config);

}  // namespace epp::sim::trade
