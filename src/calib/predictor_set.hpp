// PredictorSet: the one construction path from a CalibrationBundle to
// ready predictors — the three core::Predictor methods the paper compares
// plus a svc::BatchPredictor wired over them.
//
// Predictions from a set built off a loaded bundle are bit-identical to
// one built from a fresh in-process calibration: the historical models are
// restored parameter-for-parameter (relationship 2 refitted from exactly
// the same inputs), and the LQN/hybrid methods are pure functions of the
// table-2 parameters and the server catalog.
#pragma once

#include <memory>

#include "calib/bundle.hpp"
#include "core/historical_predictor.hpp"
#include "core/hybrid_predictor.hpp"
#include "core/lqn_predictor.hpp"
#include "svc/batch_predictor.hpp"

namespace epp::calib {

struct PredictorSet {
  std::unique_ptr<core::HistoricalPredictor> historical;
  std::unique_ptr<core::LqnPredictor> lqn;
  std::unique_ptr<core::HybridPredictor> hybrid;
  /// Batch engine over the three predictors above (non-owning pointers
  /// into this set; keep the set alive as long as the engine).
  std::unique_ptr<svc::BatchPredictor> batch;
};

/// Build every predictor from the bundle: the historical predictor from
/// the persisted models, the LQN and hybrid predictors from the table-2
/// parameters with every catalog architecture registered.
PredictorSet make_predictors(const CalibrationBundle& bundle,
                             const svc::BatchOptions& batch_options = {});

}  // namespace epp::calib
