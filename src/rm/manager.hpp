// Algorithm 1: the prediction-enhanced resource-management algorithm.
//
//   1. sort the service classes in order of increasing response time goal
//   2-8. greedily allocate each class's clients to application servers,
//        selecting the server the performance model predicts can take the
//        most clients of the current class — except for the class's last
//        server, where the smallest sufficient server is chosen instead.
//
// The "slack" parameter multiplies each class's client count before
// allocation; it is the paper's tuning knob for compensating predictive
// inaccuracy and trading SLA failures against server usage (section 9).
#pragma once

#include "core/predictor.hpp"
#include "rm/types.hpp"

namespace epp::rm {

struct ManagerOptions {
  double slack = 1.0;
  double think_time_s = 7.0;
  /// Granularity of the capacity bisection in clients.
  double capacity_resolution = 1.0;
};

class ResourceManager {
 public:
  /// The predictor is the (possibly inaccurate) model the manager plans
  /// with — the paper uses the hybrid model here.
  ResourceManager(const core::Predictor& predictor, ManagerOptions options);

  const ManagerOptions& options() const noexcept { return options_; }

  /// Run Algorithm 1 over the classes and servers.
  Allocation allocate(std::vector<ServiceClassSpec> classes,
                      const std::vector<PoolServer>& servers) const;

  /// Predicted additional clients of `cls` that server i could take on top
  /// of an existing allocation without the model predicting an SLA miss
  /// for any class on the server (capacity probe used by the algorithm).
  double additional_capacity(const PoolServer& server,
                             const std::map<std::string, double>& existing,
                             const std::vector<ServiceClassSpec>& all_classes,
                             const ServiceClassSpec& cls,
                             int& prediction_evaluations) const;

 private:
  const core::Predictor& predictor_;
  ManagerOptions options_;
};

}  // namespace epp::rm
