// What-if analysis: how does the workload mix (share of buy users) change
// a server's capacity and response times? Sweeps the buy percentage and
// compares relationship-3 extrapolation against direct LQN solves —
// useful when deciding how much headroom a promotion campaign needs.
//
// Usage: whatif_workload_mix [--bundle FILE] [--save-bundle FILE]
#include <exception>
#include <iostream>
#include <stdexcept>

#include "calib/bundle.hpp"
#include "calib/predictor_set.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) try {
  using namespace epp;
  const calib::ArtifactCli artifact = calib::parse_artifact_flags(argc, argv);
  std::cout << "EPP what-if: workload mix vs capacity on the new AppServS\n\n";
  util::ThreadPool pool;

  calib::CalibrationOptions options;
  options.pool = &pool;
  const calib::CalibrationBundle bundle =
      calib::acquire_bundle(artifact, options);
  if (!bundle.has_mix())
    throw std::runtime_error(
        "bundle lacks the workload-mix calibration (recreate it without "
        "--no-mix)");
  const calib::PredictorSet set = calib::make_predictors(bundle);
  const core::HistoricalPredictor& historical = *set.historical;
  const core::LqnPredictor& lqn = *set.lqn;

  std::cout << "relationship 3 calibrated from AppServF: "
            << util::fmt(bundle.mix_points.front().max_throughput_rps, 1)
            << " req/s at 0% buy, "
            << util::fmt(bundle.mix_points.back().max_throughput_rps, 1)
            << " at " << util::fmt(bundle.mix_points.back().buy_pct, 0)
            << "%\n\n";

  util::Table table({"buy_pct", "hist_max_tput_rps", "lqn_max_tput_rps",
                     "hist_capacity_at_600ms", "lqn_capacity_at_600ms"});
  for (double buy : {0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.40}) {
    const double h_max = historical.predict_max_throughput_rps("AppServS", buy);
    const double l_max = lqn.predict_max_throughput_rps("AppServS", buy);
    const auto h_cap = historical.max_clients_for_goal("AppServS", 0.6, buy);
    const auto l_cap = lqn.max_clients_for_goal("AppServS", 0.6, buy);
    table.add_row({util::fmt(100.0 * buy, 0), util::fmt(h_max, 1),
                   util::fmt(l_max, 1), util::fmt(h_cap.max_clients, 0),
                   util::fmt(l_cap.max_clients, 0)});
  }
  table.print(std::cout);
  std::cout << "\nBoth methods agree on the trend: every extra 5% of buy "
               "users costs a few percent of capacity (buy requests are "
               "~1.9x as expensive).\n";
  return 0;
} catch (const std::exception& error) {
  std::cerr << "whatif_workload_mix: " << error.what()
            << "\nusage: whatif_workload_mix [--bundle FILE] "
               "[--save-bundle FILE]\n";
  return 1;
}
