// Measurement collection for simulation runs.
//
// Mirrors what the paper's JMeter workload generators record: per-service-
// class response-time samples and completion counts, taken after a warm-up
// period ("a 1 minute warm-up period" in section 4.2).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace epp::sim {

class MetricsCollector {
 public:
  explicit MetricsCollector(double warmup_time = 0.0)
      : warmup_time_(warmup_time) {}

  void set_warmup(double warmup_time) { warmup_time_ = warmup_time; }
  double warmup() const noexcept { return warmup_time_; }

  /// Record a completed request for `service_class`. Samples whose issue
  /// time falls inside the warm-up window are discarded.
  void record(const std::string& service_class, double issue_time,
              double completion_time);

  /// Pre-register a service class and get a dense handle for the
  /// lookup-free record path below — the per-completion hot path of the
  /// SoA testbed resolves its class name exactly once, up front.
  std::size_t class_handle(const std::string& service_class);
  void record(std::size_t handle, double issue_time, double completion_time);

  std::size_t completions(const std::string& service_class) const;
  std::size_t total_completions() const noexcept { return total_completions_; }

  /// Mean response time in seconds for one class, or across all classes.
  double mean_response_time(const std::string& service_class) const;
  double mean_response_time() const;
  /// Exact q-quantile of recorded response times (q in [0,1]).
  double response_time_quantile(const std::string& service_class,
                                double q) const;
  double response_time_quantile(double q) const;

  /// Completions per second of measured (post-warm-up) time.
  double throughput(double now) const;
  double throughput(const std::string& service_class, double now) const;

  const util::SampleSet& samples(const std::string& service_class) const;
  std::vector<std::string> service_classes() const;

 private:
  double warmup_time_;
  std::map<std::string, util::SampleSet> per_class_;  // node-stable
  std::vector<util::SampleSet*> handles_;
  util::SampleSet all_;
  std::size_t total_completions_ = 0;
};

}  // namespace epp::sim
