// Wall-clock stopwatch used to report calibration overheads and
// prediction-evaluation delays (paper sections 8.4 and 8.5).
#pragma once

#include <chrono>

namespace epp::util {

class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double elapsed_ms() const { return elapsed_seconds() * 1e3; }
  double elapsed_us() const { return elapsed_seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace epp::util
