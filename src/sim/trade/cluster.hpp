// Multi-application-server testbed (the full section-2 system model).
//
// Where `testbed.hpp` simulates one application server (the unit the paper
// benchmarks and calibrates on), this simulates a whole tier: several
// heterogeneous application servers sharing one database server that keeps
// one FIFO queue *per application server* (as the system model specifies),
// with clients partitioned across (service class, server) pairs — i.e.
// exactly the deployment a resource-manager allocation describes. It is
// used to validate Algorithm 1's allocations end-to-end by simulation
// rather than through a model stand-in.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/trade/testbed.hpp"

namespace epp::sim::trade {

struct ClusterClassSpec {
  std::string name;
  UserType type = UserType::kBrowse;
  double mean_think_time_s = 7.0;
  /// clients_per_server[i] = clients of this class routed to app server i.
  std::vector<std::size_t> clients_per_server;
};

struct ClusterConfig {
  std::vector<ServerSpec> servers;
  std::vector<ClusterClassSpec> classes;
  std::size_t db_concurrency = 20;
  double db_speed = 1.0;
  double disk_speed = 1.0;
  double warmup_s = 60.0;
  double measure_s = 240.0;
  std::uint64_t seed = util::Rng::kDefaultSeed;
};

struct ClusterClassResult {
  std::size_t completions = 0;
  double mean_rt_s = 0.0;
  double p90_rt_s = 0.0;
};

struct ClusterRunResult {
  double total_throughput_rps = 0.0;
  double db_cpu_utilization = 0.0;
  double disk_utilization = 0.0;
  std::vector<double> app_cpu_utilization;  // per server
  /// Response times per (service class, server) routing bucket, keyed
  /// "class@server-index", plus per-class aggregates keyed by class name.
  std::map<std::string, ClusterClassResult> per_bucket;
  std::map<std::string, ClusterClassResult> per_class;
};

/// Simulate the cluster. Throws std::invalid_argument on malformed
/// configurations (no servers, allocation rows not matching the tier).
ClusterRunResult run_cluster(const ClusterConfig& config);

}  // namespace epp::sim::trade
