// The layered queuing method as a Predictor (paper section 5).
//
// Calibration: per-request-type processing times measured on an
// established server (table 2); new architectures are registered with just
// a benchmarked request-processing-speed ratio — "calculating a new
// server's mean request type processing times then involves multiplying
// the mean processing times on an established server by the
// established/new server request processing speed ratio".
//
// Every prediction builds the case-study LQN for the queried (server,
// workload) pair and solves it, which is why this method's prediction
// latency is the highest of the three (section 8.5).
#pragma once

#include <map>
#include <string>

#include "core/predictor.hpp"
#include "core/trade_model.hpp"
#include "hydra/relationships.hpp"
#include "lqn/solver.hpp"

namespace epp::core {

class LqnPredictor final : public Predictor {
 public:
  explicit LqnPredictor(TradeCalibration calibration,
                        lqn::SolverOptions solver_options = {});

  /// Register a server architecture (its speed ratio comes from the rapid
  /// max-throughput benchmark of the system model's second support
  /// service).
  void register_server(const ServerArch& server);
  bool has_server(const std::string& name) const;
  const ServerArch& server(const std::string& name) const;
  const TradeCalibration& calibration() const noexcept { return calibration_; }

  std::string name() const override { return "layered-queuing"; }
  double predict_mean_rt_s(const std::string& server,
                           const WorkloadSpec& workload) const override;
  double predict_throughput_rps(const std::string& server,
                                const WorkloadSpec& workload) const override;
  double predict_max_throughput_rps(const std::string& server,
                                    double buy_fraction) const override;

  /// Full solver output (per-class breakdown, utilisations, iterations)
  /// for experiment harnesses.
  lqn::SolveResult solve(const std::string& server,
                         const WorkloadSpec& workload) const;

  /// Generate one pseudo-historical data point: the LQN-predicted mean
  /// response time at a client count. This is the hybrid method's data
  /// source and the generator behind the paper's figure-3 study.
  hydra::DataPoint pseudo_point(const std::string& server, double clients,
                                double buy_fraction = 0.0,
                                double think_time_s = 7.0) const;

 private:
  TradeCalibration calibration_;
  lqn::SolverOptions solver_options_;
  std::map<std::string, ServerArch> servers_;
};

}  // namespace epp::core
