#include "sim/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace epp::sim {
namespace {

TEST(Metrics, RecordsAfterWarmupOnly) {
  MetricsCollector m(60.0);
  m.record("browse", 30.0, 35.0);   // inside warm-up: dropped
  m.record("browse", 61.0, 61.5);   // counted
  EXPECT_EQ(m.completions("browse"), 1u);
  EXPECT_DOUBLE_EQ(m.mean_response_time("browse"), 0.5);
}

TEST(Metrics, PerClassAndAggregateMeans) {
  MetricsCollector m(0.0);
  m.record("a", 0.0, 1.0);
  m.record("b", 0.0, 3.0);
  EXPECT_DOUBLE_EQ(m.mean_response_time("a"), 1.0);
  EXPECT_DOUBLE_EQ(m.mean_response_time("b"), 3.0);
  EXPECT_DOUBLE_EQ(m.mean_response_time(), 2.0);
}

TEST(Metrics, ThroughputUsesMeasuredWindow) {
  MetricsCollector m(10.0);
  for (int i = 0; i < 20; ++i) m.record("c", 10.0 + i, 10.5 + i);
  EXPECT_DOUBLE_EQ(m.throughput(30.0), 1.0);
  EXPECT_DOUBLE_EQ(m.throughput("c", 30.0), 1.0);
}

TEST(Metrics, ThroughputZeroBeforeWarmupEnds) {
  MetricsCollector m(10.0);
  EXPECT_DOUBLE_EQ(m.throughput(5.0), 0.0);
}

TEST(Metrics, QuantilePerClass) {
  MetricsCollector m(0.0);
  for (int i = 1; i <= 100; ++i)
    m.record("q", 0.0, static_cast<double>(i));
  EXPECT_NEAR(m.response_time_quantile("q", 0.90), 90.1, 0.2);
  EXPECT_NEAR(m.response_time_quantile(0.5), 50.5, 0.2);
}

TEST(Metrics, UnknownClassIsEmpty) {
  MetricsCollector m(0.0);
  EXPECT_EQ(m.completions("nope"), 0u);
  EXPECT_DOUBLE_EQ(m.mean_response_time("nope"), 0.0);
  EXPECT_EQ(m.samples("nope").count(), 0u);
}

TEST(Metrics, CompletionBeforeIssueThrows) {
  MetricsCollector m(0.0);
  EXPECT_THROW(m.record("x", 5.0, 4.0), std::invalid_argument);
}

TEST(Metrics, ServiceClassEnumeration) {
  MetricsCollector m(0.0);
  m.record("alpha", 0.0, 1.0);
  m.record("beta", 0.0, 1.0);
  const auto names = m.service_classes();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "beta");
}

}  // namespace
}  // namespace epp::sim
