// Batch prediction engine: a facade over the three calibrated predictors
// (historical / layered queuing / hybrid) that evaluates vectors of
// prediction requests concurrently on epp::util::ThreadPool and memoizes
// results in a sharded LRU PredictionCache.
//
// The engine exists for the paper's capacity-planning workload: a
// resource manager comparing candidate servers issues a full client-load
// x buy-mix x method grid of predictions per decision, most of which
// repeat across decisions. Requests are pure once the predictors are
// calibrated, so each (method, server, quantized workload) triple is
// computed once and served from the cache afterwards.
//
// Quantization contract: a request is evaluated *at its quantized
// workload* (client counts snapped to quantum_clients, think time to
// quantum_think_s), which is exactly the cache key — so a cache hit is
// bit-identical to the fresh computation it memoizes.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/predictor.hpp"
#include "core/trade_model.hpp"
#include "svc/fault.hpp"
#include "svc/prediction_cache.hpp"
#include "util/thread_pool.hpp"

namespace epp::svc {

/// One cell of a prediction sweep: which method to ask, about which
/// server, under which workload.
struct PredictionRequest {
  Method method = Method::kHistorical;
  std::string server;
  core::WorkloadSpec workload;
};

struct PredictionResult {
  double mean_rt_s = 0.0;
  double throughput_rps = 0.0;
  bool cached = false;  // answered from the memoization cache
  /// Batch evaluation: non-empty when this request failed (the values
  /// above are then meaningless). Single predict() throws instead.
  std::string error;

  bool ok() const noexcept { return error.empty(); }
};

struct BatchOptions {
  std::size_t cache_capacity_per_shard = 4096;
  std::size_t cache_shards = 16;
  /// Cache-key grid: client counts snap to the nearest multiple of
  /// quantum_clients, think times to quantum_think_s. Must be positive.
  double quantum_clients = 1.0;
  double quantum_think_s = 0.01;
  /// Deterministic fault injection at the evaluation boundary (non-owning;
  /// see svc/fault.hpp). Consulted on cache misses only: a hit replays a
  /// result that was already computed, which cannot fail. The resilient
  /// wrapper reads the same injector for its latency stream.
  const FaultInjector* fault = nullptr;
};

class BatchPredictor {
 public:
  /// Non-owning: the predictors must outlive the engine. Pass nullptr for
  /// methods that are not calibrated; requesting one throws
  /// std::invalid_argument.
  BatchPredictor(const core::Predictor* historical, const core::Predictor* lqn,
                 const core::Predictor* hybrid, BatchOptions options = {});

  /// Single cache-aware evaluation. Thread-safe. Throws
  /// core::InvalidWorkloadError on a malformed workload, InjectedFault
  /// when the configured injector fails the evaluation, and whatever the
  /// underlying predictor throws.
  PredictionResult predict(const PredictionRequest& request) const;

  /// Evaluate every request — fanned out on `pool` when given, serially
  /// otherwise. Results align with the input order. A request that throws
  /// does NOT lose the rest of the batch: its slot carries the error text
  /// (PredictionResult::error) and every other request still completes.
  std::vector<PredictionResult> predict_batch(
      const std::vector<PredictionRequest>& requests,
      util::ThreadPool* pool = nullptr) const;

  /// The workload a request is actually evaluated at (the cache-key grid).
  core::WorkloadSpec quantized(const core::WorkloadSpec& workload) const;

  /// The cache key a request quantizes to. Public so resilience layers
  /// can key auxiliary stores (e.g. stale-result serving) on the exact
  /// same grid the cache uses.
  CacheKey cache_key(const PredictionRequest& request) const;

  /// The underlying predictor for a method; throws std::invalid_argument
  /// when that method was not supplied.
  const core::Predictor& predictor_for(Method method) const;

  const BatchOptions& options() const noexcept { return options_; }

  CacheStats cache_stats() const { return cache_.stats(); }
  void clear_cache() { cache_.clear(); }

 private:
  const core::Predictor* historical_;
  const core::Predictor* lqn_;
  const core::Predictor* hybrid_;
  BatchOptions options_;
  mutable PredictionCache cache_;
};

}  // namespace epp::svc
