// EPP-DET-001..006: the determinism rule family.
//
// The simulator's calibration/validation methodology only works if an
// experiment is exactly reproducible: same bundle + same seed must give
// byte-identical results at any thread count (replications are
// seed-sharded and merged in fixed order for exactly this reason).
// These rules police the ways C++ quietly breaks that contract:
// ambient entropy flowing into seeds, std <random> distributions whose
// output differs across standard libraries, hash-order iteration with
// order-sensitive effects, racy floating-point accumulation in pool
// lambdas, silently default-seeded generators, and pointer keys whose
// order is the allocator's mood. The runtime twin of this family is
// tools/epp_replay, which reruns a pipeline and byte-compares the
// canonicalized artifacts; the rules here name the line to fix when
// that gate trips.

#include <cstddef>
#include <regex>
#include <set>
#include <string>
#include <vector>

#include "lint/src/rules.hpp"

namespace epp::lint::srcrules {
namespace {

using srcmodel::FileModel;

/// "src/svc/cache.hpp" -> "cache": pairs a .cpp with its header so a
/// loop in the .cpp can resolve a container declared in the header.
std::string det_stem_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const std::size_t dot = base.find_last_of('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

/// EPP-DET-005 applies to library code only: tools, benches, examples
/// and test fixtures construct default-seeded generators on purpose.
bool library_path(const std::string& path) {
  static const std::regex nonlib(
      R"((^|/)(tools|bench|examples)/|_test\.(cpp|cc|cxx|hpp|h)$)");
  return !std::regex_search(path, nonlib);
}

/// Resolve a loop's container name against the declarations: same file
/// first, then the stem twin (header/impl pair), then a globally unique
/// name. Ambiguous names resolve to nothing — better silent than wrong.
const srcmodel::ContainerDecl* resolve_container(
    const std::vector<FileModel>& files, const FileModel& site,
    const std::string& name) {
  if (name.empty()) return nullptr;
  for (const srcmodel::ContainerDecl& decl : site.containers)
    if (decl.name == name) return &decl;
  const std::string stem = det_stem_of(site.path);
  for (const FileModel& file : files) {
    if (&file == &site || det_stem_of(file.path) != stem) continue;
    for (const srcmodel::ContainerDecl& decl : file.containers)
      if (decl.name == name) return &decl;
  }
  const srcmodel::ContainerDecl* unique = nullptr;
  int count = 0;
  for (const FileModel& file : files)
    for (const srcmodel::ContainerDecl& decl : file.containers)
      if (decl.name == name) {
        unique = &decl;
        ++count;
      }
  return count == 1 ? unique : nullptr;
}

/// Float accumulator names visible to `site`: its own plus stem twins'.
std::vector<std::string> visible_floats(const std::vector<FileModel>& files,
                                        const FileModel& site) {
  std::vector<std::string> names;
  for (const srcmodel::FloatDecl& decl : site.floats)
    names.push_back(decl.name);
  const std::string stem = det_stem_of(site.path);
  for (const FileModel& file : files) {
    if (&file == &site || det_stem_of(file.path) != stem) continue;
    for (const srcmodel::FloatDecl& decl : file.floats)
      names.push_back(decl.name);
  }
  return names;
}

const std::string& token_line(const FileModel& file, int line) {
  static const std::string empty;
  if (line < 1 || line > static_cast<int>(file.tokens.size())) return empty;
  return file.tokens[static_cast<std::size_t>(line - 1)];
}

// --- EPP-DET-001: entropy flowing into seeds -------------------------------

void check_entropy(const std::vector<FileModel>& files, Diagnostics& out) {
  static const std::regex entropy_in_args(
      R"(std::random_device|\btime\s*\(\s*(?:nullptr|NULL|0|&)|[\w:]*[Cc]lock::now\s*\()");
  for (const FileModel& file : files) {
    std::set<int> reported;
    // std::random_device is nondeterministic wherever it appears — it
    // exists to defeat reproducibility.
    for (const srcmodel::EntropyUse& use : file.entropy) {
      if (use.token != "std::random_device") continue;
      if (!reported.insert(use.line).second) continue;
      out.error("EPP-DET-001", {file.path, use.line},
                "std::random_device read — hardware entropy makes this run "
                "unreproducible by construction",
                "seed from the experiment config's (seed, stream) pair "
                "instead (util::Rng)");
    }
    // time()/clock::now() values are legitimate for measurement; they
    // become defects only when they reach a seed sink, directly or via
    // a tainted variable.
    for (const srcmodel::SeedSink& sink : file.seed_sinks) {
      if (reported.count(sink.line)) continue;
      std::string source;
      if (std::regex_search(sink.args, entropy_in_args)) {
        source = "an entropy expression in the arguments";
      } else {
        for (const srcmodel::EntropyUse& use : file.entropy) {
          if (use.variable.empty()) continue;
          const std::regex var("\\b" + use.variable + "\\b");
          if (std::regex_search(sink.args, var)) {
            source = "'" + use.variable + "' (tainted by " + use.token +
                     " on line " + std::to_string(use.line) + ")";
            break;
          }
        }
      }
      if (source.empty()) continue;
      reported.insert(sink.line);
      out.error("EPP-DET-001", {file.path, sink.line},
                "nondeterministic entropy flows into a seed: " + source,
                "seed from the experiment config's (seed, stream) pair so "
                "the run replays bit-for-bit");
    }
  }
}

// --- EPP-DET-002: std <random> distributions -------------------------------

void check_std_random(const std::vector<FileModel>& files, Diagnostics& out) {
  // The engine values are portable; the *distributions* are not —
  // libstdc++ and libc++ are free to (and do) consume the stream
  // differently. util/rng.hpp carries its own samplers for this reason.
  static const std::regex std_random(
      R"(std::(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine|knuth_b|ranlux\w+|(?:uniform_int|uniform_real|normal|lognormal|exponential|poisson|bernoulli|geometric|binomial|negative_binomial|gamma|weibull|extreme_value|chi_squared|cauchy|fisher_f|student_t|discrete|piecewise_constant|piecewise_linear)_distribution|shuffle)\b)");
  for (const FileModel& file : files) {
    for (int line = 1; line <= file.line_count; ++line) {
      std::smatch m;
      const std::string& tokens = token_line(file, line);
      if (!std::regex_search(tokens, m, std_random)) continue;
      out.error("EPP-DET-002", {file.path, line},
                std::string(m[0]) +
                    " — std <random> engines/distributions differ across "
                    "standard libraries, so results stop being portable",
                "use util::Rng and its samplers (uniform/exponential/"
                "normal/pareto) instead");
    }
  }
}

// --- EPP-DET-003: order-sensitive iteration over unordered containers ------

void check_unordered_iteration(const std::vector<FileModel>& files,
                               Diagnostics& out) {
  static const std::regex output_kw(
      R"(std::cout\b|std::cerr\b|std::clog\b|\bprintf\s*\(|\bfprintf\s*\()");
  static const std::regex schedule_kw(R"(\bschedule\w*\s*\()");
  for (const FileModel& file : files) {
    const std::vector<std::string> floats = visible_floats(files, file);
    for (const srcmodel::ContainerLoop& loop : file.container_loops) {
      const srcmodel::ContainerDecl* decl =
          resolve_container(files, file, loop.container);
      if (decl == nullptr || !decl->unordered) continue;
      bool emits = false;
      bool schedules = false;
      std::string accumulates;
      for (int line = loop.body_begin; line <= loop.body_end; ++line) {
        const std::string& tokens = token_line(file, line);
        if (std::regex_search(tokens, output_kw)) emits = true;
        if (std::regex_search(tokens, schedule_kw)) schedules = true;
        for (const std::string& name : floats) {
          if (!accumulates.empty()) break;
          const std::regex accumulate("\\b" + name + "\\s*[-+]=");
          if (std::regex_search(tokens, accumulate)) accumulates = name;
        }
      }
      std::vector<std::string> effects;
      if (!accumulates.empty())
        effects.push_back("accumulates floating point into '" + accumulates +
                          "'");
      if (emits) effects.push_back("emits output");
      if (schedules) effects.push_back("schedules events");
      if (effects.empty()) continue;
      std::string what = effects[0];
      for (std::size_t i = 1; i < effects.size(); ++i)
        what += " and " + effects[i];
      out.error("EPP-DET-003", {file.path, loop.line},
                "iteration over unordered container '" + loop.container +
                    "' " + what +
                    " — hash order varies across runs and libraries, so "
                    "the result depends on it",
                "iterate a sorted key snapshot, or switch the container "
                "to std::map");
    }
  }
}

// --- EPP-DET-004: racy float accumulation in pool lambdas ------------------

void check_pool_accumulation(const std::vector<FileModel>& files,
                             Diagnostics& out) {
  for (const FileModel& file : files) {
    std::string joined;
    for (const std::string& tokens : file.tokens) {
      joined += tokens;
      if (joined.empty() || joined.back() != '\n') joined += '\n';
    }
    for (const srcmodel::PoolLambda& lambda : file.pool_lambdas) {
      if (!lambda.name.empty()) {
        // A named lambda is in scope only if it is actually handed to
        // the pool somewhere in this TU.
        const std::regex bound(
            R"((?:parallel_for|for_each_index|submit)\s*\([^;]*\b)" +
            lambda.name + "\\b");
        if (!std::regex_search(joined, bound)) continue;
      }
      for (const srcmodel::FloatDecl& decl : file.floats) {
        // Only *outer* accumulators count; a float declared inside the
        // lambda body is per-invocation state.
        if (decl.line >= lambda.body_begin && decl.line <= lambda.body_end)
          continue;
        const std::regex mutate("\\b" + decl.name + R"(\s*[-+*/]=)");
        for (int line = lambda.body_begin; line <= lambda.body_end; ++line) {
          if (!std::regex_search(token_line(file, line), mutate)) continue;
          out.error(
              "EPP-DET-004", {file.path, line},
              "shared floating-point accumulator '" + decl.name +
                  "' mutated inside a thread-pool lambda — even with "
                  "atomics, float addition is not associative, so the "
                  "sum depends on scheduling",
              "give each lane its own slot and merge the slots in index "
              "order after the join (see sim/replicate.cpp)");
          break;  // one finding per (lambda, accumulator)
        }
      }
    }
  }
}

// --- EPP-DET-005: default-seeded Rng in library code -----------------------

void check_default_seed(const std::vector<FileModel>& files,
                        Diagnostics& out) {
  for (const FileModel& file : files) {
    if (!library_path(file.path)) continue;
    for (const srcmodel::RngDecl& decl : file.rngs) {
      if (!decl.default_seeded) continue;
      out.warning("EPP-DET-005", {file.path, decl.line},
                  "util::Rng '" + decl.name +
                      "' is default-seeded in library code — every caller "
                      "silently shares kDefaultSeed, and replications "
                      "collapse onto one stream",
                  "thread the experiment's (seed, stream) pair through the "
                  "constructor or a constructor init list");
    }
  }
}

// --- EPP-DET-006: pointer keys ---------------------------------------------

void check_pointer_keys(const std::vector<FileModel>& files,
                        Diagnostics& out) {
  for (const FileModel& file : files) {
    for (const srcmodel::ContainerDecl& decl : file.containers) {
      if (!decl.pointer_key) continue;
      out.warning("EPP-DET-006", {file.path, decl.line},
                  "container '" + decl.name +
                      "' is keyed by a pointer — iteration order follows "
                      "allocation addresses, which differ every run",
                  "key by a stable id (index, name, sequence number) and "
                  "keep the pointer as the value");
    }
  }
}

}  // namespace

void check_determinism(const std::vector<FileModel>& files,
                       Diagnostics& out) {
  check_entropy(files, out);
  check_std_random(files, out);
  check_unordered_iteration(files, out);
  check_pool_accumulation(files, out);
  check_default_seed(files, out);
  check_pointer_keys(files, out);
}

}  // namespace epp::lint::srcrules
