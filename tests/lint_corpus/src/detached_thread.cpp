// Corpus: EPP-CONC-006 — a detached thread racing static destruction.
#include <thread>

namespace lint_corpus {

inline void fire_and_forget() {
  std::thread worker([] {});
  worker.detach();
}

}  // namespace lint_corpus
