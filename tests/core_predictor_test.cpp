#include "core/predictor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace epp::core {
namespace {

/// A deterministic closed-system stand-in with known physics:
/// X = min(m*N, Xmax), R = max(base, N/Xmax - Z).
class StubPredictor final : public Predictor {
 public:
  std::string name() const override { return "stub"; }

  double predict_mean_rt_s(const std::string&,
                           const WorkloadSpec& w) const override {
    const double n = w.total_clients();
    return std::max(kBase, n / kMaxTput - w.think_time_s);
  }
  double predict_throughput_rps(const std::string&,
                                const WorkloadSpec& w) const override {
    return std::min(w.total_clients() / (w.think_time_s + kBase), kMaxTput);
  }
  double predict_max_throughput_rps(const std::string&, double) const override {
    return kMaxTput;
  }

  static constexpr double kBase = 0.05;
  static constexpr double kMaxTput = 186.0;
};

TEST(PredictorBase, CapacitySearchFindsSlaBoundary) {
  const StubPredictor stub;
  const double goal = 0.6;
  const CapacityResult result = stub.max_clients_for_goal("s", goal, 0.0, 7.0);
  // Ground truth: R = N/186 - 7 = 0.6 -> N = 186*7.6 = 1413.6 -> 1413.
  EXPECT_NEAR(result.max_clients, 1413.0, 1.0);
  EXPECT_GT(result.prediction_evaluations, 3);  // bisection, not closed form
  WorkloadSpec at;
  at.browse_clients = result.max_clients;
  EXPECT_LE(stub.predict_mean_rt_s("s", at), goal + 1e-9);
}

TEST(PredictorBase, CapacityZeroWhenGoalBelowBaseRt) {
  const StubPredictor stub;
  const CapacityResult result =
      stub.max_clients_for_goal("s", 0.01, 0.0, 7.0);
  EXPECT_DOUBLE_EQ(result.max_clients, 0.0);
}

TEST(PredictorBase, CapacityRejectsNonPositiveGoal) {
  const StubPredictor stub;
  EXPECT_THROW(stub.max_clients_for_goal("s", 0.0, 0.0, 7.0),
               std::invalid_argument);
}

TEST(PredictorBase, SaturationDetection) {
  const StubPredictor stub;
  WorkloadSpec light;
  light.browse_clients = 200.0;
  EXPECT_FALSE(stub.predicts_saturated("s", light));
  WorkloadSpec heavy;
  heavy.browse_clients = 3000.0;
  EXPECT_TRUE(stub.predicts_saturated("s", heavy));
}

TEST(PredictorBase, PercentileUsesRegime) {
  const StubPredictor stub;
  const double b = 0.2041;
  WorkloadSpec light;
  light.browse_clients = 200.0;
  // Pre-saturation: exponential with mean = base RT.
  EXPECT_NEAR(stub.predict_percentile_rt_s("s", light, 0.9, b),
              -StubPredictor::kBase * std::log(0.1), 1e-9);
  WorkloadSpec heavy;
  heavy.browse_clients = 3000.0;
  const double mean = stub.predict_mean_rt_s("s", heavy);
  // Post-saturation: double exponential located at the mean.
  EXPECT_NEAR(stub.predict_percentile_rt_s("s", heavy, 0.9, b),
              mean - b * std::log(0.2), 1e-9);
}

TEST(PredictorBase, WorkloadSpecHelpers) {
  WorkloadSpec w;
  w.browse_clients = 90.0;
  w.buy_clients = 10.0;
  EXPECT_DOUBLE_EQ(w.total_clients(), 100.0);
  EXPECT_DOUBLE_EQ(w.buy_fraction(), 0.1);
  const WorkloadSpec empty;
  EXPECT_DOUBLE_EQ(empty.buy_fraction(), 0.0);
}

}  // namespace
}  // namespace epp::core
