#include "lqn/solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <stdexcept>

#include "util/cancellation.hpp"
#include "util/timer.hpp"

namespace epp::lqn {

const ClassPrediction& SolveResult::cls(const std::string& name) const {
  for (const ClassPrediction& c : classes)
    if (c.name == name) return c;
  throw std::out_of_range("SolveResult: unknown class '" + name + "'");
}

double SolveResult::mean_response_time_s() const {
  double weighted = 0.0, total_x = 0.0;
  for (const ClassPrediction& c : classes) {
    weighted += c.throughput_rps * c.response_time_s;
    total_x += c.throughput_rps;
  }
  return total_x > 0.0 ? weighted / total_x : 0.0;
}

double SolveResult::total_throughput_rps() const {
  double total = 0.0;
  for (const ClassPrediction& c : classes) total += c.throughput_rps;
  return total;
}

namespace {

/// Everything the solver precomputes about the flattened model.
struct Flattened {
  std::vector<TaskId> refs;                    // closed class id -> ref task
  std::vector<TaskId> open_refs;               // open class id -> ref task
  std::vector<std::vector<double>> visits;     // [closed class][entry]
  std::vector<std::vector<double>> open_visits;  // [open class][entry]
  std::vector<std::size_t> proc_station;       // processor -> station index
  std::vector<ProcessorId> station_proc;       // station -> processor
  std::vector<TaskId> finite_tasks;            // tasks given surrogates
  std::vector<std::size_t> task_station;       // task -> surrogate station (or npos)
  ClosedNetwork network;                       // stations: processors then surrogates
  std::vector<std::vector<double>> task_visits;       // [closed class][task]
  std::vector<std::vector<double>> open_task_visits;  // [open class][task]
  // Processor stations reachable from (below) each task, self included.
  std::vector<std::set<std::size_t>> below_proc_stations;   // [task]
  std::vector<std::set<TaskId>> below_finite_tasks;         // [task], self excl.
};

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

void collect_below(const Model& model, TaskId task,
                   std::set<ProcessorId>& procs, std::set<TaskId>& tasks,
                   std::set<TaskId>& seen) {
  if (!seen.insert(task).second) return;
  procs.insert(model.task(task).processor);
  tasks.insert(task);
  for (EntryId e : model.task(task).entries)
    for (const Call& call : model.entry(e).calls)
      collect_below(model, model.entry(call.target).task, procs, tasks, seen);
}

Flattened flatten(const Model& model, const SolverOptions& options) {
  Flattened f;
  for (TaskId ref : model.reference_tasks())
    (model.task(ref).open_arrivals ? f.open_refs : f.refs).push_back(ref);
  const std::size_t nc = f.refs.size();
  const std::size_t no = f.open_refs.size();
  const std::size_t ne = model.entries().size();
  const std::size_t nt = model.tasks().size();

  f.visits.resize(nc);
  for (std::size_t c = 0; c < nc; ++c) f.visits[c] = model.visit_ratios(f.refs[c]);
  f.open_visits.resize(no);
  for (std::size_t c = 0; c < no; ++c)
    f.open_visits[c] = model.visit_ratios(f.open_refs[c]);

  // Processor stations: only processors hosting non-reference entries.
  f.proc_station.assign(model.processors().size(), kNpos);
  for (EntryId e = 0; e < ne; ++e) {
    const Entry& entry = model.entry(e);
    if (model.task(entry.task).is_reference) continue;
    const ProcessorId p = model.task(entry.task).processor;
    if (f.proc_station[p] == kNpos) {
      f.proc_station[p] = f.network.stations.size();
      f.station_proc.push_back(p);
      const Processor& proc = model.processor(p);
      Station station;
      station.name = proc.name;
      if (proc.scheduling == Scheduling::kDelay) {
        station.kind = StationKind::kDelay;
      } else if (proc.multiplicity > 1) {
        station.kind = StationKind::kMultiServer;
        station.servers = proc.multiplicity;
      } else {
        station.kind = StationKind::kQueueing;
      }
      f.network.stations.push_back(station);
    }
  }

  // Per-class demands at processor stations; reference-entry own demand is
  // folded into the think time (the client "processor" is a pure delay).
  f.network.population.assign(nc, 0.0);
  f.network.think_time_s.assign(nc, 0.0);
  f.network.demands.assign(
      nc, std::vector<double>(f.network.stations.size(), 0.0));
  for (std::size_t c = 0; c < nc; ++c) {
    const Task& ref = model.task(f.refs[c]);
    f.network.class_names.push_back(ref.name);
    f.network.population[c] = ref.population;
    f.network.think_time_s[c] = ref.think_time_s;
    for (EntryId e = 0; e < ne; ++e) {
      if (f.visits[c][e] == 0.0) continue;
      const Entry& entry = model.entry(e);
      const Task& task = model.task(entry.task);
      const Processor& proc = model.processor(task.processor);
      const double time = f.visits[c][e] * entry.service_demand_s / proc.speed;
      if (task.is_reference) {
        f.network.think_time_s[c] += time;
      } else {
        f.network.demands[c][f.proc_station[task.processor]] += time;
      }
    }
  }
  // Closed-class priorities (only set when they differ).
  bool any_priority = false;
  for (std::size_t c = 0; c < nc; ++c)
    any_priority = any_priority || model.task(f.refs[c]).priority != 0;
  if (any_priority) {
    f.network.priority.resize(nc);
    for (std::size_t c = 0; c < nc; ++c)
      f.network.priority[c] = model.task(f.refs[c]).priority;
  }
  // Open workload classes: constant-rate arrival streams with the same
  // per-station demand accumulation (their own-entry demand is service,
  // not think time, but reference entries conventionally have none).
  for (std::size_t c = 0; c < no; ++c) {
    const Task& ref = model.task(f.open_refs[c]);
    OpenClass open;
    open.name = ref.name;
    open.arrival_rps = ref.arrival_rate_rps;
    open.demands.assign(f.network.stations.size(), 0.0);
    for (EntryId e = 0; e < ne; ++e) {
      if (f.open_visits[c][e] == 0.0) continue;
      const Entry& entry = model.entry(e);
      const Task& task = model.task(entry.task);
      if (task.is_reference) continue;
      const Processor& proc = model.processor(task.processor);
      open.demands[f.proc_station[task.processor]] +=
          f.open_visits[c][e] * entry.service_demand_s / proc.speed;
    }
    f.network.open_classes.push_back(std::move(open));
  }

  // Task visit counts per class.
  f.task_visits.assign(nc, std::vector<double>(nt, 0.0));
  for (std::size_t c = 0; c < nc; ++c)
    for (EntryId e = 0; e < ne; ++e)
      f.task_visits[c][model.entry(e).task] += f.visits[c][e];
  f.open_task_visits.assign(no, std::vector<double>(nt, 0.0));
  for (std::size_t c = 0; c < no; ++c)
    for (EntryId e = 0; e < ne; ++e)
      f.open_task_visits[c][model.entry(e).task] += f.open_visits[c][e];

  // Finite-multiplicity (non-reference) tasks get surrogate stations that
  // model queueing for a thread: demand visits * S_t / multiplicity.
  f.task_station.assign(nt, kNpos);
  f.below_proc_stations.resize(nt);
  f.below_finite_tasks.resize(nt);
  if (options.model_task_contention) {
    std::vector<std::size_t> tasks_on_processor(model.processors().size(), 0);
    for (TaskId t = 0; t < nt; ++t)
      if (!model.task(t).is_reference)
        ++tasks_on_processor[model.task(t).processor];
    for (TaskId t = 0; t < nt; ++t) {
      const Task& task = model.task(t);
      if (task.is_reference) continue;
      // A single-threaded *leaf* task alone on its processor is already
      // fully serialised by the hardware station; a surrogate would only
      // double-count it. (A task that makes downstream calls holds its
      // thread longer than its own processor demand, so it still needs
      // one — that is the layered effect.)
      const bool leaf = [&] {
        for (EntryId e : task.entries)
          if (!model.entry(e).calls.empty()) return false;
        return true;
      }();
      if (task.multiplicity == 1 && leaf &&
          tasks_on_processor[task.processor] == 1)
        continue;
      f.finite_tasks.push_back(t);
      f.task_station[t] = f.network.stations.size();
      Station station;
      station.name = task.name + ".threads";
      station.kind = StationKind::kQueueing;
      f.network.stations.push_back(station);
      for (auto& row : f.network.demands) row.push_back(0.0);
      for (auto& open : f.network.open_classes) open.demands.push_back(0.0);
    }
    for (TaskId t : f.finite_tasks) {
      std::set<ProcessorId> procs;
      std::set<TaskId> tasks, seen;
      collect_below(model, t, procs, tasks, seen);
      for (ProcessorId p : procs)
        if (f.proc_station[p] != kNpos)
          f.below_proc_stations[t].insert(f.proc_station[p]);
      for (TaskId lower : tasks)
        if (lower != t && f.task_station[lower] != kNpos)
          f.below_finite_tasks[t].insert(lower);
    }
  }
  return f;
}

/// Light-load execution time of an entry (own demand plus nested calls).
double light_exec_time(const Model& model, EntryId e) {
  const Entry& entry = model.entry(e);
  double time = entry.service_demand_s /
                model.processor(model.task(entry.task).processor).speed;
  for (const Call& call : entry.calls)
    time += call.mean_calls * light_exec_time(model, call.target);
  return time;
}

}  // namespace

SolveResult LayeredSolver::solve(const Model& model) const {
  util::Timer timer;
  model.validate();
  Flattened f = flatten(model, options_);
  const std::size_t nc = f.refs.size();

  MvaOptions mva_options;
  mva_options.rt_tolerance_s = options_.convergence_tol_s;
  mva_options.max_iterations = options_.max_iterations;

  // Initialise surrogate demands from light-load task service times.
  std::vector<double> light_s(model.tasks().size(), 0.0);  // per visit
  for (TaskId t : f.finite_tasks) {
    const Task& task = model.task(t);
    double total = 0.0, weight = 0.0;
    for (EntryId e : task.entries) {
      // weight by class-0 visits as a neutral default; refined per class in
      // the surrogate demand below via task_visits.
      total += light_exec_time(model, e);
      weight += 1.0;
    }
    light_s[t] = weight > 0.0 ? total / weight : 0.0;
  }
  for (std::size_t c = 0; c < nc; ++c)
    for (TaskId t : f.finite_tasks)
      f.network.demands[c][f.task_station[t]] =
          f.task_visits[c][t] * light_s[t] /
          static_cast<double>(model.task(t).multiplicity);
  for (std::size_t c = 0; c < f.open_refs.size(); ++c)
    for (TaskId t : f.finite_tasks)
      f.network.open_classes[c].demands[f.task_station[t]] =
          f.open_task_visits[c][t] * light_s[t] /
          static_cast<double>(model.task(t).multiplicity);

  MvaResult top = solve_mva(f.network, mva_options, options_.exact_population_limit);
  int layer_iterations = 1;
  bool layers_converged = true;

  if (!f.finite_tasks.empty()) {
    // Order finite tasks bottom-up so lower-layer surrogate demands are
    // fresh when computing upper-layer service times.
    std::vector<TaskId> order = f.finite_tasks;
    std::sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
      return f.below_finite_tasks[a].size() < f.below_finite_tasks[b].size();
    });

    const util::CancellationToken* cancel = util::current_cancellation();
    std::vector<double> prev_rt(nc, 0.0);
    layers_converged = false;
    for (int iter = 0;
         iter < options_.max_layer_iterations && !layers_converged; ++iter) {
      if (cancel != nullptr && cancel->cancelled())
        throw util::Cancelled("layered solve cancelled");
      ++layer_iterations;
      // Near the saturation knee the surrogate-demand fixed point can fall
      // into a small limit cycle under the default averaging. Heavier
      // damping (Krasnoselskii averaging) is a standard remedy; ramp it up
      // only after the default damping has had 30 iterations, so every
      // previously-converging solve is untouched.
      double keep = 0.5;
      for (int ramp = 30; iter >= ramp && keep < 0.97; ramp += 30)
        keep = 0.5 * (1.0 + keep);
      for (TaskId t : order) {
        const double m = static_cast<double>(model.task(t).multiplicity);
        // Customers concurrently inside the task's subtree, per class.
        std::vector<double> inside(nc, 0.0);
        double inside_total = 0.0;
        for (std::size_t c = 0; c < nc; ++c) {
          for (std::size_t s : f.below_proc_stations[t])
            inside[c] += top.station_queue[c][s];
          for (TaskId lower : f.below_finite_tasks[t])
            inside[c] += top.station_queue[c][f.task_station[lower]];
          inside_total += inside[c];
        }
        if (inside_total <= 1e-12) continue;
        const double pool = std::min(m, inside_total);

        // Sub-network: one thread-cycle through the subtree.
        ClosedNetwork sub;
        std::vector<std::size_t> sub_classes;
        for (std::size_t c = 0; c < nc; ++c) {
          const double share = inside[c] / inside_total;
          const double pop = pool * share;
          if (pop < 1e-9 || f.task_visits[c][t] <= 0.0) continue;
          sub_classes.push_back(c);
          sub.population.push_back(pop);
          sub.think_time_s.push_back(0.0);
        }
        if (sub.population.empty()) continue;
        std::vector<std::size_t> sub_stations(f.below_proc_stations[t].begin(),
                                              f.below_proc_stations[t].end());
        for (TaskId lower : f.below_finite_tasks[t])
          sub_stations.push_back(f.task_station[lower]);
        for (std::size_t s : sub_stations)
          sub.stations.push_back(f.network.stations[s]);
        for (std::size_t c : sub_classes) {
          std::vector<double> row;
          row.reserve(sub_stations.size());
          for (std::size_t s : sub_stations)
            row.push_back(f.network.demands[c][s] / f.task_visits[c][t]);
          sub.demands.push_back(std::move(row));
        }
        // Open workloads flowing through the subtree shrink the capacity
        // the threads see; carry them into the sub-network unchanged.
        for (const OpenClass& open : f.network.open_classes) {
          OpenClass sub_open;
          sub_open.name = open.name;
          sub_open.arrival_rps = open.arrival_rps;
          for (std::size_t s : sub_stations)
            sub_open.demands.push_back(open.demands[s]);
          sub.open_classes.push_back(std::move(sub_open));
        }
        const MvaResult sub_result = solve_bard_schweitzer(sub, mva_options);

        // New surrogate demand: queueing for one of m threads whose
        // holding time is the sub-network response time.
        for (std::size_t i = 0; i < sub_classes.size(); ++i) {
          const std::size_t c = sub_classes[i];
          const double s_t = sub_result.response_time_s[i];
          const double target = f.task_visits[c][t] * s_t / m;
          double& demand = f.network.demands[c][f.task_station[t]];
          demand = keep * demand + (1.0 - keep) * target;  // damped update
        }
      }

      top = solve_mva(f.network, mva_options, options_.exact_population_limit);
      double delta = 0.0;
      for (std::size_t c = 0; c < nc; ++c)
        delta = std::max(delta, std::abs(top.response_time_s[c] - prev_rt[c]));
      for (std::size_t c = 0; c < nc; ++c) prev_rt[c] = top.response_time_s[c];
      layers_converged = delta < options_.convergence_tol_s;
    }
  }

  SolveResult result;
  for (std::size_t c = 0; c < nc; ++c) {
    const Task& ref = model.task(f.refs[c]);
    ClassPrediction prediction;
    prediction.name = ref.name;
    prediction.population = ref.population;
    prediction.think_time_s = ref.think_time_s;
    prediction.response_time_s = top.response_time_s[c];
    prediction.throughput_rps = top.throughput_rps[c];
    result.classes.push_back(prediction);
  }
  for (std::size_t c = 0; c < f.open_refs.size(); ++c) {
    const Task& ref = model.task(f.open_refs[c]);
    ClassPrediction prediction;
    prediction.name = ref.name;
    prediction.open = true;
    prediction.response_time_s = top.open_response_time_s[c];
    prediction.throughput_rps = ref.arrival_rate_rps;  // open: in == out
    result.classes.push_back(prediction);
  }
  for (std::size_t s = 0; s < f.station_proc.size(); ++s)
    result.processor_utilization[model.processor(f.station_proc[s]).name] =
        top.station_utilization[s];
  for (TaskId t : f.finite_tasks) {
    // Fraction of the task's threads that are busy.
    double busy = 0.0;
    const double m = static_cast<double>(model.task(t).multiplicity);
    for (std::size_t c = 0; c < nc; ++c)
      busy += top.throughput_rps[c] * f.network.demands[c][f.task_station[t]];
    // Surrogate demand is visits*S/m, so X*demand = X*visits*S/m, the
    // fraction of the m threads that are busy.
    (void)m;
    result.task_utilization[model.task(t).name] = busy;
  }
  result.iterations = layer_iterations;
  result.converged = top.converged && layers_converged;
  result.solve_time_s = timer.elapsed_seconds();
  return result;
}

double LayeredSolver::max_throughput_bound_rps(const Model& model) const {
  model.validate();
  Flattened f = flatten(model, options_);
  const std::size_t nc = f.refs.size();
  double total_pop = 0.0;
  for (std::size_t c = 0; c < nc; ++c) total_pop += f.network.population[c];
  if (total_pop <= 0.0) return 0.0;  // purely open workload: no closed bound
  double bound = std::numeric_limits<double>::infinity();
  for (std::size_t s = 0; s < f.station_proc.size(); ++s) {
    if (f.network.stations[s].kind == StationKind::kDelay) continue;
    double mix_demand = 0.0;
    for (std::size_t c = 0; c < nc; ++c)
      mix_demand += f.network.population[c] / total_pop * f.network.demands[c][s];
    // Open classes consume a fixed share of the station's capacity.
    double open_util = 0.0;
    for (const OpenClass& open : f.network.open_classes)
      open_util += open.arrival_rps * open.demands[s];
    if (f.network.stations[s].kind == StationKind::kMultiServer) {
      const double m = static_cast<double>(f.network.stations[s].servers);
      mix_demand /= m;
      open_util /= m;
    }
    if (mix_demand > 0.0)
      bound = std::min(bound, std::max(0.0, 1.0 - open_util) / mix_demand);
  }
  double max_demand = bound > 0.0 && std::isfinite(bound) ? 1.0 / bound : 0.0;
  // Thread pools can also bound throughput: m / light-load holding time.
  for (TaskId t : f.finite_tasks) {
    double mix_demand = 0.0;
    for (std::size_t c = 0; c < nc; ++c) {
      double s_light = 0.0;
      const Task& task = model.task(t);
      for (EntryId e : task.entries) s_light += light_exec_time(model, e);
      s_light /= static_cast<double>(task.entries.size());
      mix_demand += f.network.population[c] / total_pop *
                    f.task_visits[c][t] * s_light /
                    static_cast<double>(task.multiplicity);
    }
    max_demand = std::max(max_demand, mix_demand);
  }
  if (max_demand <= 0.0) return 0.0;
  return 1.0 / max_demand;
}

}  // namespace epp::lqn
