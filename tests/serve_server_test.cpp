// Serving daemon core over the hot-swap registry: loopback round trips,
// admission control (bounded queue, shed with typed kOverloaded),
// per-request protocol deadlines, control frames (including live
// reload), idle-session reaping, drift telemetry and graceful drain.
// Every fixture serves the golden corpus bundle through a BundleRegistry
// — the same promotion path epp_serve uses — so version pinning and the
// EPP-SEM gate are exercised on every scenario, without the simulator.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "calib/bundle.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "serve/registry.hpp"
#include "svc/resilient.hpp"

namespace epp::serve {
namespace {

using svc::ErrorCode;
using svc::Method;

/// The golden corpus artifact (verifier-clean by the lint suite's
/// contract), parsed once and copied per fixture.
const calib::CalibrationBundle& corpus_bundle() {
  static const calib::CalibrationBundle bundle =
      calib::load_bundle(std::string(EPP_LINT_CORPUS_DIR) +
                         "/clean/trade.epp");
  return bundle;
}

RegistryOptions registry_options(const svc::ResilienceOptions& resilience) {
  RegistryOptions options;
  options.resilience = resilience;
  return options;
}

/// A server over a fresh registry with the corpus bundle promoted as
/// version 1, bound to an ephemeral loopback port and started. Each
/// fixture instance is fully isolated.
struct ServerFixture {
  BundleRegistry registry;
  std::unique_ptr<PredictionServer> server;

  explicit ServerFixture(ServerOptions options = {},
                         svc::ResilienceOptions resilience = {})
      : registry(registry_options(resilience)) {
    const PromotionResult seeded =
        registry.promote(corpus_bundle(), "corpus/trade.epp");
    if (!seeded.accepted)
      throw std::runtime_error("fixture bundle rejected: " + seeded.message);
    server = std::make_unique<PredictionServer>(registry, options);
    server->start();
  }

  net::Socket connect() const {
    return net::Socket::connect("127.0.0.1", server->port());
  }
};

net::RequestMessage predict_request(std::uint64_t id, Method method,
                                    const std::string& server,
                                    double browse_clients,
                                    double deadline_ms = 0.0) {
  net::RequestMessage request;
  request.kind = net::MessageKind::kPredict;
  request.id = id;
  request.method = static_cast<std::uint8_t>(method);
  request.browse_clients = browse_clients;
  request.deadline_ms = deadline_ms;
  request.server = server;
  return request;
}

void send(net::Socket& socket, const net::RequestMessage& request) {
  ASSERT_TRUE(net::write_frame(socket, net::encode_request(request)));
}

std::optional<net::ResponseMessage> receive(net::Socket& socket) {
  std::vector<std::uint8_t> payload;
  if (!net::read_frame(socket, payload)) return std::nullopt;
  return net::decode_response(payload);
}

// ---------------------------------------------------------------------------
// Round trips.
// ---------------------------------------------------------------------------

TEST(PredictionServer, ServesAllMethodsOverLoopback) {
  ServerFixture fixture;
  net::Socket client = fixture.connect();
  std::uint64_t id = 100;
  for (const Method method :
       {Method::kHistorical, Method::kLqn, Method::kHybrid}) {
    for (const char* server : {"AppServS", "AppServF", "AppServVF"}) {
      send(client, predict_request(++id, method, server, 400.0));
      const auto response = receive(client);
      ASSERT_TRUE(response.has_value());
      EXPECT_EQ(response->id, id);
      ASSERT_TRUE(response->ok()) << response->detail;
      EXPECT_EQ(response->served_by, static_cast<std::uint8_t>(method));
      EXPECT_EQ(response->flags & net::kFlagFallback, 0);
      EXPECT_GT(response->mean_rt_s, 0.0);
      EXPECT_GT(response->throughput_rps, 0.0);
      EXPECT_GE(response->predictor_latency_s, 0.0);
      // Every response names the version that answered it.
      EXPECT_EQ(response->bundle_version, 1u);
    }
  }
}

TEST(PredictionServer, PipelinedRequestsAllAnsweredById) {
  // Fire a burst without reading, then match responses by id: with
  // several workers interleaving on one connection, order is not
  // guaranteed but identity and completeness are.
  ServerOptions options;
  options.workers = 4;
  ServerFixture fixture(options);
  net::Socket client = fixture.connect();
  constexpr std::uint64_t kRequests = 32;
  for (std::uint64_t id = 1; id <= kRequests; ++id)
    send(client, predict_request(id, Method::kHistorical, "AppServF",
                                 200.0 + 10.0 * static_cast<double>(id)));
  std::map<std::uint64_t, net::ResponseMessage> responses;
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    const auto response = receive(client);
    ASSERT_TRUE(response.has_value());
    responses.emplace(response->id, *response);
  }
  ASSERT_EQ(responses.size(), kRequests);
  for (std::uint64_t id = 1; id <= kRequests; ++id) {
    ASSERT_TRUE(responses.count(id)) << "response " << id << " missing";
    EXPECT_TRUE(responses.at(id).ok()) << responses.at(id).detail;
  }
}

TEST(PredictionServer, SecondIdenticalRequestIsACacheHit) {
  ServerFixture fixture;
  net::Socket client = fixture.connect();
  send(client, predict_request(1, Method::kLqn, "AppServF", 640.0));
  const auto first = receive(client);
  ASSERT_TRUE(first.has_value() && first->ok());
  send(client, predict_request(2, Method::kLqn, "AppServF", 640.0));
  const auto second = receive(client);
  ASSERT_TRUE(second.has_value() && second->ok());
  EXPECT_EQ(second->flags & net::kFlagCached, net::kFlagCached);
  EXPECT_EQ(second->mean_rt_s, first->mean_rt_s);
}

// ---------------------------------------------------------------------------
// Typed errors.
// ---------------------------------------------------------------------------

TEST(PredictionServer, UnknownMethodByteGetsInvalidWorkload) {
  ServerFixture fixture;
  net::Socket client = fixture.connect();
  net::RequestMessage request =
      predict_request(7, Method::kHistorical, "AppServF", 100.0);
  request.method = 9;
  send(client, request);
  const auto response = receive(client);
  ASSERT_TRUE(response.has_value());
  EXPECT_FALSE(response->ok());
  EXPECT_EQ(response->error_code,
            static_cast<std::uint8_t>(ErrorCode::kInvalidWorkload));
}

TEST(PredictionServer, UnknownServerGetsNotCalibrated) {
  ServerFixture fixture;
  net::Socket client = fixture.connect();
  send(client, predict_request(8, Method::kLqn, "NoSuchServer", 100.0));
  const auto response = receive(client);
  ASSERT_TRUE(response.has_value());
  EXPECT_FALSE(response->ok());
  EXPECT_EQ(response->error_code,
            static_cast<std::uint8_t>(ErrorCode::kNotCalibrated));
}

TEST(PredictionServer, ExpiredProtocolDeadlineGetsDeadlineExceeded) {
  // A deadline too small to evaluate anything maps through
  // predict_with_deadline onto the svc cancellation machinery; disable
  // fallback + stale so the typed deadline error surfaces directly.
  svc::ResilienceOptions resilience;
  resilience.fallback_enabled = false;
  resilience.serve_stale = false;
  ServerFixture fixture(ServerOptions{}, resilience);
  net::Socket client = fixture.connect();
  send(client,
       predict_request(9, Method::kLqn, "AppServF", 900.0, /*deadline_ms=*/1e-6));
  const auto response = receive(client);
  ASSERT_TRUE(response.has_value());
  ASSERT_FALSE(response->ok()) << "a 1 ns deadline cannot be met";
  EXPECT_EQ(response->error_code,
            static_cast<std::uint8_t>(ErrorCode::kDeadlineExceeded));
}

TEST(PredictionServer, MalformedFrameClosesTheSessionWithAnError) {
  ServerFixture fixture;
  net::Socket client = fixture.connect();
  const std::vector<std::uint8_t> garbage{0xFF, 0x00, 0xAB};
  ASSERT_TRUE(net::write_frame(client, garbage));
  const auto response = receive(client);
  ASSERT_TRUE(response.has_value());
  EXPECT_FALSE(response->ok());
  EXPECT_EQ(response->error_code,
            static_cast<std::uint8_t>(ErrorCode::kInternal));
  // The stream is desynchronized: the server hangs up after answering.
  EXPECT_FALSE(receive(client).has_value());
  EXPECT_GE(fixture.server->stats().bad_frames, 1u);
}

// ---------------------------------------------------------------------------
// Admission control.
// ---------------------------------------------------------------------------

TEST(PredictionServer, OverloadShedsWithTypedOverloadedError) {
  // One slow worker (50 ms per evaluation via the test hook) and a
  // 1-deep queue: a burst must come back as a few served plus many
  // typed kOverloaded sheds — never an unbounded backlog, and every
  // request gets *some* response.
  ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  options.worker_delay_s = 0.05;
  ServerFixture fixture(options);
  net::Socket client = fixture.connect();
  constexpr std::uint64_t kBurst = 12;
  for (std::uint64_t id = 1; id <= kBurst; ++id)
    send(client, predict_request(id, Method::kHistorical, "AppServF", 300.0));
  std::uint64_t ok = 0, shed = 0;
  for (std::uint64_t i = 0; i < kBurst; ++i) {
    const auto response = receive(client);
    ASSERT_TRUE(response.has_value());
    if (response->ok()) {
      ++ok;
    } else {
      ASSERT_EQ(response->error_code,
                static_cast<std::uint8_t>(ErrorCode::kOverloaded))
          << response->detail;
      EXPECT_NE(response->detail.find("queue full"), std::string::npos)
          << response->detail;
      ++shed;
    }
  }
  EXPECT_EQ(ok + shed, kBurst);
  EXPECT_GE(shed, 1u) << "burst never overflowed the 1-deep queue";
  EXPECT_GE(ok, 1u) << "admitted requests must still be served";
  const ServerStats stats = fixture.server->stats();
  EXPECT_EQ(stats.requests_shed, shed);
  EXPECT_EQ(stats.requests_enqueued, ok);
}

TEST(PredictionServer, ConnectionsBeyondTheCapAreClosed) {
  ServerOptions options;
  options.max_connections = 1;
  ServerFixture fixture(options);
  net::Socket first = fixture.connect();
  // Prove the first session is live before the second connects.
  net::RequestMessage ping;
  ping.kind = net::MessageKind::kPing;
  ping.id = 1;
  send(first, ping);
  ASSERT_TRUE(receive(first).has_value());

  net::Socket second = fixture.connect();
  // The server closes the excess connection without a frame: EOF.
  EXPECT_FALSE(receive(second).has_value());
  EXPECT_GE(fixture.server->stats().connections_rejected, 1u);
}

TEST(PredictionServer, IdleSessionsAreReapedByTheTimeout) {
  // A client that connects and never speaks must not pin a reader
  // thread forever: with the idle timeout armed its session reaches
  // EOF and the close is typed (idle_closes), not a bad_frames error.
  ServerOptions options;
  options.idle_timeout_s = 0.05;
  ServerFixture fixture(options);
  net::Socket silent = fixture.connect();
  EXPECT_FALSE(receive(silent).has_value()) << "server kept an idle session";
  // The reaped session must not poison serving for others.
  net::Socket active = fixture.connect();
  send(active, predict_request(1, Method::kLqn, "AppServF", 300.0));
  const auto response = receive(active);
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(response->ok()) << response->detail;
  EXPECT_GE(fixture.server->stats().idle_closes, 1u);
  EXPECT_EQ(fixture.server->stats().bad_frames, 0u);
}

// ---------------------------------------------------------------------------
// Control frames.
// ---------------------------------------------------------------------------

TEST(PredictionServer, PingAndStatsAnswerInline) {
  ServerFixture fixture;
  net::Socket client = fixture.connect();
  net::RequestMessage ping;
  ping.kind = net::MessageKind::kPing;
  ping.id = 77;
  send(client, ping);
  const auto pong = receive(client);
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->id, 77u);
  EXPECT_TRUE(pong->ok());

  send(client, predict_request(78, Method::kHistorical, "AppServF", 250.0));
  ASSERT_TRUE(receive(client).has_value());

  net::RequestMessage stats;
  stats.kind = net::MessageKind::kStats;
  stats.id = 79;
  send(client, stats);
  const auto reply = receive(client);
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(reply->ok());
  EXPECT_NE(reply->detail.find("requests_served="), std::string::npos)
      << reply->detail;
  EXPECT_NE(reply->detail.find("stale_evictions="), std::string::npos)
      << reply->detail;
  // The serving-tier keys added with the registry/drift layer.
  EXPECT_NE(reply->detail.find("bundle_version=1"), std::string::npos)
      << reply->detail;
  EXPECT_NE(reply->detail.find("health="), std::string::npos) << reply->detail;
  EXPECT_NE(reply->detail.find("idle_closes="), std::string::npos)
      << reply->detail;
}

TEST(PredictionServer, ReloadFrameWithoutHandlerGetsTypedError) {
  ServerFixture fixture;  // no reload_handler configured
  net::Socket client = fixture.connect();
  net::RequestMessage reload;
  reload.kind = net::MessageKind::kReload;
  reload.id = 5;
  send(client, reload);
  const auto response = receive(client);
  ASSERT_TRUE(response.has_value());
  EXPECT_FALSE(response->ok());
  EXPECT_EQ(response->error_code,
            static_cast<std::uint8_t>(ErrorCode::kInternal));
  EXPECT_EQ(fixture.server->stats().reloads_failed, 1u);
}

TEST(PredictionServer, ReloadFramePromotesAndReportsTheNewVersion) {
  // The handler promotes whatever "path" names — here the corpus bundle
  // again, so the swap is real (version 2) without touching disk.
  ServerOptions options;
  ServerFixture fixture;
  fixture.server->stop();
  BundleRegistry& registry = fixture.registry;
  options.reload_handler = [&registry](const std::string& path) {
    const PromotionResult result = registry.promote(corpus_bundle(), path);
    return ReloadStatus{result.accepted, result.message};
  };
  PredictionServer server(registry, options);
  server.start();
  net::Socket client = net::Socket::connect("127.0.0.1", server.port());

  net::RequestMessage reload;
  reload.kind = net::MessageKind::kReload;
  reload.id = 11;
  reload.server = "refit/trade.epp";  // candidate path rides the server field
  ASSERT_TRUE(net::write_frame(client, net::encode_request(reload)));
  const auto ack = receive(client);
  ASSERT_TRUE(ack.has_value());
  EXPECT_TRUE(ack->ok()) << ack->detail;
  EXPECT_NE(ack->detail.find("version 2"), std::string::npos) << ack->detail;
  EXPECT_EQ(registry.active_version(), 2u);
  EXPECT_EQ(server.stats().reloads_ok, 1u);

  // Requests after the swap are answered by the new version.
  net::RequestMessage request =
      predict_request(12, Method::kLqn, "AppServF", 320.0);
  ASSERT_TRUE(net::write_frame(client, net::encode_request(request)));
  const auto response = receive(client);
  ASSERT_TRUE(response.has_value());
  ASSERT_TRUE(response->ok()) << response->detail;
  EXPECT_EQ(response->bundle_version, 2u);
  server.stop();
}

// ---------------------------------------------------------------------------
// Drift telemetry.
// ---------------------------------------------------------------------------

TEST(PredictionServer, ObserveFramesDriveHealthThroughWarmupToDrift) {
  // Close the loop end to end: learn the active bundle's prediction for
  // one workload, report agreeing measurements through warmup, then step
  // the "measured" RT to 2x. The Page–Hinkley detector must alarm within
  // a few drifted observations (lambda / (1 - delta) plus mean drag; see
  // serve_drift_test for the pinned bound) and every response's health
  // byte must track warming -> healthy -> drifting.
  ServerOptions options;
  options.workers = 1;  // serialize observes so detector order is exact
  options.drift.min_samples = 8;
  ServerFixture fixture(options);
  net::Socket client = fixture.connect();

  send(client, predict_request(1, Method::kLqn, "AppServF", 500.0));
  const auto predicted = receive(client);
  ASSERT_TRUE(predicted.has_value() && predicted->ok());
  ASSERT_GT(predicted->mean_rt_s, 0.0);
  EXPECT_EQ(predicted->health,
            static_cast<std::uint8_t>(HealthState::kWarming));

  net::RequestMessage observe =
      predict_request(0, Method::kLqn, "AppServF", 500.0);
  observe.kind = net::MessageKind::kObserve;

  // Warmup: measurements agree with the model (zero relative error).
  std::uint64_t id = 100;
  for (std::size_t i = 0; i < 8; ++i) {
    observe.id = ++id;
    observe.observed_rt_s = predicted->mean_rt_s;
    send(client, observe);
    const auto ack = receive(client);
    ASSERT_TRUE(ack.has_value() && ack->ok()) << ack->detail;
  }
  EXPECT_EQ(fixture.server->drift().state, HealthState::kHealthy);

  // Step change: the world got 2x slower than the model. The alarm must
  // latch within a bounded number of further observations.
  bool drifted = false;
  for (std::size_t i = 0; i < 16 && !drifted; ++i) {
    observe.id = ++id;
    observe.observed_rt_s = 2.0 * predicted->mean_rt_s;
    send(client, observe);
    const auto ack = receive(client);
    ASSERT_TRUE(ack.has_value() && ack->ok()) << ack->detail;
    drifted = ack->health == static_cast<std::uint8_t>(HealthState::kDrifting);
  }
  EXPECT_TRUE(drifted) << "2x drift never tripped the detector";
  const DriftSnapshot snapshot = fixture.server->drift();
  EXPECT_EQ(snapshot.state, HealthState::kDrifting);
  EXPECT_GE(snapshot.trips, 1u);

  // A version swap resets the detector: health returns to warming.
  ASSERT_TRUE(fixture.registry.promote(corpus_bundle(), "refit").accepted);
  observe.id = ++id;
  observe.observed_rt_s = predicted->mean_rt_s;
  send(client, observe);
  const auto fresh = receive(client);
  ASSERT_TRUE(fresh.has_value() && fresh->ok()) << fresh->detail;
  EXPECT_EQ(fresh->health, static_cast<std::uint8_t>(HealthState::kWarming));
  EXPECT_EQ(fresh->bundle_version, 2u);
}

// ---------------------------------------------------------------------------
// Graceful drain.
// ---------------------------------------------------------------------------

TEST(PredictionServer, ShutdownFrameDrainsAdmittedWorkThenCloses) {
  // Pipeline predicts behind a slow worker, then a shutdown frame. Every
  // admitted request must still be answered (the ack + drain contract),
  // then the connection reaches EOF and wait() returns.
  ServerOptions options;
  options.workers = 1;
  options.worker_delay_s = 0.02;
  ServerFixture fixture(options);
  net::Socket client = fixture.connect();
  constexpr std::uint64_t kRequests = 5;
  for (std::uint64_t id = 1; id <= kRequests; ++id)
    send(client, predict_request(id, Method::kHistorical, "AppServF", 300.0));
  net::RequestMessage shutdown;
  shutdown.kind = net::MessageKind::kShutdown;
  shutdown.id = 99;
  send(client, shutdown);

  std::uint64_t predict_responses = 0;
  bool shutdown_acked = false;
  while (const auto response = receive(client)) {
    if (response->id == 99) {
      shutdown_acked = true;
      EXPECT_EQ(response->detail, "draining");
    } else {
      EXPECT_TRUE(response->ok()) << response->detail;
      ++predict_responses;
    }
  }
  EXPECT_TRUE(shutdown_acked);
  EXPECT_EQ(predict_responses, kRequests)
      << "admitted requests were dropped during drain";

  EXPECT_TRUE(fixture.server->stopping());
  fixture.server->wait();
  const ServerStats stats = fixture.server->stats();
  EXPECT_EQ(stats.requests_served, kRequests);
  EXPECT_EQ(stats.queue_depth, 0u) << "drain left work in the queue";
  EXPECT_EQ(stats.open_sessions, 0u);
}

TEST(PredictionServer, StopFromOwnerThreadDrainsAndJoins) {
  ServerOptions options;
  options.workers = 2;
  ServerFixture fixture(options);
  net::Socket client = fixture.connect();
  for (std::uint64_t id = 1; id <= 8; ++id)
    send(client, predict_request(id, Method::kHybrid, "AppServVF", 350.0));
  // Give the reader a moment to admit, then stop; stop() must join
  // everything without deadlock and serve whatever was admitted.
  fixture.server->stop();
  const ServerStats stats = fixture.server->stats();
  EXPECT_EQ(stats.requests_served, stats.requests_enqueued);
  EXPECT_EQ(stats.queue_depth, 0u);
  // Idempotent: a second stop is a no-op.
  fixture.server->stop();
}

TEST(PredictionServer, DoubleStartThrows) {
  ServerFixture fixture;
  EXPECT_THROW(fixture.server->start(), std::logic_error);
}

}  // namespace
}  // namespace epp::serve
