// Parallel independent replications.
//
// The paper's simulations (section 6) report averages over repeated runs;
// this module runs N statistically independent replications of a testbed
// or cluster configuration — seeds derived per replication index — and
// merges them deterministically. Replication 0 always uses the base seed,
// so a 1-replication run is bitwise identical to a plain run_testbed /
// run_cluster call; and results are merged in fixed index order, so the
// merged output is bitwise identical whether the replications executed
// on 1 thread or N.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/trade/cluster.hpp"
#include "sim/trade/testbed.hpp"

namespace epp::util {
class ThreadPool;
}

namespace epp::sim {

struct ReplicationOptions {
  std::size_t replications = 1;
  /// Where to fan out. Null runs the replications on the calling thread;
  /// either way the merged result is identical.
  util::ThreadPool* pool = nullptr;
  /// Concatenate per-replication response-time samples (in replication
  /// order) into the summary's rt_samples_s.
  bool keep_samples = false;
};

/// Seed for replication `index` of a run whose base seed is `base`:
/// index 0 is `base` itself, later indices come from a splitmix-seeded
/// stream so sibling replications are statistically independent.
std::uint64_t replication_seed(std::uint64_t base, std::size_t index);

struct ReplicatedResult {
  /// Deterministic merge: completions summed; mean and p90 response times
  /// completion-weighted; throughput, utilizations and ratios averaged
  /// over replications.
  trade::RunResult summary;
  std::vector<trade::RunResult> per_replication;
  /// Across-replication spread of the per-replication mean response time.
  double mean_rt_stddev_s = 0.0;
  double mean_rt_ci95_s = 0.0;  // half-width, ~95% confidence
};

struct ClusterReplicatedResult {
  trade::ClusterRunResult summary;
  std::vector<trade::ClusterRunResult> per_replication;
  double mean_rt_stddev_s = 0.0;  // spread of per-rep completion-weighted
  double mean_rt_ci95_s = 0.0;    // mean RT over all buckets
};

/// Run `options.replications` independent testbed simulations and merge.
ReplicatedResult run_replications(const trade::TestbedConfig& config,
                                  const ReplicationOptions& options = {});

/// Cluster counterpart used by the resource-manager validation harness.
ClusterReplicatedResult run_cluster_replications(
    const trade::ClusterConfig& config, const ReplicationOptions& options = {});

}  // namespace epp::sim
