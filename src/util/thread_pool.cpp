#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace epp::util {
namespace {

// Which pool (if any) the current thread is a worker of; lets parallel_for
// detect re-entrant calls from its own workers.
thread_local const ThreadPool* t_worker_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  t_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      cv_.wait(lock, [this] { return queue_ready(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn,
                              const CancellationToken* cancel) {
  if (n == 0) return;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  RankedMutex error_mutex{EPP_LOCK_RANK(85), "util.pool.error"};

  auto body = [&] {
    for (;;) {
      if (cancel != nullptr && cancel->cancelled()) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n || failed.load(std::memory_order_relaxed)) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  if (t_worker_pool == this) {
    // Re-entrant call from one of this pool's own workers: any lane we
    // submitted would sit behind the tasks currently occupying the
    // workers (our own caller included), so waiting on it could deadlock.
    // The calling worker runs the whole range as the only lane.
    body();
  } else {
    const std::size_t lanes = std::min(n, size());
    std::vector<std::future<void>> futures;
    futures.reserve(lanes);
    for (std::size_t i = 0; i < lanes; ++i) futures.push_back(submit(body));
    // The caller works too: its lane starts immediately even when the
    // submitted ones are queued behind unrelated tasks.
    body();
    for (auto& f : futures) f.get();
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace epp::util
