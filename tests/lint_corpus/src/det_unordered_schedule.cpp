// Corpus: EPP-DET-003 — hash-order iteration scheduling events. Same
// timestamps inserted in hash order give the engine a different
// same-time tie-break sequence every run.
#include <unordered_map>

namespace lint_corpus {

struct CorpusEngine {
  void schedule_at(double, int) {}
};

inline void kick_off(CorpusEngine& engine,
                     const std::unordered_map<int, double>& deadlines) {
  for (const auto& entry : deadlines) {
    engine.schedule_at(entry.second, entry.first);
  }
}

}  // namespace lint_corpus
