#include "hydra/serialize.hpp"

#include <sstream>
#include <stdexcept>
#include <vector>

namespace epp::hydra {

std::string to_text(const HistoricalModel& model) {
  std::ostringstream os;
  os.precision(17);
  os << "hydra-model v1\n";
  os << "gradient " << model.gradient_m() << '\n';
  for (const std::string& name : model.servers()) {
    const Relationship1& rel = model.server(name);
    os << "server " << name << ' ' << rel.c_lower << ' ' << rel.lambda_lower
       << ' ' << rel.lambda_upper << ' ' << rel.c_upper << ' '
       << rel.max_throughput_rps << ' ' << rel.gradient_m << ' '
       << rel.transition_lo << ' ' << rel.transition_hi << '\n';
  }
  if (model.has_mix_calibration()) {
    const Relationship3& mix = model.mix_relationship();
    os << "mix " << mix.max_tput_vs_buy_pct.slope << ' '
       << mix.max_tput_vs_buy_pct.intercept << '\n';
  }
  return os.str();
}

HistoricalModel model_from_text(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  auto fail = [&](const std::string& message) -> void {
    throw std::invalid_argument("hydra model parse error, line " +
                                std::to_string(line_no) + ": " + message);
  };

  if (!std::getline(is, line)) {
    line_no = 1;
    fail("empty input");
  }
  ++line_no;
  if (line != "hydra-model v1") fail("bad header '" + line + "'");

  double gradient = 0.0;
  bool have_gradient = false;
  std::vector<std::pair<std::string, Relationship1>> servers;
  bool have_mix = false;
  Relationship3 mix;

  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "gradient") {
      if (!(ls >> gradient) || gradient <= 0.0) fail("bad gradient");
      have_gradient = true;
    } else if (kind == "server") {
      std::string name;
      Relationship1 rel;
      if (!(ls >> name >> rel.c_lower >> rel.lambda_lower >> rel.lambda_upper >>
            rel.c_upper >> rel.max_throughput_rps >> rel.gradient_m >>
            rel.transition_lo >> rel.transition_hi))
        fail("bad server record");
      if (rel.max_throughput_rps <= 0.0 || rel.gradient_m <= 0.0)
        fail("non-positive server parameters");
      servers.emplace_back(std::move(name), rel);
    } else if (kind == "mix") {
      if (!(ls >> mix.max_tput_vs_buy_pct.slope >>
            mix.max_tput_vs_buy_pct.intercept))
        fail("bad mix record");
      have_mix = true;
    } else {
      fail("unknown record '" + kind + "'");
    }
  }
  if (!have_gradient) {
    ++line_no;
    fail("missing gradient record");
  }

  HistoricalModel model(gradient);
  for (auto& [name, rel] : servers) model.add_calibrated(name, rel);
  if (have_mix) model.set_mix(mix);
  return model;
}

}  // namespace epp::hydra
