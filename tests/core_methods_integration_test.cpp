// End-to-end reproduction of the paper's core comparison, in test form:
// calibrate the historical, layered queuing and hybrid predictors from the
// simulated testbed exactly the way the paper calibrates them from its
// WebSphere deployment, then check the accuracy relationships the paper
// reports (sections 4-6): all three methods predict new and established
// architectures well; throughput accuracy > response-time accuracy; the
// hybrid tracks the LQN's accuracy while answering from closed form.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/evaluation.hpp"
#include "core/historical_predictor.hpp"
#include "core/hybrid_predictor.hpp"
#include "core/lqn_predictor.hpp"
#include "hydra/relationships.hpp"
#include "util/thread_pool.hpp"

namespace epp::core {
namespace {

struct Calibrated {
  util::ThreadPool pool;
  TradeCalibration lqn_calibration;
  double max_s = 0.0, max_f = 0.0, max_vf = 0.0;
  double gradient_m = 0.0;
  std::unique_ptr<LqnPredictor> lqn;
  std::unique_ptr<HistoricalPredictor> historical;
  std::unique_ptr<HybridPredictor> hybrid;

  Calibrated() {
    // --- benchmark max throughputs (the "new server" support service) ---
    max_s = sim::trade::measure_max_throughput(sim::trade::app_serv_s());
    max_f = sim::trade::measure_max_throughput(sim::trade::app_serv_f());
    max_vf = sim::trade::measure_max_throughput(sim::trade::app_serv_vf());

    // --- layered queuing calibration on the established AppServF --------
    lqn_calibration = calibrate_lqn_from_testbed(7, &pool);
    lqn = std::make_unique<LqnPredictor>(lqn_calibration);
    for (const auto& arch : {arch_s(), arch_f(), arch_vf()})
      lqn->register_server(arch);

    // --- historical calibration: gradient + 2/2 points on F and VF ------
    const auto grad_points =
        measure_sweep(sim::trade::app_serv_f(), {300.0, 600.0}, {}, &pool);
    gradient_m = hydra::fit_gradient(
        {grad_points[0].clients, grad_points[1].clients},
        {grad_points[0].throughput_rps, grad_points[1].throughput_rps});
    historical = std::make_unique<HistoricalPredictor>(gradient_m);
    calibrate_established(*historical, sim::trade::app_serv_f(), max_f);
    calibrate_established(*historical, sim::trade::app_serv_vf(), max_vf);
    historical->register_new_server("AppServS", max_s);

    // --- hybrid: LQN-generated pseudo data, lazily per architecture -----
    hybrid = std::make_unique<HybridPredictor>(lqn_calibration);
    for (const auto& arch : {arch_s(), arch_f(), arch_vf()})
      hybrid->register_server(arch);
  }

  void calibrate_established(HistoricalPredictor& predictor,
                             const sim::trade::ServerSpec& server,
                             double max_tput) {
    const double n_star = max_tput / gradient_m;
    const auto lower = measure_sweep(
        server, {0.25 * n_star, 0.60 * n_star}, {}, &pool);
    const auto upper = measure_sweep(
        server, {1.25 * n_star, 1.70 * n_star}, {}, &pool);
    predictor.calibrate_established(server.name, to_data_points(lower),
                                    to_data_points(upper), max_tput);
  }
};

Calibrated& fixture() {
  static Calibrated calibrated;
  return calibrated;
}

std::vector<MeasuredPoint> validation_sweep(const sim::trade::ServerSpec& s,
                                            double max_tput) {
  Calibrated& f = fixture();
  const double n_star = max_tput / f.gradient_m;
  SweepOptions options;
  options.seed = 0xC0FFEE;  // different seed from any calibration run
  // The paper's "overall predictive accuracy is defined as the mean of the
  // lower equation accuracy and the upper equation accuracy", so the
  // validation points sit in the lower (< 66% of the max-throughput load)
  // and upper (> 110%) regions, not in the transition band.
  return measure_sweep(
      s, {0.3 * n_star, 0.5 * n_star, 0.65 * n_star, 1.3 * n_star, 1.8 * n_star},
      options, &f.pool);
}

TEST(MethodsIntegration, LqnCalibrationRecoversSimulatorDemands) {
  const TradeCalibration& cal = fixture().lqn_calibration;
  const auto browse_truth = sim::trade::browse_aggregate();
  EXPECT_NEAR(cal.browse.app_demand_s, browse_truth.app_cpu_s,
              0.05 * browse_truth.app_cpu_s);
  EXPECT_NEAR(cal.browse.mean_db_calls, browse_truth.mean_db_calls, 0.05);
  EXPECT_NEAR(cal.browse.db_cpu_per_call_s, browse_truth.db_cpu_per_call,
              0.10 * browse_truth.db_cpu_per_call);
  // Buy service class aggregates login/buy/logoff: ~2 DB calls/request.
  EXPECT_NEAR(cal.buy.mean_db_calls, 2.0, 0.1);
  EXPECT_GT(cal.buy.app_demand_s, cal.browse.app_demand_s);
}

TEST(MethodsIntegration, MeasuredMaxThroughputsMatchPaper) {
  Calibrated& f = fixture();
  EXPECT_NEAR(f.max_s, 86.0, 6.0);
  EXPECT_NEAR(f.max_f, 186.0, 10.0);
  EXPECT_NEAR(f.max_vf, 320.0, 16.0);
  EXPECT_NEAR(f.gradient_m, 0.14, 0.01);  // the paper's m
}

TEST(MethodsIntegration, HistoricalAccurateOnEstablishedServer) {
  Calibrated& f = fixture();
  const auto measured = validation_sweep(sim::trade::app_serv_f(), f.max_f);
  const AccuracySummary acc =
      accuracy_against(*f.historical, "AppServF", measured);
  EXPECT_GT(acc.mean_rt_pct, 80.0);  // paper: 89.1% on established servers
  EXPECT_GT(acc.throughput_pct, 95.0);
}

TEST(MethodsIntegration, HistoricalPredictsNewServerViaRelationship2) {
  Calibrated& f = fixture();
  const auto measured = validation_sweep(sim::trade::app_serv_s(), f.max_s);
  const AccuracySummary acc =
      accuracy_against(*f.historical, "AppServS", measured);
  EXPECT_GT(acc.mean_rt_pct, 70.0);  // paper: 83% on the new server
  EXPECT_GT(acc.throughput_pct, 95.0);
}

TEST(MethodsIntegration, LqnAccurateThroughputLowerRtAccuracy) {
  Calibrated& f = fixture();
  const auto measured = validation_sweep(sim::trade::app_serv_f(), f.max_f);
  const AccuracySummary acc = accuracy_against(*f.lqn, "AppServF", measured);
  EXPECT_GT(acc.throughput_pct, 95.0);  // paper: 97.8%
  EXPECT_GT(acc.mean_rt_pct, 68.0);     // paper: 68.8%
}

TEST(MethodsIntegration, LqnPredictsNewServer) {
  Calibrated& f = fixture();
  const auto measured = validation_sweep(sim::trade::app_serv_s(), f.max_s);
  const AccuracySummary acc = accuracy_against(*f.lqn, "AppServS", measured);
  EXPECT_GT(acc.throughput_pct, 95.0);  // paper: 97.1%
  EXPECT_GT(acc.mean_rt_pct, 65.0);     // paper: 73.4%
}

TEST(MethodsIntegration, HybridTracksLqnAccuracy) {
  Calibrated& f = fixture();
  const auto measured = validation_sweep(sim::trade::app_serv_s(), f.max_s);
  const AccuracySummary lqn_acc =
      accuracy_against(*f.lqn, "AppServS", measured);
  const AccuracySummary hybrid_acc =
      accuracy_against(*f.hybrid, "AppServS", measured);
  // "The accuracy of the hybrid predictions are found to be similar to
  // those made using the layered queuing model only."
  EXPECT_NEAR(hybrid_acc.mean_rt_pct, lqn_acc.mean_rt_pct, 15.0);
  EXPECT_GT(hybrid_acc.throughput_pct, 90.0);
}

TEST(MethodsIntegration, HybridStartupDelayThenInstantPredictions) {
  Calibrated& f = fixture();
  HybridPredictor fresh(f.lqn_calibration);
  fresh.register_server(arch_f());
  EXPECT_DOUBLE_EQ(fresh.startup_delay_s("AppServF"), 0.0);
  WorkloadSpec w;
  w.browse_clients = 900.0;
  (void)fresh.predict_mean_rt_s("AppServF", w);
  const double startup = fresh.startup_delay_s("AppServF");
  EXPECT_GT(startup, 0.0);  // pseudo-data generation happened
  EXPECT_EQ(fresh.calibrations(), 1u);
  // Further predictions at the same mix reuse the fit.
  w.browse_clients = 1500.0;
  (void)fresh.predict_mean_rt_s("AppServF", w);
  EXPECT_DOUBLE_EQ(fresh.startup_delay_s("AppServF"), startup);
  EXPECT_EQ(fresh.calibrations(), 1u);
}

TEST(MethodsIntegration, CapacitySearchConsistentAcrossMethods) {
  Calibrated& f = fixture();
  const double goal = 0.6;  // 600 ms
  const CapacityResult h =
      f.historical->max_clients_for_goal("AppServF", goal, 0.0, 7.0);
  const CapacityResult l = f.lqn->max_clients_for_goal("AppServF", goal, 0.0, 7.0);
  const CapacityResult y =
      f.hybrid->max_clients_for_goal("AppServF", goal, 0.0, 7.0);
  // All methods place the capacity in the same region.
  EXPECT_NEAR(l.max_clients, h.max_clients, 0.25 * h.max_clients);
  EXPECT_NEAR(y.max_clients, h.max_clients, 0.25 * h.max_clients);
  // The paper's section 8.2/8.5 point: the LQN must search (many solver
  // evaluations); historical and hybrid invert in one step.
  EXPECT_EQ(h.prediction_evaluations, 1);
  EXPECT_EQ(y.prediction_evaluations, 1);
  EXPECT_GT(l.prediction_evaluations, 5);
}

TEST(MethodsIntegration, MixedWorkloadMaxThroughputScales) {
  Calibrated& f = fixture();
  // Relationship 3 calibrated from measured mixed-workload max throughputs
  // on the established server.
  const double mixed_f =
      sim::trade::measure_max_throughput(sim::trade::app_serv_f(), 0.25, 11);
  f.historical->calibrate_mix({0.0, 25.0}, {f.max_f, mixed_f});
  const double predicted_s =
      f.historical->predict_max_throughput_rps("AppServS", 0.25);
  const double measured_s =
      sim::trade::measure_max_throughput(sim::trade::app_serv_s(), 0.25, 12);
  EXPECT_NEAR(predicted_s, measured_s, 0.07 * measured_s);
}

}  // namespace
}  // namespace epp::core
