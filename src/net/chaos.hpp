// Deterministic network chaos for the serving stack.
//
// The serving tier must survive misbehaving peers and flaky networks:
// connections that reset mid-exchange, frames that arrive truncated,
// slow-loris peers that dribble bytes, and accept paths that stall. Real
// networks produce those faults rarely and unreproducibly; the chaos
// policy produces them *on demand and deterministically*, the same way
// svc::FaultInjector fails predictor evaluations — every decision is a
// pure function of (seed, stream, draw#), so a chaos run replays the
// exact same fault storm on every platform.
//
// The policy is decision-only: it never touches a socket itself. The
// serving layer consults it at two boundaries and acts on the verdicts:
//
//   * accept time — reset_on_accept() (close the fresh connection with an
//     RST) and accept_delay_s() (stall the session before its first read,
//     as a loaded accept path would);
//   * response writes — next_write_fault() picks per frame between a
//     clean write, a connection reset, or a truncated frame (half the
//     wire bytes, then RST); dribble_pause_s() spaces the chunks of a
//     slow-loris write.
//
// Configured from the `net:` target of the fault-spec grammar (see
// svc/fault.hpp); counters record what was actually injected so harness
// assertions can demand a minimum amount of chaos.
#pragma once

#include <atomic>
#include <cstdint>

namespace epp::net {

/// Chaos rates. All probabilities are per-decision; delays are means of
/// an exponential draw (tails matter for timeout handling).
struct ChaosConfig {
  double accept_reset_p = 0.0;   // reset a connection straight after accept
  double accept_delay_s = 0.0;   // mean stall before a session's first read
  double reset_p = 0.0;          // reset instead of writing a response
  double truncate_p = 0.0;       // write half a frame, then reset
  double dribble_s = 0.0;        // mean pause between slow-loris chunks

  bool any() const noexcept {
    return accept_reset_p > 0.0 || accept_delay_s > 0.0 || reset_p > 0.0 ||
           truncate_p > 0.0 || dribble_s > 0.0;
  }
};

enum class WriteFault : std::uint8_t {
  kNone,      // write the frame normally
  kReset,     // drop the connection instead of answering
  kTruncate,  // write a partial frame, then drop the connection
};

/// Injected-fault counters (what actually happened, not the configured
/// rates). Snapshot via ChaosPolicy::stats().
struct ChaosStats {
  std::uint64_t accept_resets = 0;
  std::uint64_t accept_delays = 0;
  std::uint64_t write_resets = 0;
  std::uint64_t write_truncates = 0;
  std::uint64_t dribbled_writes = 0;
};

class ChaosPolicy {
 public:
  explicit ChaosPolicy(ChaosConfig config,
                       std::uint64_t seed = 0xC4A05EEDULL) noexcept;

  /// Accept-time verdicts; each call advances its own stream.
  bool reset_on_accept() const noexcept;
  /// Seconds to stall a fresh session before its first read (0 = none).
  double accept_delay_s() const noexcept;

  /// Per-response verdict (reset beats truncate when both fire).
  WriteFault next_write_fault() const noexcept;
  /// True when writes should dribble in chunks instead of one send.
  bool dribble_writes() const noexcept { return config_.dribble_s > 0.0; }
  /// Pause before the next slow-loris chunk. Capped at 50 ms per chunk so
  /// a chaotic write stays bounded regardless of the configured mean.
  double dribble_pause_s() const noexcept;
  /// Count one dribbled frame (the serving layer calls this once per
  /// frame it actually chunked).
  void count_dribbled_write() const noexcept {
    counters_.dribbled_writes.fetch_add(1, std::memory_order_relaxed);
  }

  const ChaosConfig& config() const noexcept { return config_; }
  ChaosStats stats() const noexcept;

 private:
  /// Uniform [0, 1) as a pure function of (seed, stream, draw#).
  double unit_draw(std::uint64_t stream_tag,
                   std::atomic<std::uint64_t>& counter) const noexcept;

  ChaosConfig config_;
  std::uint64_t seed_;
  mutable std::atomic<std::uint64_t> accept_reset_draws_{0};
  mutable std::atomic<std::uint64_t> accept_delay_draws_{0};
  mutable std::atomic<std::uint64_t> write_draws_{0};
  mutable std::atomic<std::uint64_t> dribble_draws_{0};
  mutable struct {
    std::atomic<std::uint64_t> accept_resets{0};
    std::atomic<std::uint64_t> accept_delays{0};
    std::atomic<std::uint64_t> write_resets{0};
    std::atomic<std::uint64_t> write_truncates{0};
    std::atomic<std::uint64_t> dribbled_writes{0};
  } counters_;
};

}  // namespace epp::net
