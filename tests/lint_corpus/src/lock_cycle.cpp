// Corpus: EPP-CONC-001 (lock-order cycle among unranked mutexes) plus
// EPP-CONC-008 for each std::mutex declaration. No single edge breaks
// a rank rule — only the cycle pass can see this deadlock.
#include <mutex>

namespace lint_corpus {

inline std::mutex cycle_a;
inline std::mutex cycle_b;
inline std::mutex cycle_c;

inline void a_then_b() {
  const std::lock_guard ga(cycle_a);
  const std::lock_guard gb(cycle_b);
}

inline void b_then_c() {
  const std::lock_guard gb(cycle_b);
  const std::lock_guard gc(cycle_c);
}

inline void c_then_a() {
  const std::lock_guard gc(cycle_c);
  const std::lock_guard ga(cycle_a);
}

}  // namespace lint_corpus
