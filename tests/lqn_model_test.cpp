#include "lqn/model.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace epp::lqn {
namespace {

Model minimal_model() {
  Model m;
  const auto box = m.add_processor({"box", Scheduling::kDelay, 1.0, 1});
  const auto cpu = m.add_processor({"cpu", Scheduling::kProcessorSharing, 1.0, 1});
  const auto clients = m.add_task(make_closed_client_task("clients", box, 10.0, 5.0));
  const auto server = m.add_task(make_server_task("server", cpu, 4));
  const auto cycle = m.add_entry({"cycle", clients, 0.0, {}});
  const auto serve = m.add_entry({"serve", server, 0.01, {}});
  m.add_call(cycle, serve, 1.0);
  return m;
}

TEST(LqnModel, ValidModelValidates) {
  EXPECT_NO_THROW(minimal_model().validate());
}

TEST(LqnModel, FindByName) {
  const Model m = minimal_model();
  EXPECT_TRUE(m.find_task("server").has_value());
  EXPECT_TRUE(m.find_entry("serve").has_value());
  EXPECT_TRUE(m.find_processor("cpu").has_value());
  EXPECT_FALSE(m.find_task("nope").has_value());
  EXPECT_FALSE(m.find_entry("nope").has_value());
  EXPECT_FALSE(m.find_processor("nope").has_value());
}

TEST(LqnModel, ReferenceTasksListed) {
  const Model m = minimal_model();
  const auto refs = m.reference_tasks();
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(m.task(refs[0]).name, "clients");
}

TEST(LqnModel, RejectsDanglingReferences) {
  Model m;
  EXPECT_THROW(m.add_task(make_server_task("t", 5, 1)),
               std::invalid_argument);
  m.add_processor({"p", Scheduling::kProcessorSharing, 1.0, 1});
  EXPECT_THROW(m.add_entry({"e", 3, 0.0, {}}), std::invalid_argument);
  m.add_task(make_server_task("t", 0, 1));
  m.add_entry({"e", 0, 0.0, {}});
  EXPECT_THROW(m.add_call(0, 9, 1.0), std::invalid_argument);
  EXPECT_THROW(m.add_call(0, 0, -1.0), std::invalid_argument);
}

TEST(LqnModel, ValidateRejectsNoReferenceTask) {
  Model m;
  const auto cpu = m.add_processor({"cpu", Scheduling::kProcessorSharing, 1.0, 1});
  m.add_task(make_server_task("server", cpu, 1));
  m.add_entry({"serve", 0, 0.01, {}});
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(LqnModel, ValidateRejectsZeroPopulation) {
  Model m = minimal_model();
  m.task(*m.find_task("clients")).population = 0.0;
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(LqnModel, ValidateRejectsCallIntoReferenceTask) {
  Model m = minimal_model();
  m.add_call(*m.find_entry("serve"), *m.find_entry("cycle"), 1.0);
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(LqnModel, ValidateRejectsSelfTaskCall) {
  Model m = minimal_model();
  const auto cpu = *m.find_processor("cpu");
  const auto server = *m.find_task("server");
  const auto extra = m.add_entry({"extra", server, 0.001, {}});
  m.add_call(*m.find_entry("serve"), extra, 1.0);
  (void)cpu;
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(LqnModel, ValidateRejectsCycles) {
  Model m = minimal_model();
  const auto cpu2 = m.add_processor({"cpu2", Scheduling::kProcessorSharing, 1.0, 1});
  const auto other = m.add_task(make_server_task("other", cpu2, 1));
  const auto other_entry = m.add_entry({"other_e", other, 0.001, {}});
  m.add_call(*m.find_entry("serve"), other_entry, 1.0);
  m.add_call(other_entry, *m.find_entry("serve"), 1.0);
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(LqnModel, ValidateRejectsTaskWithoutEntries) {
  Model m = minimal_model();
  m.add_task(make_server_task("empty", 1, 1));
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(LqnModel, VisitRatiosMultiplyAlongCallChain) {
  Model m;
  const auto box = m.add_processor({"box", Scheduling::kDelay, 1.0, 1});
  const auto cpu = m.add_processor({"cpu", Scheduling::kProcessorSharing, 1.0, 1});
  const auto clients = m.add_task(make_closed_client_task("clients", box, 5.0, 7.0));
  const auto app = m.add_task(make_server_task("app", cpu, 1));
  const auto db = m.add_task(make_server_task("db", cpu, 1));
  const auto cycle = m.add_entry({"cycle", clients, 0.0, {}});
  const auto serve = m.add_entry({"serve", app, 0.004, {}});
  const auto query = m.add_entry({"query", db, 0.001, {}});
  m.add_call(cycle, serve, 1.0);
  m.add_call(serve, query, 1.14);
  const auto visits = m.visit_ratios(clients);
  EXPECT_DOUBLE_EQ(visits[cycle], 1.0);
  EXPECT_DOUBLE_EQ(visits[serve], 1.0);
  EXPECT_DOUBLE_EQ(visits[query], 1.14);
  (void)db;
}

TEST(LqnModel, VisitRatiosRejectNonReference) {
  const Model m = minimal_model();
  EXPECT_THROW(m.visit_ratios(*m.find_task("server")), std::invalid_argument);
}

}  // namespace
}  // namespace epp::lqn
