// EPP-SEM-001..005: the HYDRA curve analyzer. Proves, with the interval
// domain in interval.hpp, that every relationship-1 fit a bundle persists
// stays non-negative and monotone over the full client range — on the
// *raw* piecewise equations, before the runtime clamps in
// Relationship1::predict_metric and Relationship2::predict_for get a
// chance to mask a defective fit. Refutations carry a concrete witness
// client count into the fix-it hint.
#include "lint/verify.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <string>

#include "hydra/relationships.hpp"
#include "lint/interval.hpp"

namespace epp::lint {
namespace {

/// One refuted curve property, phrased without the model/server subject
/// (the caller prepends it — the same checks back both the per-server
/// rules and the SEM-005 hypothetical-server probe).
struct Defect {
  std::string message;
  std::string hint;
};

bool params_finite(const hydra::Relationship1& rel) {
  return std::isfinite(rel.c_lower) && std::isfinite(rel.lambda_lower) &&
         std::isfinite(rel.lambda_upper) && std::isfinite(rel.c_upper) &&
         std::isfinite(rel.max_throughput_rps) && std::isfinite(rel.gradient_m);
}

std::string witness_hint(double clients, double value_s) {
  return "witness: N = " + fmt_value(clients) + " clients -> " +
         fmt_value(value_s) + " s; re-run epp_calibrate instead of editing "
         "fitted parameters by hand";
}

/// SEM-001: a prediction piece dips below zero on its active range.
std::optional<Defect> check_negative(const hydra::Relationship1& rel,
                                     double max_clients_factor) {
  const double n_star = rel.clients_at_max_throughput();
  if (!(n_star > 0.0) || !std::isfinite(n_star)) return std::nullopt;
  const double n1 = rel.transition_lo * n_star;
  const double n2 = rel.transition_hi * n_star;
  const double hi = std::max(max_clients_factor * n_star, n2);

  const auto lower_ext = [&](const Interval& x) {
    return scale_exp(rel.c_lower, rel.lambda_lower, x);
  };
  const auto lower_pt = [&](double clients) {
    return rel.c_lower * std::exp(rel.lambda_lower * clients);
  };
  Witness witness;
  if (prove_at_least(lower_ext, lower_pt, 0.0, n1, 0.0, &witness) ==
      Proof::kRefuted) {
    prefer_integer_witness(lower_pt, 0.0, n1, 0.0, &witness);
    return Defect{"lower equation predicts " + fmt_value(witness.value) +
                      " s at N = " + fmt_value(witness.x) + " clients",
                  witness_hint(witness.x, witness.value)};
  }

  const auto upper_ext = [&](const Interval& x) {
    return linear(rel.lambda_upper, rel.c_upper, x);
  };
  const auto upper_pt = [&](double clients) {
    return rel.lambda_upper * clients + rel.c_upper;
  };
  if (prove_at_least(upper_ext, upper_pt, n2, hi, 0.0, &witness) ==
      Proof::kRefuted) {
    prefer_integer_witness(upper_pt, n2, hi, 0.0, &witness);
    return Defect{"upper equation predicts " + fmt_value(witness.value) +
                      " s at N = " + fmt_value(witness.x) + " clients",
                  witness_hint(witness.x, witness.value)};
  }
  return std::nullopt;
}

/// SEM-002: a transition-band endpoint is non-positive, so the
/// exponential phasing through (n1, y1) and (n2, y2) is undefined and
/// predict_metric degrades to a hard switch that jumps at the boundary.
std::optional<Defect> check_degenerate(const hydra::Relationship1& rel) {
  const double n_star = rel.clients_at_max_throughput();
  if (!(n_star > 0.0) || !std::isfinite(n_star)) return std::nullopt;
  const double n1 = rel.transition_lo * n_star;
  const double n2 = rel.transition_hi * n_star;
  if (!(n2 > n1)) return std::nullopt;
  const double y1 = rel.c_lower * std::exp(rel.lambda_lower * n1);
  const double y2 = rel.lambda_upper * n2 + rel.c_upper;
  const bool lower_bad = !(y1 > 0.0);
  if (!lower_bad && y2 > 0.0) return std::nullopt;
  const double n = lower_bad ? n1 : n2;
  const double y = lower_bad ? y1 : y2;
  const char* piece = lower_bad ? "lower equation at the 66% boundary"
                                : "upper equation at the 110% boundary";
  return Defect{
      "transition band is degenerate: " + std::string(piece) + " gives " +
          fmt_value(y) + " s (N = " + fmt_value(n) +
          " clients), so the exponential phasing is undefined and the curve "
          "is discontinuous there",
      witness_hint(n, y)};
}

/// SEM-003: the curve decreases across the transition band (more load,
/// faster responses — physically implausible, almost always a bad fit).
std::optional<Defect> check_monotone(const hydra::Relationship1& rel) {
  const double n_star = rel.clients_at_max_throughput();
  if (!(n_star > 0.0) || !std::isfinite(n_star)) return std::nullopt;
  const double n1 = rel.transition_lo * n_star;
  const double n2 = rel.transition_hi * n_star;
  if (!(n2 > n1)) return std::nullopt;
  const double y1 = rel.c_lower * std::exp(rel.lambda_lower * n1);
  const double y2 = rel.lambda_upper * n2 + rel.c_upper;
  if (!(y1 > 0.0) || !(y2 > 0.0) || y2 >= y1) return std::nullopt;
  return Defect{
      "curve is not monotone across the transition band: upper(N = " +
          fmt_value(n2) + ") = " + fmt_value(y2) + " s < lower(N = " +
          fmt_value(n1) + ") = " + fmt_value(y1) + " s",
      "witness pair: N = " + fmt_value(n1) + " -> " + fmt_value(y1) +
          " s vs N = " + fmt_value(n2) + " -> " + fmt_value(y2) +
          " s; re-run epp_calibrate instead of editing fitted parameters "
          "by hand"};
}

/// First defect of any kind — the SEM-005 probe reports one finding per
/// model, not one per sample per rule.
std::optional<Defect> first_curve_defect(const hydra::Relationship1& rel,
                                         double max_clients_factor) {
  if (auto d = check_degenerate(rel)) return d;
  if (auto d = check_negative(rel, max_clients_factor)) return d;
  return check_monotone(rel);
}

/// Locate a finding on the server's fit line inside the embedded model
/// block, falling back to the block header, then the whole artifact.
SourceLocation fit_location(const std::string& file,
                            const calib::BundleParseInfo* info, bool is_mean,
                            const std::string& server) {
  if (info != nullptr) {
    const auto& lines = is_mean ? info->mean_server_lines
                                : info->p90_server_lines;
    if (const auto it = lines.find(server); it != lines.end())
      return {file, it->second};
    return {file, is_mean ? info->mean_model_line : info->p90_model_line};
  }
  return {file, 0};
}

void verify_model_curves(const hydra::HistoricalModel& model, bool is_mean,
                         const calib::CalibrationBundle& bundle,
                         const std::string& file,
                         const calib::BundleParseInfo* info,
                         const VerifyOptions& options,
                         Diagnostics& diagnostics) {
  const std::string label = is_mean ? "mean model" : "p90 model";

  for (const std::string& name : model.servers()) {
    const hydra::Relationship1& rel = model.server(name);
    if (!params_finite(rel)) continue;  // structural; lint's domain
    const SourceLocation where = fit_location(file, info, is_mean, name);
    const std::string subject = label + ", server '" + name + "': ";
    if (auto d = check_negative(rel, options.max_clients_factor))
      diagnostics.error("EPP-SEM-001", where, subject + d->message, d->hint);
    if (auto d = check_degenerate(rel))
      diagnostics.error("EPP-SEM-002", where, subject + d->message, d->hint);
    if (auto d = check_monotone(rel))
      diagnostics.warning("EPP-SEM-003", where, subject + d->message, d->hint);
  }

  // SEM-004: the relationship-3 mix line must keep max throughput
  // positive over the whole buy-percentage domain [0, 100].
  if (model.has_mix_calibration()) {
    const hydra::Relationship3& mix = model.mix_relationship();
    const util::LinearFit& fit = mix.max_tput_vs_buy_pct;
    const auto ext = [&](const Interval& b) {
      return linear(fit.slope, fit.intercept, b);
    };
    const auto pt = [&](double b) { return fit(b); };
    Witness witness;
    if (prove_at_least(ext, pt, 0.0, 100.0, 0.0, &witness) ==
        Proof::kRefuted) {
      prefer_integer_witness(pt, 0.0, 100.0, 0.0, &witness);
      SourceLocation where{file, 0};
      if (info != nullptr)
        where.line = is_mean && info->mean_mix_line != 0
                         ? info->mean_mix_line
                         : (is_mean ? info->mean_model_line
                                    : info->p90_model_line);
      diagnostics.warning(
          "EPP-SEM-004", where,
          label + ": relationship-3 mix fit predicts a non-positive max "
                  "throughput (" +
              fmt_value(witness.value) + " rps) at buy = " +
              fmt_value(witness.x) + "%",
          "witness: buy = " + fmt_value(witness.x) + "% -> " +
              fmt_value(witness.value) +
              " rps; re-run the mix benchmark (epp_calibrate without "
              "--no-mix)");
    }
  }

  // SEM-005: probe the relationship-2 extrapolation the way
  // add_new_server will use it — at sampled hypothetical max throughputs
  // spanning (and overshooting) the catalog range.
  if (model.established_servers().size() < 2 ||
      options.hypothetical_samples < 1)
    return;
  double mx_min = 0.0, mx_max = 0.0;
  for (const calib::ServerRecord& record : bundle.servers) {
    if (!(record.max_throughput_rps > 0.0)) continue;
    if (mx_min == 0.0 || record.max_throughput_rps < mx_min)
      mx_min = record.max_throughput_rps;
    mx_max = std::max(mx_max, record.max_throughput_rps);
  }
  if (!(mx_min > 0.0)) return;  // no measured catalog entries to anchor on
  const hydra::Relationship2& rel2 = model.cross_server_fit();
  const double lo = 0.5 * mx_min;
  const double hi = std::max(options.hypothetical_span * mx_max, lo);
  const int samples = options.hypothetical_samples;
  for (int i = 0; i < samples; ++i) {
    const double t = samples > 1
                         ? static_cast<double>(i) /
                               static_cast<double>(samples - 1)
                         : 0.5;
    const double mx = lo + t * (hi - lo);
    const SourceLocation where{
        file, info != nullptr
                  ? (is_mean ? info->mean_model_line : info->p90_model_line)
                  : 0};
    const std::string subject =
        label + ": relationship-2 extrapolation breaks down at a "
                "hypothetical server with max throughput " +
        fmt_value(mx) + " rps: ";
    const double raw_c_lower = rel2.c_lower_vs_max_tput(mx);
    if (!(raw_c_lower > 0.0)) {
      diagnostics.warning(
          "EPP-SEM-005", where,
          subject + "the c_lower fit gives " + fmt_value(raw_c_lower) +
              " before the runtime clamp to 1e-6",
          "witness: max throughput = " + fmt_value(mx) +
              " rps -> c_lower = " + fmt_value(raw_c_lower) +
              "; add_new_server would serve a silently clamped curve — "
              "recalibrate with more established servers");
      return;  // one finding per model: the first defective sample
    }
    const hydra::Relationship1 derived =
        rel2.predict_for(mx, model.gradient_m());
    if (!params_finite(derived)) continue;
    if (auto d = first_curve_defect(derived, options.max_clients_factor)) {
      diagnostics.warning("EPP-SEM-005", where, subject + d->message,
                          d->hint);
      return;
    }
  }
}

}  // namespace

void verify_hydra_curves(const calib::CalibrationBundle& bundle,
                         const std::string& file,
                         const calib::BundleParseInfo* info,
                         const VerifyOptions& options,
                         Diagnostics& diagnostics) {
  verify_model_curves(bundle.mean_model, /*is_mean=*/true, bundle, file, info,
                      options, diagnostics);
  verify_model_curves(bundle.p90_model, /*is_mean=*/false, bundle, file, info,
                      options, diagnostics);
}

}  // namespace epp::lint
