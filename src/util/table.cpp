#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace epp::util {

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("Table: row width mismatch");
  rows_.push_back(std::move(cells));
}

void Table::add_numeric_row(const std::vector<double>& cells, int precision) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double c : cells) row.push_back(fmt(c, precision));
  add_row(std::move(row));
}

std::string Table::to_ascii() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "") << std::left << std::setw(static_cast<int>(width[c]))
         << row[c];
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) os << (c ? "," : "") << row[c];
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_ascii(); }

}  // namespace epp::util
