#include "lqn/parser.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "lqn/solver.hpp"

namespace epp::lqn {
namespace {

constexpr const char* kTradeText = R"(
# Trade case-study model
processor client_box delay
processor app_cpu ps speed=1.0
processor db_cpu ps
processor db_disk fifo

task clients ref processor=client_box population=500 think=7.0
task app processor=app_cpu multiplicity=50
task db processor=db_cpu multiplicity=20
task disk processor=db_disk

entry cycle task=clients
entry browse task=app demand=0.005376
entry query task=db demand=0.00083
entry io task=disk demand=0.0004

call cycle browse 1.0
call browse query 1.14
call query io 1.0
)";

TEST(LqnParser, ParsesTradeModel) {
  const Model m = parse_model(kTradeText);
  EXPECT_EQ(m.processors().size(), 4u);
  EXPECT_EQ(m.tasks().size(), 4u);
  EXPECT_EQ(m.entries().size(), 4u);
  EXPECT_NO_THROW(m.validate());
  const auto app = m.find_task("app");
  ASSERT_TRUE(app.has_value());
  EXPECT_EQ(m.task(*app).multiplicity, 50u);
  const auto clients = m.find_task("clients");
  ASSERT_TRUE(clients.has_value());
  EXPECT_TRUE(m.task(*clients).is_reference);
  EXPECT_DOUBLE_EQ(m.task(*clients).population, 500.0);
  EXPECT_DOUBLE_EQ(m.task(*clients).think_time_s, 7.0);
}

TEST(LqnParser, ParsedModelSolves) {
  const Model m = parse_model(kTradeText);
  const SolveResult r = LayeredSolver().solve(m);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.throughput_rps("clients"), 500.0 / 7.0, 2.0);
}

TEST(LqnParser, RoundTripPreservesStructureAndSolution) {
  const Model original = parse_model(kTradeText);
  const Model reparsed = parse_model(to_text(original));
  EXPECT_EQ(reparsed.processors().size(), original.processors().size());
  EXPECT_EQ(reparsed.tasks().size(), original.tasks().size());
  EXPECT_EQ(reparsed.entries().size(), original.entries().size());
  const double r1 = LayeredSolver().solve(original).response_time_s("clients");
  const double r2 = LayeredSolver().solve(reparsed).response_time_s("clients");
  EXPECT_DOUBLE_EQ(r1, r2);
}

TEST(LqnParser, CommentsAndBlankLinesIgnored) {
  const Model m = parse_model(
      "# just a comment\n\nprocessor p ps # trailing comment\n");
  EXPECT_EQ(m.processors().size(), 1u);
}

TEST(LqnParser, ErrorsCarryLineNumbers) {
  try {
    parse_model("processor p ps\nbogus line here\n");
    FAIL() << "expected parse error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(LqnParser, RejectsUnknownReferences) {
  EXPECT_THROW(parse_model("task t processor=missing\n"), std::invalid_argument);
  EXPECT_THROW(parse_model("entry e task=missing\n"), std::invalid_argument);
  EXPECT_THROW(parse_model("call a b 1.0\n"), std::invalid_argument);
}

TEST(LqnParser, RejectsDuplicatesAndBadNumbers) {
  EXPECT_THROW(parse_model("processor p ps\nprocessor p ps\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_model("processor p ps speed=abc\n"), std::invalid_argument);
  EXPECT_THROW(parse_model("processor p ps multiplicity=1.5\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_model("processor p bogus-sched\n"), std::invalid_argument);
}

TEST(LqnParser, ForwardCallReferencesAllowed) {
  // Calls may appear before the entries they reference are declared.
  const Model m = parse_model(R"(
processor box delay
processor cpu ps
call cycle serve 1.0
task clients ref processor=box population=5 think=1.0
task server processor=cpu
entry cycle task=clients
entry serve task=server demand=0.01
)");
  EXPECT_NO_THROW(m.validate());
  EXPECT_EQ(m.entry(*m.find_entry("cycle")).calls.size(), 1u);
}

}  // namespace
}  // namespace epp::lqn
