// Cache sizing with the historical method (paper section 7.2): a
// deployment that keeps session data in app-server memory wants to know
// how much memory keeps response times acceptable. The historical method
// records cache size as just another variable; this example calibrates the
// trend from two measured sizes and uses it to pick the smallest cache
// meeting a response-time budget.
#include <cmath>
#include <iostream>

#include "sim/trade/testbed.hpp"
#include "util/regression.hpp"
#include "util/table.hpp"

namespace {

epp::sim::trade::RunResult measure(double sessions, std::size_t clients,
                                   std::uint64_t seed) {
  using namespace epp::sim::trade;
  TestbedConfig config = typical_workload(app_serv_f(), clients, seed);
  config.warmup_s = 40.0;
  config.measure_s = 160.0;
  CacheConfig cache;
  cache.capacity_bytes = static_cast<std::uint64_t>(sessions * 8 * 1024);
  config.cache = cache;
  return run_testbed(config);
}

}  // namespace

int main() {
  using namespace epp;
  const std::size_t clients = 900;
  const double budget_ms = 14.0;
  std::cout << "EPP cache sizing: smallest session cache keeping mean RT <= "
            << budget_ms << " ms at " << clients << " clients\n\n";

  // Historical calibration: two measurements, RT modelled linear in the
  // reciprocal cache size (miss ratio ~ 1 - size/working-set).
  const auto small = measure(150, clients, 3);
  const auto large = measure(900, clients, 4);
  const util::LinearFit fit =
      util::fit_linear(std::vector<double>{1.0 / 150.0, 1.0 / 900.0},
                       std::vector<double>{small.mean_rt_s, large.mean_rt_s});

  util::Table table({"cache_sessions", "cache_mb", "predicted_rt_ms",
                     "measured_rt_ms", "measured_miss_ratio"});
  double chosen = 0.0;
  for (double sessions : {200.0, 300.0, 400.0, 500.0, 700.0, 1000.0}) {
    const double predicted = fit(1.0 / sessions);
    const auto measured = measure(sessions, clients, 9);
    if (chosen == 0.0 && predicted * 1e3 <= budget_ms) chosen = sessions;
    table.add_row({util::fmt(sessions, 0), util::fmt(sessions * 8.0 / 1024.0, 1),
                   util::fmt(predicted * 1e3, 2),
                   util::fmt(measured.mean_rt_s * 1e3, 2),
                   util::fmt(measured.cache_miss_ratio, 3)});
  }
  table.print(std::cout);
  std::cout << "\nsmallest predicted-OK cache: " << util::fmt(chosen, 0)
            << " sessions (" << util::fmt(chosen * 8.0 / 1024.0, 1)
            << " MB). A layered queuing model cannot answer this without a "
               "miss-ratio input that depends on its own solution (paper "
               "section 7.2).\n";
  return 0;
}
