// epp_srclint — source-level concurrency, hot-path & determinism
// analyzer.
//
// Runs the EPP-CONC, EPP-HOT and EPP-DET rule families over C++ source
// text, using the models built by src/lint/src/source_model.hpp and the
// annotations in util/annotations.hpp. Reported through the same
// epp_diag engine as every other linter in the tree (stable rule IDs,
// severity lattice, text/JSON renderers, exit-code policy), with the
// inline `// epp-lint: ignore(<RULE>)` suppression syntax applied before
// findings are returned.
//
// Rule catalog (see README.md for the full table):
//
//   EPP-CONC-001  error    lock-order violation: acquiring a mutex whose
//                          EPP_LOCK_RANK is not strictly greater than a
//                          held mutex's rank, or a cycle in the
//                          acquired-while-holding graph
//   EPP-CONC-002  error    double lock of a non-recursive mutex in one
//                          scope
//   EPP-CONC-003  warning  blocking call (join / sleep_for / recv / poll
//                          / accept / connect / system / getline) while
//                          holding a lock
//   EPP-CONC-004  warning  condition-variable wait without a predicate
//                          (lost-wakeup / spurious-wakeup hazard)
//   EPP-CONC-005  warning  field declared EPP_GUARDED_BY(m) accessed on
//                          a line where m is not held
//   EPP-CONC-006  warning  detached thread (.detach(): unjoinable,
//                          races with shutdown)
//   EPP-CONC-007  warning  compare_exchange_weak outside a retry loop
//                          (weak CAS may fail spuriously)
//   EPP-CONC-008  warning  mutex not in the rank order: a std::mutex
//                          family declaration, or a RankedMutex without
//                          EPP_LOCK_RANK
//   EPP-HOT-001   warning  heap allocation (new / malloc / make_unique /
//                          make_shared) inside an EPP_HOT region
//   EPP-HOT-002   warning  std::function construction inside an EPP_HOT
//                          region (typically heap-allocates)
//   EPP-HOT-003   warning  lock acquisition inside an EPP_HOT region
//   EPP-HOT-004   warning  console / file I/O inside an EPP_HOT region
//   EPP-HOT-005   error    unbalanced or label-mismatched EPP_HOT
//                          markers
//   EPP-DET-001   error    nondeterministic entropy (std::random_device
//                          anywhere; time() / clock ::now() values
//                          flowing into a seed)
//   EPP-DET-002   error    std <random> engine/distribution used where
//                          util::Rng's portable samplers are required
//   EPP-DET-003   error    iteration over an unordered container whose
//                          body accumulates floating point, emits
//                          output, or schedules events
//   EPP-DET-004   error    shared floating-point accumulator mutated
//                          inside a thread-pool lambda (no fixed-order
//                          merge)
//   EPP-DET-005   warning  default-seeded util::Rng constructed in
//                          library (non-tool, non-test) code
//   EPP-DET-006   warning  pointer values used as ordering/hash keys
//   EPP-META-001  warning  suppression comment that matches no finding
//   EPP-META-002  error    input file could not be read
//
// The analysis is textual and intra-procedural by design (no compiler
// front end, no call graph): it proves the lock discipline a reader can
// check by eye, and leaves cross-call-chain ordering to the runtime
// lock-rank tracker that shares the same EPP_LOCK_RANK declarations.
#pragma once

#include <string>
#include <vector>

#include "lint/diagnostic.hpp"

namespace epp::lint {

struct SrclintOptions {
  /// Honor `// epp-lint: ignore(...)` comments (and report stale ones
  /// as EPP-META-001). Off shows every finding, suppressed or not.
  bool use_suppressions = true;
  /// Rule-ID prefixes to report (e.g. {"EPP-DET", "EPP-CONC"}); empty
  /// means every family. EPP-META-002 input errors always report, and
  /// suppressions of disabled rules are neither applied nor counted
  /// stale.
  std::vector<std::string> rule_prefixes;
};

/// Lint the given files and/or directories (directories recurse over
/// .hpp/.h/.hh/.cpp/.cc/.cxx). Findings are appended to `out` sorted by
/// (file, line, rule).
void lint_sources(const std::vector<std::string>& paths, Diagnostics& out,
                  const SrclintOptions& options = {});

}  // namespace epp::lint
