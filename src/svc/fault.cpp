#include "svc/fault.hpp"

#include <array>
#include <cmath>
#include <cstddef>
#include <sstream>
#include <vector>

#include "util/rng.hpp"

namespace epp::svc {
namespace {

/// FNV-1a — std::hash<string> is implementation-defined, and the fault
/// sequences should reproduce across standard libraries.
std::uint64_t fnv1a(const std::string& text) noexcept {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

/// Uniform [0, 1) as a pure function of (seed, method, server, draw#).
double unit_draw(std::uint64_t seed, Method method, const std::string& server,
                 std::uint64_t draw, std::uint64_t stream_tag) noexcept {
  std::uint64_t state = seed;
  state ^= fnv1a(server);
  state ^= (static_cast<std::uint64_t>(method) + 1) * 0xBF58476D1CE4E5B9ULL;
  state ^= (draw + 1) * 0x94D049BB133111EBULL;
  state ^= stream_tag * 0x9E3779B97F4A7C15ULL;
  const std::uint64_t bits = util::splitmix64(state);
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::stringstream stream(text);
  std::string part;
  while (std::getline(stream, part, sep))
    if (!part.empty()) parts.push_back(part);
  return parts;
}

}  // namespace

const MethodFaults& FaultConfig::for_method(Method method) const {
  switch (method) {
    case Method::kHistorical:
      return historical;
    case Method::kLqn:
      return lqn;
    case Method::kHybrid:
      return hybrid;
  }
  return historical;  // unreachable
}

MethodFaults& FaultConfig::for_method(Method method) {
  return const_cast<MethodFaults&>(
      static_cast<const FaultConfig&>(*this).for_method(method));
}

bool FaultConfig::any() const noexcept {
  for (const MethodFaults* faults : {&historical, &lqn, &hybrid})
    if (faults->fail_probability > 0.0 || faults->latency_s > 0.0) return true;
  return false;
}

FaultConfig lint_fault_spec(const std::string& spec,
                            const lint::SourceLocation& where,
                            lint::Diagnostics& diagnostics) {
  FaultConfig config;
  // (method, knob) assignment tracking for the duplicate rule: index 0/1 =
  // fail / latency-ms per method in FaultConfig declaration order. The net
  // target tracks its five knobs in its own array.
  constexpr std::size_t kKnobs = 2;
  constexpr std::array<Method, 3> kMethods{Method::kHistorical, Method::kLqn,
                                           Method::kHybrid};
  std::array<bool, 3 * kKnobs> assigned{};
  const auto knob_index = [&](Method method, std::size_t knob) {
    return static_cast<std::size_t>(method) * kKnobs + knob;
  };
  // Net knob slots: reset, truncate, accept-reset, accept-delay-ms,
  // dribble-ms. The first three are probabilities (<= 1).
  constexpr std::array<const char*, 5> kNetKnobs{
      "reset", "truncate", "accept-reset", "accept-delay-ms", "dribble-ms"};
  std::array<bool, kNetKnobs.size()> net_assigned{};

  for (const std::string& clause : split(spec, ';')) {
    const auto colon = clause.find(':');
    if (colon == std::string::npos) {
      diagnostics.error("EPP-FLT-001", where,
                        "clause '" + clause + "' wants target:knob[,knob...]",
                        "write e.g. 'lqn:fail=0.3,latency-ms=20'");
      continue;
    }
    const std::string target = clause.substr(0, colon);
    const bool is_net = target == "net";
    std::vector<Method> methods;
    if (target == "*") {
      methods.assign(kMethods.begin(), kMethods.end());
    } else if (!is_net) {
      try {
        methods = {method_from_name(target)};
      } catch (const std::invalid_argument&) {
        diagnostics.error("EPP-FLT-002", where,
                          "unknown target '" + target + "'",
                          "targets are historical, lqn, hybrid, '*' or net");
        continue;
      }
    }
    const auto knobs = split(clause.substr(colon + 1), ',');
    if (knobs.empty()) {
      diagnostics.error("EPP-FLT-001", where,
                        "clause '" + clause + "' has no knobs",
                        is_net ? "append e.g. reset=P or dribble-ms=MS"
                               : "append fail=P and/or latency-ms=MS");
      continue;
    }
    for (const std::string& knob : knobs) {
      const auto eq = knob.find('=');
      if (eq == std::string::npos) {
        diagnostics.error("EPP-FLT-001", where,
                          "knob '" + knob + "' wants name=value");
        continue;
      }
      const std::string name = knob.substr(0, eq);
      const bool is_method_knob = name == "fail" || name == "latency-ms";
      std::size_t net_slot = kNetKnobs.size();
      for (std::size_t i = 0; i < kNetKnobs.size(); ++i)
        if (name == kNetKnobs[i]) net_slot = i;
      const bool is_net_knob = net_slot < kNetKnobs.size();
      if (!is_method_knob && !is_net_knob) {
        diagnostics.error(
            "EPP-FLT-002", where, "unknown knob '" + name + "'",
            "method knobs are fail=P and latency-ms=MS; net knobs are "
            "reset=P, truncate=P, accept-reset=P, accept-delay-ms=MS, "
            "dribble-ms=MS");
        continue;
      }
      if (is_net != is_net_knob) {
        diagnostics.error(
            "EPP-FLT-005", where,
            is_net ? "method knob '" + name + "' on the net target"
                   : "net knob '" + name + "' on target '" + target + "'",
            is_net ? "the net target takes reset/truncate/accept-reset/"
                     "accept-delay-ms/dribble-ms"
                   : "wire-level knobs go under the 'net:' target");
        continue;
      }
      double value = 0.0;
      try {
        value = std::stod(knob.substr(eq + 1));
      } catch (const std::exception&) {
        diagnostics.error("EPP-FLT-003", where,
                          "knob '" + knob + "' has a non-numeric value");
        continue;
      }
      if (!std::isfinite(value) || value < 0.0) {
        diagnostics.error("EPP-FLT-003", where,
                          "knob '" + knob +
                              "' wants a finite non-negative value");
        continue;
      }
      const bool is_probability =
          name == "fail" || (is_net_knob && net_slot <= 2);
      if (is_probability && value > 1.0) {
        diagnostics.error("EPP-FLT-003", where,
                          "probability '" + knob + "' exceeds 1");
        continue;
      }
      if (is_net) {
        if (net_assigned[net_slot]) {
          diagnostics.error("EPP-FLT-004", where,
                            "duplicate '" + name +
                                "' assignment for net in clause '" + clause +
                                "'",
                            "the net target takes one '" + name +
                                "' assignment");
          continue;
        }
        net_assigned[net_slot] = true;
        switch (net_slot) {
          case 0: config.net.reset_p = value; break;
          case 1: config.net.truncate_p = value; break;
          case 2: config.net.accept_reset_p = value; break;
          case 3: config.net.accept_delay_s = value / 1e3; break;
          default: config.net.dribble_s = value / 1e3; break;
        }
        continue;
      }
      const std::size_t knob_slot = name == "fail" ? 0 : 1;
      for (const Method method : methods) {
        if (assigned[knob_index(method, knob_slot)]) {
          diagnostics.error(
              "EPP-FLT-004", where,
              "duplicate '" + name + "' assignment for " +
                  std::string(method_name(method)) + " in clause '" + clause +
                  "'",
              "each method takes one '" + name +
                  "' assignment; the '*' target expands to all three methods");
          continue;
        }
        assigned[knob_index(method, knob_slot)] = true;
        MethodFaults& faults = config.for_method(method);
        if (knob_slot == 0) {
          faults.fail_probability = value;
        } else {
          faults.latency_s = value / 1e3;
        }
      }
    }
  }
  // A chaos policy that resets or truncates (almost) every response, or
  // refuses (almost) every accept, leaves nothing for the harness to
  // measure — the spec parses, but flag it as suspicious.
  if (config.net.reset_p + config.net.truncate_p > 0.9)
    diagnostics.warning(
        "EPP-FLT-006", where,
        "net reset+truncate rate " +
            lint::fmt_value(config.net.reset_p + config.net.truncate_p) +
            " faults nearly every response",
        "keep reset+truncate at or below 0.9 so some requests complete");
  if (config.net.accept_reset_p > 0.9)
    diagnostics.warning(
        "EPP-FLT-006", where,
        "net accept-reset rate " + lint::fmt_value(config.net.accept_reset_p) +
            " rejects nearly every connection",
        "keep accept-reset at or below 0.9 so clients can connect");
  return config;
}

FaultConfig parse_fault_spec(const std::string& spec) {
  lint::Diagnostics diagnostics;
  FaultConfig config = lint_fault_spec(spec, {}, diagnostics);
  if (const lint::Diagnostic* first =
          diagnostics.first_at_least(lint::Severity::kError))
    throw std::invalid_argument("fault spec: " + first->message);
  return config;
}

FaultInjector::FaultInjector(FaultConfig config, std::uint64_t seed)
    : config_(config), seed_(seed) {}

FaultInjector::Streams& FaultInjector::streams_for(
    Method method, const std::string& server) const {
  const std::pair<int, std::string> key{static_cast<int>(method), server};
  const std::lock_guard lock(mutex_);
  auto& slot = streams_[key];
  if (slot == nullptr) slot = std::make_unique<Streams>();
  return *slot;
}

bool FaultInjector::should_fail(Method method,
                                const std::string& server) const {
  const double p = config_.for_method(method).fail_probability;
  if (p <= 0.0 || !enabled()) return false;
  decisions_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t draw = streams_for(method, server)
                                 .fail_draws.fetch_add(
                                     1, std::memory_order_relaxed);
  const bool fail = unit_draw(seed_, method, server, draw, /*tag=*/1) < p;
  if (fail) failures_.fetch_add(1, std::memory_order_relaxed);
  return fail;
}

double FaultInjector::injected_latency_s(Method method,
                                         const std::string& server) const {
  const double mean = config_.for_method(method).latency_s;
  if (mean <= 0.0 || !enabled()) return 0.0;
  const std::uint64_t draw = streams_for(method, server)
                                 .latency_draws.fetch_add(
                                     1, std::memory_order_relaxed);
  // Exponential around the configured mean (inverse CDF of the draw), so
  // deadline policies see a realistic tail, still deterministically.
  const double u = unit_draw(seed_, method, server, draw, /*tag=*/2);
  return -mean * std::log1p(-u);
}

}  // namespace epp::svc
