#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace epp::util {
namespace {

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, ParallelForRethrowsTaskError) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 17) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ManySmallTasksAggregate) {
  ThreadPool pool;  // hardware concurrency
  std::atomic<long> sum{0};
  pool.parallel_for(10000, [&](std::size_t i) {
    sum.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 10000L * 9999L / 2);
}

TEST(ThreadPool, SizeReflectsWorkerCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // Regression: a parallel_for body calling parallel_for on the same pool
  // used to block on futures no worker was free to run.
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, SubmittedTaskCanRunParallelFor) {
  ThreadPool pool(2);
  auto f = pool.submit([&pool] {
    std::atomic<long> sum{0};
    pool.parallel_for(100, [&](std::size_t i) {
      sum.fetch_add(static_cast<long>(i));
    });
    return sum.load();
  });
  EXPECT_EQ(f.get(), 100L * 99L / 2);
}

TEST(ThreadPool, NestedParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(3,
                                 [&](std::size_t) {
                                   pool.parallel_for(5, [](std::size_t i) {
                                     if (i == 3)
                                       throw std::runtime_error("inner");
                                   });
                                 }),
               std::runtime_error);
}

}  // namespace
}  // namespace epp::util
