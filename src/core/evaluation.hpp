// Experiment harness shared by the bench binaries and examples: measured
// load sweeps on the simulated testbed (run in parallel on a thread pool),
// the paper's calibration procedures, and the accuracy metric.
#pragma once

#include <cstdint>
#include <vector>

#include "core/predictor.hpp"
#include "core/trade_model.hpp"
#include "hydra/relationships.hpp"
#include "sim/trade/testbed.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace epp::core {

/// One measured load point from the testbed ("measured" = simulator, the
/// substitution for the paper's WebSphere deployment; see DESIGN.md).
struct MeasuredPoint {
  double clients = 0.0;
  double mean_rt_s = 0.0;
  double p90_rt_s = 0.0;
  double throughput_rps = 0.0;
};

struct SweepOptions {
  double buy_client_fraction = 0.0;
  double warmup_s = 40.0;
  double measure_s = 160.0;
  std::uint64_t seed = util::Rng::kDefaultSeed;
};

/// Measure the testbed at each client count, one independent simulation
/// per point, fanned out on `pool` (sequential when pool is null).
std::vector<MeasuredPoint> measure_sweep(const sim::trade::ServerSpec& server,
                                         const std::vector<double>& clients,
                                         const SweepOptions& options = {},
                                         util::ThreadPool* pool = nullptr);

/// One load point measured over `replications` independent simulations
/// (distinct RNG streams), fanned out on `pool`. Returns the across-
/// replication mean and the 95% confidence half-width of the mean
/// response time — the measurement-noise floor for accuracy claims.
struct ReplicatedPoint {
  MeasuredPoint mean;
  double rt_ci95_s = 0.0;
  double throughput_ci95_rps = 0.0;
  std::size_t replications = 0;
};
ReplicatedPoint measure_replicated(const sim::trade::ServerSpec& server,
                                   double clients, std::size_t replications,
                                   const SweepOptions& options = {},
                                   util::ThreadPool* pool = nullptr);

/// Convert measurements to HYDRA data points (ns samples are implicit in
/// the measurement window).
std::vector<hydra::DataPoint> to_data_points(
    const std::vector<MeasuredPoint>& points);

/// Same, but carrying the p90 response time as the metric — feeds the
/// historical method's *direct* percentile model (section 7.1).
std::vector<hydra::DataPoint> to_p90_data_points(
    const std::vector<MeasuredPoint>& points);

/// The layered queuing method's calibration procedure (section 5): run
/// single-request-type workloads on the established server and derive the
/// per-request-type processing times from throughput and CPU usage.
TradeCalibration calibrate_lqn_from_testbed(
    std::uint64_t seed = util::Rng::kDefaultSeed,
    util::ThreadPool* pool = nullptr);

/// Accuracy of a predictor against measured points (the paper's accuracy
/// percentage: 100% minus mean absolute relative error).
struct AccuracySummary {
  double mean_rt_pct = 0.0;
  double throughput_pct = 0.0;
};
AccuracySummary accuracy_against(const Predictor& predictor,
                                 const std::string& server,
                                 const std::vector<MeasuredPoint>& measured,
                                 double buy_fraction = 0.0,
                                 double think_time_s = 7.0);

}  // namespace epp::core
