// Corpus: EPP-DET-004 — shared floating-point accumulator mutated in a
// thread-pool lambda. Even made atomic this stays wrong: float addition
// is not associative, so the sum depends on lane scheduling.
#include <cstddef>

#include "util/thread_pool.hpp"

namespace lint_corpus {

inline double racy_mean(epp::util::ThreadPool& pool, std::size_t lanes) {
  double sum = 0.0;
  auto body = [&sum](std::size_t lane) {
    sum += static_cast<double>(lane);
  };
  pool.parallel_for(lanes, body);
  return sum / static_cast<double>(lanes);
}

}  // namespace lint_corpus
