// Section 7.2 — modelling caching.
//
// The "indirect" deployment keeps per-client session data in app-server
// memory as an LRU cache over the database; a miss costs an extra DB call.
// The paper's point: the *historical* method can model the cache-size
// variable directly (record it, fit the trend), while the layered queuing
// method cannot — the extra-call count per service class depends on the
// cache-miss probability, which depends on arrival-rate distributions that
// are themselves outputs of the model ("the layered queuing method does
// not support parameters specified in terms of metrics that the model
// predicts").
//
// This bench quantifies that: measured behaviour across cache sizes, a
// historical fit calibrated from two cache sizes predicting the rest, and
// the naive LQN (which has no cache-size parameter at all) pinned at the
// no-miss answer.
// The extended study also caches *predictions themselves*: a resource
// manager re-asks the same (method, server, workload) triples every
// decision, so the second half of this bench drives the svc batch engine
// over a repeated sweep at several cache capacities and reports the
// hit/miss/eviction behaviour of its sharded LRU.
#include <iostream>

#include "common.hpp"
#include "svc/batch_predictor.hpp"
#include "util/regression.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

epp::sim::trade::RunResult run_with_cache(double sessions_capacity,
                                          std::size_t clients,
                                          std::uint64_t seed) {
  using namespace epp::sim::trade;
  TestbedConfig config = typical_workload(app_serv_f(), clients, seed);
  config.warmup_s = 40.0;
  config.measure_s = 160.0;
  CacheConfig cache;
  cache.capacity_bytes =
      static_cast<std::uint64_t>(sessions_capacity * 8 * 1024);
  config.cache = cache;
  return run_testbed(config);
}

}  // namespace

int main() {
  using namespace epp;
  std::cout << "== Section 7.2: modelling the session cache ==\n\n";

  bench::Setup setup;
  const std::size_t clients = 900;  // below the typical-workload knee
  core::WorkloadSpec w;
  w.browse_clients = static_cast<double>(clients);
  const double lqn_rt = setup.lqn->predict_mean_rt_s("AppServF", w);

  // Historical calibration: record the cache-size variable at two sizes
  // and fit the miss-cost trend against 1/size (smaller cache -> more
  // misses -> slower), exactly how HYDRA adds a new variable.
  const auto cal_small = run_with_cache(150, clients, 3);
  const auto cal_large = run_with_cache(900, clients, 4);
  const std::vector<double> inv_size{1.0 / 150.0, 1.0 / 900.0};
  const std::vector<double> rt{cal_small.mean_rt_s, cal_large.mean_rt_s};
  const util::LinearFit cache_fit = util::fit_linear(inv_size, rt);

  util::Table table({"cache_capacity_sessions", "measured_miss_ratio",
                     "measured_rt_ms", "historical_rt_ms", "naive_lqn_rt_ms"});
  for (double capacity : {100.0, 200.0, 300.0, 450.0, 600.0, 750.0, 1200.0}) {
    const auto measured = run_with_cache(capacity, clients, 9);
    table.add_row({util::fmt(capacity, 0),
                   util::fmt(measured.cache_miss_ratio, 3),
                   util::fmt(measured.mean_rt_s * 1e3, 2),
                   util::fmt(cache_fit(1.0 / capacity) * 1e3, 2),
                   util::fmt(lqn_rt * 1e3, 2)});
  }
  table.print(std::cout);

  std::cout << "\nexpected shape: measured response time falls as the cache "
               "grows; the historical fit (calibrated at just two sizes) "
               "tracks it; the LQN prediction cannot react to cache size at "
               "all without a miss-ratio input it has no way to compute.\n";

  // -- Caching predictions: the batch engine's memoization LRU -------------
  // A repeated sweep (two identical passes over 3 servers x 200 loads via
  // the hybrid method) against bounded caches: undersized shards thrash
  // and evict, an adequately sized cache answers pass 2 entirely from
  // memory.
  std::cout << "\n== Caching the predictions themselves (svc batch engine) "
               "==\n\n";
  std::vector<svc::PredictionRequest> sweep;
  for (const std::string& server : bench::server_names())
    for (double load = 100.0; load < 2100.0; load += 10.0) {
      core::WorkloadSpec spec;
      spec.browse_clients = load;
      sweep.push_back({svc::Method::kHybrid, server, spec});
    }

  util::Table cache_table({"capacity_entries", "passes", "hits", "misses",
                           "evictions", "hit_ratio_pct", "pass2_wall_ms"});
  for (const std::size_t per_shard : {16UL, 64UL, 1024UL}) {
    svc::BatchOptions options;
    options.cache_shards = 4;
    options.cache_capacity_per_shard = per_shard;
    svc::BatchPredictor batch(setup.historical.get(), setup.lqn.get(),
                              setup.hybrid.get(), options);
    (void)batch.predict_batch(sweep, &setup.pool);
    const util::Timer pass2;
    (void)batch.predict_batch(sweep, &setup.pool);
    const double pass2_ms = pass2.elapsed_us() / 1e3;
    const svc::CacheStats stats = batch.cache_stats();
    cache_table.add_row({std::to_string(4 * per_shard), "2",
                         std::to_string(stats.hits),
                         std::to_string(stats.misses),
                         std::to_string(stats.evictions),
                         util::fmt(100.0 * stats.hit_ratio(), 1),
                         util::fmt(pass2_ms, 2)});
  }
  cache_table.print(std::cout);
  std::cout << "\nexpected shape: with " << sweep.size()
            << " distinct quantized requests per pass, a 64-entry cache "
               "evicts constantly and pass 2 recomputes; a cache larger "
               "than the working set serves pass 2 entirely from memory "
               "(50% overall hit ratio; predictions are pure functions of "
               "the key, so hits are exact).\n";
  return 0;
}
