// Named RNG seeds for the calibration pipeline.
//
// Every simulator run in the repo used to pick its seed ad hoc (magic 7s
// and 11s scattered over bench/, examples/ and tools/). Naming them here
// makes the separation auditable: calibration runs, the mix benchmark and
// validation sweeps provably draw from distinct random streams, so a
// validation never scores a predictor against the very noise it was
// fitted on.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace epp::calib {

/// Seed for the layered-queuing calibration runs (support service 3: the
/// single-request-type workloads on the established server).
inline constexpr std::uint64_t kLqnCalibrationSeed = 7;

/// Seed for the mixed-workload max-throughput benchmark that feeds
/// relationship 3 (the 25%-buy run on the established server).
inline constexpr std::uint64_t kMixBenchmarkSeed = 11;

/// Seed for the historical-method measurement sweeps (gradient points and
/// the 2 lower / 2 upper relationship-1 data points).
inline constexpr std::uint64_t kSweepSeed = util::Rng::kDefaultSeed;

/// Seed for validation sweeps — distinct from every calibration seed, so
/// accuracy numbers are always out-of-sample.
inline constexpr std::uint64_t kValidationSeed = 0xC0FFEE;

/// Seed for deterministic fault injection (svc::FaultInjector): chaos
/// sweeps are reproducible and provably independent of the measurement
/// and calibration streams.
inline constexpr std::uint64_t kFaultInjectionSeed = 0xFA17ED;

/// Seed for retry backoff jitter in the resilient serving layer.
inline constexpr std::uint64_t kRetryJitterSeed = 0x1177E6;

static_assert(kValidationSeed != kLqnCalibrationSeed &&
                  kValidationSeed != kMixBenchmarkSeed &&
                  kValidationSeed != kSweepSeed,
              "validation must not reuse a calibration seed");

static_assert(kFaultInjectionSeed != kLqnCalibrationSeed &&
                  kFaultInjectionSeed != kMixBenchmarkSeed &&
                  kFaultInjectionSeed != kSweepSeed &&
                  kFaultInjectionSeed != kValidationSeed &&
                  kFaultInjectionSeed != kRetryJitterSeed,
              "fault injection must not reuse another stream's seed");

}  // namespace epp::calib
