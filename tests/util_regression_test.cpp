#include "util/regression.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace epp::util {
namespace {

TEST(LinearFit, RecoversExactLine) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y;
  for (double xi : x) y.push_back(3.5 * xi - 2.0);
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 3.5, 1e-12);
  EXPECT_NEAR(fit.intercept, -2.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LinearFit, SolveForXInverts) {
  const LinearFit fit{2.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(fit.solve_for_x(fit(7.0)), 7.0);
}

TEST(LinearFit, ZeroSlopeNotInvertible) {
  const LinearFit fit{0.0, 1.0, 1.0};
  EXPECT_THROW(fit.solve_for_x(5.0), std::domain_error);
}

TEST(LinearFit, NoisyDataCloseRecovery) {
  Rng rng(3);
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    const double xi = static_cast<double>(i);
    x.push_back(xi);
    y.push_back(0.14 * xi + 5.0 + rng.uniform(-0.5, 0.5));
  }
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 0.14, 0.005);
  EXPECT_NEAR(fit.intercept, 5.0, 0.5);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(LinearFit, RejectsDegenerateInputs) {
  const std::vector<double> one{1.0};
  EXPECT_THROW(fit_linear(one, one), std::invalid_argument);
  const std::vector<double> constant{2.0, 2.0, 2.0};
  const std::vector<double> y{1.0, 2.0, 3.0};
  EXPECT_THROW(fit_linear(constant, y), std::invalid_argument);
  EXPECT_THROW(fit_linear(y, one), std::invalid_argument);
}

TEST(ExponentialFit, RecoversExactExponential) {
  // mrt = cL * exp(lambdaL * n): the historical method's lower equation.
  const double c = 84.1, lambda = 1e-4;
  std::vector<double> x, y;
  for (double n = 100; n <= 1000; n += 100) {
    x.push_back(n);
    y.push_back(c * std::exp(lambda * n));
  }
  const ExponentialFit fit = fit_exponential(x, y);
  EXPECT_NEAR(fit.coeff, c, 1e-9);
  EXPECT_NEAR(fit.rate, lambda, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(ExponentialFit, EvaluationAndInverse) {
  const ExponentialFit fit{2.0, 0.5, 1.0};
  EXPECT_NEAR(fit(2.0), 2.0 * std::exp(1.0), 1e-12);
  EXPECT_NEAR(fit.solve_for_x(fit(3.0)), 3.0, 1e-12);
}

TEST(ExponentialFit, RejectsNonPositiveY) {
  const std::vector<double> x{1.0, 2.0};
  const std::vector<double> y{1.0, 0.0};
  EXPECT_THROW(fit_exponential(x, y), std::invalid_argument);
}

TEST(PowerFit, RecoversExactPowerLaw) {
  // lambdaL = C * mx_throughput^Delta: the historical method's
  // relationship-2 form for the exponential rate parameter.
  const double c = 3.0, e = -1.7;
  std::vector<double> x, y;
  for (double t = 50; t <= 400; t += 50) {
    x.push_back(t);
    y.push_back(c * std::pow(t, e));
  }
  const PowerFit fit = fit_power(x, y);
  EXPECT_NEAR(fit.coeff, c, 1e-9);
  EXPECT_NEAR(fit.exponent, e, 1e-12);
}

TEST(PowerFit, RejectsNonPositiveInputs) {
  const std::vector<double> bad{-1.0, 2.0};
  const std::vector<double> y{1.0, 2.0};
  EXPECT_THROW(fit_power(bad, y), std::invalid_argument);
  EXPECT_THROW(fit_power(y, bad), std::invalid_argument);
}

TEST(LinearFit, TwoPointsExact) {
  // The paper stresses that nldp = nudp = 2 data points are enough; a
  // two-point fit must pass through both.
  const std::vector<double> x{100.0, 500.0};
  const std::vector<double> y{250.0, 1250.0};
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit(100.0), 250.0, 1e-9);
  EXPECT_NEAR(fit(500.0), 1250.0, 1e-9);
}

}  // namespace
}  // namespace epp::util
