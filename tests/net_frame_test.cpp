// Wire protocol: encode/decode round-trips, malformed-payload rejection
// and framing over a real loopback socket pair.
#include "net/frame.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "net/socket.hpp"

namespace epp::net {
namespace {

RequestMessage sample_request() {
  RequestMessage request;
  request.kind = MessageKind::kPredict;
  request.id = 0x0123456789ABCDEFULL;
  request.method = 2;
  request.browse_clients = 800.0;
  request.buy_clients = 200.0;
  request.think_time_s = 7.0;
  request.deadline_ms = 250.5;
  request.observed_rt_s = 0.3125;
  request.server = "AppServVF";
  return request;
}

ResponseMessage sample_response() {
  ResponseMessage response;
  response.id = 42;
  response.status = 1;
  response.error_code = 7;
  response.served_by = 1;
  response.flags = kFlagFallback | kFlagStale;
  response.health = 2;
  response.retries = 3;
  response.bundle_version = 0x1122334455667788ULL;
  response.mean_rt_s = 0.125;
  response.throughput_rps = 96.5;
  response.predictor_latency_s = 0.0005;
  response.detail = "transient fault persisted";
  return response;
}

// ---------------------------------------------------------------------------
// Round trips.
// ---------------------------------------------------------------------------

TEST(NetFrame, RequestRoundTripsExactly) {
  const RequestMessage request = sample_request();
  const RequestMessage decoded = decode_request(encode_request(request));
  EXPECT_EQ(decoded.kind, request.kind);
  EXPECT_EQ(decoded.id, request.id);
  EXPECT_EQ(decoded.method, request.method);
  // Doubles travel as IEEE-754 bit patterns: exact, not approximate.
  EXPECT_EQ(decoded.browse_clients, request.browse_clients);
  EXPECT_EQ(decoded.buy_clients, request.buy_clients);
  EXPECT_EQ(decoded.think_time_s, request.think_time_s);
  EXPECT_EQ(decoded.deadline_ms, request.deadline_ms);
  EXPECT_EQ(decoded.observed_rt_s, request.observed_rt_s);
  EXPECT_EQ(decoded.server, request.server);
}

TEST(NetFrame, ResponseRoundTripsExactly) {
  const ResponseMessage response = sample_response();
  const ResponseMessage decoded = decode_response(encode_response(response));
  EXPECT_EQ(decoded.id, response.id);
  EXPECT_EQ(decoded.status, response.status);
  EXPECT_EQ(decoded.error_code, response.error_code);
  EXPECT_EQ(decoded.served_by, response.served_by);
  EXPECT_EQ(decoded.flags, response.flags);
  EXPECT_EQ(decoded.health, response.health);
  EXPECT_EQ(decoded.retries, response.retries);
  EXPECT_EQ(decoded.bundle_version, response.bundle_version);
  EXPECT_EQ(decoded.mean_rt_s, response.mean_rt_s);
  EXPECT_EQ(decoded.throughput_rps, response.throughput_rps);
  EXPECT_EQ(decoded.predictor_latency_s, response.predictor_latency_s);
  EXPECT_EQ(decoded.detail, response.detail);
  EXPECT_FALSE(decoded.ok());
}

TEST(NetFrame, ControlKindsRoundTrip) {
  for (const MessageKind kind :
       {MessageKind::kPing, MessageKind::kStats, MessageKind::kShutdown,
        MessageKind::kReload, MessageKind::kObserve}) {
    RequestMessage request;
    request.kind = kind;
    request.id = 9;
    EXPECT_EQ(decode_request(encode_request(request)).kind, kind);
  }
}

TEST(NetFrame, ReloadCarriesTheCandidatePathInTheServerField) {
  RequestMessage reload;
  reload.kind = MessageKind::kReload;
  reload.id = 4;
  reload.server = "artifacts/refit.epp";
  const RequestMessage decoded = decode_request(encode_request(reload));
  EXPECT_EQ(decoded.kind, MessageKind::kReload);
  EXPECT_EQ(decoded.server, "artifacts/refit.epp");
}

TEST(NetFrame, ObserveCarriesTheMeasuredResponseTime) {
  RequestMessage observe = sample_request();
  observe.kind = MessageKind::kObserve;
  observe.observed_rt_s = 1.75;
  const RequestMessage decoded = decode_request(encode_request(observe));
  EXPECT_EQ(decoded.kind, MessageKind::kObserve);
  EXPECT_EQ(decoded.observed_rt_s, 1.75);
}

TEST(NetFrame, FrameWireIsTheLengthPrefixedPayload) {
  // frame_wire is what the chaos truncation path cuts in half: it must
  // be byte-identical to what write_frame puts on the socket.
  const std::vector<std::uint8_t> payload = encode_request(sample_request());
  const std::vector<std::uint8_t> wire = frame_wire(payload);
  ASSERT_EQ(wire.size(), payload.size() + 4);
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size());
  EXPECT_EQ(wire[0], static_cast<std::uint8_t>(length & 0xFF));
  EXPECT_EQ(wire[1], static_cast<std::uint8_t>((length >> 8) & 0xFF));
  EXPECT_EQ(wire[2], static_cast<std::uint8_t>((length >> 16) & 0xFF));
  EXPECT_EQ(wire[3], static_cast<std::uint8_t>((length >> 24) & 0xFF));
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), wire.begin() + 4));
}

// ---------------------------------------------------------------------------
// Malformed payloads.
// ---------------------------------------------------------------------------

TEST(NetFrame, RejectsWrongVersion) {
  std::vector<std::uint8_t> payload = encode_request(sample_request());
  payload[0] = kProtocolVersion + 1;
  EXPECT_THROW(decode_request(payload), FrameError);
}

TEST(NetFrame, RejectsUnknownKind) {
  std::vector<std::uint8_t> payload = encode_request(sample_request());
  payload[1] = 99;
  EXPECT_THROW(decode_request(payload), FrameError);
}

TEST(NetFrame, RejectsTruncationAndTrailingBytes) {
  std::vector<std::uint8_t> payload = encode_request(sample_request());
  std::vector<std::uint8_t> truncated(payload.begin(), payload.end() - 3);
  EXPECT_THROW(decode_request(truncated), FrameError);
  std::vector<std::uint8_t> padded = payload;
  padded.push_back(0);
  EXPECT_THROW(decode_request(padded), FrameError);
  EXPECT_THROW(decode_request({}), FrameError);
  // A string length pointing past the payload end must not read past it.
  std::vector<std::uint8_t> lying = payload;
  lying[lying.size() - sample_request().server.size() - 2] = 0xFF;
  EXPECT_THROW(decode_request(lying), FrameError);
}

TEST(NetFrame, RejectsTruncatedResponse) {
  std::vector<std::uint8_t> payload = encode_response(sample_response());
  std::vector<std::uint8_t> truncated(payload.begin(), payload.end() - 1);
  EXPECT_THROW(decode_response(truncated), FrameError);
}

// ---------------------------------------------------------------------------
// Framing over a real socket pair.
// ---------------------------------------------------------------------------

struct LoopbackPair {
  Listener listener{"127.0.0.1", 0};
  Socket client;
  Socket server;

  LoopbackPair() {
    std::thread connector(
        [this] { client = Socket::connect("127.0.0.1", listener.port()); });
    std::optional<Socket> accepted = listener.accept();
    connector.join();
    EXPECT_TRUE(accepted.has_value());
    server = std::move(*accepted);
  }
};

TEST(NetFrame, FramesTravelAcrossLoopback) {
  LoopbackPair pair;
  ASSERT_TRUE(write_frame(pair.client, encode_request(sample_request())));
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(read_frame(pair.server, payload));
  EXPECT_EQ(decode_request(payload).server, "AppServVF");

  ASSERT_TRUE(write_frame(pair.server, encode_response(sample_response())));
  ASSERT_TRUE(read_frame(pair.client, payload));
  EXPECT_EQ(decode_response(payload).retries, 3u);
}

TEST(NetFrame, CleanEofReadsAsFalse) {
  LoopbackPair pair;
  pair.client.shutdown_write();
  std::vector<std::uint8_t> payload;
  EXPECT_FALSE(read_frame(pair.server, payload));
}

TEST(NetFrame, OversizedLengthPrefixIsRefusedBeforeAllocation) {
  LoopbackPair pair;
  const std::uint32_t huge = kMaxFrameBytes + 1;
  const std::uint8_t header[4] = {
      static_cast<std::uint8_t>(huge & 0xFF),
      static_cast<std::uint8_t>((huge >> 8) & 0xFF),
      static_cast<std::uint8_t>((huge >> 16) & 0xFF),
      static_cast<std::uint8_t>((huge >> 24) & 0xFF)};
  ASSERT_TRUE(pair.client.send_all(header, sizeof header));
  std::vector<std::uint8_t> payload;
  EXPECT_THROW(read_frame(pair.server, payload), FrameError);
}

TEST(NetFrame, TruncationMidFrameThrows) {
  LoopbackPair pair;
  const std::vector<std::uint8_t> encoded = encode_request(sample_request());
  const std::uint32_t length = static_cast<std::uint32_t>(encoded.size());
  const std::uint8_t header[4] = {
      static_cast<std::uint8_t>(length & 0xFF),
      static_cast<std::uint8_t>((length >> 8) & 0xFF),
      static_cast<std::uint8_t>((length >> 16) & 0xFF),
      static_cast<std::uint8_t>((length >> 24) & 0xFF)};
  ASSERT_TRUE(pair.client.send_all(header, sizeof header));
  ASSERT_TRUE(pair.client.send_all(encoded.data(), encoded.size() / 2));
  pair.client.shutdown_write();  // peer dies mid-frame
  std::vector<std::uint8_t> payload;
  EXPECT_THROW(read_frame(pair.server, payload), SocketError);
}

TEST(NetFrame, ListenerInterruptUnblocksAccept) {
  Listener listener("127.0.0.1", 0);
  std::optional<Socket> result;
  std::thread acceptor([&] { result = listener.accept(); });
  listener.interrupt();
  acceptor.join();
  EXPECT_FALSE(result.has_value());
  // interrupt() is sticky: later accepts return immediately too.
  EXPECT_FALSE(listener.accept().has_value());
}

}  // namespace
}  // namespace epp::net
