#include "calib/bundle.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/evaluation.hpp"
#include "core/historical_predictor.hpp"
#include "hydra/relationships.hpp"
#include "hydra/serialize.hpp"

namespace epp::calib {

namespace {

/// The established reference server every support service measures on
/// (the paper's AppServF): first established catalog entry.
const ServerRecord& reference_server(const std::vector<ServerRecord>& servers) {
  for (const ServerRecord& record : servers)
    if (record.established) return record;
  throw std::logic_error("calibration catalog has no established server");
}

}  // namespace

const ServerRecord& CalibrationBundle::server(const std::string& name) const {
  for (const ServerRecord& record : servers)
    if (record.name == name) return record;
  throw std::invalid_argument("bundle has no server '" + name + "'");
}

double CalibrationBundle::max_throughput(const std::string& name) const {
  return server(name).max_throughput_rps;
}

CalibrationBundle calibrate(const CalibrationOptions& options) {
  CalibrationBundle bundle;
  bundle.lqn_seed = options.lqn_seed;
  bundle.mix_seed = options.mix_seed;
  bundle.sweep_seed = options.sweep_seed;
  bundle.servers = trade_catalog();

  // --- support service 2: benchmark request processing speeds -----------
  // One independent saturation run per server, fanned out on the pool.
  sim::trade::MeasurementOptions measurement;
  measurement.replications = options.replications;
  measurement.fluid_threshold = options.fluid_threshold;
  measurement.pool = options.pool;
  auto benchmark_one = [&](std::size_t i) {
    ServerRecord& record = bundle.servers[i];
    record.max_throughput_rps = sim::trade::measure_max_throughput(
        record.sim, 0.0, options.sweep_seed, measurement);
  };
  if (options.pool != nullptr) {
    options.pool->parallel_for(bundle.servers.size(), benchmark_one);
  } else {
    for (std::size_t i = 0; i < bundle.servers.size(); ++i) benchmark_one(i);
  }

  // --- support service 3: layered queuing calibration (table 2) ---------
  bundle.lqn = core::calibrate_lqn_from_testbed(options.lqn_seed, options.pool);

  // --- historical calibration: gradient m + 2 lower / 2 upper points ----
  const ServerRecord& reference = reference_server(bundle.servers);
  core::SweepOptions sweep;
  sweep.seed = options.sweep_seed;
  const auto grad_points = core::measure_sweep(reference.sim, {300.0, 600.0},
                                               sweep, options.pool);
  bundle.gradient_m = hydra::fit_gradient(
      {grad_points[0].clients, grad_points[1].clients},
      {grad_points[0].throughput_rps, grad_points[1].throughput_rps});

  core::HistoricalPredictor historical(bundle.gradient_m);
  for (const ServerRecord& record : bundle.servers) {
    if (!record.established) continue;
    const double knee = record.max_throughput_rps / bundle.gradient_m;
    const auto lower = core::measure_sweep(
        record.sim, {0.25 * knee, 0.60 * knee}, sweep, options.pool);
    const auto upper = core::measure_sweep(
        record.sim, {1.25 * knee, 1.70 * knee}, sweep, options.pool);
    historical.calibrate_established(record.name, core::to_data_points(lower),
                                     core::to_data_points(upper),
                                     record.max_throughput_rps);
    // Section 7.1: the same data points carry p90 samples, so the direct
    // percentile model calibrates for free.
    historical.calibrate_established_p90(
        record.name, core::to_p90_data_points(lower),
        core::to_p90_data_points(upper), record.max_throughput_rps);
  }
  for (const ServerRecord& record : bundle.servers) {
    if (record.established) continue;
    historical.register_new_server(record.name, record.max_throughput_rps);
    historical.register_new_server_p90(record.name, record.max_throughput_rps);
  }

  // --- relationship 3: the mixed-workload benchmark ----------------------
  if (options.measure_mix) {
    const double mix_pct = 100.0 * options.mix_buy_fraction;
    const double mix_max = sim::trade::measure_max_throughput(
        reference.sim, options.mix_buy_fraction, options.mix_seed, measurement);
    historical.calibrate_mix({0.0, mix_pct},
                             {reference.max_throughput_rps, mix_max});
    bundle.mix_points = {{0.0, reference.max_throughput_rps},
                         {mix_pct, mix_max}};
  }

  bundle.mean_model = historical.model();
  bundle.p90_model = historical.p90_model();
  return bundle;
}

// --- serialisation ---------------------------------------------------------

std::string to_text(const CalibrationBundle& bundle) {
  std::ostringstream os;
  os.precision(17);
  os << "epp-bundle v1\n";
  os << "seeds " << bundle.lqn_seed << ' ' << bundle.mix_seed << ' '
     << bundle.sweep_seed << '\n';
  os << "gradient " << bundle.gradient_m << '\n';
  auto write_params = [&](const char* type, const core::RequestTypeParams& p) {
    os << "lqn-params " << type << ' ' << p.app_demand_s << ' '
       << p.db_cpu_per_call_s << ' ' << p.disk_per_call_s << ' '
       << p.mean_db_calls << '\n';
  };
  write_params("browse", bundle.lqn.browse);
  write_params("buy", bundle.lqn.buy);
  for (const ServerRecord& record : bundle.servers)
    os << "server " << record.name << ' '
       << (record.established ? "established" : "new") << ' '
       << record.sim.speed << ' ' << record.sim.concurrency << ' '
       << record.arch.speed << ' ' << record.arch.app_concurrency << ' '
       << record.arch.db_concurrency << ' ' << record.max_throughput_rps
       << '\n';
  for (const MixPoint& point : bundle.mix_points)
    os << "mix-point " << point.buy_pct << ' ' << point.max_throughput_rps
       << '\n';
  auto write_model = [&](const char* which, const hydra::HistoricalModel& m) {
    const std::string text = hydra::to_text(m);
    std::size_t lines = 0;
    for (const char c : text)
      if (c == '\n') ++lines;
    os << "hydra-model " << which << ' ' << lines << '\n' << text;
  };
  write_model("mean", bundle.mean_model);
  write_model("p90", bundle.p90_model);
  return os.str();
}

CalibrationBundle parse_bundle_text(const std::string& text,
                                    const std::string& file,
                                    lint::Diagnostics& diagnostics,
                                    BundleParseInfo* info) {
  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  BundleParseInfo local_info;
  BundleParseInfo& parsed = info != nullptr ? *info : local_info;
  const auto at = [&](int where) { return lint::SourceLocation{file, where}; };
  const auto here = [&] { return at(line_no); };
  const auto duplicate = [&](const std::string& what, int first_line) {
    diagnostics.error("EPP-BND-003", here(),
                      "duplicate " + what + " (first defined at line " +
                          std::to_string(first_line) + ")",
                      "keep exactly one; the old loader silently kept the "
                      "last, hiding merge mistakes");
  };

  CalibrationBundle bundle;
  if (!std::getline(is, line)) {
    diagnostics.error("EPP-BND-001", at(1), "empty input");
    return bundle;
  }
  ++line_no;
  if (line != "epp-bundle v1") {
    diagnostics.error("EPP-BND-001", here(), "bad header '" + line + "'",
                      "artifacts produced by epp_calibrate start with "
                      "'epp-bundle v1'");
    return bundle;
  }

  bool have_gradient = false, have_browse = false, have_buy = false;
  bool have_mean = false, have_p90 = false;
  int browse_line = 0, buy_line = 0;
  std::map<double, int> mix_lines;

  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "seeds") {
      if (parsed.have_seeds) {
        duplicate("'seeds' record", parsed.seeds_line);
        continue;
      }
      if (!(ls >> bundle.lqn_seed >> bundle.mix_seed >> bundle.sweep_seed)) {
        diagnostics.error("EPP-BND-002", here(), "bad seeds record");
        continue;
      }
      parsed.have_seeds = true;
      parsed.seeds_line = line_no;
    } else if (kind == "gradient") {
      if (have_gradient) {
        duplicate("'gradient' record", parsed.gradient_line);
        continue;
      }
      // Whether operator>> accepts "nan"/"inf" is implementation-defined,
      // and NaN slips through any `<= 0` comparison, so every numeric
      // field is checked for finiteness explicitly rather than trusting
      // the parse to reject it.
      if (!(ls >> bundle.gradient_m) || !std::isfinite(bundle.gradient_m) ||
          bundle.gradient_m <= 0.0) {
        diagnostics.error("EPP-BND-002", here(),
                          "bad gradient: want a finite positive value");
        continue;
      }
      have_gradient = true;
      parsed.gradient_line = line_no;
    } else if (kind == "lqn-params") {
      std::string type;
      core::RequestTypeParams params;
      if (!(ls >> type >> params.app_demand_s >> params.db_cpu_per_call_s >>
            params.disk_per_call_s >> params.mean_db_calls)) {
        diagnostics.error("EPP-BND-002", here(), "bad lqn-params record");
        continue;
      }
      bool finite = true;
      for (const double value :
           {params.app_demand_s, params.db_cpu_per_call_s,
            params.disk_per_call_s, params.mean_db_calls})
        if (!std::isfinite(value) || value < 0.0) finite = false;
      if (!finite) {
        diagnostics.error(
            "EPP-BND-002", here(),
            "lqn-params values must be finite and non-negative");
        continue;
      }
      if (type == "browse") {
        if (have_browse) {
          duplicate("'lqn-params browse' record", browse_line);
          continue;
        }
        bundle.lqn.browse = params;
        have_browse = true;
        browse_line = line_no;
      } else if (type == "buy") {
        if (have_buy) {
          duplicate("'lqn-params buy' record", buy_line);
          continue;
        }
        bundle.lqn.buy = params;
        have_buy = true;
        buy_line = line_no;
      } else {
        diagnostics.error("EPP-BND-002", here(),
                          "unknown request type '" + type + "'");
      }
    } else if (kind == "server") {
      ServerRecord record;
      std::string provenance;
      if (!(ls >> record.name >> provenance >> record.sim.speed >>
            record.sim.concurrency >> record.arch.speed >>
            record.arch.app_concurrency >> record.arch.db_concurrency >>
            record.max_throughput_rps)) {
        diagnostics.error("EPP-BND-002", here(), "bad server record");
        continue;
      }
      if (const auto seen = parsed.server_lines.find(record.name);
          seen != parsed.server_lines.end()) {
        duplicate("server '" + record.name + "'", seen->second);
        continue;
      }
      if (provenance == "established") {
        record.established = true;
      } else if (provenance != "new") {
        diagnostics.error("EPP-BND-002", here(),
                          "bad server provenance '" + provenance + "'",
                          "catalog provenance is 'established' or 'new'");
        continue;
      }
      bool positive = true;
      for (const double value :
           {record.sim.speed, record.arch.speed, record.max_throughput_rps})
        if (!std::isfinite(value) || value <= 0.0) positive = false;
      if (!positive) {
        diagnostics.error(
            "EPP-BND-002", here(),
            "server speeds and max throughput must be finite and positive");
        continue;
      }
      if (record.sim.concurrency == 0 || record.arch.app_concurrency == 0 ||
          record.arch.db_concurrency == 0) {
        diagnostics.error("EPP-BND-002", here(),
                          "server concurrency limits must be positive");
        continue;
      }
      record.sim.name = record.name;
      record.sim.established = record.established;
      record.arch.name = record.name;
      parsed.server_lines.emplace(record.name, line_no);
      bundle.servers.push_back(std::move(record));
    } else if (kind == "mix-point") {
      MixPoint point;
      if (!(ls >> point.buy_pct >> point.max_throughput_rps)) {
        diagnostics.error("EPP-BND-002", here(), "bad mix-point record");
        continue;
      }
      if (!std::isfinite(point.buy_pct) || point.buy_pct < 0.0 ||
          point.buy_pct > 100.0) {
        diagnostics.error(
            "EPP-BND-002", here(),
            "mix-point buy percentage must be finite and within [0, 100]");
        continue;
      }
      if (!std::isfinite(point.max_throughput_rps) ||
          point.max_throughput_rps <= 0.0) {
        diagnostics.error(
            "EPP-BND-002", here(),
            "mix-point max throughput must be finite and positive");
        continue;
      }
      if (const auto seen = mix_lines.find(point.buy_pct);
          seen != mix_lines.end()) {
        duplicate("mix-point at " + std::to_string(point.buy_pct) + "% buy",
                  seen->second);
        continue;
      }
      mix_lines.emplace(point.buy_pct, line_no);
      bundle.mix_points.push_back(point);
    } else if (kind == "hydra-model") {
      std::string which;
      std::size_t lines = 0;
      if (!(ls >> which >> lines)) {
        diagnostics.error("EPP-BND-002", here(), "bad hydra-model record");
        continue;
      }
      if (which != "mean" && which != "p90") {
        diagnostics.error("EPP-BND-002", here(),
                          "unknown hydra-model block '" + which + "'");
        continue;
      }
      const int block_start = line_no;
      std::string block;
      bool truncated = false;
      for (std::size_t i = 0; i < lines; ++i) {
        if (!std::getline(is, line)) {
          diagnostics.error("EPP-BND-005", at(block_start),
                            "truncated hydra-model block: expected " +
                                std::to_string(lines) + " lines, got " +
                                std::to_string(i));
          truncated = true;
          break;
        }
        ++line_no;
        block += line;
        block += '\n';
      }
      if (truncated) break;  // consumed to EOF; nothing left to scan
      if (which == "mean" && have_mean) {
        duplicate("'hydra-model mean' block", parsed.mean_model_line);
        continue;
      }
      if (which == "p90" && have_p90) {
        duplicate("'hydra-model p90' block", parsed.p90_model_line);
        continue;
      }
      // Record where each fit lives inside the block (file line =
      // block_start + 1 + block-relative index) so semantic findings can
      // point at the offending equation, not just the block header.
      auto index_block = [&](std::map<std::string, int>& server_lines,
                             int* mix_line) {
        std::istringstream bs(block);
        std::string block_line;
        for (int i = 0; std::getline(bs, block_line); ++i) {
          std::istringstream ts(block_line);
          std::string record, name;
          if (!(ts >> record)) continue;
          if (record == "server" && (ts >> name))
            server_lines.emplace(name, block_start + 1 + i);
          else if (record == "mix" && mix_line != nullptr && *mix_line == 0)
            *mix_line = block_start + 1 + i;
        }
      };
      try {
        if (which == "mean") {
          bundle.mean_model = hydra::model_from_text(block);
          have_mean = true;
          parsed.mean_model_line = block_start;
          index_block(parsed.mean_server_lines, &parsed.mean_mix_line);
        } else {
          bundle.p90_model = hydra::model_from_text(block);
          have_p90 = true;
          parsed.p90_model_line = block_start;
          index_block(parsed.p90_server_lines, nullptr);
        }
      } catch (const std::invalid_argument& error) {
        diagnostics.error("EPP-BND-005", at(block_start),
                          "embedded " + which + " model: " + error.what());
      }
    } else {
      diagnostics.error("EPP-BND-002", here(),
                        "unknown record '" + kind + "'");
    }
  }

  const auto missing = [&](const std::string& what) {
    diagnostics.error("EPP-BND-004", at(0), "missing " + what,
                      "regenerate the artifact with epp_calibrate");
  };
  if (!have_gradient) missing("gradient record");
  if (!have_browse || !have_buy) missing("lqn-params record");
  if (bundle.servers.empty()) missing("server records");
  if (!have_mean) missing("hydra-model mean block");
  if (!have_p90) missing("hydra-model p90 block");
  if (have_gradient && have_mean &&
      bundle.mean_model.gradient_m() != bundle.gradient_m)
    diagnostics.error(
        "EPP-BND-006", at(parsed.gradient_line),
        "gradient record disagrees with the embedded mean model",
        "re-run epp_calibrate instead of editing records by hand");
  return bundle;
}

CalibrationBundle bundle_from_text(const std::string& text) {
  lint::Diagnostics diagnostics;
  CalibrationBundle bundle = parse_bundle_text(text, "", diagnostics);
  if (const lint::Diagnostic* first =
          diagnostics.first_at_least(lint::Severity::kError)) {
    std::string message = "epp bundle parse error";
    if (first->location.line > 0)
      message += ", line " + std::to_string(first->location.line);
    throw std::invalid_argument(message + ": " + first->message);
  }
  return bundle;
}

void save_bundle(const std::string& path, const CalibrationBundle& bundle) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open '" + path + "' for writing");
  out << to_text(bundle);
  out.flush();
  if (!out) throw std::runtime_error("failed writing bundle to '" + path + "'");
}

CalibrationBundle load_bundle(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open bundle file '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return bundle_from_text(text.str());
}

ArtifactCli parse_artifact_flags(int argc, char** argv) {
  ArtifactCli cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc)
        throw std::invalid_argument(arg + " wants a file path");
      return argv[++i];
    };
    if (arg == "--bundle") {
      cli.load_path = value();
    } else if (arg == "--save-bundle") {
      cli.save_path = value();
    } else {
      throw std::invalid_argument("unknown argument: " + arg);
    }
  }
  return cli;
}

CalibrationBundle acquire_bundle(const ArtifactCli& cli,
                                 const CalibrationOptions& options) {
  CalibrationBundle bundle = cli.load_path.empty()
                                 ? calibrate(options)
                                 : load_bundle(cli.load_path);
  if (!cli.save_path.empty()) save_bundle(cli.save_path, bundle);
  return bundle;
}

}  // namespace epp::calib
