#include "rm/runtime.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace epp::rm {

RuntimeOutcome evaluate_runtime(const Allocation& allocation,
                                const std::vector<ServiceClassSpec>& classes,
                                const std::vector<PoolServer>& servers,
                                const core::Predictor& truth,
                                const RuntimeOptions& options) {
  if (allocation.per_server.size() != servers.size())
    throw std::invalid_argument("evaluate_runtime: allocation/pool mismatch");
  if (allocation.slack < 0.0)
    throw std::invalid_argument("evaluate_runtime: negative slack");

  RuntimeOutcome outcome;
  for (const ServiceClassSpec& c : classes) outcome.total_clients += c.clients;

  if (allocation.slack == 0.0) {
    // Zero slack allocates no servers at all: every client is rejected
    // (the endpoint of the paper's figure-7 sweep).
    outcome.rejected_clients = outcome.total_clients;
    outcome.sla_failure_pct = outcome.total_clients > 0.0 ? 100.0 : 0.0;
    return outcome;
  }

  double rejected = allocation.unallocated_scaled / allocation.slack;
  double total_power = 0.0, used_power = 0.0;
  std::vector<double> spare(servers.size(), 0.0);

  for (std::size_t i = 0; i < servers.size(); ++i) {
    total_power += servers[i].power_rps;
    if (!allocation.server_used(i)) continue;
    ++outcome.servers_used;
    used_power += servers[i].power_rps;

    // Real (unscaled) clients routed to this server and their mix/goal.
    const double real_total = allocation.scaled_on_server(i) / allocation.slack;
    const double real_buy =
        allocation.buy_scaled_on_server(i, classes) / allocation.slack;
    double goal = std::numeric_limits<double>::infinity();
    for (const ServiceClassSpec& c : classes) {
      const auto it = allocation.per_server[i].find(c.name);
      if (it != allocation.per_server[i].end() && it->second > 0.0)
        goal = std::min(goal, c.rt_goal_s);
    }
    const double effective_goal = goal * (1.0 - options.rejection_threshold);
    const double mix = real_total > 0.0 ? real_buy / real_total : 0.0;
    const double true_capacity =
        truth
            .max_clients_for_goal(servers[i].arch, effective_goal, mix,
                                  options.think_time_s)
            .max_clients;
    const double accepted = std::min(real_total, true_capacity);
    rejected += real_total - accepted;
    spare[i] = true_capacity - accepted;
  }

  if (options.runtime_optimization && rejected > 0.0) {
    // Any capacity the algorithm left on servers already allocated to this
    // application can absorb overflow clients at runtime.
    for (std::size_t i = 0; i < servers.size() && rejected > 0.0; ++i) {
      if (!allocation.server_used(i)) continue;
      const double absorbed = std::min(spare[i], rejected);
      rejected -= absorbed;
      spare[i] -= absorbed;
    }
  }

  outcome.rejected_clients = std::max(0.0, rejected);
  outcome.sla_failure_pct =
      outcome.total_clients > 0.0
          ? 100.0 * outcome.rejected_clients / outcome.total_clients
          : 0.0;
  outcome.server_usage_pct =
      total_power > 0.0 ? 100.0 * used_power / total_power : 0.0;
  return outcome;
}

}  // namespace epp::rm
