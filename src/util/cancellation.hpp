// Cooperative cancellation for long-running computations.
//
// A CancellationToken combines an explicit cancel flag with an optional
// steady-clock deadline. Work that may run long (the MVA fixed point, the
// layered solver's outer iteration, thread-pool parallel_for lanes) polls
// cancelled() at natural checkpoints and unwinds with util::Cancelled —
// nothing is interrupted preemptively, so invariants hold at every exit.
//
// Tokens are usually threaded explicitly, but prediction methods hide
// their solvers behind a narrow Predictor interface, so the serving layer
// installs the active token as a thread-local *ambient* token with
// CancellationScope; the solvers poll current_cancellation(). Each request
// is evaluated on one thread, so the ambient token is race-free.
#pragma once

#include <atomic>
#include <chrono>
#include <stdexcept>

namespace epp::util {

/// Thrown by cancellation checkpoints when the governing token fired.
struct Cancelled : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class CancellationToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancellationToken() = default;
  explicit CancellationToken(Clock::time_point deadline) noexcept
      : deadline_(deadline) {}

  /// Token that expires `seconds` from now (<= 0 is already expired).
  static CancellationToken after(double seconds) noexcept {
    return CancellationToken(
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(seconds)));
  }

  void cancel() const noexcept {
    cancelled_.store(true, std::memory_order_relaxed);
  }

  /// True once cancel() was called or the deadline passed. The deadline
  /// check latches into the flag so later calls skip the clock read.
  bool cancelled() const noexcept {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (deadline_ == Clock::time_point::max()) return false;
    if (Clock::now() < deadline_) return false;
    cancelled_.store(true, std::memory_order_relaxed);
    return true;
  }

  bool has_deadline() const noexcept {
    return deadline_ != Clock::time_point::max();
  }
  Clock::time_point deadline() const noexcept { return deadline_; }

  /// Throw util::Cancelled when the token fired.
  void check(const char* what) const {
    if (cancelled()) throw Cancelled(what);
  }

 private:
  mutable std::atomic<bool> cancelled_{false};
  Clock::time_point deadline_ = Clock::time_point::max();
};

namespace detail {
inline thread_local const CancellationToken* t_ambient_token = nullptr;
}  // namespace detail

/// The ambient token installed by the innermost live CancellationScope on
/// this thread (nullptr when none).
inline const CancellationToken* current_cancellation() noexcept {
  return detail::t_ambient_token;
}

/// RAII installer for the thread's ambient token; nests (the previous
/// token is restored on destruction).
class CancellationScope {
 public:
  explicit CancellationScope(const CancellationToken* token) noexcept
      : previous_(detail::t_ambient_token) {
    detail::t_ambient_token = token;
  }
  ~CancellationScope() { detail::t_ambient_token = previous_; }

  CancellationScope(const CancellationScope&) = delete;
  CancellationScope& operator=(const CancellationScope&) = delete;

 private:
  const CancellationToken* previous_;
};

}  // namespace epp::util
