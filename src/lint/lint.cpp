#include "lint/lint.hpp"

#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/trade_model.hpp"
#include "svc/fault.hpp"

namespace epp::lint {
namespace {

bool ends_with(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// First non-empty, non-comment line of the text.
std::string first_payload_line(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line))
    if (!line.empty() && line[0] != '#') return line;
  return "";
}

/// Lenient numeric field: a missing or malformed token becomes NaN, so
/// the per-field EPP-WKL rules report it instead of a parse abort.
double lenient_number(const std::string& token) {
  if (token.empty()) return std::numeric_limits<double>::quiet_NaN();
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0')
    return std::numeric_limits<double>::quiet_NaN();
  return value;
}

bool is_comment_or_blank(const std::string& line) {
  for (const char c : line) {
    if (c == ' ' || c == '\t') continue;
    return c == '#';
  }
  return true;
}

}  // namespace

LqnSourceIndex index_lqn_source(const std::string& text) {
  LqnSourceIndex index;
  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string kind, name;
    if (!(ls >> kind >> name)) continue;
    if (kind == "task") index.task_lines.emplace(name, line_no);
    if (kind == "entry") index.entry_lines.emplace(name, line_no);
  }
  return index;
}

void lint_workload_grid_text(const std::string& text, const std::string& file,
                             Diagnostics& diagnostics) {
  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (is_comment_or_blank(line)) continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "epp-workloads") continue;  // header
    if (kind != "workload") continue;       // unknown records pass through
    std::string browse, buy, think;
    ls >> browse >> buy >> think;
    core::WorkloadSpec workload;
    workload.browse_clients = lenient_number(browse);
    workload.buy_clients = lenient_number(buy);
    if (!think.empty()) workload.think_time_s = lenient_number(think);
    core::lint_workload(workload, {file, line_no}, diagnostics);
  }
}

void lint_fault_spec_text(const std::string& text, const std::string& file,
                          Diagnostics& diagnostics) {
  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (is_comment_or_blank(line)) continue;
    if (line.rfind("epp-faults", 0) == 0) continue;  // header
    svc::lint_fault_spec(line, {file, line_no}, diagnostics);
  }
}

ArtifactKind sniff_artifact(const std::string& path, const std::string& text) {
  if (ends_with(path, ".epp")) return ArtifactKind::kBundle;
  if (ends_with(path, ".lqn")) return ArtifactKind::kLqnModel;
  if (ends_with(path, ".wkl")) return ArtifactKind::kWorkloadGrid;
  if (ends_with(path, ".fspec")) return ArtifactKind::kFaultSpec;
  // Extension didn't decide; let the content. Bundles, workload grids and
  // fault specs open with versioned headers, LQN models with one of four
  // declarations.
  const std::string head = first_payload_line(text);
  if (head.rfind("epp-bundle", 0) == 0) return ArtifactKind::kBundle;
  if (head.rfind("epp-workloads", 0) == 0) return ArtifactKind::kWorkloadGrid;
  if (head.rfind("epp-faults", 0) == 0) return ArtifactKind::kFaultSpec;
  for (const char* decl : {"processor ", "task ", "entry ", "call "})
    if (head.rfind(decl, 0) == 0) return ArtifactKind::kLqnModel;
  return ArtifactKind::kUnknown;
}

void lint_artifact_file(const std::string& path, Diagnostics& diagnostics) {
  std::ifstream in(path);
  if (!in) {
    diagnostics.error("EPP-IO-001", {path, 0}, "cannot read file");
    return;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  switch (sniff_artifact(path, text)) {
    case ArtifactKind::kBundle:
      lint_bundle_text(text, path, diagnostics);
      return;
    case ArtifactKind::kLqnModel:
      lint_lqn_text(text, path, diagnostics);
      return;
    case ArtifactKind::kWorkloadGrid:
      lint_workload_grid_text(text, path, diagnostics);
      return;
    case ArtifactKind::kFaultSpec:
      lint_fault_spec_text(text, path, diagnostics);
      return;
    case ArtifactKind::kUnknown:
      diagnostics.error("EPP-IO-001", {path, 0},
                        "cannot tell what kind of artifact this is",
                        "bundles start with 'epp-bundle v1'; LQN models "
                        "with processor/task/entry/call declarations; "
                        "workload grids with 'epp-workloads v1'; fault "
                        "specs with 'epp-faults v1'; or name the file "
                        "*.epp / *.lqn / *.wkl / *.fspec");
      return;
  }
}

}  // namespace epp::lint
