#include "lint/suppress.hpp"

#include <algorithm>
#include <cctype>
#include <cstddef>

namespace epp::lint {
namespace {

constexpr std::string_view kMarker = "epp-lint:";
constexpr std::string_view kIgnore = "ignore";

bool is_rule_char(char c) {
  return (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '-';
}

std::vector<std::string> parse_rule_list(std::string_view args) {
  std::vector<std::string> rules;
  std::string current;
  for (const char c : args) {
    if (is_rule_char(c)) {
      current.push_back(c);
    } else if (c == ',' || c == ' ' || c == '\t') {
      if (!current.empty()) rules.push_back(std::move(current));
      current.clear();
    } else {
      return {};  // malformed list: not a suppression
    }
  }
  if (!current.empty()) rules.push_back(std::move(current));
  return rules;
}

/// The comment text of one line (or the in-comment part of a line inside
/// a /* */ block), plus whether any code preceded it on the line.
struct CommentSegment {
  std::string_view text;
  bool code_before = false;
};

}  // namespace

std::vector<Suppression> find_suppressions(const std::string& file,
                                           std::string_view text) {
  std::vector<Suppression> found;
  bool in_block_comment = false;
  int line_number = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                       : eol - pos);
    ++line_number;

    // Walk the line extracting comment segments, tracking string
    // literals so quoted "// epp-lint" text never suppresses anything.
    std::vector<CommentSegment> segments;
    bool code_seen = false;
    bool in_string = false;
    bool in_char = false;
    std::size_t i = 0;
    if (in_block_comment) {
      const std::size_t close = line.find("*/");
      const std::size_t len = close == std::string_view::npos
                                  ? line.size()
                                  : close;
      segments.push_back(CommentSegment{line.substr(0, len), false});
      if (close == std::string_view::npos) {
        i = line.size();
      } else {
        i = close + 2;
        in_block_comment = false;
      }
    }
    for (; i < line.size(); ++i) {
      const char c = line[i];
      if (in_string || in_char) {
        if (c == '\\') {
          ++i;  // skip the escaped character
        } else if (in_string && c == '"') {
          in_string = false;
        } else if (in_char && c == '\'') {
          in_char = false;
        }
        continue;
      }
      if (c == '"') {
        in_string = true;
        code_seen = true;
        continue;
      }
      if (c == '\'') {
        in_char = true;
        code_seen = true;
        continue;
      }
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
        segments.push_back(CommentSegment{line.substr(i + 2), code_seen});
        break;  // rest of the line is comment
      }
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        const std::size_t close = line.find("*/", i + 2);
        if (close == std::string_view::npos) {
          segments.push_back(
              CommentSegment{line.substr(i + 2), code_seen});
          in_block_comment = true;
          break;
        }
        segments.push_back(
            CommentSegment{line.substr(i + 2, close - (i + 2)), code_seen});
        i = close + 1;
        continue;
      }
      if (!std::isspace(static_cast<unsigned char>(c))) code_seen = true;
    }

    for (const CommentSegment& segment : segments) {
      std::size_t marker = segment.text.find(kMarker);
      if (marker == std::string_view::npos) continue;
      std::size_t cursor = marker + kMarker.size();
      while (cursor < segment.text.size() &&
             std::isspace(static_cast<unsigned char>(segment.text[cursor])))
        ++cursor;
      if (segment.text.substr(cursor, kIgnore.size()) != kIgnore) continue;
      cursor += kIgnore.size();
      if (cursor >= segment.text.size() || segment.text[cursor] != '(')
        continue;
      const std::size_t close = segment.text.find(')', cursor + 1);
      if (close == std::string_view::npos) continue;
      std::vector<std::string> rules = parse_rule_list(
          segment.text.substr(cursor + 1, close - cursor - 1));
      if (rules.empty()) continue;
      Suppression suppression;
      suppression.file = file;
      suppression.line = line_number;
      // A trailing suppression excuses its own line; a standalone
      // comment line excuses the line below it.
      suppression.target_line =
          segment.code_before ? line_number : line_number + 1;
      suppression.rules = std::move(rules);
      found.push_back(std::move(suppression));
    }

    if (eol == std::string_view::npos) break;
    pos = eol + 1;
  }
  return found;
}

Diagnostics apply_suppressions(
    const Diagnostics& input,
    const std::vector<Suppression>& suppressions) {
  std::vector<std::vector<bool>> rule_used(suppressions.size());
  for (std::size_t s = 0; s < suppressions.size(); ++s)
    rule_used[s].assign(suppressions[s].rules.size(), false);

  Diagnostics output;
  for (const Diagnostic& diagnostic : input.all()) {
    bool suppressed = false;
    for (std::size_t s = 0; s < suppressions.size(); ++s) {
      const Suppression& suppression = suppressions[s];
      if (suppression.file != diagnostic.location.file ||
          suppression.target_line != diagnostic.location.line)
        continue;
      for (std::size_t r = 0; r < suppression.rules.size(); ++r) {
        if (suppression.rules[r] == diagnostic.rule) {
          rule_used[s][r] = true;
          suppressed = true;
        }
      }
    }
    if (!suppressed) output.add(diagnostic);
  }

  for (std::size_t s = 0; s < suppressions.size(); ++s) {
    const Suppression& suppression = suppressions[s];
    std::string unused;
    for (std::size_t r = 0; r < suppression.rules.size(); ++r) {
      if (rule_used[s][r]) continue;
      if (!unused.empty()) unused += ", ";
      unused += suppression.rules[r];
    }
    if (unused.empty()) continue;
    output.warning(
        "EPP-META-001",
        SourceLocation{suppression.file, suppression.line},
        "suppression of " + unused + " matches no finding on line " +
            std::to_string(suppression.target_line),
        "delete the stale suppression (or fix the rule ID) so the "
        "clean-tree gate stays honest");
  }
  return output;
}

}  // namespace epp::lint
