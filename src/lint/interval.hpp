// Interval arithmetic with outward rounding — the abstract domain behind
// the EPP-SEM verifier (src/lint/verify.hpp).
//
// Every operation returns an interval that *encloses* the exact real
// result: after each floating-point step the bounds are widened one ulp
// outward (std::nextafter), so rounding error can never shrink the set.
// That makes interval conclusions sound in one direction — if the
// extension of f over [a, b] has a non-negative lower bound, then f is
// provably non-negative everywhere on [a, b] in real arithmetic.
//
// The domain covers exactly the function forms the paper's relationships
// use: linear (relationship 1 upper equation, relationships 2 and 3
// linear fits), scaled exponential (relationship 1 lower equation) and
// power laws (the relationship-2 lambda_lower cross-server fit).
//
// prove_at_least() turns the domain into a little decision procedure:
// adaptive bisection that either *proves* f >= bound on [a, b] (interval
// lower bound suffices everywhere), *refutes* it with a concrete witness
// point (pointwise evaluation below the bound), or gives up kUnknown
// when the budget runs out. Verifier rules treat kUnknown as "do not
// flag" — soundness over completeness, a linter must not cry wolf.
#pragma once

#include <functional>

namespace epp::lint {

/// A closed interval [lo, hi]. Invariant: lo <= hi (NaN-free inputs).
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
};

/// The degenerate point interval [x, x] (no widening: the point is exact).
Interval point(double x);
/// The interval spanning a and b in either order.
Interval span(double a, double b);

/// Outward-rounded arithmetic: each returns an enclosure of the exact
/// real-valued image, widened one ulp per bound.
Interval add(const Interval& a, const Interval& b);
Interval sub(const Interval& a, const Interval& b);
Interval mul(const Interval& a, const Interval& b);
/// Smallest interval containing both operands (join; no widening).
Interval hull(const Interval& a, const Interval& b);

/// slope * x + intercept over x (relationship 1 upper line, linear fits).
Interval linear(double slope, double intercept, const Interval& x);
/// coeff * exp(rate * x) over x (relationship 1 lower equation).
Interval scale_exp(double coeff, double rate, const Interval& x);
/// coeff * x^exponent over x; requires x.lo > 0 (relationship-2 power fit).
Interval power(double coeff, double exponent, const Interval& x);

/// Outcome of a bounded proof attempt.
enum class Proof { kProven, kRefuted, kUnknown };

/// Concrete counterexample: f(x) = value violates the queried bound.
struct Witness {
  double x = 0.0;
  double value = 0.0;
};

/// Interval extension of a scalar function (must enclose the true image).
using Extension = std::function<Interval(const Interval&)>;
/// Pointwise evaluation of the same function.
using Pointwise = std::function<double(double)>;

/// Decide whether f(x) >= bound for every x in [lo, hi], by adaptive
/// bisection: an interval lower bound >= bound proves a subrange at once;
/// a pointwise sample < bound refutes globally (witness filled in);
/// otherwise split until max_depth / the node budget is exhausted
/// (kUnknown). `ext` and `pt` must describe the same function.
Proof prove_at_least(const Extension& ext, const Pointwise& pt, double lo,
                     double hi, double bound, Witness* witness = nullptr,
                     int max_depth = 40);

/// Nudge a refutation witness onto a whole number of clients when an
/// integer in [lo, hi] near witness->x also satisfies pt(x) < bound
/// (diagnostics read better as "N = 1449 clients" than "N = 1448.73").
void prefer_integer_witness(const Pointwise& pt, double lo, double hi,
                            double bound, Witness* witness);

}  // namespace epp::lint
