#include "net/frame.hpp"

#include <bit>
#include <cstring>

#include "util/annotations.hpp"

namespace epp::net {
namespace {

// --- little-endian byte writer/reader (endianness-independent) -----------

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t value) {
  out.push_back(value);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t value) {
  out.push_back(static_cast<std::uint8_t>(value & 0xFF));
  out.push_back(static_cast<std::uint8_t>(value >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8)
    out.push_back(static_cast<std::uint8_t>((value >> shift) & 0xFF));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8)
    out.push_back(static_cast<std::uint8_t>((value >> shift) & 0xFF));
}

void put_f64(std::vector<std::uint8_t>& out, double value) {
  put_u64(out, std::bit_cast<std::uint64_t>(value));
}

void put_string(std::vector<std::uint8_t>& out, const std::string& text) {
  if (text.size() > 0xFFFF)
    throw FrameError("frame string field longer than 65535 bytes");
  put_u16(out, static_cast<std::uint16_t>(text.size()));
  out.insert(out.end(), text.begin(), text.end());
}

struct Reader {
  const std::vector<std::uint8_t>& bytes;
  std::size_t cursor = 0;

  void need(std::size_t n) const {
    if (cursor + n > bytes.size())
      throw FrameError("truncated frame payload (" +
                       std::to_string(bytes.size()) + " bytes, need " +
                       std::to_string(cursor + n) + ")");
  }
  std::uint8_t u8() {
    need(1);
    return bytes[cursor++];
  }
  std::uint16_t u16() {
    need(2);
    const std::uint16_t value = static_cast<std::uint16_t>(
        bytes[cursor] | (static_cast<std::uint16_t>(bytes[cursor + 1]) << 8));
    cursor += 2;
    return value;
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i)
      value |= static_cast<std::uint32_t>(bytes[cursor + static_cast<std::size_t>(i)])
               << (8 * i);
    cursor += 4;
    return value;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i)
      value |= static_cast<std::uint64_t>(bytes[cursor + static_cast<std::size_t>(i)])
               << (8 * i);
    cursor += 8;
    return value;
  }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string string() {
    const std::uint16_t length = u16();
    need(length);
    std::string text(bytes.begin() + static_cast<std::ptrdiff_t>(cursor),
                     bytes.begin() + static_cast<std::ptrdiff_t>(cursor + length));
    cursor += length;
    return text;
  }
  void done() const {
    if (cursor != bytes.size())
      throw FrameError("trailing bytes after frame payload");
  }
};

void check_version(std::uint8_t version) {
  if (version != kProtocolVersion)
    throw FrameError("protocol version mismatch: got " +
                     std::to_string(version) + ", want " +
                     std::to_string(kProtocolVersion));
}

}  // namespace

std::vector<std::uint8_t> encode_request(const RequestMessage& message) {
  std::vector<std::uint8_t> out;
  out.reserve(64 + message.server.size());
  put_u8(out, kProtocolVersion);
  put_u8(out, static_cast<std::uint8_t>(message.kind));
  put_u64(out, message.id);
  put_u8(out, message.method);
  put_f64(out, message.browse_clients);
  put_f64(out, message.buy_clients);
  put_f64(out, message.think_time_s);
  put_f64(out, message.deadline_ms);
  put_f64(out, message.observed_rt_s);
  put_string(out, message.server);
  return out;
}

std::vector<std::uint8_t> encode_response(const ResponseMessage& message) {
  std::vector<std::uint8_t> out;
  out.reserve(64 + message.detail.size());
  put_u8(out, kProtocolVersion);
  put_u8(out, 0);  // kind slot: responses are distinguished by direction
  put_u64(out, message.id);
  put_u8(out, message.status);
  put_u8(out, message.error_code);
  put_u8(out, message.served_by);
  put_u8(out, message.flags);
  put_u8(out, message.health);
  put_u32(out, message.retries);
  put_u64(out, message.bundle_version);
  put_f64(out, message.mean_rt_s);
  put_f64(out, message.throughput_rps);
  put_f64(out, message.predictor_latency_s);
  put_string(out, message.detail);
  return out;
}

RequestMessage decode_request(const std::vector<std::uint8_t>& payload) {
  Reader reader{payload};
  check_version(reader.u8());
  const std::uint8_t kind = reader.u8();
  if (kind < static_cast<std::uint8_t>(MessageKind::kPredict) ||
      kind > static_cast<std::uint8_t>(MessageKind::kObserve))
    throw FrameError("unknown request kind " + std::to_string(kind));
  RequestMessage message;
  message.kind = static_cast<MessageKind>(kind);
  message.id = reader.u64();
  message.method = reader.u8();
  message.browse_clients = reader.f64();
  message.buy_clients = reader.f64();
  message.think_time_s = reader.f64();
  message.deadline_ms = reader.f64();
  message.observed_rt_s = reader.f64();
  message.server = reader.string();
  reader.done();
  return message;
}

ResponseMessage decode_response(const std::vector<std::uint8_t>& payload) {
  Reader reader{payload};
  check_version(reader.u8());
  (void)reader.u8();  // kind slot, unused on the response path
  ResponseMessage message;
  message.id = reader.u64();
  message.status = reader.u8();
  message.error_code = reader.u8();
  message.served_by = reader.u8();
  message.flags = reader.u8();
  message.health = reader.u8();
  message.retries = reader.u32();
  message.bundle_version = reader.u64();
  message.mean_rt_s = reader.f64();
  message.throughput_rps = reader.f64();
  message.predictor_latency_s = reader.f64();
  message.detail = reader.string();
  reader.done();
  return message;
}

EPP_HOT_BEGIN(frame_io);

bool write_frame(Socket& socket, const std::vector<std::uint8_t>& payload) {
  const std::vector<std::uint8_t> wire = frame_wire(payload);
  return socket.send_all(wire.data(), wire.size());
}

std::vector<std::uint8_t> frame_wire(const std::vector<std::uint8_t>& payload) {
  if (payload.size() > kMaxFrameBytes)
    throw FrameError("frame payload exceeds kMaxFrameBytes");
  std::vector<std::uint8_t> wire;
  wire.reserve(4 + payload.size());
  put_u32(wire, static_cast<std::uint32_t>(payload.size()));
  wire.insert(wire.end(), payload.begin(), payload.end());
  return wire;
}

bool read_frame(Socket& socket, std::vector<std::uint8_t>& payload) {
  std::uint8_t header[4];
  if (!socket.recv_all(header, sizeof(header))) return false;
  std::uint32_t length = 0;
  for (int i = 0; i < 4; ++i)
    length |= static_cast<std::uint32_t>(header[i]) << (8 * i);
  if (length > kMaxFrameBytes)
    throw FrameError("incoming frame of " + std::to_string(length) +
                     " bytes exceeds the " + std::to_string(kMaxFrameBytes) +
                     "-byte limit");
  payload.resize(length);
  if (length > 0 && !socket.recv_all(payload.data(), length))
    throw SocketError("recv: peer closed mid-frame");
  return true;
}

EPP_HOT_END(frame_io);

}  // namespace epp::net
