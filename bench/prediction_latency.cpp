// Sections 8.4/8.5 — model recalibration overhead and prediction delay.
//
// Paper observations to reproduce in shape:
//   * the layered queuing method needs noticeable CPU time per prediction
//     (up to 3 s on the authors' Athlon for their solver) and must search
//     when asked for an SLA capacity;
//   * historical predictions are near-instant and invert in closed form;
//   * hybrid predictions pay a one-off start-up delay per architecture
//     (11 s in the paper) and are then as fast as historical.
//
// Plus the engine the latency numbers motivate: the svc::BatchPredictor
// evaluates whole sweeps concurrently on the thread pool and memoizes
// results, so repeated capacity sweeps are answered from cache.
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "calib/bundle.hpp"
#include "calib/predictor_set.hpp"
#include "common.hpp"
#include "svc/batch_predictor.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

template <typename Fn>
double mean_latency_us(int iterations, Fn&& fn) {
  const epp::util::Timer timer;
  for (int i = 0; i < iterations; ++i) fn(i);
  return timer.elapsed_us() / iterations;
}

epp::core::WorkloadSpec browse_load(double clients) {
  epp::core::WorkloadSpec w;
  w.browse_clients = clients;
  return w;
}

}  // namespace

int main() {
  using namespace epp;
  std::cout << "== Sections 8.4/8.5: prediction latency and start-up "
               "costs ==\n\n";

  const util::Timer cold_startup_timer;
  bench::Setup setup;
  const double cold_startup_ms = cold_startup_timer.elapsed_us() / 1e3;
  core::WorkloadSpec base;
  base.browse_clients = 900.0;

  // Section 8.4's cost asymmetry, end to end: cold start runs the full
  // calibration pipeline against the simulated testbed; warm start replays
  // a persisted bundle artifact and rebuilds the same predictors.
  const std::string bundle_path = "prediction_latency.tmp.epp";
  calib::save_bundle(bundle_path, setup.bundle);
  const util::Timer warm_startup_timer;
  const calib::CalibrationBundle warm_bundle = calib::load_bundle(bundle_path);
  const calib::PredictorSet warm_set = calib::make_predictors(warm_bundle);
  const double warm_startup_ms = warm_startup_timer.elapsed_us() / 1e3;
  (void)warm_set;
  std::remove(bundle_path.c_str());

  std::cout << "-- start-up: cold calibration vs warm bundle load --\n";
  util::Table startup({"path", "wall_ms", "what runs"});
  startup.add_row({"cold", util::fmt(cold_startup_ms, 1),
                   "simulator benchmarks + sweeps + model fits"});
  startup.add_row({"warm", util::fmt(warm_startup_ms, 2),
                   "parse .epp artifact + rebuild predictors"});
  startup.print(std::cout);
  std::cout << "warm-start speedup: "
            << util::fmt(cold_startup_ms / warm_startup_ms, 0) << "x\n\n";

  // Fresh hybrid so the start-up delay is observable here.
  core::HybridPredictor fresh_hybrid(setup.calibration);
  for (const auto& arch : {core::arch_s(), core::arch_f(), core::arch_vf()})
    fresh_hybrid.register_server(arch);
  const util::Timer startup_timer;
  (void)fresh_hybrid.predict_mean_rt_s("AppServS", base);
  const double hybrid_first_us = startup_timer.elapsed_us();

  const int n = 2000;
  auto vary = [&](int i) {
    core::WorkloadSpec w;
    w.browse_clients = 400.0 + 1.0 * (i % 1200);
    return w;
  };
  const double historical_us = mean_latency_us(n, [&](int i) {
    (void)setup.historical->predict_mean_rt_s("AppServF", vary(i));
  });
  const double hybrid_us = mean_latency_us(n, [&](int i) {
    (void)fresh_hybrid.predict_mean_rt_s("AppServS", vary(i));
  });
  const double lqn_us = mean_latency_us(200, [&](int i) {
    (void)setup.lqn->predict_mean_rt_s("AppServF", vary(i));
  });

  util::Table latency({"method", "mean_prediction_latency_us", "notes"});
  latency.add_row({"historical", util::fmt(historical_us, 2),
                   "closed-form equations"});
  latency.add_row({"layered-queuing", util::fmt(lqn_us, 2),
                   "solves the LQN per prediction (paper: up to 3 s)"});
  latency.add_row({"hybrid (after start-up)", util::fmt(hybrid_us, 2),
                   "start-up " + util::fmt(hybrid_first_us, 1) +
                       " us incl. pseudo-data generation (paper: ~11 s)"});
  latency.print(std::cout);

  // SLA capacity search cost: predictions needed per question (8.2/8.5).
  std::cout << "\n-- SLA capacity search: model evaluations per question --\n";
  util::Table capacity({"method", "max_clients_at_600ms",
                        "prediction_evaluations"});
  for (const core::Predictor* predictor :
       {static_cast<const core::Predictor*>(setup.historical.get()),
        static_cast<const core::Predictor*>(setup.lqn.get()),
        static_cast<const core::Predictor*>(setup.hybrid.get())}) {
    const core::CapacityResult r =
        predictor->max_clients_for_goal("AppServF", 0.600, 0.0, 7.0);
    capacity.add_row({predictor->name(), util::fmt(r.max_clients, 0),
                      std::to_string(r.prediction_evaluations)});
  }
  capacity.print(std::cout);

  std::cout << "\nexpected shape: historical and hybrid answer in one "
               "closed-form inversion and microseconds; the layered method "
               "is orders of magnitude slower per prediction and must "
               "search for capacities.\n";

  // -- Batch engine: throughput scaling with thread count ------------------
  // An LQN-heavy sweep (the expensive method) fanned out on the pool: the
  // grid a capacity planner evaluates when comparing candidate servers.
  std::vector<svc::PredictionRequest> lqn_grid;
  for (const std::string& server : bench::server_names())
    for (double clients = 200.0; clients <= 1400.0; clients += 50.0)
      lqn_grid.push_back({svc::Method::kLqn, server, browse_load(clients)});

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::cout << "\n-- batch engine: LQN sweep throughput vs thread count ("
            << lqn_grid.size() << " predictions, cold cache, " << hw
            << " hardware thread(s) available) --\n";
  util::Table scaling({"threads", "wall_ms", "predictions_per_s"});
  std::vector<std::size_t> thread_counts{1, 2, 4};
  if (hw > 4) thread_counts.push_back(hw);
  for (const std::size_t threads : thread_counts) {
    util::ThreadPool pool(threads);
    svc::BatchPredictor batch(setup.historical.get(), setup.lqn.get(),
                              &fresh_hybrid);
    const util::Timer timer;
    (void)batch.predict_batch(lqn_grid, &pool);
    const double ms = timer.elapsed_us() / 1e3;
    scaling.add_row({std::to_string(threads), util::fmt(ms, 1),
                     util::fmt(static_cast<double>(lqn_grid.size()) /
                                   (ms / 1e3), 0)});
  }
  scaling.print(std::cout);

  // -- Batch engine: warm-cache speedup on a repeated sweep ----------------
  // The same mixed-method grid twice, as a resource manager re-evaluating
  // candidate allocations; pass 2 is answered from the memoization cache.
  std::vector<svc::PredictionRequest> mixed_grid;
  for (const svc::Method method :
       {svc::Method::kHistorical, svc::Method::kLqn, svc::Method::kHybrid})
    for (const std::string& server : bench::server_names())
      for (double clients = 200.0; clients <= 1400.0; clients += 50.0)
        mixed_grid.push_back({method, server, browse_load(clients)});

  util::ThreadPool pool;
  svc::BatchPredictor batch(setup.historical.get(), setup.lqn.get(),
                            &fresh_hybrid);
  const util::Timer cold_timer;
  (void)batch.predict_batch(mixed_grid, &pool);
  const double cold_ms = cold_timer.elapsed_us() / 1e3;
  const util::Timer warm_timer;
  (void)batch.predict_batch(mixed_grid, &pool);
  const double warm_ms = warm_timer.elapsed_us() / 1e3;
  const svc::CacheStats stats = batch.cache_stats();

  std::cout << "\n-- batch engine: repeated sweep, cold vs warm cache ("
            << mixed_grid.size() << " predictions/pass) --\n";
  util::Table cache_table({"pass", "wall_ms", "cache"});
  cache_table.add_row({"cold", util::fmt(cold_ms, 2), "all misses"});
  cache_table.add_row({"warm", util::fmt(warm_ms, 2), "all hits"});
  cache_table.print(std::cout);
  std::cout << "warm-cache speedup: " << util::fmt(cold_ms / warm_ms, 1)
            << "x  (hits " << stats.hits << ", misses " << stats.misses
            << ", hit ratio " << util::fmt(100.0 * stats.hit_ratio(), 1)
            << "%)\n";
  return 0;
}
