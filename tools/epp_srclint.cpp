// epp_srclint — concurrency, hot-path & determinism static analysis
// for the tree's own C++ sources.
//
//   epp_srclint [--json] [--no-suppress] [--rules=PREFIX[,PREFIX...]] PATH...
//
// PATHs are files or directories (directories recurse over
// .hpp/.h/.hh/.cpp/.cc/.cxx). The analyzer builds a lock model from the
// EPP_LOCK_RANK / EPP_GUARDED_BY / EPP_HOT annotations
// (util/annotations.hpp) and the guard scopes it finds, plus a
// determinism value-flow model (RNG declarations, unordered containers,
// entropy sources, pool lambdas), then runs the EPP-CONC (lock order,
// blocking under lock, double lock, guarded fields, detached threads,
// broken CAS), EPP-HOT (allocation, std::function, locks, I/O in hot
// regions) and EPP-DET (entropy into seeds, std <random>, hash-order
// effects, racy float accumulation, default seeds, pointer keys) rule
// families. Findings print in the same compiler-style / JSON formats as
// epp_lint.
//
// --rules narrows the run to the named rule-ID prefixes ("EPP-DET",
// "EPP-CONC-001", ...). The filter is checked: a prefix that matches no
// known family is a usage error, not a silently-clean run. EPP-META-002
// input errors always report.
//
// `// epp-lint: ignore(<RULE>)` comments suppress a finding on the next
// line (or their own line when trailing code); stale suppressions are
// reported as EPP-META-001 so the CI clean gate stays honest.
// --no-suppress shows everything.
//
// Exit code is the maximum severity found: 0 clean or notes only,
// 1 warnings, 2 errors — CI runs `epp_srclint src tools` as a tier-1
// gate. Usage errors exit 2.

#include <cstdio>
#include <string>
#include <vector>

#include "lint/diagnostic.hpp"
#include "lint/src/srclint.hpp"
#include "util/cli.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--json] [--no-suppress] [--rules=PREFIX[,PREFIX...]] "
      "PATH...\n"
      "  PATHs: C++ files or directories (recursive)\n"
      "  --json         machine-readable findings on stdout\n"
      "  --no-suppress  ignore epp-lint suppression comments\n"
      "  --rules=LIST   only report rules matching these ID prefixes\n"
      "                 (families: EPP-CONC, EPP-HOT, EPP-DET, EPP-META)\n"
      "exit code: 0 clean/notes, 1 warnings, 2 errors\n",
      argv0);
  return 2;
}

/// Split and validate a --rules prefix list. Every element must be a
/// prefix of (or extend) a known rule family, so `--rules=EPP-TYPO`
/// fails loudly instead of reporting a spuriously clean tree.
std::vector<std::string> parse_rule_prefixes(const std::string& spec) {
  static const char* const kFamilies[] = {"EPP-CONC", "EPP-HOT", "EPP-DET",
                                          "EPP-META"};
  std::vector<std::string> prefixes;
  std::string current;
  std::string remaining = spec + ",";
  for (const char c : remaining) {
    if (c != ',') {
      current.push_back(c);
      continue;
    }
    if (current.empty())
      throw epp::util::cli::UsageError(
          "--rules: empty element in '" + spec + "'");
    bool known = false;
    for (const char* family : kFamilies) {
      const std::string f(family);
      if (current.compare(0, f.size(), f) == 0 ||
          f.compare(0, current.size(), current) == 0)
        known = true;
    }
    if (!known)
      throw epp::util::cli::UsageError(
          "--rules: '" + current +
          "' matches no rule family (EPP-CONC, EPP-HOT, EPP-DET, EPP-META)");
    prefixes.push_back(current);
    current.clear();
  }
  return prefixes;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  epp::lint::SrclintOptions options;
  std::vector<std::string> paths;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--json") {
        json = true;
      } else if (arg == "--no-suppress") {
        options.use_suppressions = false;
      } else if (arg.rfind("--rules=", 0) == 0) {
        options.rule_prefixes = parse_rule_prefixes(arg.substr(8));
      } else if (arg == "--rules") {
        if (i + 1 >= argc)
          throw epp::util::cli::UsageError("--rules: missing prefix list");
        options.rule_prefixes = parse_rule_prefixes(argv[++i]);
      } else if (arg == "--help" || arg == "-h") {
        usage(argv[0]);
        return 0;
      } else if (!arg.empty() && arg[0] == '-') {
        std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
        return usage(argv[0]);
      } else {
        paths.push_back(arg);
      }
    }
  } catch (const epp::util::cli::UsageError& error) {
    std::fprintf(stderr, "%s\n", error.what());
    return usage(argv[0]);
  }
  if (paths.empty()) return usage(argv[0]);

  epp::lint::Diagnostics diagnostics;
  epp::lint::lint_sources(paths, diagnostics, options);

  if (json) {
    std::fputs(epp::lint::render_json(diagnostics).c_str(), stdout);
    std::fputc('\n', stdout);
  } else if (diagnostics.empty()) {
    std::printf("clean: %zu path(s), no findings\n", paths.size());
  } else {
    std::fputs(epp::lint::render_text(diagnostics).c_str(), stdout);
  }
  return epp::lint::exit_code(diagnostics);
}
