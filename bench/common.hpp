// Shared experiment setup for the bench binaries: a thin adapter over the
// calib library's unified calibration pipeline. Every table/figure binary
// starts from the same CalibrationBundle and predictor set, calibrated
// from the simulated testbed exactly as the paper calibrates from its
// WebSphere deployment (sections 3-6).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "calib/bundle.hpp"
#include "calib/catalog.hpp"
#include "calib/seeds.hpp"
#include "core/evaluation.hpp"
#include "core/historical_predictor.hpp"
#include "core/hybrid_predictor.hpp"
#include "core/lqn_predictor.hpp"
#include "util/thread_pool.hpp"

namespace epp::bench {

struct Setup {
  util::ThreadPool pool;

  /// The full calibration artifact (catalog, fits, table-2 parameters).
  calib::CalibrationBundle bundle;

  // Benchmarked max throughputs (requests/second, typical workload).
  double max_s = 0.0, max_f = 0.0, max_vf = 0.0;
  // Mixed-workload max throughput on the established AppServF (for
  // relationship 3): measured at 25% buy clients. 0 unless measure_mix.
  double max_f_buy25 = 0.0;
  // The shared clients->throughput gradient (the paper's m = 0.14).
  double gradient_m = 0.0;

  core::TradeCalibration calibration;  // layered queuing method (table 2)
  std::unique_ptr<core::LqnPredictor> lqn;
  std::unique_ptr<core::HistoricalPredictor> historical;
  std::unique_ptr<core::HybridPredictor> hybrid;

  /// Full calibration; with measure_mix also runs the 25%-buy benchmark.
  explicit Setup(bool measure_mix = false);

  double max_tput(const std::string& server) const {
    return bundle.max_throughput(server);
  }
  double n_star(const std::string& server) const {
    return max_tput(server) / gradient_m;
  }

  /// Measured validation sweep at fractions of the max-throughput load
  /// (calib::kValidationSeed — distinct from every calibration seed).
  std::vector<core::MeasuredPoint> validation_sweep(
      const std::string& server, const std::vector<double>& fractions,
      double buy_client_fraction = 0.0);
};

/// Simulator server spec by model name (forwards to the calib catalog).
inline sim::trade::ServerSpec spec_for(const std::string& server) {
  return calib::spec_for(server);
}

/// All three case-study architectures, established first.
inline const std::vector<std::string>& server_names() {
  return calib::server_names();
}

}  // namespace epp::bench
