#include "sim/trade/testbed.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/engine.hpp"
#include "sim/resources.hpp"
#include "util/rng.hpp"

namespace epp::sim::trade {
namespace {

// ---------------------------------------------------------------------------
// Closed-network validation: engine + PS resource against exact MVA for the
// machine-repairman model (N clients, think Z, single PS server, demand D).
// Product-form theory gives the exact mean response time via the MVA
// recursion R(n) = D (1 + Q(n-1)), X = n / (Z + R), Q = X R.
// ---------------------------------------------------------------------------
double repairman_mva_rt(int n_clients, double think, double demand) {
  double q = 0.0, r = 0.0;
  for (int n = 1; n <= n_clients; ++n) {
    r = demand * (1.0 + q);
    const double x = static_cast<double>(n) / (think + r);
    q = x * r;
  }
  return r;
}

double simulate_repairman_rt(int n_clients, double think, double demand,
                             std::uint64_t seed) {
  Engine engine;
  PsResource cpu(engine, 1.0);
  util::Rng rng(seed);
  double total_rt = 0.0;
  long completions = 0;
  const double warmup = 200.0;
  const double end = 2200.0;

  struct Client {
    util::Rng rng;
  };
  std::vector<Client> clients;
  clients.reserve(n_clients);
  for (int i = 0; i < n_clients; ++i) clients.push_back({rng.spawn()});

  std::function<void(Client&)> think_then_go = [&](Client& c) {
    engine.schedule_after(c.rng.exponential(think), [&] {
      const double issued = engine.now();
      cpu.add_job(c.rng.exponential(demand), [&, issued] {
        if (issued >= warmup) {
          total_rt += engine.now() - issued;
          ++completions;
        }
        think_then_go(c);
      });
    });
  };
  for (auto& c : clients) think_then_go(c);
  engine.run_until(end);
  return completions ? total_rt / static_cast<double>(completions) : 0.0;
}

class RepairmanParam : public ::testing::TestWithParam<int> {};

TEST_P(RepairmanParam, SimMatchesExactMva) {
  const int n = GetParam();
  const double think = 2.0, demand = 0.1;
  const double analytic = repairman_mva_rt(n, think, demand);
  const double simulated = simulate_repairman_rt(n, think, demand, 1234);
  EXPECT_NEAR(simulated, analytic, std::max(0.05 * analytic, 0.004))
      << "N=" << n;
}

INSTANTIATE_TEST_SUITE_P(Populations, RepairmanParam,
                         ::testing::Values(1, 5, 10, 20, 40));

// ---------------------------------------------------------------------------
// Trade testbed behaviour.
// ---------------------------------------------------------------------------

TEST(Testbed, DeterministicForFixedSeed) {
  TestbedConfig config = typical_workload(app_serv_f(), 200, 42);
  config.warmup_s = 10.0;
  config.measure_s = 30.0;
  const RunResult a = run_testbed(config);
  const RunResult b = run_testbed(config);
  EXPECT_DOUBLE_EQ(a.mean_rt_s, b.mean_rt_s);
  EXPECT_DOUBLE_EQ(a.throughput_rps, b.throughput_rps);
}

TEST(Testbed, LightLoadThroughputFollowsThinkTime) {
  // Far below saturation every client completes ~1 request per
  // (think + small RT) seconds: X ~= N / 7.0x, the paper's m ~= 0.14 slope.
  TestbedConfig config = typical_workload(app_serv_f(), 350);
  config.warmup_s = 30.0;
  config.measure_s = 120.0;
  const RunResult r = run_testbed(config);
  const double expected = 350.0 / 7.05;
  EXPECT_NEAR(r.throughput_rps, expected, 0.05 * expected);
  EXPECT_LT(r.mean_rt_s, 0.05);
}

TEST(Testbed, MaxThroughputsMatchCaseStudyServers) {
  // The calibration targets of the whole reproduction: ~86 / 186 / 320
  // requests/second for AppServS / F / VF under the typical workload.
  EXPECT_NEAR(measure_max_throughput(app_serv_s()), 86.0, 6.0);
  EXPECT_NEAR(measure_max_throughput(app_serv_f()), 186.0, 12.0);
  EXPECT_NEAR(measure_max_throughput(app_serv_vf()), 320.0, 20.0);
}

TEST(Testbed, ResponseTimeMonotoneInLoadRegime) {
  double prev = 0.0;
  for (std::size_t clients : {400u, 1200u, 1800u, 2400u}) {
    TestbedConfig config = typical_workload(app_serv_f(), clients, 7);
    config.warmup_s = 30.0;
    config.measure_s = 90.0;
    const double rt = run_testbed(config).mean_rt_s;
    EXPECT_GT(rt, prev * 0.98) << clients;  // allow tiny noise at low load
    prev = rt;
  }
  // Past saturation the response time is dominated by queueing: seconds.
  EXPECT_GT(prev, 1.0);
}

TEST(Testbed, SaturatedThroughputStaysAtMax) {
  TestbedConfig config = typical_workload(app_serv_f(), 2600, 3);
  config.warmup_s = 30.0;
  config.measure_s = 90.0;
  const RunResult r = run_testbed(config);
  EXPECT_NEAR(r.throughput_rps, 186.0, 14.0);
  EXPECT_GT(r.app_cpu_utilization, 0.97);
}

TEST(Testbed, MixedWorkloadReducesMaxThroughput) {
  const double typical = measure_max_throughput(app_serv_f());
  const double mixed = measure_max_throughput(app_serv_f(), 0.25);
  EXPECT_LT(mixed, 0.95 * typical);
  EXPECT_GT(mixed, 0.6 * typical);
}

TEST(Testbed, MixedWorkloadReportsBuyFraction) {
  TestbedConfig config = mixed_workload(app_serv_f(), 400, 0.25, 11);
  config.warmup_s = 30.0;
  config.measure_s = 120.0;
  const RunResult r = run_testbed(config);
  // 25% buy *clients*; buy users also issue login/logoff requests so the
  // buy-request share is slightly below their request share.
  EXPECT_GT(r.buy_request_fraction, 0.12);
  EXPECT_LT(r.buy_request_fraction, 0.30);
  EXPECT_GT(r.per_class.at("buy").completions, 0u);
  EXPECT_GT(r.per_class.at("browse").completions, 0u);
}

TEST(Testbed, BuyRequestsSlowerThanBrowse) {
  TestbedConfig config = mixed_workload(app_serv_f(), 1200, 0.3, 5);
  config.warmup_s = 30.0;
  config.measure_s = 90.0;
  const RunResult r = run_testbed(config);
  EXPECT_GT(r.per_class.at("buy").mean_rt_s,
            r.per_class.at("browse").mean_rt_s);
}

TEST(Testbed, DbNotBottleneckUnderTypicalWorkload) {
  TestbedConfig config = typical_workload(app_serv_f(), 2400, 9);
  config.warmup_s = 30.0;
  config.measure_s = 60.0;
  const RunResult r = run_testbed(config);
  EXPECT_LT(r.db_cpu_utilization, 0.5);
  EXPECT_LT(r.disk_utilization, 0.5);
}

TEST(Testbed, SmallCacheMissesMoreAndRespondsSlower) {
  auto make = [](std::uint64_t cache_bytes) {
    TestbedConfig config = typical_workload(app_serv_f(), 800, 21);
    config.warmup_s = 30.0;
    config.measure_s = 90.0;
    CacheConfig cc;
    cc.capacity_bytes = cache_bytes;
    config.cache = cc;
    return run_testbed(config);
  };
  const RunResult small = make(100ull * 8 * 1024);   // fits 100 sessions
  const RunResult large = make(1000ull * 8 * 1024);  // fits all 800
  EXPECT_GT(small.cache_miss_ratio, 0.5);
  EXPECT_LT(large.cache_miss_ratio, 0.08);  // cold misses only
  EXPECT_GT(small.mean_rt_s, large.mean_rt_s);
}

TEST(Testbed, KeepSamplesReturnsResponseTimes) {
  TestbedConfig config = typical_workload(app_serv_f(), 100, 2);
  config.warmup_s = 10.0;
  config.measure_s = 20.0;
  const RunResult r = run_testbed(config, /*keep_samples=*/true);
  EXPECT_GT(r.rt_samples_s.size(), 100u);
}

TEST(Testbed, InvalidConfigsThrow) {
  TestbedConfig config;
  config.server = app_serv_f();
  EXPECT_THROW(run_testbed(config), std::invalid_argument);  // no classes
  EXPECT_THROW(mixed_workload(app_serv_f(), 100, 1.5), std::invalid_argument);
}

}  // namespace
}  // namespace epp::sim::trade
