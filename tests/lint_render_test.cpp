// Renderer edge cases for the diagnostic engine: JSON escaping of
// hostile paths and messages, sort stability, and a round-trip parse of
// the exact JSON epp_srclint emits for the defect corpus — CI consumes
// that artifact, so "looks like JSON" is not enough.

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <string>
#include <vector>

#include "lint/diagnostic.hpp"
#include "lint/src/srclint.hpp"

namespace epp {
namespace {

using lint::Diagnostic;
using lint::Diagnostics;
using lint::Severity;

// --- a deliberately small JSON reader --------------------------------------
// Parses exactly the shape render_json promises: an array of flat
// objects with string/number values. Any deviation is a test failure,
// which is the point.

struct JsonParser {
  const std::string& text;
  std::size_t pos = 0;
  bool failed = false;

  void skip_space() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])))
      ++pos;
  }

  bool expect(char c) {
    skip_space();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    failed = true;
    return false;
  }

  std::string parse_string() {
    skip_space();
    std::string out;
    if (pos >= text.size() || text[pos] != '"') {
      failed = true;
      return out;
    }
    ++pos;
    while (pos < text.size() && text[pos] != '"') {
      char c = text[pos];
      if (c == '\\') {
        ++pos;
        if (pos >= text.size()) break;
        switch (text[pos]) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'u': pos += 4; out.push_back('?'); break;
          default: failed = true; return out;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        failed = true;  // raw control character: invalid JSON
        return out;
      } else {
        out.push_back(c);
      }
      ++pos;
    }
    if (pos < text.size() && text[pos] == '"')
      ++pos;  // closing quote
    else
      failed = true;
    return out;
  }

  std::string parse_number() {
    skip_space();
    std::string out;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '-'))
      out.push_back(text[pos++]);
    if (out.empty()) failed = true;
    return out;
  }

  std::map<std::string, std::string> parse_object() {
    std::map<std::string, std::string> object;
    if (!expect('{')) return object;
    skip_space();
    if (pos < text.size() && text[pos] == '}') {
      ++pos;
      return object;
    }
    while (!failed) {
      const std::string key = parse_string();
      if (!expect(':')) break;
      skip_space();
      object[key] = (pos < text.size() && text[pos] == '"')
                        ? parse_string()
                        : parse_number();
      skip_space();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      expect('}');
      break;
    }
    return object;
  }

  std::vector<std::map<std::string, std::string>> parse_array() {
    std::vector<std::map<std::string, std::string>> objects;
    if (!expect('[')) return objects;
    skip_space();
    if (pos < text.size() && text[pos] == ']') {
      ++pos;
      return objects;
    }
    while (!failed) {
      objects.push_back(parse_object());
      skip_space();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      expect(']');
      break;
    }
    return objects;
  }
};

// --- escaping --------------------------------------------------------------

TEST(LintRender, JsonEscapesQuotesAndBackslashesInPaths) {
  Diagnostics diagnostics;
  diagnostics.error("EPP-TEST-001",
                    {R"(C:\src\"quoted dir"\file.cpp)", 7},
                    "field \"x\" tabbed\there\nand on a new line",
                    R"(replace \ with /)");
  const std::string json = lint::render_json(diagnostics);

  JsonParser parser{json};
  const auto objects = parser.parse_array();
  ASSERT_FALSE(parser.failed) << json;
  ASSERT_EQ(objects.size(), 1u);
  EXPECT_EQ(objects[0].at("file"), R"(C:\src\"quoted dir"\file.cpp)");
  EXPECT_EQ(objects[0].at("message"),
            "field \"x\" tabbed\there\nand on a new line");
  EXPECT_EQ(objects[0].at("hint"), R"(replace \ with /)");
  EXPECT_EQ(objects[0].at("line"), "7");
}

TEST(LintRender, JsonEscapesControlCharactersAsUnicode) {
  Diagnostics diagnostics;
  diagnostics.warning("EPP-TEST-002", {"f.cpp", 1},
                      std::string("bell\achar"));  // \a = 0x07
  const std::string json = lint::render_json(diagnostics);
  EXPECT_NE(json.find("\\u0007"), std::string::npos) << json;
  EXPECT_EQ(json.find('\a'), std::string::npos) << json;
}

// --- sort stability --------------------------------------------------------

TEST(LintRender, SortOrdersByFileLineRuleAndKeepsTieOrder) {
  Diagnostics diagnostics;
  diagnostics.note("EPP-B-002", {"b.cpp", 5}, "fourth");
  diagnostics.note("EPP-A-002", {"a.cpp", 9}, "third");
  diagnostics.note("EPP-A-001", {"a.cpp", 2}, "first");
  diagnostics.note("EPP-A-009", {"a.cpp", 2}, "second");
  // Two findings from different rule passes on the same (file, line,
  // rule): emission order must survive the sort.
  diagnostics.note("EPP-B-001", {"b.cpp", 1}, "tie-early");
  diagnostics.note("EPP-B-001", {"b.cpp", 1}, "tie-late");
  diagnostics.sort_by_location();

  std::vector<std::string> messages;
  for (const Diagnostic& diagnostic : diagnostics.all())
    messages.push_back(diagnostic.message);
  const std::vector<std::string> expected = {
      "first", "second", "third", "tie-early", "tie-late", "fourth"};
  EXPECT_EQ(messages, expected);
}

// --- round trip over the real corpus ---------------------------------------

TEST(LintRender, SrclintJsonRoundTripsOverTheDefectCorpus) {
  Diagnostics diagnostics;
  lint::lint_sources({std::string(EPP_LINT_CORPUS_DIR) + "/src"},
                     diagnostics);
  ASSERT_FALSE(diagnostics.empty());

  const std::string json = lint::render_json(diagnostics);
  JsonParser parser{json};
  const auto objects = parser.parse_array();
  ASSERT_FALSE(parser.failed);
  ASSERT_EQ(objects.size(), diagnostics.size());

  for (std::size_t i = 0; i < objects.size(); ++i) {
    const Diagnostic& diagnostic = diagnostics.all()[i];
    EXPECT_EQ(objects[i].at("file"), diagnostic.location.file);
    EXPECT_EQ(objects[i].at("line"),
              std::to_string(diagnostic.location.line));
    EXPECT_EQ(objects[i].at("rule"), diagnostic.rule);
    EXPECT_EQ(objects[i].at("severity"),
              lint::severity_name(diagnostic.severity));
    EXPECT_EQ(objects[i].at("message"), diagnostic.message);
    EXPECT_EQ(objects[i].at("hint"), diagnostic.hint);
  }
}

}  // namespace
}  // namespace epp
