#include "svc/batch_predictor.hpp"

#include <cmath>
#include <stdexcept>

namespace epp::svc {
namespace {

std::int64_t snap(double value, double quantum) {
  return static_cast<std::int64_t>(std::llround(value / quantum));
}

}  // namespace

BatchPredictor::BatchPredictor(const core::Predictor* historical,
                               const core::Predictor* lqn,
                               const core::Predictor* hybrid,
                               BatchOptions options)
    : historical_(historical),
      lqn_(lqn),
      hybrid_(hybrid),
      options_(options),
      cache_(options.cache_capacity_per_shard, options.cache_shards) {
  if (options_.quantum_clients <= 0.0 || options_.quantum_think_s <= 0.0)
    throw std::invalid_argument("BatchPredictor: quanta must be positive");
}

const core::Predictor& BatchPredictor::predictor_for(Method method) const {
  const core::Predictor* predictor = nullptr;
  switch (method) {
    case Method::kHistorical:
      predictor = historical_;
      break;
    case Method::kLqn:
      predictor = lqn_;
      break;
    case Method::kHybrid:
      predictor = hybrid_;
      break;
  }
  if (predictor == nullptr)
    throw std::invalid_argument("BatchPredictor: no '" +
                                std::string(method_name(method)) +
                                "' predictor supplied");
  return *predictor;
}

core::WorkloadSpec BatchPredictor::quantized(
    const core::WorkloadSpec& workload) const {
  core::WorkloadSpec q;
  q.browse_clients = static_cast<double>(snap(workload.browse_clients,
                                              options_.quantum_clients)) *
                     options_.quantum_clients;
  q.buy_clients =
      static_cast<double>(snap(workload.buy_clients, options_.quantum_clients)) *
      options_.quantum_clients;
  q.think_time_s =
      static_cast<double>(snap(workload.think_time_s, options_.quantum_think_s)) *
      options_.quantum_think_s;
  return q;
}

CacheKey BatchPredictor::cache_key(const PredictionRequest& request) const {
  CacheKey key;
  key.method = request.method;
  key.server = request.server;
  key.browse_q = snap(request.workload.browse_clients, options_.quantum_clients);
  key.buy_q = snap(request.workload.buy_clients, options_.quantum_clients);
  key.think_q = snap(request.workload.think_time_s, options_.quantum_think_s);
  return key;
}

PredictionResult BatchPredictor::predict(
    const PredictionRequest& request) const {
  core::validate_workload(request.workload);
  const CacheKey key = cache_key(request);
  if (const auto hit = cache_.lookup(key)) {
    PredictionResult result;
    result.mean_rt_s = hit->mean_rt_s;
    result.throughput_rps = hit->throughput_rps;
    result.cached = true;
    return result;
  }

  const core::Predictor& predictor = predictor_for(request.method);
  if (options_.fault != nullptr &&
      options_.fault->should_fail(request.method, request.server))
    throw InjectedFault(request.method, request.server);
  const core::WorkloadSpec workload = quantized(request.workload);
  CachedPrediction fresh;
  fresh.mean_rt_s = predictor.predict_mean_rt_s(request.server, workload);
  fresh.throughput_rps =
      predictor.predict_throughput_rps(request.server, workload);
  cache_.insert(key, fresh);
  PredictionResult result;
  result.mean_rt_s = fresh.mean_rt_s;
  result.throughput_rps = fresh.throughput_rps;
  return result;
}

std::vector<PredictionResult> BatchPredictor::predict_batch(
    const std::vector<PredictionRequest>& requests,
    util::ThreadPool* pool) const {
  std::vector<PredictionResult> results(requests.size());
  // One failing request must not discard the rest of the batch, so each
  // slot captures its own error instead of letting it propagate through
  // parallel_for (which would drop every other result).
  const auto evaluate = [&](std::size_t i) {
    try {
      results[i] = predict(requests[i]);
    } catch (const std::exception& error) {
      results[i] = PredictionResult{};
      results[i].error = error.what();
    }
  };
  if (pool != nullptr && requests.size() > 1) {
    pool->parallel_for(requests.size(), evaluate);
  } else {
    for (std::size_t i = 0; i < requests.size(); ++i) evaluate(i);
  }
  return results;
}

}  // namespace epp::svc
