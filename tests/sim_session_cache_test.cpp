#include "sim/trade/session_cache.hpp"

#include <gtest/gtest.h>

namespace epp::sim::trade {
namespace {

TEST(SessionCache, DisabledCacheNeverMisses) {
  SessionCache cache(0);
  EXPECT_FALSE(cache.enabled());
  EXPECT_TRUE(cache.access(1, 100));
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(SessionCache, FirstAccessMissesThenHits) {
  SessionCache cache(1000);
  EXPECT_FALSE(cache.access(1, 100));
  EXPECT_TRUE(cache.access(1, 100));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_DOUBLE_EQ(cache.miss_ratio(), 0.5);
}

TEST(SessionCache, LruEvictionOrder) {
  SessionCache cache(300);
  cache.access(1, 100);
  cache.access(2, 100);
  cache.access(3, 100);
  cache.access(1, 100);  // 1 becomes MRU; LRU order is now 2, 3, 1
  cache.access(4, 100);  // evicts 2
  EXPECT_FALSE(cache.access(2, 100));  // 2 was evicted (this evicts 3)
  EXPECT_EQ(cache.used_bytes(), 300u);
}

TEST(SessionCache, SessionGrowthResizesInPlace) {
  SessionCache cache(1000);
  cache.access(1, 100);
  EXPECT_TRUE(cache.access(1, 400));  // grown portfolio, still a hit
  EXPECT_EQ(cache.used_bytes(), 400u);
}

TEST(SessionCache, InvalidateFreesSpace) {
  SessionCache cache(200);
  cache.access(1, 100);
  cache.access(2, 100);
  cache.invalidate(1);
  EXPECT_EQ(cache.used_bytes(), 100u);
  EXPECT_FALSE(cache.access(1, 100));  // must be refetched
}

TEST(SessionCache, InvalidateUnknownIsNoop) {
  SessionCache cache(100);
  cache.invalidate(42);
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST(SessionCache, ActiveSessionNeverEvicted) {
  SessionCache cache(100);
  cache.access(1, 500);  // larger than the whole cache
  EXPECT_EQ(cache.used_bytes(), 500u);  // resident while in use
  cache.access(2, 50);   // evicts 1, keeps 2
  EXPECT_EQ(cache.used_bytes(), 50u);
}

TEST(SessionCache, MissRatioGrowsWhenWorkingSetExceedsCapacity) {
  SessionCache small(5 * 100);
  SessionCache large(100 * 100);
  // 50 clients round-robin, 100-byte sessions, several passes.
  for (int pass = 0; pass < 10; ++pass)
    for (std::uint64_t c = 0; c < 50; ++c) {
      small.access(c, 100);
      large.access(c, 100);
    }
  EXPECT_GT(small.miss_ratio(), 0.9);   // thrashing
  EXPECT_LT(large.miss_ratio(), 0.15);  // only cold misses
}

}  // namespace
}  // namespace epp::sim::trade
