// epp_serve — the long-running prediction daemon.
//
// Wraps the calibrated predictor stack behind the length-prefixed binary
// protocol (src/net/frame.hpp) on a TCP socket and serves until a signal
// or a client's shutdown frame. This is the paper's capacity-planning
// engine as an actual service: a resource manager (or epp_loadgen)
// connects, streams prediction requests at production rates, and gets
// typed outcomes back — fallback/stale flagged, overload shed with
// `overloaded` instead of queueing without bound, per-request deadlines
// riding the svc cancellation machinery.
//
// Serving goes through a BundleRegistry (src/serve/registry.hpp): the
// startup bundle is promoted as version 1, and a SIGHUP or a kReload
// frame re-reads the --bundle file (or the path carried in the frame)
// and promotes it *live* — gated through the EPP-SEM verifier, with the
// incumbent version kept serving on gate failure, and in-flight
// requests pinned to the version they were admitted under. kObserve
// frames feed the drift detector; the stats frame and every response's
// health byte report warming/healthy/drifting.
//
// The bundle is acquired exactly like epp_sweep: cold-calibrated from
// the simulated testbed, or warm-loaded in milliseconds with --bundle.
// Both paths run the structural lint + EPP-SEM semantic gates first; a
// daemon should refuse a defective bundle at startup, not serve garbage
// for a week.
//
// Usage:
//   epp_serve [--port P] [--host H] [--workers N] [--queue-depth N]
//             [--max-connections N] [--deadline-ms MS] [--max-retries N]
//             [--stale-capacity N] [--fault-spec SPEC]
//             [--idle-timeout-ms MS] [--drift-delta D] [--drift-lambda L]
//             [--drift-min-samples N]
//             [--bundle FILE] [--save-bundle FILE] [--threads N]
//
// A `net:` clause in --fault-spec arms the wire chaos policy (resets,
// truncated frames, slow-loris writes, accept delays) — the fault storm
// the chaos smoke job drives with epp_loadgen retries.
//
// Prints exactly one "listening on HOST:PORT" line to stdout once ready
// (scripts and CI scrape it), then stats lines to stderr on shutdown.
#include <atomic>
#include <chrono>
#include <csignal>
#include <exception>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>

#include "calib/bundle.hpp"
#include "calib/seeds.hpp"
#include "lint/lint.hpp"
#include "lint/verify.hpp"
#include "net/chaos.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "svc/fault.hpp"
#include "svc/resilient.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace epp;
namespace cli = util::cli;

std::atomic<bool> g_signalled{false};
std::atomic<bool> g_reload{false};

void on_signal(int) { g_signalled.store(true, std::memory_order_release); }
void on_reload(int) { g_reload.store(true, std::memory_order_release); }

struct ServeConfig {
  serve::ServerOptions server;
  double deadline_ms = 0.0;
  std::optional<int> max_retries;
  std::size_t stale_capacity = 4096;
  std::string fault_spec;
  std::size_t threads = std::max(1u, std::thread::hardware_concurrency());
  calib::ArtifactCli artifact;
};

int usage(std::ostream& out) {
  out << "usage: epp_serve [--port P] [--host H] [--workers N]\n"
         "                 [--queue-depth N] [--max-connections N]\n"
         "                 [--deadline-ms MS] [--max-retries N]\n"
         "                 [--stale-capacity N] [--fault-spec SPEC]\n"
         "                 [--idle-timeout-ms MS] [--drift-delta D]\n"
         "                 [--drift-lambda L] [--drift-min-samples N]\n"
         "                 [--bundle FILE] [--save-bundle FILE] [--threads N]\n\n"
         "Serves predictions over the length-prefixed binary protocol\n"
         "(see src/net/frame.hpp). --port 0 (default) picks an ephemeral\n"
         "port, reported on stdout as 'listening on HOST:PORT'. Warm-start\n"
         "with --bundle to skip calibration; --threads sizes the one-time\n"
         "calibration pool, --workers the serving worker pool. A full\n"
         "dispatch queue sheds requests with the typed 'overloaded' error.\n"
         "SIGHUP (or a reload frame) re-reads the --bundle file and\n"
         "hot-swaps it through the EPP-SEM gate; a 'net:' clause in\n"
         "--fault-spec arms wire chaos. Stop with SIGINT/SIGTERM or a\n"
         "client shutdown frame; in-flight requests drain before exit.\n"
         "Drive it with epp_loadgen.\n";
  return 1;
}

ServeConfig parse_args(int argc, char** argv) {
  ServeConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc)
        throw std::invalid_argument(std::string(arg) + " wants a value");
      return argv[++i];
    };
    if (arg == "--port") {
      config.server.port =
          static_cast<std::uint16_t>(cli::parse_int(arg, value(), 0, 65535));
    } else if (arg == "--host") {
      config.server.host = value();
    } else if (arg == "--workers") {
      config.server.workers = cli::parse_size(arg, value(), 1);
    } else if (arg == "--queue-depth") {
      config.server.queue_capacity = cli::parse_size(arg, value(), 1);
    } else if (arg == "--max-connections") {
      config.server.max_connections = cli::parse_size(arg, value(), 1);
    } else if (arg == "--deadline-ms") {
      config.deadline_ms = cli::parse_positive_double(arg, value());
    } else if (arg == "--idle-timeout-ms") {
      config.server.idle_timeout_s =
          cli::parse_positive_double(arg, value()) / 1e3;
    } else if (arg == "--drift-delta") {
      config.server.drift.delta = cli::parse_double_at_least(arg, value(), 0.0);
    } else if (arg == "--drift-lambda") {
      config.server.drift.lambda = cli::parse_positive_double(arg, value());
    } else if (arg == "--drift-min-samples") {
      config.server.drift.min_samples = cli::parse_size(arg, value(), 1);
    } else if (arg == "--max-retries") {
      config.max_retries =
          static_cast<int>(cli::parse_int(arg, value(), 0, 1000));
    } else if (arg == "--stale-capacity") {
      config.stale_capacity = cli::parse_size(arg, value());
    } else if (arg == "--fault-spec") {
      config.fault_spec = value();
    } else if (arg == "--threads") {
      config.threads = cli::parse_size(arg, value(), 1);
    } else if (arg == "--bundle") {
      config.artifact.load_path = value();
    } else if (arg == "--save-bundle") {
      config.artifact.save_path = value();
    } else {
      throw std::invalid_argument("unknown argument: " + std::string(arg));
    }
  }
  return config;
}

/// Load + parse the bundle file at `path` and promote it through the
/// registry's EPP-SEM gate. Shared by SIGHUP and the kReload frame.
serve::ReloadStatus reload_bundle(serve::BundleRegistry& registry,
                                  const std::string& path) {
  serve::ReloadStatus status;
  if (path.empty()) {
    status.message = "reload: no bundle path (cold-calibrated start and the "
                     "frame named none)";
    return status;
  }
  std::ifstream in(path);
  if (!in) {
    status.message = "reload: cannot read '" + path + "'";
    return status;
  }
  std::ostringstream text;
  text << in.rdbuf();
  lint::Diagnostics structural;
  calib::BundleParseInfo info;
  calib::CalibrationBundle candidate =
      calib::parse_bundle_text(text.str(), path, structural, &info);
  if (structural.has_errors()) {
    status.message =
        "reload: '" + path + "' failed structural lint: " +
        structural.first_at_least(lint::Severity::kError)->message;
    return status;
  }
  const serve::PromotionResult result =
      registry.promote(std::move(candidate), path, &info);
  status.ok = result.accepted;
  status.message = result.message;
  return status;
}

}  // namespace

int main(int argc, char** argv) try {
  const ServeConfig config = parse_args(argc, argv);

  // --- pre-run gates: structural lint + EPP-SEM, as in epp_sweep --------
  lint::Diagnostics findings;
  if (!config.artifact.load_path.empty())
    lint::lint_artifact_file(config.artifact.load_path, findings);
  svc::FaultConfig fault_config;
  if (!config.fault_spec.empty())
    fault_config =
        svc::lint_fault_spec(config.fault_spec, {"<fault-spec>", 0}, findings);
  findings.sort_by_location();
  if (!findings.empty()) std::cerr << lint::render_text(findings);
  if (findings.has_errors()) {
    std::cerr << "epp_serve: refusing to start with "
              << findings.count(lint::Severity::kError) << " lint error(s)\n";
    return 2;
  }

  util::ThreadPool pool(config.threads);
  calib::CalibrationOptions calibration_options;
  calibration_options.pool = &pool;
  if (config.artifact.load_path.empty())
    std::cerr << "calibrating from the simulated testbed...\n";
  const util::Timer calibration_timer;
  calib::CalibrationBundle bundle =
      calib::acquire_bundle(config.artifact, calibration_options);
  std::cerr << (config.artifact.load_path.empty()
                    ? "calibrated in "
                    : "warm start: loaded bundle in ")
            << calibration_timer.elapsed_ms() << " ms\n";

  // --- serving stack: fault injector, registry, chaos, server -----------
  std::optional<svc::FaultInjector> injector;
  serve::RegistryOptions registry_options;
  if (fault_config.any()) {
    injector.emplace(fault_config, calib::kFaultInjectionSeed);
    registry_options.batch.fault = &*injector;
  }
  registry_options.resilience.deadline_s = config.deadline_ms / 1e3;
  if (config.max_retries)
    registry_options.resilience.max_retries = *config.max_retries;
  registry_options.resilience.stale_capacity = config.stale_capacity;
  registry_options.resilience.jitter_seed = calib::kRetryJitterSeed;

  serve::BundleRegistry registry(registry_options);
  {
    const serve::PromotionResult startup = registry.promote(
        std::move(bundle),
        config.artifact.load_path.empty() ? "<calibrated>"
                                          : config.artifact.load_path);
    if (!startup.accepted) {
      if (!startup.findings.empty())
        std::cerr << lint::render_text(startup.findings);
      std::cerr << "epp_serve: " << startup.message << "\n";
      return 2;
    }
    std::cerr << "epp_serve: " << startup.message << "\n";
  }

  std::optional<net::ChaosPolicy> chaos;
  if (fault_config.net.any()) {
    chaos.emplace(fault_config.net, calib::kFaultInjectionSeed);
    std::cerr << "epp_serve: wire chaos armed (reset "
              << fault_config.net.reset_p << ", truncate "
              << fault_config.net.truncate_p << ", accept-reset "
              << fault_config.net.accept_reset_p << ")\n";
  }

  serve::ServerOptions server_options = config.server;
  server_options.chaos = chaos ? &*chaos : nullptr;
  const std::string default_reload_path = config.artifact.load_path;
  server_options.reload_handler =
      [&registry, default_reload_path](const std::string& path) {
        return reload_bundle(registry,
                             path.empty() ? default_reload_path : path);
      };

  serve::PredictionServer server(registry, server_options);
  server.start();
  std::cout << "listening on " << config.server.host << ":" << server.port()
            << std::endl;  // flushed: readiness line for scripts/CI

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGHUP, on_reload);
  while (!g_signalled.load(std::memory_order_acquire) && !server.stopping()) {
    if (g_reload.exchange(false, std::memory_order_acq_rel)) {
      const serve::ReloadStatus status =
          reload_bundle(registry, default_reload_path);
      std::cerr << "epp_serve: SIGHUP " << (status.ok ? "reload: " : "reload "
                                                        "failed: ")
                << status.message << "\n";
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::cerr << "epp_serve: draining...\n";
  server.stop();

  const serve::ServerStats server_stats = server.stats();
  const serve::RegistryStats registry_stats = registry.stats();
  const serve::DriftSnapshot drift = server.drift();
  std::cerr << "served " << server_stats.requests_served << " of "
            << server_stats.requests_enqueued << " admitted ("
            << server_stats.requests_shed << " shed, "
            << server_stats.bad_frames << " bad frames, "
            << server_stats.idle_closes << " idle closes, peak queue "
            << server_stats.queue_peak << ") over "
            << server_stats.connections_accepted << " connection(s)\n";
  std::cerr << "registry: version " << registry_stats.active_version << " ("
            << registry_stats.promotions << " promotions, "
            << registry_stats.rejections << " rejections, "
            << registry_stats.rollbacks << " rollbacks); drift "
            << serve::health_state_name(drift.state) << " ("
            << drift.observations << " observations, " << drift.trips
            << " trips)\n";
  if (const auto active = registry.active(); active != nullptr) {
    const svc::ResilienceStats resilience_stats = active->resilient->stats();
    std::cerr << "resilience: " << resilience_stats.served << " served / "
              << resilience_stats.errors << " errors; "
              << resilience_stats.retries << " retries, "
              << resilience_stats.fallbacks << " fallbacks, "
              << resilience_stats.stale_serves << " stale ("
              << resilience_stats.stale_evictions << " evicted), "
              << resilience_stats.deadline_hits << " deadline, "
              << resilience_stats.breaker_opens << " breaker opens\n";
  }
  if (chaos) {
    const net::ChaosStats chaos_stats = chaos->stats();
    std::cerr << "chaos: " << chaos_stats.accept_resets << " accept resets, "
              << chaos_stats.accept_delays << " accept delays, "
              << chaos_stats.write_resets << " write resets, "
              << chaos_stats.write_truncates << " truncated frames, "
              << chaos_stats.dribbled_writes << " dribbled writes\n";
  }
  return 0;
} catch (const std::exception& error) {
  std::cerr << "epp_serve: " << error.what() << "\n\n";
  return usage(std::cerr);
}
