// Capacity planning: "which server architecture should host this SLA?"
//
// Acquires the calibration bundle through the unified calib pipeline —
// calibrated from the simulated testbed on a cold start, or loaded from a
// persisted `.epp` artifact with --bundle (zero simulator work) — then
// batch-evaluates the full (architecture x method x client-load)
// response-time grid concurrently through the svc::BatchPredictor: the
// paper's section 8.2 resource-management question asked the way a
// planner actually asks it, thousands of predictions per decision. SLA
// capacities for each goal are read off the predicted curves, and the
// second goal reuses the same grid, so it is answered entirely from the
// engine's memoization cache (section 8.5's latency point).
//
// Usage: capacity_planning [--bundle FILE] [--save-bundle FILE]
#include <exception>
#include <iostream>
#include <vector>

#include "calib/bundle.hpp"
#include "calib/predictor_set.hpp"
#include "svc/batch_predictor.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

/// Largest client count on the predicted curve whose mean response time
/// stays within the goal, linearly interpolated between grid points.
double capacity_from_curve(const std::vector<double>& clients,
                           const std::vector<double>& rt_s, double goal_s) {
  double capacity = 0.0;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    if (rt_s[i] <= goal_s) {
      capacity = clients[i];
      continue;
    }
    if (i > 0 && rt_s[i] > rt_s[i - 1]) {
      const double t = (goal_s - rt_s[i - 1]) / (rt_s[i] - rt_s[i - 1]);
      if (t > 0.0) capacity = clients[i - 1] + t * (clients[i] - clients[i - 1]);
    }
    break;
  }
  return capacity;
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace epp;
  const calib::ArtifactCli artifact = calib::parse_artifact_flags(argc, argv);
  std::cout << "EPP capacity planner: max clients per architecture under an "
               "SLA goal\n\n";
  util::ThreadPool pool;

  // Calibrate once (or warm-start from a persisted artifact); every fitted
  // parameter the three methods need lives in the bundle.
  calib::CalibrationOptions options;
  options.pool = &pool;
  const util::Timer setup_timer;
  const calib::CalibrationBundle bundle =
      calib::acquire_bundle(artifact, options);
  const calib::PredictorSet set = calib::make_predictors(bundle);
  std::cout << (artifact.load_path.empty() ? "calibrated from the testbed in "
                                           : "loaded bundle in ")
            << util::fmt(setup_timer.elapsed_ms(), 1) << " ms\n\n";

  const double m = bundle.gradient_m;
  const svc::Method methods[] = {svc::Method::kHistorical, svc::Method::kLqn,
                                 svc::Method::kHybrid};

  for (const double goal_ms : {300.0, 600.0}) {
    // The full grid for this goal: per architecture, 48 loads spanning
    // 10%-240% of the max-throughput load, for all three methods.
    std::vector<svc::PredictionRequest> grid;
    std::vector<std::vector<double>> loads;
    for (const calib::ServerRecord& server : bundle.servers) {
      const double knee = server.max_throughput_rps / m;
      std::vector<double> points;
      for (double f = 0.10; f <= 2.40; f += 0.05)
        points.push_back(f * knee);
      for (const svc::Method method : methods)
        for (const double clients : points) {
          core::WorkloadSpec w;
          w.browse_clients = clients;
          grid.push_back({method, server.name, w});
        }
      loads.push_back(std::move(points));
    }
    const util::Timer timer;
    const auto predicted = set.batch->predict_batch(grid, &pool);
    const double wall_ms = timer.elapsed_us() / 1e3;

    std::cout << "-- SLA goal: mean response time <= " << goal_ms
              << " ms  (" << grid.size() << " predictions, "
              << util::fmt(wall_ms, 1) << " ms) --\n";
    util::Table table({"architecture", "historical", "lqn", "hybrid"});
    std::size_t cursor = 0;
    for (std::size_t s = 0; s < bundle.servers.size(); ++s) {
      std::vector<std::string> row{bundle.servers[s].name};
      for (std::size_t mi = 0; mi < std::size(methods); ++mi) {
        std::vector<double> rt;
        for (std::size_t i = 0; i < loads[s].size(); ++i)
          rt.push_back(predicted[cursor + i].mean_rt_s);
        cursor += loads[s].size();
        row.push_back(
            util::fmt(capacity_from_curve(loads[s], rt, goal_ms / 1e3), 0));
      }
      table.add_row(row);
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  const svc::CacheStats stats = set.batch->cache_stats();
  std::cout << "cache: " << stats.hits << " hits / " << stats.misses
            << " misses (" << util::fmt(100.0 * stats.hit_ratio(), 1)
            << "% hit ratio) — the 600 ms sweep reused the 300 ms sweep's "
               "grid, so it cost no model evaluations at all.\n";
  return 0;
} catch (const std::exception& error) {
  std::cerr << "capacity_planning: " << error.what()
            << "\nusage: capacity_planning [--bundle FILE] "
               "[--save-bundle FILE]\n";
  return 1;
}
