// Corpus: EPP-CONC-004 — condition-variable waits with no predicate
// (plus EPP-CONC-008 for the unranked mutex they wait on).
#include <chrono>
#include <condition_variable>
#include <mutex>

namespace lint_corpus {

inline std::mutex wait_mutex;
inline std::condition_variable wait_cv;
inline bool ready();

inline void wait_wrong() {
  std::unique_lock lock(wait_mutex);
  wait_cv.wait(lock);
  wait_cv.wait_for(lock, std::chrono::milliseconds(5));
}

inline void wait_right() {
  std::unique_lock lock(wait_mutex);
  wait_cv.wait(lock, [] { return ready(); });
}

}  // namespace lint_corpus
