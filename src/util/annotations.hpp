// Concurrency and hot-path annotations, consumed by three checkers:
//
//   1. clang's -Wthread-safety analysis — the EPP_CAPABILITY /
//      EPP_GUARDED_BY / EPP_REQUIRES family wraps clang's capability
//      attributes and compiles away to nothing on GCC (the default
//      toolchain), so the annotations are free everywhere and *checked*
//      in the dedicated clang CI job.
//   2. the epp_srclint static analyzer (src/lint/src) — it parses these
//      macros textually to build the per-translation-unit lock model:
//      EPP_LOCK_RANK declares a mutex's position in the global lock
//      order, EPP_GUARDED_BY binds a field to its mutex, and
//      EPP_HOT_BEGIN/EPP_HOT_END bracket regions where allocation,
//      locking, std::function construction and console/file I/O are
//      flagged (EPP-HOT-001..004).
//   3. the debug runtime lock-rank tracker (util/lock_rank.hpp) — the
//      integer EPP_LOCK_RANK evaluates to is fed to util::RankedMutex,
//      so the static rank graph and the dynamic checker read the same
//      declaration and can never silently disagree.
//
// The rank convention: a thread may only acquire a mutex whose rank is
// *strictly greater* than every mutex it already holds. Outermost locks
// get low ranks, leaf locks get high ranks; the assigned ranks live in
// DESIGN.md ("The lock model").
#pragma once

#if defined(__clang__)
#define EPP_TSA_ATTR(x) __attribute__((x))
#else
#define EPP_TSA_ATTR(x)  // thread-safety attributes are clang-only
#endif

/// Type is a lockable capability (mutex wrappers).
#define EPP_CAPABILITY(x) EPP_TSA_ATTR(capability(x))
/// Type is an RAII scope that acquires in its constructor and releases
/// in its destructor.
#define EPP_SCOPED_CAPABILITY EPP_TSA_ATTR(scoped_lockable)
/// Field may only be read or written while holding `x`.
#define EPP_GUARDED_BY(x) EPP_TSA_ATTR(guarded_by(x))
/// Pointer field: the *pointee* is guarded by `x`.
#define EPP_PT_GUARDED_BY(x) EPP_TSA_ATTR(pt_guarded_by(x))
/// Function requires the caller to hold the listed capabilities.
#define EPP_REQUIRES(...) EPP_TSA_ATTR(requires_capability(__VA_ARGS__))
#define EPP_REQUIRES_SHARED(...) \
  EPP_TSA_ATTR(requires_shared_capability(__VA_ARGS__))
/// Function acquires / releases the listed capabilities.
#define EPP_ACQUIRE(...) EPP_TSA_ATTR(acquire_capability(__VA_ARGS__))
#define EPP_ACQUIRE_SHARED(...) \
  EPP_TSA_ATTR(acquire_shared_capability(__VA_ARGS__))
#define EPP_RELEASE(...) EPP_TSA_ATTR(release_capability(__VA_ARGS__))
#define EPP_RELEASE_SHARED(...) \
  EPP_TSA_ATTR(release_shared_capability(__VA_ARGS__))
#define EPP_TRY_ACQUIRE(...) EPP_TSA_ATTR(try_acquire_capability(__VA_ARGS__))
/// Function must be called *without* the listed capabilities held.
#define EPP_EXCLUDES(...) EPP_TSA_ATTR(locks_excluded(__VA_ARGS__))
/// Escape hatch: suppress the analysis for one function. Use only for
/// condition-variable predicates (the cv re-acquires the mutex around
/// the call, which the analysis cannot see) and lock passthroughs.
#define EPP_NO_THREAD_SAFETY_ANALYSIS \
  EPP_TSA_ATTR(no_thread_safety_analysis)

/// Lock-order rank for a util::RankedMutex / RankedSharedMutex
/// declaration. Evaluates to the plain integer at runtime; epp_srclint
/// keys on the macro name to learn the declared rank, so every ranked
/// mutex must be initialized as
///   util::RankedMutex mutex_{EPP_LOCK_RANK(40), "serve.server.queue"};
#define EPP_LOCK_RANK(n) (n)

/// Hot-region markers. Everything between BEGIN and END (same file,
/// matching label) is checked by the EPP-HOT rules: no heap allocation,
/// no std::function construction, no lock acquisition, no console/file
/// I/O. Expands to a statement-compatible no-op; write a trailing
/// semicolon. Regions may not nest and must be balanced per file
/// (EPP-HOT-005).
#define EPP_HOT_BEGIN(label) static_assert(true)
#define EPP_HOT_END(label) static_assert(true)
