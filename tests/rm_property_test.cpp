// Parameterized property sweeps over the resource manager: allocation
// conservation, priority ordering and slack monotonicity across a grid of
// loads and slack levels.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "rm/manager.hpp"
#include "rm/runtime.hpp"

namespace epp::rm {
namespace {

class PhysicsPredictor final : public core::Predictor {
 public:
  explicit PhysicsPredictor(double error_y = 1.0) : y_(error_y) {}
  std::string name() const override { return "physics"; }
  double max_power(const std::string& arch) const {
    static const std::map<std::string, double> kPower{
        {"AppServS", 86.0}, {"AppServF", 186.0}, {"AppServVF", 320.0}};
    return kPower.at(arch);
  }
  double predict_max_throughput_rps(const std::string& arch,
                                    double buy_fraction) const override {
    return max_power(arch) / (1.0 + 0.9 * buy_fraction);
  }
  double predict_mean_rt_s(const std::string& arch,
                           const core::WorkloadSpec& w) const override {
    const double x_max = predict_max_throughput_rps(arch, w.buy_fraction());
    return std::max(0.020, y_ * w.total_clients() / x_max - w.think_time_s);
  }
  double predict_throughput_rps(const std::string& arch,
                                const core::WorkloadSpec& w) const override {
    const double x_max = predict_max_throughput_rps(arch, w.buy_fraction());
    return std::min(y_ * w.total_clients() / (w.think_time_s + 0.020), x_max);
  }

 private:
  double y_;
};

struct Case {
  double load;
  double slack;
};

class AllocationProperties : public ::testing::TestWithParam<Case> {
 protected:
  Allocation allocate() const {
    const Case c = GetParam();
    const PhysicsPredictor predictor;
    const ResourceManager manager(predictor, {c.slack, 7.0, 1.0});
    return manager.allocate(standard_classes(c.load), standard_pool());
  }
};

TEST_P(AllocationProperties, ConservesScaledClients) {
  const Case c = GetParam();
  const Allocation a = allocate();
  double placed = 0.0;
  for (const auto& server : a.per_server)
    for (const auto& [_, clients] : server) placed += clients;
  EXPECT_NEAR(placed + a.unallocated_scaled, c.slack * c.load,
              3.0 + 1e-6 * c.load);
}

TEST_P(AllocationProperties, NoNegativeAllocations) {
  const Allocation a = allocate();
  for (const auto& server : a.per_server)
    for (const auto& [name, clients] : server) {
      EXPECT_GE(clients, 0.0) << name;
    }
  EXPECT_GE(a.unallocated_scaled, 0.0);
}

TEST_P(AllocationProperties, StrictClassesNeverRejectedBeforeLooseOnes) {
  const Allocation a = allocate();
  // If anything is unallocated, the strictest class may only appear there
  // when every looser class is also (fully) affected.
  if (a.unallocated_by_class.count("buy")) {
    EXPECT_TRUE(a.unallocated_by_class.count("browse_low"));
    EXPECT_TRUE(a.unallocated_by_class.count("browse_high"));
  }
  if (a.unallocated_by_class.count("browse_high")) {
    EXPECT_TRUE(a.unallocated_by_class.count("browse_low"));
  }
}

TEST_P(AllocationProperties, RuntimeMetricsWellFormed) {
  const Case c = GetParam();
  const Allocation a = allocate();
  const PhysicsPredictor truth;
  const RuntimeOutcome o =
      evaluate_runtime(a, standard_classes(c.load), standard_pool(), truth, {});
  EXPECT_GE(o.sla_failure_pct, 0.0);
  EXPECT_LE(o.sla_failure_pct, 100.0 + 1e-9);
  EXPECT_GE(o.server_usage_pct, 0.0);
  EXPECT_LE(o.server_usage_pct, 100.0 + 1e-9);
  EXPECT_LE(o.rejected_clients, o.total_clients + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AllocationProperties,
    ::testing::Values(Case{500.0, 1.0}, Case{3000.0, 1.0}, Case{3000.0, 1.2},
                      Case{8000.0, 0.8}, Case{12000.0, 1.1},
                      Case{20000.0, 1.0}, Case{30000.0, 1.0},
                      Case{8000.0, 0.3}));

class SlackMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(SlackMonotonicity, MoreSlackNeverIncreasesFailures) {
  const double load = GetParam();
  const PhysicsPredictor planner(0.9);  // optimistic planner
  const PhysicsPredictor truth;
  RuntimeOptions options;
  options.runtime_optimization = false;
  double prev_failures = 1e9;
  for (double slack : {0.8, 0.9, 1.0, 1.1, 1.2, 1.3}) {
    const ResourceManager manager(planner, {slack, 7.0, 1.0});
    const auto classes = standard_classes(load);
    const Allocation a = manager.allocate(classes, standard_pool());
    const RuntimeOutcome o =
        evaluate_runtime(a, classes, standard_pool(), truth, options);
    EXPECT_LE(o.sla_failure_pct, prev_failures + 0.75)
        << "slack=" << slack << " load=" << load;
    prev_failures = o.sla_failure_pct;
  }
}

INSTANTIATE_TEST_SUITE_P(Loads, SlackMonotonicity,
                         ::testing::Values(2000.0, 6000.0, 10000.0, 14000.0));

}  // namespace
}  // namespace epp::rm
