// The HYDRA historical model: a store of per-server relationship fits plus
// the cross-server (relationship 2) and workload-mix (relationship 3)
// extrapolations. This is the "historical method" predictor's brain; the
// epp::core::HistoricalPredictor feeds it measured (or, for the hybrid
// method, LQN-generated) data points.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "hydra/relationships.hpp"

namespace epp::hydra {

class HistoricalModel {
 public:
  /// gradient_m: the clients->throughput slope shared by all servers (it
  /// depends on the think time but not on server CPU speed; 0.14 in the
  /// paper's setup).
  explicit HistoricalModel(double gradient_m);

  double gradient_m() const noexcept { return gradient_m_; }

  /// Calibrate an established server from historical data points (>= 2 on
  /// each side of max throughput) and its measured max throughput.
  void add_established(const std::string& name,
                       const std::vector<DataPoint>& lower,
                       const std::vector<DataPoint>& upper,
                       double max_throughput_rps);

  /// Register a server with pre-fitted relationship-1 parameters (used by
  /// the advanced hybrid model, which generates per-architecture data).
  void add_calibrated(const std::string& name, const Relationship1& rel);

  /// Restore an *established* server from its persisted relationship-1
  /// parameters (deserialisation): the server keeps its established
  /// provenance and the relationship-2 cross-server fit is recomputed from
  /// the restored parameters, exactly as add_established would have.
  void restore_established(const std::string& name, const Relationship1& rel);

  /// Register a *new* architecture from just its benchmarked max
  /// throughput; relationship 2 (fitted over the established servers)
  /// supplies the response-time parameters. Needs >= 2 established servers.
  void add_new_server(const std::string& name, double max_throughput_rps);

  bool has_server(const std::string& name) const;
  const Relationship1& server(const std::string& name) const;
  std::vector<std::string> servers() const;

  /// Established servers in calibration order (the order relationship 2 is
  /// fitted over — preserved across serialisation round trips).
  const std::vector<std::string>& established_servers() const noexcept {
    return established_;
  }
  bool is_established(const std::string& name) const;

  /// The relationship-2 fit over the established servers. Recomputed
  /// eagerly whenever an established server is added, so concurrent
  /// readers never observe a half-built fit; throws std::invalid_argument
  /// while fewer than two established servers are calibrated.
  const Relationship2& cross_server_fit() const;

  /// Calibrate relationship 3 from (buy %, max throughput) points measured
  /// on an established server.
  void calibrate_mix(const std::vector<double>& buy_pct,
                     const std::vector<double>& max_tput);
  /// Restore a previously fitted mix relationship (deserialisation).
  void set_mix(const Relationship3& mix) { mix_ = mix; }
  bool has_mix_calibration() const noexcept { return mix_.has_value(); }
  /// The fitted relationship 3; throws std::logic_error if absent.
  const Relationship3& mix_relationship() const;

  // --- predictions ---------------------------------------------------------
  double predict_metric(const std::string& name, double clients) const;
  double predict_throughput(const std::string& name, double clients) const;
  /// Max clients that keep the metric at or under `goal` (SLA capacity).
  double max_clients_for_metric(const std::string& name, double goal_s) const;
  /// Relationship 3: max throughput at a buy percentage, scaled to the
  /// named server's typical-workload max throughput.
  double predict_max_throughput(const std::string& name, double buy_pct) const;

 private:
  void refit_cross_server();

  double gradient_m_;
  std::map<std::string, Relationship1> servers_;
  std::vector<std::string> established_;
  std::optional<Relationship2> rel2_;  // eager; see cross_server_fit()
  std::optional<Relationship3> mix_;
};

}  // namespace epp::hydra
