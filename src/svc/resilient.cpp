#include "svc/resilient.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <limits>
#include <optional>
#include <thread>

#include "core/errors.hpp"
#include "svc/fault.hpp"
#include "util/rng.hpp"

namespace epp::svc {
namespace {

using Clock = util::CancellationToken::Clock;

constexpr double kInfinity = std::numeric_limits<double>::infinity();

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

/// Degradation order: the most structured model falls back to the next
/// cheaper one. The requested method starts the chain; methods *after*
/// it in this order complete it.
constexpr std::array<Method, 3> kFallbackOrder = {
    Method::kLqn, Method::kHybrid, Method::kHistorical};

/// Allocation-free fallback chain (the fast path builds one per request).
struct Chain {
  std::array<Method, 3> methods;
  std::size_t count;
};

Chain fallback_chain(Method requested, bool fallback_enabled) {
  Chain chain{{requested, requested, requested}, 1};
  if (!fallback_enabled) return chain;
  const auto it =
      std::find(kFallbackOrder.begin(), kFallbackOrder.end(), requested);
  if (it != kFallbackOrder.end())
    for (auto next = it + 1; next != kFallbackOrder.end(); ++next)
      chain.methods[chain.count++] = *next;
  return chain;
}

/// Map the in-flight exception to the taxonomy. Most-derived first:
/// InvalidWorkloadError is an invalid_argument, NotCalibratedError an
/// out_of_range, SolverDivergedError / InjectedFault / Cancelled are
/// runtime_errors.
PredictionError map_active_exception(Method method, const std::string& server) {
  const auto make = [&](ErrorCode code, const char* what) {
    return PredictionError{code, method, server, what};
  };
  try {
    throw;
  } catch (const InjectedFault& error) {
    return make(ErrorCode::kTransientFailure, error.what());
  } catch (const util::Cancelled& error) {
    return make(ErrorCode::kDeadlineExceeded, error.what());
  } catch (const core::InvalidWorkloadError& error) {
    return make(ErrorCode::kInvalidWorkload, error.what());
  } catch (const core::SolverDivergedError& error) {
    return make(ErrorCode::kSolverDiverged, error.what());
  } catch (const core::NotCalibratedError& error) {
    return make(ErrorCode::kNotCalibrated, error.what());
  } catch (const std::invalid_argument& error) {
    // e.g. BatchPredictor "no such predictor supplied"
    return make(ErrorCode::kNotCalibrated, error.what());
  } catch (const std::out_of_range& error) {
    return make(ErrorCode::kNotCalibrated, error.what());
  } catch (const std::exception& error) {
    return make(ErrorCode::kInternal, error.what());
  }
}

bool is_retryable(ErrorCode code) {
  return code == ErrorCode::kTransientFailure;
}

/// Which failures count toward opening a circuit. Calibration gaps and
/// invalid workloads are caller errors, not server-pair health; deadline
/// hits abort the whole chain and would open breakers spuriously under
/// tight sweep deadlines.
bool trips_breaker(ErrorCode code) {
  return code == ErrorCode::kTransientFailure ||
         code == ErrorCode::kSolverDiverged || code == ErrorCode::kInternal;
}

}  // namespace

std::string_view error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNotCalibrated:
      return "not-calibrated";
    case ErrorCode::kSolverDiverged:
      return "solver-diverged";
    case ErrorCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case ErrorCode::kCircuitOpen:
      return "circuit-open";
    case ErrorCode::kInvalidWorkload:
      return "invalid-workload";
    case ErrorCode::kTransientFailure:
      return "transient-failure";
    case ErrorCode::kInternal:
      return "internal";
    case ErrorCode::kOverloaded:
      return "overloaded";
  }
  return "unknown";
}

std::string PredictionError::to_string() const {
  return std::string(error_code_name(code)) + " [" +
         std::string(method_name(method)) + "/" + server + "]: " + detail;
}

std::string_view breaker_state_name(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

ResilientPredictor::ResilientPredictor(const BatchPredictor& engine,
                                       ResilienceOptions options)
    : engine_(engine), options_(options) {
  if (options_.max_retries < 0)
    throw std::invalid_argument("ResilientPredictor: max_retries < 0");
  if (options_.breaker_failure_threshold < 0)
    throw std::invalid_argument(
        "ResilientPredictor: breaker_failure_threshold < 0");
  if (!(options_.deadline_s >= 0.0) || !(options_.backoff_base_s >= 0.0) ||
      !(options_.backoff_cap_s >= 0.0) || !(options_.breaker_cooldown_s >= 0.0))
    throw std::invalid_argument(
        "ResilientPredictor: durations must be finite and non-negative");
}

ResilientPredictor::Breaker* ResilientPredictor::breaker_lookup(
    Method method, const std::string& server) const {
  if (breakers_created_.load(std::memory_order_acquire) == 0) return nullptr;
  const std::pair<int, std::string> key{static_cast<int>(method), server};
  const std::shared_lock lock(breaker_mutex_);
  const auto it = breakers_.find(key);
  return it != breakers_.end() ? it->second.get() : nullptr;
}

ResilientPredictor::Breaker& ResilientPredictor::breaker_obtain(
    Method method, const std::string& server) const {
  const std::pair<int, std::string> key{static_cast<int>(method), server};
  const std::unique_lock lock(breaker_mutex_);
  auto& slot = breakers_[key];
  if (slot == nullptr) {
    slot = std::make_unique<Breaker>();
    breakers_created_.fetch_add(1, std::memory_order_release);
  }
  return *slot;
}

bool ResilientPredictor::breaker_admit(Breaker& breaker) const {
  if (options_.breaker_failure_threshold == 0) return true;
  const auto state =
      static_cast<BreakerState>(breaker.state.load(std::memory_order_acquire));
  if (state == BreakerState::kClosed) return true;
  if (state == BreakerState::kOpen) {
    const std::int64_t opened = breaker.opened_at_ns.load(std::memory_order_acquire);
    const auto cooldown_ns = static_cast<std::int64_t>(
        options_.breaker_cooldown_s * 1e9);
    if (now_ns() - opened < cooldown_ns) return false;
    int expected = static_cast<int>(BreakerState::kOpen);
    if (breaker.state.compare_exchange_strong(
            expected, static_cast<int>(BreakerState::kHalfOpen),
            std::memory_order_acq_rel)) {
      breaker.probe_in_flight.store(true, std::memory_order_release);
      return true;  // we are the probe
    }
    // Someone else transitioned; fall through to half-open contention.
  }
  return !breaker.probe_in_flight.exchange(true, std::memory_order_acq_rel);
}

void ResilientPredictor::breaker_success(Breaker& breaker) const {
  breaker.consecutive_failures.store(0, std::memory_order_relaxed);
  breaker.state.store(static_cast<int>(BreakerState::kClosed),
                      std::memory_order_release);
  breaker.probe_in_flight.store(false, std::memory_order_release);
}

void ResilientPredictor::breaker_failure(Breaker& breaker) const {
  if (options_.breaker_failure_threshold == 0) return;
  const auto state =
      static_cast<BreakerState>(breaker.state.load(std::memory_order_acquire));
  if (state == BreakerState::kHalfOpen) {
    // The probe failed: straight back to open, fresh cooldown.
    breaker.opened_at_ns.store(now_ns(), std::memory_order_release);
    breaker.state.store(static_cast<int>(BreakerState::kOpen),
                        std::memory_order_release);
    breaker.probe_in_flight.store(false, std::memory_order_release);
    counters_.breaker_opens.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const int failures =
      breaker.consecutive_failures.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (failures >= options_.breaker_failure_threshold &&
      state == BreakerState::kClosed) {
    int expected = static_cast<int>(BreakerState::kClosed);
    if (breaker.state.compare_exchange_strong(
            expected, static_cast<int>(BreakerState::kOpen),
            std::memory_order_acq_rel)) {
      breaker.opened_at_ns.store(now_ns(), std::memory_order_release);
      counters_.breaker_opens.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void ResilientPredictor::breaker_release(Breaker& breaker) {
  breaker.probe_in_flight.store(false, std::memory_order_release);
}

double ResilientPredictor::next_backoff_s(int attempt) const {
  const double uncapped =
      options_.backoff_base_s * std::pow(2.0, static_cast<double>(attempt));
  const double capped = std::min(uncapped, options_.backoff_cap_s);
  // Seeded jitter in [0.5, 1.0] x backoff — deterministic per draw index.
  const std::uint64_t draw =
      jitter_counter_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t state =
      options_.jitter_seed ^ ((draw + 1) * 0x9E3779B97F4A7C15ULL);
  const std::uint64_t bits = util::splitmix64(state);
  const double unit = static_cast<double>(bits >> 11) * 0x1.0p-53;
  return capped * (0.5 + 0.5 * unit);
}

Outcome ResilientPredictor::predict(const PredictionRequest& request) const {
  return serve(request, nullptr);
}

Outcome ResilientPredictor::predict_with_deadline(
    const PredictionRequest& request, double deadline_s) const {
  if (deadline_s <= 0.0) return serve(request, nullptr);
  const auto token = util::CancellationToken::after(deadline_s);
  return serve(request, &token);
}

Outcome ResilientPredictor::serve(const PredictionRequest& request,
                                  const util::CancellationToken* budget) const {
  counters_.requests.fetch_add(1, std::memory_order_relaxed);

  // Reject malformed workloads before they can touch breakers, retries or
  // the fallback chain — they are invalid for every method alike.
  try {
    core::validate_workload(request.workload);
  } catch (const core::InvalidWorkloadError& error) {
    counters_.errors.fetch_add(1, std::memory_order_relaxed);
    return PredictionError{ErrorCode::kInvalidWorkload, request.method,
                           request.server, error.what()};
  }

  const FaultInjector* injector = engine_.options().fault;
  const bool has_deadline = options_.deadline_s > 0.0;
  const bool track_time = has_deadline || budget != nullptr ||
                          (injector != nullptr && injector->config().any());
  const auto start = track_time ? Clock::now() : Clock::time_point{};
  double virtual_s = 0.0;  // injected latency, charged against deadlines

  // Seconds of budget left across the per-request deadline and the batch
  // budget, net of virtual latency already charged. +inf when untimed.
  const auto remaining_s = [&]() -> double {
    double remaining = kInfinity;
    if (has_deadline)
      remaining = options_.deadline_s - seconds_since(start) - virtual_s;
    if (budget != nullptr) {
      if (budget->cancelled()) return std::min(remaining, 0.0);
      if (budget->has_deadline())
        remaining = std::min(
            remaining,
            std::chrono::duration<double>(budget->deadline() - Clock::now())
                    .count() -
                virtual_s);
    }
    return remaining;
  };

  const Chain chain =
      fallback_chain(request.method, options_.fallback_enabled);

  std::optional<PredictionError> primary_error;
  int total_retries = 0;
  bool deadline_hit = false;

  PredictionRequest fallback_request;  // built only when degrading
  for (std::size_t ci = 0; ci < chain.count && !deadline_hit; ++ci) {
    const Method method = chain.methods[ci];
    const PredictionRequest* attempt_request = &request;
    if (method != request.method) {
      fallback_request = request;
      fallback_request.method = method;
      attempt_request = &fallback_request;
    }

    // Healthy pairs have no breaker at all; one materializes on the
    // first breaker-worthy failure.
    Breaker* breaker = breaker_lookup(method, request.server);
    if (breaker != nullptr && !breaker_admit(*breaker)) {
      counters_.breaker_rejections.fetch_add(1, std::memory_order_relaxed);
      if (!primary_error)
        primary_error = PredictionError{
            ErrorCode::kCircuitOpen, method, request.server,
            "circuit open for " + std::string(method_name(method)) + "/" +
                request.server};
      continue;
    }

    for (int attempt = 0;; ++attempt) {
      double remaining = remaining_s();
      if (remaining <= 0.0) {
        deadline_hit = true;
        if (breaker != nullptr) breaker_release(*breaker);
        break;
      }
      if (injector != nullptr &&
          injector->config().for_method(method).latency_s > 0.0) {
        virtual_s += injector->injected_latency_s(method, request.server);
        remaining = remaining_s();
        if (remaining <= 0.0) {
          deadline_hit = true;
          if (breaker != nullptr) breaker_release(*breaker);
          break;
        }
      }

      PredictionError error{};
      try {
        PredictionResult prediction;
        if (std::isinf(remaining)) {
          prediction = engine_.predict(*attempt_request);
        } else {
          const auto token = util::CancellationToken::after(remaining);
          const util::CancellationScope scope(&token);
          prediction = engine_.predict(*attempt_request);
        }
        if (breaker != nullptr) breaker_success(*breaker);

        ResilientResult result;
        result.prediction = prediction;
        result.requested = request.method;
        result.served_by = method;
        result.fallback = ci > 0;
        result.retries = total_retries;
        if (track_time) result.latency_s = seconds_since(start) + virtual_s;

        if (options_.serve_stale && !prediction.cached) {
          // Remember the answer for last-resort stale serving, under the
          // *requested* key: a later identical request finds it even when
          // this one was already a fallback. Cache replays skip the store
          // (their fresh evaluation already made the entry), which keeps
          // the all-hit fast path lock-free.
          stale_store(engine_.cache_key(request), prediction, method);
        }

        counters_.served.fetch_add(1, std::memory_order_relaxed);
        if (result.fallback)
          counters_.fallbacks.fetch_add(1, std::memory_order_relaxed);
        return result;
      } catch (...) {
        error = map_active_exception(method, request.server);
      }

      if (error.code == ErrorCode::kDeadlineExceeded) {
        deadline_hit = true;
        if (breaker != nullptr) breaker_release(*breaker);
        break;
      }
      if (trips_breaker(error.code) &&
          options_.breaker_failure_threshold != 0) {
        if (breaker == nullptr)
          breaker = &breaker_obtain(method, request.server);
        breaker_failure(*breaker);
      } else if (breaker != nullptr) {
        breaker_release(*breaker);
      }
      if (!primary_error) primary_error = error;

      if (is_retryable(error.code) && attempt < options_.max_retries) {
        ++total_retries;
        counters_.retries.fetch_add(1, std::memory_order_relaxed);
        const double backoff = next_backoff_s(attempt);
        if (backoff > 0.0) {
          const double nap =
              std::isinf(remaining) ? backoff : std::min(backoff, remaining);
          if (nap > 0.0)
            std::this_thread::sleep_for(std::chrono::duration<double>(nap));
        }
        continue;
      }
      break;  // exhausted or non-retryable: next method in the chain
    }
  }

  if (deadline_hit) counters_.deadline_hits.fetch_add(1, std::memory_order_relaxed);

  // Last resort: replay the most recent good answer for this exact
  // quantized request, clearly flagged.
  if (options_.serve_stale) {
    const CacheKey key = engine_.cache_key(request);
    std::optional<StaleEntry> entry;
    {
      const std::shared_lock lock(stale_mutex_);
      const auto it = stale_.find(key);
      if (it != stale_.end()) entry = it->second;
    }
    if (entry) {
      ResilientResult result;
      result.prediction = entry->prediction;
      result.requested = request.method;
      result.served_by = entry->served_by;
      result.fallback = entry->served_by != request.method;
      result.stale = true;
      result.retries = total_retries;
      if (track_time) result.latency_s = seconds_since(start) + virtual_s;
      counters_.served.fetch_add(1, std::memory_order_relaxed);
      counters_.stale_serves.fetch_add(1, std::memory_order_relaxed);
      return result;
    }
  }

  counters_.errors.fetch_add(1, std::memory_order_relaxed);
  if (deadline_hit)
    return PredictionError{ErrorCode::kDeadlineExceeded, request.method,
                           request.server,
                           "deadline exceeded serving " +
                               std::string(method_name(request.method)) + "/" +
                               request.server};
  if (primary_error) return *primary_error;
  return PredictionError{ErrorCode::kInternal, request.method, request.server,
                         "no method attempted"};
}

void ResilientPredictor::stale_store(const CacheKey& key,
                                     const PredictionResult& prediction,
                                     Method served_by) const {
  const std::unique_lock lock(stale_mutex_);
  const auto it = stale_.find(key);
  if (it != stale_.end()) {
    // Overwrite refreshes the entry's age: a key that keeps producing
    // fresh results is exactly the one worth keeping under pressure.
    it->second.prediction = prediction;
    it->second.served_by = served_by;
    stale_order_.splice(stale_order_.end(), stale_order_, it->second.order);
    return;
  }
  if (options_.stale_capacity > 0 &&
      stale_.size() >= options_.stale_capacity) {
    const CacheKey& victim = stale_order_.front();
    stale_.erase(victim);
    stale_order_.pop_front();
    counters_.stale_evictions.fetch_add(1, std::memory_order_relaxed);
  }
  const auto order = stale_order_.insert(stale_order_.end(), key);
  stale_.emplace(key, StaleEntry{prediction, served_by, order});
}

std::vector<Outcome> ResilientPredictor::predict_batch(
    const std::vector<PredictionRequest>& requests, util::ThreadPool* pool,
    double batch_budget_s) const {
  std::optional<util::CancellationToken> budget;
  if (batch_budget_s > 0.0)
    budget.emplace(Clock::now() +
                   std::chrono::duration_cast<Clock::duration>(
                       std::chrono::duration<double>(batch_budget_s)));
  const util::CancellationToken* budget_ptr = budget ? &*budget : nullptr;

  std::vector<std::optional<Outcome>> slots(requests.size());
  const auto evaluate = [&](std::size_t i) {
    slots[i] = serve(requests[i], budget_ptr);
  };
  if (pool != nullptr && requests.size() > 1) {
    pool->parallel_for(requests.size(), evaluate, budget_ptr);
  } else {
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (budget_ptr != nullptr && budget_ptr->cancelled()) break;
      evaluate(i);
    }
  }

  std::vector<Outcome> outcomes;
  outcomes.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (slots[i]) {
      outcomes.push_back(std::move(*slots[i]));
      continue;
    }
    // Never started: the batch budget expired first.
    counters_.requests.fetch_add(1, std::memory_order_relaxed);
    counters_.deadline_hits.fetch_add(1, std::memory_order_relaxed);
    counters_.errors.fetch_add(1, std::memory_order_relaxed);
    outcomes.push_back(PredictionError{
        ErrorCode::kDeadlineExceeded, requests[i].method, requests[i].server,
        "batch budget exhausted before the request started"});
  }
  return outcomes;
}

CapacityOutcome ResilientPredictor::max_clients_for_goal(
    Method method, const std::string& server, double goal_s,
    double buy_fraction, double think_time_s) const {
  counters_.requests.fetch_add(1, std::memory_order_relaxed);

  Breaker* breaker = breaker_lookup(method, server);
  if (breaker != nullptr && !breaker_admit(*breaker)) {
    counters_.breaker_rejections.fetch_add(1, std::memory_order_relaxed);
    counters_.errors.fetch_add(1, std::memory_order_relaxed);
    return PredictionError{ErrorCode::kCircuitOpen, method, server,
                           "circuit open for capacity probe"};
  }

  try {
    core::CapacityResult result;
    if (options_.deadline_s > 0.0) {
      const auto token = util::CancellationToken::after(options_.deadline_s);
      const util::CancellationScope scope(&token);
      result = engine_.predictor_for(method).max_clients_for_goal(
          server, goal_s, buy_fraction, think_time_s);
    } else {
      result = engine_.predictor_for(method).max_clients_for_goal(
          server, goal_s, buy_fraction, think_time_s);
    }
    if (breaker != nullptr) breaker_success(*breaker);
    counters_.served.fetch_add(1, std::memory_order_relaxed);
    return result;
  } catch (...) {
    const PredictionError error = map_active_exception(method, server);
    if (error.code == ErrorCode::kDeadlineExceeded) {
      counters_.deadline_hits.fetch_add(1, std::memory_order_relaxed);
      if (breaker != nullptr) breaker_release(*breaker);
    } else if (trips_breaker(error.code) &&
               options_.breaker_failure_threshold != 0) {
      if (breaker == nullptr) breaker = &breaker_obtain(method, server);
      breaker_failure(*breaker);
    } else if (breaker != nullptr) {
      breaker_release(*breaker);
    }
    counters_.errors.fetch_add(1, std::memory_order_relaxed);
    return error;
  }
}

BreakerState ResilientPredictor::breaker_state(
    Method method, const std::string& server) const {
  const std::pair<int, std::string> key{static_cast<int>(method), server};
  const std::shared_lock lock(breaker_mutex_);
  const auto it = breakers_.find(key);
  if (it == breakers_.end()) return BreakerState::kClosed;
  return static_cast<BreakerState>(
      it->second->state.load(std::memory_order_acquire));
}

std::size_t ResilientPredictor::stale_size() const {
  const std::shared_lock lock(stale_mutex_);
  return stale_.size();
}

ResilienceStats ResilientPredictor::stats() const {
  ResilienceStats stats;
  stats.requests = counters_.requests.load(std::memory_order_relaxed);
  stats.served = counters_.served.load(std::memory_order_relaxed);
  stats.errors = counters_.errors.load(std::memory_order_relaxed);
  stats.retries = counters_.retries.load(std::memory_order_relaxed);
  stats.fallbacks = counters_.fallbacks.load(std::memory_order_relaxed);
  stats.stale_serves = counters_.stale_serves.load(std::memory_order_relaxed);
  stats.stale_evictions =
      counters_.stale_evictions.load(std::memory_order_relaxed);
  stats.deadline_hits = counters_.deadline_hits.load(std::memory_order_relaxed);
  stats.breaker_rejections =
      counters_.breaker_rejections.load(std::memory_order_relaxed);
  stats.breaker_opens = counters_.breaker_opens.load(std::memory_order_relaxed);
  return stats;
}

void ResilientPredictor::reset() {
  {
    const std::unique_lock lock(breaker_mutex_);
    breakers_.clear();
    breakers_created_.store(0, std::memory_order_release);
  }
  {
    const std::unique_lock lock(stale_mutex_);
    stale_.clear();
    stale_order_.clear();
  }
  counters_.requests.store(0, std::memory_order_relaxed);
  counters_.served.store(0, std::memory_order_relaxed);
  counters_.errors.store(0, std::memory_order_relaxed);
  counters_.retries.store(0, std::memory_order_relaxed);
  counters_.fallbacks.store(0, std::memory_order_relaxed);
  counters_.stale_serves.store(0, std::memory_order_relaxed);
  counters_.stale_evictions.store(0, std::memory_order_relaxed);
  counters_.deadline_hits.store(0, std::memory_order_relaxed);
  counters_.breaker_rejections.store(0, std::memory_order_relaxed);
  counters_.breaker_opens.store(0, std::memory_order_relaxed);
}

}  // namespace epp::svc
