// Shared types of the prediction-enhanced resource manager (paper §9):
// SLA-constrained service classes, the server pool, and the allocation an
// Algorithm-1 run produces.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace epp::rm {

/// A workload service class with an SLA response-time goal.
struct ServiceClassSpec {
  std::string name;
  double rt_goal_s = 0.0;
  bool is_buy = false;   // buy classes shift the mix (relationship 3)
  double clients = 0.0;  // real (unscaled) clients to be placed
};

/// One application server in the provider's pool.
struct PoolServer {
  std::string arch;        // predictor architecture name, e.g. "AppServS"
  double power_rps = 0.0;  // processing power = max throughput under the
                           // typical workload (the % server usage unit)
};

/// Result of running the allocation algorithm.
struct Allocation {
  /// per_server[i][class name] = clients allocated (slack-scaled units).
  std::vector<std::map<std::string, double>> per_server;
  double slack = 1.0;
  /// Clients (scaled units) that could not be placed anywhere.
  double unallocated_scaled = 0.0;
  std::map<std::string, double> unallocated_by_class;  // scaled units
  /// Cost of the run in performance-model queries (section 8.5).
  int prediction_evaluations = 0;
  /// Resilient runs only: capacity probes that returned a typed error
  /// (circuit open, divergence, deadline) and were scored as capacity 0
  /// instead of aborting the allocation.
  int failed_probes = 0;

  double scaled_on_server(std::size_t i) const;
  double buy_scaled_on_server(std::size_t i,
                              const std::vector<ServiceClassSpec>& classes) const;
  bool server_used(std::size_t i) const { return scaled_on_server(i) > 0.0; }
};

/// The paper's 16-server scenario: 8 new AppServS + 4 AppServF +
/// 4 AppServVF, with powers from the measured max throughputs.
std::vector<PoolServer> standard_pool(double power_s = 86.0,
                                      double power_f = 186.0,
                                      double power_vf = 320.0);

/// The paper's workload: 10% buy clients (150 ms goal), 45% high-priority
/// browse (300 ms), 45% low-priority browse (600 ms).
std::vector<ServiceClassSpec> standard_classes(double total_clients);

}  // namespace epp::rm
