// The HYDRA historical method's trend relationships (paper section 4).
//
// The method reduces a server's performance behaviour to three fitted
// relationships, each calibrated from a small number of historical data
// points (the paper shows 2 lower + 2 upper points of 50 samples each are
// enough):
//
//   Relationship 1 — number of clients -> mean response time, as a "lower"
//     exponential equation before max throughput, an "upper" linear
//     equation after it, and an exponential "transition" phasing between
//     66% and 110% of the max-throughput load. A companion linear
//     clients -> throughput relationship (gradient m, 0.14 in the paper)
//     locates the max-throughput load.
//
//   Relationship 2 — the effect of a server's max throughput on the
//     relationship-1 parameters: cL is linear in max throughput, lambdaL a
//     power law, lambdaU scales as 1/max-throughput and cU is constant.
//     This is what lets the model predict *new* server architectures from
//     a single benchmarked max throughput.
//
//   Relationship 3 — buy-request percentage -> max throughput: linear on
//     an established server, ratio-scaled to a new one.
#pragma once

#include <cstddef>
#include <vector>

#include "util/regression.hpp"

namespace epp::hydra {

/// Floor applied to fitted lower-equation rates: a flat or (noisy)
/// slightly decreasing lower trend is clamped here so the prediction
/// curve stays monotone. Cross-server fitting (relationship 2) treats
/// rates at the floor as degenerate — see fit_relationship2.
inline constexpr double kMinLambdaLower = 1e-12;

/// One historical observation: the chosen metric (mean response time by
/// default) at a number of clients, averaged over `samples` samples.
struct DataPoint {
  double clients = 0.0;
  double metric_s = 0.0;  // e.g. mean response time in seconds
  std::size_t samples = 0;
};

/// Calibrated relationship-1 parameters for one server.
struct Relationship1 {
  // Lower (pre-max-throughput) equation: mrt = c_lower * exp(lambda_lower*N).
  double c_lower = 0.0;
  double lambda_lower = 0.0;
  // Upper (post-max-throughput) equation: mrt = lambda_upper * N + c_upper.
  double lambda_upper = 0.0;
  double c_upper = 0.0;
  // Companion throughput relationship: X(N) = min(gradient_m * N, max).
  double max_throughput_rps = 0.0;
  double gradient_m = 0.0;
  // Transition band, as fractions of the max-throughput load.
  double transition_lo = 0.66;
  double transition_hi = 1.10;

  /// Clients at which the server reaches max throughput.
  double clients_at_max_throughput() const;

  /// Mean-metric prediction with lower/transition/upper selection.
  double predict_metric(double clients) const;
  /// Throughput prediction: linear up to max throughput, flat after.
  double predict_throughput(double clients) const;
  /// Inverse of predict_metric (bisection; the curve is monotone). Used for
  /// "the maximum number of clients an SLA-constrained server can support".
  double clients_for_metric(double metric_s) const;
};

/// Fit relationship 1 from lower/upper data points plus the server's max
/// throughput and throughput gradient. Requires >= 2 points on each side.
Relationship1 fit_relationship1(const std::vector<DataPoint>& lower,
                                const std::vector<DataPoint>& upper,
                                double max_throughput_rps, double gradient_m);

/// Fit the clients->throughput gradient m by least squares through the
/// origin on pre-saturation (clients, throughput) observations.
double fit_gradient(const std::vector<double>& clients,
                    const std::vector<double>& throughput);

/// Calibrated relationship-2 parameters across established servers.
struct Relationship2 {
  util::LinearFit c_lower_vs_max_tput;   // cL = Delta(cL)*mx + C(cL)
  util::PowerFit lambda_lower_vs_max_tput;  // lL = C(lL)*mx^Delta(lL)
  double lambda_upper_times_max_tput = 0.0;  // lU ~ k / mx
  double c_upper_mean = 0.0;                 // cU roughly constant

  /// Derive relationship-1 parameters for a (new) server from its
  /// benchmarked max throughput.
  Relationship1 predict_for(double max_throughput_rps, double gradient_m) const;
};

/// Fit relationship 2 from >= 2 established servers' relationship-1 fits.
Relationship2 fit_relationship2(const std::vector<Relationship1>& servers);

/// Calibrated relationship-3 parameters.
struct Relationship3 {
  util::LinearFit max_tput_vs_buy_pct;  // on the established server

  /// Max throughput of the established server at buy percentage b.
  double established(double buy_pct) const;
  /// Max throughput of a new server at buy percentage b, given its typical
  /// (0% buy) max throughput: mxN(b) = mxE(b) * mxN(0) / mxE(0).
  double predict(double buy_pct, double new_server_max_at_typical) const;
};

/// Fit relationship 3 from (buy %, max throughput) observations on an
/// established server. Requires >= 2 points including b = 0.
Relationship3 fit_relationship3(const std::vector<double>& buy_pct,
                                const std::vector<double>& max_tput);

}  // namespace epp::hydra
