#include "sim/resources.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace epp::sim {
namespace {

TEST(PsResource, SingleJobTakesDemandOverSpeed) {
  Engine engine;
  PsResource cpu(engine, 2.0);
  double done_at = -1.0;
  cpu.add_job(3.0, [&] { done_at = engine.now(); });
  engine.run_all();
  EXPECT_NEAR(done_at, 1.5, 1e-12);
}

TEST(PsResource, SimultaneousJobsShareEqually) {
  Engine engine;
  PsResource cpu(engine, 1.0);
  std::vector<double> done;
  cpu.add_job(1.0, [&] { done.push_back(engine.now()); });
  cpu.add_job(1.0, [&] { done.push_back(engine.now()); });
  engine.run_all();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 2.0, 1e-12);
  EXPECT_NEAR(done[1], 2.0, 1e-12);
}

TEST(PsResource, StaggeredArrivalExactCompletion) {
  // A (demand 2) starts at t=0 alone; B (demand 1) arrives at t=1.
  // At t=1 A has 1 unit left; both then progress at rate 1/2, so both
  // complete at t=3. This is the classic egalitarian-PS check.
  Engine engine;
  PsResource cpu(engine, 1.0);
  double a_done = -1.0, b_done = -1.0;
  cpu.add_job(2.0, [&] { a_done = engine.now(); });
  engine.schedule_at(1.0, [&] {
    cpu.add_job(1.0, [&] { b_done = engine.now(); });
  });
  engine.run_all();
  EXPECT_NEAR(a_done, 3.0, 1e-12);
  EXPECT_NEAR(b_done, 3.0, 1e-12);
}

TEST(PsResource, ShorterJobFinishesFirst) {
  Engine engine;
  PsResource cpu(engine, 1.0);
  double short_done = -1.0, long_done = -1.0;
  cpu.add_job(4.0, [&] { long_done = engine.now(); });
  cpu.add_job(1.0, [&] { short_done = engine.now(); });
  engine.run_all();
  // Shared until short job attains 1 unit at t=2; long job then has 3
  // units left alone, completing at t=5.
  EXPECT_NEAR(short_done, 2.0, 1e-12);
  EXPECT_NEAR(long_done, 5.0, 1e-12);
}

TEST(PsResource, UtilizationIntegratesBusyTime) {
  Engine engine;
  PsResource cpu(engine, 1.0);
  engine.schedule_at(2.0, [&] { cpu.add_job(1.0, [] {}); });
  engine.run_until(4.0);
  // Busy from t=2 to t=3 out of 4 seconds.
  EXPECT_NEAR(cpu.utilization(4.0), 0.25, 1e-12);
}

TEST(PsResource, ZeroDemandCompletesImmediately) {
  Engine engine;
  PsResource cpu(engine, 1.0);
  double done_at = -1.0;
  cpu.add_job(0.0, [&] { done_at = engine.now(); });
  engine.run_all();
  EXPECT_DOUBLE_EQ(done_at, 0.0);
}

TEST(PsResource, RejectsInvalidArguments) {
  Engine engine;
  EXPECT_THROW(PsResource(engine, 0.0), std::invalid_argument);
  PsResource cpu(engine, 1.0);
  EXPECT_THROW(cpu.add_job(-1.0, [] {}), std::invalid_argument);
}

TEST(FifoResource, ServesOneAtATime) {
  Engine engine;
  FifoResource disk(engine, 1.0);
  std::vector<double> done;
  disk.add_job(1.0, [&] { done.push_back(engine.now()); });
  disk.add_job(2.0, [&] { done.push_back(engine.now()); });
  disk.add_job(0.5, [&] { done.push_back(engine.now()); });
  engine.run_all();
  EXPECT_EQ(done, (std::vector<double>{1.0, 3.0, 3.5}));
}

TEST(FifoResource, SpeedScalesServiceTime) {
  Engine engine;
  FifoResource disk(engine, 4.0);
  double done_at = -1.0;
  disk.add_job(2.0, [&] { done_at = engine.now(); });
  engine.run_all();
  EXPECT_NEAR(done_at, 0.5, 1e-12);
}

TEST(FifoResource, UtilizationTracksBusyFraction) {
  Engine engine;
  FifoResource disk(engine, 1.0);
  disk.add_job(1.0, [] {});
  engine.run_until(2.0);
  EXPECT_NEAR(disk.utilization(2.0), 0.5, 1e-12);
}

TEST(SlotPool, GrantsUpToCapacityImmediately) {
  SlotPool pool(2, 1);
  int granted = 0;
  pool.acquire(0, [&] { ++granted; });
  pool.acquire(0, [&] { ++granted; });
  pool.acquire(0, [&] { ++granted; });
  EXPECT_EQ(granted, 2);
  EXPECT_EQ(pool.in_use(), 2u);
  EXPECT_EQ(pool.waiting(), 1u);
  pool.release();
  EXPECT_EQ(granted, 3);
  EXPECT_EQ(pool.in_use(), 2u);  // slot transferred to the waiter
  EXPECT_EQ(pool.waiting(), 0u);
}

TEST(SlotPool, ReleaseWithoutWaitersFreesSlot) {
  SlotPool pool(1, 1);
  pool.acquire(0, [] {});
  pool.release();
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(SlotPool, RoundRobinAcrossSourceQueues) {
  // Two app servers feeding the DB tier: admission must alternate between
  // their queues rather than draining one first.
  SlotPool pool(1, 2);
  std::vector<int> admitted;
  pool.acquire(0, [] {});  // occupy the only slot
  pool.acquire(0, [&] { admitted.push_back(0); });
  pool.acquire(0, [&] { admitted.push_back(0); });
  pool.acquire(1, [&] { admitted.push_back(1); });
  pool.acquire(1, [&] { admitted.push_back(1); });
  for (int i = 0; i < 4; ++i) pool.release();
  EXPECT_EQ(admitted, (std::vector<int>{0, 1, 0, 1}));
}

TEST(SlotPool, InvalidUseThrows) {
  EXPECT_THROW(SlotPool(0, 1), std::invalid_argument);
  EXPECT_THROW(SlotPool(1, 0), std::invalid_argument);
  SlotPool pool(1, 1);
  EXPECT_THROW(pool.acquire(5, [] {}), std::out_of_range);
  EXPECT_THROW(pool.release(), std::logic_error);
}

}  // namespace
}  // namespace epp::sim
