#include "sim/trade/operations.hpp"

#include <cmath>

namespace epp::sim::trade {
namespace {

// Per-operation demands (seconds at speed 1.0 == AppServF).
//
// The browse mix below weights these to an aggregate browse request of
// 5.376 ms app CPU (=> 186 req/s saturation on AppServF) with 1.14 DB calls
// of 0.8294 ms DB CPU each; buy requests cost 10.455 ms app CPU with 2 DB
// calls of 1.613 ms each, preserving the paper's browse:buy demand ratio.
constexpr std::array<OperationProfile, kNumOperations> kProfiles{{
    {"quote", 0.004210, 0.0008294, 0.00040, 1.00},
    {"home", 0.004800, 0.0008294, 0.00040, 1.00},
    {"browse_market", 0.007500, 0.0008294, 0.00040, 1.00},
    {"portfolio", 0.006800, 0.0008294, 0.00040, 2.00},
    {"account", 0.005200, 0.0008294, 0.00040, 1.25},
    {"register_login", 0.009000, 0.0012000, 0.00045, 3.00},
    {"buy", 0.010455, 0.0016130, 0.00050, 2.00},
    {"logoff", 0.003000, 0.0008000, 0.00030, 1.00},
}};

// Browse mix: representative of the Trade "browse" scenario (quote-heavy).
constexpr std::array<double, kNumOperations> kBrowseMix{
    0.40,  // quote
    0.20,  // home
    0.20,  // browse_market
    0.12,  // portfolio
    0.08,  // account
    0.0, 0.0, 0.0,
};

}  // namespace

const OperationProfile& profile(Operation op) noexcept {
  return kProfiles[static_cast<std::size_t>(op)];
}

std::size_t sample_db_calls(const OperationProfile& op,
                            util::Rng& rng) noexcept {
  const double whole = std::floor(op.mean_db_calls);
  const double frac = op.mean_db_calls - whole;
  auto calls = static_cast<std::size_t>(whole);
  if (frac > 0.0 && rng.bernoulli(frac)) ++calls;
  return calls;
}

double browse_mix_probability(Operation op) noexcept {
  return kBrowseMix[static_cast<std::size_t>(op)];
}

Operation sample_browse_operation(util::Rng& rng) noexcept {
  double u = rng.uniform();
  for (std::size_t i = 0; i < kNumOperations; ++i) {
    u -= kBrowseMix[i];
    if (u < 0.0) return static_cast<Operation>(i);
  }
  return Operation::kQuote;
}

namespace {

AggregateDemand weighted_aggregate(const std::array<double, kNumOperations>& w) {
  AggregateDemand agg{0.0, 0.0, 0.0, 0.0};
  double total_calls = 0.0;
  for (std::size_t i = 0; i < kNumOperations; ++i) {
    if (w[i] == 0.0) continue;
    const OperationProfile& p = kProfiles[i];
    agg.app_cpu_s += w[i] * p.app_cpu_s;
    agg.mean_db_calls += w[i] * p.mean_db_calls;
    agg.db_cpu_per_call += w[i] * p.mean_db_calls * p.db_cpu_per_call;
    agg.disk_per_call += w[i] * p.mean_db_calls * p.disk_per_call;
    total_calls += w[i] * p.mean_db_calls;
  }
  if (total_calls > 0.0) {
    agg.db_cpu_per_call /= total_calls;  // call-weighted per-call demand
    agg.disk_per_call /= total_calls;
  }
  return agg;
}

}  // namespace

AggregateDemand browse_aggregate() noexcept {
  return weighted_aggregate(kBrowseMix);
}

AggregateDemand buy_aggregate() noexcept {
  std::array<double, kNumOperations> w{};
  w[static_cast<std::size_t>(Operation::kBuy)] = 1.0;
  return weighted_aggregate(w);
}

}  // namespace epp::sim::trade
