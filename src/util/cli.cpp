#include "util/cli.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <limits>
#include <system_error>

namespace epp::util::cli {
namespace {

[[noreturn]] void fail(std::string_view flag, const std::string& message,
                       std::string_view text) {
  throw UsageError(std::string(flag) + ": " + message + ", got '" +
                   std::string(text) + "'");
}

std::vector<std::string_view> split_fields(std::string_view spec, char sep) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = spec.find(sep, start);
    if (pos == std::string_view::npos) {
      fields.push_back(spec.substr(start));
      return fields;
    }
    fields.push_back(spec.substr(start, pos - start));
    start = pos + 1;
  }
}

}  // namespace

double parse_double(std::string_view flag, std::string_view text) {
  double value = 0.0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last || text.empty())
    fail(flag, "expected a number", text);
  if (!std::isfinite(value)) fail(flag, "expected a finite number", text);
  return value;
}

double parse_double_at_least(std::string_view flag, std::string_view text,
                             double min) {
  const double value = parse_double(flag, text);
  if (value < min)
    fail(flag, "expected a number >= " + std::to_string(min), text);
  return value;
}

double parse_positive_double(std::string_view flag, std::string_view text) {
  const double value = parse_double(flag, text);
  if (!(value > 0.0)) fail(flag, "expected a positive number", text);
  return value;
}

long long parse_int(std::string_view flag, std::string_view text,
                    long long min, long long max) {
  long long value = 0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec == std::errc::result_out_of_range)
    fail(flag, "integer out of range", text);
  if (ec != std::errc{} || ptr != last || text.empty())
    fail(flag, "expected an integer", text);
  if (value < min || value > max)
    fail(flag,
         "expected an integer in [" + std::to_string(min) + ", " +
             std::to_string(max) + "]",
         text);
  return value;
}

std::size_t parse_size(std::string_view flag, std::string_view text,
                       std::size_t min) {
  const long long value =
      parse_int(flag, text, 0, std::numeric_limits<long long>::max());
  if (static_cast<std::size_t>(value) < min)
    fail(flag, "expected an integer >= " + std::to_string(min), text);
  return static_cast<std::size_t>(value);
}

std::vector<double> parse_range(std::string_view flag, std::string_view spec) {
  const auto fields = split_fields(spec, ':');
  if (fields.size() != 3) fail(flag, "expected lo:hi:step", spec);
  const double lo = parse_double(flag, fields[0]);
  const double hi = parse_double(flag, fields[1]);
  const double step = parse_double(flag, fields[2]);
  if (!(step > 0.0))
    throw UsageError(std::string(flag) + ": step must be > 0 in '" +
                     std::string(spec) + "'");
  if (hi < lo)
    throw UsageError(std::string(flag) + ": hi < lo in '" + std::string(spec) +
                     "' (wants lo:hi:step with lo <= hi)");
  const double span = (hi - lo) / step;
  if (span > static_cast<double>(kMaxRangePoints))
    throw UsageError(std::string(flag) + ": '" + std::string(spec) +
                     "' expands to more than " +
                     std::to_string(kMaxRangePoints) + " points");
  std::vector<double> values;
  values.reserve(static_cast<std::size_t>(span) + 1);
  for (double v = lo; v <= hi + 1e-9 * std::max(1.0, step); v += step)
    values.push_back(v);
  return values;
}

std::vector<double> parse_double_list(std::string_view flag,
                                      std::string_view spec) {
  std::vector<double> values;
  for (const std::string_view field : split_fields(spec, ',')) {
    if (field.empty()) continue;  // tolerate "1,,2" and trailing commas
    values.push_back(parse_double(flag, field));
  }
  if (values.empty()) fail(flag, "expected a non-empty number list", spec);
  return values;
}

}  // namespace epp::util::cli
