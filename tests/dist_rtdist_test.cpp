#include "dist/rtdist.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace epp::dist {
namespace {

TEST(RtDist, ExponentialCdfAndQuantileInvert) {
  const auto d = ResponseTimeDistribution::exponential(0.2);
  EXPECT_DOUBLE_EQ(d.mean(), 0.2);
  EXPECT_NEAR(d.cdf(0.2), 1.0 - std::exp(-1.0), 1e-12);
  for (double p : {0.1, 0.5, 0.9, 0.99})
    EXPECT_NEAR(d.cdf(d.quantile(p)), p, 1e-12) << p;
  EXPECT_DOUBLE_EQ(d.cdf(-1.0), 0.0);
}

TEST(RtDist, ExponentialP90ClosedForm) {
  const auto d = ResponseTimeDistribution::exponential(1.0);
  EXPECT_NEAR(d.quantile(0.9), -std::log(0.1), 1e-12);
}

TEST(RtDist, DoubleExponentialSymmetricAroundLocation) {
  const auto d = ResponseTimeDistribution::double_exponential(2.0, 0.2041);
  EXPECT_DOUBLE_EQ(d.cdf(2.0), 0.5);
  EXPECT_NEAR(d.cdf(2.0 - 0.1) + d.cdf(2.0 + 0.1), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(d.mean(), 2.0);
}

TEST(RtDist, DoubleExponentialQuantileInverts) {
  const auto d = ResponseTimeDistribution::double_exponential(1.5, 0.3);
  for (double p : {0.05, 0.4, 0.5, 0.9, 0.999})
    EXPECT_NEAR(d.cdf(d.quantile(p)), p, 1e-12) << p;
}

TEST(RtDist, QuantileRejectsDegenerateP) {
  const auto d = ResponseTimeDistribution::exponential(1.0);
  EXPECT_THROW(d.quantile(0.0), std::invalid_argument);
  EXPECT_THROW(d.quantile(1.0), std::invalid_argument);
}

TEST(RtDist, FactoriesValidateParameters) {
  EXPECT_THROW(ResponseTimeDistribution::exponential(0.0),
               std::invalid_argument);
  EXPECT_THROW(ResponseTimeDistribution::double_exponential(1.0, 0.0),
               std::invalid_argument);
}

TEST(RtDist, ForMeanPredictionSelectsRegime) {
  const auto pre = for_mean_prediction(0.1, false, 0.2041);
  EXPECT_EQ(pre.regime(), Regime::kPreSaturation);
  const auto post = for_mean_prediction(2.0, true, 0.2041);
  EXPECT_EQ(post.regime(), Regime::kPostSaturation);
  EXPECT_DOUBLE_EQ(post.location(), 2.0);
  EXPECT_DOUBLE_EQ(post.scale(), 0.2041);
}

TEST(RtDist, PredictPercentileMatchesDistribution) {
  EXPECT_NEAR(predict_percentile(0.1, 0.9, false, 0.2),
              -0.1 * std::log(0.1), 1e-12);
  EXPECT_NEAR(predict_percentile(2.0, 0.9, true, 0.2041),
              2.0 - 0.2041 * std::log(0.2), 1e-12);
}

TEST(RtDist, CalibrateScaleRecoversLaplaceB) {
  // Sample a Laplace(loc=1, b=0.25) and recover b by MLE.
  util::Rng rng(5);
  std::vector<double> samples;
  for (int i = 0; i < 200000; ++i) {
    const double u = rng.uniform() - 0.5;
    samples.push_back(1.0 - 0.25 * std::copysign(std::log1p(-2.0 * std::abs(u)), u));
  }
  EXPECT_NEAR(calibrate_scale_b(samples, 1.0), 0.25, 0.005);
}

TEST(RtDist, CalibrateScaleRejectsEmptyOrDegenerate) {
  EXPECT_THROW(calibrate_scale_b({}, 1.0), std::invalid_argument);
  const std::vector<double> constant{1.0, 1.0};
  EXPECT_THROW(calibrate_scale_b(constant, 1.0), std::invalid_argument);
}

TEST(RtDist, ExtrapolatorCalibratesRatioAndOffset) {
  // Pre-saturation samples around mean 0.01 with p90 = 0.018; post around
  // mean 2.0 with p90 = 2.5.
  std::vector<double> pre, post;
  for (int i = 0; i < 1000; ++i) {
    pre.push_back(0.002 + 0.016 * i / 999.0);   // uniform: mean .01, p90 .0164
    post.push_back(1.5 + 1.0 * i / 999.0);      // uniform: mean 2.0, p90 2.4
  }
  const auto ex = dist::PercentileExtrapolator::calibrate(0.9, pre, post);
  EXPECT_NEAR(ex.pre_ratio(), 0.0164 / 0.01, 0.01);
  EXPECT_NEAR(ex.post_offset_s(), 0.4, 0.005);
  EXPECT_NEAR(ex.predict(0.02, false), 0.02 * ex.pre_ratio(), 1e-12);
  EXPECT_NEAR(ex.predict(3.0, true), 3.0 + ex.post_offset_s(), 1e-12);
}

TEST(RtDist, ExtrapolatorRejectsBadInput) {
  const std::vector<double> ok{1.0, 2.0};
  EXPECT_THROW(dist::PercentileExtrapolator::calibrate(0.9, {}, ok),
               std::invalid_argument);
  EXPECT_THROW(dist::PercentileExtrapolator::calibrate(1.5, ok, ok),
               std::invalid_argument);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_THROW(dist::PercentileExtrapolator::calibrate(0.9, zeros, ok),
               std::invalid_argument);
}

TEST(RtDist, PercentileMonotoneInP) {
  for (const bool post : {false, true}) {
    double prev = -1e9;
    for (double p = 0.05; p < 1.0; p += 0.05) {
      const double q = predict_percentile(1.0, p, post, 0.2);
      EXPECT_GT(q, prev);
      prev = q;
    }
  }
}

}  // namespace
}  // namespace epp::dist
