#include "lqn/parser.hpp"

#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace epp::lqn {
namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  throw std::invalid_argument("lqn parse error, line " + std::to_string(line) +
                              ": " + message);
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string token;
  while (is >> token) {
    if (token[0] == '#') break;
    tokens.push_back(token);
  }
  return tokens;
}

/// Split "key=value" tokens into a map; bare tokens become flags ("" value).
std::map<std::string, std::string> keyvals(
    const std::vector<std::string>& tokens, std::size_t from, int line) {
  std::map<std::string, std::string> out;
  for (std::size_t i = from; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    const auto eq = token.find('=');
    if (eq == std::string::npos) {
      out[token] = "";
    } else {
      if (eq == 0) fail(line, "empty key in '" + token + "'");
      out[token.substr(0, eq)] = token.substr(eq + 1);
    }
  }
  return out;
}

double to_double(const std::string& value, int line) {
  try {
    std::size_t used = 0;
    const double d = std::stod(value, &used);
    if (used != value.size()) fail(line, "bad number '" + value + "'");
    return d;
  } catch (const std::invalid_argument&) {
    fail(line, "bad number '" + value + "'");
  } catch (const std::out_of_range&) {
    fail(line, "number out of range '" + value + "'");
  }
}

std::size_t to_size(const std::string& value, int line) {
  const double d = to_double(value, line);
  if (d < 0.0 || d != static_cast<double>(static_cast<std::size_t>(d)))
    fail(line, "expected a non-negative integer, got '" + value + "'");
  return static_cast<std::size_t>(d);
}

}  // namespace

Model parse_model(std::istream& input) {
  Model model;
  struct PendingCall {
    std::string from, to;
    double mean;
    int line;
  };
  std::vector<PendingCall> pending_calls;

  std::string line;
  int line_no = 0;
  while (std::getline(input, line)) {
    ++line_no;
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& kind = tokens[0];

    if (kind == "processor") {
      if (tokens.size() < 2) fail(line_no, "processor needs a name");
      Processor processor;
      processor.name = tokens[1];
      std::size_t opts_from = 2;
      if (tokens.size() > 2 && tokens[2].find('=') == std::string::npos) {
        const std::string& sched = tokens[2];
        if (sched == "ps") processor.scheduling = Scheduling::kProcessorSharing;
        else if (sched == "fifo") processor.scheduling = Scheduling::kFifo;
        else if (sched == "delay") processor.scheduling = Scheduling::kDelay;
        else fail(line_no, "unknown scheduling '" + sched + "'");
        opts_from = 3;
      }
      for (const auto& [key, value] : keyvals(tokens, opts_from, line_no)) {
        if (key == "speed") processor.speed = to_double(value, line_no);
        else if (key == "multiplicity") processor.multiplicity = to_size(value, line_no);
        else fail(line_no, "unknown processor option '" + key + "'");
      }
      if (model.find_processor(processor.name))
        fail(line_no, "duplicate processor '" + processor.name + "'");
      model.add_processor(processor);
    } else if (kind == "task") {
      if (tokens.size() < 2) fail(line_no, "task needs a name");
      Task task;
      task.name = tokens[1];
      bool have_processor = false;
      for (const auto& [key, value] : keyvals(tokens, 2, line_no)) {
        if (key == "ref") task.is_reference = true;
        else if (key == "open") task.open_arrivals = true;
        else if (key == "processor") {
          const auto pid = model.find_processor(value);
          if (!pid) fail(line_no, "unknown processor '" + value + "'");
          task.processor = *pid;
          have_processor = true;
        } else if (key == "multiplicity") task.multiplicity = to_size(value, line_no);
        else if (key == "population") task.population = to_double(value, line_no);
        else if (key == "think") task.think_time_s = to_double(value, line_no);
        else if (key == "rate") task.arrival_rate_rps = to_double(value, line_no);
        else if (key == "priority") task.priority = static_cast<int>(to_size(value, line_no));
        else fail(line_no, "unknown task option '" + key + "'");
      }
      if (!have_processor) fail(line_no, "task needs processor=<name>");
      if (model.find_task(task.name))
        fail(line_no, "duplicate task '" + task.name + "'");
      model.add_task(task);
    } else if (kind == "entry") {
      if (tokens.size() < 2) fail(line_no, "entry needs a name");
      Entry entry;
      entry.name = tokens[1];
      bool have_task = false;
      for (const auto& [key, value] : keyvals(tokens, 2, line_no)) {
        if (key == "task") {
          const auto tid = model.find_task(value);
          if (!tid) fail(line_no, "unknown task '" + value + "'");
          entry.task = *tid;
          have_task = true;
        } else if (key == "demand") entry.service_demand_s = to_double(value, line_no);
        else fail(line_no, "unknown entry option '" + key + "'");
      }
      if (!have_task) fail(line_no, "entry needs task=<name>");
      if (model.find_entry(entry.name))
        fail(line_no, "duplicate entry '" + entry.name + "'");
      model.add_entry(entry);
    } else if (kind == "call") {
      if (tokens.size() != 4) fail(line_no, "call needs: call <from> <to> <mean>");
      pending_calls.push_back(
          {tokens[1], tokens[2], to_double(tokens[3], line_no), line_no});
    } else {
      fail(line_no, "unknown declaration '" + kind + "'");
    }
  }

  for (const PendingCall& call : pending_calls) {
    const auto from = model.find_entry(call.from);
    if (!from) fail(call.line, "unknown entry '" + call.from + "'");
    const auto to = model.find_entry(call.to);
    if (!to) fail(call.line, "unknown entry '" + call.to + "'");
    // Checked here rather than left to Model::add_call so the error
    // carries the declaring line.
    if (call.mean < 0.0)
      fail(call.line, "call mean must be non-negative, got " +
                          std::to_string(call.mean));
    model.add_call(*from, *to, call.mean);
  }
  return model;
}

Model parse_model(const std::string& text) {
  std::istringstream is(text);
  return parse_model(is);
}

std::string to_text(const Model& model) {
  std::ostringstream os;
  os.precision(12);
  for (const Processor& p : model.processors()) {
    os << "processor " << p.name << ' ';
    switch (p.scheduling) {
      case Scheduling::kProcessorSharing: os << "ps"; break;
      case Scheduling::kFifo: os << "fifo"; break;
      case Scheduling::kDelay: os << "delay"; break;
    }
    os << " speed=" << p.speed;
    if (p.multiplicity != 1) os << " multiplicity=" << p.multiplicity;
    os << '\n';
  }
  for (const Task& t : model.tasks()) {
    os << "task " << t.name << " processor=" << model.processor(t.processor).name;
    if (t.multiplicity != 1) os << " multiplicity=" << t.multiplicity;
    if (t.is_reference) {
      os << " ref";
      if (t.open_arrivals) {
        os << " open rate=" << t.arrival_rate_rps;
      } else {
        os << " population=" << t.population;
      }
      os << " think=" << t.think_time_s;
    }
    if (t.priority != 0) os << " priority=" << t.priority;
    os << '\n';
  }
  for (const Entry& e : model.entries()) {
    os << "entry " << e.name << " task=" << model.task(e.task).name;
    if (e.service_demand_s != 0.0) os << " demand=" << e.service_demand_s;
    os << '\n';
  }
  for (const Entry& e : model.entries())
    for (const Call& c : e.calls)
      os << "call " << e.name << ' ' << model.entry(c.target).name << ' '
         << c.mean_calls << '\n';
  return os.str();
}

}  // namespace epp::lqn
