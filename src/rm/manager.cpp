#include "rm/manager.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace epp::rm {

ResourceManager::ResourceManager(const core::Predictor& predictor,
                                 ManagerOptions options)
    : predictor_(predictor), options_(options) {
  if (options_.slack < 0.0)
    throw std::invalid_argument("ResourceManager: negative slack");
  if (options_.capacity_resolution <= 0.0)
    throw std::invalid_argument("ResourceManager: bad capacity resolution");
}

double ResourceManager::additional_capacity(
    const PoolServer& server, const std::map<std::string, double>& existing,
    const std::vector<ServiceClassSpec>& all_classes,
    const ServiceClassSpec& cls, int& prediction_evaluations) const {
  double existing_total = 0.0, existing_buy = 0.0;
  double goal = cls.rt_goal_s;
  for (const ServiceClassSpec& c : all_classes) {
    const auto it = existing.find(c.name);
    if (it == existing.end() || it->second <= 0.0) continue;
    existing_total += it->second;
    if (c.is_buy) existing_buy += it->second;
    goal = std::min(goal, c.rt_goal_s);
  }

  // The workload mix depends on how many clients end up added, so refine
  // the capacity with a couple of fixed-point passes over the mix.
  double extra = 0.0;
  for (int pass = 0; pass < 2; ++pass) {
    const double total_guess = existing_total + extra;
    const double buy_guess = existing_buy + (cls.is_buy ? extra : 0.0);
    const double mix = total_guess > 0.0 ? buy_guess / total_guess
                                         : (cls.is_buy ? 1.0 : 0.0);
    const core::CapacityResult cap = predictor_.max_clients_for_goal(
        server.arch, goal, mix, options_.think_time_s);
    prediction_evaluations += cap.prediction_evaluations;
    extra = std::max(0.0, cap.max_clients - existing_total);
  }
  return extra;
}

Allocation ResourceManager::allocate(
    std::vector<ServiceClassSpec> classes,
    const std::vector<PoolServer>& servers) const {
  return run_allocation(
      std::move(classes), servers,
      [this](const PoolServer& server,
             const std::map<std::string, double>& existing,
             const std::vector<ServiceClassSpec>& all_classes,
             const ServiceClassSpec& cls, Allocation& allocation) {
        return additional_capacity(server, existing, all_classes, cls,
                                   allocation.prediction_evaluations);
      });
}

Allocation ResourceManager::allocate(std::vector<ServiceClassSpec> classes,
                                     const std::vector<PoolServer>& servers,
                                     const svc::ResilientPredictor& resilient,
                                     svc::Method method) const {
  return run_allocation(
      std::move(classes), servers,
      [&, method](const PoolServer& server,
                  const std::map<std::string, double>& existing,
                  const std::vector<ServiceClassSpec>& all_classes,
                  const ServiceClassSpec& cls, Allocation& allocation) {
        double existing_total = 0.0, existing_buy = 0.0;
        double goal = cls.rt_goal_s;
        for (const ServiceClassSpec& c : all_classes) {
          const auto it = existing.find(c.name);
          if (it == existing.end() || it->second <= 0.0) continue;
          existing_total += it->second;
          if (c.is_buy) existing_buy += it->second;
          goal = std::min(goal, c.rt_goal_s);
        }
        double extra = 0.0;
        for (int pass = 0; pass < 2; ++pass) {
          const double total_guess = existing_total + extra;
          const double buy_guess = existing_buy + (cls.is_buy ? extra : 0.0);
          const double mix = total_guess > 0.0
                                 ? buy_guess / total_guess
                                 : (cls.is_buy ? 1.0 : 0.0);
          const svc::CapacityOutcome outcome = resilient.max_clients_for_goal(
              method, server.arch, goal, mix, options_.think_time_s);
          if (!outcome.ok()) {
            // Planned around, not fatal: the server just offers nothing
            // this round (breaker-open servers are skipped entirely).
            ++allocation.failed_probes;
            return 0.0;
          }
          allocation.prediction_evaluations +=
              outcome.value().prediction_evaluations;
          extra = std::max(0.0, outcome.value().max_clients - existing_total);
        }
        return extra;
      });
}

Allocation ResourceManager::run_allocation(
    std::vector<ServiceClassSpec> classes,
    const std::vector<PoolServer>& servers, const CapacityProbe& probe) const {
  // Line 1: strictest response-time goal first; with insufficient servers
  // the lower-priority (looser-goal) classes are rejected first.
  std::sort(classes.begin(), classes.end(),
            [](const ServiceClassSpec& a, const ServiceClassSpec& b) {
              return a.rt_goal_s < b.rt_goal_s;
            });

  Allocation allocation;
  allocation.slack = options_.slack;
  allocation.per_server.resize(servers.size());

  for (const ServiceClassSpec& cls : classes) {
    double remaining = options_.slack * cls.clients;
    while (remaining > 0.5 * options_.capacity_resolution) {
      // Probe every server's predicted additional capacity for this class.
      std::vector<double> capacity(servers.size());
      for (std::size_t i = 0; i < servers.size(); ++i)
        capacity[i] = probe(servers[i], allocation.per_server[i], classes, cls,
                            allocation);

      // Greedy selection: most capacity wins... unless one server can
      // finish the class, in which case take the *smallest* sufficient one
      // (the paper's last-server exception).
      std::size_t chosen = servers.size();
      double chosen_cap = 0.0;
      for (std::size_t i = 0; i < servers.size(); ++i) {
        if (capacity[i] < remaining) continue;
        if (chosen == servers.size() || capacity[i] < chosen_cap) {
          chosen = i;
          chosen_cap = capacity[i];
        }
      }
      if (chosen == servers.size()) {
        for (std::size_t i = 0; i < servers.size(); ++i) {
          if (capacity[i] > chosen_cap) {
            chosen = i;
            chosen_cap = capacity[i];
          }
        }
      }
      if (chosen == servers.size() ||
          chosen_cap < options_.capacity_resolution) {
        allocation.unallocated_scaled += remaining;
        allocation.unallocated_by_class[cls.name] += remaining;
        break;  // line 8: no server has available capacity for this class
      }
      const double take = std::min(chosen_cap, remaining);
      allocation.per_server[chosen][cls.name] += take;
      remaining -= take;
    }
  }
  return allocation;
}

}  // namespace epp::rm
