// Micro-benchmark: what the fault-tolerant serving layer costs on the
// path that matters — healthy requests with no deadline, no batch budget
// and no fault injection. The ResilientPredictor's contract is that this
// fast path performs no clock reads and no allocation beyond the wrapped
// engine, keeping the overhead under 5% even on the cheapest possible
// request (an all-cache-hit historical lookup, the adversarial case; on
// a real LQN solve the wrapper cost vanishes into the solver time).
//
// Pairs to compare:
//   BM_HotHit_Plain        vs BM_HotHit_Resilient        (headline, <5%)
//   BM_ColdGrid_Plain      vs BM_ColdGrid_Resilient      (fresh caches)
//   BM_HotHit_Resilient    vs BM_HotHit_ResilientDeadline (cost of arming
//                                                          a deadline)
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/historical_predictor.hpp"
#include "core/hybrid_predictor.hpp"
#include "core/lqn_predictor.hpp"
#include "svc/batch_predictor.hpp"
#include "svc/resilient.hpp"

namespace {

using namespace epp;

core::TradeCalibration calibration() {
  core::TradeCalibration cal;
  cal.browse = {0.005376, 0.00083, 0.00040, 1.14};
  cal.buy = {0.010455, 0.00161, 0.00050, 2.0};
  return cal;
}

/// Simulator-free predictor fixture (same construction as the svc test
/// suites): LQN from the paper's table-2 constants, historical fitted
/// from LQN pseudo data.
struct Predictors {
  static constexpr double kGradient = 0.14;
  core::LqnPredictor lqn{calibration()};
  core::HybridPredictor hybrid{calibration()};
  core::HistoricalPredictor historical{kGradient};

  Predictors() {
    for (const auto& arch :
         {core::arch_s(), core::arch_f(), core::arch_vf()}) {
      lqn.register_server(arch);
      hybrid.register_server(arch);
    }
    for (const char* name : {"AppServF", "AppServVF"}) {
      const double max_tput = lqn.predict_max_throughput_rps(name, 0.0);
      const double n_star = max_tput / kGradient;
      const std::vector<hydra::DataPoint> lower{
          lqn.pseudo_point(name, 0.25 * n_star),
          lqn.pseudo_point(name, 0.60 * n_star)};
      const std::vector<hydra::DataPoint> upper{
          lqn.pseudo_point(name, 1.25 * n_star),
          lqn.pseudo_point(name, 1.70 * n_star)};
      historical.calibrate_established(name, lower, upper, max_tput);
    }
    historical.register_new_server(
        "AppServS", lqn.predict_max_throughput_rps("AppServS", 0.0));
  }
};

Predictors& predictors() {
  static Predictors p;
  return p;
}

std::unique_ptr<svc::BatchPredictor> make_engine() {
  Predictors& p = predictors();
  return std::make_unique<svc::BatchPredictor>(&p.historical, &p.lqn,
                                               &p.hybrid);
}

svc::PredictionRequest hot_request() {
  core::WorkloadSpec workload;
  workload.browse_clients = 900.0;
  return {svc::Method::kHistorical, "AppServF", workload};
}

/// Historical-only grid of distinct workloads: cold evaluations are
/// cheap, so the per-request serving overhead is visible, not drowned.
std::vector<svc::PredictionRequest> cold_grid() {
  std::vector<svc::PredictionRequest> grid;
  for (const char* server : {"AppServF", "AppServVF", "AppServS"})
    for (double clients = 50.0; clients <= 2450.0; clients += 25.0) {
      core::WorkloadSpec workload;
      workload.browse_clients = clients;
      grid.push_back({svc::Method::kHistorical, server, workload});
    }
  return grid;
}

// --- hot path: one all-cache-hit request per iteration ---------------------

void BM_HotHit_Plain(benchmark::State& state) {
  const auto engine = make_engine();
  const svc::PredictionRequest request = hot_request();
  benchmark::DoNotOptimize(engine->predict(request));  // warm the entry
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->predict(request));
  }
}
BENCHMARK(BM_HotHit_Plain);

void BM_HotHit_Resilient(benchmark::State& state) {
  const auto engine = make_engine();
  const svc::ResilientPredictor resilient(*engine);
  const svc::PredictionRequest request = hot_request();
  benchmark::DoNotOptimize(resilient.predict(request));
  for (auto _ : state) {
    benchmark::DoNotOptimize(resilient.predict(request));
  }
}
BENCHMARK(BM_HotHit_Resilient);

void BM_HotHit_ResilientDeadline(benchmark::State& state) {
  // Arming a deadline buys clock reads and a cancellation-token install;
  // measured separately so the fast path stays honest.
  const auto engine = make_engine();
  svc::ResilienceOptions options;
  options.deadline_s = 1.0;
  const svc::ResilientPredictor resilient(*engine, options);
  const svc::PredictionRequest request = hot_request();
  benchmark::DoNotOptimize(resilient.predict(request));
  for (auto _ : state) {
    benchmark::DoNotOptimize(resilient.predict(request));
  }
}
BENCHMARK(BM_HotHit_ResilientDeadline);

/// LQN requests do real solver work per evaluation — the representative
/// serving workload, where the wrapper's fixed cost should disappear.
std::vector<svc::PredictionRequest> lqn_grid() {
  std::vector<svc::PredictionRequest> grid;
  for (double clients = 100.0; clients <= 1100.0; clients += 40.0) {
    core::WorkloadSpec workload;
    workload.browse_clients = clients;
    grid.push_back({svc::Method::kLqn, "AppServF", workload});
  }
  return grid;
}

// --- cold path: a fresh engine evaluating the whole grid -------------------

void BM_ColdGrid_Plain(benchmark::State& state) {
  const std::vector<svc::PredictionRequest> grid = cold_grid();
  for (auto _ : state) {
    const auto engine = make_engine();
    benchmark::DoNotOptimize(engine->predict_batch(grid, nullptr));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(grid.size()));
}
BENCHMARK(BM_ColdGrid_Plain);

void BM_ColdGrid_Resilient(benchmark::State& state) {
  const std::vector<svc::PredictionRequest> grid = cold_grid();
  for (auto _ : state) {
    const auto engine = make_engine();
    const svc::ResilientPredictor resilient(*engine);
    benchmark::DoNotOptimize(resilient.predict_batch(grid, nullptr));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(grid.size()));
}
BENCHMARK(BM_ColdGrid_Resilient);

void BM_ColdGrid_ResilientNoStale(benchmark::State& state) {
  // Stale-store insurance disabled: isolates what the last-resort replay
  // buffer costs per fresh evaluation (one locked hash-map insert).
  const std::vector<svc::PredictionRequest> grid = cold_grid();
  svc::ResilienceOptions options;
  options.serve_stale = false;
  for (auto _ : state) {
    const auto engine = make_engine();
    const svc::ResilientPredictor resilient(*engine, options);
    benchmark::DoNotOptimize(resilient.predict_batch(grid, nullptr));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(grid.size()));
}
BENCHMARK(BM_ColdGrid_ResilientNoStale);

void BM_ColdLqn_Plain(benchmark::State& state) {
  const std::vector<svc::PredictionRequest> grid = lqn_grid();
  for (auto _ : state) {
    const auto engine = make_engine();
    benchmark::DoNotOptimize(engine->predict_batch(grid, nullptr));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(grid.size()));
}
BENCHMARK(BM_ColdLqn_Plain);

void BM_ColdLqn_Resilient(benchmark::State& state) {
  const std::vector<svc::PredictionRequest> grid = lqn_grid();
  for (auto _ : state) {
    const auto engine = make_engine();
    const svc::ResilientPredictor resilient(*engine);
    benchmark::DoNotOptimize(resilient.predict_batch(grid, nullptr));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(grid.size()));
}
BENCHMARK(BM_ColdLqn_Resilient);

}  // namespace

BENCHMARK_MAIN();
