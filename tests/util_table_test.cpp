#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace epp::util {
namespace {

TEST(Table, AsciiContainsHeadersAndCells) {
  Table t({"server", "max_tput"});
  t.add_row({"AppServF", "186"});
  const std::string out = t.to_ascii();
  EXPECT_NE(out.find("server"), std::string::npos);
  EXPECT_NE(out.find("AppServF"), std::string::npos);
  EXPECT_NE(out.find("186"), std::string::npos);
}

TEST(Table, CsvRoundTrip) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n3,4\n");
}

TEST(Table, NumericRowFormatting) {
  Table t({"x", "y"});
  t.add_numeric_row({1.23456, 2.0}, 2);
  EXPECT_EQ(t.to_csv(), "x,y\n1.23,2.00\n");
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, EmptyHeadersThrow) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, PrintWritesToStream) {
  Table t({"h"});
  t.add_row({"v"});
  std::ostringstream os;
  t.print(os);
  EXPECT_FALSE(os.str().empty());
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

}  // namespace
}  // namespace epp::util
