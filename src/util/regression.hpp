// Least-squares trend fitting.
//
// The HYDRA historical method (src/hydra) reduces performance modelling to
// fitting a small number of trend lines to historical data points; these
// are the fitting primitives it uses: straight lines, exponentials
// (y = c * exp(l*x), fitted log-linearly) and power laws
// (y = c * x^l, fitted log-log).
#pragma once

#include <span>
#include <vector>

namespace epp::util {

/// y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;

  double operator()(double x) const noexcept { return slope * x + intercept; }
  /// Inverse: the x that yields y. Requires a non-zero slope.
  double solve_for_x(double y) const;
};

/// y = coeff * exp(rate * x).
struct ExponentialFit {
  double coeff = 0.0;
  double rate = 0.0;
  double r_squared = 0.0;

  double operator()(double x) const noexcept;
  /// Inverse: the x that yields y (> 0). Requires non-zero rate and coeff.
  double solve_for_x(double y) const;
};

/// y = coeff * x^exponent (x > 0).
struct PowerFit {
  double coeff = 0.0;
  double exponent = 0.0;
  double r_squared = 0.0;

  double operator()(double x) const noexcept;
};

/// Ordinary least squares on (x, y) pairs. Throws std::invalid_argument on
/// fewer than two points or zero x-variance.
LinearFit fit_linear(std::span<const double> x, std::span<const double> y);

/// Log-linear least squares; every y must be > 0.
ExponentialFit fit_exponential(std::span<const double> x,
                               std::span<const double> y);

/// Log-log least squares; every x and y must be > 0.
PowerFit fit_power(std::span<const double> x, std::span<const double> y);

}  // namespace epp::util
