#include <algorithm>
#include <cstddef>
#include <deque>
#include <map>
#include <regex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint/src/rules.hpp"

namespace epp::lint::srcrules {
namespace {

using srcmodel::FileModel;
using srcmodel::MutexDecl;

std::string stem_of(const std::string& path) {
  const std::size_t dot = path.rfind('.');
  const std::size_t slash = path.rfind('/');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash))
    return path;
  return path.substr(0, dot);
}

/// Cross-file mutex-name resolution: guard expressions are bare member
/// names after normalization, so a name is resolved same-file first,
/// then to the file's header/source twin (same path stem), then
/// globally when the name is unique across the whole model. Anything
/// else stays unresolved and is skipped — EPP-CONC-008 on declarations
/// keeps coverage honest regardless.
class Resolver {
 public:
  explicit Resolver(const std::vector<FileModel>& files) {
    for (const FileModel& file : files) {
      for (const MutexDecl& decl : file.decls) {
        const int id = static_cast<int>(decls_.size());
        decls_.push_back(&decl);
        by_name_[decl.name].push_back(id);
      }
    }
  }

  int resolve(const std::string& file, const std::string& name) const {
    const auto it = by_name_.find(name);
    if (it == by_name_.end()) return -1;
    const std::vector<int>& candidates = it->second;
    for (const int id : candidates)
      if (decls_[static_cast<std::size_t>(id)]->file == file) return id;
    const std::string stem = stem_of(file);
    for (const int id : candidates)
      if (stem_of(decls_[static_cast<std::size_t>(id)]->file) == stem)
        return id;
    if (candidates.size() == 1) return candidates.front();
    return -1;
  }

  const MutexDecl& decl(int id) const {
    return *decls_[static_cast<std::size_t>(id)];
  }
  std::size_t size() const { return decls_.size(); }

 private:
  std::vector<const MutexDecl*> decls_;
  std::map<std::string, std::vector<int>> by_name_;
};

std::string display_name(const MutexDecl& decl) {
  if (!decl.label.empty()) return decl.label;
  return decl.name;
}

struct Edge {
  std::string file;
  int line = 0;
  bool reported = false;
};

void check_lock_order(const std::vector<FileModel>& files,
                      const Resolver& resolver, Diagnostics& out) {
  // held-decl -> acquired-decl, first occurrence wins for reporting.
  std::map<std::pair<int, int>, Edge> edges;

  for (const FileModel& file : files) {
    for (const srcmodel::Acquisition& acquisition : file.acquisitions) {
      const int acquired = resolver.resolve(file.path, acquisition.mutex_name);
      if (acquired < 0) continue;
      const MutexDecl& acquired_decl = resolver.decl(acquired);
      for (const std::string& held_name : acquisition.held) {
        const int held = resolver.resolve(file.path, held_name);
        if (held < 0) continue;
        const MutexDecl& held_decl = resolver.decl(held);
        if (held == acquired) {
          out.error("EPP-CONC-002",
                    {file.path, acquisition.line},
                    "mutex '" + display_name(acquired_decl) +
                        "' is locked again in a scope that already holds "
                        "it — non-recursive mutexes self-deadlock here",
                    "drop the inner acquisition, or split the outer scope");
          continue;
        }
        auto [it, inserted] = edges.try_emplace(
            std::make_pair(held, acquired),
            Edge{file.path, acquisition.line, false});
        Edge& edge = it->second;
        if (held_decl.rank >= 0 && acquired_decl.rank >= 0 &&
            held_decl.rank >= acquired_decl.rank) {
          if (!edge.reported) {
            edge.reported = true;
            out.error(
                "EPP-CONC-001",
                {file.path, acquisition.line},
                "acquiring '" + display_name(acquired_decl) + "' (rank " +
                    std::to_string(acquired_decl.rank) +
                    ") while holding '" + display_name(held_decl) +
                    "' (rank " + std::to_string(held_decl.rank) +
                    "); lock ranks must strictly increase along every "
                    "acquisition chain",
                "acquire in ascending rank order, or re-rank the mutexes "
                "in the lock table");
          }
        }
        (void)inserted;
      }
    }
  }

  // Cycle pass: rank checking is complete when every mutex is ranked;
  // cycles among unranked mutexes still deadlock, so hunt them in the
  // acquired-while-holding graph. A cycle is reported once, at its
  // first edge, unless a rank violation already flagged part of it.
  std::map<int, std::vector<int>> adjacency;
  for (const auto& [key, edge] : edges) adjacency[key.first].push_back(key.second);
  std::set<std::vector<int>> reported_cycles;
  for (const auto& [key, edge] : edges) {
    const auto [from, to] = key;
    // Find a path to -> ... -> from; together with (from, to) it closes
    // a cycle through this edge.
    std::map<int, int> parent;
    std::deque<int> queue{to};
    parent[to] = to;
    while (!queue.empty()) {
      const int node = queue.front();
      queue.pop_front();
      if (node == from) break;
      const auto next = adjacency.find(node);
      if (next == adjacency.end()) continue;
      for (const int successor : next->second) {
        if (parent.count(successor) > 0) continue;
        parent[successor] = node;
        queue.push_back(successor);
      }
    }
    if (parent.count(from) == 0) continue;  // edge closes no cycle
    std::vector<int> cycle{from};
    for (int node = from; node != to; node = parent[node])
      cycle.push_back(parent[node]);
    std::reverse(cycle.begin() + 1, cycle.end());
    // Canonical form for dedup: the same cycle discovered from any of
    // its edges has the same node set.
    std::vector<int> canonical = cycle;
    std::sort(canonical.begin(), canonical.end());
    if (!reported_cycles.insert(canonical).second) continue;
    bool already_flagged = false;
    std::string chain;
    for (std::size_t i = 0; i <= cycle.size(); ++i) {
      const int node = cycle[i % cycle.size()];
      if (!chain.empty()) chain += " -> ";
      chain += display_name(resolver.decl(node));
      if (i < cycle.size()) {
        const auto cycle_edge =
            edges.find({node, cycle[(i + 1) % cycle.size()]});
        if (cycle_edge != edges.end() && cycle_edge->second.reported)
          already_flagged = true;
      }
    }
    if (already_flagged) continue;  // the rank rule said it better
    out.error("EPP-CONC-001",
              {edge.file, edge.line},
              "lock-order cycle: " + chain +
                  " (each acquired while holding the previous) — two "
                  "threads taking opposite ends deadlock",
              "pick one global order for these mutexes and declare it "
              "with EPP_LOCK_RANK");
  }
}

void check_guarded_fields(const std::vector<FileModel>& files,
                          const Resolver& resolver, Diagnostics& out) {
  for (const FileModel& file : files) {
    for (const srcmodel::GuardedField& field : file.guarded) {
      const int mutex = resolver.resolve(field.file, field.mutex_name);
      if (mutex < 0) continue;
      const std::regex use(R"(\b)" + field.name + R"(\b)");
      const std::string stem = stem_of(field.file);
      for (const FileModel& candidate : files) {
        if (stem_of(candidate.path) != stem) continue;
        for (int line = 1; line <= candidate.line_count; ++line) {
          if (candidate.path == field.file && line == field.line) continue;
          const std::string& tokens =
              candidate.tokens[static_cast<std::size_t>(line - 1)];
          if (!std::regex_search(tokens, use)) continue;
          bool held = false;
          for (const std::string& held_name :
               candidate.held_by_line[static_cast<std::size_t>(line - 1)]) {
            if (resolver.resolve(candidate.path, held_name) == mutex) {
              held = true;
              break;
            }
          }
          if (held) continue;
          out.warning(
              "EPP-CONC-005",
              {candidate.path, line},
              "field '" + field.name + "' is declared EPP_GUARDED_BY(" +
                  field.mutex_name + ") but accessed here without the lock",
              "take the lock around this access, or suppress with the "
              "reason the access is safe");
        }
      }
    }
  }
}

}  // namespace

void check_concurrency(const std::vector<FileModel>& files,
                       Diagnostics& out) {
  const Resolver resolver(files);

  for (const FileModel& file : files) {
    for (const MutexDecl& decl : file.decls) {
      if (decl.std_type) {
        out.warning(
            "EPP-CONC-008",
            {file.path, decl.line},
            "mutex '" + decl.name +
                "' is outside the lock-rank order (plain std type)",
            "declare it as a util::RankedMutex with EPP_LOCK_RANK(n) and a "
            "\"component.name\" label so both checkers see its order");
      } else if (decl.ranked_type && decl.rank < 0) {
        out.warning(
            "EPP-CONC-008",
            {file.path, decl.line},
            "RankedMutex '" + decl.name +
                "' has no EPP_LOCK_RANK in its initializer",
            "spell the rank with the macro — the static analyzer reads "
            "the macro, not the integer");
      }
    }

    for (const srcmodel::BlockingCall& call : file.blocking) {
      out.warning("EPP-CONC-003",
                  {file.path, call.line},
                  "blocking call '" + call.token +
                      "' while holding a lock — every waiter on that "
                      "lock stalls for the full blocking duration",
                  "move the call outside the critical section, or "
                  "suppress with the reason the block is intended");
    }

    for (const srcmodel::WaitCall& wait : file.waits) {
      const int required = wait.token == "wait" ? 2 : 3;
      if (wait.args < 0 || wait.args >= required) continue;
      out.warning("EPP-CONC-004",
                  {file.path, wait.line},
                  "condition-variable " + wait.token +
                      " without a predicate — spurious wakeups and lost "
                      "notifications silently corrupt the protocol",
                  "pass the condition as the final argument so the wait "
                  "rechecks it");
    }

    for (const srcmodel::DetachCall& detach : file.detaches) {
      out.warning("EPP-CONC-006",
                  {file.path, detach.line},
                  "detached thread: it cannot be joined, so it races "
                  "with static destruction at shutdown",
                  "keep the std::thread owned and join it on the "
                  "shutdown path");
    }

    for (const srcmodel::CasCall& cas : file.cas) {
      if (cas.in_loop) continue;
      out.warning("EPP-CONC-007",
                  {file.path, cas.line},
                  "compare_exchange_weak outside a retry loop — weak CAS "
                  "may fail spuriously even when the comparison holds",
                  "retry in a loop, or use compare_exchange_strong for "
                  "one-shot updates");
    }
  }

  check_lock_order(files, resolver, out);
  check_guarded_fields(files, resolver, out);
}

}  // namespace epp::lint::srcrules
