// Streaming and batch statistics used by the simulator's metric collectors
// and by the accuracy computations in epp::core.
#pragma once

#include <cstddef>
#include <vector>

namespace epp::util {

/// Numerically stable streaming mean/variance (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x) noexcept;
  void merge(const OnlineStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  /// Half-width of the (approximately) 95% confidence interval on the mean.
  double ci95_halfwidth() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Sample collector retaining every observation; supports exact quantiles.
/// The simulator records one entry per completed request, so memory use is
/// bounded by the number of simulated completions. Not thread-safe (the
/// quantile/cdf accessors maintain a sort cache): each simulation owns its
/// collectors, and parallel experiments replicate whole simulations.
class SampleSet {
 public:
  void add(double x);
  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const noexcept { return samples_.size(); }
  double mean() const noexcept;
  double variance() const noexcept;
  /// Exact sample quantile, q in [0, 1], linear interpolation between order
  /// statistics. Returns 0 on an empty set.
  double quantile(double q) const;
  /// Empirical P(X <= x).
  double cdf(double x) const;
  const std::vector<double>& samples() const noexcept { return samples_; }

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// The paper's accuracy measure: 100% minus mean absolute relative error,
/// clamped at 0. `predicted` and `actual` must be the same length.
double prediction_accuracy_percent(const std::vector<double>& predicted,
                                   const std::vector<double>& actual);

/// Accuracy of a single prediction against a single observation.
double prediction_accuracy_percent(double predicted, double actual);

}  // namespace epp::util
