// epp_calibrate — produce and inspect persisted calibration artifacts.
//
// The cold half of the paper's cost asymmetry (sections 8.4/8.5) runs
// here, once: the full support-service pipeline against the simulated
// testbed, persisted as a line-oriented `.epp` bundle. Every other binary
// (epp_sweep, the examples) then warm-starts from the artifact in
// milliseconds with --bundle, running zero simulator work.
//
// Usage:
//   epp_calibrate [--out FILE] [--no-mix] [--threads N]   produce an artifact
//   epp_calibrate --inspect FILE                          summarise one
#include <cstddef>
#include <exception>
#include <iostream>
#include <string>
#include <string_view>
#include <thread>

#include "calib/bundle.hpp"
#include "lint/lint.hpp"
#include "lint/verify.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace epp;
namespace cli = util::cli;

struct Config {
  std::string out_path = "trade.epp";
  std::string inspect_path;
  bool measure_mix = true;
  std::size_t threads = std::max(1u, std::thread::hardware_concurrency());
};

int usage(std::ostream& out) {
  out << "usage: epp_calibrate [--out FILE] [--no-mix] [--threads N]\n"
         "       epp_calibrate --inspect FILE\n\n"
         "Runs the unified calibration pipeline against the simulated\n"
         "testbed and persists the resulting bundle (default trade.epp),\n"
         "or inspects an existing artifact without simulating anything.\n"
         "Warm-start consumers with: epp_sweep --bundle FILE\n";
  return 1;
}

Config parse_args(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc)
        throw std::invalid_argument(std::string(arg) + " wants a value");
      return argv[++i];
    };
    if (arg == "--out") {
      config.out_path = value();
    } else if (arg == "--inspect") {
      config.inspect_path = value();
    } else if (arg == "--no-mix") {
      config.measure_mix = false;
    } else if (arg == "--threads") {
      config.threads = cli::parse_size(arg, value(), 1);
    } else {
      throw std::invalid_argument("unknown argument: " + std::string(arg));
    }
  }
  return config;
}

void print_summary(const calib::CalibrationBundle& bundle) {
  util::Table servers({"server", "provenance", "speed", "max_tput_rps"});
  for (const calib::ServerRecord& record : bundle.servers)
    servers.add_row({record.name,
                     record.established ? "established" : "new",
                     util::fmt(record.arch.speed, 3),
                     util::fmt(record.max_throughput_rps, 1)});
  servers.print(std::cout);

  std::cout << "\ngradient m: " << util::fmt(bundle.gradient_m, 4)
            << "  (paper: 0.14)\n";
  util::Table lqn({"request_type", "app_demand_ms", "db_cpu_per_call_ms",
                   "disk_per_call_ms", "mean_db_calls"});
  auto lqn_row = [&](const char* type, const core::RequestTypeParams& p) {
    lqn.add_row({type, util::fmt(p.app_demand_s * 1e3, 3),
                 util::fmt(p.db_cpu_per_call_s * 1e3, 3),
                 util::fmt(p.disk_per_call_s * 1e3, 3),
                 util::fmt(p.mean_db_calls, 2)});
  };
  lqn_row("browse", bundle.lqn.browse);
  lqn_row("buy", bundle.lqn.buy);
  lqn.print(std::cout);

  if (bundle.has_mix()) {
    std::cout << "relationship 3 (mix):";
    for (const calib::MixPoint& point : bundle.mix_points)
      std::cout << "  " << util::fmt(point.max_throughput_rps, 1)
                << " req/s at " << util::fmt(point.buy_pct, 0) << "% buy";
    std::cout << '\n';
  } else {
    std::cout << "relationship 3 (mix): not calibrated\n";
  }
  std::cout << "seeds: lqn " << bundle.lqn_seed << ", mix " << bundle.mix_seed
            << ", sweeps " << bundle.sweep_seed << '\n';
}

}  // namespace

int main(int argc, char** argv) try {
  const Config config = parse_args(argc, argv);

  if (!config.inspect_path.empty()) {
    // Verify before loading: structural lint plus the EPP-SEM semantic
    // pass, so a defective artifact gets its full findings list (with
    // counterexample witnesses), not just the first parse exception.
    lint::Diagnostics findings;
    lint::verify_artifact_file(config.inspect_path, lint::VerifyOptions{},
                               findings);
    findings.sort_by_location();
    if (!findings.empty()) std::cerr << lint::render_text(findings);
    if (findings.has_errors()) {
      std::cerr << "epp_calibrate: artifact fails verification with "
                << findings.count(lint::Severity::kError) << " error(s)\n";
      return 2;
    }
    const util::Timer timer;
    const calib::CalibrationBundle bundle =
        calib::load_bundle(config.inspect_path);
    std::cout << "bundle " << config.inspect_path << " (loaded in "
              << util::fmt(timer.elapsed_ms(), 2) << " ms)\n\n";
    print_summary(bundle);
    return 0;
  }

  util::ThreadPool pool(config.threads);
  calib::CalibrationOptions options;
  options.measure_mix = config.measure_mix;
  options.pool = &pool;
  std::cerr << "calibrating from the simulated testbed on " << config.threads
            << " thread(s)...\n";
  const util::Timer timer;
  const calib::CalibrationBundle bundle = calib::calibrate(options);
  std::cerr << "calibrated in " << util::fmt(timer.elapsed_ms(), 0) << " ms\n";
  calib::save_bundle(config.out_path, bundle);
  std::cout << "wrote " << config.out_path << "\n\n";
  print_summary(bundle);
  // Self-check: the artifact just written must pass both the structural
  // lint and the EPP-SEM semantic verifier (the same gate epp_sweep
  // applies before consuming it).
  lint::Diagnostics findings;
  lint::verify_artifact_file(config.out_path, lint::VerifyOptions{}, findings);
  findings.sort_by_location();
  if (!findings.empty()) std::cerr << lint::render_text(findings);
  if (findings.has_errors()) {
    std::cerr << "epp_calibrate: freshly written artifact fails verification "
                 "— this is a calibration bug\n";
    return 2;
  }
  return 0;
} catch (const std::exception& error) {
  std::cerr << "epp_calibrate: " << error.what() << "\n\n";
  return usage(std::cerr);
}
