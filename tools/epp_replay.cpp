// epp_replay — the runtime half of the determinism contract.
//
//   epp_replay [--artifact NAME]... [--check-stdout]
//              [--vary-threads N] [--threads-flag FLAG]
//              [--out-dir DIR] [--diff-out FILE] -- CMD ARG...
//
// Runs CMD twice in two scratch directories (run-a, run-b) and
// byte-compares what it produced. EPP-DET's static rules claim the tree
// cannot produce run-dependent results; this harness checks the claim
// end-to-end the same way the lock-rank tracker cross-checks
// EPP-CONC-001: by actually executing the pipeline.
//
//   --artifact NAME   compare the file NAME (relative to each run
//                     directory; repeatable). CMD should write it
//                     there — relative output paths resolve into the
//                     run directory because CMD runs with cwd set to it.
//   --check-stdout    compare CMD's captured stdout as well.
//   --vary-threads N  append "<threads-flag> 1" to the first run and
//                     "<threads-flag> N" to the second, turning the
//                     dual-run check into a thread-count-invariance
//                     check (seed-sharded replications with fixed-order
//                     merge must not care).
//   --threads-flag F  the flag --vary-threads appends (default
//                     "--threads").
//   --out-dir DIR     where run-a/run-b live (default
//                     "./epp_replay_runs"; wiped and recreated).
//   --diff-out FILE   where to write the divergence report (default
//                     DIR/replay_diff.txt).
//
// Artifacts are canonicalized before comparison (lint/canon.hpp): JSON
// artifacts lose their wall-time measurement fields ("timing" objects
// and legacy *_ms / *per_second keys), everything else must match
// verbatim. CMD and any input paths in ARG must be absolute — the
// command runs from inside the run directory.
//
// Exit code: 0 byte-identical, 1 divergence (report written), 2 usage
// or execution failure. CI's determinism gate runs epp_calibrate and
// epp_sweep through this and uploads the report on failure.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/canon.hpp"
#include "util/cli.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--artifact NAME]... [--check-stdout] [--vary-threads N]\n"
      "          [--threads-flag FLAG] [--out-dir DIR] [--diff-out FILE]\n"
      "          -- CMD ARG...\n"
      "runs CMD twice and byte-compares canonicalized artifacts;\n"
      "exit code: 0 identical, 1 divergence, 2 usage/run failure\n",
      argv0);
  return 2;
}

std::string shell_quote(const std::string& arg) {
  std::string out = "'";
  for (const char c : arg) {
    if (c == '\'')
      out += "'\\''";
    else
      out += c;
  }
  out += "'";
  return out;
}

bool read_file(const std::filesystem::path& path, std::string& out) {
  std::ifstream stream(path, std::ios::binary);
  if (!stream) return false;
  std::ostringstream content;
  content << stream.rdbuf();
  out = content.str();
  return true;
}

/// First line (1-based) where two texts differ, with the differing
/// lines themselves; 0 when identical.
struct LineDiff {
  int line = 0;
  std::string a;
  std::string b;
};

LineDiff first_difference(const std::string& a, const std::string& b) {
  std::istringstream sa(a);
  std::istringstream sb(b);
  std::string la;
  std::string lb;
  int line = 0;
  while (true) {
    const bool more_a = static_cast<bool>(std::getline(sa, la));
    const bool more_b = static_cast<bool>(std::getline(sb, lb));
    ++line;
    if (!more_a && !more_b) return {};
    if (!more_a) return {line, "<end of file>", lb};
    if (!more_b) return {line, la, "<end of file>"};
    if (la != lb) return {line, la, lb};
  }
}

struct ReplayConfig {
  std::vector<std::string> artifacts;
  bool check_stdout = false;
  std::size_t vary_threads = 0;  // 0 = plain dual run
  std::string threads_flag = "--threads";
  std::string out_dir = "epp_replay_runs";
  std::string diff_out;
  std::vector<std::string> command;
};

int run_once(const ReplayConfig& config, const std::filesystem::path& dir,
             const std::string& thread_value) {
  std::string shell = "cd ";
  shell += shell_quote(dir.string());
  shell += " &&";
  for (const std::string& arg : config.command) {
    shell += ' ';
    shell += shell_quote(arg);
  }
  if (!thread_value.empty()) {
    shell += ' ';
    shell += shell_quote(config.threads_flag);
    shell += ' ';
    shell += shell_quote(thread_value);
  }
  shell += " > stdout.txt 2> stderr.txt";
  return std::system(shell.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  ReplayConfig config;
  try {
    int i = 1;
    for (; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--") {
        ++i;
        break;
      }
      const auto value = [&](const char* flag) -> std::string {
        if (i + 1 >= argc)
          throw epp::util::cli::UsageError(std::string(flag) +
                                           ": missing value");
        return argv[++i];
      };
      if (arg == "--artifact") {
        config.artifacts.push_back(value("--artifact"));
      } else if (arg == "--check-stdout") {
        config.check_stdout = true;
      } else if (arg == "--vary-threads") {
        config.vary_threads =
            epp::util::cli::parse_size("--vary-threads", value("--vary-threads"), 1);
      } else if (arg == "--threads-flag") {
        config.threads_flag = value("--threads-flag");
      } else if (arg == "--out-dir") {
        config.out_dir = value("--out-dir");
      } else if (arg == "--diff-out") {
        config.diff_out = value("--diff-out");
      } else if (arg == "--help" || arg == "-h") {
        usage(argv[0]);
        return 0;
      } else {
        throw epp::util::cli::UsageError("unknown flag '" + arg + "'");
      }
    }
    for (; i < argc; ++i) config.command.push_back(argv[i]);
    if (config.command.empty())
      throw epp::util::cli::UsageError(
          "missing command: pass `-- CMD ARG...` after the flags");
    if (config.artifacts.empty() && !config.check_stdout)
      throw epp::util::cli::UsageError(
          "nothing to compare: pass --artifact NAME and/or --check-stdout");
  } catch (const epp::util::cli::UsageError& error) {
    std::fprintf(stderr, "%s\n", error.what());
    return usage(argv[0]);
  }
  if (config.diff_out.empty())
    config.diff_out = config.out_dir + "/replay_diff.txt";

  const std::filesystem::path base(config.out_dir);
  const std::filesystem::path run_a = base / "run-a";
  const std::filesystem::path run_b = base / "run-b";
  std::error_code ec;
  std::filesystem::remove_all(base, ec);
  std::filesystem::create_directories(run_a, ec);
  std::filesystem::create_directories(run_b, ec);
  if (ec) {
    std::fprintf(stderr, "epp_replay: cannot create %s: %s\n",
                 base.string().c_str(), ec.message().c_str());
    return 2;
  }

  const std::string threads_a = config.vary_threads > 0 ? "1" : "";
  const std::string threads_b =
      config.vary_threads > 0 ? std::to_string(config.vary_threads) : "";
  for (const auto& [dir, threads] :
       {std::pair(run_a, threads_a), std::pair(run_b, threads_b)}) {
    const int status = run_once(config, dir, threads);
    if (status != 0) {
      std::string stderr_text;
      read_file(dir / "stderr.txt", stderr_text);
      std::fprintf(stderr,
                   "epp_replay: command failed (status %d) in %s\n%s",
                   status, dir.string().c_str(), stderr_text.c_str());
      return 2;
    }
  }

  std::vector<std::string> names = config.artifacts;
  if (config.check_stdout) names.push_back("stdout.txt");
  std::string report;
  for (const std::string& name : names) {
    std::string text_a;
    std::string text_b;
    if (!read_file(run_a / name, text_a) || !read_file(run_b / name, text_b)) {
      std::fprintf(stderr,
                   "epp_replay: artifact '%s' missing from a run directory "
                   "(did the command write it?)\n",
                   name.c_str());
      return 2;
    }
    const std::string canon_a = epp::lint::canonicalize_artifact(name, text_a);
    const std::string canon_b = epp::lint::canonicalize_artifact(name, text_b);
    if (canon_a == canon_b) {
      std::printf("epp_replay: %s identical (%zu canonical bytes)\n",
                  name.c_str(), canon_a.size());
      continue;
    }
    const LineDiff diff = first_difference(canon_a, canon_b);
    report += "artifact: " + name + "\n";
    report += "first divergence at canonical line " +
              std::to_string(diff.line) + "\n";
    report += "  run-a: " + diff.a + "\n";
    report += "  run-b: " + diff.b + "\n\n";
  }

  if (report.empty()) {
    const char* mode = config.vary_threads > 0 ? "thread-count invariant"
                                               : "dual-run reproducible";
    std::printf("epp_replay: %s — %zu comparison(s) byte-identical\n", mode,
                names.size());
    return 0;
  }

  std::ofstream diff_stream(config.diff_out, std::ios::binary);
  diff_stream << report;
  diff_stream.close();
  std::fprintf(stderr,
               "epp_replay: DIVERGENCE — the runs disagree; report in %s\n%s",
               config.diff_out.c_str(), report.c_str());
  return 1;
}
