// Table 2 — layered queuing method processing-time parameters, calibrated
// on AppServF by running single-request-type workloads and deriving the
// demands from throughput and CPU usage (paper section 5).
//
// Paper values (real testbed): browse 4.505 ms app / 0.8294 ms DB,
// buy 8.761 ms app / 1.613 ms DB; browse makes 1.14 DB calls, buy 2.
// Our simulator's ground-truth demands are calibrated so the *max
// throughputs* (86/186/320 req/s) match the paper, which puts the browse
// app demand at ~5.4 ms (= 1/186); the calibration below must recover the
// simulator's true values, which is the accuracy that matters.
#include <iostream>

#include "common.hpp"
#include "sim/trade/operations.hpp"
#include "util/table.hpp"

int main() {
  using namespace epp;
  std::cout << "== Table 2: LQN processing-time parameters (calibrated on "
               "AppServF) ==\n\n";

  bench::Setup setup;
  const core::TradeCalibration& cal = setup.calibration;
  const auto browse_truth = sim::trade::browse_aggregate();
  const auto buy_truth = sim::trade::buy_aggregate();

  util::Table table({"request_type", "parameter", "calibrated", "simulator_truth",
                     "paper_testbed"});
  auto row = [&](const char* type, const char* param, double got, double truth,
                 const char* paper) {
    table.add_row({type, param, util::fmt(got, 4), util::fmt(truth, 4), paper});
  };
  row("browse", "app_server_ms", cal.browse.app_demand_s * 1e3,
      browse_truth.app_cpu_s * 1e3, "4.505");
  row("browse", "db_server_ms_per_call", cal.browse.db_cpu_per_call_s * 1e3,
      browse_truth.db_cpu_per_call * 1e3, "0.8294");
  row("browse", "db_calls_per_request", cal.browse.mean_db_calls,
      browse_truth.mean_db_calls, "1.14");
  // The buy *service class* aggregates register/login + ~10 buys + logoff;
  // its per-request truth is the class aggregate, not the bare buy op.
  const double buy_agg_app = (0.009 + 10.0 * buy_truth.app_cpu_s + 0.003) / 12.0;
  row("buy", "app_server_ms", cal.buy.app_demand_s * 1e3, buy_agg_app * 1e3,
      "8.761");
  row("buy", "db_calls_per_request", cal.buy.mean_db_calls, 2.0, "2");
  row("buy", "db_server_ms_per_call", cal.buy.db_cpu_per_call_s * 1e3,
      (3.0 * 1.2 + 20.0 * 1.613 + 0.8) / 24.0, "1.613");
  table.print(std::cout);

  std::cout << "\nqueuing-network configuration: app server processes 50 "
               "requests concurrently, DB server 20 (as in the paper).\n";
  return 0;
}
