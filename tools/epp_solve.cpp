// epp_solve — command-line layered-queuing solver.
//
// Usage:
//   epp_solve MODEL.lqn [--population NAME=VALUE]... [--rate NAME=VALUE]...
//             [--tol SECONDS] [--csv] [--no-verify]
//
// Reads a model in the epp::lqn text format (see src/lqn/parser.hpp),
// optionally overrides reference-task populations / arrival rates, solves
// it and prints per-class predictions plus processor utilisations. This is
// the workflow LQNS provides for the paper's experiments, as a tool.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.hpp"
#include "lint/verify.hpp"
#include "lqn/parser.hpp"
#include "lqn/solver.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

namespace cli = epp::util::cli;

[[noreturn]] void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " MODEL.lqn [--population NAME=VALUE]... [--rate NAME=VALUE]..."
               " [--tol SECONDS] [--csv] [--no-verify]\n";
  std::exit(2);
}

struct Override {
  std::string task;
  double value;
};

Override parse_override(const std::string& flag, const std::string& arg) {
  const auto eq = arg.find('=');
  if (eq == std::string::npos || eq == 0)
    throw cli::UsageError(flag + ": wants NAME=VALUE, got '" + arg + "'");
  return {arg.substr(0, eq), cli::parse_double(flag, arg.substr(eq + 1))};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace epp;
  if (argc < 2) usage(argv[0]);

  std::string model_path;
  std::vector<Override> populations, rates;
  lqn::SolverOptions options;
  bool csv = false;
  bool verify = true;

  try {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--population") {
      populations.push_back(parse_override(arg, next()));
    } else if (arg == "--rate") {
      rates.push_back(parse_override(arg, next()));
    } else if (arg == "--tol") {
      options.convergence_tol_s = cli::parse_positive_double(arg, next());
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--no-verify") {
      verify = false;
    } else if (!arg.empty() && arg[0] == '-') {
      usage(argv[0]);
    } else if (model_path.empty()) {
      model_path = arg;
    } else {
      usage(argv[0]);
    }
  }
  } catch (const cli::UsageError& error) {
    std::cerr << "epp_solve: " << error.what() << '\n';
    usage(argv[0]);
  }
  if (model_path.empty()) usage(argv[0]);

  std::ifstream in(model_path);
  if (!in) {
    std::cerr << "epp_solve: cannot open '" << model_path << "'\n";
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  // Pre-solve lint: parse errors and structural defects come back as a
  // complete findings list, not one exception per fix-rebuild cycle.
  // Notes (e.g. deliberate pool saturation) don't block solving.
  {
    lint::Diagnostics findings;
    lint::lint_lqn_text(buffer.str(), model_path, findings);
    if (findings.first_at_least(lint::Severity::kWarning) != nullptr)
      std::cerr << lint::render_text(findings);
    if (findings.has_errors()) {
      std::cerr << "epp_solve: model fails lint with "
                << findings.count(lint::Severity::kError) << " error(s)\n";
      return 1;
    }
  }

  try {
    lqn::Model model = lqn::parse_model(buffer.str());
    for (const Override& o : populations) {
      const auto id = model.find_task(o.task);
      if (!id || !model.task(*id).is_reference) {
        std::cerr << "epp_solve: no reference task '" << o.task << "'\n";
        return 1;
      }
      model.task(*id).population = o.value;
    }
    for (const Override& o : rates) {
      const auto id = model.find_task(o.task);
      if (!id || !model.task(*id).open_arrivals) {
        std::cerr << "epp_solve: no open reference task '" << o.task << "'\n";
        return 1;
      }
      model.task(*id).arrival_rate_rps = o.value;
    }

    // Semantic pre-check (EPP-SEM-010/011/012), run after overrides so the
    // populations/rates actually being solved are what gets checked: refuse
    // models the solver would only reject at runtime — saturated open
    // stations, priority starvation with finite-pool feedback. --no-verify
    // bypasses the gate for deliberate divergence experiments.
    if (verify) {
      lint::Diagnostics findings;
      const lint::LqnSourceIndex index = lint::index_lqn_source(buffer.str());
      lint::verify_lqn_model(model, model_path, findings, &index);
      findings.sort_by_location();
      if (!findings.empty()) std::cerr << lint::render_text(findings);
      if (findings.has_errors()) {
        std::cerr << "epp_solve: semantic verification predicts this model "
                     "will not solve ("
                  << findings.count(lint::Severity::kError)
                  << " error(s)); pass --no-verify to attempt it anyway\n";
        return 1;
      }
    }

    const lqn::SolveResult result = lqn::LayeredSolver(options).solve(model);

    util::Table classes({"class", "kind", "population", "response_time_ms",
                         "throughput_rps"});
    for (const lqn::ClassPrediction& c : result.classes)
      classes.add_row({c.name, c.open ? "open" : "closed",
                       c.open ? "-" : util::fmt(c.population, 0),
                       util::fmt(c.response_time_s * 1e3, 3),
                       util::fmt(c.throughput_rps, 3)});
    util::Table processors({"processor", "utilization_pct"});
    for (const auto& [name, util_value] : result.processor_utilization)
      processors.add_row({name, util::fmt(100.0 * util_value, 1)});

    if (csv) {
      std::cout << classes.to_csv() << '\n' << processors.to_csv();
    } else {
      classes.print(std::cout);
      std::cout << '\n';
      processors.print(std::cout);
      std::cout << "\nconverged: " << (result.converged ? "yes" : "NO")
                << ", layer iterations: " << result.iterations
                << ", solve time: " << util::fmt(result.solve_time_s * 1e3, 2)
                << " ms\n";
    }
    return result.converged ? 0 : 3;
  } catch (const std::exception& e) {
    std::cerr << "epp_solve: " << e.what() << '\n';
    return 1;
  }
}
