// epp_srclint — concurrency & hot-path static analysis for the tree's
// own C++ sources.
//
//   epp_srclint [--json] [--no-suppress] PATH...
//
// PATHs are files or directories (directories recurse over
// .hpp/.h/.hh/.cpp/.cc/.cxx). The analyzer builds a lock model from the
// EPP_LOCK_RANK / EPP_GUARDED_BY / EPP_HOT annotations
// (util/annotations.hpp) and the guard scopes it finds, then runs the
// EPP-CONC (lock order, blocking under lock, double lock, guarded
// fields, detached threads, broken CAS) and EPP-HOT (allocation,
// std::function, locks, I/O in hot regions) rule families. Findings
// print in the same compiler-style / JSON formats as epp_lint.
//
// `// epp-lint: ignore(<RULE>)` comments suppress a finding on the next
// line (or their own line when trailing code); stale suppressions are
// reported as EPP-META-001 so the CI clean gate stays honest.
// --no-suppress shows everything.
//
// Exit code is the maximum severity found: 0 clean or notes only,
// 1 warnings, 2 errors — CI runs `epp_srclint src tools` as a tier-1
// gate. Usage errors exit 2.

#include <cstdio>
#include <string>
#include <vector>

#include "lint/diagnostic.hpp"
#include "lint/src/srclint.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--json] [--no-suppress] PATH...\n"
               "  PATHs: C++ files or directories (recursive)\n"
               "  --json         machine-readable findings on stdout\n"
               "  --no-suppress  ignore epp-lint suppression comments\n"
               "exit code: 0 clean/notes, 1 warnings, 2 errors\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  epp::lint::SrclintOptions options;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--no-suppress") {
      options.use_suppressions = false;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return usage(argv[0]);

  epp::lint::Diagnostics diagnostics;
  epp::lint::lint_sources(paths, diagnostics, options);

  if (json) {
    std::fputs(epp::lint::render_json(diagnostics).c_str(), stdout);
    std::fputc('\n', stdout);
  } else if (diagnostics.empty()) {
    std::printf("clean: %zu path(s), no findings\n", paths.size());
  } else {
    std::fputs(epp::lint::render_text(diagnostics).c_str(), stdout);
  }
  return epp::lint::exit_code(diagnostics);
}
