// Mixed (open + closed) workloads and priority classes: the section-8.1
// model variations ("some or all clients sending requests at a constant
// rate; priority queuing disciplines") in the MVA core, the layered
// solver, the parser and — for open streams — validated against the
// discrete-event testbed.
#include <gtest/gtest.h>

#include <cmath>

#include "core/trade_model.hpp"
#include "lqn/mva.hpp"
#include "lqn/parser.hpp"
#include "lqn/solver.hpp"
#include "sim/trade/testbed.hpp"
#include "util/stats.hpp"

namespace epp::lqn {
namespace {

// ---------------------------------------------------------------------------
// MVA level.
// ---------------------------------------------------------------------------

ClosedNetwork open_only(double lambda, double demand) {
  ClosedNetwork net;
  net.stations = {{"cpu", StationKind::kQueueing, 1}};
  net.open_classes.push_back({"stream", lambda, {demand}});
  return net;
}

TEST(MixedMva, OpenMm1ClosedForm) {
  // M/M/1: R = D / (1 - rho).
  const MvaResult r = solve_bard_schweitzer(open_only(50.0, 0.01));
  EXPECT_NEAR(r.open_response_time_s[0], 0.01 / (1.0 - 0.5), 1e-9);
  EXPECT_NEAR(r.station_utilization[0], 0.5, 1e-12);
}

TEST(MixedMva, OpenSaturationRejected) {
  EXPECT_THROW(solve_bard_schweitzer(open_only(150.0, 0.01)),
               std::domain_error);
}

TEST(MixedMva, OpenLoadInflatesClosedResponse) {
  ClosedNetwork net;
  net.stations = {{"cpu", StationKind::kQueueing, 1}};
  net.class_names = {"closed"};
  net.population = {1.0};
  net.think_time_s = {1.0};
  net.demands = {{0.01}};
  const double r_alone = solve_bard_schweitzer(net).response_time_s[0];
  net.open_classes.push_back({"stream", 50.0, {0.01}});
  const double r_shared = solve_bard_schweitzer(net).response_time_s[0];
  // A single closed customer with 50% background load: R = D/(1-0.5).
  EXPECT_NEAR(r_alone, 0.01, 1e-9);
  EXPECT_NEAR(r_shared, 0.02, 1e-9);
}

TEST(MixedMva, ExactSingleClassHonoursOpenLoad) {
  ClosedNetwork net;
  net.stations = {{"cpu", StationKind::kQueueing, 1}};
  net.class_names = {"closed"};
  net.population = {1.0};
  net.think_time_s = {1.0};
  net.demands = {{0.01}};
  net.open_classes.push_back({"stream", 50.0, {0.01}});
  const MvaResult r = solve_exact_single_class(net);
  EXPECT_NEAR(r.response_time_s[0], 0.02, 1e-9);
}

TEST(PriorityMva, HighPriorityShieldedFromLowPriorityLoad) {
  ClosedNetwork net;
  net.stations = {{"cpu", StationKind::kQueueing, 1}};
  net.class_names = {"high", "low"};
  net.population = {20.0, 20.0};
  net.think_time_s = {1.0, 1.0};
  net.demands = {{0.01}, {0.01}};
  net.priority = {1, 0};
  const MvaResult r = solve_bard_schweitzer(net);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.response_time_s[0], r.response_time_s[1]);

  // The high class should look like it owns the station.
  ClosedNetwork solo = net;
  solo.class_names = {"high"};
  solo.population = {20.0};
  solo.think_time_s = {1.0};
  solo.demands = {{0.01}};
  solo.priority.clear();
  solo.open_classes.clear();
  const MvaResult alone = solve_bard_schweitzer(solo);
  EXPECT_NEAR(r.response_time_s[0], alone.response_time_s[0],
              0.15 * alone.response_time_s[0]);
}

TEST(PriorityMva, EqualPrioritiesMatchNoPriorities) {
  ClosedNetwork net;
  net.stations = {{"cpu", StationKind::kQueueing, 1}};
  net.class_names = {"a", "b"};
  net.population = {10.0, 10.0};
  net.think_time_s = {1.0, 1.0};
  net.demands = {{0.01}, {0.02}};
  const MvaResult plain = solve_bard_schweitzer(net);
  net.priority = {3, 3};
  const MvaResult same = solve_bard_schweitzer(net);
  for (std::size_t c = 0; c < 2; ++c)
    EXPECT_NEAR(plain.response_time_s[c], same.response_time_s[c], 1e-9);
}

TEST(PriorityMva, LittlesLawStillHolds) {
  ClosedNetwork net;
  net.stations = {{"cpu", StationKind::kQueueing, 1},
                  {"db", StationKind::kQueueing, 1}};
  net.class_names = {"high", "low"};
  net.population = {50.0, 80.0};
  net.think_time_s = {2.0, 2.0};
  net.demands = {{0.005, 0.001}, {0.005, 0.001}};
  net.priority = {2, 1};
  const MvaResult r = solve_bard_schweitzer(net);
  for (std::size_t c = 0; c < 2; ++c)
    EXPECT_NEAR(r.throughput_rps[c] * (2.0 + r.response_time_s[c]),
                net.population[c], 1e-6 * net.population[c]);
}

// ---------------------------------------------------------------------------
// Solver + parser level.
// ---------------------------------------------------------------------------

core::TradeCalibration cal() {
  core::TradeCalibration c;
  c.browse = {0.005376, 0.00083, 0.00040, 1.14};
  c.buy = {0.010455, 0.00161, 0.00050, 2.0};
  return c;
}

Model trade_with_open_stream(double closed_clients, double open_rps) {
  Model model = core::build_trade_lqn(cal(), core::arch_f(),
                                      {closed_clients, 0.0, 7.0});
  const auto browse = model.find_entry("browse_request");
  const auto box = model.find_processor("client_box");
  const auto task = model.add_task(
      make_open_client_task("api_stream", *box, open_rps));
  const auto entry = model.add_entry({"api_cycle", task, 0.0, {}});
  model.add_call(entry, *browse, 1.0);
  return model;
}

TEST(MixedSolver, OpenStreamThroughputAndFiniteResponse) {
  const Model model = trade_with_open_stream(400.0, 60.0);
  const SolveResult r = LayeredSolver().solve(model);
  const auto& open = r.cls("api_stream");
  EXPECT_TRUE(open.open);
  EXPECT_DOUBLE_EQ(open.throughput_rps, 60.0);
  EXPECT_GT(open.response_time_s, 0.004);
  EXPECT_LT(open.response_time_s, 0.2);
  // The closed class slows down relative to having the server to itself.
  const SolveResult alone = LayeredSolver().solve(
      core::build_trade_lqn(cal(), core::arch_f(), {400.0, 0.0, 7.0}));
  EXPECT_GT(r.response_time_s("browse_clients"),
            alone.response_time_s("browse_clients"));
}

TEST(MixedSolver, OpenLoadShrinksClosedMaxThroughput) {
  LayeredSolver solver;
  const double with_stream =
      solver.max_throughput_bound_rps(trade_with_open_stream(1000.0, 60.0));
  const double without =
      solver.max_throughput_bound_rps(core::build_trade_lqn(
          cal(), core::arch_f(), {1000.0, 0.0, 7.0}));
  // 60 req/s of open browse load eats ~32% of the 186 req/s capacity.
  EXPECT_NEAR(with_stream, without - 60.0, 6.0);
}

TEST(MixedSolver, PriorityClassesInTradeModel) {
  Model model = core::build_trade_lqn(cal(), core::arch_f(),
                                      {900.0, 0.0, 7.0});
  const auto box = model.find_processor("client_box");
  const auto browse = model.find_entry("browse_request");
  const auto vip = model.add_task(
      make_closed_client_task("vip_clients", *box, 300.0, 7.0, /*priority=*/1));
  const auto entry = model.add_entry({"vip_cycle", vip, 0.0, {}});
  model.add_call(entry, *browse, 1.0);
  const SolveResult r = LayeredSolver().solve(model);
  EXPECT_LT(r.response_time_s("vip_clients"),
            r.response_time_s("browse_clients"));
}

TEST(MixedParser, OpenAndPriorityRoundTrip) {
  const Model m = parse_model(R"(
processor box delay
processor cpu ps
task stream ref open processor=box rate=25 think=0
task vips ref processor=box population=10 think=1 priority=2
task server processor=cpu
entry scycle task=stream
entry vcycle task=vips
entry serve task=server demand=0.005
call scycle serve 1.0
call vcycle serve 1.0
)");
  EXPECT_NO_THROW(m.validate());
  const Model again = parse_model(to_text(m));
  const auto stream = again.find_task("stream");
  ASSERT_TRUE(stream.has_value());
  EXPECT_TRUE(again.task(*stream).open_arrivals);
  EXPECT_DOUBLE_EQ(again.task(*stream).arrival_rate_rps, 25.0);
  EXPECT_EQ(again.task(*again.find_task("vips")).priority, 2);
  const SolveResult r = LayeredSolver().solve(again);
  EXPECT_DOUBLE_EQ(r.cls("stream").throughput_rps, 25.0);
}

TEST(MixedParser, OpenReferenceNeedsRate) {
  Model m = parse_model(R"(
processor box delay
processor cpu ps
task stream ref open processor=box
task server processor=cpu
entry scycle task=stream
entry serve task=server demand=0.005
call scycle serve 1.0
)");
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Against the simulator.
// ---------------------------------------------------------------------------

TEST(MixedVsSim, OpenStreamResponseTimeAgrees) {
  // Pure open browse stream at 60 req/s on AppServF.
  sim::trade::TestbedConfig config;
  config.server = sim::trade::app_serv_f();
  sim::trade::ServiceClassSpec stream;
  stream.name = "stream";
  stream.type = sim::trade::UserType::kBrowse;
  stream.open_arrival_rps = 60.0;
  config.classes.push_back(stream);
  config.warmup_s = 40.0;
  config.measure_s = 200.0;
  config.seed = 99;
  const auto measured = sim::trade::run_testbed(config);
  EXPECT_NEAR(measured.throughput_rps, 60.0, 2.0);

  Model model = core::build_trade_lqn(cal(), core::arch_f(), {1.0, 0.0, 7.0});
  // Replace the closed class with an open one (keep 1 closed client as the
  // build helper requires a workload; its effect at 1 client is ~nil).
  const auto box = model.find_processor("client_box");
  const auto browse = model.find_entry("browse_request");
  const auto task = model.add_task(make_open_client_task("stream", *box, 60.0));
  const auto entry = model.add_entry({"cycle2", task, 0.0, {}});
  model.add_call(entry, *browse, 1.0);
  const SolveResult predicted = LayeredSolver().solve(model);
  EXPECT_GT(util::prediction_accuracy_percent(
                predicted.cls("stream").response_time_s, measured.mean_rt_s),
            70.0);
}

TEST(MixedVsSim, MixedOpenClosedThroughputAgrees) {
  sim::trade::TestbedConfig config =
      sim::trade::typical_workload(sim::trade::app_serv_f(), 400, 7);
  sim::trade::ServiceClassSpec stream;
  stream.name = "stream";
  stream.open_arrival_rps = 40.0;
  config.classes.push_back(stream);
  config.warmup_s = 40.0;
  config.measure_s = 160.0;
  const auto measured = sim::trade::run_testbed(config);
  // Total ~= closed 400/7.05 + open 40.
  EXPECT_NEAR(measured.throughput_rps, 400.0 / 7.05 + 40.0, 4.0);

  const Model model = trade_with_open_stream(400.0, 40.0);
  const SolveResult predicted = LayeredSolver().solve(model);
  EXPECT_GT(util::prediction_accuracy_percent(predicted.total_throughput_rps(),
                                              measured.throughput_rps),
            95.0);
}

}  // namespace
}  // namespace epp::lqn
