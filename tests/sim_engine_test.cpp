#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace epp::sim {
namespace {

TEST(Engine, EventsRunInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(3.0, [&] { order.push_back(3); });
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  engine.schedule_at(2.0, [&] { order.push_back(2); });
  engine.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
}

TEST(Engine, EqualTimesRunFifo) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    engine.schedule_at(1.0, [&, i] { order.push_back(i); });
  engine.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, ScheduleAfterUsesCurrentTime) {
  Engine engine;
  double fired_at = -1.0;
  engine.schedule_at(5.0, [&] {
    engine.schedule_after(2.5, [&] { fired_at = engine.now(); });
  });
  engine.run_all();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Engine, CancelPreventsExecution) {
  Engine engine;
  bool ran = false;
  auto handle = engine.schedule_at(1.0, [&] { ran = true; });
  Engine::cancel(handle);
  engine.run_all();
  EXPECT_FALSE(ran);
  EXPECT_EQ(engine.events_processed(), 0u);
}

TEST(Engine, RunUntilStopsAtBoundary) {
  Engine engine;
  int count = 0;
  engine.schedule_at(1.0, [&] { ++count; });
  engine.schedule_at(2.0, [&] { ++count; });
  engine.schedule_at(3.0, [&] { ++count; });
  engine.run_until(2.0);
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(engine.now(), 2.0);
  engine.run_until(10.0);
  EXPECT_EQ(count, 3);
  EXPECT_DOUBLE_EQ(engine.now(), 10.0);
}

TEST(Engine, PastSchedulingRejected) {
  Engine engine;
  engine.schedule_at(5.0, [] {});
  engine.run_all();
  EXPECT_THROW(engine.schedule_at(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(engine.schedule_after(-1.0, [] {}), std::invalid_argument);
}

TEST(Engine, StepReturnsFalseWhenEmpty) {
  Engine engine;
  EXPECT_FALSE(engine.step());
  engine.schedule_at(1.0, [] {});
  EXPECT_TRUE(engine.step());
  EXPECT_FALSE(engine.step());
}

TEST(Engine, EventsCanScheduleMoreEvents) {
  Engine engine;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) engine.schedule_after(1.0, chain);
  };
  engine.schedule_at(0.0, chain);
  engine.run_all();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(engine.events_processed(), 100u);
}

}  // namespace
}  // namespace epp::sim
