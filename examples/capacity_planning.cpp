// Capacity planning: "which server architecture should host this SLA?"
//
// Calibrates all three prediction methods from the simulated testbed and
// asks each for the maximum number of clients every candidate architecture
// can support under a response-time goal — the resource-management
// question of the paper's section 8.2, with the prediction-evaluation cost
// of answering it (section 8.5).
#include <iostream>

#include "core/evaluation.hpp"
#include "core/historical_predictor.hpp"
#include "core/hybrid_predictor.hpp"
#include "core/lqn_predictor.hpp"
#include "hydra/relationships.hpp"
#include "sim/trade/testbed.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace epp;
  std::cout << "EPP capacity planner: max clients per architecture under an "
               "SLA goal\n\n";
  util::ThreadPool pool;

  // Benchmark the three candidate architectures' max throughputs (the
  // "application-specific benchmark on new server architectures").
  const double max_s = sim::trade::measure_max_throughput(sim::trade::app_serv_s());
  const double max_f = sim::trade::measure_max_throughput(sim::trade::app_serv_f());
  const double max_vf = sim::trade::measure_max_throughput(sim::trade::app_serv_vf());

  // Layered queuing calibration on the established AppServF.
  const core::TradeCalibration calibration =
      core::calibrate_lqn_from_testbed(7, &pool);
  core::LqnPredictor lqn(calibration);
  core::HybridPredictor hybrid(calibration);
  for (const auto& arch : {core::arch_s(), core::arch_f(), core::arch_vf()}) {
    lqn.register_server(arch);
    hybrid.register_server(arch);
  }

  // Historical calibration on the two established boxes, S via rel. 2.
  const auto grad = core::measure_sweep(sim::trade::app_serv_f(), {300.0, 600.0},
                                        {}, &pool);
  const double m =
      hydra::fit_gradient({grad[0].clients, grad[1].clients},
                          {grad[0].throughput_rps, grad[1].throughput_rps});
  core::HistoricalPredictor historical(m);
  for (const auto& [name, spec, max] :
       {std::tuple{"AppServF", sim::trade::app_serv_f(), max_f},
        std::tuple{"AppServVF", sim::trade::app_serv_vf(), max_vf}}) {
    const double knee = max / m;
    const auto lower =
        core::measure_sweep(spec, {0.25 * knee, 0.6 * knee}, {}, &pool);
    const auto upper =
        core::measure_sweep(spec, {1.25 * knee, 1.7 * knee}, {}, &pool);
    historical.calibrate_established(name, core::to_data_points(lower),
                                     core::to_data_points(upper), max);
  }
  historical.register_new_server("AppServS", max_s);

  for (const double goal_ms : {300.0, 600.0}) {
    std::cout << "-- SLA goal: mean response time <= " << goal_ms << " ms --\n";
    util::Table table({"architecture", "historical", "lqn", "hybrid",
                       "lqn_search_evals"});
    for (const char* server : {"AppServS", "AppServF", "AppServVF"}) {
      const auto h = historical.max_clients_for_goal(server, goal_ms / 1e3);
      const auto l = lqn.max_clients_for_goal(server, goal_ms / 1e3);
      const auto y = hybrid.max_clients_for_goal(server, goal_ms / 1e3);
      table.add_row({server, util::fmt(h.max_clients, 0),
                     util::fmt(l.max_clients, 0), util::fmt(y.max_clients, 0),
                     std::to_string(l.prediction_evaluations)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "historical/hybrid invert their equations once; the layered "
               "method bisects (column of solver evaluations).\n";
  return 0;
}
