// Micro-benchmark: layered solver cost versus population, class count and
// convergence criterion (google-benchmark). Grounds the section-8.5
// latency discussion in numbers for this implementation.
#include <benchmark/benchmark.h>

#include "core/trade_model.hpp"
#include "lqn/solver.hpp"

namespace {

using namespace epp;

core::TradeCalibration calibration() {
  core::TradeCalibration cal;
  cal.browse = {0.005376, 0.00083, 0.00040, 1.14};
  cal.buy = {0.010455, 0.00161, 0.00050, 2.0};
  return cal;
}

void BM_SolveTypical(benchmark::State& state) {
  const auto model = core::build_trade_lqn(
      calibration(), core::arch_f(),
      {static_cast<double>(state.range(0)), 0.0, 7.0});
  const lqn::LayeredSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(model));
  }
}
BENCHMARK(BM_SolveTypical)->Arg(100)->Arg(500)->Arg(1500)->Arg(3000)->Arg(10000);

void BM_SolveMixedClasses(benchmark::State& state) {
  const auto model = core::build_trade_lqn(
      calibration(), core::arch_f(),
      {0.75 * static_cast<double>(state.range(0)),
       0.25 * static_cast<double>(state.range(0)), 7.0});
  const lqn::LayeredSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(model));
  }
}
BENCHMARK(BM_SolveMixedClasses)->Arg(500)->Arg(2000)->Arg(8000);

void BM_ConvergenceCriterion(benchmark::State& state) {
  // The paper's 20 ms criterion vs a tight one: looser stops sooner.
  lqn::SolverOptions options;
  options.convergence_tol_s = state.range(0) == 0 ? 1e-9 : 0.020;
  const auto model =
      core::build_trade_lqn(calibration(), core::arch_f(), {1500.0, 0.0, 7.0});
  const lqn::LayeredSolver solver(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(model));
  }
}
BENCHMARK(BM_ConvergenceCriterion)->Arg(0)->Arg(1);

void BM_MaxThroughputBound(benchmark::State& state) {
  const auto model =
      core::build_trade_lqn(calibration(), core::arch_f(), {1000.0, 0.0, 7.0});
  const lqn::LayeredSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.max_throughput_bound_rps(model));
  }
}
BENCHMARK(BM_MaxThroughputBound);

}  // namespace

BENCHMARK_MAIN();
