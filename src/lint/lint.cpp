#include "lint/lint.hpp"

#include <fstream>
#include <sstream>
#include <string>

namespace epp::lint {
namespace {

bool ends_with(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// First non-empty, non-comment line of the text.
std::string first_payload_line(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line))
    if (!line.empty() && line[0] != '#') return line;
  return "";
}

}  // namespace

ArtifactKind sniff_artifact(const std::string& path, const std::string& text) {
  if (ends_with(path, ".epp")) return ArtifactKind::kBundle;
  if (ends_with(path, ".lqn")) return ArtifactKind::kLqnModel;
  // Extension didn't decide; let the content. Bundles always open with
  // their versioned header, LQN models with one of four declarations.
  const std::string head = first_payload_line(text);
  if (head.rfind("epp-bundle", 0) == 0) return ArtifactKind::kBundle;
  for (const char* decl : {"processor ", "task ", "entry ", "call "})
    if (head.rfind(decl, 0) == 0) return ArtifactKind::kLqnModel;
  return ArtifactKind::kUnknown;
}

void lint_artifact_file(const std::string& path, Diagnostics& diagnostics) {
  std::ifstream in(path);
  if (!in) {
    diagnostics.error("EPP-IO-001", {path, 0}, "cannot read file");
    return;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  switch (sniff_artifact(path, text)) {
    case ArtifactKind::kBundle:
      lint_bundle_text(text, path, diagnostics);
      return;
    case ArtifactKind::kLqnModel:
      lint_lqn_text(text, path, diagnostics);
      return;
    case ArtifactKind::kUnknown:
      diagnostics.error("EPP-IO-001", {path, 0},
                        "cannot tell what kind of artifact this is",
                        "bundles start with 'epp-bundle v1'; LQN models "
                        "with processor/task/entry/call declarations; "
                        "or name the file *.epp / *.lqn");
      return;
  }
}

}  // namespace epp::lint
