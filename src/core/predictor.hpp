// The common prediction interface over the three methods the paper
// compares (historical, layered queuing, hybrid), plus the generic
// SLA-capacity search.
//
// A predictor answers, for a named server architecture and a workload
// (browse/buy client populations with a think time):
//   * the mean response time;
//   * the throughput;
//   * the max throughput at a workload mix;
//   * percentile response times, by extrapolating the mean through the
//     regime distributions of section 7.1;
//   * the maximum number of clients that keeps the mean response time
//     within an SLA goal (resource managers' main question).
//
// The capacity search is a bisection over predict_mean_rt_s by default —
// the paper's point that "in the current layered queuing solver the number
// of clients can only be an input so it is necessary to search" — while
// the historical method overrides it with its closed-form inverse.
#pragma once

#include <string>

#include "core/trade_model.hpp"

namespace epp::core {

/// Result of an SLA capacity search, including how many prediction
/// evaluations it cost (the paper's section 8.5 latency discussion).
struct CapacityResult {
  double max_clients = 0.0;
  int prediction_evaluations = 0;
};

class Predictor {
 public:
  virtual ~Predictor() = default;

  virtual std::string name() const = 0;

  /// Workload-mean response time (seconds) for the workload on the server.
  virtual double predict_mean_rt_s(const std::string& server,
                                   const WorkloadSpec& workload) const = 0;

  /// Total request throughput (requests/second).
  virtual double predict_throughput_rps(const std::string& server,
                                        const WorkloadSpec& workload) const = 0;

  /// Max throughput for a workload mix (buy_fraction of the clients are
  /// buy users; 0 = the typical all-browse workload).
  virtual double predict_max_throughput_rps(const std::string& server,
                                            double buy_fraction) const = 0;

  /// Whether the workload drives the server past max throughput (selects
  /// the distribution regime of section 7.1).
  virtual bool predicts_saturated(const std::string& server,
                                  const WorkloadSpec& workload) const;

  /// Percentile response time via the regime distributions; scale_b_s is
  /// the calibrated post-saturation double-exponential scale.
  double predict_percentile_rt_s(const std::string& server,
                                 const WorkloadSpec& workload, double p,
                                 double scale_b_s) const;

  /// Maximum clients (at the given mix) whose predicted mean response time
  /// stays at or below goal_s. Bisection by default; overridden by methods
  /// with an invertible model.
  virtual CapacityResult max_clients_for_goal(const std::string& server,
                                              double goal_s,
                                              double buy_fraction = 0.0,
                                              double think_time_s = 7.0) const;
};

}  // namespace epp::core
