#include "rm/runtime.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "rm/manager.hpp"
#include "rm/tuning.hpp"

namespace epp::rm {
namespace {

/// Same physics stand-in as the manager tests (see rm_manager_test.cpp).
class PhysicsPredictor final : public core::Predictor {
 public:
  explicit PhysicsPredictor(double error_y = 1.0) : y_(error_y) {}
  std::string name() const override { return "physics"; }
  double max_power(const std::string& arch) const {
    static const std::map<std::string, double> kPower{
        {"AppServS", 86.0}, {"AppServF", 186.0}, {"AppServVF", 320.0}};
    return kPower.at(arch);
  }
  double predict_max_throughput_rps(const std::string& arch,
                                    double buy_fraction) const override {
    return max_power(arch) / (1.0 + 0.9 * buy_fraction);
  }
  double predict_mean_rt_s(const std::string& arch,
                           const core::WorkloadSpec& w) const override {
    const double x_max = predict_max_throughput_rps(arch, w.buy_fraction());
    return std::max(0.020, y_ * w.total_clients() / x_max - w.think_time_s);
  }
  double predict_throughput_rps(const std::string& arch,
                                const core::WorkloadSpec& w) const override {
    const double x_max = predict_max_throughput_rps(arch, w.buy_fraction());
    return std::min(y_ * w.total_clients() / (w.think_time_s + 0.020), x_max);
  }

 private:
  double y_;
};

RuntimeOutcome run_scenario(double slack, double planner_error, double load,
                            bool optimize = true) {
  const PhysicsPredictor planner(planner_error);
  const PhysicsPredictor truth(1.0);
  const ResourceManager manager(planner, {slack, 7.0, 1.0});
  const auto classes = standard_classes(load);
  const auto pool = standard_pool();
  const Allocation a = manager.allocate(classes, pool);
  RuntimeOptions options;
  options.runtime_optimization = optimize;
  return evaluate_runtime(a, classes, pool, truth, options);
}

TEST(Runtime, PerfectPredictorNoFailures) {
  for (double load : {2000.0, 6000.0, 10000.0}) {
    const RuntimeOutcome o = run_scenario(1.0, 1.0, load);
    EXPECT_NEAR(o.sla_failure_pct, 0.0, 0.1) << load;
    EXPECT_LE(o.server_usage_pct, 100.0);
  }
}

TEST(Runtime, UniformErrorCompensatedBySlackEqualY) {
  // The paper: "setting the slack to y results in 0% SLA failures below
  // 100% server usage". y = 1.075 mimics the reported average error.
  const double y = 1.075;
  for (double load : {3000.0, 7000.0, 11000.0}) {
    const RuntimeOutcome with_slack = run_scenario(y, 1.0 / y, load);
    EXPECT_NEAR(with_slack.sla_failure_pct, 0.0, 0.2) << load;
  }
}

TEST(Runtime, OptimisticErrorWithoutSlackCausesFailures) {
  // Planner thinks servers hold more than they do (predicted RT for N
  // clients equals true RT at 0.85*N), no slack: rejections appear.
  const RuntimeOutcome o = run_scenario(1.0, 0.85, 11000.0, false);
  EXPECT_GT(o.sla_failure_pct, 1.0);
}

TEST(Runtime, RuntimeOptimizationAbsorbsOverflow) {
  const RuntimeOutcome raw = run_scenario(1.0, 0.85, 11000.0, false);
  const RuntimeOutcome optimized = run_scenario(1.0, 0.85, 11000.0, true);
  EXPECT_LE(optimized.sla_failure_pct, raw.sla_failure_pct);
}

TEST(Runtime, UsageGrowsWithLoad) {
  double prev = 0.0;
  for (double load : {1000.0, 4000.0, 8000.0, 12000.0, 16000.0}) {
    const RuntimeOutcome o = run_scenario(1.0, 1.0, load);
    EXPECT_GE(o.server_usage_pct, prev - 1e-9) << load;
    prev = o.server_usage_pct;
  }
}

TEST(Runtime, ZeroSlackAllocatesNothing) {
  const RuntimeOutcome o = run_scenario(0.0, 1.0, 5000.0);
  EXPECT_NEAR(o.sla_failure_pct, 100.0, 1e-9);
  EXPECT_DOUBLE_EQ(o.server_usage_pct, 0.0);
  EXPECT_EQ(o.servers_used, 0u);
}

TEST(Runtime, RejectionThresholdTightensCapacity) {
  const PhysicsPredictor truth(1.0);
  const PhysicsPredictor planner(1.0);
  const ResourceManager manager(planner, {1.0, 7.0, 1.0});
  const auto classes = standard_classes(12000.0);
  const auto pool = standard_pool();
  const Allocation a = manager.allocate(classes, pool);
  RuntimeOptions strict;
  strict.rejection_threshold = 0.25;  // reject within 25% of the goal
  strict.runtime_optimization = false;
  const RuntimeOutcome tight = evaluate_runtime(a, classes, pool, truth, strict);
  RuntimeOptions loose;
  loose.runtime_optimization = false;
  const RuntimeOutcome exact = evaluate_runtime(a, classes, pool, truth, loose);
  EXPECT_GE(tight.sla_failure_pct, exact.sla_failure_pct);
}

TEST(Runtime, MismatchedAllocationRejected) {
  const PhysicsPredictor truth(1.0);
  Allocation a;
  a.per_server.resize(3);
  EXPECT_THROW(
      evaluate_runtime(a, standard_classes(100.0), standard_pool(), truth, {}),
      std::invalid_argument);
}

TEST(Tuning, SweepLoadsProducesMonotoneUsage) {
  const PhysicsPredictor planner(1.0);
  const PhysicsPredictor truth(1.0);
  TuningConfig config;
  config.planner = &planner;
  config.truth = &truth;
  config.pool = standard_pool();
  config.loads = {2000.0, 5000.0, 8000.0, 11000.0, 14000.0};
  const auto points = sweep_loads(config, 1.0);
  ASSERT_EQ(points.size(), 5u);
  for (std::size_t i = 1; i < points.size(); ++i)
    EXPECT_GE(points[i].server_usage_pct, points[i - 1].server_usage_pct);
}

TEST(Tuning, ReducingSlackTradesFailuresForUsageSaving) {
  const PhysicsPredictor planner(0.93);  // modestly optimistic planner
  const PhysicsPredictor truth(1.0);
  TuningConfig config;
  config.planner = &planner;
  config.truth = &truth;
  config.pool = standard_pool();
  config.loads = {2000.0, 5000.0, 8000.0, 11000.0};
  // Disable the spare-capacity optimisation so the planner's optimism
  // shows up as failures rather than being silently absorbed.
  config.runtime.runtime_optimization = false;
  const auto zero = find_min_zero_failure_slack(
      config, {0.9, 1.0, 1.05, 1.1, 1.15, 1.2});
  EXPECT_GT(zero.slack, 1.0);  // optimism needs positive slack
  const auto curve =
      sweep_slack(config, {zero.slack, 0.9, 0.6, 0.3}, zero.su_max_pct);
  // Failures increase and usage saving grows as slack shrinks.
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].avg_sla_failure_pct,
              curve[i - 1].avg_sla_failure_pct - 1e-9);
    EXPECT_GE(curve[i].avg_usage_saving_pct,
              curve[i - 1].avg_usage_saving_pct - 1e-9);
  }
  EXPECT_NEAR(curve.front().avg_sla_failure_pct, 0.0, 0.1);
}

TEST(Tuning, ConfigValidation) {
  TuningConfig config;
  EXPECT_THROW(sweep_loads(config, 1.0), std::invalid_argument);
  const PhysicsPredictor p(1.0);
  config.planner = &p;
  config.truth = &p;
  EXPECT_THROW(sweep_loads(config, 1.0), std::invalid_argument);  // no pool
  config.pool = standard_pool();
  EXPECT_THROW(sweep_loads(config, 1.0), std::invalid_argument);  // no loads
}

}  // namespace
}  // namespace epp::rm
