// Checked command-line value parsing shared by every tool.
//
// Bare std::stod / std::stoi accept trailing junk ("10x" parses as 10)
// and escape as raw std::invalid_argument("stod") when the value is
// hopeless — a daemon flag like `--deadline-ms abc` used to surface as
// an unexplained crash or a misleading usage dump. Every helper here
// parses the *whole* token, rejects non-finite values, enforces the
// advertised bounds, and names the offending flag in the error message
// so `epp_serve --queue-depth banana` says exactly what was wrong.
//
// All helpers throw util::cli::UsageError (an invalid_argument) — tools
// catch it at top level and print usage.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace epp::util::cli {

/// A malformed flag value. what() always starts with the flag name.
struct UsageError : std::invalid_argument {
  using std::invalid_argument::invalid_argument;
};

/// Parse a finite double from the whole token; "--flag: expected a
/// number, got 'abc'" on anything else (junk suffixes included).
double parse_double(std::string_view flag, std::string_view text);

/// parse_double plus a bound check.
double parse_double_at_least(std::string_view flag, std::string_view text,
                             double min);
/// parse_double requiring value > 0.
double parse_positive_double(std::string_view flag, std::string_view text);

/// Parse a whole-token integer in [min, max].
long long parse_int(std::string_view flag, std::string_view text,
                    long long min, long long max);

/// Non-negative size with a lower bound (e.g. 1 for thread counts).
std::size_t parse_size(std::string_view flag, std::string_view text,
                       std::size_t min = 0);

/// Expand a "lo:hi:step" range spec into the inclusive grid
/// {lo, lo+step, ...}. Rejects malformed fields, step <= 0 (the old
/// expansion looped forever), hi < lo (silently empty before), and
/// ranges expanding past kMaxRangePoints.
std::vector<double> parse_range(std::string_view flag, std::string_view spec);

/// Largest grid parse_range will expand; beyond this the spec is almost
/// certainly a typo (e.g. a step in the wrong unit) and is refused.
inline constexpr std::size_t kMaxRangePoints = 1'000'000;

/// Parse a comma-separated list of finite doubles; rejects empty lists
/// and malformed elements.
std::vector<double> parse_double_list(std::string_view flag,
                                      std::string_view spec);

}  // namespace epp::util::cli
