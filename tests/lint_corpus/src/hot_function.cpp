// Corpus: EPP-HOT-002 — std::function construction on the hot path.
#include <functional>

#include "util/annotations.hpp"

namespace lint_corpus {

EPP_HOT_BEGIN(corpus_function);

inline int call_twice(int x) {
  const std::function<int(int)> f = [](int v) { return v + v; };
  return f(f(x));
}

EPP_HOT_END(corpus_function);

}  // namespace lint_corpus
