#include "core/evaluation.hpp"

#include <cmath>

#include "util/stats.hpp"

namespace epp::core {

std::vector<MeasuredPoint> measure_sweep(const sim::trade::ServerSpec& server,
                                         const std::vector<double>& clients,
                                         const SweepOptions& options,
                                         util::ThreadPool* pool) {
  std::vector<MeasuredPoint> points(clients.size());
  auto measure_one = [&](std::size_t i) {
    const auto n = static_cast<std::size_t>(std::llround(clients[i]));
    sim::trade::TestbedConfig config = sim::trade::mixed_workload(
        server, n, options.buy_client_fraction, options.seed + i);
    config.warmup_s = options.warmup_s;
    config.measure_s = options.measure_s;
    const sim::trade::RunResult result = sim::trade::run_testbed(config);
    points[i] = {static_cast<double>(n), result.mean_rt_s, result.p90_rt_s,
                 result.throughput_rps};
  };
  if (pool != nullptr) {
    pool->parallel_for(clients.size(), measure_one);
  } else {
    for (std::size_t i = 0; i < clients.size(); ++i) measure_one(i);
  }
  return points;
}

ReplicatedPoint measure_replicated(const sim::trade::ServerSpec& server,
                                   double clients, std::size_t replications,
                                   const SweepOptions& options,
                                   util::ThreadPool* pool) {
  if (replications == 0)
    throw std::invalid_argument("measure_replicated: zero replications");
  std::vector<MeasuredPoint> runs(replications);
  auto body = [&](std::size_t i) {
    SweepOptions opts = options;
    opts.seed = options.seed + 0x9E37 * (i + 1);  // disjoint streams
    runs[i] = measure_sweep(server, {clients}, opts, nullptr)[0];
  };
  if (pool != nullptr) {
    pool->parallel_for(replications, body);
  } else {
    for (std::size_t i = 0; i < replications; ++i) body(i);
  }
  util::OnlineStats rt, p90, x;
  for (const MeasuredPoint& r : runs) {
    rt.add(r.mean_rt_s);
    p90.add(r.p90_rt_s);
    x.add(r.throughput_rps);
  }
  ReplicatedPoint out;
  out.mean = {clients, rt.mean(), p90.mean(), x.mean()};
  out.rt_ci95_s = rt.ci95_halfwidth();
  out.throughput_ci95_rps = x.ci95_halfwidth();
  out.replications = replications;
  return out;
}

std::vector<hydra::DataPoint> to_data_points(
    const std::vector<MeasuredPoint>& points) {
  std::vector<hydra::DataPoint> out;
  out.reserve(points.size());
  for (const MeasuredPoint& p : points)
    out.push_back({p.clients, p.mean_rt_s, 50});
  return out;
}

std::vector<hydra::DataPoint> to_p90_data_points(
    const std::vector<MeasuredPoint>& points) {
  std::vector<hydra::DataPoint> out;
  out.reserve(points.size());
  for (const MeasuredPoint& p : points)
    out.push_back({p.clients, p.p90_rt_s, 50});
  return out;
}

TradeCalibration calibrate_lqn_from_testbed(std::uint64_t seed,
                                            util::ThreadPool* pool) {
  // "The per-request type parameters can be calibrated by taking an
  // established server offline and sending a workload consisting only of
  // that request type; the parameters are calculated from the resulting
  // throughput ... and the CPU usage of each server."  We run the browse
  // type and the buy service class (whose request stream aggregates to the
  // model's single buy entry) on AppServF at a load high enough for a
  // clean utilisation signal but below saturation.
  struct TypeRun {
    double buy_fraction;
    sim::trade::RunResult result;
  };
  std::vector<TypeRun> runs{{0.0, {}}, {1.0, {}}};
  auto run_one = [&](std::size_t i) {
    sim::trade::TestbedConfig config = sim::trade::mixed_workload(
        sim::trade::app_serv_f(), 800, runs[i].buy_fraction, seed + 1000 * i);
    config.warmup_s = 40.0;
    config.measure_s = 200.0;
    runs[i].result = sim::trade::run_testbed(config);
  };
  if (pool != nullptr) {
    pool->parallel_for(runs.size(), run_one);
  } else {
    for (std::size_t i = 0; i < runs.size(); ++i) run_one(i);
  }

  auto derive = [](const sim::trade::RunResult& r) {
    RequestTypeParams params;
    const double x = r.throughput_rps;
    params.app_demand_s = r.app_cpu_utilization / x;
    params.mean_db_calls = r.db_calls_per_request;
    const double calls_per_s = x * r.db_calls_per_request;
    params.db_cpu_per_call_s = r.db_cpu_utilization / calls_per_s;
    params.disk_per_call_s = r.disk_utilization / calls_per_s;
    return params;
  };
  TradeCalibration calibration;
  calibration.browse = derive(runs[0].result);
  calibration.buy = derive(runs[1].result);
  return calibration;
}

AccuracySummary accuracy_against(const Predictor& predictor,
                                 const std::string& server,
                                 const std::vector<MeasuredPoint>& measured,
                                 double buy_fraction, double think_time_s) {
  std::vector<double> rt_pred, rt_meas, x_pred, x_meas;
  for (const MeasuredPoint& p : measured) {
    WorkloadSpec workload;
    workload.buy_clients = p.clients * buy_fraction;
    workload.browse_clients = p.clients - workload.buy_clients;
    workload.think_time_s = think_time_s;
    rt_pred.push_back(predictor.predict_mean_rt_s(server, workload));
    rt_meas.push_back(p.mean_rt_s);
    x_pred.push_back(predictor.predict_throughput_rps(server, workload));
    x_meas.push_back(p.throughput_rps);
  }
  AccuracySummary summary;
  summary.mean_rt_pct = util::prediction_accuracy_percent(rt_pred, rt_meas);
  summary.throughput_pct = util::prediction_accuracy_percent(x_pred, x_meas);
  return summary;
}

}  // namespace epp::core
