#include "sim/trade/cluster.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace epp::sim::trade {
namespace {

ClusterConfig two_server_config(std::size_t clients_f, std::size_t clients_vf,
                                std::uint64_t seed = 5) {
  ClusterConfig config;
  config.servers = {app_serv_f(), app_serv_vf()};
  ClusterClassSpec browse;
  browse.name = "browse";
  browse.clients_per_server = {clients_f, clients_vf};
  config.classes.push_back(browse);
  config.warmup_s = 30.0;
  config.measure_s = 120.0;
  config.seed = seed;
  return config;
}

TEST(Cluster, ValidationRejectsBadConfigs) {
  ClusterConfig empty;
  EXPECT_THROW(run_cluster(empty), std::invalid_argument);
  ClusterConfig bad = two_server_config(10, 10);
  bad.classes[0].clients_per_server = {10};  // row/server mismatch
  EXPECT_THROW(run_cluster(bad), std::invalid_argument);
}

TEST(Cluster, LightLoadThroughputAdds) {
  const ClusterRunResult r = run_cluster(two_server_config(200, 300));
  EXPECT_NEAR(r.total_throughput_rps, 500.0 / 7.05, 3.5);
  EXPECT_EQ(r.per_class.at("browse").completions,
            r.per_bucket.at("browse@0").completions +
                r.per_bucket.at("browse@1").completions);
}

TEST(Cluster, PerServerBucketsTrackServerSpeed) {
  // Same load on both servers: the slower (F) responds slower than VF.
  const ClusterRunResult r = run_cluster(two_server_config(1200, 1200));
  EXPECT_GT(r.per_bucket.at("browse@0").mean_rt_s,
            r.per_bucket.at("browse@1").mean_rt_s);
  EXPECT_GT(r.app_cpu_utilization[0], r.app_cpu_utilization[1]);
}

TEST(Cluster, SaturatedServerCapsItsThroughput) {
  // Overload F, keep VF light: total ~= max_F + light VF contribution.
  const ClusterRunResult r = run_cluster(two_server_config(2400, 200));
  EXPECT_NEAR(r.total_throughput_rps, 186.0 + 200.0 / 7.05, 16.0);
  EXPECT_GT(r.app_cpu_utilization[0], 0.96);
  EXPECT_LT(r.app_cpu_utilization[1], 0.35);
}

TEST(Cluster, MatchesSingleServerTestbed) {
  // A one-server cluster must agree with the single-server testbed.
  ClusterConfig config;
  config.servers = {app_serv_f()};
  ClusterClassSpec browse;
  browse.name = "browse";
  browse.clients_per_server = {800};
  config.classes.push_back(browse);
  config.warmup_s = 30.0;
  config.measure_s = 120.0;
  config.seed = 9;
  const ClusterRunResult cluster = run_cluster(config);

  TestbedConfig single = typical_workload(app_serv_f(), 800, 10);
  single.warmup_s = 30.0;
  single.measure_s = 120.0;
  const RunResult testbed = run_testbed(single);
  EXPECT_NEAR(cluster.total_throughput_rps, testbed.throughput_rps,
              0.03 * testbed.throughput_rps);
  EXPECT_NEAR(cluster.per_class.at("browse").mean_rt_s, testbed.mean_rt_s,
              0.15 * testbed.mean_rt_s);
}

TEST(Cluster, MixedClassesPerServer) {
  ClusterConfig config;
  config.servers = {app_serv_f(), app_serv_vf()};
  ClusterClassSpec buy;
  buy.name = "buy";
  buy.type = UserType::kBuy;
  buy.clients_per_server = {150, 0};
  ClusterClassSpec browse;
  browse.name = "browse";
  browse.clients_per_server = {400, 900};
  config.classes = {buy, browse};
  config.warmup_s = 30.0;
  config.measure_s = 120.0;
  const ClusterRunResult r = run_cluster(config);
  EXPECT_GT(r.per_class.at("buy").completions, 0u);
  EXPECT_GT(r.per_class.at("buy").mean_rt_s,
            r.per_bucket.at("browse@1").mean_rt_s);
  EXPECT_EQ(r.per_bucket.count("buy@1"), 0u);  // none routed to VF
}

TEST(Cluster, DeterministicForFixedSeed) {
  const ClusterRunResult a = run_cluster(two_server_config(300, 300, 77));
  const ClusterRunResult b = run_cluster(two_server_config(300, 300, 77));
  EXPECT_DOUBLE_EQ(a.total_throughput_rps, b.total_throughput_rps);
  EXPECT_DOUBLE_EQ(a.per_class.at("browse").mean_rt_s,
                   b.per_class.at("browse").mean_rt_s);
}

TEST(Cluster, DbSharedAcrossServers) {
  // Both servers saturated: the shared DB sees the sum of their request
  // streams but stays under-utilised in the case-study regime.
  const ClusterRunResult r = run_cluster(two_server_config(2400, 4100));
  EXPECT_GT(r.total_throughput_rps, 450.0);
  EXPECT_LT(r.db_cpu_utilization, 0.75);
  EXPECT_GT(r.db_cpu_utilization, 0.25);
}

}  // namespace
}  // namespace epp::sim::trade
