// LRU session cache (paper section 7.2, "Modelling Caching").
//
// Models the "indirect" design in which per-client session data lives in
// the application server's main memory and persists to the database
// asynchronously. When a request arrives for a client whose session is not
// resident, the app server performs an extra DB call to read the session
// (a cache miss). Replacement is least-recently-used, exactly as the paper
// describes.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

namespace epp::sim::trade {

class SessionCache {
 public:
  /// capacity_bytes == 0 disables caching entirely (the Trade default where
  /// data is stored directly in the database and no session fetch occurs).
  explicit SessionCache(std::uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  bool enabled() const noexcept { return capacity_ != 0; }
  std::uint64_t capacity_bytes() const noexcept { return capacity_; }
  std::uint64_t used_bytes() const noexcept { return used_; }
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  double miss_ratio() const noexcept {
    const std::uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(misses_) / static_cast<double>(total);
  }

  /// Touch client's session of `bytes` size. Returns true on a hit. On a
  /// miss the session is inserted (evicting LRU entries as needed) and the
  /// caller must charge the extra DB fetch. A resident session whose size
  /// changed (e.g. growing portfolio) is resized in place.
  bool access(std::uint64_t client_id, std::uint64_t bytes);

  /// Drop a client's session (logoff).
  void invalidate(std::uint64_t client_id);

 private:
  /// Evict LRU entries until `bytes` more fit. When keep_front is set the
  /// most-recently-used entry (the session being actively used) survives
  /// even if capacity is still exceeded.
  void evict_until_fits(std::uint64_t bytes, bool keep_front);

  struct Entry {
    std::uint64_t client_id;
    std::uint64_t bytes;
  };

  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
};

}  // namespace epp::sim::trade
