// Thin RAII wrappers over POSIX TCP sockets for the serving stack.
//
// Scope is deliberately narrow: blocking stream sockets on loopback or
// LAN, the only transport epp_serve/epp_loadgen need. A Socket owns one
// connected fd and moves like a unique_ptr; send_all/recv_all loop over
// partial transfers and EINTR, send uses MSG_NOSIGNAL so a peer that
// hung up yields an error return instead of SIGPIPE. A Listener binds
// (port 0 picks an ephemeral port, reported by port()) and blocks in
// accept() on a poll() over the listening fd plus an internal wake pipe,
// so interrupt() unblocks a pending accept from any thread — that is the
// whole graceful-shutdown story at the socket layer.
//
// Hard I/O failures throw SocketError; orderly peer shutdown is a normal
// return (recv_all -> false), because a client closing its connection is
// not an error for a server.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

namespace epp::net {

/// Unexpected socket-layer failure (bind/listen/connect errors, hard
/// send/recv errors). Message carries the failing call and errno text.
struct SocketError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// A receive timed out (set_recv_timeout elapsed with no bytes). Its own
/// type so servers can tell an *idle* peer (close the session, count it)
/// from a *broken* one (protocol error). Catch before SocketError.
struct SocketTimeout : SocketError {
  using SocketError::SocketError;
};

/// One connected TCP stream. Move-only; closes on destruction.
class Socket {
 public:
  Socket() noexcept = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Blocking connect to host:port; throws SocketError on failure.
  static Socket connect(const std::string& host, std::uint16_t port);

  bool valid() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }

  /// Write exactly n bytes. Returns false when the peer has gone away
  /// (EPIPE / ECONNRESET); throws SocketError on other failures.
  bool send_all(const void* data, std::size_t n);
  /// Read exactly n bytes. Returns false on clean EOF *before the first
  /// byte*; throws SocketTimeout when an armed receive timeout elapses,
  /// SocketError on mid-message EOF or hard errors.
  bool recv_all(void* data, std::size_t n);

  /// Arm a receive timeout (SO_RCVTIMEO): a recv_all that waits longer
  /// than this throws SocketTimeout. seconds <= 0 disarms. A server uses
  /// this to bound how long a silent client can pin a reader thread.
  void set_recv_timeout(double seconds) noexcept;

  /// Half-close the write side (peer sees EOF after draining).
  void shutdown_write() noexcept;
  /// Half-close the read side; a reader blocked in recv_all returns EOF
  /// while pending writes (drained responses) still flush.
  void shutdown_read() noexcept;
  /// Shut down both directions; unblocks a recv_all parked in another
  /// thread (used to stop session readers during server drain).
  void shutdown_both() noexcept;
  /// Arm an abortive close: SO_LINGER{1,0} plus a full shutdown, so any
  /// reader parked on this socket unblocks now and the eventual close()
  /// (destructor) discards unsent data and fires an RST at the peer
  /// instead of an orderly FIN. The fd is NOT closed here — that would
  /// race a concurrent recv_all with kernel fd reuse. This is how the
  /// chaos harness simulates a connection reset; never use it on a
  /// healthy session.
  void reset() noexcept;
  void close() noexcept;

 private:
  int fd_ = -1;
};

/// A listening TCP socket with interruptible accept.
class Listener {
 public:
  /// Bind host:port (port 0 = ephemeral) and listen; throws SocketError.
  Listener(const std::string& host, std::uint16_t port, int backlog = 64);
  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// The bound port (resolves port 0 to the kernel's choice).
  std::uint16_t port() const noexcept { return port_; }

  /// Block until a connection arrives (Socket), interrupt() is called or
  /// the listener is closed (nullopt).
  std::optional<Socket> accept();

  /// Wake every blocked/future accept() into returning nullopt.
  /// Async-signal-safe (one write on the wake pipe).
  void interrupt() noexcept;

 private:
  int fd_ = -1;
  int wake_read_ = -1;
  int wake_write_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace epp::net
