#include "core/trade_model.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "core/errors.hpp"

namespace epp::core {

void lint_workload(const WorkloadSpec& workload,
                   const lint::SourceLocation& where,
                   lint::Diagnostics& diagnostics) {
  const std::size_t before = diagnostics.size();
  const auto bad_field = [](const std::string& what, double value) {
    return what + " = " + std::to_string(value);
  };
  if (!std::isfinite(workload.browse_clients) || workload.browse_clients < 0.0)
    diagnostics.error("EPP-WKL-001", where,
                      bad_field("browse_clients", workload.browse_clients),
                      "client counts must be finite and non-negative");
  if (!std::isfinite(workload.buy_clients) || workload.buy_clients < 0.0)
    diagnostics.error("EPP-WKL-001", where,
                      bad_field("buy_clients", workload.buy_clients),
                      "client counts must be finite and non-negative");
  if (!std::isfinite(workload.think_time_s) || workload.think_time_s < 0.0)
    diagnostics.error("EPP-WKL-002", where,
                      bad_field("think_time_s", workload.think_time_s),
                      "think time must be finite and non-negative");
  const double mix = workload.buy_fraction();
  if (mix < 0.0 || mix > 1.0)
    diagnostics.error("EPP-WKL-003", where, bad_field("buy_fraction", mix),
                      "buy fraction must lie within [0, 1]");
  if (diagnostics.size() != before) return;
  if (workload.total_clients() <= 0.0)
    diagnostics.warning("EPP-WKL-004", where,
                        "empty workload (zero clients)",
                        "give the cell a positive client population");
}

void validate_workload(const WorkloadSpec& workload) {
  lint::Diagnostics diagnostics;
  lint_workload(workload, {}, diagnostics);
  if (const lint::Diagnostic* first =
          diagnostics.first_at_least(lint::Severity::kError))
    throw InvalidWorkloadError("invalid workload: " + first->message);
}

ServerArch arch_s() { return {"AppServS", 86.0 / 186.0, 50, 20}; }
ServerArch arch_f() { return {"AppServF", 1.0, 50, 20}; }
ServerArch arch_vf() { return {"AppServVF", 320.0 / 186.0, 50, 20}; }

lqn::Model build_trade_lqn(const TradeCalibration& calibration,
                           const ServerArch& server,
                           const WorkloadSpec& workload) {
  if (workload.total_clients() <= 0.0)
    throw std::invalid_argument("build_trade_lqn: empty workload");

  lqn::Model model;

  const auto client_box = model.add_processor(
      {"client_box", lqn::Scheduling::kDelay, 1.0, 1});
  const auto app_cpu = model.add_processor(
      {"app_cpu", lqn::Scheduling::kProcessorSharing, server.speed, 1});
  const auto db_cpu = model.add_processor(
      {"db_cpu", lqn::Scheduling::kProcessorSharing, 1.0, 1});
  const auto db_disk =
      model.add_processor({"db_disk", lqn::Scheduling::kFifo, 1.0, 1});

  const auto app_task = model.add_task(
      lqn::make_server_task("app_server", app_cpu, server.app_concurrency));
  const auto db_task = model.add_task(
      lqn::make_server_task("database", db_cpu, server.db_concurrency));
  const auto disk_task = model.add_task(lqn::make_server_task("disk", db_disk));

  struct TypeEntries {
    lqn::EntryId app, db, disk;
  };
  auto add_type = [&](const std::string& prefix, const RequestTypeParams& p) {
    TypeEntries e{};
    e.app = model.add_entry({prefix + "_request", app_task, p.app_demand_s, {}});
    e.db = model.add_entry({prefix + "_db", db_task, p.db_cpu_per_call_s, {}});
    e.disk =
        model.add_entry({prefix + "_io", disk_task, p.disk_per_call_s, {}});
    model.add_call(e.app, e.db, p.mean_db_calls);
    model.add_call(e.db, e.disk, 1.0);
    return e;
  };
  const TypeEntries browse = add_type("browse", calibration.browse);
  const TypeEntries buy = add_type("buy", calibration.buy);

  auto add_class = [&](const std::string& name, double population,
                       lqn::EntryId target) {
    if (population <= 0.0) return;
    const auto task = model.add_task(lqn::make_closed_client_task(
        name, client_box, population, workload.think_time_s));
    const auto entry = model.add_entry({name + "_cycle", task, 0.0, {}});
    model.add_call(entry, target, 1.0);
  };
  add_class("browse_clients", workload.browse_clients, browse.app);
  add_class("buy_clients", workload.buy_clients, buy.app);

  return model;
}

}  // namespace epp::core
