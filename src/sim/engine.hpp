// Discrete-event simulation engine.
//
// A single-threaded engine built for million-client populations: the
// parallelism in EPP lives one level up (independent replications and
// parameter sweeps on util::ThreadPool, see sim/replicate.hpp), which is
// the standard way to scale stochastic discrete-event studies, so the
// engine itself optimises for single-core event throughput:
//
//   * Slab-allocated event pool. Events are POD records living in
//     fixed-size chunks with a LIFO free list — no per-event heap
//     allocation on the steady-state path, and canceled slots are
//     reclaimed eagerly (pending()/capacity() expose the accounting).
//   * Two-tier calendar/ladder queue. Near-future events hash into an
//     array of time buckets (the calendar year); only the bucket being
//     drained is kept as a binary heap, so inserts into future buckets
//     are O(1) amortised. Far-future events sit in an unsorted overflow
//     ladder and are redistributed when the calendar year wraps.
//   * Typed dispatch. The fast path schedules a plain function pointer
//     plus (ctx, arg) — zero type erasure. The old std::function
//     Callback API is kept as a thin compatibility shim (the callable is
//     constructed in the record's small payload buffer) so PsResource /
//     SessionCache / testbed callers migrate incrementally.
//   * Generation-checked integer handles. cancel() is O(1), idempotent,
//     and immune to slot reuse: a stale handle simply misses.
//
// Determinism: equal-time events run FIFO in schedule order (a global
// sequence number breaks ties), identical to the pre-refactor binary-heap
// engine — same seed, same schedule, bit-identical results. The frozen
// pre-refactor engine is kept as sim::LegacyEngine (legacy_engine.hpp)
// for benchmark comparison and determinism cross-checks.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

namespace epp::sim {

class Engine {
 public:
  /// Compatibility shim: type-erased callable API (see header comment).
  using Callback = std::function<void()>;
  /// Typed-dispatch trampoline — the zero-allocation steady-state path.
  using RawFn = void (*)(void* ctx, std::uint64_t arg);

  static constexpr std::uint32_t kNoSlot =
      std::numeric_limits<std::uint32_t>::max();

  /// Generation-checked event handle. Copyable value; a handle to an
  /// event that already fired or was canceled is harmless (cancel
  /// becomes a no-op), even if the slot has been reused since.
  struct Handle {
    std::uint32_t slot = kNoSlot;
    std::uint32_t gen = 0;
    constexpr explicit operator bool() const noexcept {
      return slot != kNoSlot;
    }
    void reset() noexcept { *this = Handle{}; }
  };

  Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  double now() const noexcept { return now_; }
  std::uint64_t events_processed() const noexcept { return processed_; }

  /// Schedule at an absolute time >= now() (must be finite). Returns a
  /// handle usable with cancel(); discard it if cancellation is not
  /// needed. These are the compatibility shim over schedule_raw_at.
  Handle schedule_at(double time, Callback fn);
  Handle schedule_after(double delay, Callback fn);

  /// Zero-allocation scheduling: `fn(ctx, arg)` runs at `time`.
  Handle schedule_raw_at(double time, RawFn fn, void* ctx,
                         std::uint64_t arg = 0);
  Handle schedule_raw_after(double delay, RawFn fn, void* ctx,
                            std::uint64_t arg = 0);

  /// Cancel a pending event. O(1): the slot is reclaimed eagerly (its
  /// queue entry goes stale and is skipped lazily). No-op if the event
  /// already fired, was already canceled, or the handle is empty.
  void cancel(Handle handle) noexcept;

  /// Run the next pending event. Returns false when nothing is pending.
  bool step();

  /// Process every live event with time <= end_time, then advance now()
  /// to end_time. Canceled events never extend the run: the loop is
  /// driven by peek_live_time(), so a canceled head beyond end_time (or
  /// in front of a later live event) cannot leak an out-of-window
  /// execution the way the old `heap_.top()->time` check could.
  void run_until(double end_time);

  /// Drain every pending event (useful for terminating workloads).
  void run_all();

  /// Time of the earliest *live* (non-canceled) pending event, or
  /// +infinity when none is pending. Purges stale queue heads as a side
  /// effect (amortised into scheduling cost).
  double peek_live_time();

  /// Live (scheduled, not yet fired or canceled) event count.
  std::size_t pending() const noexcept { return live_; }
  /// Total event slots owned by the slab (high-water mark of concurrent
  /// pending events, rounded up to whole chunks). Canceled slots are
  /// reused, so cancel-heavy workloads do not grow this.
  std::size_t capacity() const noexcept { return chunks_.size() * kChunkSize; }

 private:
  // ---- slab-allocated event pool ------------------------------------
  static constexpr std::size_t kChunkShift = 12;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;
  static constexpr std::size_t kChunkMask = kChunkSize - 1;

  struct Record {
    double time = 0.0;
    RawFn fn = nullptr;
    void* ctx = nullptr;
    std::uint64_t arg = 0;
    std::uint32_t gen = 0;  // bumped on every free; handles/entries match it
    bool has_callback = false;  // payload holds a live Callback
    alignas(Callback) unsigned char payload[sizeof(Callback)];
  };

  // ---- two-tier calendar / overflow ladder --------------------------
  struct QEntry {
    double time;
    std::uint64_t seq;  // global FIFO tie-break for equal times
    std::uint32_t slot;
    std::uint32_t gen;
  };
  // Min-heap order on (time, seq) via std::*_heap's max-heap primitives.
  struct EntryAfter {
    bool operator()(const QEntry& a, const QEntry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  Record& record(std::uint32_t slot) noexcept {
    return chunks_[slot >> kChunkShift][slot & kChunkMask];
  }
  const Record& record(std::uint32_t slot) const noexcept {
    return chunks_[slot >> kChunkShift][slot & kChunkMask];
  }

  std::uint32_t allocate_slot();
  void free_slot(std::uint32_t slot) noexcept;

  Handle schedule_impl(double time, RawFn fn, void* ctx, std::uint64_t arg,
                       Callback* callback);
  void insert(const QEntry& entry);
  /// Move to the next bucket with a live entry; caller guarantees
  /// live_ > 0. Wrapping past the last bucket starts a new calendar year
  /// (redistributing the overflow ladder, jumping idle years).
  void advance_bucket();
  void start_new_year();
  /// Re-bucket every live entry into `num_buckets` buckets sized for the
  /// current pending population (grow/shrink path).
  void rebuild(std::size_t num_buckets);
  std::vector<QEntry> drain_live_entries();

  double year_end() const noexcept {
    return year_start_ +
           static_cast<double>(buckets_.size()) * bucket_width_;
  }
  std::size_t bucket_index(double time) const noexcept;

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::size_t live_ = 0;

  std::vector<std::unique_ptr<Record[]>> chunks_;
  std::vector<std::uint32_t> free_slots_;

  std::vector<std::vector<QEntry>> buckets_;  // buckets_[cur_] is a heap
  std::vector<QEntry> overflow_;              // beyond the current year
  std::size_t cur_ = 0;
  double year_start_ = 0.0;
  double bucket_width_ = 1.0;
};

}  // namespace epp::sim
