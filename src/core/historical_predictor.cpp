#include "core/historical_predictor.hpp"

#include <stdexcept>
#include <utility>

namespace epp::core {

HistoricalPredictor::HistoricalPredictor(double gradient_m)
    : model_(gradient_m), p90_model_(gradient_m) {}

HistoricalPredictor::HistoricalPredictor(hydra::HistoricalModel model,
                                         hydra::HistoricalModel p90_model)
    : model_(std::move(model)), p90_model_(std::move(p90_model)) {
  if (model_.gradient_m() != p90_model_.gradient_m())
    throw std::invalid_argument(
        "HistoricalPredictor: mean and p90 models disagree on the gradient");
}

void HistoricalPredictor::calibrate_established_p90(
    const std::string& server, const std::vector<hydra::DataPoint>& lower,
    const std::vector<hydra::DataPoint>& upper, double max_throughput_rps) {
  p90_model_.add_established(server, lower, upper, max_throughput_rps);
}

void HistoricalPredictor::register_new_server_p90(const std::string& server,
                                                  double max_throughput_rps) {
  p90_model_.add_new_server(server, max_throughput_rps);
}

bool HistoricalPredictor::has_direct_p90(const std::string& server) const {
  return p90_model_.has_server(server);
}

double HistoricalPredictor::predict_p90_direct(const std::string& server,
                                               double clients) const {
  if (!has_direct_p90(server))
    throw std::logic_error("HistoricalPredictor: p90 model not calibrated for '" +
                           server + "'");
  return p90_model_.predict_metric(server, clients);
}

void HistoricalPredictor::calibrate_established(
    const std::string& server, const std::vector<hydra::DataPoint>& lower,
    const std::vector<hydra::DataPoint>& upper, double max_throughput_rps) {
  model_.add_established(server, lower, upper, max_throughput_rps);
}

void HistoricalPredictor::register_new_server(const std::string& server,
                                              double max_throughput_rps) {
  model_.add_new_server(server, max_throughput_rps);
}

void HistoricalPredictor::calibrate_mix(const std::vector<double>& buy_pct,
                                        const std::vector<double>& max_tput) {
  model_.calibrate_mix(buy_pct, max_tput);
}

hydra::Relationship1 HistoricalPredictor::rel1_for(const std::string& server,
                                                   double buy_fraction) const {
  if (buy_fraction <= 0.0) return model_.server(server);
  const double max_tput =
      model_.predict_max_throughput(server, 100.0 * buy_fraction);
  return model_.cross_server_fit().predict_for(max_tput, model_.gradient_m());
}

double HistoricalPredictor::predict_mean_rt_s(
    const std::string& server, const WorkloadSpec& workload) const {
  return rel1_for(server, workload.buy_fraction())
      .predict_metric(workload.total_clients());
}

double HistoricalPredictor::predict_throughput_rps(
    const std::string& server, const WorkloadSpec& workload) const {
  return rel1_for(server, workload.buy_fraction())
      .predict_throughput(workload.total_clients());
}

double HistoricalPredictor::predict_max_throughput_rps(
    const std::string& server, double buy_fraction) const {
  if (buy_fraction <= 0.0) return model_.server(server).max_throughput_rps;
  return model_.predict_max_throughput(server, 100.0 * buy_fraction);
}

bool HistoricalPredictor::predicts_saturated(
    const std::string& server, const WorkloadSpec& workload) const {
  const hydra::Relationship1 rel = rel1_for(server, workload.buy_fraction());
  return workload.total_clients() >= rel.clients_at_max_throughput();
}

CapacityResult HistoricalPredictor::max_clients_for_goal(
    const std::string& server, double goal_s, double buy_fraction,
    double /*think_time_s*/) const {
  CapacityResult result;
  result.prediction_evaluations = 1;  // a single closed-form inversion
  result.max_clients =
      rel1_for(server, buy_fraction).clients_for_metric(goal_s);
  return result;
}

}  // namespace epp::core
