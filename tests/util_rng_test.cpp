#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace epp::util {
namespace {

TEST(Rng, DeterministicForSameSeedAndStream) {
  Rng a(42, 7), b(42, 7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentStreamsDiffer) {
  Rng a(42, 0), b(42, 1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a() == b());
  EXPECT_LT(equal, 5);
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1, 0), b(2, 0);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a() == b());
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(123);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 9.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 9.0);
  }
}

TEST(Rng, BelowIsUnbiasedAcrossSmallRange) {
  Rng rng(99);
  std::vector<int> counts(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(10)];
  for (int c : counts) EXPECT_NEAR(c, kDraws / 10, kDraws / 10 * 0.15);
}

TEST(Rng, BelowZeroReturnsZero) {
  Rng rng(1);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(7);
  double sum = 0.0;
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) sum += rng.exponential(7.0);
  EXPECT_NEAR(sum / kDraws, 7.0, 0.1);
}

TEST(Rng, ExponentialNonPositiveMeanIsZero) {
  Rng rng(7);
  EXPECT_EQ(rng.exponential(0.0), 0.0);
  EXPECT_EQ(rng.exponential(-1.0), 0.0);
}

TEST(Rng, GeometricTrialsMeanMatches) {
  Rng rng(11);
  double sum = 0.0;
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i)
    sum += static_cast<double>(rng.geometric_trials(0.1));
  EXPECT_NEAR(sum / kDraws, 10.0, 0.2);
}

TEST(Rng, GeometricTrialsAtLeastOne) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) ASSERT_GE(rng.geometric_trials(0.9), 1u);
  EXPECT_EQ(rng.geometric_trials(1.0), 1u);
}

TEST(Rng, BernoulliFrequencyMatches) {
  Rng rng(17);
  int hits = 0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) hits += rng.bernoulli(0.14);
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.14, 0.01);
}

TEST(Rng, SpawnProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.spawn();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (parent() == child());
  EXPECT_LT(equal, 5);
}

}  // namespace
}  // namespace epp::util
