// Corpus: EPP-CONC-003 — sleeping while a lock is held.
#include <chrono>
#include <thread>

#include "util/annotations.hpp"
#include "util/lock_rank.hpp"

namespace lint_corpus {

inline epp::util::RankedMutex busy{EPP_LOCK_RANK(40), "corpus.busy"};

inline void nap_with_lock() {
  const epp::util::MutexLock lock(busy);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

}  // namespace lint_corpus
