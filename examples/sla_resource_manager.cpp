// SLA-driven resource management: run Algorithm 1 over the paper's
// 16-server pool, inspect the allocation it produces, and tune the slack
// knob — an end-to-end tour of epp::rm on top of the prediction stack.
// The planning model (hybrid) and the ground-truth stand-in (historical)
// both come from one calibration bundle, cold-calibrated or warm-loaded.
//
// Usage: sla_resource_manager [--bundle FILE] [--save-bundle FILE]
#include <exception>
#include <iostream>

#include "calib/bundle.hpp"
#include "calib/predictor_set.hpp"
#include "rm/manager.hpp"
#include "rm/runtime.hpp"
#include "rm/tuning.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) try {
  using namespace epp;
  const calib::ArtifactCli artifact = calib::parse_artifact_flags(argc, argv);
  std::cout << "EPP resource manager demo: 16 servers, 3 SLA classes\n\n";
  util::ThreadPool pool;

  // One bundle feeds both sides of the paper's section-9 study: the hybrid
  // planner and the measurement-calibrated historical "truth".
  calib::CalibrationOptions options;
  options.pool = &pool;
  const calib::CalibrationBundle bundle =
      calib::acquire_bundle(artifact, options);
  const calib::PredictorSet set = calib::make_predictors(bundle);
  core::HybridPredictor& planner = *set.hybrid;
  core::HistoricalPredictor& truth = *set.historical;

  // One allocation in detail.
  const auto pool_servers =
      rm::standard_pool(bundle.max_throughput("AppServS"),
                        bundle.max_throughput("AppServF"),
                        bundle.max_throughput("AppServVF"));
  const auto classes = rm::standard_classes(9000.0);
  const rm::ResourceManager manager(planner, {1.1, 7.0, 1.0});
  const rm::Allocation allocation = manager.allocate(classes, pool_servers);

  std::cout << "-- allocation at 9000 clients, slack 1.1 --\n";
  util::Table alloc({"server", "arch", "buy", "browse_high", "browse_low"});
  for (std::size_t i = 0; i < pool_servers.size(); ++i) {
    if (!allocation.server_used(i)) continue;
    auto cell = [&](const char* cls) {
      const auto it = allocation.per_server[i].find(cls);
      return it == allocation.per_server[i].end() ? std::string("0")
                                                  : util::fmt(it->second, 0);
    };
    alloc.add_row({std::to_string(i), pool_servers[i].arch, cell("buy"),
                   cell("browse_high"), cell("browse_low")});
  }
  alloc.print(std::cout);
  std::cout << "prediction evaluations: " << allocation.prediction_evaluations
            << ", unallocated (scaled): "
            << util::fmt(allocation.unallocated_scaled, 0) << "\n\n";

  const rm::RuntimeOutcome outcome =
      rm::evaluate_runtime(allocation, classes, pool_servers, truth, {});
  std::cout << "runtime outcome: " << util::fmt(outcome.sla_failure_pct, 2)
            << "% SLA failures, " << util::fmt(outcome.server_usage_pct, 1)
            << "% server usage, " << outcome.servers_used << " servers used\n\n";

  // Slack tuning summary.
  rm::TuningConfig config;
  config.planner = &planner;
  config.truth = &truth;
  config.pool = pool_servers;
  for (double load = 2000.0; load <= 18000.0; load += 2000.0)
    config.loads.push_back(load);
  std::cout << "-- slack tuning (averages across loads below 100% usage) --\n";
  util::Table tune({"slack", "avg_sla_failure_pct", "avg_server_usage_pct"});
  for (double slack : {1.2, 1.1, 1.0, 0.9, 0.8}) {
    const auto points = rm::sweep_slack(config, {slack}, 0.0, &pool);
    tune.add_row({util::fmt(slack, 1),
                  util::fmt(points[0].avg_sla_failure_pct, 2),
                  util::fmt(points[0].avg_server_usage_pct, 1)});
  }
  tune.print(std::cout);
  return 0;
} catch (const std::exception& error) {
  std::cerr << "sla_resource_manager: " << error.what()
            << "\nusage: sla_resource_manager [--bundle FILE] "
               "[--save-bundle FILE]\n";
  return 1;
}
