// The epp_verify semantic verifier: interval abstract interpretation over
// the paper's fitted models — the layer above epp_lint in the artifact
// pre-flight. Lint (lint.hpp) proves an artifact is *structurally* sound;
// the EPP-SEM rules here prove it is *semantically* sane: the prediction
// curves it encodes stay non-negative and monotone, the layered solver it
// will be fed can converge, and every request a serving configuration can
// receive has a terminating fallback chain.
//
// Every curve rule is decided with the outward-rounded interval domain in
// interval.hpp: a property is either proven over the whole client range,
// or refuted with a concrete witness load carried into the fix-it hint.
// Undecided (budget-exhausted) queries are never flagged — the verifier
// only reports what it can demonstrate.
//
// Rule catalog (severity in parentheses):
//
//   HYDRA curve analyzer — per server, per embedded model (mean and p90),
//   on the *raw* piecewise equations the artifact persists (the runtime
//   clamps in Relationship1::predict_metric can mask these defects, which
//   is exactly why they must be caught before serving):
//   EPP-SEM-001 (error)   a prediction piece goes negative on its active
//                         range (witness client count)
//   EPP-SEM-002 (error)   degenerate transition band: lower(66%) or
//                         upper(110%) endpoint is non-positive, so the
//                         paper's phased transition is undefined and the
//                         curve discontinuous at the boundary
//   EPP-SEM-003 (warning) curve not monotone across the transition band:
//                         upper(110%) < lower(66%) (witness pair)
//   EPP-SEM-004 (warning) relationship-3 mix fit predicts a non-positive
//                         max throughput within buy = [0, 100]%
//   EPP-SEM-005 (warning) relationship-2 extrapolation breaks down at a
//                         sampled hypothetical max throughput (raw
//                         c_lower fit non-positive pre-clamp, or the
//                         derived curve fails the 001/002/003 checks)
//
//   LQN convergence pre-checker (today these surface only at runtime, as
//   a std::domain_error from the MVA core or a SolverDivergedError /
//   converged=false from the layered solver):
//   EPP-SEM-010 (error)   open arrivals saturate a station (utilization
//                         >= 1 after the solver's own flattening)
//   EPP-SEM-011 (error)   priority starvation with finite-pool feedback:
//                         contraction estimate >= 1, the layered
//                         fixed point will not converge
//   EPP-SEM-012 (warning) contraction estimate in [0.5, 1): convergence
//                         at risk (slow, or divergent near the boundary)
//
//   Fallback-chain coverage over ResilientPredictor configurations:
//   EPP-SEM-020 (error)   a (method, server) request has no viable method
//                         anywhere in its fallback chain
//   EPP-SEM-021 (warning) chain with a single viable method while circuit
//                         breaking is armed and the stale store disabled:
//                         one open breaker dead-ends the chain
//
// The clean contract mirrors lint's: every artifact the calibration
// pipeline produces must verify with zero findings under default options
// (pinned by tests/lint_verify_test.cpp against the golden corpus).
#pragma once

#include <string>
#include <vector>

#include "calib/bundle.hpp"
#include "lint/diagnostic.hpp"
#include "lint/lint.hpp"
#include "lqn/model.hpp"
#include "svc/prediction_cache.hpp"
#include "svc/resilient.hpp"

namespace epp::lint {

struct VerifyOptions {
  /// Client range verified per server: [0, factor * clients-at-max-
  /// throughput]. 2.0 covers the paper's whole operating envelope (the
  /// upper equation's region plus headroom past the 110% boundary).
  double max_clients_factor = 2.0;
  /// Relationship-2 spot checks: this many hypothetical max throughputs,
  /// evenly spaced over [0.5 * smallest, hypothetical_span * largest]
  /// catalog max throughput — the range add_new_server may be asked to
  /// extrapolate into.
  int hypothetical_samples = 7;
  double hypothetical_span = 1.5;
  /// Serving configuration the chain analyzer proves coverage for. Tools
  /// pass their real options; the defaults match ResilienceOptions.
  svc::ResilienceOptions resilience;
  /// Methods requests may ask for (empty = all three).
  std::vector<svc::Method> methods;
  bool check_chains = true;
};

/// HYDRA curve rules (EPP-SEM-001..005) over one parsed bundle. `info`
/// (optional) locates findings on the embedded model's source lines.
void verify_hydra_curves(const calib::CalibrationBundle& bundle,
                         const std::string& file,
                         const calib::BundleParseInfo* info,
                         const VerifyOptions& options,
                         Diagnostics& diagnostics);

/// Fallback-chain rules (EPP-SEM-020/021) over one parsed bundle under
/// the configured serving options.
void verify_fallback_chains(const calib::CalibrationBundle& bundle,
                            const std::string& file,
                            const calib::BundleParseInfo* info,
                            const VerifyOptions& options,
                            Diagnostics& diagnostics);

/// Every bundle-level semantic rule (curves + chains).
void verify_bundle(const calib::CalibrationBundle& bundle,
                   const std::string& file,
                   const calib::BundleParseInfo* info,
                   const VerifyOptions& options, Diagnostics& diagnostics);

/// LQN convergence pre-check (EPP-SEM-010..012) on a parsed model. The
/// model must already be lint-clean (structurally valid); `index` lets
/// findings point at declaring lines.
void verify_lqn_model(const lqn::Model& model, const std::string& file,
                      Diagnostics& diagnostics,
                      const LqnSourceIndex* index = nullptr);

/// Full pre-flight on one artifact file: lint first (all of
/// lint_artifact_file's findings), then — only when lint found no errors
/// — the semantic EPP-SEM rules for the artifact's kind. Workload grids
/// and fault specs have no semantic layer; they get lint only.
void verify_artifact_file(const std::string& path,
                          const VerifyOptions& options,
                          Diagnostics& diagnostics);

}  // namespace epp::lint
