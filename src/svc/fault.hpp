// Deterministic fault injection at the prediction boundary.
//
// Resilience policies (retry, fallback, circuit breaking, deadlines) are
// impossible to test reliably against real failures — a flaky simulator
// run or a sleep-based latency spike makes every test timing-sensitive.
// The FaultInjector replaces both with *seeded, counter-based* streams:
// the n-th evaluation of a (method, server) pair fails (or is assessed a
// virtual latency) as a pure function of (seed, method, server, n), so a
// test run reproduces the exact same fault sequence every time, on every
// platform, regardless of wall-clock speed.
//
// Two independent streams per (method, server) pair:
//   * failure stream — should_fail() throws the decision for transient
//     faults; the batch engine converts a hit into an InjectedFault.
//   * latency stream — injected_latency_s() returns *virtual* seconds the
//     serving layer adds to a request's elapsed time before deadline
//     checks. No thread ever sleeps, so deadline tests are deterministic.
//
// Spec grammar (the epp_sweep/epp_serve --fault-spec flag):
//   spec    := clause (';' clause)*
//   clause  := target ':' knob (',' knob)*
//   target  := 'historical' | 'lqn' | 'hybrid' | '*' | 'net'
//   knob    := 'fail=' P | 'latency-ms=' MS          (method targets)
//            | 'reset=' P | 'truncate=' P            (net target)
//            | 'accept-reset=' P | 'accept-delay-ms=' MS
//            | 'dribble-ms=' MS
// e.g. "lqn:fail=0.3,latency-ms=20;net:reset=0.05,dribble-ms=2". The '*'
// target expands to all three methods (never to 'net'); assigning the
// same knob to the same target twice (directly or through '*') is
// rejected — the old grammar silently kept the last assignment, which
// made overlapping specs order-dependent. Method knobs on the net target
// (and vice versa) are a domain-mismatch error, not a silent no-op.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "lint/diagnostic.hpp"
#include "net/chaos.hpp"
#include "svc/prediction_cache.hpp"
#include "util/annotations.hpp"
#include "util/lock_rank.hpp"

namespace epp::svc {

/// Thrown by the batch engine when the injector fails an evaluation.
/// Transient by construction: a retry draws the next sample of the
/// failure stream, which may pass.
struct InjectedFault : std::runtime_error {
  InjectedFault(Method method_, const std::string& server_)
      : std::runtime_error("injected fault: " +
                           std::string(method_name(method_)) + " on '" +
                           server_ + "'"),
        method(method_),
        server(server_) {}
  Method method;
  std::string server;
};

/// Injection rates for one method (on every server).
struct MethodFaults {
  double fail_probability = 0.0;  // transient-failure chance per evaluation
  double latency_s = 0.0;         // virtual latency per evaluation
};

struct FaultConfig {
  MethodFaults historical;
  MethodFaults lqn;
  MethodFaults hybrid;
  net::ChaosConfig net;  // wire-level chaos; consumed by the serving tier

  const MethodFaults& for_method(Method method) const;
  MethodFaults& for_method(Method method);
  /// True when any *method* fault is configured. Deliberately excludes
  /// the net chaos rates: the FaultInjector only drives predictor
  /// evaluations, and resilience policies must not change shape because
  /// the wire is chaotic. Ask `net.any()` for that.
  bool any() const noexcept;
};

/// Rule-coded fault-spec lint (the EPP-FLT-* rules): parse `spec`,
/// appending every finding to `diagnostics` at `where` and skipping the
/// offending clause. This is the single source of truth for the grammar;
/// parse_fault_spec and tools/epp_lint both run it.
///   EPP-FLT-001 (error) malformed clause or knob shape
///   EPP-FLT-002 (error) unknown target or knob name
///   EPP-FLT-003 (error) knob value out of range (non-numeric,
///                       non-finite, negative, probability > 1)
///   EPP-FLT-004 (error) duplicate knob assignment for a target
///                       (directly or through the '*' target)
///   EPP-FLT-005 (error) target/knob domain mismatch (net knob on a
///                       method target, or method knob on 'net')
///   EPP-FLT-006 (warn)  implausibly aggressive chaos — combined
///                       reset+truncate or accept-reset rates so high
///                       the harness cannot complete a run
FaultConfig lint_fault_spec(const std::string& spec,
                            const lint::SourceLocation& where,
                            lint::Diagnostics& diagnostics);

/// Parse the --fault-spec grammar above; throws std::invalid_argument
/// with the first lint_fault_spec finding on malformed input.
FaultConfig parse_fault_spec(const std::string& spec);

class FaultInjector {
 public:
  /// Callers supply the seed (tools use calib::kFaultInjectionSeed so the
  /// stream is provenanced alongside the calibration seeds).
  explicit FaultInjector(FaultConfig config,
                         std::uint64_t seed = 0xFA17ED5EEDULL);

  /// Draw the next failure decision for the pair. Thread-safe; each pair's
  /// stream is its own counter, so concurrency elsewhere cannot perturb a
  /// pair's sequence.
  bool should_fail(Method method, const std::string& server) const;

  /// Draw the next virtual-latency sample for the pair (seconds).
  double injected_latency_s(Method method, const std::string& server) const;

  /// Master switch (e.g. "chaos off" while a test heals a breaker).
  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  const FaultConfig& config() const noexcept { return config_; }
  std::uint64_t seed() const noexcept { return seed_; }

  /// Totals across all pairs.
  std::uint64_t decisions() const noexcept {
    return decisions_.load(std::memory_order_relaxed);
  }
  std::uint64_t injected_failures() const noexcept {
    return failures_.load(std::memory_order_relaxed);
  }

 private:
  struct Streams {
    std::atomic<std::uint64_t> fail_draws{0};
    std::atomic<std::uint64_t> latency_draws{0};
  };

  Streams& streams_for(Method method, const std::string& server) const;

  FaultConfig config_;
  std::uint64_t seed_;
  std::atomic<bool> enabled_{true};
  mutable std::atomic<std::uint64_t> decisions_{0};
  mutable std::atomic<std::uint64_t> failures_{0};
  mutable util::RankedMutex mutex_{EPP_LOCK_RANK(80),
                                 "svc.fault.streams"};  // guards the map, not the counters
  mutable std::map<std::pair<int, std::string>, std::unique_ptr<Streams>>
      streams_;
};

}  // namespace epp::svc
