#include "sim/metrics.hpp"

#include <stdexcept>

namespace epp::sim {

void MetricsCollector::record(const std::string& service_class,
                              double issue_time, double completion_time) {
  if (completion_time < issue_time)
    throw std::invalid_argument("MetricsCollector: completion before issue");
  // Filter on completion time: at saturation a request's queueing delay is
  // large, and filtering on issue time would silently exclude the last
  // ~response-time seconds of the measurement window from the throughput
  // count (undercounting max throughput by R/window).
  if (completion_time < warmup_time_) return;
  const double rt = completion_time - issue_time;
  per_class_[service_class].add(rt);
  all_.add(rt);
  ++total_completions_;
}

std::size_t MetricsCollector::class_handle(const std::string& service_class) {
  handles_.push_back(&per_class_[service_class]);  // map nodes are stable
  return handles_.size() - 1;
}

void MetricsCollector::record(std::size_t handle, double issue_time,
                              double completion_time) {
  if (completion_time < issue_time)
    throw std::invalid_argument("MetricsCollector: completion before issue");
  if (completion_time < warmup_time_) return;
  const double rt = completion_time - issue_time;
  handles_[handle]->add(rt);
  all_.add(rt);
  ++total_completions_;
}

std::size_t MetricsCollector::completions(
    const std::string& service_class) const {
  const auto it = per_class_.find(service_class);
  return it == per_class_.end() ? 0 : it->second.count();
}

double MetricsCollector::mean_response_time(
    const std::string& service_class) const {
  const auto it = per_class_.find(service_class);
  return it == per_class_.end() ? 0.0 : it->second.mean();
}

double MetricsCollector::mean_response_time() const { return all_.mean(); }

double MetricsCollector::response_time_quantile(
    const std::string& service_class, double q) const {
  const auto it = per_class_.find(service_class);
  return it == per_class_.end() ? 0.0 : it->second.quantile(q);
}

double MetricsCollector::response_time_quantile(double q) const {
  return all_.quantile(q);
}

double MetricsCollector::throughput(double now) const {
  const double window = now - warmup_time_;
  if (window <= 0.0) return 0.0;
  return static_cast<double>(total_completions_) / window;
}

double MetricsCollector::throughput(const std::string& service_class,
                                    double now) const {
  const double window = now - warmup_time_;
  if (window <= 0.0) return 0.0;
  return static_cast<double>(completions(service_class)) / window;
}

const util::SampleSet& MetricsCollector::samples(
    const std::string& service_class) const {
  static const util::SampleSet kEmpty;
  const auto it = per_class_.find(service_class);
  return it == per_class_.end() ? kEmpty : it->second;
}

std::vector<std::string> MetricsCollector::service_classes() const {
  std::vector<std::string> names;
  names.reserve(per_class_.size());
  for (const auto& [name, _] : per_class_) names.push_back(name);
  return names;
}

}  // namespace epp::sim
