// epp_lint — static analysis for pipeline artifacts.
//
//   epp_lint [--json] [--fault-spec SPEC]... FILE...
//
// FILEs are `.epp` calibration bundles or `.lqn` model files (sniffed by
// extension, then content). --fault-spec lints a fault-injection spec
// string in place of a file. Findings print to stdout in a compiler-
// style "file:line: severity: [RULE] message" format, or as a JSON
// array with --json (for CI artifact upload).
//
// Exit code is the maximum severity found: 0 clean or notes only,
// 1 warnings, 2 errors — so `epp_lint artifact.epp && epp_sweep ...`
// gates a run the way a compiler gates a build. Usage errors exit 2.

#include <cstdio>
#include <string>
#include <vector>

#include "lint/diagnostic.hpp"
#include "lint/lint.hpp"
#include "svc/fault.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--json] [--fault-spec SPEC]... FILE...\n"
               "  FILEs: .epp calibration bundles or .lqn model files\n"
               "  --fault-spec SPEC  lint a fault-injection spec string\n"
               "  --json             machine-readable findings on stdout\n"
               "exit code: 0 clean/notes, 1 warnings, 2 errors\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::vector<std::string> files;
  std::vector<std::string> fault_specs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--fault-spec") {
      if (++i >= argc) return usage(argv[0]);
      fault_specs.emplace_back(argv[i]);
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return usage(argv[0]);
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty() && fault_specs.empty()) return usage(argv[0]);

  epp::lint::Diagnostics diagnostics;
  for (const std::string& file : files)
    epp::lint::lint_artifact_file(file, diagnostics);
  for (const std::string& spec : fault_specs)
    epp::svc::lint_fault_spec(spec, {"<fault-spec>", 0}, diagnostics);
  diagnostics.sort_by_location();

  if (json) {
    std::fputs(epp::lint::render_json(diagnostics).c_str(), stdout);
    std::fputc('\n', stdout);
  } else if (diagnostics.empty()) {
    std::printf("clean: %zu artifact(s), no findings\n",
                files.size() + fault_specs.size());
  } else {
    std::fputs(epp::lint::render_text(diagnostics).c_str(), stdout);
  }
  return epp::lint::exit_code(diagnostics);
}
