// BundleRegistry: the gated hot-swap promotion path. Covers the EPP-SEM
// gate (semantically broken candidates rejected, incumbent untouched —
// the automatic-rollback contract), explicit rollback from bounded
// history, refcounted version lifetime, and the end-to-end hot-swap
// scenario: a server under sustained load swaps bundles mid-flight with
// zero dropped in-flight requests and no response ever mixing
// relationships across versions.
#include "serve/registry.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "calib/bundle.hpp"
#include "lint/diagnostic.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "serve/server.hpp"
#include "svc/resilient.hpp"

namespace epp::serve {
namespace {

calib::CalibrationBundle corpus(const char* relative) {
  return calib::load_bundle(std::string(EPP_LINT_CORPUS_DIR) + "/" + relative);
}

/// The clean golden artifact: must pass the gate.
calib::CalibrationBundle clean_bundle() { return corpus("clean/trade.epp"); }

/// Structurally valid but semantically broken (EPP-SEM-001: a curve
/// piece goes negative): must be *rejected* by the gate.
calib::CalibrationBundle broken_bundle() {
  return corpus("semantic/negative_upper.epp");
}

// ---------------------------------------------------------------------------
// Promotion and the gate.
// ---------------------------------------------------------------------------

TEST(BundleRegistry, StartsEmptyAndPromotesTheFirstCandidate) {
  BundleRegistry registry;
  EXPECT_EQ(registry.active(), nullptr);
  EXPECT_EQ(registry.active_version(), 0u);

  const PromotionResult result = registry.promote(clean_bundle(), "trade.epp");
  ASSERT_TRUE(result.accepted) << result.message;
  EXPECT_EQ(result.active_version, 1u);
  EXPECT_FALSE(result.findings.has_errors());

  const auto active = registry.active();
  ASSERT_NE(active, nullptr);
  EXPECT_EQ(active->version, 1u);
  EXPECT_EQ(active->source, "trade.epp");
  ASSERT_NE(active->resilient, nullptr);
  EXPECT_EQ(registry.stats().promotions, 1u);
}

TEST(BundleRegistry, GateRejectsSemanticallyBrokenCandidate) {
  // The heart of the reload safety story: a candidate that *parses* but
  // encodes a negative prediction curve must never reach serving. The
  // incumbent keeps answering — rejection IS the rollback.
  BundleRegistry registry;
  ASSERT_TRUE(registry.promote(clean_bundle(), "v1").accepted);
  const auto incumbent = registry.active();

  const PromotionResult result =
      registry.promote(broken_bundle(), "refit/bad.epp");
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.active_version, 1u);
  EXPECT_TRUE(result.findings.has_errors());
  EXPECT_NE(result.message.find("rejected by the EPP-SEM gate"),
            std::string::npos)
      << result.message;
  bool saw_curve_rule = false;
  for (const lint::Diagnostic& finding : result.findings.all())
    if (finding.rule.rfind("EPP-SEM-00", 0) == 0) saw_curve_rule = true;
  EXPECT_TRUE(saw_curve_rule) << "rejection did not cite a curve rule";

  // Identical active version object: the swap never happened.
  EXPECT_EQ(registry.active(), incumbent);
  const RegistryStats stats = registry.stats();
  EXPECT_EQ(stats.promotions, 1u);
  EXPECT_EQ(stats.rejections, 1u);
  EXPECT_EQ(stats.active_version, 1u);
}

TEST(BundleRegistry, GateOffPromotesWhatTheGateWouldReject) {
  // The escape hatch for tests (and only tests): with the gate disabled
  // the same broken candidate swaps in. Documents that the *gate* is
  // what stands between a bad refit and production.
  RegistryOptions options;
  options.gate = false;
  BundleRegistry registry(options);
  const PromotionResult result = registry.promote(broken_bundle(), "bad");
  EXPECT_TRUE(result.accepted) << result.message;
  EXPECT_EQ(registry.active_version(), 1u);
}

TEST(BundleRegistry, RejectionBeforeFirstPromotionLeavesNothingActive) {
  BundleRegistry registry;
  const PromotionResult result = registry.promote(broken_bundle(), "bad");
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.active_version, 0u);
  EXPECT_EQ(registry.active(), nullptr);
}

// ---------------------------------------------------------------------------
// Rollback and history.
// ---------------------------------------------------------------------------

TEST(BundleRegistry, RollbackRestoresTheSupersededVersion) {
  BundleRegistry registry;
  ASSERT_TRUE(registry.promote(clean_bundle(), "v1").accepted);
  ASSERT_TRUE(registry.promote(clean_bundle(), "v2").accepted);
  EXPECT_EQ(registry.active_version(), 2u);

  ASSERT_TRUE(registry.rollback());
  EXPECT_EQ(registry.active_version(), 1u);
  EXPECT_EQ(registry.active()->source, "v1");
  EXPECT_EQ(registry.stats().rollbacks, 1u);

  // History is consumed: nothing older remains.
  EXPECT_FALSE(registry.rollback());
}

TEST(BundleRegistry, HistoryIsBoundedByKeepHistory) {
  RegistryOptions options;
  options.keep_history = 2;
  BundleRegistry registry(options);
  for (int i = 1; i <= 4; ++i)
    ASSERT_TRUE(
        registry.promote(clean_bundle(), "v" + std::to_string(i)).accepted);
  // Versions 2 and 3 are retained; version 1 aged out.
  ASSERT_TRUE(registry.rollback());
  EXPECT_EQ(registry.active_version(), 3u);
  ASSERT_TRUE(registry.rollback());
  EXPECT_EQ(registry.active_version(), 2u);
  EXPECT_FALSE(registry.rollback());
}

TEST(BundleRegistry, PinsKeepSupersededVersionsAlive) {
  RegistryOptions options;
  options.keep_history = 0;  // registry itself retains nothing
  BundleRegistry registry(options);
  ASSERT_TRUE(registry.promote(clean_bundle(), "v1").accepted);
  const std::shared_ptr<const ServingVersion> pin = registry.active();
  ASSERT_TRUE(registry.promote(clean_bundle(), "v2").accepted);
  // The in-flight pin still holds a fully working version 1.
  EXPECT_EQ(pin->version, 1u);
  ASSERT_NE(pin->resilient, nullptr);
  EXPECT_EQ(registry.active_version(), 2u);
}

// ---------------------------------------------------------------------------
// Hot swap under live load: the acceptance scenario.
// ---------------------------------------------------------------------------

net::RequestMessage lqn_predict(std::uint64_t id, double clients) {
  net::RequestMessage request;
  request.kind = net::MessageKind::kPredict;
  request.id = id;
  request.method = static_cast<std::uint8_t>(svc::Method::kLqn);
  request.browse_clients = clients;
  request.server = "AppServF";
  return request;
}

std::optional<net::ResponseMessage> receive(net::Socket& socket) {
  std::vector<std::uint8_t> payload;
  if (!net::read_frame(socket, payload)) return std::nullopt;
  return net::decode_response(payload);
}

TEST(BundleRegistry, HotSwapUnderLoadPinsVersionsAndDropsNothing) {
  // Two gate-clean bundles whose LQN relationships disagree (the second
  // doubles the app-server CPU demand, so every kLqn mean RT moves).
  // Pipeline a burst against version 1, promote version 2 while that
  // burst is still queued behind a slow worker, then pipeline a second
  // burst. Every request must be answered (zero dropped in-flight), the
  // first burst must be served *entirely* by version 1's relationships
  // even though version 2 was active when most of it was evaluated, and
  // the second burst entirely by version 2's — no response may ever mix
  // a version number with the other version's prediction.
  calib::CalibrationBundle slow = clean_bundle();
  slow.lqn.browse.app_demand_s *= 2.0;
  slow.lqn.buy.app_demand_s *= 2.0;

  BundleRegistry registry;
  ASSERT_TRUE(registry.promote(clean_bundle(), "fast").accepted);

  ServerOptions options;
  options.workers = 1;
  options.worker_delay_s = 0.01;  // keep the first burst in flight
  PredictionServer server(registry, options);
  server.start();
  net::Socket client = net::Socket::connect("127.0.0.1", server.port());

  constexpr std::uint64_t kBurst = 10;
  constexpr double kClients = 480.0;

  // Reference prediction from version 1 (first response, same workload).
  ASSERT_TRUE(
      net::write_frame(client, net::encode_request(lqn_predict(1, kClients))));
  const auto reference = receive(client);
  ASSERT_TRUE(reference.has_value());
  ASSERT_TRUE(reference->ok()) << reference->detail;
  ASSERT_EQ(reference->bundle_version, 1u);
  const double v1_rt = reference->mean_rt_s;

  // Burst 1: admitted (and version-pinned) before the swap...
  for (std::uint64_t id = 2; id <= 1 + kBurst; ++id)
    ASSERT_TRUE(net::write_frame(client,
                                 net::encode_request(lqn_predict(id, kClients))));
  // ... give the reader time to admit everything (admission is instant;
  // the slow worker is what keeps the burst in flight) ...
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // ... then promote mid-flight.
  ASSERT_TRUE(registry.promote(std::move(slow), "slow").accepted);
  EXPECT_EQ(registry.active_version(), 2u);

  // Burst 2: admitted strictly after the swap.
  for (std::uint64_t id = 100; id < 100 + kBurst; ++id)
    ASSERT_TRUE(net::write_frame(client,
                                 net::encode_request(lqn_predict(id, kClients))));

  std::map<std::uint64_t, net::ResponseMessage> responses;
  for (std::uint64_t i = 0; i < 2 * kBurst; ++i) {
    const auto response = receive(client);
    ASSERT_TRUE(response.has_value()) << "response " << i << " dropped";
    responses.emplace(response->id, *response);
  }
  ASSERT_EQ(responses.size(), 2 * kBurst) << "in-flight requests were dropped";

  double v2_rt = 0.0;
  for (const auto& [id, response] : responses) {
    ASSERT_TRUE(response.ok()) << id << ": " << response.detail;
    if (id <= 1 + kBurst) {
      EXPECT_EQ(response.bundle_version, 1u) << id;
      EXPECT_EQ(response.mean_rt_s, v1_rt)
          << "request " << id << " pinned to v1 answered with foreign "
          << "relationships";
    } else {
      EXPECT_EQ(response.bundle_version, 2u) << id;
      if (v2_rt == 0.0) v2_rt = response.mean_rt_s;
      EXPECT_EQ(response.mean_rt_s, v2_rt)
          << "request " << id << " mixed versions mid-swap";
    }
  }
  // The two versions are actually distinguishable — otherwise the
  // equality assertions above prove nothing.
  EXPECT_NE(v2_rt, v1_rt);
  EXPECT_GT(v2_rt, v1_rt) << "doubled CPU demand must slow the prediction";

  server.stop();
  EXPECT_EQ(server.stats().responses_dropped, 0u);
}

}  // namespace
}  // namespace epp::serve
