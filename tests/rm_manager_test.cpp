#include "rm/manager.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "rm/runtime.hpp"
#include "rm/types.hpp"

namespace epp::rm {
namespace {

/// Closed-system physics with a tunable uniform predictive error y:
/// predicted values equal the true ones at y * N clients ("multiplying the
/// actual number of clients by y gives the prediction").
class PhysicsPredictor final : public core::Predictor {
 public:
  explicit PhysicsPredictor(double error_y = 1.0) : y_(error_y) {}

  std::string name() const override { return "physics"; }

  double max_power(const std::string& arch) const {
    static const std::map<std::string, double> kPower{
        {"AppServS", 86.0}, {"AppServF", 186.0}, {"AppServVF", 320.0}};
    return kPower.at(arch);
  }

  double predict_max_throughput_rps(const std::string& arch,
                                    double buy_fraction) const override {
    // Buy requests are ~1.9x as expensive, shrinking max throughput.
    return max_power(arch) / (1.0 + 0.9 * buy_fraction);
  }

  double predict_mean_rt_s(const std::string& arch,
                           const core::WorkloadSpec& w) const override {
    const double x_max =
        predict_max_throughput_rps(arch, w.buy_fraction());
    const double n = y_ * w.total_clients();
    return std::max(kBase, n / x_max - w.think_time_s);
  }

  double predict_throughput_rps(const std::string& arch,
                                const core::WorkloadSpec& w) const override {
    const double x_max = predict_max_throughput_rps(arch, w.buy_fraction());
    return std::min(y_ * w.total_clients() / (w.think_time_s + kBase), x_max);
  }

  static constexpr double kBase = 0.020;

 private:
  double y_;
};

double total_allocated(const Allocation& a) {
  double total = 0.0;
  for (const auto& server : a.per_server)
    for (const auto& [_, clients] : server) total += clients;
  return total;
}

TEST(StandardScenario, PoolAndClassesMatchPaper) {
  const auto pool = standard_pool();
  ASSERT_EQ(pool.size(), 16u);
  EXPECT_EQ(std::count_if(pool.begin(), pool.end(),
                          [](const PoolServer& s) { return s.arch == "AppServS"; }),
            8);
  const auto classes = standard_classes(10000.0);
  ASSERT_EQ(classes.size(), 3u);
  EXPECT_DOUBLE_EQ(classes[0].clients, 1000.0);   // 10% buy
  EXPECT_DOUBLE_EQ(classes[0].rt_goal_s, 0.150);
  EXPECT_DOUBLE_EQ(classes[1].clients, 4500.0);
  EXPECT_DOUBLE_EQ(classes[2].clients, 4500.0);
}

TEST(ResourceManager, ConservesClients) {
  const PhysicsPredictor predictor;
  const ResourceManager manager(predictor, {1.0, 7.0, 1.0});
  const auto classes = standard_classes(6000.0);
  const Allocation a = manager.allocate(classes, standard_pool());
  EXPECT_NEAR(total_allocated(a) + a.unallocated_scaled, 6000.0, 3.0);
}

TEST(ResourceManager, SlackScalesTheAllocatedWorkload) {
  const PhysicsPredictor predictor;
  const ResourceManager manager(predictor, {1.1, 7.0, 1.0});
  const auto classes = standard_classes(4000.0);
  const Allocation a = manager.allocate(classes, standard_pool());
  EXPECT_NEAR(total_allocated(a) + a.unallocated_scaled, 1.1 * 4000.0, 3.0);
  EXPECT_DOUBLE_EQ(a.slack, 1.1);
}

TEST(ResourceManager, LowestPriorityRejectedFirstWhenOverloaded) {
  const PhysicsPredictor predictor;
  const ResourceManager manager(predictor, {1.0, 7.0, 1.0});
  // Tiny pool: one slow server can host the buy class but not the browse
  // classes of a 3000-client workload.
  const std::vector<PoolServer> pool{{"AppServS", 86.0}};
  const auto classes = standard_classes(3000.0);
  const Allocation a = manager.allocate(classes, pool);
  ASSERT_GT(a.unallocated_scaled, 0.0);
  // The strictest class (buy, 150 ms) must be fully placed before any
  // looser class; the loosest (600 ms) bears the rejections.
  EXPECT_EQ(a.unallocated_by_class.count("buy"), 0u);
  EXPECT_GT(a.unallocated_by_class.at("browse_low"), 0.0);
}

TEST(ResourceManager, LastServerExceptionPicksSmallestSufficient) {
  const PhysicsPredictor predictor;
  const ResourceManager manager(predictor, {1.0, 7.0, 1.0});
  // A workload small enough to fit on the slow server: the greedy rule
  // would pick the VF server (most capacity), the exception takes S.
  const std::vector<PoolServer> pool{{"AppServVF", 320.0}, {"AppServS", 86.0}};
  const std::vector<ServiceClassSpec> classes{{"browse", 0.6, false, 100.0}};
  const Allocation a = manager.allocate(classes, pool);
  EXPECT_DOUBLE_EQ(a.per_server[0].count("browse") ? a.per_server[0].at("browse") : 0.0, 0.0);
  EXPECT_NEAR(a.per_server[1].at("browse"), 100.0, 1e-6);
}

TEST(ResourceManager, GreedyPicksLargestWhenNoneSufficient) {
  const PhysicsPredictor predictor;
  const ResourceManager manager(predictor, {1.0, 7.0, 1.0});
  const std::vector<PoolServer> pool{{"AppServS", 86.0}, {"AppServVF", 320.0}};
  // Needs both servers; the first chunk must land on the VF server.
  const std::vector<ServiceClassSpec> classes{{"browse", 0.6, false, 3000.0}};
  const Allocation a = manager.allocate(classes, pool);
  EXPECT_GT(a.per_server[1].at("browse"), a.per_server[0].at("browse"));
}

TEST(ResourceManager, CapacityProbeRespectsStricterGoal) {
  const PhysicsPredictor predictor;
  const ResourceManager manager(predictor, {1.0, 7.0, 1.0});
  const PoolServer server{"AppServF", 186.0};
  const std::vector<ServiceClassSpec> classes{
      {"strict", 0.15, false, 0.0}, {"loose", 0.60, false, 0.0}};
  int evals = 0;
  const std::map<std::string, double> empty;
  const double cap_strict =
      manager.additional_capacity(server, empty, classes, classes[0], evals);
  const double cap_loose =
      manager.additional_capacity(server, empty, classes, classes[1], evals);
  EXPECT_LT(cap_strict, cap_loose);
  EXPECT_GT(cap_strict, 0.0);
  EXPECT_GT(evals, 0);
}

TEST(ResourceManager, CapacityShrinksWithExistingAllocation) {
  const PhysicsPredictor predictor;
  const ResourceManager manager(predictor, {1.0, 7.0, 1.0});
  const PoolServer server{"AppServF", 186.0};
  const std::vector<ServiceClassSpec> classes{{"browse", 0.60, false, 0.0}};
  int evals = 0;
  const std::map<std::string, double> empty;
  const std::map<std::string, double> half{{"browse", 600.0}};
  const double cap_empty =
      manager.additional_capacity(server, empty, classes, classes[0], evals);
  const double cap_half =
      manager.additional_capacity(server, half, classes, classes[0], evals);
  EXPECT_NEAR(cap_empty - cap_half, 600.0, 2.0);
}

TEST(ResourceManager, MixedClassOnServerBindsToStrictestGoal) {
  const PhysicsPredictor predictor;
  const ResourceManager manager(predictor, {1.0, 7.0, 1.0});
  const PoolServer server{"AppServF", 186.0};
  const std::vector<ServiceClassSpec> classes{
      {"buy", 0.15, true, 0.0}, {"browse", 0.60, false, 0.0}};
  int evals = 0;
  const std::map<std::string, double> with_buy{{"buy", 200.0}};
  const std::map<std::string, double> empty;
  const double cap = manager.additional_capacity(server, with_buy, classes,
                                                 classes[1], evals);
  // Browse capacity on a server already hosting buy clients is limited by
  // the buy class's 150 ms goal, so it is far below the empty-server
  // browse capacity.
  const double cap_browse_only =
      manager.additional_capacity(server, empty, classes, classes[1], evals);
  EXPECT_LT(cap, 0.7 * cap_browse_only);
}

TEST(ResourceManager, RejectsBadOptions) {
  const PhysicsPredictor predictor;
  EXPECT_THROW(ResourceManager(predictor, {-0.1, 7.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(ResourceManager(predictor, {1.0, 7.0, 0.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace epp::rm
