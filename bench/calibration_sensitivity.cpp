// Section 4.2 — how little historical data is enough?
//
// The paper's claim: "accurate predictions can be made even when nudp and
// nldp are both reduced to 2 and ns is reduced to 50", and recording those
// samples sequentially with one benchmarking client cost at most 4.5 s
// below max throughput and 2.2 minutes above it.
//
// This bench sweeps (a) the number of calibration data points per equation
// and (b) the measurement window behind each point (emulating the sample
// count ns), reporting the resulting accuracy on the new architecture —
// plus the simulated-time cost of recording 50 sequential samples in each
// regime (50 x the mean response time, since a benchmarking client waits
// for each response).
#include <iostream>

#include "common.hpp"
#include "core/historical_predictor.hpp"
#include "util/table.hpp"

namespace {

using namespace epp;

/// Calibrate a fresh historical predictor with n points per equation and
/// the given measurement window, then score it on the new server.
double accuracy_with(bench::Setup& setup, int points_per_eq, double window_s) {
  core::HistoricalPredictor predictor(setup.gradient_m);
  for (const std::string& server : {std::string("AppServF"), std::string("AppServVF")}) {
    const double knee = setup.n_star(server);
    std::vector<double> lower_loads, upper_loads;
    for (int i = 0; i < points_per_eq; ++i) {
      const double t = points_per_eq == 1
                           ? 0.5
                           : static_cast<double>(i) / (points_per_eq - 1);
      lower_loads.push_back((0.20 + 0.40 * t) * knee);
      upper_loads.push_back((1.25 + 0.45 * t) * knee);
    }
    core::SweepOptions options;
    options.measure_s = window_s;
    options.seed = 0x5EED + points_per_eq;
    const auto lower = core::measure_sweep(bench::spec_for(server), lower_loads,
                                           options, &setup.pool);
    const auto upper = core::measure_sweep(bench::spec_for(server), upper_loads,
                                           options, &setup.pool);
    predictor.calibrate_established(server, core::to_data_points(lower),
                                    core::to_data_points(upper),
                                    setup.max_tput(server));
  }
  predictor.register_new_server("AppServS", setup.max_s);
  const auto measured =
      setup.validation_sweep("AppServS", {0.3, 0.5, 0.65, 1.3, 1.8});
  return core::accuracy_against(predictor, "AppServS", measured).mean_rt_pct;
}

}  // namespace

int main() {
  std::cout << "== Section 4.2: calibration-data sensitivity ==\n\n";
  bench::Setup setup;

  util::Table table({"points_per_equation", "window_s_per_point",
                     "new_server_rt_accuracy_pct"});
  for (const int points : {2, 3, 4}) {
    for (const double window : {4.0, 20.0, 160.0}) {
      table.add_row({std::to_string(points), util::fmt(window, 0),
                     util::fmt(accuracy_with(setup, points, window), 1)});
    }
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: 2 points per equation with short windows "
               "already land close to the full calibration — the paper's "
               "nldp = nudp = 2, ns = 50 finding.\n";

  // Cost of recording ns = 50 sequential samples with one benchmarking
  // client: 50 x the mean response time at that load.
  const auto pre = setup.validation_sweep("AppServF", {0.5});
  const auto post = setup.validation_sweep("AppServF", {1.3});
  std::cout << "\n-- cost of recording 50 sequential samples (one "
               "benchmarking client) --\n"
            << "below max throughput: "
            << util::fmt(50.0 * pre[0].mean_rt_s, 1)
            << " s (paper: up to 4.5 s)\n"
            << "above max throughput: "
            << util::fmt(50.0 * post[0].mean_rt_s / 60.0, 1)
            << " min (paper: up to 2.2 min)\n";
  return 0;
}
