// Artifact canonicalization (lint/canon.hpp) — the comparison contract
// behind tools/epp_replay and CI's determinism gate. The canonical form
// must drop exactly the wall-time measurement content ("timing" objects
// and legacy *_ms / *per_second keys) and nothing else, so two runs of
// the same experiment compare byte-identical while a real payload
// difference still trips the gate.

#include <gtest/gtest.h>

#include <string>

#include "lint/canon.hpp"

namespace epp {
namespace {

using lint::canonicalize_artifact;
using lint::is_json_artifact;

TEST(LintCanon, JsonDetectionByNameAndShape) {
  EXPECT_TRUE(is_json_artifact("BENCH_sim.json", "anything"));
  EXPECT_TRUE(is_json_artifact("stdout.txt", "{\"bench\": \"serve\"}"));
  EXPECT_FALSE(is_json_artifact("sweep.csv", "load,throughput\n"));
  EXPECT_FALSE(is_json_artifact("mix.epp", std::string("EPPB\x01") + "rest"));
}

TEST(LintCanon, NonJsonArtifactsPassThroughVerbatim) {
  const std::string csv = "load,latency_ms\n100,3.25\n";
  // Even a wall-time-looking column header survives: CSV rows are part
  // of the semantic payload (simulated time, not wall time).
  EXPECT_EQ(canonicalize_artifact("sweep.csv", csv), csv);
}

TEST(LintCanon, TimingObjectIsStrippedWhole) {
  const std::string json =
      "{\n"
      "  \"provenance\": {\n"
      "    \"workload_seed\": 42\n"
      "  },\n"
      "  \"timing\": {\n"
      "    \"benchmarks\": [\n"
      "      {\"name\": \"BM_X\", \"real_ns_per_iter\": 12.5}\n"
      "    ],\n"
      "    \"engine_speedup_100k\": 3.1\n"
      "  },\n"
      "  \"events\": 1000\n"
      "}\n";
  const std::string canon = canonicalize_artifact("BENCH_sim.json", json);
  EXPECT_EQ(canon.find("timing"), std::string::npos);
  EXPECT_EQ(canon.find("real_ns_per_iter"), std::string::npos);
  EXPECT_EQ(canon.find("engine_speedup_100k"), std::string::npos);
  EXPECT_NE(canon.find("\"workload_seed\": 42"), std::string::npos);
  EXPECT_NE(canon.find("\"events\": 1000"), std::string::npos);
}

TEST(LintCanon, LegacyWallTimeKeysAreStrippedLineWise) {
  const std::string json =
      "{\n"
      "  \"sent\": 800,\n"
      "  \"requests_per_second\": 399.7,\n"
      "  \"elapsed_ms\": 2002.4,\n"
      "  \"p99_latency_ms\": 12.25,\n"
      "  \"queue_wait_us\": 90,\n"
      "  \"ok\": 800\n"
      "}\n";
  const std::string canon = canonicalize_artifact("BENCH_serve.json", json);
  EXPECT_NE(canon.find("\"sent\": 800"), std::string::npos);
  EXPECT_NE(canon.find("\"ok\": 800"), std::string::npos);
  EXPECT_EQ(canon.find("requests_per_second"), std::string::npos);
  EXPECT_EQ(canon.find("elapsed_ms"), std::string::npos);
  EXPECT_EQ(canon.find("p99_latency_ms"), std::string::npos);
  EXPECT_EQ(canon.find("queue_wait_us"), std::string::npos);
}

TEST(LintCanon, CanonicalizationIsIdempotent) {
  const std::string json =
      "{\n  \"timing\": {\n    \"wall_ms\": 5\n  },\n  \"seed\": 7\n}\n";
  const std::string once = canonicalize_artifact("a.json", json);
  EXPECT_EQ(canonicalize_artifact("a.json", once), once);
}

TEST(LintCanon, PayloadDifferencesSurvive) {
  // The gate must still see a real divergence: two artifacts that
  // differ outside the timing fields stay different after the scrub.
  const std::string a = "{\n  \"seed\": 7,\n  \"wall_ms\": 1\n}\n";
  const std::string b = "{\n  \"seed\": 8,\n  \"wall_ms\": 2\n}\n";
  EXPECT_NE(canonicalize_artifact("a.json", a),
            canonicalize_artifact("a.json", b));
}

}  // namespace
}  // namespace epp
