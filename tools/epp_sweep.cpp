// epp_sweep — batch prediction sweeps from the command line.
//
// Acquires the calibration bundle through the unified calib pipeline —
// cold-calibrated from the simulated testbed, or warm-loaded from a
// persisted `.epp` artifact with --bundle (zero simulator work) — then
// drives the svc::BatchPredictor over the full client-load x buy-mix
// x method x server grid: the exact question stream a resource manager
// issues when comparing candidate architectures (paper sections 8.2/8.5).
// Repeated passes show the memoization cache at work — pass 1 computes,
// later passes answer from the sharded LRU.
//
// Resilient serving mode: any of --deadline-ms / --max-retries /
// --fault-spec / --batch-budget-ms routes the grid through the
// svc::ResilientPredictor instead — every cell comes back as a typed
// outcome (value or error code), degraded cells are flagged
// fallback/stale, and the run ends with the resilience counters. With
// --fault-spec, deterministic seeded faults (calib::kFaultInjectionSeed)
// are injected at the evaluation boundary; see src/svc/fault.hpp for the
// spec grammar.
//
// Usage:
//   epp_sweep [--loads lo:hi:step] [--buys p1,p2,...]
//             [--methods historical,lqn,hybrid] [--servers n1,n2,...]
//             [--threads N] [--passes N] [--csv]
//             [--replications N] [--fluid-threshold M]
//             [--bundle FILE] [--save-bundle FILE]
//             [--deadline-ms MS] [--max-retries N]
//             [--fault-spec SPEC] [--batch-budget-ms MS]
#include <cstddef>
#include <exception>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "calib/bundle.hpp"
#include "calib/predictor_set.hpp"
#include "calib/seeds.hpp"
#include "core/trade_model.hpp"
#include "lint/lint.hpp"
#include "lint/verify.hpp"
#include "svc/batch_predictor.hpp"
#include "svc/fault.hpp"
#include "svc/resilient.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace epp;
namespace cli = util::cli;

struct SweepConfig {
  std::vector<double> loads;
  std::vector<double> buy_pcts{0.0, 25.0};
  std::vector<svc::Method> methods{svc::Method::kHistorical, svc::Method::kLqn,
                                   svc::Method::kHybrid};
  std::vector<std::string> servers{"AppServS", "AppServF", "AppServVF"};
  std::size_t threads = std::max(1u, std::thread::hardware_concurrency());
  std::size_t passes = 2;
  std::size_t replications = 1;     // simulator runs averaged per benchmark
  std::size_t fluid_threshold = 0;  // 0 = always exact simulation
  bool csv = false;
  calib::ArtifactCli artifact;  // --bundle / --save-bundle
  // Resilient serving (any of these set switches the sweep to the
  // ResilientPredictor path).
  double deadline_ms = 0.0;
  double batch_budget_ms = 0.0;
  std::optional<int> max_retries;
  std::string fault_spec;

  bool resilient() const {
    return deadline_ms > 0.0 || batch_budget_ms > 0.0 ||
           max_retries.has_value() || !fault_spec.empty();
  }
};

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::stringstream stream(text);
  std::string part;
  while (std::getline(stream, part, sep))
    if (!part.empty()) parts.push_back(part);
  return parts;
}

int usage(std::ostream& out) {
  out << "usage: epp_sweep [--loads lo:hi:step] [--buys p1,p2,...]\n"
         "                 [--methods historical,lqn,hybrid]\n"
         "                 [--servers AppServS,AppServF,AppServVF]\n"
         "                 [--threads N] [--passes N] [--csv]\n"
         "                 [--replications N] [--fluid-threshold M]\n"
         "                 [--bundle FILE] [--save-bundle FILE]\n"
         "                 [--deadline-ms MS] [--max-retries N]\n"
         "                 [--fault-spec SPEC] [--batch-budget-ms MS]\n\n"
         "Acquires the calibration bundle (from the simulated testbed, or\n"
         "warm-started from a persisted artifact with --bundle), then\n"
         "batch-evaluates the client-load x buy-mix grid for every method\n"
         "and server through the concurrent memoizing prediction engine.\n"
         "Produce artifacts with epp_calibrate or --save-bundle.\n\n"
         "--replications N averages each calibration benchmark over N\n"
         "independent simulator replications (seeds derived per index,\n"
         "fanned out on the worker pool). --fluid-threshold M answers\n"
         "populations of M+ clients from the fluid (ODE) fast path\n"
         "instead of the exact discrete-event engine.\n\n"
         "--deadline-ms / --max-retries / --fault-spec / --batch-budget-ms\n"
         "switch to fault-tolerant serving: each cell returns a value or a\n"
         "typed error, degraded cells are flagged fallback/stale. The fault\n"
         "spec grammar is 'target:knob[,knob...][;...]' with target one of\n"
         "historical|lqn|hybrid|* and knobs fail=P, latency-ms=MS, e.g.\n"
         "  --fault-spec 'lqn:latency-ms=20;*:fail=0.05'\n"
         "Inputs are linted before any work happens (see tools/epp_lint);\n"
         "lint errors abort the run with exit code 2.\n";
  return 1;
}

SweepConfig parse_args(int argc, char** argv) {
  SweepConfig config;
  config.loads = cli::parse_range("--loads", "200:1400:100");
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc)
        throw std::invalid_argument(std::string(arg) + " wants a value");
      return argv[++i];
    };
    if (arg == "--loads") {
      config.loads = cli::parse_range(arg, value());
    } else if (arg == "--buys") {
      config.buy_pcts = cli::parse_double_list(arg, value());
    } else if (arg == "--methods") {
      config.methods.clear();
      for (const std::string& name : split(value(), ','))
        config.methods.push_back(svc::method_from_name(name));
      if (config.methods.empty())
        throw std::invalid_argument("--methods wants at least one method");
    } else if (arg == "--servers") {
      config.servers = split(value(), ',');
      if (config.servers.empty())
        throw std::invalid_argument("--servers wants at least one server");
    } else if (arg == "--threads") {
      config.threads = cli::parse_size(arg, value(), 1);
    } else if (arg == "--passes") {
      config.passes = cli::parse_size(arg, value(), 1);
    } else if (arg == "--replications") {
      config.replications = cli::parse_size(arg, value(), 1);
    } else if (arg == "--fluid-threshold") {
      config.fluid_threshold = cli::parse_size(arg, value(), 0);
    } else if (arg == "--csv") {
      config.csv = true;
    } else if (arg == "--deadline-ms") {
      config.deadline_ms = cli::parse_positive_double(arg, value());
    } else if (arg == "--batch-budget-ms") {
      config.batch_budget_ms = cli::parse_positive_double(arg, value());
    } else if (arg == "--max-retries") {
      config.max_retries =
          static_cast<int>(cli::parse_int(arg, value(), 0, 1000));
    } else if (arg == "--fault-spec") {
      config.fault_spec = value();  // linted pre-run, with the rest
    } else if (arg == "--bundle") {
      config.artifact.load_path = value();
    } else if (arg == "--save-bundle") {
      config.artifact.save_path = value();
    } else {
      throw std::invalid_argument("unknown argument: " + std::string(arg));
    }
  }
  return config;
}

core::WorkloadSpec mixed_load(double total_clients, double buy_pct) {
  core::WorkloadSpec w;
  w.buy_clients = total_clients * buy_pct / 100.0;
  w.browse_clients = total_clients - w.buy_clients;
  return w;
}

}  // namespace

int main(int argc, char** argv) try {
  const SweepConfig config = parse_args(argc, argv);

  // --- pre-run lint: refuse to spend calibration/solver time on inputs
  // that cannot work (the same rules tools/epp_lint runs standalone) ----
  lint::Diagnostics findings;
  if (!config.artifact.load_path.empty())
    lint::lint_artifact_file(config.artifact.load_path, findings);
  if (!config.fault_spec.empty())
    svc::lint_fault_spec(config.fault_spec, {"<fault-spec>", 0}, findings);
  // A bad load repeats identically across every buy mix (and vice
  // versa), so lint each axis once instead of the whole cross product.
  for (const double clients : config.loads)
    core::lint_workload(mixed_load(clients, config.buy_pcts.front()),
                        {"<grid>", 0}, findings);
  for (const double buy_pct : config.buy_pcts)
    core::lint_workload(mixed_load(config.loads.front(), buy_pct),
                        {"<grid>", 0}, findings);
  findings.sort_by_location();
  if (!findings.empty()) std::cerr << lint::render_text(findings);
  if (findings.has_errors()) {
    std::cerr << "epp_sweep: refusing to run with "
              << findings.count(lint::Severity::kError)
              << " lint error(s); see epp_lint for the rule catalog\n";
    return 2;
  }

  util::ThreadPool pool(config.threads);

  // --- bundle acquisition: cold calibration or warm artifact load ---------
  calib::CalibrationOptions calibration_options;
  calibration_options.pool = &pool;
  calibration_options.replications = config.replications;
  calibration_options.fluid_threshold = config.fluid_threshold;
  if (config.artifact.load_path.empty())
    std::cerr << "calibrating from the simulated testbed...\n";
  const util::Timer calibration_timer;
  const calib::CalibrationBundle bundle =
      calib::acquire_bundle(config.artifact, calibration_options);
  std::cerr << (config.artifact.load_path.empty()
                    ? "calibrated in "
                    : "warm start: loaded bundle in ")
            << util::fmt(calibration_timer.elapsed_ms(),
                         config.artifact.load_path.empty() ? 0 : 2)
            << " ms\n";

  // --- semantic pre-flight: the EPP-SEM verifier over the bundle the
  // sweep is about to serve from, under this run's serving options -------
  {
    lint::VerifyOptions verify_options;
    verify_options.methods = config.methods;
    verify_options.check_chains = config.resilient();
    if (config.resilient()) {
      verify_options.resilience.deadline_s = config.deadline_ms / 1e3;
      if (config.max_retries)
        verify_options.resilience.max_retries = *config.max_retries;
    }
    const std::string label = config.artifact.load_path.empty()
                                  ? "<calibrated>"
                                  : config.artifact.load_path;
    lint::Diagnostics semantic;
    lint::verify_bundle(bundle, label, nullptr, verify_options, semantic);
    semantic.sort_by_location();
    if (!semantic.empty()) std::cerr << lint::render_text(semantic);
    if (semantic.has_errors()) {
      std::cerr << "epp_sweep: refusing to serve from a bundle with "
                << semantic.count(lint::Severity::kError)
                << " semantic error(s); see epp_verify for the rule "
                   "catalog\n";
      return 2;
    }
  }
  // Optional deterministic fault injection, wired through BatchOptions.
  std::optional<svc::FaultInjector> injector;
  svc::BatchOptions batch_options;
  if (!config.fault_spec.empty()) {
    injector.emplace(svc::parse_fault_spec(config.fault_spec),
                     calib::kFaultInjectionSeed);
    batch_options.fault = &*injector;
  }
  const calib::PredictorSet set = calib::make_predictors(bundle, batch_options);

  // --- the grid ------------------------------------------------------------
  std::vector<svc::PredictionRequest> grid;
  for (const std::string& server : config.servers)
    for (const double buy_pct : config.buy_pcts)
      for (const double clients : config.loads)
        for (const svc::Method method : config.methods)
          grid.push_back({method, server, mixed_load(clients, buy_pct)});

  svc::BatchPredictor& engine = *set.batch;
  const std::size_t methods = config.methods.size();

  if (config.resilient()) {
    // --- fault-tolerant serving path ---------------------------------------
    svc::ResilienceOptions resilience;
    resilience.deadline_s = config.deadline_ms / 1e3;
    if (config.max_retries) resilience.max_retries = *config.max_retries;
    resilience.jitter_seed = calib::kRetryJitterSeed;
    const svc::ResilientPredictor server_layer(engine, resilience);

    std::vector<svc::Outcome> outcomes;
    for (std::size_t pass = 1; pass <= config.passes; ++pass) {
      const util::Timer timer;
      outcomes = server_layer.predict_batch(grid, &pool,
                                            config.batch_budget_ms / 1e3);
      std::cerr << "pass " << pass << "/" << config.passes << ": "
                << grid.size() << " outcomes in "
                << util::fmt(timer.elapsed_ms(), 2) << " ms on "
                << config.threads << " thread(s)\n";
    }

    if (config.csv) {
      std::cout << "server,buy_pct,clients,method,status,served_by,fallback,"
                   "stale,retries,mean_rt_ms,throughput_rps\n";
      for (std::size_t i = 0; i < grid.size(); ++i) {
        std::cout << grid[i].server << ','
                  << util::fmt(100.0 * grid[i].workload.buy_fraction(), 1)
                  << ',' << util::fmt(grid[i].workload.total_clients(), 0)
                  << ',' << svc::method_name(grid[i].method) << ',';
        if (outcomes[i].ok()) {
          const svc::ResilientResult& r = outcomes[i].value();
          std::cout << "ok," << svc::method_name(r.served_by) << ','
                    << (r.fallback ? 1 : 0) << ',' << (r.stale ? 1 : 0) << ','
                    << r.retries << ','
                    << util::fmt(r.prediction.mean_rt_s * 1e3, 3) << ','
                    << util::fmt(r.prediction.throughput_rps, 3) << '\n';
        } else {
          std::cout << svc::error_code_name(outcomes[i].error().code)
                    << ",,,,,,\n";
        }
      }
    } else {
      std::vector<std::string> headers{"server", "buy_pct", "clients"};
      for (const svc::Method method : config.methods)
        headers.push_back(std::string(svc::method_name(method)) + "_rt_ms");
      util::Table table(headers);
      std::size_t cursor = 0;
      for (const std::string& server : config.servers)
        for (const double buy_pct : config.buy_pcts)
          for (const double clients : config.loads) {
            std::vector<std::string> row{server, util::fmt(buy_pct, 0),
                                         util::fmt(clients, 0)};
            for (std::size_t mi = 0; mi < methods; ++mi) {
              const svc::Outcome& outcome = outcomes[cursor + mi];
              if (outcome.ok()) {
                const svc::ResilientResult& r = outcome.value();
                std::string cell = util::fmt(r.prediction.mean_rt_s * 1e3, 2);
                if (r.stale)
                  cell += "*";  // replayed from the stale store
                else if (r.fallback)
                  cell += "+";  // served by a fallback method
                row.push_back(cell);
              } else {
                row.push_back(
                    std::string(svc::error_code_name(outcome.error().code)));
              }
            }
            cursor += methods;
            table.add_row(row);
          }
      table.print(std::cout);
      std::cout << "(+ = fallback method, * = stale replay)\n";
    }

    const svc::ResilienceStats rstats = server_layer.stats();
    std::cerr << "resilience: " << rstats.served << " served / "
              << rstats.errors << " errors of " << rstats.requests
              << " requests; " << rstats.retries << " retries, "
              << rstats.fallbacks << " fallbacks, " << rstats.stale_serves
              << " stale, " << rstats.deadline_hits << " deadline, "
              << rstats.breaker_rejections << " breaker-rejected ("
              << rstats.breaker_opens << " opens)\n";
    if (injector)
      std::cerr << "faults: " << injector->injected_failures() << " injected"
                << " of " << injector->decisions() << " decisions (seed "
                << injector->seed() << ")\n";
  } else {
    // --- plain batch path --------------------------------------------------
    std::vector<svc::PredictionResult> results;
    for (std::size_t pass = 1; pass <= config.passes; ++pass) {
      const util::Timer timer;
      results = engine.predict_batch(grid, &pool);
      std::cerr << "pass " << pass << "/" << config.passes << ": "
                << grid.size() << " predictions in "
                << util::fmt(timer.elapsed_ms(), 2) << " ms on "
                << config.threads << " thread(s)\n";
    }

    if (config.csv) {
      std::cout << "server,buy_pct,clients,method,mean_rt_ms,throughput_rps\n";
      for (std::size_t i = 0; i < grid.size(); ++i)
        std::cout << grid[i].server << ','
                  << util::fmt(100.0 * grid[i].workload.buy_fraction(), 1)
                  << ',' << util::fmt(grid[i].workload.total_clients(), 0)
                  << ',' << svc::method_name(grid[i].method) << ','
                  << util::fmt(results[i].mean_rt_s * 1e3, 3) << ','
                  << util::fmt(results[i].throughput_rps, 3) << '\n';
    } else {
      std::vector<std::string> headers{"server", "buy_pct", "clients"};
      for (const svc::Method method : config.methods)
        headers.push_back(std::string(svc::method_name(method)) + "_rt_ms");
      util::Table table(headers);
      std::size_t cursor = 0;
      for (const std::string& server : config.servers)
        for (const double buy_pct : config.buy_pcts)
          for (const double clients : config.loads) {
            std::vector<std::string> row{server, util::fmt(buy_pct, 0),
                                         util::fmt(clients, 0)};
            for (std::size_t mi = 0; mi < methods; ++mi)
              row.push_back(util::fmt(results[cursor + mi].mean_rt_s * 1e3, 2));
            cursor += methods;
            table.add_row(row);
          }
      table.print(std::cout);
    }
  }

  const svc::CacheStats stats = engine.cache_stats();
  std::cerr << "cache: " << stats.hits << " hits, " << stats.misses
            << " misses, " << stats.evictions << " evictions ("
            << util::fmt(100.0 * stats.hit_ratio(), 1) << "% hit ratio, "
            << stats.entries << " entries)\n";
  return 0;
} catch (const std::exception& error) {
  std::cerr << "epp_sweep: " << error.what() << "\n\n";
  return usage(std::cerr);
}
