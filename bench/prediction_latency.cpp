// Sections 8.4/8.5 — model recalibration overhead and prediction delay.
//
// Paper observations to reproduce in shape:
//   * the layered queuing method needs noticeable CPU time per prediction
//     (up to 3 s on the authors' Athlon for their solver) and must search
//     when asked for an SLA capacity;
//   * historical predictions are near-instant and invert in closed form;
//   * hybrid predictions pay a one-off start-up delay per architecture
//     (11 s in the paper) and are then as fast as historical.
#include <iostream>

#include "common.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

template <typename Fn>
double mean_latency_us(int iterations, Fn&& fn) {
  const epp::util::Timer timer;
  for (int i = 0; i < iterations; ++i) fn(i);
  return timer.elapsed_us() / iterations;
}

}  // namespace

int main() {
  using namespace epp;
  std::cout << "== Sections 8.4/8.5: prediction latency and start-up "
               "costs ==\n\n";

  bench::Setup setup;
  core::WorkloadSpec base;
  base.browse_clients = 900.0;

  // Fresh hybrid so the start-up delay is observable here.
  core::HybridPredictor fresh_hybrid(setup.calibration);
  for (const auto& arch : {core::arch_s(), core::arch_f(), core::arch_vf()})
    fresh_hybrid.register_server(arch);
  const util::Timer startup_timer;
  (void)fresh_hybrid.predict_mean_rt_s("AppServS", base);
  const double hybrid_first_us = startup_timer.elapsed_us();

  const int n = 2000;
  auto vary = [&](int i) {
    core::WorkloadSpec w;
    w.browse_clients = 400.0 + 1.0 * (i % 1200);
    return w;
  };
  const double historical_us = mean_latency_us(n, [&](int i) {
    (void)setup.historical->predict_mean_rt_s("AppServF", vary(i));
  });
  const double hybrid_us = mean_latency_us(n, [&](int i) {
    (void)fresh_hybrid.predict_mean_rt_s("AppServS", vary(i));
  });
  const double lqn_us = mean_latency_us(200, [&](int i) {
    (void)setup.lqn->predict_mean_rt_s("AppServF", vary(i));
  });

  util::Table latency({"method", "mean_prediction_latency_us", "notes"});
  latency.add_row({"historical", util::fmt(historical_us, 2),
                   "closed-form equations"});
  latency.add_row({"layered-queuing", util::fmt(lqn_us, 2),
                   "solves the LQN per prediction (paper: up to 3 s)"});
  latency.add_row({"hybrid (after start-up)", util::fmt(hybrid_us, 2),
                   "start-up " + util::fmt(hybrid_first_us, 1) +
                       " us incl. pseudo-data generation (paper: ~11 s)"});
  latency.print(std::cout);

  // SLA capacity search cost: predictions needed per question (8.2/8.5).
  std::cout << "\n-- SLA capacity search: model evaluations per question --\n";
  util::Table capacity({"method", "max_clients_at_600ms",
                        "prediction_evaluations"});
  for (const core::Predictor* predictor :
       {static_cast<const core::Predictor*>(setup.historical.get()),
        static_cast<const core::Predictor*>(setup.lqn.get()),
        static_cast<const core::Predictor*>(setup.hybrid.get())}) {
    const core::CapacityResult r =
        predictor->max_clients_for_goal("AppServF", 0.600, 0.0, 7.0);
    capacity.add_row({predictor->name(), util::fmt(r.max_clients, 0),
                      std::to_string(r.prediction_evaluations)});
  }
  capacity.print(std::cout);

  std::cout << "\nexpected shape: historical and hybrid answer in one "
               "closed-form inversion and microseconds; the layered method "
               "is orders of magnitude slower per prediction and must "
               "search for capacities.\n";
  return 0;
}
