// Operation catalogue for the Trade-like benchmark workload.
//
// The paper aggregates the Trade operation mix into two request types
// ("browse" and "buy") when calibrating the LQN model; the simulator keeps
// a finer per-operation breakdown whose browse-mix-weighted demand equals
// the aggregate, so measured behaviour matches the paper's regime while the
// workload retains realistic per-request variability.
//
// Demands are expressed in seconds of work at reference speed 1.0, which is
// defined to be the established "fast" server AppServF. They are chosen so
// the simulated max throughputs under the typical (all-browse) workload hit
// the paper's measured 86 / 186 / 320 requests/second for AppServS/F/VF.
#pragma once

#include <array>
#include <cstddef>
#include <string>

#include "util/rng.hpp"

namespace epp::sim::trade {

enum class Operation : std::size_t {
  kQuote = 0,
  kHome,
  kBrowseMarket,
  kPortfolio,
  kAccount,
  kRegisterLogin,
  kBuy,
  kLogoff,
  kCount,
};

constexpr std::size_t kNumOperations = static_cast<std::size_t>(Operation::kCount);

struct OperationProfile {
  std::string_view name;
  double app_cpu_s;       // CPU demand at the application tier (speed 1.0)
  double db_cpu_per_call; // CPU demand at the DB tier, per DB call
  double disk_per_call;   // DB disk demand, per DB call
  double mean_db_calls;   // fractional part realised as a Bernoulli extra call
};

/// Profile lookup; demands are fixed program constants (the simulator's
/// "ground truth" that the prediction methods must rediscover).
const OperationProfile& profile(Operation op) noexcept;

/// Sample the number of DB calls for an operation: floor(mean) calls plus
/// one more with probability frac(mean).
std::size_t sample_db_calls(const OperationProfile& op, util::Rng& rng) noexcept;

/// The browse service class mix: probability of each browse operation being
/// selected as a client's next request (sums to 1 over the browse ops).
double browse_mix_probability(Operation op) noexcept;

/// Pick a browse operation according to the mix.
Operation sample_browse_operation(util::Rng& rng) noexcept;

/// Browse-mix-weighted aggregate demands: the single "browse request type"
/// the paper's models see.
struct AggregateDemand {
  double app_cpu_s;
  double db_cpu_per_call;
  double disk_per_call;
  double mean_db_calls;
};
AggregateDemand browse_aggregate() noexcept;
AggregateDemand buy_aggregate() noexcept;

}  // namespace epp::sim::trade
