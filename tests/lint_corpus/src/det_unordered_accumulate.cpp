// Corpus: EPP-DET-003 — hash-order iteration accumulating floating
// point. Addition is not associative, so the total depends on the
// bucket order of the standard library that happened to link in.
#include <string>
#include <unordered_map>

namespace lint_corpus {

inline double total_weight(const std::unordered_map<std::string, double>& weights) {
  double total = 0.0;
  for (const auto& entry : weights) {
    total += entry.second;
  }
  return total;
}

}  // namespace lint_corpus
