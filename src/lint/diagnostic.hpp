// The epp_lint diagnostic engine: rule-coded, source-located findings.
//
// Every artifact the pipeline produces — LQN model files, `.epp`
// calibration bundles, workload grids, fault-spec strings — used to be
// checked only dynamically, at load or mid-solve, so an implausible
// bundle surfaced minutes into a sweep as NaNs or a divergence. The
// linter runs the same checks ahead of time and reports *all* findings
// at once, each carrying:
//
//   * a rule ID in a namespaced catalog (EPP-LQN-*, EPP-BND-*,
//     EPP-WKL-*, EPP-FLT-*; see README.md for the catalog),
//   * a severity — error (artifact unusable), warning (suspicious,
//     likely wrong), note (worth knowing, not wrong),
//   * a source location (file plus 1-based line; line 0 means the
//     finding applies to the artifact as a whole),
//   * and an optional fix-it hint.
//
// The engine is deliberately dependency-free so parse layers (calib,
// svc, core) can emit diagnostics without depending on the rule
// library; the rules live in src/lint/rules_*.cpp behind lint.hpp.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace epp::lint {

enum class Severity { kNote, kWarning, kError };

/// "note" / "warning" / "error".
const char* severity_name(Severity severity);

/// Where a finding points. line is 1-based; 0 means "the whole artifact"
/// (e.g. a missing required record). file may name a real path or a
/// synthetic origin like "<spec>" for command-line strings.
struct SourceLocation {
  std::string file;
  int line = 0;
};

struct Diagnostic {
  std::string rule;  // catalog ID, e.g. "EPP-LQN-003"
  Severity severity = Severity::kError;
  SourceLocation location;
  std::string message;
  std::string hint;  // optional fix-it suggestion; empty when none

  bool operator==(const Diagnostic&) const = default;
};

/// An append-only collector. Rules add findings; renderers and exit-code
/// policy read them back. Not thread-safe (lint passes are single-run).
class Diagnostics {
 public:
  Diagnostic& add(Diagnostic diagnostic);
  Diagnostic& error(std::string rule, SourceLocation location,
                    std::string message, std::string hint = "");
  Diagnostic& warning(std::string rule, SourceLocation location,
                      std::string message, std::string hint = "");
  Diagnostic& note(std::string rule, SourceLocation location,
                   std::string message, std::string hint = "");

  const std::vector<Diagnostic>& all() const noexcept { return diagnostics_; }
  bool empty() const noexcept { return diagnostics_.empty(); }
  std::size_t size() const noexcept { return diagnostics_.size(); }
  std::size_t count(Severity severity) const;
  bool has_errors() const { return count(Severity::kError) > 0; }

  /// First finding at `severity` or worse; nullptr when none.
  const Diagnostic* first_at_least(Severity severity) const;

  /// Stable-sort findings by (file, line, rule ID) for rendering, so
  /// output is deterministic regardless of rule-execution order;
  /// emission order breaks remaining ties.
  void sort_by_location();

 private:
  std::vector<Diagnostic> diagnostics_;
};

/// Format a numeric value for a finding message: default stream
/// precision, so populations print as "500" and fitted parameters as
/// "0.00567" instead of std::to_string's fixed six decimals.
std::string fmt_value(double value);

/// Process exit code policy shared by every linting entry point:
/// 0 = clean or notes only, 1 = warnings, 2 = errors.
int exit_code(const Diagnostics& diagnostics);

/// Compiler-style text: "file:line: severity: [RULE] message" plus an
/// indented "fix-it:" line when a hint is present.
std::string render_text(const Diagnostics& diagnostics);

/// JSON array of {file, line, severity, rule, message, hint} objects
/// (machine-readable CI artifact; stable key order).
std::string render_json(const Diagnostics& diagnostics);

}  // namespace epp::lint
