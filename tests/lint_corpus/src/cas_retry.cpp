// Corpus: EPP-CONC-007 — weak CAS outside a retry loop (it may fail
// spuriously); the second form below is the accepted idiom.
#include <atomic>

namespace lint_corpus {

inline std::atomic<int> slot{0};

inline bool claim_once(int id) {
  int expected = 0;
  return slot.compare_exchange_weak(expected, id);
}

inline void claim_retrying(int id) {
  int expected = 0;
  while (!slot.compare_exchange_weak(expected, id)) {
    expected = 0;
  }
}

}  // namespace lint_corpus
