#include "sim/fluid.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace epp::sim::trade {
namespace {

constexpr double kMeanBuysPerSession = 10.0;  // matches testbed.cpp
constexpr double kLn10 = 2.302585092994046;

/// Per-class station demands in seconds (already divided by speeds).
struct ClassDemand {
  double app_s = 0.0;
  double db_s = 0.0;
  double disk_s = 0.0;
  double db_calls = 0.0;        // mean DB calls per request
  double buy_fraction = 0.0;    // P(request is a Buy) within the class
  double think_s = 0.0;         // Z_c; 0 for open classes
  double population = 0.0;      // N_c; 0 for open classes
  double arrival_rps = 0.0;     // λ_c; 0 for closed classes
};

/// A buy user's session is login + geometric(mean 10) buys + logoff; the
/// class's per-request demand is the session mix average.
AggregateDemand buy_session_aggregate() {
  const OperationProfile& login = profile(Operation::kRegisterLogin);
  const OperationProfile& buy = profile(Operation::kBuy);
  const OperationProfile& logoff = profile(Operation::kLogoff);
  const double requests = kMeanBuysPerSession + 2.0;
  AggregateDemand agg{};
  const double w_login = 1.0 / requests;
  const double w_buy = kMeanBuysPerSession / requests;
  const double w_logoff = 1.0 / requests;
  agg.app_cpu_s = w_login * login.app_cpu_s + w_buy * buy.app_cpu_s +
                  w_logoff * logoff.app_cpu_s;
  // Per-call demands are call-weighted, calls per request mix-weighted.
  const double calls = w_login * login.mean_db_calls +
                       w_buy * buy.mean_db_calls +
                       w_logoff * logoff.mean_db_calls;
  agg.mean_db_calls = calls;
  if (calls > 0.0) {
    agg.db_cpu_per_call = (w_login * login.mean_db_calls * login.db_cpu_per_call +
                           w_buy * buy.mean_db_calls * buy.db_cpu_per_call +
                           w_logoff * logoff.mean_db_calls * logoff.db_cpu_per_call) /
                          calls;
    agg.disk_per_call = (w_login * login.mean_db_calls * login.disk_per_call +
                         w_buy * buy.mean_db_calls * buy.disk_per_call +
                         w_logoff * logoff.mean_db_calls * logoff.disk_per_call) /
                        calls;
  }
  return agg;
}

/// All-or-nothing cache model: if every live session fits in capacity the
/// steady state is all hits (sessions are re-read before eviction), else
/// the working set thrashes and every request pays the fetch.
bool cache_fits(const TestbedConfig& config) {
  const CacheConfig& cc = *config.cache;
  std::uint64_t needed = 0;
  for (const auto& spec : config.classes) {
    const std::uint64_t sessions = spec.open_arrival_rps > 0.0 ? 1 : spec.clients;
    if (spec.type == UserType::kBrowse) {
      needed += sessions * cc.browse_session_bytes;
    } else {
      const auto mean_session =
          cc.buy_session_base_bytes +
          static_cast<std::uint64_t>(
              static_cast<double>(cc.per_holding_bytes) * kMeanBuysPerSession /
              2.0);
      needed += sessions * mean_session;
    }
  }
  return needed <= cc.capacity_bytes;
}

}  // namespace

bool fluid_engages(const TestbedConfig& config) {
  if (config.fluid_threshold == 0) return false;
  std::size_t closed = 0;
  for (const auto& spec : config.classes)
    if (spec.open_arrival_rps <= 0.0) closed += spec.clients;
  return closed >= config.fluid_threshold;
}

RunResult run_testbed_fluid(const TestbedConfig& config) {
  const std::size_t k = config.classes.size();
  std::vector<ClassDemand> demand(k);
  const bool cache_on =
      config.cache.has_value() && config.cache->capacity_bytes > 0;
  const bool miss_all = cache_on && !cache_fits(config);
  for (std::size_t c = 0; c < k; ++c) {
    const auto& spec = config.classes[c];
    const AggregateDemand agg = spec.type == UserType::kBrowse
                                    ? browse_aggregate()
                                    : buy_session_aggregate();
    ClassDemand& d = demand[c];
    d.db_calls = agg.mean_db_calls;
    double db_cpu = agg.mean_db_calls * agg.db_cpu_per_call;
    double disk = agg.mean_db_calls * agg.disk_per_call;
    if (miss_all && config.cache) {
      // Logoff invalidates instead of fetching; ignore that 1/12 sliver
      // for buy users — the fetch applies to (almost) every request.
      d.db_calls += 1.0;
      db_cpu += config.cache->session_fetch_db_cpu_s;
      disk += config.cache->session_fetch_disk_s;
    }
    d.app_s = agg.app_cpu_s / config.server.speed;
    d.db_s = db_cpu / config.db_speed;
    d.disk_s = disk / config.disk_speed;
    d.buy_fraction = spec.type == UserType::kBuy
                         ? kMeanBuysPerSession / (kMeanBuysPerSession + 2.0)
                         : 0.0;
    if (spec.open_arrival_rps > 0.0) {
      d.arrival_rps = spec.open_arrival_rps;
    } else {
      d.think_s = spec.mean_think_time_s;
      d.population = static_cast<double>(spec.clients);
    }
  }

  // Masses per class at app / db / disk; closed-class think mass is
  // population minus in-system mass. Integrate dm/dt with an adaptive
  // forward-Euler step until the flows balance.
  std::vector<double> m_app(k, 0.0), m_db(k, 0.0), m_disk(k, 0.0);
  auto think_mass = [&](std::size_t c) {
    return std::max(0.0, demand[c].population - m_app[c] - m_db[c] - m_disk[c]);
  };
  const int kMaxSteps = 200000;
  const double kTol = 1e-10;
  for (int step = 0; step < kMaxSteps; ++step) {
    double tot_app = 0.0, tot_db = 0.0, tot_disk = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      tot_app += m_app[c];
      tot_db += m_db[c];
      tot_disk += m_disk[c];
    }
    const double share_app = std::max(1.0, tot_app);
    const double share_db = std::max(1.0, tot_db);
    const double share_disk = std::max(1.0, tot_disk);
    double max_delta = 0.0;
    double max_rate = 1.0;
    std::vector<double> d_app(k), d_db(k), d_disk(k);
    for (std::size_t c = 0; c < k; ++c) {
      const ClassDemand& d = demand[c];
      const double in_rate =
          d.population > 0.0 ? think_mass(c) / d.think_s : d.arrival_rps;
      const double app_rate =
          d.app_s > 0.0 ? (m_app[c] / share_app) / d.app_s : m_app[c] * 1e9;
      const double db_rate =
          d.db_s > 0.0 ? (m_db[c] / share_db) / d.db_s : m_db[c] * 1e9;
      const double disk_rate =
          d.disk_s > 0.0 ? (m_disk[c] / share_disk) / d.disk_s
                         : m_disk[c] * 1e9;
      d_app[c] = in_rate - app_rate;
      d_db[c] = app_rate - db_rate;
      d_disk[c] = db_rate - disk_rate;
      max_delta = std::max({max_delta, std::abs(d_app[c]), std::abs(d_db[c]),
                            std::abs(d_disk[c])});
      max_rate = std::max({max_rate, in_rate, app_rate, db_rate, disk_rate});
    }
    if (max_delta < kTol * std::max(1.0, max_rate)) break;
    // Step small enough that no station's mass moves by more than ~10% of
    // the fastest rate's characteristic time.
    const double dt = 0.1 / max_rate * std::max(1.0, tot_app + tot_db + tot_disk);
    const double h = std::min(dt, 0.05);
    for (std::size_t c = 0; c < k; ++c) {
      m_app[c] = std::max(0.0, m_app[c] + h * d_app[c]);
      m_db[c] = std::max(0.0, m_db[c] + h * d_db[c]);
      m_disk[c] = std::max(0.0, m_disk[c] + h * d_disk[c]);
    }
  }

  // Back out per-class throughput and response time (Little's law).
  RunResult out;
  out.solved_by_fluid = true;
  double tot_x = 0.0, tot_buy_x = 0.0, tot_calls_x = 0.0;
  double rt_weighted = 0.0, p90_weighted = 0.0;
  for (std::size_t c = 0; c < k; ++c) {
    const ClassDemand& d = demand[c];
    const double in_system = m_app[c] + m_db[c] + m_disk[c];
    double x, rt;
    if (d.population > 0.0) {
      x = think_mass(c) / d.think_s;
      rt = x > 0.0 ? d.population / x - d.think_s : 0.0;
    } else {
      x = d.arrival_rps;
      rt = x > 0.0 ? in_system / x : 0.0;
    }
    rt = std::max(rt, d.app_s + d.db_s + d.disk_s);
    ClassResult cr;
    cr.throughput_rps = x;
    cr.mean_rt_s = rt;
    cr.p90_rt_s = rt * kLn10;  // exponential-tail approximation
    cr.completions = static_cast<std::size_t>(std::llround(x * config.measure_s));
    out.per_class[config.classes[c].name] = cr;
    tot_x += x;
    tot_buy_x += x * d.buy_fraction;
    tot_calls_x += x * d.db_calls;
    rt_weighted += rt * x;
    p90_weighted += cr.p90_rt_s * x;
    out.app_cpu_utilization += x * d.app_s;
    out.db_cpu_utilization += x * d.db_s;
    out.disk_utilization += x * d.disk_s;
  }
  out.throughput_rps = tot_x;
  out.mean_rt_s = tot_x > 0.0 ? rt_weighted / tot_x : 0.0;
  out.p90_rt_s = tot_x > 0.0 ? p90_weighted / tot_x : 0.0;
  out.buy_request_fraction = tot_x > 0.0 ? tot_buy_x / tot_x : 0.0;
  out.db_calls_per_request = tot_x > 0.0 ? tot_calls_x / tot_x : 0.0;
  out.app_cpu_utilization = std::min(1.0, out.app_cpu_utilization);
  out.db_cpu_utilization = std::min(1.0, out.db_cpu_utilization);
  out.disk_utilization = std::min(1.0, out.disk_utilization);
  out.cache_miss_ratio = !cache_on ? 0.0 : (miss_all ? 1.0 : 0.0);
  return out;
}

}  // namespace epp::sim::trade
