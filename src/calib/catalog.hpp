// The server catalog: one authoritative mapping from architecture name to
// everything the pipeline knows about it — the simulator spec that stands
// in for the physical machine, the model-side architecture description,
// and the established/new provenance that decides how the historical
// method calibrates it.
//
// This replaces the string-keyed spec_for/server_names maps that
// bench/common.cpp hardcoded and the examples and tools re-implied
// tuple-by-tuple.
#pragma once

#include <string>
#include <vector>

#include "core/trade_model.hpp"
#include "sim/trade/testbed.hpp"

namespace epp::calib {

/// One catalog entry. max_throughput_rps is 0 in the static catalog and
/// filled in by calibration (the measured application-specific benchmark).
struct ServerRecord {
  std::string name;
  sim::trade::ServerSpec sim;  // simulator stand-in for the machine
  core::ServerArch arch;       // how the performance models see it
  bool established = false;    // historical data available?
  double max_throughput_rps = 0.0;  // measured; 0 until calibrated
};

/// The case-study catalog, established servers first (AppServF, AppServVF,
/// then the new AppServS) — the order every calibration iterates in.
const std::vector<ServerRecord>& trade_catalog();

/// Catalog entry by name; throws std::invalid_argument for unknown names.
const ServerRecord& catalog_record(const std::string& name);

/// Simulator server spec by model name (the old bench::spec_for).
sim::trade::ServerSpec spec_for(const std::string& name);

/// Model-side architecture by name.
core::ServerArch arch_for(const std::string& name);

/// All catalog names, established first.
const std::vector<std::string>& server_names();

}  // namespace epp::calib
