// EPP-BND-* semantic rules. Structure (001..006) is checked by
// calib::parse_bundle_text; these rules interrogate the *fitted
// parameters* a structurally-valid artifact carries, against what the
// paper's relationships say calibration must have produced. The
// directions in EPP-BND-011 follow relationship 2 as actually fitted on
// the testbed: a faster server (higher max throughput) has a *smaller*
// lower-equation intercept cL and a *smaller* upper-equation slope
// lambdaU (lambdaU * max-throughput is roughly constant).

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "calib/bundle.hpp"
#include "hydra/model.hpp"
#include "hydra/relationships.hpp"
#include "lint/lint.hpp"

namespace epp::lint {
namespace {

/// The paper's client think time (seconds); the gradient m is the slope
/// of throughput in clients, which first-order queueing says is about
/// 1/think-time while the server is unsaturated.
constexpr double kPaperThinkTimeS = 7.0;

SourceLocation server_location(const std::string& file,
                               const calib::BundleParseInfo& info,
                               const std::string& name) {
  if (const auto it = info.server_lines.find(name);
      it != info.server_lines.end())
    return {file, it->second};
  return {file, 0};
}

void check_relationship1(const calib::CalibrationBundle& bundle,
                         const std::string& file,
                         const calib::BundleParseInfo& info,
                         Diagnostics& diagnostics) {
  for (const std::string& which : {std::string("mean"), std::string("p90")}) {
    const hydra::HistoricalModel& model =
        which == "mean" ? bundle.mean_model : bundle.p90_model;
    const SourceLocation block{
        file, which == "mean" ? info.mean_model_line : info.p90_model_line};
    for (const std::string& name : model.servers()) {
      const hydra::Relationship1& rel = model.server(name);
      const auto bad = [&](const std::string& param, double value) {
        diagnostics.error("EPP-BND-010", block,
                          which + " model, server '" + name + "': " + param +
                              " = " + fmt_value(value) +
                              " is not a plausible fit",
                          "re-run calibration; hand-edited parameters "
                          "rarely keep the curve monotone");
      };
      if (!std::isfinite(rel.c_lower) || rel.c_lower <= 0.0)
        bad("c_lower", rel.c_lower);
      if (!std::isfinite(rel.lambda_lower) || rel.lambda_lower < 0.0)
        bad("lambda_lower", rel.lambda_lower);
      if (!std::isfinite(rel.lambda_upper) || rel.lambda_upper <= 0.0)
        bad("lambda_upper", rel.lambda_upper);
      if (!std::isfinite(rel.c_upper)) bad("c_upper", rel.c_upper);
      if (!std::isfinite(rel.max_throughput_rps) ||
          rel.max_throughput_rps <= 0.0)
        bad("max_throughput_rps", rel.max_throughput_rps);
      if (!std::isfinite(rel.gradient_m) || rel.gradient_m <= 0.0)
        bad("gradient_m", rel.gradient_m);
      if (!(rel.transition_lo > 0.0) || !(rel.transition_hi > rel.transition_lo))
        diagnostics.error("EPP-BND-010", block,
                          which + " model, server '" + name +
                              "': transition band [" +
                              fmt_value(rel.transition_lo) + ", " +
                              fmt_value(rel.transition_hi) +
                              "] is not an increasing positive interval");
    }
  }
}

void check_monotonicity(const calib::CalibrationBundle& bundle,
                        const std::string& file,
                        const calib::BundleParseInfo& info,
                        Diagnostics& diagnostics) {
  const hydra::HistoricalModel& model = bundle.mean_model;
  std::vector<std::string> established = model.established_servers();
  if (established.size() < 2) return;  // EPP-BND-013's business
  std::sort(established.begin(), established.end(),
            [&](const std::string& a, const std::string& b) {
              return model.server(a).max_throughput_rps <
                     model.server(b).max_throughput_rps;
            });
  for (std::size_t i = 1; i < established.size(); ++i) {
    const hydra::Relationship1& slow = model.server(established[i - 1]);
    const hydra::Relationship1& fast = model.server(established[i]);
    const SourceLocation where =
        server_location(file, info, established[i]);
    if (fast.c_lower >= slow.c_lower)
      diagnostics.warning(
          "EPP-BND-011", where,
          "c_lower does not decrease with max throughput: '" +
              established[i] + "' (" + fmt_value(fast.c_lower) +
              ") >= '" + established[i - 1] + "' (" +
              fmt_value(slow.c_lower) + ")",
          "relationship 2 expects faster servers to respond faster at "
          "light load; the cross-server extrapolation will be poor");
    if (fast.lambda_upper >= slow.lambda_upper)
      diagnostics.warning(
          "EPP-BND-011", where,
          "lambda_upper does not decrease with max throughput: '" +
              established[i] + "' (" + fmt_value(fast.lambda_upper) +
              ") >= '" + established[i - 1] + "' (" +
              fmt_value(slow.lambda_upper) + ")",
          "lambda_upper scales as 1/max-throughput across servers");
  }
}

void check_gradient(const calib::CalibrationBundle& bundle,
                    const std::string& file,
                    const calib::BundleParseInfo& info,
                    Diagnostics& diagnostics) {
  if (!(bundle.gradient_m > 0.0)) return;  // structural rules reported it
  const double product = bundle.gradient_m * kPaperThinkTimeS;
  if (product < 0.1 || product > 10.0)
    diagnostics.warning(
        "EPP-BND-012", {file, info.gradient_line},
        "gradient m = " + fmt_value(bundle.gradient_m) +
            " is implausible against a " + fmt_value(kPaperThinkTimeS) +
            " s think time (m*think = " + fmt_value(product) + ")",
        "unsaturated closed clients give m of about 1/think-time "
        "(the paper's 0.14); check the calibration run");
}

void check_provenance(const calib::CalibrationBundle& bundle,
                      const std::string& file,
                      const calib::BundleParseInfo& info,
                      Diagnostics& diagnostics) {
  std::size_t established = 0;
  for (const calib::ServerRecord& record : bundle.servers)
    if (record.established) ++established;
  if (established < 2)
    diagnostics.error(
        "EPP-BND-013", {file, 0},
        "only " + std::to_string(established) +
            " established server(s) in the catalog",
        "the relationship-2 cross-server fit needs at least two "
        "established servers");
  if (!info.have_seeds)
    diagnostics.warning("EPP-BND-015", {file, 0},
                        "no seeds record: run provenance is lost",
                        "artifacts written by epp_calibrate carry the "
                        "seeds the pipeline drew from");
}

void check_catalog_agreement(const calib::CalibrationBundle& bundle,
                             const std::string& file,
                             const calib::BundleParseInfo& info,
                             Diagnostics& diagnostics) {
  for (const calib::ServerRecord& record : bundle.servers) {
    if (!bundle.mean_model.has_server(record.name)) {
      diagnostics.warning("EPP-BND-014",
                          server_location(file, info, record.name),
                          "server '" + record.name +
                              "' has no fit in the embedded mean model");
      continue;
    }
    const double fitted =
        bundle.mean_model.server(record.name).max_throughput_rps;
    const double recorded = record.max_throughput_rps;
    if (!(recorded > 0.0) || !(fitted > 0.0)) continue;  // EPP-BND-010/002
    const double ratio = fitted / recorded;
    if (ratio < 0.99 || ratio > 1.01)
      diagnostics.warning(
          "EPP-BND-014", server_location(file, info, record.name),
          "catalog max throughput for '" + record.name + "' (" +
              fmt_value(recorded) +
              ") disagrees with the embedded mean model (" +
              fmt_value(fitted) + ")",
          "the catalog record and the fit come from the same benchmark; "
          "a mismatch means records from different runs were mixed");
  }
}

}  // namespace

void lint_bundle_text(const std::string& text, const std::string& file,
                      Diagnostics& diagnostics) {
  Diagnostics structural;
  calib::BundleParseInfo info;
  const calib::CalibrationBundle bundle =
      calib::parse_bundle_text(text, file, structural, &info);
  const bool trustworthy = !structural.has_errors();
  for (const Diagnostic& diagnostic : structural.all())
    diagnostics.add(diagnostic);
  // Semantic rules interrogate fitted parameters; on a partial parse
  // they would chase default-constructed models and drown the real
  // finding in noise.
  if (!trustworthy) return;
  check_relationship1(bundle, file, info, diagnostics);
  check_monotonicity(bundle, file, info, diagnostics);
  check_gradient(bundle, file, info, diagnostics);
  check_provenance(bundle, file, info, diagnostics);
  check_catalog_agreement(bundle, file, info, diagnostics);
}

}  // namespace epp::lint
