// Checked CLI parsing: whole-token numbers with flag-named errors.
//
// These are the regression tests for the bare-std::stod bugs the
// helpers replaced: "10x" silently parsing as 10, `--tol abc` escaping
// as an uncaught std::invalid_argument("stod"), `lo:hi:step` ranges
// with step <= 0 looping forever and hi < lo expanding to an empty
// grid without a word. Pre-fix code fails every "named error" and
// "junk suffix" expectation here.
#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace epp::util::cli {
namespace {

template <typename Fn>
std::string message_of(Fn&& fn) {
  try {
    fn();
  } catch (const UsageError& error) {
    return error.what();
  }
  return {};
}

// ---------------------------------------------------------------------------
// parse_double and bounded variants.
// ---------------------------------------------------------------------------

TEST(CliParse, ParsesPlainAndScientificDoubles) {
  EXPECT_DOUBLE_EQ(parse_double("--x", "2.5"), 2.5);
  EXPECT_DOUBLE_EQ(parse_double("--x", "-0.125"), -0.125);
  EXPECT_DOUBLE_EQ(parse_double("--x", "1e3"), 1000.0);
}

TEST(CliParse, RejectsJunkSuffixThatStodAccepted) {
  // std::stod("10x") returns 10; the checked parser must refuse it.
  EXPECT_THROW(parse_double("--deadline-ms", "10x"), UsageError);
  EXPECT_THROW(parse_double("--deadline-ms", "1.5.2"), UsageError);
  EXPECT_THROW(parse_double("--deadline-ms", ""), UsageError);
  EXPECT_THROW(parse_double("--deadline-ms", "banana"), UsageError);
}

TEST(CliParse, RejectsNonFiniteDoubles) {
  EXPECT_THROW(parse_double("--x", "inf"), UsageError);
  EXPECT_THROW(parse_double("--x", "nan"), UsageError);
  EXPECT_THROW(parse_double("--x", "1e999"), UsageError);
}

TEST(CliParse, ErrorsNameTheFlagAndTheValue) {
  const std::string what =
      message_of([] { parse_double("--deadline-ms", "abc"); });
  EXPECT_NE(what.find("--deadline-ms"), std::string::npos) << what;
  EXPECT_NE(what.find("'abc'"), std::string::npos) << what;
}

TEST(CliParse, BoundedVariantsEnforceTheirBounds) {
  EXPECT_DOUBLE_EQ(parse_positive_double("--x", "0.1"), 0.1);
  EXPECT_THROW(parse_positive_double("--x", "0"), UsageError);
  EXPECT_THROW(parse_positive_double("--x", "-1"), UsageError);
  EXPECT_DOUBLE_EQ(parse_double_at_least("--x", "0", 0.0), 0.0);
  EXPECT_THROW(parse_double_at_least("--x", "-0.5", 0.0), UsageError);
}

// ---------------------------------------------------------------------------
// parse_int / parse_size.
// ---------------------------------------------------------------------------

TEST(CliParse, ParsesIntegersWithinBounds) {
  EXPECT_EQ(parse_int("--port", "8080", 0, 65535), 8080);
  EXPECT_EQ(parse_int("--n", "-3", -10, 10), -3);
}

TEST(CliParse, RejectsIntegerJunkRangeAndOverflow) {
  EXPECT_THROW(parse_int("--port", "80a", 0, 65535), UsageError);
  EXPECT_THROW(parse_int("--port", "8.5", 0, 65535), UsageError);
  EXPECT_THROW(parse_int("--port", "70000", 0, 65535), UsageError);
  EXPECT_THROW(parse_int("--port", "99999999999999999999", 0, 65535),
               UsageError);
  const std::string what =
      message_of([] { parse_int("--port", "70000", 0, 65535); });
  EXPECT_NE(what.find("[0, 65535]"), std::string::npos) << what;
}

TEST(CliParse, SizeEnforcesLowerBoundAndRejectsNegatives) {
  EXPECT_EQ(parse_size("--threads", "4", 1), 4u);
  EXPECT_THROW(parse_size("--threads", "0", 1), UsageError);
  EXPECT_THROW(parse_size("--threads", "-2", 1), UsageError);
}

// ---------------------------------------------------------------------------
// parse_range: the lo:hi:step expansion.
// ---------------------------------------------------------------------------

TEST(CliParse, ExpandsInclusiveRange) {
  const std::vector<double> loads = parse_range("--loads", "200:1400:100");
  ASSERT_EQ(loads.size(), 13u);
  EXPECT_DOUBLE_EQ(loads.front(), 200.0);
  EXPECT_DOUBLE_EQ(loads.back(), 1400.0);
}

TEST(CliParse, SingletonRangeWhenLoEqualsHi) {
  const std::vector<double> one = parse_range("--loads", "500:500:100");
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one.front(), 500.0);
}

TEST(CliParse, RangeRejectsNonPositiveStepWithNamedError) {
  // step = 0 used to loop forever; step < 0 walked backwards forever.
  EXPECT_THROW(parse_range("--loads", "100:200:0"), UsageError);
  EXPECT_THROW(parse_range("--loads", "100:200:-5"), UsageError);
  const std::string what =
      message_of([] { parse_range("--loads", "100:200:0"); });
  EXPECT_NE(what.find("--loads"), std::string::npos) << what;
  EXPECT_NE(what.find("step must be > 0"), std::string::npos) << what;
}

TEST(CliParse, RangeRejectsHiBelowLoWithNamedError) {
  EXPECT_THROW(parse_range("--loads", "1400:200:100"), UsageError);
  const std::string what =
      message_of([] { parse_range("--loads", "1400:200:100"); });
  EXPECT_NE(what.find("hi < lo"), std::string::npos) << what;
}

TEST(CliParse, RangeRejectsMalformedSpecAndFields) {
  EXPECT_THROW(parse_range("--loads", "100:200"), UsageError);
  EXPECT_THROW(parse_range("--loads", "100:200:50:25"), UsageError);
  EXPECT_THROW(parse_range("--loads", "a:200:50"), UsageError);
  EXPECT_THROW(parse_range("--loads", "100:2OO:50"), UsageError);
}

TEST(CliParse, RangeRefusesAbsurdExpansions) {
  // A step in the wrong unit (1e-6 instead of 100) would allocate
  // hundreds of millions of grid points; refuse past kMaxRangePoints.
  EXPECT_THROW(parse_range("--loads", "0:1000000000:0.5"), UsageError);
}

// ---------------------------------------------------------------------------
// parse_double_list.
// ---------------------------------------------------------------------------

TEST(CliParse, ParsesCommaSeparatedList) {
  const std::vector<double> buys = parse_double_list("--buys", "0,25,50");
  ASSERT_EQ(buys.size(), 3u);
  EXPECT_DOUBLE_EQ(buys[1], 25.0);
}

TEST(CliParse, ListToleratesEmptyFieldsButNotJunkOrEmptiness) {
  EXPECT_EQ(parse_double_list("--buys", "1,,2,").size(), 2u);
  EXPECT_THROW(parse_double_list("--buys", "1,x,2"), UsageError);
  EXPECT_THROW(parse_double_list("--buys", ""), UsageError);
  EXPECT_THROW(parse_double_list("--buys", ",,"), UsageError);
}

}  // namespace
}  // namespace epp::util::cli
