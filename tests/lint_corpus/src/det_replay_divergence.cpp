// Corpus: EPP-DET-001 (entropy source). Also the runtime cross-check
// fixture for the determinism family: tests/lint_srclint_test.cpp
// #includes this file and calls entropy_draws() twice — the replay-gate
// analogue of running a pipeline in run-a and run-b — and asserts the
// two "runs" diverge on the very source line the static rule flags.
#include <array>
#include <random>

namespace lint_corpus {

inline std::array<unsigned int, 8> entropy_draws() {
  std::random_device device;  // each call is a fresh universe
  std::array<unsigned int, 8> draws{};
  for (auto& value : draws) value = device();
  return draws;
}

}  // namespace lint_corpus
