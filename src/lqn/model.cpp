#include "lqn/model.hpp"

#include <stdexcept>

namespace epp::lqn {

Task make_server_task(std::string name, ProcessorId processor,
                      std::size_t multiplicity) {
  Task task;
  task.name = std::move(name);
  task.processor = processor;
  task.multiplicity = multiplicity;
  return task;
}

Task make_closed_client_task(std::string name, ProcessorId processor,
                             double population, double think_time_s,
                             int priority) {
  Task task;
  task.name = std::move(name);
  task.processor = processor;
  task.is_reference = true;
  task.population = population;
  task.think_time_s = think_time_s;
  task.priority = priority;
  return task;
}

Task make_open_client_task(std::string name, ProcessorId processor,
                           double arrival_rate_rps, int priority) {
  Task task;
  task.name = std::move(name);
  task.processor = processor;
  task.is_reference = true;
  task.open_arrivals = true;
  task.arrival_rate_rps = arrival_rate_rps;
  task.priority = priority;
  return task;
}

ProcessorId Model::add_processor(Processor processor) {
  processors_.push_back(std::move(processor));
  return processors_.size() - 1;
}

TaskId Model::add_task(Task task) {
  if (task.processor >= processors_.size())
    throw std::invalid_argument("Model: task references unknown processor");
  tasks_.push_back(std::move(task));
  return tasks_.size() - 1;
}

EntryId Model::add_entry(Entry entry) {
  if (entry.task >= tasks_.size())
    throw std::invalid_argument("Model: entry references unknown task");
  const EntryId id = entries_.size();
  tasks_[entry.task].entries.push_back(id);
  entries_.push_back(std::move(entry));
  return id;
}

void Model::add_call(EntryId from, EntryId to, double mean_calls) {
  if (from >= entries_.size() || to >= entries_.size())
    throw std::invalid_argument("Model: call references unknown entry");
  if (mean_calls < 0.0)
    throw std::invalid_argument("Model: negative mean call count");
  entries_[from].calls.push_back(Call{to, mean_calls});
}

std::optional<TaskId> Model::find_task(const std::string& name) const {
  for (TaskId id = 0; id < tasks_.size(); ++id)
    if (tasks_[id].name == name) return id;
  return std::nullopt;
}

std::optional<EntryId> Model::find_entry(const std::string& name) const {
  for (EntryId id = 0; id < entries_.size(); ++id)
    if (entries_[id].name == name) return id;
  return std::nullopt;
}

std::optional<ProcessorId> Model::find_processor(const std::string& name) const {
  for (ProcessorId id = 0; id < processors_.size(); ++id)
    if (processors_[id].name == name) return id;
  return std::nullopt;
}

std::vector<TaskId> Model::reference_tasks() const {
  std::vector<TaskId> refs;
  for (TaskId id = 0; id < tasks_.size(); ++id)
    if (tasks_[id].is_reference) refs.push_back(id);
  return refs;
}

namespace {

enum class VisitState : unsigned char { kUnvisited, kInProgress, kDone };

void check_acyclic(const Model& model, EntryId entry,
                   std::vector<VisitState>& state) {
  VisitState& s = state[entry];
  if (s == VisitState::kDone) return;
  if (s == VisitState::kInProgress)
    throw std::invalid_argument("Model: call graph contains a cycle through entry '" +
                                model.entry(entry).name + "'");
  s = VisitState::kInProgress;
  for (const Call& call : model.entry(entry).calls)
    check_acyclic(model, call.target, state);
  s = VisitState::kDone;
}

}  // namespace

void Model::validate() const {
  if (reference_tasks().empty())
    throw std::invalid_argument("Model: no reference (client) task");
  for (const Task& task : tasks_) {
    if (task.is_reference) {
      if (task.open_arrivals) {
        if (task.arrival_rate_rps <= 0.0)
          throw std::invalid_argument("Model: open reference task '" +
                                      task.name +
                                      "' needs a positive arrival rate");
      } else if (task.population <= 0.0) {
        throw std::invalid_argument("Model: reference task '" + task.name +
                                    "' needs a positive population");
      }
      if (task.think_time_s < 0.0)
        throw std::invalid_argument("Model: reference task '" + task.name +
                                    "' has a negative think time");
      if (task.entries.size() != 1)
        throw std::invalid_argument("Model: reference task '" + task.name +
                                    "' must have exactly one entry");
    }
    if (task.entries.empty())
      throw std::invalid_argument("Model: task '" + task.name +
                                  "' has no entries");
    if (task.multiplicity == 0)
      throw std::invalid_argument("Model: task '" + task.name +
                                  "' has zero multiplicity");
  }
  for (const Entry& entry : entries_) {
    if (entry.service_demand_s < 0.0)
      throw std::invalid_argument("Model: entry '" + entry.name +
                                  "' has a negative demand");
    for (const Call& call : entry.calls) {
      const Entry& target = entries_.at(call.target);
      if (tasks_[target.task].is_reference)
        throw std::invalid_argument("Model: entry '" + entry.name +
                                    "' calls into a reference task");
      if (target.task == entry.task)
        throw std::invalid_argument("Model: entry '" + entry.name +
                                    "' calls its own task");
    }
  }
  std::vector<VisitState> state(entries_.size(), VisitState::kUnvisited);
  for (EntryId id = 0; id < entries_.size(); ++id)
    check_acyclic(*this, id, state);
}

namespace {

void accumulate_visits(const Model& model, EntryId entry, double weight,
                       std::vector<double>& visits) {
  visits[entry] += weight;
  for (const Call& call : model.entry(entry).calls)
    accumulate_visits(model, call.target, weight * call.mean_calls, visits);
}

}  // namespace

std::vector<double> Model::visit_ratios(TaskId ref) const {
  const Task& task = tasks_.at(ref);
  if (!task.is_reference)
    throw std::invalid_argument("Model: visit_ratios on non-reference task");
  std::vector<double> visits(entries_.size(), 0.0);
  accumulate_visits(*this, task.entries.front(), 1.0, visits);
  return visits;
}

}  // namespace epp::lqn
