#include "rm/types.hpp"

namespace epp::rm {

double Allocation::scaled_on_server(std::size_t i) const {
  double total = 0.0;
  for (const auto& [_, clients] : per_server.at(i)) total += clients;
  return total;
}

double Allocation::buy_scaled_on_server(
    std::size_t i, const std::vector<ServiceClassSpec>& classes) const {
  double buy = 0.0;
  for (const ServiceClassSpec& c : classes) {
    if (!c.is_buy) continue;
    const auto it = per_server.at(i).find(c.name);
    if (it != per_server.at(i).end()) buy += it->second;
  }
  return buy;
}

std::vector<PoolServer> standard_pool(double power_s, double power_f,
                                      double power_vf) {
  std::vector<PoolServer> pool;
  for (int i = 0; i < 8; ++i) pool.push_back({"AppServS", power_s});
  for (int i = 0; i < 4; ++i) pool.push_back({"AppServF", power_f});
  for (int i = 0; i < 4; ++i) pool.push_back({"AppServVF", power_vf});
  return pool;
}

std::vector<ServiceClassSpec> standard_classes(double total_clients) {
  return {
      {"buy", 0.150, true, 0.10 * total_clients},
      {"browse_high", 0.300, false, 0.45 * total_clients},
      {"browse_low", 0.600, false, 0.45 * total_clients},
  };
}

}  // namespace epp::rm
