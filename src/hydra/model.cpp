#include "hydra/model.hpp"

#include <stdexcept>

namespace epp::hydra {

HistoricalModel::HistoricalModel(double gradient_m) : gradient_m_(gradient_m) {
  if (gradient_m <= 0.0)
    throw std::invalid_argument("HistoricalModel: gradient must be positive");
}

void HistoricalModel::add_established(const std::string& name,
                                      const std::vector<DataPoint>& lower,
                                      const std::vector<DataPoint>& upper,
                                      double max_throughput_rps) {
  servers_[name] =
      fit_relationship1(lower, upper, max_throughput_rps, gradient_m_);
  established_.push_back(name);
  refit_cross_server();
}

void HistoricalModel::add_calibrated(const std::string& name,
                                     const Relationship1& rel) {
  servers_[name] = rel;
}

void HistoricalModel::restore_established(const std::string& name,
                                          const Relationship1& rel) {
  servers_[name] = rel;
  established_.push_back(name);
  refit_cross_server();
}

void HistoricalModel::refit_cross_server() {
  if (established_.size() < 2) return;
  std::vector<Relationship1> fits;
  for (const std::string& established : established_)
    fits.push_back(servers_.at(established));
  rel2_ = fit_relationship2(fits);
}

void HistoricalModel::add_new_server(const std::string& name,
                                     double max_throughput_rps) {
  servers_[name] = cross_server_fit().predict_for(max_throughput_rps, gradient_m_);
}

bool HistoricalModel::has_server(const std::string& name) const {
  return servers_.count(name) != 0;
}

bool HistoricalModel::is_established(const std::string& name) const {
  for (const std::string& established : established_)
    if (established == name) return true;
  return false;
}

const Relationship1& HistoricalModel::server(const std::string& name) const {
  const auto it = servers_.find(name);
  if (it == servers_.end())
    throw std::out_of_range("HistoricalModel: unknown server '" + name + "'");
  return it->second;
}

std::vector<std::string> HistoricalModel::servers() const {
  std::vector<std::string> names;
  names.reserve(servers_.size());
  for (const auto& [name, _] : servers_) names.push_back(name);
  return names;
}

const Relationship2& HistoricalModel::cross_server_fit() const {
  if (!rel2_)
    throw std::invalid_argument(
        "fit_relationship2: need at least two established servers");
  return *rel2_;
}

void HistoricalModel::calibrate_mix(const std::vector<double>& buy_pct,
                                    const std::vector<double>& max_tput) {
  mix_ = fit_relationship3(buy_pct, max_tput);
}

const Relationship3& HistoricalModel::mix_relationship() const {
  if (!mix_)
    throw std::logic_error("HistoricalModel: relationship 3 not calibrated");
  return *mix_;
}

double HistoricalModel::predict_metric(const std::string& name,
                                       double clients) const {
  return server(name).predict_metric(clients);
}

double HistoricalModel::predict_throughput(const std::string& name,
                                           double clients) const {
  return server(name).predict_throughput(clients);
}

double HistoricalModel::max_clients_for_metric(const std::string& name,
                                               double goal_s) const {
  return server(name).clients_for_metric(goal_s);
}

double HistoricalModel::predict_max_throughput(const std::string& name,
                                               double buy_pct) const {
  if (!mix_)
    throw std::logic_error("HistoricalModel: relationship 3 not calibrated");
  return mix_->predict(buy_pct, server(name).max_throughput_rps);
}

}  // namespace epp::hydra
