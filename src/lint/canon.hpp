// Artifact canonicalization for the determinism replay gate.
//
// tools/epp_replay runs a pipeline command twice (or at two thread
// counts) and byte-compares what it wrote. Most artifacts in this tree
// (.epp bundles, sweep CSV tables) are already bit-deterministic and
// compare verbatim — but the BENCH_*.json emitters measure wall time,
// which legitimately differs between runs. canonicalize_artifact()
// strips exactly those measurement fields so the *semantic* payload
// (counters, provenance, configuration) still has to match byte for
// byte.
//
// The contract with the emitters: wall-clock measurements live either
// under a top-level "timing" object or in keys matching the legacy
// wall-time patterns (ns_per_iter / *_per_second / *_ms / *_us /
// real_time / cpu_time). Everything else is covered by the gate. The
// canonical form is for comparison only — it is the input with lines
// dropped, and is not guaranteed to stay valid JSON.
#pragma once

#include <string>

namespace epp::lint {

/// True when `name`/`text` look like a JSON artifact the wall-time
/// scrub applies to; non-JSON artifacts pass through verbatim.
bool is_json_artifact(const std::string& name, const std::string& text);

/// Return `text` with wall-time measurement content removed (JSON
/// artifacts) or unchanged (everything else). Deterministic and
/// idempotent: canonicalize(canonicalize(x)) == canonicalize(x).
std::string canonicalize_artifact(const std::string& name,
                                  const std::string& text);

}  // namespace epp::lint
