// Corpus: EPP-HOT-003 — taking a lock inside a hot region.
#include "util/annotations.hpp"
#include "util/lock_rank.hpp"

namespace lint_corpus {

inline epp::util::RankedMutex hot_mutex{EPP_LOCK_RANK(60), "corpus.hot"};
inline int hot_state = 0;

EPP_HOT_BEGIN(corpus_lock);

inline int read_state() {
  const epp::util::MutexLock lock(hot_mutex);
  return hot_state;
}

EPP_HOT_END(corpus_lock);

}  // namespace lint_corpus
