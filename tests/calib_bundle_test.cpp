// The unified calibration pipeline: bundle serialization round trips,
// line-numbered rejection of malformed artifacts, and the headline
// contract — predictors built from a loaded bundle return *bit-identical*
// predictions (== on doubles) to freshly calibrated ones for all three
// methods.
#include "calib/bundle.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "calib/catalog.hpp"
#include "calib/predictor_set.hpp"
#include "calib/seeds.hpp"
#include "util/thread_pool.hpp"

namespace epp::calib {
namespace {

/// One shared calibration for the whole suite (the expensive half of the
/// paper's cost asymmetry; run it once).
const CalibrationBundle& fixture_bundle() {
  static const CalibrationBundle bundle = [] {
    util::ThreadPool pool;
    CalibrationOptions options;
    options.pool = &pool;
    return calibrate(options);
  }();
  return bundle;
}

std::string replace_line(const std::string& text, const std::string& from,
                         const std::string& to) {
  std::string out = text;
  const auto at = out.find(from);
  EXPECT_NE(at, std::string::npos) << from;
  out.replace(at, from.size(), to);
  return out;
}

TEST(CalibCatalog, EstablishedServersComeFirst) {
  const auto& names = server_names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "AppServF");
  EXPECT_EQ(names[1], "AppServVF");
  EXPECT_EQ(names[2], "AppServS");
  EXPECT_TRUE(catalog_record("AppServF").established);
  EXPECT_TRUE(catalog_record("AppServVF").established);
  EXPECT_FALSE(catalog_record("AppServS").established);
  EXPECT_THROW(catalog_record("AppServX"), std::invalid_argument);
}

TEST(CalibCatalog, SpecsMatchTestbedDefinitions) {
  for (const std::string& name : server_names()) {
    const sim::trade::ServerSpec spec = spec_for(name);
    const core::ServerArch arch = arch_for(name);
    EXPECT_EQ(spec.name, name);
    EXPECT_EQ(arch.name, name);
    EXPECT_DOUBLE_EQ(spec.speed, arch.speed);
  }
  EXPECT_DOUBLE_EQ(spec_for("AppServF").speed, 1.0);
}

TEST(CalibSeeds, ValidationSeedDistinctFromCalibrationSeeds) {
  const CalibrationBundle& bundle = fixture_bundle();
  EXPECT_NE(kValidationSeed, bundle.lqn_seed);
  EXPECT_NE(kValidationSeed, bundle.mix_seed);
  EXPECT_NE(kValidationSeed, bundle.sweep_seed);
}

TEST(CalibBundle, TextIsStableAcrossRoundTrips) {
  const std::string once = to_text(fixture_bundle());
  EXPECT_EQ(to_text(bundle_from_text(once)), once);
}

TEST(CalibBundle, RoundTripPreservesEveryField) {
  const CalibrationBundle& original = fixture_bundle();
  const CalibrationBundle loaded = bundle_from_text(to_text(original));

  EXPECT_EQ(loaded.lqn_seed, original.lqn_seed);
  EXPECT_EQ(loaded.mix_seed, original.mix_seed);
  EXPECT_EQ(loaded.sweep_seed, original.sweep_seed);
  EXPECT_EQ(loaded.gradient_m, original.gradient_m);

  ASSERT_EQ(loaded.servers.size(), original.servers.size());
  for (std::size_t i = 0; i < original.servers.size(); ++i) {
    const ServerRecord& a = original.servers[i];
    const ServerRecord& b = loaded.servers[i];
    EXPECT_EQ(b.name, a.name);
    EXPECT_EQ(b.established, a.established);
    EXPECT_EQ(b.sim.speed, a.sim.speed);
    EXPECT_EQ(b.sim.concurrency, a.sim.concurrency);
    EXPECT_EQ(b.sim.established, a.sim.established);
    EXPECT_EQ(b.arch.speed, a.arch.speed);
    EXPECT_EQ(b.arch.app_concurrency, a.arch.app_concurrency);
    EXPECT_EQ(b.arch.db_concurrency, a.arch.db_concurrency);
    EXPECT_EQ(b.max_throughput_rps, a.max_throughput_rps);
  }

  EXPECT_EQ(loaded.lqn.browse.app_demand_s, original.lqn.browse.app_demand_s);
  EXPECT_EQ(loaded.lqn.browse.db_cpu_per_call_s,
            original.lqn.browse.db_cpu_per_call_s);
  EXPECT_EQ(loaded.lqn.browse.disk_per_call_s,
            original.lqn.browse.disk_per_call_s);
  EXPECT_EQ(loaded.lqn.browse.mean_db_calls,
            original.lqn.browse.mean_db_calls);
  EXPECT_EQ(loaded.lqn.buy.app_demand_s, original.lqn.buy.app_demand_s);

  ASSERT_EQ(loaded.mix_points.size(), original.mix_points.size());
  for (std::size_t i = 0; i < original.mix_points.size(); ++i) {
    EXPECT_EQ(loaded.mix_points[i].buy_pct, original.mix_points[i].buy_pct);
    EXPECT_EQ(loaded.mix_points[i].max_throughput_rps,
              original.mix_points[i].max_throughput_rps);
  }

  // Model provenance survives (established order drives relationship 2).
  EXPECT_EQ(loaded.mean_model.established_servers(),
            original.mean_model.established_servers());
  EXPECT_EQ(loaded.p90_model.established_servers(),
            original.p90_model.established_servers());
}

// The acceptance criterion: a predictor set built from a bundle that went
// through disk-format text returns exactly the predictions of the fresh
// in-process calibration, for every method, server and workload probed.
TEST(CalibBundle, LoadedPredictionsBitIdenticalToFresh) {
  const CalibrationBundle& fresh_bundle = fixture_bundle();
  const CalibrationBundle loaded_bundle =
      bundle_from_text(to_text(fresh_bundle));
  const PredictorSet fresh = make_predictors(fresh_bundle);
  const PredictorSet loaded = make_predictors(loaded_bundle);

  const std::vector<const core::Predictor*> fresh_methods{
      fresh.historical.get(), fresh.lqn.get(), fresh.hybrid.get()};
  const std::vector<const core::Predictor*> loaded_methods{
      loaded.historical.get(), loaded.lqn.get(), loaded.hybrid.get()};

  for (std::size_t m = 0; m < fresh_methods.size(); ++m) {
    for (const std::string& server : server_names()) {
      for (const double clients : {150.0, 700.0, 1300.0, 2400.0}) {
        for (const double buy_fraction : {0.0, 0.25}) {
          core::WorkloadSpec w;
          w.buy_clients = clients * buy_fraction;
          w.browse_clients = clients - w.buy_clients;
          const std::string context = fresh_methods[m]->name() + " " + server +
                                      " n=" + std::to_string(clients) +
                                      " buy=" + std::to_string(buy_fraction);
          EXPECT_EQ(fresh_methods[m]->predict_mean_rt_s(server, w),
                    loaded_methods[m]->predict_mean_rt_s(server, w))
              << context;
          EXPECT_EQ(fresh_methods[m]->predict_throughput_rps(server, w),
                    loaded_methods[m]->predict_throughput_rps(server, w))
              << context;
        }
      }
      EXPECT_EQ(fresh_methods[m]->predict_max_throughput_rps(server, 0.25),
                loaded_methods[m]->predict_max_throughput_rps(server, 0.25))
          << server;
      EXPECT_EQ(
          fresh_methods[m]->max_clients_for_goal(server, 0.6).max_clients,
          loaded_methods[m]->max_clients_for_goal(server, 0.6).max_clients)
          << server;
    }
  }

  // The historical method's direct-percentile model rides along too.
  for (const std::string& server : server_names()) {
    ASSERT_TRUE(loaded.historical->has_direct_p90(server)) << server;
    for (const double clients : {300.0, 1500.0})
      EXPECT_EQ(fresh.historical->predict_p90_direct(server, clients),
                loaded.historical->predict_p90_direct(server, clients))
          << server;
  }
}

TEST(CalibBundle, SaveAndLoadFileRoundTrip) {
  const std::string path = testing::TempDir() + "calib_bundle_test.epp";
  save_bundle(path, fixture_bundle());
  const CalibrationBundle loaded = load_bundle(path);
  EXPECT_EQ(to_text(loaded), to_text(fixture_bundle()));
  EXPECT_THROW(load_bundle(path + ".does-not-exist"), std::runtime_error);
}

TEST(CalibBundle, RejectsMalformedInputWithLineNumbers) {
  auto message_of = [](const std::string& text) -> std::string {
    try {
      (void)bundle_from_text(text);
    } catch (const std::invalid_argument& error) {
      return error.what();
    }
    return "";
  };

  EXPECT_NE(message_of("").find("line 1"), std::string::npos);
  EXPECT_NE(message_of("not-a-bundle\n").find("line 1"), std::string::npos);
  EXPECT_NE(message_of("epp-bundle v1\nbogus record\n").find("line 2"),
            std::string::npos);
  EXPECT_NE(message_of("epp-bundle v1\ngradient -3\n").find("bad gradient"),
            std::string::npos);
  EXPECT_NE(
      message_of("epp-bundle v1\nserver AppServX maybe 1 50 1 50 20 100\n")
          .find("provenance"),
      std::string::npos);
  EXPECT_NE(message_of("epp-bundle v1\nlqn-params lurk 1 2 3 4\n")
                .find("unknown request type"),
            std::string::npos);
  // A structurally valid file missing required sections fails at the end.
  EXPECT_NE(message_of("epp-bundle v1\ngradient 0.14\n")
                .find("missing lqn-params"),
            std::string::npos);
}

TEST(CalibBundle, RejectsNonFiniteAndOutOfRangeNumbers) {
  // A corrupted artifact must fail at load time with the offending line,
  // not surface later as NaN predictions. Note operator>> happily parses
  // "nan"/"inf", so these exercise the explicit numeric validation.
  const std::string text = to_text(fixture_bundle());
  const auto message_of = [&](const std::string& from, const std::string& to) {
    try {
      (void)bundle_from_text(replace_line(text, from, to));
    } catch (const std::invalid_argument& error) {
      return std::string(error.what());
    }
    return std::string();
  };

  // Layout: line 3 gradient, 4-5 lqn-params, 6+ servers, then mix-points.
  const std::string bad_gradient = message_of("gradient ", "gradient nan #");
  EXPECT_NE(bad_gradient.find("line 3"), std::string::npos) << bad_gradient;
  EXPECT_NE(bad_gradient.find("bad gradient"), std::string::npos);
  EXPECT_NE(message_of("gradient ", "gradient inf #").find("bad gradient"),
            std::string::npos);
  EXPECT_NE(message_of("gradient ", "gradient 0 #").find("bad gradient"),
            std::string::npos);

  // This toolchain's operator>> refuses "nan"/"inf" (failbit), so those
  // land on the record-shape errors; the explicit range checks are what
  // catches negatives, zeros and out-of-range values that *do* parse.
  const std::string nan_params = message_of(
      "lqn-params browse ", "lqn-params browse nan 0.001 0.0004 1.14 #");
  EXPECT_NE(nan_params.find("line 4"), std::string::npos) << nan_params;
  const std::string negative_params = message_of(
      "lqn-params buy ", "lqn-params buy -0.01 0.001 0.0005 2 #");
  EXPECT_NE(negative_params.find("line 5"), std::string::npos)
      << negative_params;
  EXPECT_NE(negative_params.find("finite and non-negative"),
            std::string::npos);

  const std::string bad_speed = message_of(
      "server AppServF ", "server AppServF established -1 50 1 50 20 186 #");
  EXPECT_NE(bad_speed.find("line 6"), std::string::npos) << bad_speed;
  EXPECT_NE(bad_speed.find("finite and positive"), std::string::npos);
  EXPECT_NE(
      message_of("server AppServF ",
                 "server AppServF established 1 50 1 50 20 -186 #")
          .find("finite and positive"),
      std::string::npos);
  EXPECT_NE(message_of("server AppServF ",
                       "server AppServF established 1 0 1 50 20 186 #")
                .find("concurrency limits must be positive"),
            std::string::npos);

  EXPECT_NE(message_of("mix-point 0 ", "mix-point 150 200 #")
                .find("within [0, 100]"),
            std::string::npos);
  EXPECT_NE(message_of("mix-point 0 ", "mix-point -5 200 #")
                .find("within [0, 100]"),
            std::string::npos);
  EXPECT_NE(message_of("mix-point 0 ", "mix-point 0 -200 #")
                .find("finite and positive"),
            std::string::npos);
}

TEST(CalibBundle, RejectsTruncatedArtifacts) {
  const std::string text = to_text(fixture_bundle());

  // Cut the file mid-way through the embedded p90 model block.
  const auto p90_at = text.find("hydra-model p90");
  ASSERT_NE(p90_at, std::string::npos);
  const auto cut = text.find('\n', text.find('\n', p90_at) + 1);
  const std::string truncated = text.substr(0, cut + 1);
  try {
    (void)bundle_from_text(truncated);
    FAIL() << "truncated artifact accepted";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("truncated hydra-model block"),
              std::string::npos)
        << error.what();
  }

  // Declared line count larger than the block really is.
  const std::string overlong = replace_line(text, "hydra-model p90 ",
                                            "hydra-model p90 9");
  EXPECT_THROW((void)bundle_from_text(overlong), std::invalid_argument);
}

TEST(CalibBundle, RejectsGradientModelMismatch) {
  const std::string text = to_text(fixture_bundle());
  const std::string skewed =
      replace_line(text, "gradient ", "gradient 0.5 #");
  try {
    (void)bundle_from_text(skewed);
    FAIL() << "gradient/model mismatch accepted";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("disagrees"), std::string::npos)
        << error.what();
  }
}

TEST(CalibBundle, CorruptEmbeddedModelReportsBlock) {
  const std::string text = to_text(fixture_bundle());
  // Corrupt the embedded model header so the nested parser fails.
  const std::string corrupt =
      replace_line(text, "hydra-model v2", "hydra-model v9");
  try {
    (void)bundle_from_text(corrupt);
    FAIL() << "corrupt embedded model accepted";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("embedded"), std::string::npos)
        << error.what();
  }
}

}  // namespace
}  // namespace epp::calib
