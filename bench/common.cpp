#include "common.hpp"

#include <stdexcept>

#include "hydra/relationships.hpp"

namespace epp::bench {

sim::trade::ServerSpec spec_for(const std::string& server) {
  if (server == "AppServS") return sim::trade::app_serv_s();
  if (server == "AppServF") return sim::trade::app_serv_f();
  if (server == "AppServVF") return sim::trade::app_serv_vf();
  throw std::invalid_argument("unknown server '" + server + "'");
}

const std::vector<std::string>& server_names() {
  static const std::vector<std::string> kNames{"AppServF", "AppServVF",
                                               "AppServS"};
  return kNames;
}

Setup::Setup(bool measure_mix) {
  // --- support service 2: benchmark request processing speeds -----------
  max_s = sim::trade::measure_max_throughput(sim::trade::app_serv_s());
  max_f = sim::trade::measure_max_throughput(sim::trade::app_serv_f());
  max_vf = sim::trade::measure_max_throughput(sim::trade::app_serv_vf());
  if (measure_mix)
    max_f_buy25 =
        sim::trade::measure_max_throughput(sim::trade::app_serv_f(), 0.25, 11);

  // --- layered queuing calibration on the established AppServF ----------
  calibration = core::calibrate_lqn_from_testbed(7, &pool);
  lqn = std::make_unique<core::LqnPredictor>(calibration);
  for (const auto& arch : {core::arch_s(), core::arch_f(), core::arch_vf()})
    lqn->register_server(arch);

  // --- historical calibration: gradient m + 2 lower/2 upper points ------
  const auto grad_points = core::measure_sweep(sim::trade::app_serv_f(),
                                               {300.0, 600.0}, {}, &pool);
  gradient_m = hydra::fit_gradient(
      {grad_points[0].clients, grad_points[1].clients},
      {grad_points[0].throughput_rps, grad_points[1].throughput_rps});
  historical = std::make_unique<core::HistoricalPredictor>(gradient_m);
  for (const auto& [name, max] :
       {std::pair<std::string, double>{"AppServF", max_f},
        std::pair<std::string, double>{"AppServVF", max_vf}}) {
    const double knee = max / gradient_m;
    const auto lower = core::measure_sweep(
        spec_for(name), {0.25 * knee, 0.60 * knee}, {}, &pool);
    const auto upper = core::measure_sweep(
        spec_for(name), {1.25 * knee, 1.70 * knee}, {}, &pool);
    historical->calibrate_established(name, core::to_data_points(lower),
                                      core::to_data_points(upper), max);
    // Section 7.1: the same data points carry p90 samples, so the direct
    // percentile model calibrates for free.
    historical->calibrate_established_p90(name, core::to_p90_data_points(lower),
                                          core::to_p90_data_points(upper), max);
  }
  historical->register_new_server("AppServS", max_s);
  historical->register_new_server_p90("AppServS", max_s);
  if (measure_mix) historical->calibrate_mix({0.0, 25.0}, {max_f, max_f_buy25});

  // --- advanced hybrid: LQN-generated pseudo data per architecture ------
  hybrid = std::make_unique<core::HybridPredictor>(calibration);
  for (const auto& arch : {core::arch_s(), core::arch_f(), core::arch_vf()})
    hybrid->register_server(arch);
}

double Setup::max_tput(const std::string& server) const {
  if (server == "AppServS") return max_s;
  if (server == "AppServF") return max_f;
  if (server == "AppServVF") return max_vf;
  throw std::invalid_argument("unknown server '" + server + "'");
}

std::vector<core::MeasuredPoint> Setup::validation_sweep(
    const std::string& server, const std::vector<double>& fractions,
    double buy_client_fraction) {
  std::vector<double> clients;
  clients.reserve(fractions.size());
  for (double f : fractions) clients.push_back(f * n_star(server));
  core::SweepOptions options;
  options.buy_client_fraction = buy_client_fraction;
  options.seed = 0xC0FFEE;
  return core::measure_sweep(spec_for(server), clients, options, &pool);
}

}  // namespace epp::bench
