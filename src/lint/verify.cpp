// Orchestration for the EPP-SEM verifier: structural lint first, then —
// only on structurally clean artifacts — the semantic analyzers. A
// malformed artifact never reaches the semantic layer, so every SEM rule
// may assume a well-formed model (the same layering lint_bundle_text
// uses internally for its own semantic BND rules).
#include "lint/verify.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "lqn/parser.hpp"

namespace epp::lint {

void verify_bundle(const calib::CalibrationBundle& bundle,
                   const std::string& file,
                   const calib::BundleParseInfo* info,
                   const VerifyOptions& options, Diagnostics& diagnostics) {
  verify_hydra_curves(bundle, file, info, options, diagnostics);
  verify_fallback_chains(bundle, file, info, options, diagnostics);
}

namespace {

void verify_lqn_text(const std::string& text, const std::string& file,
                     const VerifyOptions& options, Diagnostics& diagnostics) {
  (void)options;
  Diagnostics structural;
  lint_lqn_text(text, file, structural);
  for (const Diagnostic& d : structural.all()) diagnostics.add(d);
  if (structural.has_errors()) return;
  const lqn::Model model = lqn::parse_model(text);  // lint proved it parses
  const LqnSourceIndex index = index_lqn_source(text);
  verify_lqn_model(model, file, diagnostics, &index);
}

}  // namespace

void verify_artifact_file(const std::string& path,
                          const VerifyOptions& options,
                          Diagnostics& diagnostics) {
  std::ifstream in(path);
  if (!in) {
    diagnostics.error("EPP-IO-001", {path, 0}, "cannot read file");
    return;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  switch (sniff_artifact(path, text)) {
    case ArtifactKind::kBundle: {
      // Lint findings and (when clean) the SEM findings, in one pass.
      Diagnostics structural;
      lint_bundle_text(text, path, structural);
      for (const Diagnostic& d : structural.all()) diagnostics.add(d);
      if (structural.has_errors()) return;
      Diagnostics scratch;
      calib::BundleParseInfo info;
      const calib::CalibrationBundle bundle =
          calib::parse_bundle_text(text, path, scratch, &info);
      verify_bundle(bundle, path, &info, options, diagnostics);
      return;
    }
    case ArtifactKind::kLqnModel:
      verify_lqn_text(text, path, options, diagnostics);
      return;
    case ArtifactKind::kWorkloadGrid:
      // No semantic layer beyond the per-record WKL rules.
      lint_workload_grid_text(text, path, diagnostics);
      return;
    case ArtifactKind::kFaultSpec:
      lint_fault_spec_text(text, path, diagnostics);
      return;
    case ArtifactKind::kUnknown:
      lint_artifact_file(path, diagnostics);  // emits the EPP-IO-001 advice
      return;
  }
}

}  // namespace epp::lint
