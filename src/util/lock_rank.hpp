// Ranked mutexes and the debug runtime lock-rank tracker.
//
// Every long-lived mutex in the tree is a RankedMutex (or
// RankedSharedMutex) declared with an EPP_LOCK_RANK(n) rank and a
// stable dotted name:
//
//   mutable util::RankedMutex mutex_{EPP_LOCK_RANK(30), "serve.registry"};
//
// The rank discipline is strict ascent: a thread may only acquire a
// mutex whose rank is strictly greater than the rank of every mutex it
// already holds. epp_srclint proves the discipline statically from the
// guard scopes it can see (EPP-CONC-001); this tracker enforces the
// same rule dynamically on every acquisition in debug/sanitizer builds
// (EPP_LOCK_RANK_CHECKS), so a code path the static scanner cannot
// follow — callbacks, virtual dispatch, locks taken through several
// call layers — still aborts loudly with both lock names on the first
// inversion. Release builds compile the checks out entirely; the
// wrappers are then a plain std::mutex / std::shared_mutex.
#pragma once

#include <mutex>
#include <shared_mutex>

#include "util/annotations.hpp"

namespace epp::util {

namespace lock_rank {

/// Called with (acquiring name, acquiring rank, held name, held rank)
/// when a thread acquires a mutex whose rank is not strictly greater
/// than every rank it already holds. A double-lock reports the same
/// mutex name on both sides. The default handler prints both names and
/// aborts.
using ViolationHandler = void (*)(const char* acquiring, int acquiring_rank,
                                  const char* held, int held_rank);

/// Install a handler (tests install a recording handler); returns the
/// previous one. Pass nullptr to restore the abort default.
ViolationHandler set_violation_handler(ViolationHandler handler) noexcept;

/// Record an acquisition on this thread, checking rank order first.
/// `mutex` identifies the object so re-locking the same mutex is
/// reported even when ranks would allow it (equal ranks never do).
/// Returns false when the acquisition was a same-thread re-lock and the
/// handler returned instead of aborting: the caller must then skip the
/// underlying lock() — actually re-locking a non-recursive mutex would
/// deadlock right here, under the very checker meant to report it.
bool on_acquire(int rank, const char* name, const void* mutex) noexcept;

/// Pop the record for `mutex` from this thread's held stack. Returns
/// false when that record was a downgraded re-lock, i.e. the caller
/// must skip the underlying unlock() to stay balanced.
bool on_release(const void* mutex) noexcept;

/// Number of mutexes the calling thread currently holds (test hook).
int held_count() noexcept;

}  // namespace lock_rank

/// std::mutex with a declared lock-order rank. Interface matches
/// std::mutex (BasicLockable + try_lock), so std::lock_guard,
/// std::unique_lock and std::condition_variable_any all work with it.
class EPP_CAPABILITY("mutex") RankedMutex {
 public:
  RankedMutex(int rank, const char* name) noexcept
      : rank_(rank), name_(name) {}
  RankedMutex(const RankedMutex&) = delete;
  RankedMutex& operator=(const RankedMutex&) = delete;

  void lock() EPP_ACQUIRE() {
#ifdef EPP_LOCK_RANK_CHECKS
    if (!lock_rank::on_acquire(rank_, name_, this)) return;
#endif
    mutex_.lock();
  }

  bool try_lock() EPP_TRY_ACQUIRE(true) {
    if (!mutex_.try_lock()) return false;
    // The underlying try_lock succeeded, so this thread cannot already
    // hold the mutex: on_acquire's re-lock branch is unreachable here.
#ifdef EPP_LOCK_RANK_CHECKS
    lock_rank::on_acquire(rank_, name_, this);
#endif
    return true;
  }

  void unlock() EPP_RELEASE() {
#ifdef EPP_LOCK_RANK_CHECKS
    if (!lock_rank::on_release(this)) return;
#endif
    mutex_.unlock();
  }

  int rank() const noexcept { return rank_; }
  const char* name() const noexcept { return name_; }

 private:
  const int rank_;
  const char* const name_;
  std::mutex mutex_;  // epp-lint: ignore(EPP-CONC-008) tracked via the enclosing RankedMutex's rank
};

/// std::shared_mutex with a declared lock-order rank. Shared
/// acquisitions obey the same rank discipline as exclusive ones: a
/// reader that later takes a lower-ranked writer lock is exactly the
/// deadlock shape the rank order exists to prevent.
class EPP_CAPABILITY("shared_mutex") RankedSharedMutex {
 public:
  RankedSharedMutex(int rank, const char* name) noexcept
      : rank_(rank), name_(name) {}
  RankedSharedMutex(const RankedSharedMutex&) = delete;
  RankedSharedMutex& operator=(const RankedSharedMutex&) = delete;

  void lock() EPP_ACQUIRE() {
#ifdef EPP_LOCK_RANK_CHECKS
    if (!lock_rank::on_acquire(rank_, name_, this)) return;
#endif
    mutex_.lock();
  }

  bool try_lock() EPP_TRY_ACQUIRE(true) {
    if (!mutex_.try_lock()) return false;
#ifdef EPP_LOCK_RANK_CHECKS
    lock_rank::on_acquire(rank_, name_, this);
#endif
    return true;
  }

  void unlock() EPP_RELEASE() {
#ifdef EPP_LOCK_RANK_CHECKS
    if (!lock_rank::on_release(this)) return;
#endif
    mutex_.unlock();
  }

  void lock_shared() EPP_ACQUIRE_SHARED() {
#ifdef EPP_LOCK_RANK_CHECKS
    if (!lock_rank::on_acquire(rank_, name_, this)) return;
#endif
    mutex_.lock_shared();
  }

  bool try_lock_shared() EPP_TRY_ACQUIRE(true) {
    if (!mutex_.try_lock_shared()) return false;
#ifdef EPP_LOCK_RANK_CHECKS
    lock_rank::on_acquire(rank_, name_, this);
#endif
    return true;
  }

  void unlock_shared() EPP_RELEASE_SHARED() {
#ifdef EPP_LOCK_RANK_CHECKS
    if (!lock_rank::on_release(this)) return;
#endif
    mutex_.unlock_shared();
  }

  int rank() const noexcept { return rank_; }
  const char* name() const noexcept { return name_; }

 private:
  const int rank_;
  const char* const name_;
  std::shared_mutex mutex_;  // epp-lint: ignore(EPP-CONC-008) tracked via the enclosing RankedSharedMutex's rank
};

/// RAII exclusive lock over RankedMutex, annotated for clang's
/// thread-safety analysis (std::lock_guard is analysis-opaque). The
/// lock()/unlock() passthroughs exist so std::condition_variable_any
/// can release and re-acquire around a wait; they carry no analysis
/// (the cv's internal unlock/lock pairing is invisible to it).
class EPP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(RankedMutex& mutex) EPP_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() EPP_RELEASE() { mutex_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // BasicLockable for std::condition_variable_any::wait.
  void lock() EPP_NO_THREAD_SAFETY_ANALYSIS { mutex_.lock(); }
  void unlock() EPP_NO_THREAD_SAFETY_ANALYSIS { mutex_.unlock(); }

 private:
  RankedMutex& mutex_;
};

/// RAII shared (reader) lock over RankedSharedMutex. Per the capability
/// convention, release annotations are unconditional EPP_RELEASE even
/// for shared acquisitions.
class EPP_SCOPED_CAPABILITY SharedMutexLock {
 public:
  explicit SharedMutexLock(RankedSharedMutex& mutex) EPP_ACQUIRE_SHARED(mutex)
      : mutex_(mutex) {
    mutex_.lock_shared();
  }
  ~SharedMutexLock() EPP_RELEASE() { mutex_.unlock_shared(); }
  SharedMutexLock(const SharedMutexLock&) = delete;
  SharedMutexLock& operator=(const SharedMutexLock&) = delete;

 private:
  RankedSharedMutex& mutex_;
};

}  // namespace epp::util
