#include "hydra/model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace epp::hydra {
namespace {

struct Synthetic {
  double max_tput;
  double think = 7.0;
  double base_rt = 0.05;
  double gradient() const { return 1.0 / (think + base_rt); }
  double n_star() const { return max_tput / gradient(); }
  double rt(double n) const {
    return std::max(base_rt * std::exp(std::log(2.0) * n / n_star()),
                    n / max_tput - think);
  }
  std::vector<DataPoint> lower_points() const {
    return {{0.2 * n_star(), rt(0.2 * n_star()), 50},
            {0.6 * n_star(), rt(0.6 * n_star()), 50}};
  }
  std::vector<DataPoint> upper_points() const {
    return {{1.2 * n_star(), rt(1.2 * n_star()), 50},
            {1.8 * n_star(), rt(1.8 * n_star()), 50}};
  }
};

HistoricalModel calibrated_model() {
  const Synthetic f{186.0}, vf{320.0};
  HistoricalModel model(f.gradient());
  model.add_established("AppServF", f.lower_points(), f.upper_points(), 186.0);
  model.add_established("AppServVF", vf.lower_points(), vf.upper_points(), 320.0);
  return model;
}

TEST(HistoricalModel, EstablishedServerPredicts) {
  const HistoricalModel model = calibrated_model();
  const Synthetic f{186.0};
  EXPECT_TRUE(model.has_server("AppServF"));
  const double n = 0.4 * f.n_star();
  EXPECT_NEAR(model.predict_metric("AppServF", n), f.rt(n), 0.1 * f.rt(n));
  EXPECT_NEAR(model.predict_throughput("AppServF", 100.0),
              100.0 * f.gradient(), 1e-9);
}

TEST(HistoricalModel, NewServerViaRelationship2) {
  HistoricalModel model = calibrated_model();
  model.add_new_server("AppServS", 86.0);
  const Synthetic s{86.0};
  EXPECT_TRUE(model.has_server("AppServS"));
  const double n = 2.0 * s.n_star();  // deep saturation: upper equation
  EXPECT_NEAR(model.predict_metric("AppServS", n), s.rt(n), 0.08 * s.rt(n));
}

TEST(HistoricalModel, NewServerNeedsTwoEstablished) {
  const Synthetic f{186.0};
  HistoricalModel model(f.gradient());
  model.add_established("F", f.lower_points(), f.upper_points(), 186.0);
  EXPECT_THROW(model.add_new_server("S", 86.0), std::invalid_argument);
}

TEST(HistoricalModel, SlaCapacitySearch) {
  const HistoricalModel model = calibrated_model();
  const double goal = 0.6;  // 600 ms, the paper's low-priority browse goal
  const double capacity = model.max_clients_for_metric("AppServF", goal);
  EXPECT_GT(capacity, 0.0);
  EXPECT_LE(model.predict_metric("AppServF", capacity), goal * 1.01);
  EXPECT_GE(model.predict_metric("AppServF", capacity * 1.05), goal * 0.99);
}

TEST(HistoricalModel, MixCalibrationScalesMaxThroughput) {
  HistoricalModel model = calibrated_model();
  model.add_new_server("AppServS", 86.0);
  EXPECT_FALSE(model.has_mix_calibration());
  model.calibrate_mix({0.0, 25.0}, {189.0, 158.0});
  ASSERT_TRUE(model.has_mix_calibration());
  EXPECT_NEAR(model.predict_max_throughput("AppServS", 25.0),
              158.0 * 86.0 / 189.0, 1e-9);
}

TEST(HistoricalModel, MixWithoutCalibrationThrows) {
  const HistoricalModel model = calibrated_model();
  EXPECT_THROW(model.predict_max_throughput("AppServF", 10.0),
               std::logic_error);
}

TEST(HistoricalModel, UnknownServerThrows) {
  const HistoricalModel model = calibrated_model();
  EXPECT_THROW(model.predict_metric("nope", 100.0), std::out_of_range);
}

TEST(HistoricalModel, AddCalibratedDirectRegistration) {
  HistoricalModel model = calibrated_model();
  Relationship1 rel = model.server("AppServF");
  rel.max_throughput_rps = 150.0;
  model.add_calibrated("custom", rel);
  EXPECT_TRUE(model.has_server("custom"));
  EXPECT_DOUBLE_EQ(model.server("custom").max_throughput_rps, 150.0);
}

TEST(HistoricalModel, ServersEnumerated) {
  HistoricalModel model = calibrated_model();
  model.add_new_server("AppServS", 86.0);
  EXPECT_EQ(model.servers().size(), 3u);
}

TEST(HistoricalModel, RejectsNonPositiveGradient) {
  EXPECT_THROW(HistoricalModel(0.0), std::invalid_argument);
}

TEST(HistoricalModel, Relationship2RefitsAfterNewEstablishedServer) {
  // Adding a third established server must invalidate the cached fit.
  HistoricalModel model = calibrated_model();
  const Relationship2& before = model.cross_server_fit();
  const double c_before = before.c_upper_mean;
  const Synthetic mid{250.0};
  model.add_established("Mid", mid.lower_points(), mid.upper_points(), 250.0);
  const double c_after = model.cross_server_fit().c_upper_mean;
  // cU is ~-7 for every synthetic server so means stay close, but the fit
  // must have been recomputed over three servers (slope of cL changes).
  EXPECT_NEAR(c_after, c_before, 0.5);
  EXPECT_EQ(model.servers().size(), 3u);
}

}  // namespace
}  // namespace epp::hydra
