// Fixed-size worker pool used to parallelise embarrassingly parallel work:
// independent simulation replications, per-server calibration runs, the
// load sweeps behind figures 2-8 and the batch prediction engine. The
// calling thread always participates in parallel_for as one lane, and a
// worker re-entering its own pool runs the whole range itself instead of
// enqueuing lanes it would then deadlock waiting on — so parallel stages
// compose (an outer parallel_for body may call parallel_for again).
// Nested blocking submit()+get() from inside a worker still deadlocks.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "util/annotations.hpp"
#include "util/cancellation.hpp"
#include "util/lock_rank.hpp"

namespace epp::util {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency (minimum 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; the future reports its result (or exception).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      MutexLock lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  /// Exceptions from any task are rethrown (first one wins). When `cancel`
  /// is given and fires, lanes stop claiming new indices — indices already
  /// claimed still run to completion, unclaimed ones are skipped silently
  /// (callers that must account for every index check the token per item).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    const CancellationToken* cancel = nullptr);

 private:
  void worker_loop();

  // Condition-variable predicate; the cv holds mutex_ around the call
  // but the analysis cannot see that.
  bool queue_ready() const EPP_NO_THREAD_SAFETY_ANALYSIS {
    // epp-lint: ignore(EPP-CONC-005) cv wait holds mutex_ around the predicate
    return stopping_ || !queue_.empty();
  }

  std::vector<std::thread> workers_;
  mutable RankedMutex mutex_{EPP_LOCK_RANK(90), "util.pool.queue"};
  std::queue<std::function<void()>> queue_ EPP_GUARDED_BY(mutex_);
  std::condition_variable_any cv_;
  bool stopping_ EPP_GUARDED_BY(mutex_) = false;
};

}  // namespace epp::util
