// Figure 2 — mean response time predictions for the typical workload on
// new and established server architectures: measured curves vs historical
// and layered-queuing predictions for AppServS/F/VF.
//
// Expected shape (paper): both methods track the measured hockey-stick
// curves; historical is the more accurate on mean response time
// (89.1%/83% est/new vs 68.8%/73.4% for the LQN), while both predict
// throughput to within a few percent.
#include <iostream>

#include "common.hpp"
#include "util/table.hpp"

int main() {
  using namespace epp;
  std::cout << "== Figure 2: mean response time predictions, typical "
               "workload ==\n\n";

  bench::Setup setup;
  const std::vector<double> fractions{0.2, 0.4, 0.6, 0.8, 1.0,
                                      1.2, 1.4, 1.7, 2.0};

  for (const std::string& server : bench::server_names()) {
    const bool is_new = server == "AppServS";
    std::cout << "-- " << server << (is_new ? " (new architecture)" : " (established)")
              << ", max throughput " << util::fmt(setup.max_tput(server), 1)
              << " req/s --\n";
    const auto measured = setup.validation_sweep(server, fractions);
    util::Table table({"clients", "measured_rt_ms", "historical_rt_ms",
                       "lqn_rt_ms", "measured_tput_rps", "hist_tput_rps",
                       "lqn_tput_rps"});
    for (const core::MeasuredPoint& p : measured) {
      core::WorkloadSpec w;
      w.browse_clients = p.clients;
      table.add_row(
          {util::fmt(p.clients, 0), util::fmt(p.mean_rt_s * 1e3, 1),
           util::fmt(setup.historical->predict_mean_rt_s(server, w) * 1e3, 1),
           util::fmt(setup.lqn->predict_mean_rt_s(server, w) * 1e3, 1),
           util::fmt(p.throughput_rps, 1),
           util::fmt(setup.historical->predict_throughput_rps(server, w), 1),
           util::fmt(setup.lqn->predict_throughput_rps(server, w), 1)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "expected shape: flat response below the knee at "
               "max-throughput load, then linear growth (slope 1/max "
               "throughput); throughput linear with gradient m then flat.\n";
  return 0;
}
