// Response-time distribution extrapolation (paper section 7.1).
//
// SLAs are usually percentile-based ("p% of requests under rmax"), but the
// layered queuing and hybrid methods only predict means. The paper's
// observation: relative to the predicted mean, the response-time
// distribution has a stable shape per regime —
//
//   * before max throughput (CPU not saturated) response times are
//     approximately exponential around the mean;
//   * after max throughput the app-server queueing time dominates and the
//     distribution is approximately double-exponential (Laplace) with
//     location a = the predicted mean and a scale b that is constant
//     across server speeds (calibrated once; 204.1 ms in the paper).
//
// So a percentile prediction = mean prediction + the regime's inverse CDF.
#pragma once

#include <span>

namespace epp::dist {

enum class Regime { kPreSaturation, kPostSaturation };

/// A fitted response-time distribution able to answer CDF / quantile
/// queries. Construct via the factories.
class ResponseTimeDistribution {
 public:
  /// Exponential with the given mean (pre-saturation regime).
  static ResponseTimeDistribution exponential(double mean_s);
  /// Double-exponential (Laplace) with location a and scale b
  /// (post-saturation regime).
  static ResponseTimeDistribution double_exponential(double location_s,
                                                     double scale_s);

  Regime regime() const noexcept { return regime_; }
  double location() const noexcept { return location_; }
  double scale() const noexcept { return scale_; }

  /// P(X <= x).
  double cdf(double x) const;
  /// Inverse CDF; p in (0, 1).
  double quantile(double p) const;
  double mean() const noexcept;

 private:
  ResponseTimeDistribution(Regime regime, double location, double scale)
      : regime_(regime), location_(location), scale_(scale) {}

  Regime regime_;
  double location_;  // exponential: unused (0); laplace: a
  double scale_;     // exponential: mean; laplace: b
};

/// Choose the regime's distribution for a mean-response-time prediction.
/// `post_saturation` selects the double-exponential branch with the
/// calibrated scale; otherwise the exponential branch.
ResponseTimeDistribution for_mean_prediction(double mean_rt_s,
                                             bool post_saturation,
                                             double scale_b_s);

/// Percentile prediction from a mean prediction (the paper's p = 90%).
double predict_percentile(double mean_rt_s, double p, bool post_saturation,
                          double scale_b_s);

/// Calibrate the post-saturation scale b from measured response-time
/// samples (maximum-likelihood for Laplace: mean absolute deviation from
/// the location). The paper calibrates this once on an established server
/// and reuses it across architectures.
double calibrate_scale_b(std::span<const double> samples_s, double location_s);

/// The paper's empirical variant: "these two functions are found to be
/// constant (relative to the predicted mean response time) across server
/// architectures", so instead of assuming the exact exponential/Laplace
/// forms, measure the p-quantile's relation to the mean on an established
/// server once per regime and extrapolate:
///   pre-saturation:  q_p = mean * ratio          (shape scales with mean)
///   post-saturation: q_p = mean + offset          (queueing tail shifts)
class PercentileExtrapolator {
 public:
  /// Calibrate for percentile p from one pre-saturation and one
  /// post-saturation measured sample set (established server).
  static PercentileExtrapolator calibrate(double p,
                                          std::span<const double> pre_samples_s,
                                          std::span<const double> post_samples_s);

  double p() const noexcept { return p_; }
  double pre_ratio() const noexcept { return pre_ratio_; }
  double post_offset_s() const noexcept { return post_offset_s_; }

  /// Percentile prediction from a mean prediction.
  double predict(double mean_rt_s, bool post_saturation) const;

 private:
  PercentileExtrapolator(double p, double ratio, double offset)
      : p_(p), pre_ratio_(ratio), post_offset_s_(offset) {}

  double p_;
  double pre_ratio_;
  double post_offset_s_;
};

}  // namespace epp::dist
