// The lint subsystem: the diagnostic engine, the EPP-* rule library and
// the artifact dispatcher.
//
// The heart of this suite is the golden corpus under tests/lint_corpus:
// every defective artifact there was written to trip exactly one rule,
// and the table below pins the rule ID, severity and source line the
// linter must report for it. The clean corpus pins the other direction —
// calibration-pipeline output must produce zero findings, so the rules
// can gate epp_sweep/epp_calibrate runs without false positives.

#include <gtest/gtest.h>

#include <cstddef>
#include <fstream>
#include <sstream>
#include <string>

#include "calib/bundle.hpp"
#include "core/errors.hpp"
#include "core/trade_model.hpp"
#include "lint/diagnostic.hpp"
#include "lint/lint.hpp"
#include "svc/fault.hpp"

namespace epp {
namespace {

using lint::Diagnostic;
using lint::Diagnostics;
using lint::Severity;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// --- the diagnostic engine -------------------------------------------------

TEST(DiagnosticEngine, SeverityOrderingAndExitCodes) {
  Diagnostics clean;
  EXPECT_EQ(lint::exit_code(clean), 0);

  Diagnostics notes;
  notes.note("EPP-LQN-007", {"m.lqn", 3}, "saturated");
  EXPECT_EQ(lint::exit_code(notes), 0);

  Diagnostics warnings;
  warnings.note("EPP-LQN-007", {"m.lqn", 3}, "saturated");
  warnings.warning("EPP-LQN-004", {"m.lqn", 5}, "unreachable");
  EXPECT_EQ(lint::exit_code(warnings), 1);
  EXPECT_FALSE(warnings.has_errors());

  Diagnostics errors;
  errors.warning("EPP-LQN-004", {"m.lqn", 5}, "unreachable");
  errors.error("EPP-LQN-003", {"m.lqn", 9}, "cycle");
  EXPECT_EQ(lint::exit_code(errors), 2);
  EXPECT_TRUE(errors.has_errors());
  EXPECT_EQ(errors.count(Severity::kError), 1u);
  EXPECT_EQ(errors.count(Severity::kWarning), 1u);
}

TEST(DiagnosticEngine, FirstAtLeastScansInEmissionOrder) {
  Diagnostics diagnostics;
  diagnostics.note("A", {"f", 1}, "first note");
  diagnostics.warning("B", {"f", 2}, "first warning");
  diagnostics.error("C", {"f", 3}, "first error");
  diagnostics.error("D", {"f", 4}, "second error");
  EXPECT_EQ(diagnostics.first_at_least(Severity::kNote)->rule, "A");
  EXPECT_EQ(diagnostics.first_at_least(Severity::kWarning)->rule, "B");
  EXPECT_EQ(diagnostics.first_at_least(Severity::kError)->rule, "C");
  Diagnostics only_notes;
  only_notes.note("A", {"f", 1}, "note");
  EXPECT_EQ(only_notes.first_at_least(Severity::kWarning), nullptr);
}

TEST(DiagnosticEngine, SortByLocationBreaksTiesByRuleId) {
  // Same (file, line) findings order by rule ID, so output is identical
  // no matter which rule pass emitted first — structural lint and the
  // EPP-SEM verifier can interleave freely without churning goldens.
  Diagnostics diagnostics;
  diagnostics.error("LATE", {"b.lqn", 9}, "late file");
  diagnostics.error("SECOND", {"a.lqn", 4}, "same line, added second");
  diagnostics.error("FIRST", {"a.lqn", 4}, "same line, added first");
  diagnostics.sort_by_location();
  ASSERT_EQ(diagnostics.size(), 3u);
  EXPECT_EQ(diagnostics.all()[0].rule, "FIRST");  // rule ID, not emission
  EXPECT_EQ(diagnostics.all()[1].rule, "SECOND");
  EXPECT_EQ(diagnostics.all()[2].rule, "LATE");
}

TEST(DiagnosticEngine, TextRenderingIsCompilerStyle) {
  Diagnostics diagnostics;
  diagnostics.error("EPP-BND-001", {"trade.epp", 1}, "bad header", "fix me");
  diagnostics.warning("EPP-BND-015", {"trade.epp", 0}, "no seeds");
  const std::string text = lint::render_text(diagnostics);
  EXPECT_NE(text.find("trade.epp:1: error: [EPP-BND-001] bad header"),
            std::string::npos);
  EXPECT_NE(text.find("    fix-it: fix me"), std::string::npos);
  // line 0 findings carry the file but no line component
  EXPECT_NE(text.find("trade.epp: warning: [EPP-BND-015] no seeds"),
            std::string::npos);
}

// Minimal JSON string scanner for the round-trip test below: finds the
// first `"key": "` after `from` and decodes the escaped value with the
// same escape set render_json emits (\" \\ \n \t \u00XX).
std::string json_string_field(const std::string& json, const std::string& key,
                              std::size_t from = 0) {
  const std::string needle = "\"" + key + "\": \"";
  const std::size_t start = json.find(needle, from);
  EXPECT_NE(start, std::string::npos) << "no field " << key;
  if (start == std::string::npos) return {};
  std::string value;
  for (std::size_t i = start + needle.size(); i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"') return value;
    if (c != '\\') {
      value.push_back(c);
      continue;
    }
    EXPECT_LT(++i, json.size()) << "dangling escape";
    switch (json[i]) {
      case '"': value.push_back('"'); break;
      case '\\': value.push_back('\\'); break;
      case 'n': value.push_back('\n'); break;
      case 't': value.push_back('\t'); break;
      case 'u': {
        EXPECT_LT(i + 4, json.size());
        value.push_back(static_cast<char>(
            std::stoi(json.substr(i + 1, 4), nullptr, 16)));
        i += 4;
        break;
      }
      default:
        ADD_FAILURE() << "unknown escape \\" << json[i];
    }
  }
  ADD_FAILURE() << "unterminated string for " << key;
  return value;
}

TEST(DiagnosticEngine, JsonRenderingEscapesAndRoundTrips) {
  // Every string field goes through the escaper — including the rule ID,
  // which used to be interpolated raw (a hostile rule string could break
  // the report's framing). Round-trip through a real unescape to prove
  // the original bytes survive, not just that backslashes appear.
  const std::string message = "clause 'a\"b\\c' wants target:knob";
  const std::string hint = "tab\there\nand a newline";
  const std::string rule = "EPP-\"QUOTED\"-001";
  Diagnostics diagnostics;
  diagnostics.error(rule, {"<spec>\x01odd", 0}, message, hint);
  const std::string json = lint::render_json(diagnostics);
  EXPECT_NE(json.find("a\\\"b\\\\c"), std::string::npos);
  EXPECT_NE(json.find("tab\\there"), std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
  EXPECT_NE(json.find("\"line\": 0"), std::string::npos);
  EXPECT_EQ(json_string_field(json, "rule"), rule);
  EXPECT_EQ(json_string_field(json, "message"), message);
  EXPECT_EQ(json_string_field(json, "hint"), hint);
  EXPECT_EQ(json_string_field(json, "file"), "<spec>\x01odd");
}

TEST(DiagnosticEngine, FmtValueUsesDefaultPrecision) {
  EXPECT_EQ(lint::fmt_value(500.0), "500");
  EXPECT_EQ(lint::fmt_value(1.14), "1.14");
  EXPECT_EQ(lint::fmt_value(-0.5), "-0.5");
}

// --- golden corpus: one defective artifact per rule ------------------------

struct GoldenCase {
  const char* file;       // relative to tests/lint_corpus
  const char* rule;       // the rule the artifact was written to trip
  Severity severity;      // at which severity
  int line;               // on which line (0 = whole artifact)
  int expected_exit;      // tool exit code for the file
};

class LintCorpus : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(LintCorpus, FlagsExpectedRuleAtExpectedLocation) {
  const GoldenCase& golden = GetParam();
  const std::string path =
      std::string(EPP_LINT_CORPUS_DIR) + "/" + golden.file;
  Diagnostics diagnostics;
  lint::lint_artifact_file(path, diagnostics);

  const Diagnostic* match = nullptr;
  for (const Diagnostic& diagnostic : diagnostics.all())
    if (diagnostic.rule == golden.rule) match = &diagnostic;
  ASSERT_NE(match, nullptr)
      << golden.file << " did not trip " << golden.rule << "; got:\n"
      << lint::render_text(diagnostics);
  EXPECT_EQ(match->severity, golden.severity) << golden.file;
  EXPECT_EQ(match->location.line, golden.line) << golden.file;
  EXPECT_EQ(match->location.file, path) << golden.file;
  EXPECT_EQ(lint::exit_code(diagnostics), golden.expected_exit)
      << golden.file << " findings:\n"
      << lint::render_text(diagnostics);
}

INSTANTIATE_TEST_SUITE_P(
    Bundles, LintCorpus,
    ::testing::Values(
        GoldenCase{"bundles/bad_header.epp", "EPP-BND-001", Severity::kError,
                   1, 2},
        GoldenCase{"bundles/malformed_gradient.epp", "EPP-BND-002",
                   Severity::kError, 3, 2},
        GoldenCase{"bundles/duplicate_gradient.epp", "EPP-BND-003",
                   Severity::kError, 4, 2},
        GoldenCase{"bundles/duplicate_server.epp", "EPP-BND-003",
                   Severity::kError, 7, 2},
        GoldenCase{"bundles/missing_gradient.epp", "EPP-BND-004",
                   Severity::kError, 0, 2},
        GoldenCase{"bundles/truncated_model.epp", "EPP-BND-005",
                   Severity::kError, 18, 2},
        GoldenCase{"bundles/gradient_mismatch.epp", "EPP-BND-006",
                   Severity::kError, 3, 2},
        GoldenCase{"bundles/nonmonotonic.epp", "EPP-BND-011",
                   Severity::kWarning, 7, 1},
        GoldenCase{"bundles/implausible_gradient.epp", "EPP-BND-012",
                   Severity::kWarning, 3, 1},
        GoldenCase{"bundles/single_established.epp", "EPP-BND-013",
                   Severity::kError, 0, 2},
        GoldenCase{"bundles/catalog_mismatch.epp", "EPP-BND-014",
                   Severity::kWarning, 6, 1},
        GoldenCase{"bundles/no_seeds.epp", "EPP-BND-015", Severity::kWarning,
                   0, 1}),
    [](const auto& test_info) {
      std::string name = test_info.param.rule;
      for (char& c : name)
        if (c == '-') c = '_';
      return name + "_" + std::to_string(test_info.param.line);
    });

INSTANTIATE_TEST_SUITE_P(
    LqnModels, LintCorpus,
    ::testing::Values(
        GoldenCase{"lqn/parse_error.lqn", "EPP-LQN-001", Severity::kError, 2,
                   2},
        GoldenCase{"lqn/no_ref.lqn", "EPP-LQN-002", Severity::kError, 0, 2},
        GoldenCase{"lqn/cycle.lqn", "EPP-LQN-003", Severity::kError, 7, 2},
        GoldenCase{"lqn/unreachable.lqn", "EPP-LQN-004", Severity::kWarning,
                   5, 1},
        GoldenCase{"lqn/negative_demand.lqn", "EPP-LQN-005", Severity::kError,
                   6, 2},
        GoldenCase{"lqn/zero_leaf.lqn", "EPP-LQN-006", Severity::kNote, 6, 0},
        GoldenCase{"lqn/zero_leaf.lqn", "EPP-LQN-007", Severity::kNote, 4, 0},
        GoldenCase{"lqn/ref_multiplicity.lqn", "EPP-LQN-008",
                   Severity::kWarning, 3, 1},
        GoldenCase{"lqn/branch_sum.lqn", "EPP-LQN-009", Severity::kWarning, 7,
                   1},
        GoldenCase{"lqn/bad_population.lqn", "EPP-LQN-010", Severity::kError,
                   3, 2},
        GoldenCase{"lqn/no_entries.lqn", "EPP-LQN-011", Severity::kError, 5,
                   2},
        GoldenCase{"lqn/self_call.lqn", "EPP-LQN-012", Severity::kError, 6,
                   2}),
    [](const auto& test_info) {
      std::string name = test_info.param.rule;
      for (char& c : name)
        if (c == '-') c = '_';
      return name + "_" + std::to_string(test_info.param.line);
    });

INSTANTIATE_TEST_SUITE_P(
    Workloads, LintCorpus,
    ::testing::Values(
        GoldenCase{"workloads/negative_clients.wkl", "EPP-WKL-001",
                   Severity::kError, 3, 2},
        GoldenCase{"workloads/negative_think.wkl", "EPP-WKL-002",
                   Severity::kError, 3, 2},
        GoldenCase{"workloads/bad_mix.wkl", "EPP-WKL-003", Severity::kError,
                   3, 2},
        GoldenCase{"workloads/empty.wkl", "EPP-WKL-004", Severity::kWarning,
                   3, 1}),
    [](const auto& test_info) {
      std::string name = test_info.param.rule;
      for (char& c : name)
        if (c == '-') c = '_';
      return name + "_" + std::to_string(test_info.param.line);
    });

INSTANTIATE_TEST_SUITE_P(
    FaultSpecs, LintCorpus,
    ::testing::Values(
        GoldenCase{"faults/malformed_clause.fspec", "EPP-FLT-001",
                   Severity::kError, 3, 2},
        GoldenCase{"faults/unknown_target.fspec", "EPP-FLT-002",
                   Severity::kError, 3, 2},
        GoldenCase{"faults/out_of_range.fspec", "EPP-FLT-003",
                   Severity::kError, 3, 2},
        GoldenCase{"faults/duplicate_knob.fspec", "EPP-FLT-004",
                   Severity::kError, 3, 2}),
    [](const auto& test_info) {
      std::string name = test_info.param.rule;
      for (char& c : name)
        if (c == '-') c = '_';
      return name + "_" + std::to_string(test_info.param.line);
    });

// --- clean corpus: pipeline artifacts must not trip anything ---------------

TEST(LintCleanCorpus, CalibratedBundleProducesZeroFindings) {
  Diagnostics diagnostics;
  lint::lint_artifact_file(std::string(EPP_LINT_CORPUS_DIR) +
                               "/clean/trade.epp",
                           diagnostics);
  EXPECT_TRUE(diagnostics.empty()) << lint::render_text(diagnostics);
}

TEST(LintCleanCorpus, FreshlyCalibratedBundleTextProducesZeroFindings) {
  // End to end: run the real calibration pipeline (mix skipped for
  // speed) and lint what it would persist. This is the guarantee the
  // epp_calibrate self-check and the epp_sweep pre-run gate rely on.
  calib::CalibrationOptions options;
  options.measure_mix = false;
  const calib::CalibrationBundle bundle = calib::calibrate(options);
  Diagnostics diagnostics;
  lint::lint_bundle_text(calib::to_text(bundle), "fresh.epp", diagnostics);
  EXPECT_TRUE(diagnostics.empty()) << lint::render_text(diagnostics);
}

TEST(LintCleanCorpus, TradeLqnModelExitsZero) {
  // The paper's testbed model deliberately saturates its pools
  // (population 500 against a 50-wide app pool), which is note-worthy
  // but not wrong: nothing at warning severity or above.
  Diagnostics diagnostics;
  lint::lint_artifact_file(std::string(EPP_MODELS_DIR) + "/trade.lqn",
                           diagnostics);
  EXPECT_EQ(diagnostics.first_at_least(Severity::kWarning), nullptr)
      << lint::render_text(diagnostics);
  EXPECT_EQ(lint::exit_code(diagnostics), 0);
}

TEST(LintCleanCorpus, WorkloadGridAndFaultSpecFilesAreClean) {
  Diagnostics grid;
  lint::lint_artifact_file(
      std::string(EPP_LINT_CORPUS_DIR) + "/clean/grid.wkl", grid);
  EXPECT_TRUE(grid.empty()) << lint::render_text(grid);

  Diagnostics faults;
  lint::lint_artifact_file(
      std::string(EPP_LINT_CORPUS_DIR) + "/clean/faults.fspec", faults);
  EXPECT_TRUE(faults.empty()) << lint::render_text(faults);
}

// --- dispatcher ------------------------------------------------------------

TEST(LintDispatcher, SniffsByExtensionThenContent) {
  EXPECT_EQ(lint::sniff_artifact("x.epp", ""), lint::ArtifactKind::kBundle);
  EXPECT_EQ(lint::sniff_artifact("x.lqn", ""), lint::ArtifactKind::kLqnModel);
  EXPECT_EQ(lint::sniff_artifact("x.wkl", ""),
            lint::ArtifactKind::kWorkloadGrid);
  EXPECT_EQ(lint::sniff_artifact("x.fspec", ""),
            lint::ArtifactKind::kFaultSpec);
  EXPECT_EQ(lint::sniff_artifact("x.txt", "epp-bundle v1\n"),
            lint::ArtifactKind::kBundle);
  EXPECT_EQ(lint::sniff_artifact("x.txt", "epp-workloads v1\n"),
            lint::ArtifactKind::kWorkloadGrid);
  EXPECT_EQ(lint::sniff_artifact("x.txt", "epp-faults v1\n"),
            lint::ArtifactKind::kFaultSpec);
  EXPECT_EQ(lint::sniff_artifact("x.txt", "# comment\nprocessor cpu ps\n"),
            lint::ArtifactKind::kLqnModel);
  EXPECT_EQ(lint::sniff_artifact("x.txt", "what is this\n"),
            lint::ArtifactKind::kUnknown);
}

TEST(LintDispatcher, UnreadableFileIsIo001) {
  Diagnostics diagnostics;
  lint::lint_artifact_file("/nonexistent/nowhere.epp", diagnostics);
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics.all()[0].rule, "EPP-IO-001");
  EXPECT_EQ(lint::exit_code(diagnostics), 2);
}

// --- workload rules (EPP-WKL-*) behind the legacy throwing wrapper ---------

TEST(LintWorkload, CollectsEveryDefectInsteadOfThrowingFirst) {
  core::WorkloadSpec workload;
  workload.browse_clients = -1.0;
  workload.buy_clients = -2.0;
  workload.think_time_s = -3.0;
  Diagnostics diagnostics;
  core::lint_workload(workload, {"<grid>", 0}, diagnostics);
  EXPECT_EQ(diagnostics.count(Severity::kError), 3u)
      << lint::render_text(diagnostics);
  bool saw_wkl1 = false, saw_wkl2 = false;
  for (const Diagnostic& diagnostic : diagnostics.all()) {
    if (diagnostic.rule == "EPP-WKL-001") saw_wkl1 = true;
    if (diagnostic.rule == "EPP-WKL-002") saw_wkl2 = true;
  }
  EXPECT_TRUE(saw_wkl1);
  EXPECT_TRUE(saw_wkl2);
}

TEST(LintWorkload, EmptyWorkloadIsAWarningOnlyWhenOtherwiseValid) {
  core::WorkloadSpec empty;  // zero clients, valid fields
  Diagnostics diagnostics;
  core::lint_workload(empty, {}, diagnostics);
  EXPECT_EQ(diagnostics.count(Severity::kWarning), 1u);
  EXPECT_EQ(diagnostics.all()[0].rule, "EPP-WKL-004");

  core::WorkloadSpec invalid;
  invalid.browse_clients = -5.0;
  Diagnostics other;
  core::lint_workload(invalid, {}, other);
  for (const Diagnostic& diagnostic : other.all())
    EXPECT_NE(diagnostic.rule, "EPP-WKL-004")
        << "the empty-workload hint should not pile onto invalid fields";
}

TEST(LintWorkload, ValidateWorkloadStillThrowsTypedError) {
  core::WorkloadSpec workload;
  workload.browse_clients = -1.0;
  EXPECT_THROW(core::validate_workload(workload), core::InvalidWorkloadError);
  try {
    core::validate_workload(workload);
  } catch (const core::InvalidWorkloadError& error) {
    EXPECT_NE(std::string(error.what()).find("invalid workload"),
              std::string::npos);
  }
}

// --- fault-spec rules (EPP-FLT-*) ------------------------------------------

TEST(LintFaultSpec, DuplicateKnobThroughStarIsAnError) {
  // 'lqn:fail=0.3' plus '*:fail=0.05' assigns fail to lqn twice; the old
  // parser silently kept the last assignment.
  Diagnostics diagnostics;
  svc::lint_fault_spec("lqn:fail=0.3;*:fail=0.05", {"<spec>", 0},
                       diagnostics);
  ASSERT_TRUE(diagnostics.has_errors());
  EXPECT_EQ(diagnostics.first_at_least(Severity::kError)->rule,
            "EPP-FLT-004");
  EXPECT_THROW(svc::parse_fault_spec("lqn:fail=0.3;*:fail=0.05"),
               std::invalid_argument);
}

TEST(LintFaultSpec, DirectDuplicateIsAnError) {
  EXPECT_THROW(svc::parse_fault_spec("lqn:fail=0.1,fail=0.2"),
               std::invalid_argument);
  EXPECT_THROW(svc::parse_fault_spec("hybrid:latency-ms=1;hybrid:latency-ms=2"),
               std::invalid_argument);
}

TEST(LintFaultSpec, DistinctKnobsAndTargetsStillCompose) {
  const svc::FaultConfig config =
      svc::parse_fault_spec("lqn:latency-ms=20;*:fail=0.05");
  EXPECT_DOUBLE_EQ(config.lqn.latency_s, 0.02);
  EXPECT_DOUBLE_EQ(config.lqn.fail_probability, 0.05);
  EXPECT_DOUBLE_EQ(config.historical.fail_probability, 0.05);
  EXPECT_DOUBLE_EQ(config.hybrid.fail_probability, 0.05);
}

TEST(LintFaultSpec, CollectsEveryClauseDefect) {
  Diagnostics diagnostics;
  svc::lint_fault_spec("turbo:fail=0.1;lqn:bogus=1;hybrid:fail=abc",
                       {"<spec>", 0}, diagnostics);
  EXPECT_EQ(diagnostics.count(Severity::kError), 3u)
      << lint::render_text(diagnostics);
}

TEST(LintFaultSpec, NetTargetParsesEveryWireKnob) {
  const svc::FaultConfig config = svc::parse_fault_spec(
      "net:reset=0.05,truncate=0.02,accept-reset=0.1,accept-delay-ms=5,"
      "dribble-ms=2");
  EXPECT_DOUBLE_EQ(config.net.reset_p, 0.05);
  EXPECT_DOUBLE_EQ(config.net.truncate_p, 0.02);
  EXPECT_DOUBLE_EQ(config.net.accept_reset_p, 0.1);
  EXPECT_DOUBLE_EQ(config.net.accept_delay_s, 0.005);
  EXPECT_DOUBLE_EQ(config.net.dribble_s, 0.002);
  EXPECT_TRUE(config.net.any());
  // Wire chaos must NOT count as method faults: FaultConfig::any() is
  // what ResilientPredictor consults to classify injected failures as
  // retryable, and a net-only spec must not change that classification.
  EXPECT_FALSE(config.any());
}

TEST(LintFaultSpec, StarNeverExpandsToNet) {
  const svc::FaultConfig star = svc::parse_fault_spec("*:fail=0.1");
  EXPECT_FALSE(star.net.any());
  const svc::FaultConfig mixed =
      svc::parse_fault_spec("net:reset=0.5;*:fail=0.1,latency-ms=3");
  EXPECT_DOUBLE_EQ(mixed.net.reset_p, 0.5);
  EXPECT_DOUBLE_EQ(mixed.lqn.fail_probability, 0.1);
  EXPECT_DOUBLE_EQ(mixed.historical.latency_s, 0.003);
}

TEST(LintFaultSpec, DomainMismatchIsTypedError005) {
  // Wire knobs on a method target (and vice versa) are a category
  // mistake, not a typo: their own rule so the hint can point at the
  // right grammar.
  for (const char* bad : {"lqn:reset=0.1", "*:dribble-ms=5", "net:fail=0.5",
                          "net:latency-ms=10"}) {
    Diagnostics diagnostics;
    svc::lint_fault_spec(bad, {"<spec>", 0}, diagnostics);
    ASSERT_TRUE(diagnostics.has_errors()) << bad;
    EXPECT_EQ(diagnostics.first_at_least(Severity::kError)->rule,
              "EPP-FLT-005")
        << bad;
    EXPECT_THROW((void)svc::parse_fault_spec(bad), std::invalid_argument)
        << bad;
  }
}

TEST(LintFaultSpec, DuplicateNetKnobIsError004) {
  Diagnostics diagnostics;
  svc::lint_fault_spec("net:reset=0.1,reset=0.2", {"<spec>", 0}, diagnostics);
  ASSERT_TRUE(diagnostics.has_errors());
  EXPECT_EQ(diagnostics.first_at_least(Severity::kError)->rule,
            "EPP-FLT-004");
}

TEST(LintFaultSpec, NetProbabilitiesAreRangeCheckedLikeFail) {
  for (const char* bad :
       {"net:reset=1.5", "net:truncate=-0.1", "net:accept-reset=nan"}) {
    EXPECT_THROW((void)svc::parse_fault_spec(bad), std::invalid_argument)
        << bad;
  }
  // Delays are means in ms, not probabilities: values above 1 are fine.
  EXPECT_NO_THROW((void)svc::parse_fault_spec("net:accept-delay-ms=250"));
}

TEST(LintFaultSpec, NearTotalChaosWarns006ButStillParses) {
  // A storm that faults nearly every write (or refuses nearly every
  // accept) measures nothing; the spec is legal but suspicious, so it
  // parses with a warning — parse_fault_spec only throws on errors.
  Diagnostics writes;
  const svc::FaultConfig config = svc::lint_fault_spec(
      "net:reset=0.6,truncate=0.4", {"<spec>", 0}, writes);
  EXPECT_FALSE(writes.has_errors());
  EXPECT_EQ(writes.count(Severity::kWarning), 1u) << lint::render_text(writes);
  EXPECT_EQ(writes.first_at_least(Severity::kWarning)->rule, "EPP-FLT-006");
  EXPECT_DOUBLE_EQ(config.net.reset_p, 0.6);
  EXPECT_NO_THROW((void)svc::parse_fault_spec("net:reset=0.6,truncate=0.4"));

  Diagnostics accepts;
  svc::lint_fault_spec("net:accept-reset=0.95", {"<spec>", 0}, accepts);
  EXPECT_EQ(accepts.count(Severity::kWarning), 1u)
      << lint::render_text(accepts);

  Diagnostics sane;
  svc::lint_fault_spec("net:reset=0.3,truncate=0.3,accept-reset=0.5",
                       {"<spec>", 0}, sane);
  EXPECT_TRUE(sane.empty()) << lint::render_text(sane);
}

// --- bundle duplicate rejection through the legacy loader ------------------

TEST(BundleLoader, DuplicateRecordsNowThrow) {
  const std::string clean =
      read_file(std::string(EPP_LINT_CORPUS_DIR) + "/clean/trade.epp");
  EXPECT_NO_THROW(calib::bundle_from_text(clean));
  const std::string duplicated =
      read_file(std::string(EPP_LINT_CORPUS_DIR) +
                "/bundles/duplicate_gradient.epp");
  try {
    calib::bundle_from_text(duplicated);
    FAIL() << "duplicate gradient record was silently accepted";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("epp bundle parse error, line 4"), std::string::npos)
        << what;
    EXPECT_NE(what.find("duplicate"), std::string::npos) << what;
  }
}

TEST(BundleLoader, ParseInfoRecordsRecordLines) {
  const std::string clean =
      read_file(std::string(EPP_LINT_CORPUS_DIR) + "/clean/trade.epp");
  Diagnostics diagnostics;
  calib::BundleParseInfo info;
  calib::parse_bundle_text(clean, "trade.epp", diagnostics, &info);
  EXPECT_TRUE(diagnostics.empty()) << lint::render_text(diagnostics);
  EXPECT_TRUE(info.have_seeds);
  EXPECT_EQ(info.seeds_line, 2);
  EXPECT_EQ(info.gradient_line, 3);
  EXPECT_EQ(info.mean_model_line, 11);
  EXPECT_EQ(info.p90_model_line, 18);
  ASSERT_EQ(info.server_lines.size(), 3u);
  EXPECT_EQ(info.server_lines.at("AppServF"), 6);
}

TEST(BundleLoader, RecoveryCollectsSeveralDefectsInOnePass) {
  // One malformed record plus one duplicate: the old loader stopped at
  // the first; parse_bundle_text reports both.
  std::istringstream clean_stream(
      read_file(std::string(EPP_LINT_CORPUS_DIR) + "/clean/trade.epp"));
  std::ostringstream broken;
  std::string line;
  int line_no = 0;
  while (std::getline(clean_stream, line)) {
    ++line_no;
    if (line_no == 4) {
      broken << "lqn-params browse not a number at all\n";
      broken << line << '\n';  // keep the original so nothing is missing
      broken << line << '\n';  // ...and duplicate it
      continue;
    }
    broken << line << '\n';
  }
  Diagnostics diagnostics;
  calib::parse_bundle_text(broken.str(), "broken.epp", diagnostics);
  EXPECT_GE(diagnostics.count(Severity::kError), 2u)
      << lint::render_text(diagnostics);
  bool saw_malformed = false, saw_duplicate = false;
  for (const Diagnostic& diagnostic : diagnostics.all()) {
    if (diagnostic.rule == "EPP-BND-002") saw_malformed = true;
    if (diagnostic.rule == "EPP-BND-003") saw_duplicate = true;
  }
  EXPECT_TRUE(saw_malformed);
  EXPECT_TRUE(saw_duplicate);
}

}  // namespace
}  // namespace epp
