// epp_serve — the long-running prediction daemon.
//
// Wraps the calibrated BatchPredictor/ResilientPredictor stack behind
// the length-prefixed binary protocol (src/net/frame.hpp) on a TCP
// socket and serves until a signal or a client's shutdown frame. This is
// the paper's capacity-planning engine as an actual service: a resource
// manager (or epp_loadgen) connects, streams prediction requests at
// production rates, and gets typed outcomes back — fallback/stale
// flagged, overload shed with `overloaded` instead of queueing without
// bound, per-request deadlines riding the svc cancellation machinery.
//
// The bundle is acquired exactly like epp_sweep: cold-calibrated from
// the simulated testbed, or warm-loaded in milliseconds with --bundle.
// Both paths run the structural lint + EPP-SEM semantic gates first; a
// daemon should refuse a defective bundle at startup, not serve garbage
// for a week.
//
// Usage:
//   epp_serve [--port P] [--host H] [--workers N] [--queue-depth N]
//             [--max-connections N] [--deadline-ms MS] [--max-retries N]
//             [--stale-capacity N] [--fault-spec SPEC]
//             [--bundle FILE] [--save-bundle FILE] [--threads N]
//
// Prints exactly one "listening on HOST:PORT" line to stdout once ready
// (scripts and CI scrape it), then stats lines to stderr on shutdown.
#include <atomic>
#include <chrono>
#include <csignal>
#include <exception>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>
#include <thread>

#include "calib/bundle.hpp"
#include "calib/predictor_set.hpp"
#include "calib/seeds.hpp"
#include "lint/lint.hpp"
#include "lint/verify.hpp"
#include "svc/fault.hpp"
#include "svc/resilient.hpp"
#include "svc/server.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace epp;
namespace cli = util::cli;

std::atomic<bool> g_signalled{false};

void on_signal(int) { g_signalled.store(true, std::memory_order_release); }

struct ServeConfig {
  svc::ServerOptions server;
  double deadline_ms = 0.0;
  std::optional<int> max_retries;
  std::size_t stale_capacity = 4096;
  std::string fault_spec;
  std::size_t threads = std::max(1u, std::thread::hardware_concurrency());
  calib::ArtifactCli artifact;
};

int usage(std::ostream& out) {
  out << "usage: epp_serve [--port P] [--host H] [--workers N]\n"
         "                 [--queue-depth N] [--max-connections N]\n"
         "                 [--deadline-ms MS] [--max-retries N]\n"
         "                 [--stale-capacity N] [--fault-spec SPEC]\n"
         "                 [--bundle FILE] [--save-bundle FILE] [--threads N]\n\n"
         "Serves predictions over the length-prefixed binary protocol\n"
         "(see src/net/frame.hpp). --port 0 (default) picks an ephemeral\n"
         "port, reported on stdout as 'listening on HOST:PORT'. Warm-start\n"
         "with --bundle to skip calibration; --threads sizes the one-time\n"
         "calibration pool, --workers the serving worker pool. A full\n"
         "dispatch queue sheds requests with the typed 'overloaded' error.\n"
         "Stop with SIGINT/SIGTERM or a client shutdown frame; in-flight\n"
         "requests drain before exit. Drive it with epp_loadgen.\n";
  return 1;
}

ServeConfig parse_args(int argc, char** argv) {
  ServeConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc)
        throw std::invalid_argument(std::string(arg) + " wants a value");
      return argv[++i];
    };
    if (arg == "--port") {
      config.server.port =
          static_cast<std::uint16_t>(cli::parse_int(arg, value(), 0, 65535));
    } else if (arg == "--host") {
      config.server.host = value();
    } else if (arg == "--workers") {
      config.server.workers = cli::parse_size(arg, value(), 1);
    } else if (arg == "--queue-depth") {
      config.server.queue_capacity = cli::parse_size(arg, value(), 1);
    } else if (arg == "--max-connections") {
      config.server.max_connections = cli::parse_size(arg, value(), 1);
    } else if (arg == "--deadline-ms") {
      config.deadline_ms = cli::parse_positive_double(arg, value());
    } else if (arg == "--max-retries") {
      config.max_retries =
          static_cast<int>(cli::parse_int(arg, value(), 0, 1000));
    } else if (arg == "--stale-capacity") {
      config.stale_capacity = cli::parse_size(arg, value());
    } else if (arg == "--fault-spec") {
      config.fault_spec = value();
    } else if (arg == "--threads") {
      config.threads = cli::parse_size(arg, value(), 1);
    } else if (arg == "--bundle") {
      config.artifact.load_path = value();
    } else if (arg == "--save-bundle") {
      config.artifact.save_path = value();
    } else {
      throw std::invalid_argument("unknown argument: " + std::string(arg));
    }
  }
  return config;
}

}  // namespace

int main(int argc, char** argv) try {
  const ServeConfig config = parse_args(argc, argv);

  // --- pre-run gates: structural lint + EPP-SEM, as in epp_sweep --------
  lint::Diagnostics findings;
  if (!config.artifact.load_path.empty())
    lint::lint_artifact_file(config.artifact.load_path, findings);
  if (!config.fault_spec.empty())
    svc::lint_fault_spec(config.fault_spec, {"<fault-spec>", 0}, findings);
  findings.sort_by_location();
  if (!findings.empty()) std::cerr << lint::render_text(findings);
  if (findings.has_errors()) {
    std::cerr << "epp_serve: refusing to start with "
              << findings.count(lint::Severity::kError) << " lint error(s)\n";
    return 2;
  }

  util::ThreadPool pool(config.threads);
  calib::CalibrationOptions calibration_options;
  calibration_options.pool = &pool;
  if (config.artifact.load_path.empty())
    std::cerr << "calibrating from the simulated testbed...\n";
  const util::Timer calibration_timer;
  const calib::CalibrationBundle bundle =
      calib::acquire_bundle(config.artifact, calibration_options);
  std::cerr << (config.artifact.load_path.empty()
                    ? "calibrated in "
                    : "warm start: loaded bundle in ")
            << calibration_timer.elapsed_ms() << " ms\n";

  {
    lint::VerifyOptions verify_options;
    verify_options.check_chains = true;
    if (config.deadline_ms > 0.0)
      verify_options.resilience.deadline_s = config.deadline_ms / 1e3;
    lint::Diagnostics semantic;
    lint::verify_bundle(bundle,
                        config.artifact.load_path.empty()
                            ? "<calibrated>"
                            : config.artifact.load_path,
                        nullptr, verify_options, semantic);
    semantic.sort_by_location();
    if (!semantic.empty()) std::cerr << lint::render_text(semantic);
    if (semantic.has_errors()) {
      std::cerr << "epp_serve: refusing to serve from a bundle with "
                << semantic.count(lint::Severity::kError)
                << " semantic error(s)\n";
      return 2;
    }
  }

  // --- predictor stack ---------------------------------------------------
  std::optional<svc::FaultInjector> injector;
  svc::BatchOptions batch_options;
  if (!config.fault_spec.empty()) {
    injector.emplace(svc::parse_fault_spec(config.fault_spec),
                     calib::kFaultInjectionSeed);
    batch_options.fault = &*injector;
  }
  const calib::PredictorSet set = calib::make_predictors(bundle, batch_options);

  svc::ResilienceOptions resilience;
  resilience.deadline_s = config.deadline_ms / 1e3;
  if (config.max_retries) resilience.max_retries = *config.max_retries;
  resilience.stale_capacity = config.stale_capacity;
  resilience.jitter_seed = calib::kRetryJitterSeed;
  const svc::ResilientPredictor predictor(*set.batch, resilience);

  svc::PredictionServer server(predictor, config.server);
  server.start();
  std::cout << "listening on " << config.server.host << ":" << server.port()
            << std::endl;  // flushed: readiness line for scripts/CI

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  while (!g_signalled.load(std::memory_order_acquire) && !server.stopping())
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::cerr << "epp_serve: draining...\n";
  server.stop();

  const svc::ServerStats server_stats = server.stats();
  const svc::ResilienceStats resilience_stats = predictor.stats();
  std::cerr << "served " << server_stats.requests_served << " of "
            << server_stats.requests_enqueued << " admitted ("
            << server_stats.requests_shed << " shed, "
            << server_stats.bad_frames << " bad frames, peak queue "
            << server_stats.queue_peak << ") over "
            << server_stats.connections_accepted << " connection(s)\n";
  std::cerr << "resilience: " << resilience_stats.served << " served / "
            << resilience_stats.errors << " errors; "
            << resilience_stats.retries << " retries, "
            << resilience_stats.fallbacks << " fallbacks, "
            << resilience_stats.stale_serves << " stale ("
            << resilience_stats.stale_evictions << " evicted), "
            << resilience_stats.deadline_hits << " deadline, "
            << resilience_stats.breaker_opens << " breaker opens\n";
  return 0;
} catch (const std::exception& error) {
  std::cerr << "epp_serve: " << error.what() << "\n\n";
  return usage(std::cerr);
}
