// EPP-LQN-* rules. Model::validate() throws on the *first* structural
// problem; these rules walk the same structures but collect everything,
// add the softer findings validate() has no severity lattice for
// (unreachable tasks, saturated pools, branch-probability sums), and
// point each finding at the declaring source line when the text was
// parsed here.

#include <cmath>
#include <cstddef>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "lint/lint.hpp"
#include "lqn/parser.hpp"

namespace epp::lint {
namespace {

SourceLocation locate_task(const std::string& file, const LqnSourceIndex* index,
                           const std::string& name) {
  if (index != nullptr)
    if (const auto it = index->task_lines.find(name);
        it != index->task_lines.end())
      return {file, it->second};
  return {file, 0};
}

SourceLocation locate_entry(const std::string& file,
                            const LqnSourceIndex* index,
                            const std::string& name) {
  if (index != nullptr)
    if (const auto it = index->entry_lines.find(name);
        it != index->entry_lines.end())
      return {file, it->second};
  return {file, 0};
}

/// DFS colouring for cycle detection over the entry call graph.
enum class Visit { kWhite, kGray, kBlack };

bool find_cycle(const lqn::Model& model, lqn::EntryId entry,
                std::vector<Visit>& state, std::vector<lqn::EntryId>& path) {
  state[entry] = Visit::kGray;
  path.push_back(entry);
  for (const lqn::Call& call : model.entry(entry).calls) {
    if (state[call.target] == Visit::kGray) {
      path.push_back(call.target);
      return true;
    }
    if (state[call.target] == Visit::kWhite &&
        find_cycle(model, call.target, state, path))
      return true;
  }
  path.pop_back();
  state[entry] = Visit::kBlack;
  return false;
}

void check_calls(const lqn::Model& model, const std::string& file,
                 Diagnostics& diagnostics, const LqnSourceIndex* index) {
  for (const lqn::Entry& entry : model.entries()) {
    const SourceLocation where = locate_entry(file, index, entry.name);
    if (!std::isfinite(entry.service_demand_s) || entry.service_demand_s < 0.0)
      diagnostics.error("EPP-LQN-005", where,
                        "entry '" + entry.name + "' has demand " +
                            fmt_value(entry.service_demand_s),
                        "demands are mean seconds of host service and must "
                        "be finite and non-negative");
    double branch_sum = 0.0;
    bool branch_like = !entry.calls.empty();
    for (const lqn::Call& call : entry.calls) {
      const lqn::Entry& target = model.entry(call.target);
      if (!std::isfinite(call.mean_calls) || call.mean_calls < 0.0)
        diagnostics.error("EPP-LQN-005", where,
                          "call " + entry.name + " -> " + target.name +
                              " has mean " + fmt_value(call.mean_calls),
                          "mean call counts must be finite and non-negative");
      if (target.task == entry.task)
        diagnostics.error("EPP-LQN-012", where,
                          "call " + entry.name + " -> " + target.name +
                              " stays inside task '" +
                              model.task(entry.task).name + "'",
                          "synchronous calls must descend to a lower layer");
      if (model.task(target.task).is_reference &&
          !model.task(entry.task).is_reference)
        diagnostics.error("EPP-LQN-012", where,
                          "call " + entry.name + " -> " + target.name +
                              " ascends into reference task '" +
                              model.task(target.task).name + "'");
      if (call.mean_calls > 1.0 || call.mean_calls <= 0.0) branch_like = false;
      branch_sum += call.mean_calls;
    }
    if (branch_like && entry.calls.size() >= 2 && branch_sum > 1.0 + 1e-9)
      diagnostics.warning(
          "EPP-LQN-009", where,
          "entry '" + entry.name + "' makes " +
              std::to_string(entry.calls.size()) +
              " sub-unit calls whose means sum to " +
              fmt_value(branch_sum),
          "if these model a probabilistic branch the probabilities "
          "exceed 1; drop this hint if they are independent calls");
    if (entry.calls.empty() && entry.service_demand_s == 0.0 &&
        !model.task(entry.task).is_reference)
      diagnostics.note("EPP-LQN-006", where,
                       "entry '" + entry.name +
                           "' has zero demand and makes no calls",
                       "a no-op entry usually means a forgotten demand=");
  }
}

void check_tasks(const lqn::Model& model, const std::string& file,
                 Diagnostics& diagnostics, const LqnSourceIndex* index) {
  bool any_reference = false;
  for (const lqn::Task& task : model.tasks()) {
    const SourceLocation where = locate_task(file, index, task.name);
    if (task.is_reference) {
      any_reference = true;
      if (task.entries.size() != 1)
        diagnostics.error("EPP-LQN-011", where,
                          "reference task '" + task.name + "' has " +
                              std::to_string(task.entries.size()) +
                              " entries, wants exactly 1");
      if (task.multiplicity != 1)
        diagnostics.warning(
            "EPP-LQN-008", where,
            "reference task '" + task.name + "' declares multiplicity " +
                std::to_string(task.multiplicity),
            "client concurrency comes from population/rate; the "
            "multiplicity is ignored");
      if (task.open_arrivals) {
        if (!std::isfinite(task.arrival_rate_rps) ||
            task.arrival_rate_rps <= 0.0)
          diagnostics.error("EPP-LQN-010", where,
                            "open reference task '" + task.name +
                                "' has arrival rate " +
                                fmt_value(task.arrival_rate_rps),
                            "open workloads want a finite positive rate=");
      } else if (!std::isfinite(task.population) || task.population <= 0.0) {
        diagnostics.error("EPP-LQN-010", where,
                          "closed reference task '" + task.name +
                              "' has population " +
                              fmt_value(task.population),
                          "closed workloads want a finite positive "
                          "population=");
      }
      if (!std::isfinite(task.think_time_s) || task.think_time_s < 0.0)
        diagnostics.error("EPP-LQN-010", where,
                          "reference task '" + task.name +
                              "' has think time " +
                              fmt_value(task.think_time_s));
    } else {
      if (task.entries.empty())
        diagnostics.error("EPP-LQN-011", where,
                          "task '" + task.name + "' has no entries",
                          "a server task without entries can never be "
                          "called");
      if (task.multiplicity == 0)
        diagnostics.error("EPP-LQN-011", where,
                          "task '" + task.name + "' has multiplicity 0");
    }
  }
  if (!any_reference)
    diagnostics.error("EPP-LQN-002", {file, 0},
                      "no reference task drives the model",
                      "declare a client task with 'ref population=N "
                      "think=S' (or 'ref open rate=R')");
}

void check_reachability(const lqn::Model& model, const std::string& file,
                        Diagnostics& diagnostics,
                        const LqnSourceIndex* index) {
  std::vector<bool> entry_seen(model.entries().size(), false);
  std::vector<lqn::EntryId> stack;
  for (const lqn::Task& task : model.tasks())
    if (task.is_reference)
      for (const lqn::EntryId entry : task.entries) {
        entry_seen[entry] = true;
        stack.push_back(entry);
      }
  while (!stack.empty()) {
    const lqn::EntryId entry = stack.back();
    stack.pop_back();
    for (const lqn::Call& call : model.entry(entry).calls)
      if (!entry_seen[call.target]) {
        entry_seen[call.target] = true;
        stack.push_back(call.target);
      }
  }
  for (const lqn::Task& task : model.tasks()) {
    if (task.is_reference) continue;
    bool reachable = false;
    for (const lqn::EntryId entry : task.entries)
      if (entry_seen[entry]) reachable = true;
    if (!reachable)
      diagnostics.warning("EPP-LQN-004", locate_task(file, index, task.name),
                          "task '" + task.name +
                              "' is unreachable from every reference task",
                          "no workload ever exercises it; dead model "
                          "surface or a missing call");
  }
}

void check_cycles(const lqn::Model& model, const std::string& file,
                  Diagnostics& diagnostics, const LqnSourceIndex* index) {
  std::vector<Visit> state(model.entries().size(), Visit::kWhite);
  for (lqn::EntryId entry = 0; entry < model.entries().size(); ++entry) {
    if (state[entry] != Visit::kWhite) continue;
    std::vector<lqn::EntryId> path;
    if (!find_cycle(model, entry, state, path)) continue;
    // path ends with [.., first-repeated, .., first-repeated]; print the
    // loop segment only.
    const lqn::EntryId repeated = path.back();
    std::string loop;
    bool in_loop = false;
    for (const lqn::EntryId id : path) {
      if (id == repeated && !in_loop) in_loop = true;
      if (!in_loop) continue;
      if (!loop.empty()) loop += " -> ";
      loop += model.entry(id).name;
    }
    diagnostics.error("EPP-LQN-003",
                      locate_entry(file, index, model.entry(repeated).name),
                      "call cycle: " + loop,
                      "synchronous rendezvous deadlocks on a cycle; the "
                      "call graph must be layered");
    return;  // one cycle report is enough; fixing it re-lints
  }
}

void check_saturation(const lqn::Model& model, const std::string& file,
                      Diagnostics& diagnostics, const LqnSourceIndex* index) {
  for (const lqn::Task& task : model.tasks()) {
    if (!task.is_reference || task.open_arrivals) continue;
    if (!(task.population > 0.0)) continue;
    // Walk everything this class can reach; a pool smaller than the
    // population is a (deliberate, in the paper's setup) saturation point
    // worth surfacing.
    std::vector<bool> seen(model.entries().size(), false);
    std::vector<lqn::EntryId> stack(task.entries.begin(), task.entries.end());
    for (const lqn::EntryId e : stack) seen[e] = true;
    while (!stack.empty()) {
      const lqn::EntryId entry = stack.back();
      stack.pop_back();
      for (const lqn::Call& call : model.entry(entry).calls)
        if (!seen[call.target]) {
          seen[call.target] = true;
          stack.push_back(call.target);
        }
    }
    for (const lqn::Task& served : model.tasks()) {
      if (served.is_reference || served.multiplicity == 0) continue;
      bool touched = false;
      for (const lqn::EntryId entry : served.entries)
        if (seen[entry]) touched = true;
      if (touched &&
          task.population > static_cast<double>(served.multiplicity))
        diagnostics.note(
            "EPP-LQN-007", locate_task(file, index, served.name),
            "population " + fmt_value(task.population) + " of '" +
                task.name + "' exceeds the " +
                std::to_string(served.multiplicity) + "-wide pool of '" +
                served.name + "'",
            "expected when probing saturation; requests past the pool "
            "width queue");
    }
  }
}

}  // namespace

void lint_lqn_model(const lqn::Model& model, const std::string& file,
                    Diagnostics& diagnostics, const LqnSourceIndex* index) {
  check_tasks(model, file, diagnostics, index);
  check_calls(model, file, diagnostics, index);
  check_cycles(model, file, diagnostics, index);
  check_reachability(model, file, diagnostics, index);
  check_saturation(model, file, diagnostics, index);
}

void lint_lqn_text(const std::string& text, const std::string& file,
                   Diagnostics& diagnostics) {
  lqn::Model model;
  try {
    model = lqn::parse_model(text);
  } catch (const std::invalid_argument& error) {
    // Parser messages read "lqn parse error, line N: ..."; lift the line
    // number into the location and keep the tail as the finding.
    const std::string what = error.what();
    const std::string prefix = "lqn parse error, line ";
    int line = 0;
    std::string message = what;
    if (what.rfind(prefix, 0) == 0) {
      std::istringstream tail(what.substr(prefix.size()));
      tail >> line;
      tail.ignore(2);  // ": "
      std::getline(tail, message);
    }
    diagnostics.error("EPP-LQN-001", {file, line}, message);
    return;
  }

  // Index declaration lines so semantic findings are clickable.
  const LqnSourceIndex index = index_lqn_source(text);
  lint_lqn_model(model, file, diagnostics, &index);
}

}  // namespace epp::lint
