// Internal seam between the epp_srclint driver and its rule libraries.
// Each entry point consumes the whole model set, because resolution is
// cross-file: a guard in server.cpp locks a mutex declared in
// server.hpp, and lock-order cycles can span translation units.
#pragma once

#include <vector>

#include "lint/diagnostic.hpp"
#include "lint/src/source_model.hpp"

namespace epp::lint::srcrules {

/// EPP-CONC-001..008 over the merged lock model.
void check_concurrency(const std::vector<srcmodel::FileModel>& files,
                       Diagnostics& out);

/// EPP-HOT-001..005 over each file's hot regions.
void check_hot_regions(const std::vector<srcmodel::FileModel>& files,
                       Diagnostics& out);

/// EPP-DET-001..006 over the determinism value-flow facts.
void check_determinism(const std::vector<srcmodel::FileModel>& files,
                       Diagnostics& out);

}  // namespace epp::lint::srcrules
