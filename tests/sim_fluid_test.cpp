// Fluid (ODE) fast path: routing, crossover accuracy, and scale.
#include "sim/fluid.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/timer.hpp"

namespace epp::sim::trade {
namespace {

double rel_err(double got, double want) {
  return want == 0.0 ? std::abs(got) : std::abs(got - want) / std::abs(want);
}

TEST(SimFluid, ThresholdRoutesToFluidPath) {
  TestbedConfig config = typical_workload(app_serv_f(), 3000, 42);
  config.warmup_s = 2.0;
  config.measure_s = 5.0;

  EXPECT_FALSE(fluid_engages(config));  // threshold 0 = always exact
  config.fluid_threshold = 3001;
  EXPECT_FALSE(fluid_engages(config));  // population below threshold
  config.fluid_threshold = 3000;
  EXPECT_TRUE(fluid_engages(config));

  const RunResult fluid = run_testbed(config);
  EXPECT_TRUE(fluid.solved_by_fluid);
  config.fluid_threshold = 0;
  const RunResult exact = run_testbed(config);
  EXPECT_FALSE(exact.solved_by_fluid);
}

// Acceptance criterion: at the crossover population the fluid answer is
// within 5% of the exact engine's mean response time (and throughput).
TEST(SimFluid, CrossoverAccuracyWithinFivePercent) {
  TestbedConfig config = typical_workload(app_serv_f(), 2600, 42);
  config.warmup_s = 20.0;
  config.measure_s = 120.0;
  const RunResult exact = run_testbed(config);

  config.fluid_threshold = 1;
  const RunResult fluid = run_testbed(config);
  ASSERT_TRUE(fluid.solved_by_fluid);

  EXPECT_LT(rel_err(fluid.mean_rt_s, exact.mean_rt_s), 0.05)
      << "fluid mean RT " << fluid.mean_rt_s << " vs exact "
      << exact.mean_rt_s;
  EXPECT_LT(rel_err(fluid.throughput_rps, exact.throughput_rps), 0.05)
      << "fluid throughput " << fluid.throughput_rps << " vs exact "
      << exact.throughput_rps;
  EXPECT_LT(rel_err(fluid.app_cpu_utilization, exact.app_cpu_utilization),
            0.05);
}

TEST(SimFluid, MixedWorkloadStaysSane) {
  TestbedConfig config = mixed_workload(app_serv_f(), 2600, 0.25, 42);
  config.warmup_s = 20.0;
  config.measure_s = 120.0;
  const RunResult exact = run_testbed(config);
  config.fluid_threshold = 1;
  const RunResult fluid = run_testbed(config);
  ASSERT_TRUE(fluid.solved_by_fluid);
  // The buy-session aggregation is an approximation on top of the fluid
  // limit; hold it to 10% here and 5% on the headline typical workload.
  EXPECT_LT(rel_err(fluid.mean_rt_s, exact.mean_rt_s), 0.10);
  EXPECT_LT(rel_err(fluid.throughput_rps, exact.throughput_rps), 0.10);
  EXPECT_GT(fluid.buy_request_fraction, 0.0);
}

// The point of the fast path: a million-client data point in interactive
// time. (The exact engine at this population would schedule ~10^6 think
// timers before the first request completes.)
TEST(SimFluid, MillionClientsSolveInteractively) {
  TestbedConfig config = typical_workload(app_serv_f(), 1'000'000, 42);
  config.fluid_threshold = 100'000;
  const util::Timer timer;
  const RunResult result = run_testbed(config);
  EXPECT_LT(timer.elapsed_ms(), 2000.0);
  ASSERT_TRUE(result.solved_by_fluid);
  // One saturated server: throughput pinned at its max (~186 rps), the
  // rest of the population queues, so RT ~ N/X - Z is enormous.
  EXPECT_NEAR(result.throughput_rps, 186.0, 20.0);
  EXPECT_GT(result.mean_rt_s, 1000.0);
  EXPECT_NEAR(result.app_cpu_utilization, 1.0, 0.05);
  EXPECT_EQ(result.rt_samples_s.size(), 0u);
  const auto it = result.per_class.find("browse");
  ASSERT_NE(it, result.per_class.end());
  EXPECT_GT(it->second.completions, 0u);
}

TEST(SimFluid, P90IsTailApproximationOfMean) {
  TestbedConfig config = typical_workload(app_serv_f(), 5000, 42);
  config.fluid_threshold = 1;
  const RunResult result = run_testbed(config);
  ASSERT_TRUE(result.solved_by_fluid);
  EXPECT_NEAR(result.p90_rt_s, result.mean_rt_s * std::log(10.0), 1e-9);
}

TEST(SimFluid, OpenClassUsesLittlesLaw) {
  TestbedConfig config;
  config.server = app_serv_f();
  ServiceClassSpec open;
  open.name = "open";
  open.open_arrival_rps = 50.0;
  config.classes.push_back(open);
  // A closed companion class so the fluid threshold engages.
  config.classes.push_back({"browse", UserType::kBrowse, 4000, 7.0});
  config.fluid_threshold = 1000;
  const RunResult result = run_testbed(config);
  ASSERT_TRUE(result.solved_by_fluid);
  const auto it = result.per_class.find("open");
  ASSERT_NE(it, result.per_class.end());
  EXPECT_NEAR(it->second.throughput_rps, 50.0, 1e-9);
  EXPECT_GT(it->second.mean_rt_s, 0.0);
}

}  // namespace
}  // namespace epp::sim::trade
