#include "util/rng.hpp"

#include <cmath>

#include "util/annotations.hpp"

namespace epp::util {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed, std::uint64_t stream) noexcept {
  // Mix seed and stream into one key, then expand to 256 bits of state.
  std::uint64_t key = seed;
  (void)splitmix64(key);
  key ^= 0xA24BAED4963EE407ULL * (stream + 1);
  for (auto& word : s_) word = splitmix64(key);
  // xoshiro state must not be all zero; splitmix64 output makes that
  // astronomically unlikely, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x1ULL;
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  if (n == 0) return 0;
  // Lemire's nearly-divisionless method.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = -n % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::exponential(double mean) noexcept {
  if (mean <= 0.0) return 0.0;
  // 1 - uniform() is in (0, 1], so the log is finite.
  return -mean * std::log(1.0 - uniform());
}

EPP_HOT_BEGIN(soa_pool_fill);

void Rng::fill_exponential(double mean, double* dst, std::size_t n) noexcept {
  if (mean <= 0.0) {
    for (std::size_t i = 0; i < n; ++i) dst[i] = 0.0;
    return;
  }
  // Two passes over small blocks: the first runs the generator back to
  // back (keeps its state in registers), the second is a pure log+mul
  // loop the compiler can software-pipeline.
  constexpr std::size_t kBlock = 64;
  double u[kBlock];
  while (n > 0) {
    const std::size_t m = n < kBlock ? n : kBlock;
    for (std::size_t i = 0; i < m; ++i)
      u[i] = 1.0 - static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    for (std::size_t i = 0; i < m; ++i) dst[i] = -mean * std::log(u[i]);
    dst += m;
    n -= m;
  }
}

EPP_HOT_END(soa_pool_fill);

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

std::uint64_t Rng::geometric_trials(double p) noexcept {
  if (p >= 1.0) return 1;
  if (p <= 0.0) return std::numeric_limits<std::uint64_t>::max();
  const double u = 1.0 - uniform();
  const double trials = std::ceil(std::log(u) / std::log1p(-p));
  return trials < 1.0 ? 1 : static_cast<std::uint64_t>(trials);
}

Rng Rng::spawn() noexcept {
  return Rng((*this)(), (*this)());
}

}  // namespace epp::util
