// The simulated testbed: the executable stand-in for the paper's
// WebSphere + DB2 + Trade deployment (see DESIGN.md, substitutions table).
//
// One Testbed instance simulates a single application server plus the
// database server, driven by closed-loop clients grouped into service
// classes — exactly the unit the paper measures when calibrating and
// validating its prediction methods (servers are benchmarked one at a
// time; the multi-server scenarios in section 9 are evaluated through the
// performance models, as in the paper).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "sim/resources.hpp"
#include "sim/trade/operations.hpp"
#include "sim/trade/session_cache.hpp"
#include "util/rng.hpp"

namespace epp::util {
class ThreadPool;
}

namespace epp::sim::trade {

/// An application server architecture. Speed is relative to the established
/// "fast" server AppServF (speed 1.0).
struct ServerSpec {
  std::string name;
  double speed = 1.0;
  std::size_t concurrency = 50;  // concurrent requests via time-sharing
  bool established = true;       // historical data available?
};

/// The paper's three case-study servers: max throughput under the typical
/// workload ~86 (S, new), ~186 (F, established), ~320 (VF, established)
/// requests/second.
ServerSpec app_serv_s();
ServerSpec app_serv_f();
ServerSpec app_serv_vf();

/// A group of identical closed-loop clients.
enum class UserType { kBrowse, kBuy };

struct ServiceClassSpec {
  std::string name;
  UserType type = UserType::kBrowse;
  std::size_t clients = 0;
  double mean_think_time_s = 7.0;  // exponential, IBM-recommended mean
  /// If positive, this class is an *open* workload: requests arrive as a
  /// Poisson stream at this rate (the paper's section-8.1 variation of
  /// "clients sending requests at a constant rate") and `clients` /
  /// think time are ignored.
  double open_arrival_rps = 0.0;
};

/// Optional session-cache deployment (section 7.2).
struct CacheConfig {
  std::uint64_t capacity_bytes = 0;
  std::uint64_t browse_session_bytes = 8 * 1024;
  std::uint64_t buy_session_base_bytes = 2 * 1024;
  std::uint64_t per_holding_bytes = 1024;  // portfolio growth
  double session_fetch_db_cpu_s = 0.0009;
  double session_fetch_disk_s = 0.00045;
};

struct TestbedConfig {
  ServerSpec server;
  std::vector<ServiceClassSpec> classes;
  double warmup_s = 60.0;
  double measure_s = 240.0;
  std::uint64_t seed = util::Rng::kDefaultSeed;
  std::size_t db_concurrency = 20;
  double db_speed = 1.0;
  double disk_speed = 1.0;
  std::optional<CacheConfig> cache;
  /// When > 0 and the total closed-client population reaches this count,
  /// run_testbed answers from the fluid (ODE) fast path instead of the
  /// exact discrete-event engine (see sim/fluid.hpp). 0 = always exact.
  std::size_t fluid_threshold = 0;
};

struct ClassResult {
  std::size_t completions = 0;
  double mean_rt_s = 0.0;
  double p90_rt_s = 0.0;
  double throughput_rps = 0.0;
};

struct RunResult {
  double mean_rt_s = 0.0;
  double p90_rt_s = 0.0;
  double throughput_rps = 0.0;
  double app_cpu_utilization = 0.0;
  double db_cpu_utilization = 0.0;
  double disk_utilization = 0.0;
  double cache_miss_ratio = 0.0;
  double buy_request_fraction = 0.0;
  /// Observed mean DB calls per request (basis for LQN calibration).
  double db_calls_per_request = 0.0;
  std::map<std::string, ClassResult> per_class;
  /// Quantile over all recorded response times (q in [0,1]).
  std::vector<double> rt_samples_s;  // retained for distribution studies
  /// True when the fluid fast path produced this result (p90 fields are
  /// then tail approximations, not measured order statistics).
  bool solved_by_fluid = false;
};

/// Simulate one configuration and return its measurements. Deterministic
/// for a fixed config (including seed).
RunResult run_testbed(const TestbedConfig& config, bool keep_samples = false);

/// Convenience: the "typical workload" of the paper — all browse clients.
TestbedConfig typical_workload(const ServerSpec& server, std::size_t clients,
                               std::uint64_t seed = util::Rng::kDefaultSeed);

/// Mixed workload with a fraction of buy users (fig. 4 experiments).
TestbedConfig mixed_workload(const ServerSpec& server, std::size_t clients,
                             double buy_client_fraction,
                             std::uint64_t seed = util::Rng::kDefaultSeed);

/// How simulated measurements are taken: how many independent
/// replications to average (seeds derived per index, merged
/// deterministically — see sim/replicate.hpp), where to run them, and
/// whether the fluid fast path may engage.
struct MeasurementOptions {
  std::size_t replications = 1;
  std::size_t fluid_threshold = 0;  // forwarded to TestbedConfig
  util::ThreadPool* pool = nullptr; // replications fan out here
};

/// Measure a server's max throughput under the given workload shape by
/// driving it well past saturation. Used for the "application-specific
/// benchmark run on new server architectures" the system model calls for.
double measure_max_throughput(const ServerSpec& server,
                              double buy_client_fraction = 0.0,
                              std::uint64_t seed = util::Rng::kDefaultSeed,
                              const MeasurementOptions& options = {});

}  // namespace epp::sim::trade
