// Inline suppression of diagnostics in linted source text.
//
//   // epp-lint: ignore(<RULE>)
//   // epp-lint: ignore(<RULE>, <RULE>)
//
// A suppression on its own line silences the listed rules on the *next*
// line; a suppression trailing code silences them on its own line.
// Anything after the closing parenthesis is free-form justification and
// is encouraged: a suppression is an argument with the analyzer, and
// the reader deserves to hear it.
//
// Suppressions are scoped deliberately tight — one line, named rules
// only, no file-level or wildcard forms — so a suppression cannot
// quietly swallow findings it was never reviewed against. To keep the
// clean-tree CI gate honest, a suppression that matches no finding is
// itself reported (EPP-META-001): stale suppressions rot into false
// documentation, and the warning forces them out when the code they
// excused changes.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lint/diagnostic.hpp"

namespace epp::lint {

/// One parsed `// epp-lint: ignore(...)` comment. `line` is where the
/// comment sits; `target_line` is the line it silences.
struct Suppression {
  std::string file;
  int line = 0;
  int target_line = 0;
  std::vector<std::string> rules;
};

/// Scan source text for suppression comments. `file` labels the
/// resulting records; `text` is the file's full contents. Comments are
/// recognised inside both `//` and `/* */` trivia but not inside string
/// literals.
std::vector<Suppression> find_suppressions(const std::string& file,
                                           std::string_view text);

/// Filter `input` through `suppressions`: findings whose (file, line,
/// rule) match a suppression are dropped; every suppression that
/// matched nothing becomes an EPP-META-001 warning located at the
/// suppression comment. Returns the filtered collection.
Diagnostics apply_suppressions(const Diagnostics& input,
                               const std::vector<Suppression>& suppressions);

}  // namespace epp::lint
