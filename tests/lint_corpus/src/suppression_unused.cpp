// Corpus: EPP-META-001 — a suppression whose rule never fires goes
// stale and must be reported, not silently ignored.
namespace lint_corpus {

inline int answer() {
  // epp-lint: ignore(EPP-HOT-001) nothing allocates here any more
  return 42;
}

}  // namespace lint_corpus
