// Ablation — the historical method's transition relationship.
//
// Section 4.1: "using a further breakdown of the possible system loads, so
// as to define a 'transition' relationship for phasing from the lower to
// the upper equation, can increase predictive accuracy", with the band
// found effective between 66% and 110% of the max-throughput load. This
// ablation measures mean-RT accuracy *including the knee region* for:
// no transition (hard switch at the knee), the paper's 66-110% band, and
// narrower/wider alternatives.
#include <iostream>

#include "common.hpp"
#include "hydra/relationships.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace epp;
  std::cout << "== Ablation: transition phasing between the lower and upper "
               "equations ==\n\n";

  bench::Setup setup;
  struct Variant {
    const char* name;
    double lo, hi;
  };
  const Variant variants[] = {
      {"no transition (hard switch)", 1.0, 1.0},
      {"narrow band 90-105%", 0.90, 1.05},
      {"paper band 66-110%", 0.66, 1.10},
      {"wide band 50-140%", 0.50, 1.40},
  };

  // Validation points spanning the knee, where the variants differ.
  const std::vector<double> fractions{0.3, 0.5, 0.7, 0.85, 1.0,
                                      1.15, 1.4, 1.8};
  util::Table table({"variant", "AppServF_acc_pct", "AppServVF_acc_pct",
                     "AppServS_acc_pct"});
  for (const Variant& variant : variants) {
    std::vector<std::string> row{variant.name};
    for (const std::string& server : bench::server_names()) {
      hydra::Relationship1 rel = setup.historical->model().server(server);
      rel.transition_lo = variant.lo;
      rel.transition_hi = variant.hi;
      const auto measured = setup.validation_sweep(server, fractions);
      std::vector<double> pred, meas;
      for (const core::MeasuredPoint& p : measured) {
        pred.push_back(rel.predict_metric(p.clients));
        meas.push_back(p.mean_rt_s);
      }
      row.push_back(
          util::fmt(util::prediction_accuracy_percent(pred, meas), 1));
    }
    // Reorder: server_names() is F, VF, S.
    table.add_row({row[0], row[1], row[2], row[3]});
  }
  table.print(std::cout);

  std::cout << "\nreading the result: the band choice only matters near max "
               "throughput. On this simulated testbed the knee is *sharp* "
               "(analytic PS servers; no real-world variance), so a narrow "
               "band wins and the paper's wide 66-110% band over-smooths; "
               "on the paper's real WebSphere testbed the knee was softer "
               "and the wide band increased accuracy. The tunable band is "
               "how HYDRA adapts to either.\n";
  return 0;
}
