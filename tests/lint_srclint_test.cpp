// epp_srclint — the source-level concurrency / hot-path analyzer.
//
// Three contracts are pinned here:
//
//   1. The defect corpus (tests/lint_corpus/src): every file seeds one
//      or more defects, and the table below fixes the exact rule ID,
//      severity and line the analyzer must report. A scanner regression
//      that shifts, drops or duplicates a finding fails the table.
//   2. The clean-tree gate: the repo's own src/ and tools/ trees lint
//      to zero findings. CI enforces the same invariant with the
//      epp_srclint binary; this test catches it at `ctest` time.
//   3. Suppression semantics: `// epp-lint: ignore(<RULE>)` silences
//      exactly its target line, stale suppressions surface as
//      EPP-META-001, and --no-suppress reveals everything.
//   4. The determinism family (EPP-DET): rule filtering via
//      SrclintOptions::rule_prefixes, and the static/runtime
//      cross-check — det_replay_divergence.cpp is #included below and
//      executed twice, so the same source line the analyzer flags is
//      shown to actually diverge between "runs".

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint/diagnostic.hpp"
#include "lint/src/srclint.hpp"
#include "lint/suppress.hpp"

#include "lint_corpus/src/det_replay_divergence.cpp"  // the shared defect fixture

namespace epp {
namespace {

using lint::Diagnostic;
using lint::Diagnostics;
using lint::Severity;
using lint::SrclintOptions;

std::string corpus_dir() {
  return std::string(EPP_LINT_CORPUS_DIR) + "/src";
}

Diagnostics lint_paths(const std::vector<std::string>& paths,
                       bool use_suppressions = true) {
  SrclintOptions options;
  options.use_suppressions = use_suppressions;
  Diagnostics diagnostics;
  lint::lint_sources(paths, diagnostics, options);
  return diagnostics;
}

// --- 1. the golden corpus --------------------------------------------------

struct GoldenFinding {
  const char* file;
  int line;
  const char* rule;
  Severity severity;
};

// Sorted the way sort_by_location sorts: (file, line, rule).
const GoldenFinding kGolden[] = {
    {"blocking_under_lock.cpp", 14, "EPP-CONC-003", Severity::kWarning},
    {"cas_retry.cpp", 11, "EPP-CONC-007", Severity::kWarning},
    {"det_default_seed.cpp", 8, "EPP-DET-005", Severity::kWarning},
    {"det_entropy_seed.cpp", 13, "EPP-DET-001", Severity::kError},
    {"det_entropy_seed.cpp", 15, "EPP-DET-001", Severity::kError},
    {"det_parallel_accumulator.cpp", 13, "EPP-DET-004", Severity::kError},
    {"det_pointer_key.cpp", 9, "EPP-DET-006", Severity::kWarning},
    {"det_replay_divergence.cpp", 12, "EPP-DET-001", Severity::kError},
    {"det_std_distribution.cpp", 10, "EPP-DET-002", Severity::kError},
    {"det_std_distribution.cpp", 11, "EPP-DET-002", Severity::kError},
    {"det_unordered_accumulate.cpp", 11, "EPP-DET-003", Severity::kError},
    {"det_unordered_emit.cpp", 11, "EPP-DET-003", Severity::kError},
    {"det_unordered_schedule.cpp", 14, "EPP-DET-003", Severity::kError},
    {"detached_thread.cpp", 8, "EPP-CONC-006", Severity::kWarning},
    {"double_lock.cpp", 12, "EPP-CONC-002", Severity::kError},
    {"guarded_bare_access.cpp", 18, "EPP-CONC-005", Severity::kWarning},
    {"hot_alloc.cpp", 9, "EPP-HOT-001", Severity::kWarning},
    {"hot_function.cpp", 11, "EPP-HOT-002", Severity::kWarning},
    {"hot_io.cpp", 11, "EPP-HOT-004", Severity::kWarning},
    {"hot_lock.cpp", 13, "EPP-HOT-003", Severity::kWarning},
    {"hot_unbalanced.cpp", 8, "EPP-HOT-005", Severity::kError},
    {"hot_unbalanced.cpp", 11, "EPP-HOT-005", Severity::kError},
    {"hot_unbalanced.cpp", 14, "EPP-HOT-005", Severity::kError},
    {"hot_unbalanced.cpp", 17, "EPP-HOT-005", Severity::kError},
    {"lock_cycle.cpp", 8, "EPP-CONC-008", Severity::kWarning},
    {"lock_cycle.cpp", 9, "EPP-CONC-008", Severity::kWarning},
    {"lock_cycle.cpp", 10, "EPP-CONC-008", Severity::kWarning},
    {"lock_cycle.cpp", 14, "EPP-CONC-001", Severity::kError},
    {"rank_inversion.cpp", 24, "EPP-CONC-001", Severity::kError},
    {"suppression_unused.cpp", 6, "EPP-META-001", Severity::kWarning},
    {"unranked_mutex.cpp", 9, "EPP-CONC-008", Severity::kWarning},
    {"unranked_mutex.cpp", 10, "EPP-CONC-008", Severity::kWarning},
    {"wait_without_predicate.cpp", 9, "EPP-CONC-008", Severity::kWarning},
    {"wait_without_predicate.cpp", 15, "EPP-CONC-004", Severity::kWarning},
    {"wait_without_predicate.cpp", 16, "EPP-CONC-004", Severity::kWarning},
};

TEST(SrclintCorpus, EveryDefectPinnedToRuleSeverityAndLine) {
  const Diagnostics diagnostics = lint_paths({corpus_dir()});
  ASSERT_EQ(diagnostics.size(), std::size(kGolden));
  for (std::size_t i = 0; i < std::size(kGolden); ++i) {
    const GoldenFinding& want = kGolden[i];
    const Diagnostic& got = diagnostics.all()[i];
    const std::string file = corpus_dir() + "/" + want.file;
    EXPECT_EQ(got.location.file, file) << "finding " << i;
    EXPECT_EQ(got.location.line, want.line) << "finding " << i;
    EXPECT_EQ(got.rule, want.rule) << "finding " << i;
    EXPECT_EQ(got.severity, want.severity) << "finding " << i;
    EXPECT_FALSE(got.message.empty()) << "finding " << i;
  }
}

TEST(SrclintCorpus, CorpusCoversTheWholeRuleCatalog) {
  // ≥10 distinct seeded rules; if a rule is added to the analyzer it
  // must gain corpus coverage (and a row in this list).
  std::vector<std::string> covered;
  for (const GoldenFinding& finding : kGolden) covered.push_back(finding.rule);
  std::sort(covered.begin(), covered.end());
  covered.erase(std::unique(covered.begin(), covered.end()), covered.end());
  const std::vector<std::string> expected = {
      "EPP-CONC-001", "EPP-CONC-002", "EPP-CONC-003", "EPP-CONC-004",
      "EPP-CONC-005", "EPP-CONC-006", "EPP-CONC-007", "EPP-CONC-008",
      "EPP-DET-001",  "EPP-DET-002",  "EPP-DET-003",  "EPP-DET-004",
      "EPP-DET-005",  "EPP-DET-006",  "EPP-HOT-001",  "EPP-HOT-002",
      "EPP-HOT-003",  "EPP-HOT-004",  "EPP-HOT-005",  "EPP-META-001",
  };
  EXPECT_EQ(covered, expected);
}

TEST(SrclintCorpus, ExitCodeIsMaxSeverity) {
  const Diagnostics diagnostics = lint_paths({corpus_dir()});
  EXPECT_EQ(lint::exit_code(diagnostics), 2);  // errors present

  const Diagnostics warnings_only =
      lint_paths({corpus_dir() + "/detached_thread.cpp"});
  EXPECT_EQ(lint::exit_code(warnings_only), 1);

  const Diagnostics clean =
      lint_paths({corpus_dir() + "/suppressed_clean.cpp"});
  EXPECT_EQ(lint::exit_code(clean), 0);
}

TEST(SrclintCorpus, RankInversionElidesTheRedundantCycleReport) {
  // rank_inversion.cpp's two functions form a low->high->low cycle; the
  // rank rule already explains the descending edge, so exactly one
  // EPP-CONC-001 must come out — not a second, cycle-phrased duplicate.
  const Diagnostics diagnostics =
      lint_paths({corpus_dir() + "/rank_inversion.cpp"});
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics.all()[0].rule, "EPP-CONC-001");
  EXPECT_NE(diagnostics.all()[0].message.find("rank"), std::string::npos);
}

TEST(SrclintCorpus, PureCycleIsReportedOnceWithTheFullChain) {
  const Diagnostics diagnostics =
      lint_paths({corpus_dir() + "/lock_cycle.cpp"});
  int cycles = 0;
  for (const Diagnostic& diagnostic : diagnostics.all()) {
    if (diagnostic.rule != "EPP-CONC-001") continue;
    ++cycles;
    EXPECT_NE(diagnostic.message.find(
                  "cycle_a -> cycle_b -> cycle_c -> cycle_a"),
              std::string::npos)
        << diagnostic.message;
  }
  EXPECT_EQ(cycles, 1);
}

TEST(SrclintCorpus, MissingInputIsMeta002Error) {
  const Diagnostics diagnostics =
      lint_paths({corpus_dir() + "/no_such_file.cpp"});
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics.all()[0].rule, "EPP-META-002");
  EXPECT_EQ(diagnostics.all()[0].severity, Severity::kError);
  EXPECT_EQ(lint::exit_code(diagnostics), 2);
}

// --- 2. the clean-tree gate ------------------------------------------------

TEST(SrclintCleanTree, RepoSourcesAndToolsLintToZeroFindings) {
  const std::string root = EPP_SOURCE_ROOT;
  const Diagnostics diagnostics =
      lint_paths({root + "/src", root + "/tools"});
  EXPECT_TRUE(diagnostics.empty())
      << "the annotated tree must stay clean; found:\n"
      << lint::render_text(diagnostics);
}

// --- 3. suppression semantics ----------------------------------------------

TEST(SrclintSuppression, StandaloneCommentSilencesTheNextLine) {
  const Diagnostics honored =
      lint_paths({corpus_dir() + "/suppressed_clean.cpp"});
  EXPECT_TRUE(honored.empty()) << lint::render_text(honored);

  const Diagnostics revealed = lint_paths(
      {corpus_dir() + "/suppressed_clean.cpp"}, /*use_suppressions=*/false);
  ASSERT_EQ(revealed.size(), 1u);
  EXPECT_EQ(revealed.all()[0].rule, "EPP-CONC-006");
}

TEST(SrclintSuppression, TrailingCommentSilencesItsOwnLine) {
  const std::string text =
      "#include <thread>\n"
      "void f() {\n"
      "  std::thread t([] {});\n"
      "  t.detach();  // epp-lint: ignore(EPP-CONC-006) shutdown-free\n"
      "}\n";
  const std::vector<lint::Suppression> suppressions =
      lint::find_suppressions("f.cpp", text);
  ASSERT_EQ(suppressions.size(), 1u);
  EXPECT_EQ(suppressions[0].line, 4);
  EXPECT_EQ(suppressions[0].target_line, 4);  // trailing: its own line
  ASSERT_EQ(suppressions[0].rules.size(), 1u);
  EXPECT_EQ(suppressions[0].rules[0], "EPP-CONC-006");
}

TEST(SrclintSuppression, QuotedMarkerTextIsNotASuppression) {
  const std::string text =
      "const char* doc = \"// epp-lint: ignore(EPP-CONC-006)\";\n";
  EXPECT_TRUE(lint::find_suppressions("f.cpp", text).empty());
}

TEST(SrclintSuppression, MalformedRuleListIsIgnored) {
  // Lowercase / placeholder rule names (as used in documentation) must
  // not register as suppressions — and therefore can never go stale.
  const std::string text =
      "// epp-lint: ignore(<RULE>)\n"
      "// epp-lint: ignore(rule)\n"
      "// epp-lint: ignore EPP-CONC-006\n";
  EXPECT_TRUE(lint::find_suppressions("f.cpp", text).empty());
}

TEST(SrclintSuppression, MultiRuleCommentTracksEachRuleSeparately) {
  // One rule fires, the other is stale: the finding is suppressed AND
  // the stale half is reported.
  Diagnostics input;
  input.warning("EPP-CONC-006", {"f.cpp", 4}, "detached thread");
  lint::Suppression suppression;
  suppression.file = "f.cpp";
  suppression.line = 3;
  suppression.target_line = 4;
  suppression.rules = {"EPP-CONC-006", "EPP-HOT-001"};
  const Diagnostics output =
      lint::apply_suppressions(input, {suppression});
  ASSERT_EQ(output.size(), 1u);
  EXPECT_EQ(output.all()[0].rule, "EPP-META-001");
  EXPECT_NE(output.all()[0].message.find("EPP-HOT-001"), std::string::npos);
  EXPECT_EQ(output.all()[0].message.find("EPP-CONC-006"), std::string::npos);
}

TEST(SrclintSuppression, StaleSuppressionIsMeta001) {
  const Diagnostics diagnostics =
      lint_paths({corpus_dir() + "/suppression_unused.cpp"});
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics.all()[0].rule, "EPP-META-001");
  EXPECT_EQ(diagnostics.all()[0].location.line, 6);
  // --no-suppress: nothing to report at all (the defect never existed).
  EXPECT_TRUE(
      lint_paths({corpus_dir() + "/suppression_unused.cpp"}, false).empty());
}

TEST(SrclintSuppression, DeterminismFindingCanBeSuppressedToo) {
  const Diagnostics honored =
      lint_paths({corpus_dir() + "/det_suppressed_iteration.cpp"});
  EXPECT_TRUE(honored.empty()) << lint::render_text(honored);

  const Diagnostics revealed =
      lint_paths({corpus_dir() + "/det_suppressed_iteration.cpp"},
                 /*use_suppressions=*/false);
  ASSERT_EQ(revealed.size(), 1u);
  EXPECT_EQ(revealed.all()[0].rule, "EPP-DET-003");
  EXPECT_EQ(revealed.all()[0].location.line, 12);
}

// --- 4. the determinism family ---------------------------------------------

Diagnostics lint_filtered(const std::vector<std::string>& paths,
                          const std::vector<std::string>& prefixes) {
  SrclintOptions options;
  options.rule_prefixes = prefixes;
  Diagnostics diagnostics;
  lint::lint_sources(paths, diagnostics, options);
  return diagnostics;
}

TEST(SrclintRuleFilter, PrefixFilterKeepsOnlyMatchingFamilies) {
  const Diagnostics det_only = lint_filtered({corpus_dir()}, {"EPP-DET"});
  ASSERT_FALSE(det_only.empty());
  for (const Diagnostic& diagnostic : det_only.all())
    EXPECT_EQ(diagnostic.rule.rfind("EPP-DET", 0), 0u) << diagnostic.rule;

  // A filter narrowed to one rule keeps exactly that rule's findings.
  const Diagnostics one_rule = lint_filtered({corpus_dir()}, {"EPP-DET-003"});
  ASSERT_EQ(one_rule.size(), 3u);
  for (const Diagnostic& diagnostic : one_rule.all())
    EXPECT_EQ(diagnostic.rule, "EPP-DET-003");
}

TEST(SrclintRuleFilter, DisabledFamilySuppressionsDoNotGoStale) {
  // det_suppressed_iteration.cpp suppresses an EPP-DET-003; with the
  // family disabled the suppression must be dropped quietly, not
  // reported as stale EPP-META-001.
  const Diagnostics conc_only = lint_filtered(
      {corpus_dir() + "/det_suppressed_iteration.cpp"}, {"EPP-CONC"});
  EXPECT_TRUE(conc_only.empty()) << lint::render_text(conc_only);
}

TEST(SrclintRuleFilter, MissingInputStillSurfacesThroughTheFilter) {
  // EPP-META-002 (bad input) must not be filterable away.
  const Diagnostics diagnostics = lint_filtered(
      {corpus_dir() + "/no_such_file.cpp"}, {"EPP-DET"});
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics.all()[0].rule, "EPP-META-002");
}

TEST(SrclintDeterminism, StaticFindingAndRuntimeDivergenceAgree) {
  // Static side: the analyzer pins the std::random_device read.
  const Diagnostics diagnostics =
      lint_paths({corpus_dir() + "/det_replay_divergence.cpp"});
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics.all()[0].rule, "EPP-DET-001");
  EXPECT_EQ(diagnostics.all()[0].location.line, 12);

  // Runtime side: execute the flagged code twice — the miniature
  // version of epp_replay's run-a/run-b — and observe the divergence
  // the rule predicts. Eight 32-bit hardware draws colliding twice in
  // a row is beyond astronomically unlikely.
  const auto run_a = lint_corpus::entropy_draws();
  const auto run_b = lint_corpus::entropy_draws();
  EXPECT_NE(run_a, run_b)
      << "two entropy-seeded runs produced identical draw sequences";
}

}  // namespace
}  // namespace epp
