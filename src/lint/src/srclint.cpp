#include "lint/src/srclint.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "lint/src/rules.hpp"
#include "lint/src/source_model.hpp"
#include "lint/suppress.hpp"

namespace epp::lint {
namespace {

bool lintable_extension(const std::filesystem::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".hh" || ext == ".cpp" ||
         ext == ".cc" || ext == ".cxx";
}

/// Expand files/directories into a deterministic, deduplicated file
/// list. Unreadable or missing inputs become EPP-META-002 errors.
std::vector<std::string> expand_paths(const std::vector<std::string>& paths,
                                      Diagnostics& out) {
  std::set<std::string> files;
  for (const std::string& path : paths) {
    std::error_code ec;
    const std::filesystem::path fs_path(path);
    if (std::filesystem::is_directory(fs_path, ec)) {
      for (std::filesystem::recursive_directory_iterator it(fs_path, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file(ec) && lintable_extension(it->path()))
          files.insert(it->path().generic_string());
      }
      if (ec)
        out.error("EPP-META-002", {path, 0},
                  "cannot walk directory: " + ec.message());
    } else if (std::filesystem::is_regular_file(fs_path, ec)) {
      files.insert(fs_path.generic_string());
    } else {
      out.error("EPP-META-002", {path, 0},
                "input is neither a readable file nor a directory",
                "check the path (srclint lints C++ sources: "
                ".hpp/.h/.hh/.cpp/.cc/.cxx)");
    }
  }
  return {files.begin(), files.end()};
}

}  // namespace

void lint_sources(const std::vector<std::string>& paths, Diagnostics& out,
                  const SrclintOptions& options) {
  Diagnostics findings;
  const std::vector<std::string> files = expand_paths(paths, findings);

  std::vector<srcmodel::FileModel> models;
  std::vector<Suppression> suppressions;
  models.reserve(files.size());
  for (const std::string& file : files) {
    std::ifstream stream(file, std::ios::binary);
    if (!stream) {
      findings.error("EPP-META-002", {file, 0}, "cannot open file");
      continue;
    }
    std::ostringstream content;
    content << stream.rdbuf();
    const std::string text = content.str();
    models.push_back(srcmodel::scan_file(file, text));
    if (options.use_suppressions) {
      std::vector<Suppression> found = find_suppressions(file, text);
      suppressions.insert(suppressions.end(),
                          std::make_move_iterator(found.begin()),
                          std::make_move_iterator(found.end()));
    }
  }

  srcrules::check_concurrency(models, findings);
  srcrules::check_hot_regions(models, findings);
  srcrules::check_determinism(models, findings);

  if (!options.rule_prefixes.empty()) {
    const auto enabled = [&options](const std::string& rule) {
      for (const std::string& prefix : options.rule_prefixes)
        if (rule.compare(0, prefix.size(), prefix) == 0) return true;
      return false;
    };
    Diagnostics filtered;
    for (const Diagnostic& diagnostic : findings.all()) {
      // Unreadable inputs are reported regardless of the filter: a
      // "clean" run that silently read nothing proves nothing.
      if (diagnostic.rule == "EPP-META-002" || enabled(diagnostic.rule))
        filtered.add(diagnostic);
    }
    findings = std::move(filtered);
    // A suppression of a disabled rule must not go stale (EPP-META-001)
    // just because this run never evaluated the rule.
    for (Suppression& suppression : suppressions) {
      suppression.rules.erase(
          std::remove_if(suppression.rules.begin(), suppression.rules.end(),
                         [&enabled](const std::string& rule) {
                           return !enabled(rule);
                         }),
          suppression.rules.end());
    }
    suppressions.erase(
        std::remove_if(suppressions.begin(), suppressions.end(),
                       [](const Suppression& suppression) {
                         return suppression.rules.empty();
                       }),
        suppressions.end());
  }

  if (options.use_suppressions)
    findings = apply_suppressions(findings, suppressions);

  for (const Diagnostic& diagnostic : findings.all()) out.add(diagnostic);
  out.sort_by_location();
}

}  // namespace epp::lint
