#include "sim/engine.hpp"

#include <stdexcept>
#include <utility>

namespace epp::sim {

Engine::Handle Engine::schedule_at(double time, Callback fn) {
  if (time < now_)
    throw std::invalid_argument("Engine::schedule_at: time in the past");
  auto event = std::make_shared<Event>();
  event->time = time;
  event->seq = next_seq_++;
  event->fn = std::move(fn);
  heap_.push(event);
  return event;
}

Engine::Handle Engine::schedule_after(double delay, Callback fn) {
  if (delay < 0.0)
    throw std::invalid_argument("Engine::schedule_after: negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

bool Engine::step() {
  while (!heap_.empty()) {
    Handle event = heap_.top();
    heap_.pop();
    if (event->canceled) continue;
    now_ = event->time;
    ++processed_;
    // Move the callback out so the event releases captured state promptly.
    Callback fn = std::move(event->fn);
    fn();
    return true;
  }
  return false;
}

void Engine::run_until(double end_time) {
  while (!heap_.empty() && heap_.top()->time <= end_time) step();
  if (end_time > now_) now_ = end_time;
}

void Engine::run_all() {
  while (step()) {
  }
}

}  // namespace epp::sim
