#include "lint/src/source_model.hpp"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <regex>
#include <string_view>
#include <utility>

namespace epp::lint::srcmodel {
namespace {

/// Two same-shape views of the source: `code` blanks comments only
/// (string literals survive, so declaration labels can be read);
/// `pure` additionally blanks string/char literal contents, so token
/// scans never match quoted or commented-out code. Line structure is
/// preserved exactly in both.
struct StrippedViews {
  std::string code;
  std::string pure;
};

StrippedViews strip(const std::string& text) {
  StrippedViews views;
  views.code = text;
  views.pure = text;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          views.code[i] = views.pure[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          views.code[i] = views.pure[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n')
          state = State::kCode;
        else
          views.code[i] = views.pure[i] = ' ';
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          views.code[i] = views.pure[i] = ' ';
          views.code[i + 1] = views.pure[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          views.code[i] = views.pure[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          views.pure[i] = ' ';
          if (next != '\n' && next != '\0') views.pure[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          views.pure[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          views.pure[i] = ' ';
          if (next != '\n' && next != '\0') views.pure[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        } else if (c != '\n') {
          views.pure[i] = ' ';
        }
        break;
    }
  }
  return views;
}

std::vector<std::size_t> line_starts(const std::string& text) {
  std::vector<std::size_t> starts{0};
  for (std::size_t i = 0; i < text.size(); ++i)
    if (text[i] == '\n') starts.push_back(i + 1);
  return starts;
}

int line_of(const std::vector<std::size_t>& starts, std::size_t pos) {
  const auto it = std::upper_bound(starts.begin(), starts.end(), pos);
  return static_cast<int>(it - starts.begin());
}

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Find the keyword owning the block opened at `brace` (skipping back
/// over an optional parenthesized head), or "" when the block belongs
/// to a function body, class, lambda, initializer, etc.
std::string block_keyword(const std::string& pure, std::size_t brace) {
  std::size_t i = brace;
  while (i > 0 &&
         std::isspace(static_cast<unsigned char>(pure[i - 1])))
    --i;
  if (i == 0) return "";
  if (pure[i - 1] == ')') {
    int depth = 0;
    std::size_t j = i;  // j-1 is ')'
    while (j > 0) {
      --j;
      if (pure[j] == ')') ++depth;
      if (pure[j] == '(') {
        --depth;
        if (depth == 0) break;
      }
    }
    if (depth != 0) return "";
    i = j;
    while (i > 0 &&
           std::isspace(static_cast<unsigned char>(pure[i - 1])))
      --i;
  }
  std::size_t end = i;
  while (i > 0 && is_ident(pure[i - 1])) --i;
  return pure.substr(i, end - i);
}

/// Count the top-level arguments of a call whose opening parenthesis is
/// at `open`; returns -1 when the parens never balance.
int count_call_args(const std::string& pure, std::size_t open) {
  int depth = 0;
  int commas = 0;
  bool any_token = false;
  for (std::size_t i = open; i < pure.size(); ++i) {
    const char c = pure[i];
    if (c == '(' || c == '[' || c == '{') {
      ++depth;
    } else if (c == ')' || c == ']' || c == '}') {
      --depth;
      if (depth == 0) return any_token ? commas + 1 : 0;
    } else if (depth == 1) {
      if (c == ',')
        ++commas;
      else if (!std::isspace(static_cast<unsigned char>(c)))
        any_token = true;
    }
  }
  return -1;
}

/// One active guard scope (or statement-form bare .lock()).
struct GuardScope {
  std::vector<std::string> names;
  int depth = 0;
  bool bare = false;  // released by .unlock(), not by scope exit
};

const std::regex& guard_pattern() {
  static const std::regex pattern(
      R"((?:std::)?(lock_guard|unique_lock|scoped_lock|shared_lock)\s*(?:<[^;{}<>]*>)?\s+[A-Za-z_]\w*\s*[({]([^;]*?)[)}]\s*;)"
      R"(|(?:util::)?(MutexLock|SharedMutexLock)\s+[A-Za-z_]\w*\s*[({]([^;]*?)[)}]\s*;)");
  return pattern;
}

const std::regex& bare_lock_pattern() {
  static const std::regex pattern(
      R"(^\s*([A-Za-z_][\w.\->\[\]]*?)(?:\.|->)(lock|lock_shared|unlock|unlock_shared)\(\)\s*;\s*$)");
  return pattern;
}

std::vector<std::string> split_guard_args(const std::string& args) {
  std::vector<std::string> names;
  std::string current;
  int depth = 0;
  for (const char c : args) {
    if (c == '(' || c == '<' || c == '[') ++depth;
    if (c == ')' || c == '>' || c == ']') --depth;
    if (c == ',' && depth == 0) {
      names.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  names.push_back(current);
  std::vector<std::string> normalized;
  for (std::string& name : names) {
    std::string n = normalize_mutex_name(std::move(name));
    // Lock-tag arguments are not mutexes.
    if (n.empty() || n == "adopt_lock" || n == "defer_lock" ||
        n == "try_to_lock")
      continue;
    normalized.push_back(std::move(n));
  }
  return normalized;
}

}  // namespace

std::string normalize_mutex_name(std::string expr) {
  // Trim whitespace and address-of.
  std::size_t begin = 0;
  std::size_t end = expr.size();
  while (begin < end &&
         (std::isspace(static_cast<unsigned char>(expr[begin])) ||
          expr[begin] == '&' || expr[begin] == '*'))
    ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(expr[end - 1])))
    --end;
  expr = expr.substr(begin, end - begin);
  // Take the last member-access component: "this->pool.mutex_" -> "mutex_".
  std::size_t cut = 0;
  for (std::size_t i = 0; i + 1 < expr.size(); ++i) {
    if (expr[i] == '.')
      cut = i + 1;
    else if (expr[i] == '-' && expr[i + 1] == '>')
      cut = i + 2;
  }
  expr = expr.substr(cut);
  // Drop trailing array / call decoration.
  const std::size_t decoration = expr.find_first_of("([");
  if (decoration != std::string::npos) expr = expr.substr(0, decoration);
  return expr;
}

FileModel scan_file(const std::string& path, const std::string& text) {
  FileModel model;
  model.path = path;

  const StrippedViews views = strip(text);
  const std::vector<std::size_t> starts = line_starts(text);
  model.line_count = static_cast<int>(starts.size());

  // --- declarations (on `code`, labels intact) -----------------------
  {
    static const std::regex ranked(
        R"((?:util::)?Ranked(Shared)?Mutex\s+([A-Za-z_]\w*)\s*([{(]))");
    static const std::regex rank_macro(R"(EPP_LOCK_RANK\(\s*(\d+)\s*\))");
    static const std::regex label_literal("\"([^\"]*)\"");
    for (auto it = std::sregex_iterator(views.code.begin(), views.code.end(),
                                        ranked);
         it != std::sregex_iterator(); ++it) {
      MutexDecl decl;
      decl.file = path;
      decl.line = line_of(starts, static_cast<std::size_t>(it->position(2)));
      decl.name = (*it)[2];
      decl.shared = (*it)[1].matched;
      decl.ranked_type = true;
      // The initializer runs to the statement end; read the rank macro
      // and label out of it.
      const std::size_t init_begin =
          static_cast<std::size_t>(it->position(3));
      const std::size_t init_end = views.code.find(';', init_begin);
      const std::string init = views.code.substr(
          init_begin, init_end == std::string::npos
                          ? std::string::npos
                          : init_end - init_begin);
      std::smatch m;
      if (std::regex_search(init, m, rank_macro)) decl.rank = std::stoi(m[1]);
      if (std::regex_search(init, m, label_literal)) decl.label = m[1];
      model.decls.push_back(std::move(decl));
    }
    static const std::regex std_mutex(
        R"(std::(recursive_timed_mutex|recursive_mutex|timed_mutex|shared_mutex|mutex)\s+([A-Za-z_]\w*)\s*[;{(=])");
    for (auto it = std::sregex_iterator(views.code.begin(), views.code.end(),
                                        std_mutex);
         it != std::sregex_iterator(); ++it) {
      MutexDecl decl;
      decl.file = path;
      decl.line = line_of(starts, static_cast<std::size_t>(it->position(2)));
      decl.name = (*it)[2];
      decl.shared = (*it)[1] == "shared_mutex";
      decl.std_type = true;
      model.decls.push_back(std::move(decl));
    }
  }

  // --- guarded-field bindings ---------------------------------------
  {
    static const std::regex guarded(
        R"(([A-Za-z_]\w*)\s+EPP_GUARDED_BY\(\s*([^)]+?)\s*\))");
    for (auto it = std::sregex_iterator(views.code.begin(), views.code.end(),
                                        guarded);
         it != std::sregex_iterator(); ++it) {
      GuardedField field;
      field.name = (*it)[1];
      if (field.name == "define") continue;  // the macro's own definition
      field.file = path;
      field.line = line_of(starts, static_cast<std::size_t>(it->position(1)));
      field.mutex_name = normalize_mutex_name((*it)[2]);
      model.guarded.push_back(std::move(field));
    }
  }

  // --- scope walk over `pure` ---------------------------------------
  const std::string& pure = views.pure;
  model.held_by_line.resize(static_cast<std::size_t>(model.line_count));
  model.tokens.resize(static_cast<std::size_t>(model.line_count));

  int depth = 0;
  std::vector<GuardScope> guards;
  std::vector<int> loop_blocks;  // depth values of active loop bodies
  std::vector<bool> loop_keyword_line(
      static_cast<std::size_t>(model.line_count) + 1, false);

  static const std::regex loop_kw(R"(\b(while|for|do)\b)");
  static const std::regex blocking_kw(
      R"((\.join|\bsleep_for|\bsleep_until|\brecv|\bpoll|\baccept|\bconnect|\bsystem|\bgetline)\s*\()");
  static const std::regex wait_kw(R"(\.(wait|wait_for|wait_until)\s*(\())");
  static const std::regex detach_kw(R"(\.detach\s*\()");
  static const std::regex cas_kw(R"(\bcompare_exchange_weak\b)");
  static const std::regex hot_kw(R"(EPP_HOT_(BEGIN|END)\(\s*(\w+)\s*\))");

  for (int line = 1; line <= model.line_count; ++line) {
    const std::size_t begin = starts[static_cast<std::size_t>(line - 1)];
    const std::size_t end = static_cast<std::size_t>(line) < starts.size()
                                ? starts[static_cast<std::size_t>(line)]
                                : pure.size();
    const std::string line_text = pure.substr(begin, end - begin);
    model.tokens[static_cast<std::size_t>(line - 1)] = line_text;

    if (std::regex_search(line_text, loop_kw))
      loop_keyword_line[static_cast<std::size_t>(line)] = true;

    // Events on this line, in positional order: brace depth changes and
    // guard constructions (a guard guards everything after it).
    struct Event {
      std::size_t pos;
      int kind;  // 0 = '{', 1 = '}', 2 = guard, 3 = bare lock/unlock
      std::vector<std::string> names;
      bool unlock = false;
      bool loop_head = false;
    };
    std::vector<Event> events;
    for (std::size_t i = 0; i < line_text.size(); ++i) {
      if (line_text[i] == '{') {
        Event event{i, 0, {}, false, false};
        const std::string kw = block_keyword(pure, begin + i);
        event.loop_head = kw == "while" || kw == "for" || kw == "do";
        events.push_back(std::move(event));
      } else if (line_text[i] == '}') {
        events.push_back(Event{i, 1, {}, false, false});
      }
    }
    for (auto it = std::sregex_iterator(line_text.begin(), line_text.end(),
                                        guard_pattern());
         it != std::sregex_iterator(); ++it) {
      const std::string args = (*it)[2].matched ? (*it)[2] : (*it)[4];
      if (args.find("defer_lock") != std::string::npos)
        continue;  // constructed unlocked
      Event event{static_cast<std::size_t>(it->position(0)), 2,
                  split_guard_args(args), false, false};
      if (!event.names.empty()) events.push_back(std::move(event));
    }
    {
      std::smatch m;
      if (std::regex_match(line_text, m, bare_lock_pattern())) {
        const std::string op = m[2];
        Event event{static_cast<std::size_t>(m.position(1)), 3,
                    {normalize_mutex_name(m[1])},
                    op == "unlock" || op == "unlock_shared", false};
        events.push_back(std::move(event));
      }
    }
    std::sort(events.begin(), events.end(),
              [](const Event& a, const Event& b) { return a.pos < b.pos; });

    for (Event& event : events) {
      switch (event.kind) {
        case 0:
          ++depth;
          if (event.loop_head) loop_blocks.push_back(depth);
          break;
        case 1:
          --depth;
          while (!guards.empty() && guards.back().depth > depth)
            guards.pop_back();
          while (!loop_blocks.empty() && loop_blocks.back() > depth)
            loop_blocks.pop_back();
          break;
        case 2:
        case 3: {
          if (event.kind == 3 && event.unlock) {
            // Release the most recent matching bare acquisition.
            for (auto it = guards.rbegin(); it != guards.rend(); ++it) {
              if (it->bare && it->names.size() == 1 &&
                  it->names[0] == event.names[0]) {
                guards.erase(std::next(it).base());
                break;
              }
            }
            break;
          }
          std::vector<std::string> held;
          for (const GuardScope& guard : guards)
            held.insert(held.end(), guard.names.begin(), guard.names.end());
          for (const std::string& name : event.names) {
            Acquisition acquisition;
            acquisition.line = line;
            acquisition.mutex_name = name;
            acquisition.held = held;
            model.acquisitions.push_back(std::move(acquisition));
            held.push_back(name);  // scoped_lock(a, b): b sees a held
          }
          GuardScope scope;
          scope.names = std::move(event.names);
          scope.depth = depth;
          scope.bare = event.kind == 3;
          guards.push_back(std::move(scope));
          break;
        }
        default:
          break;
      }
    }

    std::vector<std::string>& held_now =
        model.held_by_line[static_cast<std::size_t>(line - 1)];
    for (const GuardScope& guard : guards)
      held_now.insert(held_now.end(), guard.names.begin(), guard.names.end());

    // --- per-line call sites ----------------------------------------
    if (!held_now.empty()) {
      for (auto it = std::sregex_iterator(line_text.begin(), line_text.end(),
                                          blocking_kw);
           it != std::sregex_iterator(); ++it) {
        std::string token = (*it)[1];
        while (!token.empty() && !is_ident(token.front()))
          token.erase(token.begin());
        model.blocking.push_back(BlockingCall{line, token});
      }
    }
    for (auto it = std::sregex_iterator(line_text.begin(), line_text.end(),
                                        wait_kw);
         it != std::sregex_iterator(); ++it) {
      WaitCall wait;
      wait.line = line;
      wait.token = (*it)[1];
      wait.args = count_call_args(
          pure, begin + static_cast<std::size_t>(it->position(2)));
      model.waits.push_back(std::move(wait));
    }
    if (std::regex_search(line_text, detach_kw))
      model.detaches.push_back(DetachCall{line});
    if (std::regex_search(line_text, cas_kw)) {
      CasCall cas;
      cas.line = line;
      cas.in_loop = !loop_blocks.empty();
      // A CAS in a loop *head* sits before the body's '{' — accept a
      // loop keyword within the previous few lines as evidence too.
      for (int back = std::max(1, line - 3); !cas.in_loop && back <= line;
           ++back)
        cas.in_loop = loop_keyword_line[static_cast<std::size_t>(back)];
      model.cas.push_back(cas);
    }
    for (auto it = std::sregex_iterator(line_text.begin(), line_text.end(),
                                        hot_kw);
         it != std::sregex_iterator(); ++it) {
      HotMarker marker;
      marker.line = line;
      marker.begin = (*it)[1] == "BEGIN";
      marker.label = (*it)[2];
      model.hot_markers.push_back(std::move(marker));
    }
  }

  return model;
}

}  // namespace epp::lint::srcmodel
