// Shared description of the case study (section 3) used by every
// prediction method, plus the builder that turns it into an LQN model.
//
// The calibration values live here rather than in the predictors so one
// calibration (table 2) feeds the layered queuing, hybrid and historical
// models identically, as in the paper.
#pragma once

#include <cstddef>
#include <string>

#include "lint/diagnostic.hpp"
#include "lqn/model.hpp"

namespace epp::core {

/// Per-request-type parameters of the layered queuing method (table 2):
/// mean processing times on each server and DB calls per request.
struct RequestTypeParams {
  double app_demand_s = 0.0;       // app-server CPU per request (speed 1.0)
  double db_cpu_per_call_s = 0.0;  // DB CPU per database request
  double disk_per_call_s = 0.0;    // DB disk per database request
  double mean_db_calls = 0.0;      // DB requests per app-server request
};

/// Calibrated request types: browse and buy (the paper's two classes).
struct TradeCalibration {
  RequestTypeParams browse;
  RequestTypeParams buy;
};

/// An application-server architecture as the models see it: a name and a
/// request-processing-speed ratio relative to the calibration server
/// (AppServF = 1.0), plus the concurrency limits of the system model.
struct ServerArch {
  std::string name;
  double speed = 1.0;
  std::size_t app_concurrency = 50;
  std::size_t db_concurrency = 20;
};

/// A workload: browse and buy client populations with a mean think time.
struct WorkloadSpec {
  double browse_clients = 0.0;
  double buy_clients = 0.0;
  double think_time_s = 7.0;

  double total_clients() const noexcept { return browse_clients + buy_clients; }
  double buy_fraction() const noexcept {
    const double total = total_clients();
    return total > 0.0 ? buy_clients / total : 0.0;
  }
};

/// Rule-coded workload lint (the EPP-WKL-* rules): appends one diagnostic
/// per violated field to `diagnostics`, located at `where`. This is the
/// single source of truth for workload plausibility — validate_workload
/// and the epp_lint grid checks both run it.
///   EPP-WKL-001 (error)   non-finite or negative client count
///   EPP-WKL-002 (error)   non-finite or negative think time
///   EPP-WKL-003 (error)   buy fraction outside [0, 1]
///   EPP-WKL-004 (warning) empty workload (zero clients; the layered
///                         model cannot be built for it)
void lint_workload(const WorkloadSpec& workload,
                   const lint::SourceLocation& where,
                   lint::Diagnostics& diagnostics);

/// Service-boundary validation: negative or non-finite client counts,
/// non-finite or negative think times (and hence any buy fraction outside
/// [0, 1]) throw core::InvalidWorkloadError with the offending field in
/// the message. Implemented on top of lint_workload (first error-severity
/// finding wins). Every prediction entry point that accepts
/// caller-supplied workloads calls this before touching a model.
void validate_workload(const WorkloadSpec& workload);

/// Build the layered queuing model of the case study: browse/buy client
/// reference tasks -> application-server task (multiplicity 50) on its CPU
/// -> database task (multiplicity 20) on the DB CPU -> disk task on the
/// serial DB disk.
lqn::Model build_trade_lqn(const TradeCalibration& calibration,
                           const ServerArch& server,
                           const WorkloadSpec& workload);

/// Case-study server architectures (speeds from the measured 86/186/320
/// requests/second max throughputs).
ServerArch arch_s();
ServerArch arch_f();
ServerArch arch_vf();

}  // namespace epp::core
