#include "lqn/mva.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace epp::lqn {
namespace {

ClosedNetwork repairman(double n, double think, double demand) {
  ClosedNetwork net;
  net.stations = {{"cpu", StationKind::kQueueing, 1}};
  net.class_names = {"clients"};
  net.population = {n};
  net.think_time_s = {think};
  net.demands = {{demand}};
  return net;
}

/// Closed-form check: N=1 client, think Z, demand D -> R = D, X = 1/(Z+D).
TEST(ExactMva, SingleCustomerClosedForm) {
  const MvaResult r = solve_exact_single_class(repairman(1, 2.0, 0.5));
  EXPECT_NEAR(r.response_time_s[0], 0.5, 1e-12);
  EXPECT_NEAR(r.throughput_rps[0], 1.0 / 2.5, 1e-12);
  EXPECT_NEAR(r.station_utilization[0], 0.2, 1e-12);
}

/// Machine repairman with N=2: R(2) = D(1 + Q(1)) with Q(1)=X(1)R(1).
TEST(ExactMva, TwoCustomersRecursion) {
  const double z = 2.0, d = 0.5;
  const double r1 = d;
  const double x1 = 1.0 / (z + r1);
  const double q1 = x1 * r1;
  const double r2 = d * (1.0 + q1);
  const MvaResult r = solve_exact_single_class(repairman(2, z, d));
  EXPECT_NEAR(r.response_time_s[0], r2, 1e-12);
}

TEST(ExactMva, SaturationThroughputApproachesBound) {
  const MvaResult r = solve_exact_single_class(repairman(500, 1.0, 0.01));
  EXPECT_NEAR(r.throughput_rps[0], 100.0, 0.5);
  EXPECT_GT(r.station_utilization[0], 0.99);
  // Little's law: R = N/X - Z.
  EXPECT_NEAR(r.response_time_s[0], 500.0 / r.throughput_rps[0] - 1.0, 1e-9);
}

TEST(ExactMva, DelayStationHasNoQueueing) {
  ClosedNetwork net = repairman(50, 1.0, 0.01);
  net.stations[0].kind = StationKind::kDelay;
  const MvaResult r = solve_exact_single_class(net);
  EXPECT_NEAR(r.response_time_s[0], 0.01, 1e-12);  // pure delay
}

TEST(ExactMva, MultiServerBetweenQueueAndDelay) {
  // An m-server station must respond no slower than a delay station and no
  // faster than... wait, the other way: queueing >= multi >= delay.
  ClosedNetwork queue_net = repairman(40, 0.5, 0.02);
  ClosedNetwork multi_net = queue_net;
  multi_net.stations[0].kind = StationKind::kMultiServer;
  multi_net.stations[0].servers = 4;
  ClosedNetwork delay_net = queue_net;
  delay_net.stations[0].kind = StationKind::kDelay;
  const double r_queue = solve_exact_single_class(queue_net).response_time_s[0];
  const double r_multi = solve_exact_single_class(multi_net).response_time_s[0];
  const double r_delay = solve_exact_single_class(delay_net).response_time_s[0];
  EXPECT_LE(r_multi, r_queue + 1e-12);
  EXPECT_GE(r_multi, r_delay - 1e-12);
}

TEST(ExactMva, RejectsMultiClassOrFractional) {
  ClosedNetwork net = repairman(2.5, 1.0, 0.1);
  EXPECT_THROW(solve_exact_single_class(net), std::invalid_argument);
  ClosedNetwork two = repairman(2, 1.0, 0.1);
  two.population.push_back(3);
  two.think_time_s.push_back(1.0);
  two.demands.push_back({0.2});
  two.class_names.push_back("other");
  EXPECT_THROW(solve_exact_single_class(two), std::invalid_argument);
}

TEST(BardSchweitzer, MatchesExactWithinTolerance) {
  for (int n : {1, 5, 20, 100, 400}) {
    const ClosedNetwork net = repairman(n, 2.0, 0.05);
    const MvaResult exact = solve_exact_single_class(net);
    const MvaResult approx = solve_bard_schweitzer(net);
    EXPECT_TRUE(approx.converged);
    // Bard-Schweitzer is known-good to a few percent on balanced networks.
    EXPECT_NEAR(approx.throughput_rps[0], exact.throughput_rps[0],
                0.03 * exact.throughput_rps[0])
        << "N=" << n;
    EXPECT_NEAR(approx.response_time_s[0], exact.response_time_s[0],
                0.10 * exact.response_time_s[0] + 1e-6)
        << "N=" << n;
  }
}

TEST(BardSchweitzer, FractionalPopulationInterpolates) {
  const double r2 = solve_bard_schweitzer(repairman(2.0, 1.0, 0.1)).response_time_s[0];
  const double r25 = solve_bard_schweitzer(repairman(2.5, 1.0, 0.1)).response_time_s[0];
  const double r3 = solve_bard_schweitzer(repairman(3.0, 1.0, 0.1)).response_time_s[0];
  EXPECT_GT(r25, r2);
  EXPECT_LT(r25, r3);
}

TEST(BardSchweitzer, MultiClassLittlesLawHolds) {
  ClosedNetwork net;
  net.stations = {{"cpu", StationKind::kQueueing, 1},
                  {"db", StationKind::kQueueing, 1}};
  net.class_names = {"browse", "buy"};
  net.population = {100.0, 20.0};
  net.think_time_s = {7.0, 7.0};
  net.demands = {{0.0054, 0.0009}, {0.0105, 0.0032}};
  const MvaResult r = solve_bard_schweitzer(net);
  EXPECT_TRUE(r.converged);
  for (std::size_t c = 0; c < 2; ++c) {
    const double n = net.population[c];
    EXPECT_NEAR(r.throughput_rps[c] * (net.think_time_s[c] + r.response_time_s[c]),
                n, 1e-6 * n);
  }
  // Utilisation additivity: U = sum_c X_c * D_c.
  EXPECT_NEAR(r.station_utilization[0],
              r.throughput_rps[0] * 0.0054 + r.throughput_rps[1] * 0.0105,
              1e-12);
}

TEST(BardSchweitzer, UtilizationNeverExceedsOne) {
  for (double n : {50.0, 500.0, 5000.0}) {
    const MvaResult r = solve_bard_schweitzer(repairman(n, 1.0, 0.01));
    EXPECT_LE(r.station_utilization[0], 1.0 + 1e-9) << n;
  }
}

TEST(BardSchweitzer, CoarseToleranceStopsEarlier) {
  const ClosedNetwork net = repairman(2000, 7.0, 0.0054);
  MvaOptions fine;
  fine.rt_tolerance_s = 1e-9;
  MvaOptions coarse;
  coarse.rt_tolerance_s = 0.020;  // the paper's LQNS criterion
  const MvaResult rf = solve_bard_schweitzer(net, fine);
  const MvaResult rc = solve_bard_schweitzer(net, coarse);
  EXPECT_LT(rc.iterations, rf.iterations);
  EXPECT_TRUE(rc.converged);
  // The coarse answer differs from the fine one by up to ~the criterion.
  EXPECT_NEAR(rc.response_time_s[0], rf.response_time_s[0], 0.15);
}

TEST(ClosedNetwork, CheckRejectsMalformedShapes) {
  ClosedNetwork net = repairman(2, 1.0, 0.1);
  net.demands[0].push_back(0.5);  // extra column
  EXPECT_THROW(net.check(), std::invalid_argument);
  ClosedNetwork neg = repairman(2, 1.0, 0.1);
  neg.demands[0][0] = -0.1;
  EXPECT_THROW(neg.check(), std::invalid_argument);
  ClosedNetwork badpop = repairman(0, 1.0, 0.1);
  EXPECT_THROW(badpop.check(), std::invalid_argument);
}

TEST(SolveMva, DispatchesExactWhenEligible) {
  const ClosedNetwork net = repairman(10, 1.0, 0.05);
  const MvaResult exact = solve_exact_single_class(net);
  const MvaResult dispatched = solve_mva(net, {}, 100);
  EXPECT_DOUBLE_EQ(dispatched.response_time_s[0], exact.response_time_s[0]);
  const MvaResult approx = solve_mva(net, {}, 0);  // exact disabled
  EXPECT_NE(approx.iterations, exact.iterations);
}

}  // namespace
}  // namespace epp::lqn
