// Network chaos policy: deterministic replay, verdict banding, delay
// capping and injection accounting. The policy is decision-only, so the
// whole contract is testable without a socket; the server-side effects
// (RSTs on the wire, truncated frames) are exercised by the serving
// suite and the CI chaos smoke job.
#include "net/chaos.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

namespace epp::net {
namespace {

ChaosConfig storm_config() {
  ChaosConfig config;
  config.accept_reset_p = 0.2;
  config.accept_delay_s = 0.003;
  config.reset_p = 0.15;
  config.truncate_p = 0.10;
  config.dribble_s = 0.002;
  return config;
}

TEST(ChaosPolicy, DisabledConfigNeverFires) {
  const ChaosPolicy policy{ChaosConfig{}};
  EXPECT_FALSE(policy.config().any());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(policy.reset_on_accept());
    EXPECT_EQ(policy.accept_delay_s(), 0.0);
    EXPECT_EQ(policy.next_write_fault(), WriteFault::kNone);
    EXPECT_FALSE(policy.dribble_writes());
    EXPECT_EQ(policy.dribble_pause_s(), 0.0);
  }
  const ChaosStats stats = policy.stats();
  EXPECT_EQ(stats.accept_resets, 0u);
  EXPECT_EQ(stats.write_resets, 0u);
  EXPECT_EQ(stats.write_truncates, 0u);
}

TEST(ChaosPolicy, SameSeedReplaysTheExactFaultStorm) {
  // The whole point of deterministic chaos: two policies with the same
  // (config, seed) produce identical verdicts in identical order, a
  // different seed a different storm.
  const ChaosPolicy a{storm_config(), 7}, b{storm_config(), 7};
  const ChaosPolicy other{storm_config(), 8};
  bool diverged = false;
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.reset_on_accept(), b.reset_on_accept()) << i;
    EXPECT_EQ(a.accept_delay_s(), b.accept_delay_s()) << i;
    const WriteFault fault = a.next_write_fault();
    EXPECT_EQ(fault, b.next_write_fault()) << i;
    EXPECT_EQ(a.dribble_pause_s(), b.dribble_pause_s()) << i;
    if (fault != other.next_write_fault()) diverged = true;
  }
  EXPECT_TRUE(diverged) << "different seeds produced the same storm";
  EXPECT_EQ(a.stats().write_resets, b.stats().write_resets);
  EXPECT_EQ(a.stats().write_truncates, b.stats().write_truncates);
}

TEST(ChaosPolicy, CertainRatesAlwaysFire) {
  ChaosConfig all_reset;
  all_reset.reset_p = 1.0;
  const ChaosPolicy resets{all_reset};
  ChaosConfig all_truncate;
  all_truncate.truncate_p = 1.0;
  const ChaosPolicy truncates{all_truncate};
  ChaosConfig all_refuse;
  all_refuse.accept_reset_p = 1.0;
  const ChaosPolicy refusals{all_refuse};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(resets.next_write_fault(), WriteFault::kReset);
    EXPECT_EQ(truncates.next_write_fault(), WriteFault::kTruncate);
    EXPECT_TRUE(refusals.reset_on_accept());
  }
  EXPECT_EQ(resets.stats().write_resets, 50u);
  EXPECT_EQ(truncates.stats().write_truncates, 50u);
  EXPECT_EQ(refusals.stats().accept_resets, 50u);
}

TEST(ChaosPolicy, WriteVerdictRatesMatchTheConfiguredBands) {
  // One uniform draw decides reset vs truncate vs clean; over many draws
  // the empirical rates must sit near the configured bands (the draws
  // are a fixed pseudorandom sequence, so this is deterministic, not
  // flaky — the tolerance absorbs the sequence's finite-sample noise).
  ChaosConfig config;
  config.reset_p = 0.30;
  config.truncate_p = 0.20;
  const ChaosPolicy policy{config};
  constexpr int kDraws = 20'000;
  int resets = 0, truncates = 0;
  for (int i = 0; i < kDraws; ++i) {
    switch (policy.next_write_fault()) {
      case WriteFault::kReset: ++resets; break;
      case WriteFault::kTruncate: ++truncates; break;
      case WriteFault::kNone: break;
    }
  }
  EXPECT_NEAR(static_cast<double>(resets) / kDraws, 0.30, 0.02);
  EXPECT_NEAR(static_cast<double>(truncates) / kDraws, 0.20, 0.02);
  EXPECT_EQ(policy.stats().write_resets, static_cast<std::uint64_t>(resets));
  EXPECT_EQ(policy.stats().write_truncates,
            static_cast<std::uint64_t>(truncates));
}

TEST(ChaosPolicy, DelaysAreExponentialWithHardCaps) {
  ChaosConfig config;
  config.accept_delay_s = 0.010;
  config.dribble_s = 1.0;  // absurd mean: the cap must bite
  const ChaosPolicy policy{config};
  double total = 0.0;
  for (int i = 0; i < 5'000; ++i) {
    const double delay = policy.accept_delay_s();
    EXPECT_GE(delay, 0.0);
    EXPECT_LE(delay, 10.0 * config.accept_delay_s) << "10x-mean cap broken";
    total += delay;
    // Slow-loris pauses are capped at 50 ms per chunk regardless of the
    // configured mean, so one chaotic write stays bounded.
    EXPECT_LE(policy.dribble_pause_s(), 0.050);
  }
  // Mean of the capped exponential is a bit under the configured mean.
  EXPECT_NEAR(total / 5'000, config.accept_delay_s,
              0.3 * config.accept_delay_s);
  EXPECT_TRUE(policy.dribble_writes());
}

TEST(ChaosPolicy, DribbledWritesAreCountedByTheCaller) {
  const ChaosPolicy policy{storm_config()};
  for (int i = 0; i < 3; ++i) policy.count_dribbled_write();
  EXPECT_EQ(policy.stats().dribbled_writes, 3u);
}

}  // namespace
}  // namespace epp::net
