// Corpus: EPP-CONC-001 (rank inversion). Also the runtime cross-check
// fixture: tests/util_lock_rank_test.cpp #includes this file and calls
// lock_inverted() under a recording handler — the static analyzer and
// the runtime tracker must agree on this defect.
//
// lock_in_order() and lock_inverted() together also form a lock-order
// cycle (low -> high and high -> low); the analyzer reports the rank
// inversion and elides the redundant cycle report.
#include "util/annotations.hpp"
#include "util/lock_rank.hpp"

namespace lint_corpus {

inline epp::util::RankedMutex corpus_low{EPP_LOCK_RANK(10), "corpus.low"};
inline epp::util::RankedMutex corpus_high{EPP_LOCK_RANK(20), "corpus.high"};

inline void lock_in_order() {
  const epp::util::MutexLock low(corpus_low);
  const epp::util::MutexLock high(corpus_high);
}

inline void lock_inverted() {
  const epp::util::MutexLock high(corpus_high);
  const epp::util::MutexLock low(corpus_low);  // rank 10 under rank 20
}

}  // namespace lint_corpus
