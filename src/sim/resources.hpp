// Queueing resources that make up a simulated server.
//
// The paper's system model (section 2) describes each server tier as "a
// single FIFO waiting queue ... both servers can process multiple requests
// concurrently via time-sharing". That decomposes into three primitives:
//
//   * SlotPool      — the admission cap (50 concurrent requests for the app
//                     server, 20 for the DB server) with one FIFO waiting
//                     queue per upstream source (the DB server has one queue
//                     per application server);
//   * PsResource    — a time-shared CPU: egalitarian processor sharing,
//                     simulated exactly with the virtual-time technique;
//   * FifoResource  — a serial device (the DB disk is "a processor that can
//                     only process one request at a time").
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace epp::sim {

/// Egalitarian processor sharing at a fixed total speed. A job with demand
/// d (seconds of work at speed 1) completes after attaining d/speed seconds
/// of virtual service. With n active jobs each progresses at speed/n.
class PsResource {
 public:
  PsResource(Engine& engine, double speed, std::string name = "ps");

  /// Begin serving a job; on_complete fires when its demand is exhausted.
  void add_job(double demand, Engine::Callback on_complete);

  std::size_t active_jobs() const noexcept { return jobs_.size(); }
  const std::string& name() const noexcept { return name_; }
  double speed() const noexcept { return speed_; }

  /// Fraction of [0, now] during which the CPU had work (integrated).
  double utilization(double now) const;

 private:
  struct Job {
    double finish_vtime;
    std::uint64_t seq;
    Engine::Callback on_complete;
    bool operator<(const Job& other) const noexcept {
      if (finish_vtime != other.finish_vtime)
        return finish_vtime < other.finish_vtime;
      return seq < other.seq;
    }
  };

  void advance_vtime();
  void schedule_next_completion();
  static void on_completion(void* self, std::uint64_t);

  Engine& engine_;
  double speed_;
  std::string name_;
  // Jobs keyed by the virtual time at which they finish. std::multimap keeps
  // them ordered; the front is always the next completion.
  std::multimap<double, Job> jobs_;
  double vtime_ = 0.0;
  double last_update_ = 0.0;
  double busy_time_ = 0.0;
  std::uint64_t next_seq_ = 0;
  Engine::Handle pending_completion_;
};

/// Single-server FIFO queue (used for the DB disk).
class FifoResource {
 public:
  FifoResource(Engine& engine, double speed, std::string name = "fifo");

  void add_job(double demand, Engine::Callback on_complete);

  std::size_t queue_length() const noexcept { return queue_.size(); }
  bool busy() const noexcept { return busy_; }
  double utilization(double now) const;

 private:
  struct Job {
    double demand;
    Engine::Callback on_complete;
  };

  void start_next();
  static void on_job_done(void* self, std::uint64_t);

  Engine& engine_;
  double speed_;
  std::string name_;
  std::deque<Job> queue_;
  Engine::Callback current_done_;  // completion of the job in service
  bool busy_ = false;
  double busy_time_ = 0.0;
  double busy_since_ = 0.0;
};

/// Admission limiter with per-source FIFO waiting queues. Models the
/// server's concurrency cap: a request must hold a slot for its entire stay
/// (including time blocked on downstream calls). When a slot frees, waiting
/// requests are admitted FIFO, round-robin across non-empty source queues —
/// this realises "one FIFO queue per application server" at the DB tier.
class SlotPool {
 public:
  SlotPool(std::size_t capacity, std::size_t num_queues = 1);

  /// Request a slot on behalf of source queue `queue`; on_acquired runs
  /// immediately if a slot is free, otherwise when one is released.
  void acquire(std::size_t queue, Engine::Callback on_acquired);

  /// Release a held slot, admitting the next waiter if any.
  void release();

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t in_use() const noexcept { return in_use_; }
  std::size_t waiting() const noexcept;

 private:
  std::size_t capacity_;
  std::size_t in_use_ = 0;
  std::vector<std::deque<Engine::Callback>> queues_;
  std::size_t rr_next_ = 0;
};

}  // namespace epp::sim
