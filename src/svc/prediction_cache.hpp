// Sharded, bounded, thread-safe memoization cache for prediction results.
//
// The paper's headline use case — SLA-driven resource management across
// candidate servers — evaluates thousands of (method, server, workload)
// predictions per decision, and the extended study looks explicitly at
// caching those predictions: once calibrated, all three methods are pure
// functions of that triple, so repeated sweeps re-derive identical
// answers. Keys carry a *quantized* workload (client counts and think
// time snapped to a grid by the batch engine; see DESIGN.md for the
// policy) so near-identical queries share one entry.
//
// Each shard is an independent mutex + hash map + LRU list with a bounded
// capacity, so concurrent sweeps on the thread pool contend only when
// they collide on a shard, and hit/miss/eviction counters are kept per
// shard and aggregated on demand.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/annotations.hpp"
#include "util/lock_rank.hpp"

namespace epp::svc {

/// The three prediction methods the paper compares (src/core predictors).
enum class Method { kHistorical, kLqn, kHybrid };

std::string_view method_name(Method method);
/// Parse "historical" / "lqn" / "hybrid"; throws std::invalid_argument.
Method method_from_name(std::string_view name);

/// Cache key: method, server and the quantized workload (client counts
/// and think time in grid units; the quanta live in the batch engine).
struct CacheKey {
  Method method = Method::kHistorical;
  std::string server;
  std::int64_t browse_q = 0;
  std::int64_t buy_q = 0;
  std::int64_t think_q = 0;

  bool operator==(const CacheKey&) const = default;
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& key) const noexcept;
};

/// The memoized value: everything the batch engine computes for a
/// request, so one hit answers the whole request.
struct CachedPrediction {
  double mean_rt_s = 0.0;
  double throughput_rps = 0.0;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;

  double hit_ratio() const noexcept {
    const std::uint64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                     : 0.0;
  }
};

class PredictionCache {
 public:
  /// capacity_per_shard bounds each shard's LRU list (0 disables caching
  /// entirely); shards is rounded up to a power of two, minimum 1.
  explicit PredictionCache(std::size_t capacity_per_shard = 4096,
                           std::size_t shards = 16);

  /// Find and touch (move to LRU front). Counts a hit or a miss.
  std::optional<CachedPrediction> lookup(const CacheKey& key);
  /// Insert or refresh; evicts the shard's least-recently-used entry when
  /// the shard is at capacity.
  void insert(const CacheKey& key, const CachedPrediction& value);

  /// Counters and entry count aggregated across shards.
  CacheStats stats() const;
  /// Drop all entries and reset the counters.
  void clear();

  std::size_t shard_count() const noexcept { return shards_.size(); }
  std::size_t capacity() const noexcept {
    return capacity_per_shard_ * shards_.size();
  }

 private:
  using LruList = std::list<std::pair<CacheKey, CachedPrediction>>;
  struct Shard {
    mutable util::RankedMutex mutex{EPP_LOCK_RANK(70), "svc.cache.shard"};
    LruList lru_ EPP_GUARDED_BY(mutex);  // front = most recently used
    std::unordered_map<CacheKey, LruList::iterator, CacheKeyHash> index_
        EPP_GUARDED_BY(mutex);
    std::uint64_t hits_ EPP_GUARDED_BY(mutex) = 0;
    std::uint64_t misses_ EPP_GUARDED_BY(mutex) = 0;
    std::uint64_t evictions_ EPP_GUARDED_BY(mutex) = 0;
  };

  Shard& shard_for(const CacheKey& key);

  std::size_t capacity_per_shard_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace epp::svc
