// Online drift detection between served predictions and measured RTs.
//
// A calibration bundle is a snapshot: the HYDRA/LQN relationships were
// fit to one workload, and production workloads move. The serving tier
// closes the loop the black-box-monitoring line of work describes —
// observe live telemetry, detect divergence from the model, trigger a
// refit — with a streaming detector that costs O(1) per observation and
// never stores samples.
//
// Statistic: two-sided Page–Hinkley over the *relative* prediction error
//   e_t = (observed_rt - predicted_rt) / predicted_rt
// so a 100 ms model error on a 2 s page and on a 50 ms page are judged
// proportionally. PH maintains the cumulative deviation of e_t from its
// own running mean minus a slack delta; the test statistic is the gap
// between that sum and its running extremum, and an alarm fires when the
// gap exceeds lambda. Both directions are armed: the model drifting
// optimistic (observed slower, positive errors) and pessimistic
// (observed faster) both mean the bundle no longer describes reality.
//
// The alarm *latches*: once kDrifting, the state holds until reset() —
// a drifting bundle does not heal by accident, it gets replaced (the
// server resets the detector when the registry swaps versions).
#pragma once

#include <cstddef>
#include <cstdint>
#include "util/annotations.hpp"
#include "util/lock_rank.hpp"

namespace epp::serve {

/// Server health as carried in the response `health` byte.
enum class HealthState : std::uint8_t {
  kWarming = 0,   // fewer than min_samples observations since reset
  kHealthy = 1,   // observations tracking the active bundle
  kDrifting = 2,  // Page–Hinkley alarm latched; bundle needs a refit
};

const char* health_state_name(HealthState state) noexcept;

struct DriftOptions {
  /// Slack per observation: mean relative-error shifts below this are
  /// treated as noise, not drift.
  double delta = 0.05;
  /// Alarm threshold on the PH gap statistic. With constant relative
  /// error e after warmup, the alarm trips after roughly
  /// lambda / (|e| - delta) further observations.
  double lambda = 2.0;
  /// Observations before the detector may alarm (warmup).
  std::size_t min_samples = 16;
};

struct DriftSnapshot {
  std::uint64_t observations = 0;
  double mean_error = 0.0;   // running mean of relative error
  double gap_up = 0.0;       // PH gap, optimistic-model direction
  double gap_down = 0.0;     // PH gap, pessimistic-model direction
  HealthState state = HealthState::kWarming;
  std::uint64_t trips = 0;   // alarms latched since construction
};

class DriftDetector {
 public:
  explicit DriftDetector(DriftOptions options = {}) noexcept
      : options_(options) {}

  /// Feed one (predicted, observed) RT pair. Non-positive or non-finite
  /// inputs are ignored (a failed prediction carries no drift signal).
  /// Thread-safe.
  void observe(double predicted_rt_s, double observed_rt_s);

  HealthState state() const;
  DriftSnapshot snapshot() const;

  /// Forget everything (new bundle version: its errors start clean).
  /// The trip counter survives — it counts alarms over the server's
  /// lifetime, not the bundle's.
  void reset();

  const DriftOptions& options() const noexcept { return options_; }

 private:
  DriftOptions options_;
  mutable util::RankedMutex mutex_{EPP_LOCK_RANK(50), "serve.drift"};
  std::uint64_t observations_ = 0;
  double mean_ = 0.0;      // running mean of e_t
  double sum_up_ = 0.0;    // cumulative (e_t - mean_t - delta)
  double min_up_ = 0.0;    // running minimum of sum_up_
  double sum_down_ = 0.0;  // cumulative (e_t - mean_t + delta)
  double max_down_ = 0.0;  // running maximum of sum_down_
  bool drifting_ = false;
  std::uint64_t trips_ = 0;
};

}  // namespace epp::serve
