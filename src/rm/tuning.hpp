// Slack tuning of the resource manager (paper §9.1, figures 5-8): sweep
// the load and the slack level, collect % SLA failures and % server usage,
// and derive the average-cost trade-off curves.
#pragma once

#include <vector>

#include "core/predictor.hpp"
#include "rm/manager.hpp"
#include "rm/runtime.hpp"
#include "rm/types.hpp"
#include "util/thread_pool.hpp"

namespace epp::rm {

struct TuningConfig {
  const core::Predictor* planner = nullptr;  // the (less accurate) model
  const core::Predictor* truth = nullptr;    // "real" behaviour stand-in
  std::vector<PoolServer> pool;
  std::vector<double> loads;  // total client counts to sweep
  double think_time_s = 7.0;
  RuntimeOptions runtime;
};

struct LoadPoint {
  double total_clients = 0.0;
  double sla_failure_pct = 0.0;
  double server_usage_pct = 0.0;
};

/// Figures 5 & 6: the load sweep at one slack level (parallel over loads
/// when a pool is supplied).
std::vector<LoadPoint> sweep_loads(const TuningConfig& config, double slack,
                                   util::ThreadPool* pool = nullptr);

struct SlackPoint {
  double slack = 0.0;
  /// Averages across all loads prior to 100% server usage (the paper's
  /// "average % SLA failure" and "% server usage" metrics).
  double avg_sla_failure_pct = 0.0;
  double avg_server_usage_pct = 0.0;
  /// SUmax - avg usage, once SUmax is known (filled by sweep_slack).
  double avg_usage_saving_pct = 0.0;
};

/// Figures 7 & 8: sweep slack levels; avg_usage_saving_pct is relative to
/// su_max_pct (pass the usage at the minimum zero-failure slack).
std::vector<SlackPoint> sweep_slack(const TuningConfig& config,
                                    const std::vector<double>& slacks,
                                    double su_max_pct,
                                    util::ThreadPool* pool = nullptr);

/// Find the minimum slack (within the candidates, ascending) giving 0% SLA
/// failures at every load before 100% server usage, and report its average
/// usage (SUmax). Returns {slack, avg usage} of the first qualifying
/// candidate; throws if none qualifies.
struct ZeroFailurePoint {
  double slack = 0.0;
  double su_max_pct = 0.0;
};
ZeroFailurePoint find_min_zero_failure_slack(
    const TuningConfig& config, const std::vector<double>& candidates,
    util::ThreadPool* pool = nullptr);

}  // namespace epp::rm
