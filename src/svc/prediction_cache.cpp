#include "svc/prediction_cache.hpp"

#include <functional>
#include <stdexcept>

namespace epp::svc {
namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

std::string_view method_name(Method method) {
  switch (method) {
    case Method::kHistorical:
      return "historical";
    case Method::kLqn:
      return "lqn";
    case Method::kHybrid:
      return "hybrid";
  }
  throw std::invalid_argument("method_name: unknown method");
}

Method method_from_name(std::string_view name) {
  if (name == "historical") return Method::kHistorical;
  if (name == "lqn" || name == "layered-queuing") return Method::kLqn;
  if (name == "hybrid") return Method::kHybrid;
  throw std::invalid_argument("method_from_name: unknown method '" +
                              std::string(name) + "'");
}

std::size_t CacheKeyHash::operator()(const CacheKey& key) const noexcept {
  std::size_t h = std::hash<std::string>{}(key.server);
  const auto mix = [&h](std::uint64_t v) {
    h ^= static_cast<std::size_t>(v) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
  };
  mix(static_cast<std::uint64_t>(key.method));
  mix(static_cast<std::uint64_t>(key.browse_q));
  mix(static_cast<std::uint64_t>(key.buy_q));
  mix(static_cast<std::uint64_t>(key.think_q));
  return h;
}

PredictionCache::PredictionCache(std::size_t capacity_per_shard,
                                 std::size_t shards)
    : capacity_per_shard_(capacity_per_shard) {
  const std::size_t count = round_up_pow2(shards == 0 ? 1 : shards);
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

PredictionCache::Shard& PredictionCache::shard_for(const CacheKey& key) {
  // High bits pick the shard so it decorrelates from the hash map's
  // low-bit bucket selection; shard count is a power of two.
  const std::size_t h = CacheKeyHash{}(key);
  return *shards_[(h >> 16) & (shards_.size() - 1)];
}

std::optional<CachedPrediction> PredictionCache::lookup(const CacheKey& key) {
  Shard& shard = shard_for(key);
  const util::MutexLock lock(shard.mutex);
  const auto it = shard.index_.find(key);
  if (it == shard.index_.end()) {
    ++shard.misses_;
    return std::nullopt;
  }
  ++shard.hits_;
  shard.lru_.splice(shard.lru_.begin(), shard.lru_, it->second);
  return it->second->second;
}

void PredictionCache::insert(const CacheKey& key,
                             const CachedPrediction& value) {
  if (capacity_per_shard_ == 0) return;
  Shard& shard = shard_for(key);
  const util::MutexLock lock(shard.mutex);
  const auto it = shard.index_.find(key);
  if (it != shard.index_.end()) {
    it->second->second = value;
    shard.lru_.splice(shard.lru_.begin(), shard.lru_, it->second);
    return;
  }
  if (shard.lru_.size() >= capacity_per_shard_) {
    shard.index_.erase(shard.lru_.back().first);
    shard.lru_.pop_back();
    ++shard.evictions_;
  }
  shard.lru_.emplace_front(key, value);
  shard.index_.emplace(key, shard.lru_.begin());
}

CacheStats PredictionCache::stats() const {
  CacheStats total;
  for (const auto& shard : shards_) {
    const util::MutexLock lock(shard->mutex);
    total.hits += shard->hits_;
    total.misses += shard->misses_;
    total.evictions += shard->evictions_;
    total.entries += shard->lru_.size();
  }
  return total;
}

void PredictionCache::clear() {
  for (const auto& shard : shards_) {
    const util::MutexLock lock(shard->mutex);
    shard->lru_.clear();
    shard->index_.clear();
    shard->hits_ = shard->misses_ = shard->evictions_ = 0;
  }
}

}  // namespace epp::svc
