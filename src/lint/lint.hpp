// The epp_lint rule library: static analysis for every artifact the
// pipeline reads or writes — LQN model files, `.epp` calibration
// bundles, workload grids and fault specs.
//
// Each rule has a stable ID (severity in parentheses = default):
//
//   EPP-LQN-001 (error)   model text does not parse
//   EPP-LQN-002 (error)   no reference (client) task drives the model
//   EPP-LQN-003 (error)   cycle in the synchronous call graph
//   EPP-LQN-004 (warning) task unreachable from every reference task
//   EPP-LQN-005 (error)   non-finite or negative demand / mean call count
//   EPP-LQN-006 (note)    zero-demand leaf entry (no demand, no calls)
//   EPP-LQN-007 (note)    reference population saturates a served pool
//   EPP-LQN-008 (warning) reference task declares a multiplicity
//   EPP-LQN-009 (warning) branch-style call probabilities sum past 1
//   EPP-LQN-010 (error)   bad reference workload (population/rate/think)
//   EPP-LQN-011 (error)   malformed task shape (no entries; ref != 1)
//   EPP-LQN-012 (error)   illegal call target (own task / reference task)
//
//   EPP-BND-001 (error)   missing or bad `epp-bundle v1` header
//   EPP-BND-002 (error)   malformed record
//   EPP-BND-003 (error)   duplicate record or section
//   EPP-BND-004 (error)   required record missing
//   EPP-BND-005 (error)   truncated or unparsable embedded hydra model
//   EPP-BND-006 (error)   gradient record disagrees with embedded model
//   EPP-BND-010 (error)   non-finite / non-positive relationship-1 params
//   EPP-BND-011 (warning) relationship-2 trend violated: c_lower or
//                         lambda_upper not decreasing in max throughput
//   EPP-BND-012 (warning) gradient m implausible against the paper's
//                         7 s think time (m*think outside [0.1, 10])
//   EPP-BND-013 (error)   fewer than two established servers (the
//                         cross-server fit is under-determined)
//   EPP-BND-014 (warning) catalog max throughput disagrees with the
//                         embedded mean model's fit for that server
//   EPP-BND-015 (warning) seeds record absent (provenance lost)
//
//   EPP-WKL-001..004      workload grids — see core/trade_model.hpp;
//                         as a file, one `workload BROWSE BUY [THINK]`
//                         record per line under an `epp-workloads v1`
//                         header (*.wkl)
//   EPP-FLT-001..004      fault specs — see svc/fault.hpp; as a file,
//                         one spec string per line under an `epp-faults
//                         v1` header (*.fspec)
//   EPP-IO-001  (error)   artifact file unreadable
//
//   EPP-SEM-001..021      semantic verifier rules (interval-proven curve
//                         sanity, LQN convergence, fallback-chain
//                         coverage) — see lint/verify.hpp
//
// The WKL and FLT rules live next to their parsers (core and svc); this
// library adds the model/bundle rules and the file-level dispatcher the
// epp_lint tool and the pre-run hooks in epp_sweep/epp_calibrate use.
#pragma once

#include <map>
#include <string>

#include "lint/diagnostic.hpp"
#include "lqn/model.hpp"

namespace epp::lint {

/// Index from model-text declarations to line numbers, so semantic rules
/// (which run on the parsed model) can still point at source lines.
struct LqnSourceIndex {
  std::map<std::string, int> task_lines;
  std::map<std::string, int> entry_lines;
};

/// Build the declaration-line index from model text (shared by the lint
/// and verify passes so both locate findings identically).
LqnSourceIndex index_lqn_source(const std::string& text);

/// Semantic rules (EPP-LQN-002..012) on an already-parsed model. `file`
/// names the findings' artifact; `index` (optional) lets them carry the
/// declaring line.
void lint_lqn_model(const lqn::Model& model, const std::string& file,
                    Diagnostics& diagnostics,
                    const LqnSourceIndex* index = nullptr);

/// Parse + semantic rules on LQN model text (EPP-LQN-001 on parse
/// failure, then everything lint_lqn_model reports).
void lint_lqn_text(const std::string& text, const std::string& file,
                   Diagnostics& diagnostics);

/// Structural (EPP-BND-001..006, via calib::parse_bundle_text) plus
/// semantic (EPP-BND-010..015) rules on `.epp` bundle text. Semantic
/// rules only run when the structure is clean enough to trust.
void lint_bundle_text(const std::string& text, const std::string& file,
                      Diagnostics& diagnostics);

/// Workload-grid text (*.wkl): an optional `epp-workloads v1` header,
/// then `workload BROWSE BUY [THINK]` records. Fields are parsed
/// leniently (a malformed number becomes NaN) so the EPP-WKL rules fire
/// per record instead of the file dying on the first bad token.
void lint_workload_grid_text(const std::string& text, const std::string& file,
                             Diagnostics& diagnostics);

/// Fault-spec text (*.fspec): an optional `epp-faults v1` header, then
/// one fault-spec string per line, each run through svc::lint_fault_spec
/// (the EPP-FLT rules) at its line number.
void lint_fault_spec_text(const std::string& text, const std::string& file,
                          Diagnostics& diagnostics);

/// What a file claims to be, decided by extension then content.
enum class ArtifactKind {
  kBundle,
  kLqnModel,
  kWorkloadGrid,
  kFaultSpec,
  kUnknown
};
ArtifactKind sniff_artifact(const std::string& path, const std::string& text);

/// Lint one artifact file: read it (EPP-IO-001 when unreadable), sniff
/// its kind and dispatch to the matching rules. Unknown kinds get an
/// EPP-IO-001 error rather than a silent pass.
void lint_artifact_file(const std::string& path, Diagnostics& diagnostics);

}  // namespace epp::lint
