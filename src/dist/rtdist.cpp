#include "dist/rtdist.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace epp::dist {

ResponseTimeDistribution ResponseTimeDistribution::exponential(double mean_s) {
  if (mean_s <= 0.0)
    throw std::invalid_argument("ResponseTimeDistribution: mean must be > 0");
  return {Regime::kPreSaturation, 0.0, mean_s};
}

ResponseTimeDistribution ResponseTimeDistribution::double_exponential(
    double location_s, double scale_s) {
  if (scale_s <= 0.0)
    throw std::invalid_argument("ResponseTimeDistribution: scale must be > 0");
  return {Regime::kPostSaturation, location_s, scale_s};
}

double ResponseTimeDistribution::cdf(double x) const {
  if (regime_ == Regime::kPreSaturation) {
    if (x <= 0.0) return 0.0;
    return 1.0 - std::exp(-x / scale_);
  }
  if (x < location_) return 0.5 * std::exp((x - location_) / scale_);
  return 1.0 - 0.5 * std::exp(-(x - location_) / scale_);
}

double ResponseTimeDistribution::quantile(double p) const {
  if (p <= 0.0 || p >= 1.0)
    throw std::invalid_argument("ResponseTimeDistribution: p outside (0,1)");
  if (regime_ == Regime::kPreSaturation) return -scale_ * std::log(1.0 - p);
  if (p < 0.5) return location_ + scale_ * std::log(2.0 * p);
  return location_ - scale_ * std::log(2.0 * (1.0 - p));
}

double ResponseTimeDistribution::mean() const noexcept {
  return regime_ == Regime::kPreSaturation ? scale_ : location_;
}

ResponseTimeDistribution for_mean_prediction(double mean_rt_s,
                                             bool post_saturation,
                                             double scale_b_s) {
  if (post_saturation)
    return ResponseTimeDistribution::double_exponential(mean_rt_s, scale_b_s);
  return ResponseTimeDistribution::exponential(mean_rt_s);
}

double predict_percentile(double mean_rt_s, double p, bool post_saturation,
                          double scale_b_s) {
  return for_mean_prediction(mean_rt_s, post_saturation, scale_b_s).quantile(p);
}

double calibrate_scale_b(std::span<const double> samples_s,
                         double location_s) {
  if (samples_s.empty())
    throw std::invalid_argument("calibrate_scale_b: no samples");
  double abs_dev = 0.0;
  for (double s : samples_s) abs_dev += std::abs(s - location_s);
  const double b = abs_dev / static_cast<double>(samples_s.size());
  if (b <= 0.0)
    throw std::invalid_argument("calibrate_scale_b: degenerate samples");
  return b;
}

namespace {

double sample_stat(std::span<const double> samples, double q, double& mean) {
  if (samples.empty())
    throw std::invalid_argument("PercentileExtrapolator: empty samples");
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  double sum = 0.0;
  for (double s : sorted) sum += s;
  mean = sum / static_cast<double>(sorted.size());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

PercentileExtrapolator PercentileExtrapolator::calibrate(
    double p, std::span<const double> pre_samples_s,
    std::span<const double> post_samples_s) {
  if (p <= 0.0 || p >= 1.0)
    throw std::invalid_argument("PercentileExtrapolator: p outside (0,1)");
  double pre_mean = 0.0, post_mean = 0.0;
  const double pre_q = sample_stat(pre_samples_s, p, pre_mean);
  const double post_q = sample_stat(post_samples_s, p, post_mean);
  if (pre_mean <= 0.0)
    throw std::invalid_argument("PercentileExtrapolator: degenerate samples");
  return {p, pre_q / pre_mean, post_q - post_mean};
}

double PercentileExtrapolator::predict(double mean_rt_s,
                                       bool post_saturation) const {
  return post_saturation ? mean_rt_s + post_offset_s_ : mean_rt_s * pre_ratio_;
}

}  // namespace epp::dist
