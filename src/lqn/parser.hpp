// Text serialisation of LQN models.
//
// A small line-oriented format (one declaration per line, '#' comments)
// playing the role of LQNS's model files, so models can be stored beside
// experiment configurations and round-tripped:
//
//   processor app_cpu ps speed=1.0
//   processor db_disk fifo
//   task clients ref processor=client_box population=500 think=7.0
//   task app processor=app_cpu multiplicity=50
//   entry browse task=app demand=0.004505
//   entry request task=clients
//   call request browse 1.0
#pragma once

#include <iosfwd>
#include <string>

#include "lqn/model.hpp"

namespace epp::lqn {

/// Parse a model from text. Throws std::invalid_argument with a
/// line-numbered message on syntax or reference errors.
Model parse_model(const std::string& text);
Model parse_model(std::istream& input);

/// Serialise a model to the same format parse_model reads.
std::string to_text(const Model& model);

}  // namespace epp::lqn
