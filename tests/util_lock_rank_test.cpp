// The runtime lock-rank tracker (util/lock_rank.hpp) and its
// cross-check against the static analyzer.
//
// The tracker enforces the same strict-ascent discipline epp_srclint
// checks statically: a thread may only acquire a mutex whose rank is
// greater than every rank it already holds. These tests swap in a
// recording violation handler (the default aborts) and drive real
// RankedMutex objects through legal and illegal acquisition orders.
//
// The cross-check at the bottom is the contract the ISSUE calls for:
// the SAME defect file — tests/lint_corpus/src/rank_inversion.cpp —
// is compiled into this binary and executed under the tracker, and fed
// to epp_srclint as text. Both checkers must flag it, naming the same
// two locks.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lint/diagnostic.hpp"
#include "lint/src/srclint.hpp"
#include "util/annotations.hpp"
#include "util/lock_rank.hpp"

#include "lint_corpus/src/rank_inversion.cpp"  // the shared defect fixture

#if defined(__SANITIZE_THREAD__)
#define EPP_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define EPP_TSAN_BUILD 1
#endif
#endif

#ifdef EPP_TSAN_BUILD
// These tests execute inverted acquisitions on purpose — including the
// corpus defect below — and TSan's own deadlock detector (a fourth
// checker over the same discipline) rightly reports them once enough
// edges accumulate in one process. Suppress by file name so a real
// inversion anywhere else in the tree still fails the TSan job.
extern "C" const char* __tsan_default_suppressions();
extern "C" const char* __tsan_default_suppressions() {
  return "deadlock:rank_inversion.cpp\n"
         "deadlock:util_lock_rank_test.cpp\n";
}
#endif

namespace epp {
namespace {

#ifndef EPP_LOCK_RANK_CHECKS

TEST(LockRank, TrackerCompiledOut) {
  GTEST_SKIP() << "EPP_LOCK_RANK_CHECKS is off in this build "
                  "(enable EPP_SANITIZE or a Debug build)";
}

#else  // EPP_LOCK_RANK_CHECKS

struct Violation {
  std::string acquiring;
  int acquiring_rank = 0;
  std::string held;
  int held_rank = 0;
};

std::vector<Violation>& recorded() {
  static std::vector<Violation> violations;
  return violations;
}

void record_violation(const char* acquiring, int acquiring_rank,
                      const char* held, int held_rank) {
  recorded().push_back(
      Violation{acquiring, acquiring_rank, held, held_rank});
}

class LockRank : public ::testing::Test {
 protected:
  void SetUp() override {
    recorded().clear();
    util::lock_rank::set_violation_handler(&record_violation);
  }
  void TearDown() override {
    util::lock_rank::set_violation_handler(nullptr);  // restore abort
  }
};

TEST_F(LockRank, AscendingAcquisitionIsSilent) {
  util::RankedMutex low{EPP_LOCK_RANK(1), "test.low"};
  util::RankedMutex high{EPP_LOCK_RANK(2), "test.high"};
  {
    const util::MutexLock a(low);
    const util::MutexLock b(high);
  }
  EXPECT_TRUE(recorded().empty());
  EXPECT_EQ(util::lock_rank::held_count(), 0);
}

TEST_F(LockRank, DescendingAcquisitionFiresWithBothNames) {
  util::RankedMutex low{EPP_LOCK_RANK(1), "test.low"};
  util::RankedMutex high{EPP_LOCK_RANK(2), "test.high"};
  {
    const util::MutexLock a(high);
    const util::MutexLock b(low);
  }
  ASSERT_EQ(recorded().size(), 1u);
  EXPECT_EQ(recorded()[0].acquiring, "test.low");
  EXPECT_EQ(recorded()[0].acquiring_rank, 1);
  EXPECT_EQ(recorded()[0].held, "test.high");
  EXPECT_EQ(recorded()[0].held_rank, 2);
}

TEST_F(LockRank, EqualRankIsAViolationToo) {
  // Strict ascent: two rank-5 mutexes can be taken in either order by
  // different threads, which is exactly the deadlock the rule exists
  // to prevent.
  util::RankedMutex a{EPP_LOCK_RANK(5), "test.a"};
  util::RankedMutex b{EPP_LOCK_RANK(5), "test.b"};
  {
    const util::MutexLock la(a);
    const util::MutexLock lb(b);
  }
  ASSERT_EQ(recorded().size(), 1u);
  EXPECT_EQ(recorded()[0].acquiring, "test.b");
  EXPECT_EQ(recorded()[0].held, "test.a");
}

TEST_F(LockRank, DoubleLockReportsTheSameMutexOnBothSides) {
  util::RankedMutex m{EPP_LOCK_RANK(3), "test.once"};
  m.lock();
  m.lock();  // would self-deadlock without the recording handler
  m.unlock();
  m.unlock();
  ASSERT_EQ(recorded().size(), 1u);
  EXPECT_EQ(recorded()[0].acquiring, "test.once");
  EXPECT_EQ(recorded()[0].held, "test.once");
}

TEST_F(LockRank, SharedAcquisitionsObeyTheSameOrder) {
  util::RankedSharedMutex low{EPP_LOCK_RANK(1), "test.shared.low"};
  util::RankedSharedMutex high{EPP_LOCK_RANK(2), "test.shared.high"};
  {
    const util::SharedMutexLock a(high);
    const util::SharedMutexLock b(low);
  }
  ASSERT_EQ(recorded().size(), 1u);
  EXPECT_EQ(recorded()[0].acquiring, "test.shared.low");
  EXPECT_EQ(recorded()[0].held, "test.shared.high");
}

TEST_F(LockRank, ReleaseOutOfOrderStillBalances) {
  util::RankedMutex a{EPP_LOCK_RANK(1), "test.a"};
  util::RankedMutex b{EPP_LOCK_RANK(2), "test.b"};
  a.lock();
  b.lock();
  a.unlock();  // released before b: stack must not corrupt
  EXPECT_EQ(util::lock_rank::held_count(), 1);
  b.unlock();
  EXPECT_EQ(util::lock_rank::held_count(), 0);
  EXPECT_TRUE(recorded().empty());
}

TEST_F(LockRank, TryLockParticipatesInTheDiscipline) {
  util::RankedMutex low{EPP_LOCK_RANK(1), "test.low"};
  util::RankedMutex high{EPP_LOCK_RANK(2), "test.high"};
  const util::MutexLock held(high);
  ASSERT_TRUE(low.try_lock());
  low.unlock();
  ASSERT_EQ(recorded().size(), 1u);
  EXPECT_EQ(recorded()[0].acquiring, "test.low");
}

// --- the static/runtime cross-check ---------------------------------------

TEST_F(LockRank, CrossCheckBothCheckersFlagTheSameCorpusDefect) {
  // Runtime side: execute the corpus functions under the tracker.
  lint_corpus::lock_in_order();
  EXPECT_TRUE(recorded().empty())
      << "the in-order path must not trip the tracker";

  lint_corpus::lock_inverted();
  ASSERT_EQ(recorded().size(), 1u);
  EXPECT_EQ(recorded()[0].acquiring, "corpus.low");
  EXPECT_EQ(recorded()[0].acquiring_rank, 10);
  EXPECT_EQ(recorded()[0].held, "corpus.high");
  EXPECT_EQ(recorded()[0].held_rank, 20);

  // Static side: the analyzer reads the same file as text and must
  // name the same two locks at the inverted acquisition.
  lint::Diagnostics diagnostics;
  lint::lint_sources(
      {std::string(EPP_LINT_CORPUS_DIR) + "/src/rank_inversion.cpp"},
      diagnostics);
  ASSERT_EQ(diagnostics.size(), 1u);
  const lint::Diagnostic& finding = diagnostics.all()[0];
  EXPECT_EQ(finding.rule, "EPP-CONC-001");
  EXPECT_EQ(finding.severity, lint::Severity::kError);
  EXPECT_EQ(finding.location.line, 24);
  EXPECT_NE(finding.message.find("corpus.low"), std::string::npos);
  EXPECT_NE(finding.message.find("corpus.high"), std::string::npos);
}

#endif  // EPP_LOCK_RANK_CHECKS

}  // namespace
}  // namespace epp
