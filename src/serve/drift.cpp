#include "serve/drift.hpp"

#include <algorithm>
#include <cmath>

namespace epp::serve {

const char* health_state_name(HealthState state) noexcept {
  switch (state) {
    case HealthState::kWarming:
      return "warming";
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kDrifting:
      return "drifting";
  }
  return "unknown";
}

void DriftDetector::observe(double predicted_rt_s, double observed_rt_s) {
  if (!(predicted_rt_s > 0.0) || !(observed_rt_s > 0.0)) return;
  const double error = (observed_rt_s - predicted_rt_s) / predicted_rt_s;
  if (!std::isfinite(error)) return;

  const std::lock_guard lock(mutex_);
  ++observations_;
  mean_ += (error - mean_) / static_cast<double>(observations_);
  sum_up_ += error - mean_ - options_.delta;
  min_up_ = std::min(min_up_, sum_up_);
  sum_down_ += error - mean_ + options_.delta;
  max_down_ = std::max(max_down_, sum_down_);
  if (drifting_ || observations_ < options_.min_samples) return;
  const bool alarm = (sum_up_ - min_up_) > options_.lambda ||
                     (max_down_ - sum_down_) > options_.lambda;
  if (alarm) {
    drifting_ = true;
    ++trips_;
  }
}

HealthState DriftDetector::state() const {
  const std::lock_guard lock(mutex_);
  if (drifting_) return HealthState::kDrifting;
  return observations_ < options_.min_samples ? HealthState::kWarming
                                              : HealthState::kHealthy;
}

DriftSnapshot DriftDetector::snapshot() const {
  const std::lock_guard lock(mutex_);
  DriftSnapshot snapshot;
  snapshot.observations = observations_;
  snapshot.mean_error = mean_;
  snapshot.gap_up = sum_up_ - min_up_;
  snapshot.gap_down = max_down_ - sum_down_;
  snapshot.trips = trips_;
  if (drifting_) {
    snapshot.state = HealthState::kDrifting;
  } else {
    snapshot.state = observations_ < options_.min_samples
                         ? HealthState::kWarming
                         : HealthState::kHealthy;
  }
  return snapshot;
}

void DriftDetector::reset() {
  const std::lock_guard lock(mutex_);
  observations_ = 0;
  mean_ = 0.0;
  sum_up_ = 0.0;
  min_up_ = 0.0;
  sum_down_ = 0.0;
  max_down_ = 0.0;
  drifting_ = false;
}

}  // namespace epp::serve
