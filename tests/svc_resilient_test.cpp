// Fault-tolerant serving layer: typed outcomes, deterministic fault
// injection, retry/fallback/stale policies, circuit breakers and
// deadline handling. Calibrated without the simulator (same fixture as
// the batch-predictor suite) so every scenario is fast and exact.
#include "svc/resilient.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/historical_predictor.hpp"
#include "core/hybrid_predictor.hpp"
#include "core/lqn_predictor.hpp"
#include "rm/manager.hpp"
#include "svc/fault.hpp"
#include "util/thread_pool.hpp"

namespace epp::svc {
namespace {

core::TradeCalibration test_calibration() {
  core::TradeCalibration cal;
  cal.browse = {0.005376, 0.00083, 0.00040, 1.14};
  cal.buy = {0.010455, 0.00161, 0.00050, 2.0};
  return cal;
}

struct Predictors {
  static constexpr double kGradient = 0.14;
  core::LqnPredictor lqn{test_calibration()};
  core::HybridPredictor hybrid{test_calibration()};
  core::HistoricalPredictor historical{kGradient};

  Predictors() {
    for (const auto& arch :
         {core::arch_s(), core::arch_f(), core::arch_vf()}) {
      lqn.register_server(arch);
      hybrid.register_server(arch);
    }
    for (const char* name : {"AppServF", "AppServVF"}) {
      const double max_tput = lqn.predict_max_throughput_rps(name, 0.0);
      const double n_star = max_tput / kGradient;
      const std::vector<hydra::DataPoint> lower{
          lqn.pseudo_point(name, 0.25 * n_star),
          lqn.pseudo_point(name, 0.60 * n_star)};
      const std::vector<hydra::DataPoint> upper{
          lqn.pseudo_point(name, 1.25 * n_star),
          lqn.pseudo_point(name, 1.70 * n_star)};
      historical.calibrate_established(name, lower, upper, max_tput);
    }
    historical.register_new_server(
        "AppServS", lqn.predict_max_throughput_rps("AppServS", 0.0));
  }
};

Predictors& predictors() {
  static Predictors p;
  return p;
}

core::WorkloadSpec browse_load(double clients) {
  core::WorkloadSpec w;
  w.browse_clients = clients;
  return w;
}

std::unique_ptr<BatchPredictor> make_engine(BatchOptions options = {}) {
  Predictors& p = predictors();
  return std::make_unique<BatchPredictor>(&p.historical, &p.lqn, &p.hybrid,
                                          options);
}

FaultConfig failing(Method method, double probability) {
  FaultConfig config;
  config.for_method(method).fail_probability = probability;
  return config;
}

// ---------------------------------------------------------------------------
// Fault injector: determinism and spec grammar.
// ---------------------------------------------------------------------------

TEST(FaultInjector, SameSeedSameConfigReproducesEverySequence) {
  const FaultConfig config = parse_fault_spec("*:fail=0.4,latency-ms=10");
  const FaultInjector a(config, 42), b(config, 42), other(config, 43);
  const auto sequence = [](const FaultInjector& injector) {
    std::vector<std::pair<bool, double>> draws;
    for (int i = 0; i < 200; ++i)
      for (const char* server : {"AppServF", "AppServS"})
        for (const Method method : {Method::kLqn, Method::kHistorical})
          draws.emplace_back(injector.should_fail(method, server),
                             injector.injected_latency_s(method, server));
    return draws;
  };
  const auto from_a = sequence(a);
  EXPECT_EQ(from_a, sequence(b));
  EXPECT_NE(from_a, sequence(other)) << "seed has no effect on the streams";
  EXPECT_EQ(a.decisions(), b.decisions());
  EXPECT_EQ(a.injected_failures(), b.injected_failures());
  EXPECT_GT(a.injected_failures(), 0u);
  EXPECT_LT(a.injected_failures(), a.decisions());
}

TEST(FaultInjector, PerPairStreamsAreIndependentOfInterleaving) {
  // Draw pair X alone, then interleaved with pair Y: X's sequence must
  // be byte-identical (counter-based streams, not a shared generator).
  const FaultConfig config = parse_fault_spec("lqn:fail=0.5");
  const FaultInjector alone(config, 7), mixed(config, 7);
  std::vector<bool> expected;
  for (int i = 0; i < 64; ++i)
    expected.push_back(alone.should_fail(Method::kLqn, "AppServF"));
  for (int i = 0; i < 64; ++i) {
    (void)mixed.should_fail(Method::kLqn, "AppServS");  // interleaved noise
    EXPECT_EQ(mixed.should_fail(Method::kLqn, "AppServF"), expected[
        static_cast<std::size_t>(i)]) << i;
  }
}

TEST(FaultInjector, DisabledInjectorNeverFires) {
  FaultInjector injector(parse_fault_spec("*:fail=1.0,latency-ms=100"), 1);
  injector.set_enabled(false);
  EXPECT_FALSE(injector.should_fail(Method::kLqn, "AppServF"));
  EXPECT_EQ(injector.injected_latency_s(Method::kLqn, "AppServF"), 0.0);
  injector.set_enabled(true);
  EXPECT_GT(injector.injected_latency_s(Method::kLqn, "AppServF"), 0.0);
}

TEST(FaultInjector, SpecGrammarAcceptsAndRejects) {
  const FaultConfig one = parse_fault_spec("lqn:fail=0.3,latency-ms=20");
  EXPECT_DOUBLE_EQ(one.lqn.fail_probability, 0.3);
  EXPECT_DOUBLE_EQ(one.lqn.latency_s, 0.020);
  EXPECT_DOUBLE_EQ(one.historical.fail_probability, 0.0);
  EXPECT_DOUBLE_EQ(one.hybrid.latency_s, 0.0);

  const FaultConfig star = parse_fault_spec("*:fail=0.1");
  EXPECT_DOUBLE_EQ(star.historical.fail_probability, 0.1);
  EXPECT_DOUBLE_EQ(star.lqn.fail_probability, 0.1);
  EXPECT_DOUBLE_EQ(star.hybrid.fail_probability, 0.1);
  EXPECT_FALSE(parse_fault_spec("").any());

  for (const char* bad :
       {"lqn", "lqn:", "lqn:fail", "lqn:fail=abc", "lqn:fail=1.5",
        "lqn:fail=-0.1", "lqn:fail=inf", "lqn:bogus=1", "turbo:fail=0.1"}) {
    EXPECT_THROW((void)parse_fault_spec(bad), std::invalid_argument) << bad;
  }
}

// ---------------------------------------------------------------------------
// Typed outcomes and the fast path.
// ---------------------------------------------------------------------------

TEST(ResilientPredictor, FastPathBitEqualsPlainEngineWithZeroLatency) {
  const auto engine = make_engine();
  const ResilientPredictor resilient(*engine);
  const auto reference_engine = make_engine();
  for (const Method method :
       {Method::kHistorical, Method::kLqn, Method::kHybrid}) {
    const PredictionRequest request{method, "AppServF", browse_load(900.0)};
    const Outcome outcome = resilient.predict(request);
    ASSERT_TRUE(outcome.ok()) << method_name(method);
    const ResilientResult& result = outcome.value();
    const PredictionResult plain = reference_engine->predict(request);
    EXPECT_EQ(result.prediction.mean_rt_s, plain.mean_rt_s);
    EXPECT_EQ(result.prediction.throughput_rps, plain.throughput_rps);
    EXPECT_EQ(result.served_by, method);
    EXPECT_FALSE(result.fallback);
    EXPECT_FALSE(result.stale);
    EXPECT_EQ(result.retries, 0);
    // Fast-path contract: untimed serving reads no clocks.
    EXPECT_EQ(result.latency_s, 0.0);
  }
  const ResilienceStats stats = resilient.stats();
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.served, 3u);
  EXPECT_EQ(stats.errors, 0u);
}

TEST(ResilientPredictor, ExpectedMisuseThrowsLogicError) {
  const Outcome error{PredictionError{ErrorCode::kInternal, Method::kLqn,
                                      "AppServF", "boom"}};
  EXPECT_FALSE(error.ok());
  EXPECT_THROW((void)error.value(), std::logic_error);
  const Outcome value{ResilientResult{}};
  EXPECT_TRUE(value.ok());
  EXPECT_THROW((void)value.error(), std::logic_error);
  EXPECT_EQ(error.error().to_string(), "internal [lqn/AppServF]: boom");
}

TEST(ResilientPredictor, InvalidWorkloadIsTypedAndSkipsTheBreaker) {
  const auto engine = make_engine();
  const ResilientPredictor resilient(*engine);
  const Outcome outcome = resilient.predict(
      {Method::kLqn, "AppServF", browse_load(-5.0)});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code, ErrorCode::kInvalidWorkload);
  // Caller error, not pair health: breaker untouched, nothing retried.
  EXPECT_EQ(resilient.breaker_state(Method::kLqn, "AppServF"),
            BreakerState::kClosed);
  EXPECT_EQ(resilient.stats().errors, 1u);
  EXPECT_EQ(resilient.stats().retries, 0u);
}

TEST(ResilientPredictor, UnknownServerExhaustsChainAsNotCalibrated) {
  const auto engine = make_engine();
  const ResilientPredictor resilient(*engine);
  const Outcome outcome = resilient.predict(
      {Method::kLqn, "AppServX", browse_load(100.0)});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code, ErrorCode::kNotCalibrated);
  // Deterministic config error: never retried, never trips a breaker.
  EXPECT_EQ(resilient.stats().retries, 0u);
  EXPECT_EQ(resilient.breaker_state(Method::kLqn, "AppServX"),
            BreakerState::kClosed);
}

// ---------------------------------------------------------------------------
// Fallback chain.
// ---------------------------------------------------------------------------

TEST(ResilientPredictor, MissingMethodFallsBackDownTheChainFlagged) {
  Predictors& p = predictors();
  const BatchPredictor engine(&p.historical, nullptr, &p.hybrid);
  const ResilientPredictor resilient(engine);
  const Outcome outcome = resilient.predict(
      {Method::kLqn, "AppServF", browse_load(700.0)});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().requested, Method::kLqn);
  EXPECT_EQ(outcome.value().served_by, Method::kHybrid);
  EXPECT_TRUE(outcome.value().fallback);
  EXPECT_FALSE(outcome.value().stale);
  EXPECT_EQ(resilient.stats().fallbacks, 1u);
}

TEST(ResilientPredictor, FallbackDisabledSurfacesThePrimaryError) {
  Predictors& p = predictors();
  const BatchPredictor engine(&p.historical, nullptr, &p.hybrid);
  ResilienceOptions options;
  options.fallback_enabled = false;
  options.serve_stale = false;
  const ResilientPredictor resilient(engine, options);
  const Outcome outcome = resilient.predict(
      {Method::kLqn, "AppServF", browse_load(700.0)});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code, ErrorCode::kNotCalibrated);
  EXPECT_EQ(outcome.error().method, Method::kLqn);
}

TEST(ResilientPredictor, PersistentFaultOnOneMethodDegradesToNext) {
  const FaultInjector injector(failing(Method::kLqn, 1.0));
  BatchOptions batch_options;
  batch_options.fault = &injector;
  const auto engine = make_engine(batch_options);
  ResilienceOptions options;
  options.max_retries = 1;
  const ResilientPredictor resilient(*engine, options);
  const Outcome outcome = resilient.predict(
      {Method::kLqn, "AppServF", browse_load(400.0)});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().served_by, Method::kHybrid);
  EXPECT_TRUE(outcome.value().fallback);
  EXPECT_EQ(outcome.value().retries, 1);  // lqn retried once, then degraded
  EXPECT_EQ(resilient.stats().retries, 1u);
  EXPECT_EQ(injector.decisions(), 2u);  // initial attempt + one retry
  EXPECT_EQ(injector.injected_failures(), 2u);
}

// ---------------------------------------------------------------------------
// Retries.
// ---------------------------------------------------------------------------

TEST(ResilientPredictor, RetryExhaustionReturnsTransientFailure) {
  const FaultInjector injector(failing(Method::kHistorical, 1.0));
  BatchOptions batch_options;
  batch_options.fault = &injector;
  const auto engine = make_engine(batch_options);
  ResilienceOptions options;
  options.max_retries = 2;
  options.serve_stale = false;
  options.backoff_base_s = 0.0;  // keep the test instant
  const ResilientPredictor resilient(*engine, options);
  // Historical is the chain's last method: nothing to degrade to.
  const Outcome outcome = resilient.predict(
      {Method::kHistorical, "AppServF", browse_load(300.0)});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code, ErrorCode::kTransientFailure);
  EXPECT_EQ(resilient.stats().retries, 2u);
  EXPECT_EQ(injector.decisions(), 3u);  // 1 attempt + 2 retries
}

TEST(ResilientPredictor, RetriesAreDeterministicAcrossIdenticalSetups) {
  // Backoff jitter is seeded and retries consult counter-based fault
  // streams: two identical predictor/injector stacks must agree on every
  // outcome, retry count and served method, bit for bit.
  ResilienceOptions options;
  options.backoff_base_s = 0.001;
  options.backoff_cap_s = 0.004;
  const FaultInjector fault_a(failing(Method::kLqn, 0.6), 9);
  const FaultInjector fault_b(failing(Method::kLqn, 0.6), 9);
  BatchOptions opt_a, opt_b;
  opt_a.fault = &fault_a;
  opt_b.fault = &fault_b;
  const auto engine_a = make_engine(opt_a);
  const auto engine_b = make_engine(opt_b);
  const ResilientPredictor ra(*engine_a, options), rb(*engine_b, options);
  for (double clients = 100.0; clients <= 1000.0; clients += 100.0) {
    const PredictionRequest request{Method::kLqn, "AppServF",
                                    browse_load(clients)};
    const Outcome oa = ra.predict(request), ob = rb.predict(request);
    ASSERT_EQ(oa.ok(), ob.ok()) << clients;
    if (oa.ok()) {
      EXPECT_EQ(oa.value().prediction.mean_rt_s,
                ob.value().prediction.mean_rt_s);
      EXPECT_EQ(oa.value().served_by, ob.value().served_by);
      EXPECT_EQ(oa.value().retries, ob.value().retries);
    }
  }
  EXPECT_EQ(ra.stats().retries, rb.stats().retries);
  EXPECT_EQ(fault_a.decisions(), fault_b.decisions());
}

// ---------------------------------------------------------------------------
// Solver divergence.
// ---------------------------------------------------------------------------

TEST(ResilientPredictor, SolverDivergenceIsTypedAndTripsTheBreaker) {
  // An iteration budget far below what the layered fixed point needs
  // forces every lqn solve to surface SolverDivergedError.
  lqn::SolverOptions strangled;
  strangled.max_layer_iterations = 1;
  core::LqnPredictor lqn(test_calibration(), strangled);
  lqn.register_server(core::arch_f());
  Predictors& p = predictors();
  const BatchPredictor engine(&p.historical, &lqn, nullptr);
  ResilienceOptions options;
  options.fallback_enabled = false;
  options.serve_stale = false;
  options.breaker_failure_threshold = 1;
  options.breaker_cooldown_s = 1000.0;
  const ResilientPredictor resilient(engine, options);

  const PredictionRequest request{Method::kLqn, "AppServF",
                                  browse_load(900.0)};
  const Outcome first = resilient.predict(request);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.error().code, ErrorCode::kSolverDiverged);
  EXPECT_EQ(resilient.stats().retries, 0u);  // deterministic: never retried
  EXPECT_EQ(resilient.breaker_state(Method::kLqn, "AppServF"),
            BreakerState::kOpen);

  const Outcome second = resilient.predict(request);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.error().code, ErrorCode::kCircuitOpen);
  EXPECT_EQ(resilient.stats().breaker_rejections, 1u);
}

// ---------------------------------------------------------------------------
// Circuit breakers.
// ---------------------------------------------------------------------------

TEST(ResilientPredictor, BreakerOpensAtThresholdAndHealsThroughHalfOpen) {
  FaultInjector injector(failing(Method::kHistorical, 1.0));
  BatchOptions batch_options;
  batch_options.fault = &injector;
  const auto engine = make_engine(batch_options);
  ResilienceOptions options;
  options.max_retries = 0;
  options.serve_stale = false;
  options.breaker_failure_threshold = 2;
  options.breaker_cooldown_s = 0.0;  // admit the probe immediately
  const ResilientPredictor resilient(*engine, options);

  const PredictionRequest request{Method::kHistorical, "AppServF",
                                  browse_load(250.0)};
  for (int i = 0; i < 2; ++i) {
    const Outcome outcome = resilient.predict(request);
    ASSERT_FALSE(outcome.ok()) << i;
    EXPECT_EQ(outcome.error().code, ErrorCode::kTransientFailure) << i;
  }
  EXPECT_EQ(resilient.breaker_state(Method::kHistorical, "AppServF"),
            BreakerState::kOpen);
  EXPECT_EQ(resilient.stats().breaker_opens, 1u);

  // Zero cooldown: the next call becomes the half-open probe, still
  // failing, and re-opens the circuit.
  const Outcome probe = resilient.predict(request);
  ASSERT_FALSE(probe.ok());
  EXPECT_EQ(probe.error().code, ErrorCode::kTransientFailure);
  EXPECT_EQ(resilient.breaker_state(Method::kHistorical, "AppServF"),
            BreakerState::kOpen);
  EXPECT_EQ(resilient.stats().breaker_opens, 2u);

  // Heal the fault; the following probe succeeds and closes the circuit.
  injector.set_enabled(false);
  const Outcome healed = resilient.predict(request);
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(resilient.breaker_state(Method::kHistorical, "AppServF"),
            BreakerState::kClosed);
}

TEST(ResilientPredictor, OpenBreakerOnPrimaryStillServesViaFallback) {
  FaultInjector injector(failing(Method::kLqn, 1.0));
  BatchOptions batch_options;
  batch_options.fault = &injector;
  const auto engine = make_engine(batch_options);
  ResilienceOptions options;
  options.max_retries = 0;
  options.breaker_failure_threshold = 1;
  options.breaker_cooldown_s = 1000.0;
  const ResilientPredictor resilient(*engine, options);

  // First request trips the lqn breaker but serves from hybrid.
  const Outcome first = resilient.predict(
      {Method::kLqn, "AppServF", browse_load(500.0)});
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().served_by, Method::kHybrid);
  EXPECT_EQ(resilient.breaker_state(Method::kLqn, "AppServF"),
            BreakerState::kOpen);

  // Second request is rejected at the lqn breaker without an evaluation
  // (the injector sees no new lqn decision) and still serves.
  const std::uint64_t decisions_before = injector.decisions();
  const Outcome second = resilient.predict(
      {Method::kLqn, "AppServF", browse_load(600.0)});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().served_by, Method::kHybrid);
  EXPECT_TRUE(second.value().fallback);
  EXPECT_EQ(injector.decisions(), decisions_before);
  EXPECT_GE(resilient.stats().breaker_rejections, 1u);
}

TEST(ResilientPredictor, ConcurrentBreakerTransitionsStaySane) {
  // TSan target: many threads hammer one failing pair (racing the
  // closed->open->half-open transitions) while another pair succeeds.
  FaultInjector injector(failing(Method::kLqn, 1.0));
  BatchOptions batch_options;
  batch_options.fault = &injector;
  const auto engine = make_engine(batch_options);
  ResilienceOptions options;
  options.max_retries = 0;
  options.serve_stale = false;
  options.fallback_enabled = false;
  options.breaker_failure_threshold = 3;
  options.breaker_cooldown_s = 0.0;  // maximize open/half-open churn
  const ResilientPredictor resilient(*engine, options);

  std::vector<PredictionRequest> storm;
  for (int i = 0; i < 400; ++i) {
    if (i % 2 == 0)
      storm.push_back({Method::kLqn, "AppServF",
                       browse_load(100.0 + i)});  // distinct: all misses
    else
      storm.push_back({Method::kHistorical, "AppServVF", browse_load(100.0)});
  }
  util::ThreadPool pool(8);
  const std::vector<Outcome> outcomes = resilient.predict_batch(storm, &pool);
  ASSERT_EQ(outcomes.size(), storm.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (storm[i].method == Method::kHistorical) {
      EXPECT_TRUE(outcomes[i].ok()) << i;
    } else {
      ASSERT_FALSE(outcomes[i].ok()) << i;
      const ErrorCode code = outcomes[i].error().code;
      EXPECT_TRUE(code == ErrorCode::kTransientFailure ||
                  code == ErrorCode::kCircuitOpen)
          << error_code_name(code);
    }
  }
  EXPECT_EQ(resilient.breaker_state(Method::kHistorical, "AppServVF"),
            BreakerState::kClosed);
  EXPECT_EQ(resilient.stats().requests, storm.size());
}

TEST(ResilientPredictor, HalfOpenAdmitsOneProbeAndFastFailsTheRest) {
  // The half-open contract under *concurrent* callers: after the
  // cooldown exactly one request becomes the probe (and pays the full
  // retry-loop price against the still-broken engine) while every
  // simultaneous caller is rejected at the breaker in microseconds with
  // a typed kCircuitOpen — never queued behind the probe, never admitted
  // as a second probe. The probe is kept measurably busy (~200 ms of
  // jittered retry backoff at fail=1.0) so the race window is real.
  FaultInjector injector(failing(Method::kHistorical, 1.0));
  BatchOptions batch_options;
  batch_options.fault = &injector;
  const auto engine = make_engine(batch_options);
  ResilienceOptions options;
  options.max_retries = 100;
  options.backoff_base_s = 0.002;
  options.backoff_cap_s = 0.002;
  options.serve_stale = false;
  options.fallback_enabled = false;
  options.breaker_failure_threshold = 1;
  // Long enough that a loser delayed past the probe's completion still
  // lands inside the re-opened circuit's cooldown (no accidental second
  // probe), short enough to keep the test fast.
  options.breaker_cooldown_s = 0.15;
  const ResilientPredictor resilient(*engine, options);
  const PredictionRequest request{Method::kHistorical, "AppServF",
                                  browse_load(250.0)};

  // Open the circuit, then dwell past the cooldown so the next wave
  // races for the single probe slot.
  ASSERT_FALSE(resilient.predict(request).ok());
  ASSERT_EQ(resilient.breaker_state(Method::kHistorical, "AppServF"),
            BreakerState::kOpen);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  constexpr int kCallers = 8;
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<ErrorCode> verdicts(kCallers);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int i = 0; i < kCallers; ++i)
    callers.emplace_back([&, i] {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {
      }
      const Outcome outcome = resilient.predict(request);
      ASSERT_FALSE(outcome.ok()) << i;
      verdicts[i] = outcome.error().code;
    });
  while (ready.load() < kCallers) {
  }
  go.store(true, std::memory_order_release);
  for (std::thread& caller : callers) caller.join();

  int probes = 0, rejected = 0;
  for (const ErrorCode code : verdicts) {
    if (code == ErrorCode::kTransientFailure) {
      ++probes;
    } else {
      EXPECT_EQ(code, ErrorCode::kCircuitOpen) << error_code_name(code);
      ++rejected;
    }
  }
  EXPECT_EQ(probes, 1) << "the half-open slot admitted " << probes
                       << " probes";
  EXPECT_EQ(rejected, kCallers - 1);
  EXPECT_GE(resilient.stats().breaker_rejections,
            static_cast<std::uint64_t>(kCallers - 1));
  // The failed probe re-opened the circuit.
  EXPECT_EQ(resilient.breaker_state(Method::kHistorical, "AppServF"),
            BreakerState::kOpen);
}

// ---------------------------------------------------------------------------
// Deadlines, virtual latency and stale serving.
// ---------------------------------------------------------------------------

TEST(ResilientPredictor, VirtualLatencyDeadlineThenStaleReplay) {
  FaultConfig config;
  config.lqn.latency_s = 1000.0;  // virtual seconds; nothing sleeps
  FaultInjector injector(config);
  injector.set_enabled(false);
  BatchOptions batch_options;
  batch_options.fault = &injector;
  const auto engine = make_engine(batch_options);
  ResilienceOptions options;
  options.deadline_s = 0.050;
  const ResilientPredictor resilient(*engine, options);
  const PredictionRequest request{Method::kLqn, "AppServF",
                                  browse_load(800.0)};

  // Healthy pass: served and remembered; timing is tracked (latency
  // injection is configured) so latency_s is a real clock reading.
  const Outcome healthy = resilient.predict(request);
  ASSERT_TRUE(healthy.ok());
  EXPECT_FALSE(healthy.value().stale);
  EXPECT_GT(healthy.value().latency_s, 0.0);

  // Chaos on: ~1000 virtual seconds against a 50 ms deadline kills the
  // whole chain, and the last good answer is replayed, flagged stale.
  injector.set_enabled(true);
  const Outcome stale = resilient.predict(request);
  ASSERT_TRUE(stale.ok());
  EXPECT_TRUE(stale.value().stale);
  EXPECT_EQ(stale.value().served_by, Method::kLqn);
  EXPECT_FALSE(stale.value().fallback);
  EXPECT_EQ(stale.value().prediction.mean_rt_s,
            healthy.value().prediction.mean_rt_s);
  EXPECT_EQ(resilient.stats().stale_serves, 1u);
  EXPECT_EQ(resilient.stats().deadline_hits, 1u);

  // A request with no stale entry surfaces the typed deadline error.
  const Outcome cold = resilient.predict(
      {Method::kLqn, "AppServF", browse_load(850.0)});
  ASSERT_FALSE(cold.ok());
  EXPECT_EQ(cold.error().code, ErrorCode::kDeadlineExceeded);
}

TEST(ResilientPredictor, StaleStoreIsBoundedAndCountsEvictions) {
  // Regression: the stale store was unbounded — a long-running daemon
  // serving distinct workloads grew it without limit. With the bound
  // armed it must hold at most stale_capacity entries and count what it
  // dropped.
  const auto engine = make_engine();
  ResilienceOptions options;
  options.stale_capacity = 3;
  ResilientPredictor resilient(*engine, options);
  for (int i = 0; i < 10; ++i)
    ASSERT_TRUE(resilient
                    .predict({Method::kLqn, "AppServF",
                              browse_load(100.0 + 50.0 * i)})
                    .ok())
        << i;
  EXPECT_EQ(resilient.stale_size(), 3u);
  EXPECT_EQ(resilient.stats().stale_evictions, 7u);

  // reset() empties the store and the eviction order alongside it.
  resilient.reset();
  EXPECT_EQ(resilient.stale_size(), 0u);
  EXPECT_EQ(resilient.stats().stale_evictions, 0u);
}

TEST(ResilientPredictor, ZeroStaleCapacityMeansUnbounded) {
  const auto engine = make_engine();
  ResilienceOptions options;
  options.stale_capacity = 0;
  const ResilientPredictor resilient(*engine, options);
  for (int i = 0; i < 10; ++i)
    ASSERT_TRUE(resilient
                    .predict({Method::kLqn, "AppServF",
                              browse_load(100.0 + 50.0 * i)})
                    .ok())
        << i;
  EXPECT_EQ(resilient.stale_size(), 10u);
  EXPECT_EQ(resilient.stats().stale_evictions, 0u);
}

TEST(ResilientPredictor, EvictionDropsOldestAndOverwriteRefreshes) {
  // Re-evaluating a workload refreshes its slot (approximate
  // LRU-by-write), so the victim is the *least recently written* entry,
  // and the survivor still replays stale under chaos while the victim
  // surfaces the typed deadline error.
  FaultConfig config;
  config.lqn.latency_s = 1000.0;  // virtual seconds; nothing sleeps
  FaultInjector injector(config);
  injector.set_enabled(false);
  BatchOptions batch_options;
  batch_options.fault = &injector;
  batch_options.cache_capacity_per_shard = 1;  // 1-entry engine cache so
  batch_options.cache_shards = 1;              // repeats re-evaluate
  const auto engine = make_engine(batch_options);
  ResilienceOptions options;
  options.deadline_s = 0.050;
  options.stale_capacity = 2;
  options.fallback_enabled = false;
  const ResilientPredictor resilient(*engine, options);

  const PredictionRequest a{Method::kLqn, "AppServF", browse_load(400.0)};
  const PredictionRequest b{Method::kLqn, "AppServF", browse_load(500.0)};
  const PredictionRequest c{Method::kLqn, "AppServF", browse_load(600.0)};
  ASSERT_TRUE(resilient.predict(a).ok());  // order: [a]
  ASSERT_TRUE(resilient.predict(b).ok());  // order: [a, b]
  ASSERT_TRUE(resilient.predict(c).ok());  // full: evict a -> [b, c]
  EXPECT_EQ(resilient.stale_size(), 2u);
  EXPECT_EQ(resilient.stats().stale_evictions, 1u);
  ASSERT_TRUE(resilient.predict(b).ok());  // refresh: [c, b]
  EXPECT_EQ(resilient.stale_size(), 2u);
  EXPECT_EQ(resilient.stats().stale_evictions, 1u)
      << "an overwrite must refresh in place, not evict";
  ASSERT_TRUE(resilient.predict(a).ok());  // evict c (b was refreshed)
  EXPECT_EQ(resilient.stats().stale_evictions, 2u);

  // Chaos on: b survived the refresh and replays stale; c was evicted
  // and dies with the typed deadline error.
  injector.set_enabled(true);
  const Outcome stale_b = resilient.predict(b);
  ASSERT_TRUE(stale_b.ok());
  EXPECT_TRUE(stale_b.value().stale);
  const Outcome cold_c = resilient.predict(c);
  ASSERT_FALSE(cold_c.ok());
  EXPECT_EQ(cold_c.error().code, ErrorCode::kDeadlineExceeded);
}

TEST(ResilientPredictor, PredictWithDeadlineOverridesConfiguredDeadline) {
  // The serving daemon's per-request protocol deadlines ride this
  // entry point: an impossible caller deadline must fail a request that
  // succeeds under the (unset) configured deadline.
  const auto engine = make_engine();
  ResilienceOptions options;
  options.fallback_enabled = false;
  options.serve_stale = false;
  const ResilientPredictor resilient(*engine, options);
  const PredictionRequest request{Method::kLqn, "AppServF",
                                  browse_load(750.0)};
  const Outcome impossible = resilient.predict_with_deadline(request, 1e-12);
  ASSERT_FALSE(impossible.ok());
  EXPECT_EQ(impossible.error().code, ErrorCode::kDeadlineExceeded);
  // deadline_s <= 0 falls back to the configured (disabled) deadline.
  EXPECT_TRUE(resilient.predict_with_deadline(request, 0.0).ok());
  EXPECT_TRUE(resilient.predict_with_deadline(request, 5.0).ok());
}

TEST(ResilientPredictor, DeadlineNeverOpensTheBreaker) {
  FaultConfig config;
  config.lqn.latency_s = 1000.0;
  const FaultInjector injector(config);
  BatchOptions batch_options;
  batch_options.fault = &injector;
  const auto engine = make_engine(batch_options);
  ResilienceOptions options;
  options.deadline_s = 0.010;
  options.serve_stale = false;
  options.breaker_failure_threshold = 1;
  const ResilientPredictor resilient(*engine, options);
  for (int i = 0; i < 3; ++i) {
    const Outcome outcome = resilient.predict(
        {Method::kLqn, "AppServF", browse_load(100.0 + i)});
    ASSERT_FALSE(outcome.ok()) << i;
    EXPECT_EQ(outcome.error().code, ErrorCode::kDeadlineExceeded) << i;
  }
  // Slow is not broken: the breaker must not conflate the two.
  EXPECT_EQ(resilient.breaker_state(Method::kLqn, "AppServF"),
            BreakerState::kClosed);
  EXPECT_EQ(resilient.stats().breaker_opens, 0u);
}

TEST(ResilientPredictor, BatchBudgetExpiryBackfillsTypedErrors) {
  const auto engine = make_engine();
  const ResilientPredictor resilient(*engine);
  std::vector<PredictionRequest> grid;
  for (int i = 0; i < 32; ++i)
    grid.push_back({Method::kHistorical, "AppServF", browse_load(100.0 + i)});
  // A budget that is already exhausted: every slot must still come back,
  // each as a typed deadline error — never an exception or a gap.
  const std::vector<Outcome> outcomes =
      resilient.predict_batch(grid, nullptr, 1e-9);
  ASSERT_EQ(outcomes.size(), grid.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    ASSERT_FALSE(outcomes[i].ok()) << i;
    EXPECT_EQ(outcomes[i].error().code, ErrorCode::kDeadlineExceeded) << i;
  }
  EXPECT_EQ(resilient.stats().requests, grid.size());
  EXPECT_EQ(resilient.stats().errors, grid.size());
}

TEST(ResilientPredictor, ParallelBatchBudgetCancellationIsClean) {
  // TSan target: a pool races request starts against budget expiry; every
  // outcome must be a value or a typed error, results aligned to input.
  const auto engine = make_engine();
  const ResilientPredictor resilient(*engine);
  std::vector<PredictionRequest> grid;
  for (int i = 0; i < 200; ++i)
    grid.push_back({Method::kLqn, "AppServVF", browse_load(50.0 + i)});
  util::ThreadPool pool(8);
  const std::vector<Outcome> outcomes =
      resilient.predict_batch(grid, &pool, 2e-3);
  ASSERT_EQ(outcomes.size(), grid.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (!outcomes[i].ok()) {
      EXPECT_EQ(outcomes[i].error().code, ErrorCode::kDeadlineExceeded) << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Batch isolation (one bad request must not poison the batch).
// ---------------------------------------------------------------------------

TEST(BatchPredictor, PerRequestFailuresDoNotLoseTheBatch) {
  const auto engine = make_engine();
  const std::vector<PredictionRequest> grid{
      {Method::kHistorical, "AppServF", browse_load(200.0)},
      {Method::kLqn, "AppServF", browse_load(-3.0)},       // invalid workload
      {Method::kHybrid, "AppServX", browse_load(200.0)},   // unknown server
      {Method::kHistorical, "AppServF", browse_load(400.0)},
  };
  util::ThreadPool pool(2);
  const std::vector<PredictionResult> results =
      engine->predict_batch(grid, &pool);
  ASSERT_EQ(results.size(), grid.size());
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_NE(results[1].error.find("invalid workload"), std::string::npos)
      << results[1].error;
  EXPECT_FALSE(results[2].ok());
  EXPECT_TRUE(results[3].ok());
  EXPECT_GT(results[3].mean_rt_s, results[0].mean_rt_s);
}

TEST(ResilientPredictor, MixedBatchKeepsGoodCellsAndTypesBadOnes) {
  const auto engine = make_engine();
  const ResilientPredictor resilient(*engine);
  const std::vector<PredictionRequest> grid{
      {Method::kLqn, "AppServF", browse_load(300.0)},
      {Method::kLqn, "AppServF", browse_load(-1.0)},
      {Method::kHybrid, "AppServVF", browse_load(300.0)},
  };
  const std::vector<Outcome> outcomes = resilient.predict_batch(grid);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_TRUE(outcomes[0].ok());
  ASSERT_FALSE(outcomes[1].ok());
  EXPECT_EQ(outcomes[1].error().code, ErrorCode::kInvalidWorkload);
  EXPECT_TRUE(outcomes[2].ok());
}

// ---------------------------------------------------------------------------
// Capacity probes and the resource manager.
// ---------------------------------------------------------------------------

TEST(ResilientPredictor, CapacityOutcomeMatchesDirectPredictor) {
  const auto engine = make_engine();
  const ResilientPredictor resilient(*engine);
  const CapacityOutcome outcome =
      resilient.max_clients_for_goal(Method::kHybrid, "AppServF", 0.6);
  ASSERT_TRUE(outcome.ok());
  const core::CapacityResult direct =
      predictors().hybrid.max_clients_for_goal("AppServF", 0.6);
  EXPECT_EQ(outcome.value().max_clients, direct.max_clients);
  EXPECT_EQ(outcome.value().prediction_evaluations,
            direct.prediction_evaluations);

  const CapacityOutcome unknown =
      resilient.max_clients_for_goal(Method::kHybrid, "AppServX", 0.6);
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.error().code, ErrorCode::kNotCalibrated);
}

TEST(ResilientPredictor, ResourceManagerPlansAroundFailedProbes) {
  Predictors& p = predictors();
  const auto engine = make_engine();
  const ResilientPredictor resilient(*engine);
  rm::ManagerOptions manager_options;
  const rm::ResourceManager manager(p.hybrid, manager_options);

  const std::vector<rm::ServiceClassSpec> classes{
      {"browse", 0.6, false, 400.0}};
  const std::vector<rm::PoolServer> healthy{{"AppServF", 186.0},
                                            {"AppServVF", 320.0}};

  // Fault-free, the resilient path reproduces Algorithm 1 exactly.
  const rm::Allocation plain = manager.allocate(classes, healthy);
  const rm::Allocation resilient_run =
      manager.allocate(classes, healthy, resilient, Method::kHybrid);
  EXPECT_EQ(resilient_run.failed_probes, 0);
  EXPECT_EQ(resilient_run.unallocated_scaled, plain.unallocated_scaled);
  ASSERT_EQ(resilient_run.per_server.size(), plain.per_server.size());
  for (std::size_t i = 0; i < plain.per_server.size(); ++i)
    EXPECT_EQ(resilient_run.per_server[i], plain.per_server[i]) << i;

  // A degraded pool: the unknown architecture's probes return typed
  // errors, score as zero capacity, and the load lands on the healthy
  // server instead of aborting the allocation.
  const std::vector<rm::PoolServer> degraded{{"AppServX", 186.0},
                                             {"AppServVF", 320.0}};
  const rm::Allocation planned_around =
      manager.allocate(classes, degraded, resilient, Method::kHybrid);
  EXPECT_GT(planned_around.failed_probes, 0);
  EXPECT_EQ(planned_around.scaled_on_server(0), 0.0);
  EXPECT_GT(planned_around.scaled_on_server(1), 0.0);
  EXPECT_EQ(planned_around.unallocated_scaled, 0.0);
}

}  // namespace
}  // namespace epp::svc
