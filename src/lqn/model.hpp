// Layered queuing network (LQN) model representation.
//
// Follows the stochastic rendezvous network vocabulary of Woodside et al.
// (the paper's reference [17]) restricted to the features the paper uses:
//
//   * processors with a scheduling discipline (PS time-sharing or FIFO) and
//     a relative speed;
//   * tasks bound to a processor, with a finite multiplicity (thread pool /
//     connection pool size) — "the application and database servers can
//     process 50 and 20 requests at the same time via time-sharing";
//   * reference tasks (closed workload classes): a population of clients
//     with an exponential think time, e.g. "number of clients and the mean
//     client think-time is used as the primary measure of the workload";
//   * entries with a mean service demand and synchronous calls to entries
//     of lower-layer tasks with a mean call count (possibly fractional,
//     e.g. browse requests make 1.14 database requests on average).
//
// The call graph must be acyclic and form layers (no entry may call into
// its own task or back up the stack).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace epp::lqn {

enum class Scheduling { kProcessorSharing, kFifo, kDelay };

using ProcessorId = std::size_t;
using TaskId = std::size_t;
using EntryId = std::size_t;

struct Processor {
  std::string name;
  Scheduling scheduling = Scheduling::kProcessorSharing;
  double speed = 1.0;
  std::size_t multiplicity = 1;
};

struct Task {
  std::string name;
  ProcessorId processor = 0;
  /// Thread/connection pool size; requests beyond it queue for the task.
  std::size_t multiplicity = 1;
  /// Reference (client) tasks drive the workload: closed (a population of
  /// clients with a think time) or open (constant-rate arrivals — the
  /// paper's "some or all clients sending requests at a constant rate").
  bool is_reference = false;
  double population = 0.0;    // closed reference: number of clients
  double think_time_s = 0.0;  // closed reference: mean think time
  bool open_arrivals = false;     // reference only: open workload?
  double arrival_rate_rps = 0.0;  // open reference: arrival rate
  /// Preemptive priority of this workload class (higher = more important;
  /// meaningful on reference tasks, default all equal).
  int priority = 0;
  std::vector<EntryId> entries;
};

struct Call {
  EntryId target = 0;
  double mean_calls = 0.0;
};

struct Entry {
  std::string name;
  TaskId task = 0;
  /// Host-processor demand per invocation, in seconds at speed 1.
  double service_demand_s = 0.0;
  std::vector<Call> calls;
};

/// Factory helpers for the common task shapes (avoids long positional
/// aggregate initialisers as Task grows fields).
Task make_server_task(std::string name, ProcessorId processor,
                      std::size_t multiplicity = 1);
Task make_closed_client_task(std::string name, ProcessorId processor,
                             double population, double think_time_s,
                             int priority = 0);
Task make_open_client_task(std::string name, ProcessorId processor,
                           double arrival_rate_rps, int priority = 0);

/// A validated-on-demand LQN model. Build with the add_* functions (or the
/// ModelBuilder / parser); call validate() before solving.
class Model {
 public:
  ProcessorId add_processor(Processor processor);
  TaskId add_task(Task task);
  EntryId add_entry(Entry entry);
  /// Add a synchronous call from one entry to another.
  void add_call(EntryId from, EntryId to, double mean_calls);

  const std::vector<Processor>& processors() const noexcept { return processors_; }
  const std::vector<Task>& tasks() const noexcept { return tasks_; }
  const std::vector<Entry>& entries() const noexcept { return entries_; }

  Processor& processor(ProcessorId id) { return processors_.at(id); }
  Task& task(TaskId id) { return tasks_.at(id); }
  Entry& entry(EntryId id) { return entries_.at(id); }
  const Processor& processor(ProcessorId id) const { return processors_.at(id); }
  const Task& task(TaskId id) const { return tasks_.at(id); }
  const Entry& entry(EntryId id) const { return entries_.at(id); }

  std::optional<TaskId> find_task(const std::string& name) const;
  std::optional<EntryId> find_entry(const std::string& name) const;
  std::optional<ProcessorId> find_processor(const std::string& name) const;

  std::vector<TaskId> reference_tasks() const;

  /// Throws std::invalid_argument describing the first structural problem:
  /// dangling ids, cyclic calls, reference tasks without population,
  /// calls originating at non-reference entries into reference tasks, etc.
  void validate() const;

  /// Visit ratio of every entry per top-level request of reference task
  /// `ref` (the reference entry itself has ratio 1 per call it makes...).
  /// Entry e's value is the expected number of invocations of e triggered
  /// by one think-cycle of a `ref` client.
  std::vector<double> visit_ratios(TaskId ref) const;

 private:
  std::vector<Processor> processors_;
  std::vector<Task> tasks_;
  std::vector<Entry> entries_;
};

}  // namespace epp::lqn
