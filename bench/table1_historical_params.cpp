// Table 1 — historical method relationship parameters.
//
// The paper reports the fitted lower-equation parameters (cL, lambdaL) for
// the three case-study servers, calibrated from nldp = nudp = 2 historical
// data points with ns = 50 samples: S 138.9 ms / 4e-6, F 84.1 ms / 1e-4,
// VF 10.7 ms / 9e-4. The reproduced numbers come from our simulated
// testbed so absolute values differ; the *shape* to check is cL falling
// and lambdaL rising as servers get faster, with lambdaU ~ 1/max
// throughput and cU ~ -think time.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "hydra/relationships.hpp"
#include "util/table.hpp"

int main() {
  using namespace epp;
  std::cout << "== Table 1: historical method relationship parameters ==\n"
            << "(calibrated from 2 lower + 2 upper data points per server;\n"
            << " AppServS is derived via relationship 2 from its benchmarked"
            << " max throughput)\n\n";

  bench::Setup setup;
  util::Table table({"server", "cL_ms", "lambdaL", "lambdaU_ms_per_client",
                     "cU_ms", "max_tput_rps", "gradient_m"});
  for (const std::string& name : bench::server_names()) {
    const hydra::Relationship1& rel = setup.historical->model().server(name);
    table.add_row({name, util::fmt(rel.c_lower * 1e3, 3),
                   util::fmt(rel.lambda_lower, 6),
                   util::fmt(rel.lambda_upper * 1e3, 4),
                   util::fmt(rel.c_upper * 1e3, 1),
                   util::fmt(rel.max_throughput_rps, 1),
                   util::fmt(rel.gradient_m, 4)});
  }
  table.print(std::cout);

  std::cout << "\npaper (real WebSphere testbed): cL 138.9/84.1/10.7 ms and "
               "lambdaL 4e-6/1e-4/9e-4 for S/F/VF.\n"
               "expected shape: cL falls with max throughput and lambdaU ~ "
               "1/max throughput, cU ~ -think time, m identical across "
               "servers (~0.14). lambdaL is testbed-dependent (relationship "
               "2 fits it as a power law in either direction): the paper's "
               "servers show it rising with speed, this simulated testbed "
               "falling (the knee position scales with speed).\n";
  return 0;
}
