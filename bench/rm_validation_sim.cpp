// Extension study — validating Algorithm 1's allocations *by simulation*.
//
// The paper evaluates the resource manager against the historical model
// standing in for the real system (section 9). With a full multi-server
// simulator available we can go one step further and check the allocation
// against the simulated cluster itself: route every (class, server)
// allocation into the cluster, run it, and compare each class's achieved
// mean response time to its SLA goal at different slack levels.
//
// Expected shape: at the zero-failure slack every class meets its goal
// with headroom; as slack shrinks below ~1 the strictest class starts
// missing its goal on the most heavily loaded servers first.
#include <cmath>
#include <iostream>

#include "common.hpp"
#include "rm/manager.hpp"
#include "sim/replicate.hpp"
#include "sim/trade/cluster.hpp"
#include "util/table.hpp"

int main() {
  using namespace epp;
  std::cout << "== Extension: simulating the resource manager's allocation "
               "==\n\n";

  bench::Setup setup(/*measure_mix=*/true);
  const auto pool = rm::standard_pool(setup.max_s, setup.max_f, setup.max_vf);
  const auto classes = rm::standard_classes(8000.0);

  for (const double slack : {1.1, 1.0, 0.85}) {
    const rm::ResourceManager manager(*setup.hybrid, {slack, 7.0, 1.0});
    const rm::Allocation allocation = manager.allocate(classes, pool);

    // Route the allocation into the cluster simulator (real clients =
    // scaled counts / slack).
    sim::trade::ClusterConfig cluster;
    for (const rm::PoolServer& server : pool)
      cluster.servers.push_back(bench::spec_for(server.arch));
    for (const rm::ServiceClassSpec& cls : classes) {
      sim::trade::ClusterClassSpec spec;
      spec.name = cls.name;
      spec.type = cls.is_buy ? sim::trade::UserType::kBuy
                             : sim::trade::UserType::kBrowse;
      spec.clients_per_server.resize(pool.size(), 0);
      for (std::size_t i = 0; i < pool.size(); ++i) {
        const auto it = allocation.per_server[i].find(cls.name);
        if (it != allocation.per_server[i].end())
          spec.clients_per_server[i] =
              static_cast<std::size_t>(std::llround(it->second / slack));
      }
      cluster.classes.push_back(spec);
    }
    cluster.warmup_s = 40.0;
    cluster.measure_s = 160.0;
    cluster.seed = 0xA110C;
    // The predictors are calibrated per application server with a DB sized
    // for ONE server; a 16-server tier needs a correspondingly provisioned
    // database (the paper's model-only evaluation never exercises this).
    // The shared-DB section below quantifies what happens without it.
    cluster.db_speed = 4.0;
    cluster.disk_speed = 4.0;
    // Four independent replications fanned out on the bench pool; the
    // merged result is bit-identical however many threads execute them.
    sim::ReplicationOptions reps;
    reps.replications = 4;
    reps.pool = &setup.pool;
    const auto replicated = sim::run_cluster_replications(cluster, reps);
    const auto& result = replicated.summary;

    std::cout << "-- slack " << util::fmt(slack, 2) << " (unallocated scaled: "
              << util::fmt(allocation.unallocated_scaled, 0)
              << ", db cpu util " << util::fmt(result.db_cpu_utilization, 2)
              << ", mean-RT ci95 +/- "
              << util::fmt(replicated.mean_rt_ci95_s * 1e3, 2) << " ms) --\n";
    util::Table table({"class", "rt_goal_ms", "achieved_mean_rt_ms",
                       "achieved_p90_ms", "meets_goal"});
    for (const rm::ServiceClassSpec& cls : classes) {
      const auto it = result.per_class.find(cls.name);
      const double rt = it == result.per_class.end() ? 0.0 : it->second.mean_rt_s;
      const double p90 = it == result.per_class.end() ? 0.0 : it->second.p90_rt_s;
      table.add_row({cls.name, util::fmt(cls.rt_goal_s * 1e3, 0),
                     util::fmt(rt * 1e3, 1), util::fmt(p90 * 1e3, 1),
                     rt <= cls.rt_goal_s ? "yes" : "NO"});
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "expected shape: all goals met at the zero-failure slack; "
               "shrinking slack overloads servers and the classes begin "
               "missing goals.\n";

  // ---- shared-DB finding -------------------------------------------------
  // Re-run the well-slacked allocation against a database sized for a
  // single application server: the whole tier funnels ~1000 req/s into it,
  // the DB CPU saturates and every class blows its goal — a multi-server
  // bottleneck that per-server calibrated models cannot predict (they
  // model the DB per app server, as the paper's system model does).
  {
    const rm::ResourceManager manager(*setup.hybrid, {1.1, 7.0, 1.0});
    const rm::Allocation allocation = manager.allocate(classes, pool);
    sim::trade::ClusterConfig cluster;
    for (const rm::PoolServer& server : pool)
      cluster.servers.push_back(bench::spec_for(server.arch));
    for (const rm::ServiceClassSpec& cls : classes) {
      sim::trade::ClusterClassSpec spec;
      spec.name = cls.name;
      spec.type = cls.is_buy ? sim::trade::UserType::kBuy
                             : sim::trade::UserType::kBrowse;
      spec.clients_per_server.resize(pool.size(), 0);
      for (std::size_t i = 0; i < pool.size(); ++i) {
        const auto it = allocation.per_server[i].find(cls.name);
        if (it != allocation.per_server[i].end())
          spec.clients_per_server[i] =
              static_cast<std::size_t>(std::llround(it->second / 1.1));
      }
      cluster.classes.push_back(spec);
    }
    cluster.warmup_s = 40.0;
    cluster.measure_s = 160.0;
    cluster.seed = 0xA110C;
    sim::ReplicationOptions reps;
    reps.replications = 4;
    reps.pool = &setup.pool;
    const auto result = sim::run_cluster_replications(cluster, reps).summary;
    std::cout << "\n-- same allocation, single-server-sized DB --\n"
              << "db cpu utilisation: "
              << util::fmt(result.db_cpu_utilization, 2)
              << "; browse_high mean RT: "
              << util::fmt(result.per_class.at("browse_high").mean_rt_s * 1e3, 0)
              << " ms (goal 300) — the tier-shared database becomes the "
                 "bottleneck no per-server model sees.\n";
  }
  return 0;
}
