// Failure injection and boundary stress across the stack: malformed
// inputs must fail loudly with typed exceptions, and extreme-but-legal
// configurations must stay numerically sane.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "core/errors.hpp"
#include "core/trade_model.hpp"
#include "hydra/relationships.hpp"
#include "lqn/parser.hpp"
#include "lqn/solver.hpp"
#include "sim/engine.hpp"
#include "sim/resources.hpp"
#include "sim/trade/testbed.hpp"

namespace epp {
namespace {

// ---------------------------------------------------------------------------
// Simulator extremes.
// ---------------------------------------------------------------------------

TEST(Robustness, ZeroThinkTimeClientsHammerTheServer) {
  sim::trade::TestbedConfig config =
      sim::trade::typical_workload(sim::trade::app_serv_f(), 60, 3);
  config.classes[0].mean_think_time_s = 0.0;
  config.warmup_s = 5.0;
  config.measure_s = 20.0;
  const auto r = sim::trade::run_testbed(config);
  // 60 clients with zero think time saturate the CPU completely.
  EXPECT_GT(r.app_cpu_utilization, 0.99);
  EXPECT_NEAR(r.throughput_rps, 186.0, 15.0);
}

TEST(Robustness, SingleClientSeesBareServiceTime) {
  sim::trade::TestbedConfig config =
      sim::trade::typical_workload(sim::trade::app_serv_f(), 1, 5);
  config.warmup_s = 10.0;
  config.measure_s = 300.0;
  const auto r = sim::trade::run_testbed(config);
  const auto agg = sim::trade::browse_aggregate();
  const double expected =
      agg.app_cpu_s + agg.mean_db_calls * (agg.db_cpu_per_call + agg.disk_per_call);
  EXPECT_NEAR(r.mean_rt_s, expected, 0.25 * expected);
}

TEST(Robustness, TinyConcurrencyCapsStillProgress) {
  sim::trade::ServerSpec server = sim::trade::app_serv_f();
  server.concurrency = 1;
  sim::trade::TestbedConfig config = sim::trade::typical_workload(server, 300, 7);
  config.db_concurrency = 1;
  config.warmup_s = 10.0;
  config.measure_s = 40.0;
  const auto r = sim::trade::run_testbed(config);
  EXPECT_GT(r.throughput_rps, 10.0);
  EXPECT_GT(r.mean_rt_s, 0.0);
}

TEST(Robustness, HugeSimulationStaysFiniteAndFast) {
  sim::trade::TestbedConfig config =
      sim::trade::typical_workload(sim::trade::app_serv_vf(), 8000, 11);
  config.warmup_s = 10.0;
  config.measure_s = 30.0;
  const auto r = sim::trade::run_testbed(config);
  EXPECT_TRUE(std::isfinite(r.mean_rt_s));
  EXPECT_NEAR(r.throughput_rps, 320.0, 30.0);
}

// ---------------------------------------------------------------------------
// Engine / resource misuse.
// ---------------------------------------------------------------------------

TEST(Robustness, EngineManyEqualTimeEvents) {
  sim::Engine engine;
  long count = 0;
  for (int i = 0; i < 100000; ++i)
    engine.schedule_at(1.0, [&count] { ++count; });
  engine.run_all();
  EXPECT_EQ(count, 100000);
}

TEST(Robustness, PsResourceManyConcurrentJobs) {
  sim::Engine engine;
  sim::PsResource cpu(engine, 1.0);
  long done = 0;
  for (int i = 0; i < 5000; ++i) cpu.add_job(0.001, [&done] { ++done; });
  engine.run_all();
  EXPECT_EQ(done, 5000);
  // All jobs shared the CPU: total time = total demand.
  EXPECT_NEAR(engine.now(), 5.0, 1e-6);
}

// ---------------------------------------------------------------------------
// Solver extremes.
// ---------------------------------------------------------------------------

core::TradeCalibration cal() {
  core::TradeCalibration c;
  c.browse = {0.005376, 0.00083, 0.00040, 1.14};
  c.buy = {0.010455, 0.00161, 0.00050, 2.0};
  return c;
}

TEST(Robustness, SolverEnormousPopulation) {
  const auto model =
      core::build_trade_lqn(cal(), core::arch_f(), {1e6, 0.0, 7.0});
  const auto r = lqn::LayeredSolver().solve(model);
  EXPECT_TRUE(std::isfinite(r.response_time_s("browse_clients")));
  // Deep saturation: R ~= N/Xmax - Z.
  EXPECT_NEAR(r.response_time_s("browse_clients"), 1e6 / 186.0 - 7.0,
              0.02 * (1e6 / 186.0));
}

TEST(Robustness, SolverFractionalPopulation) {
  const auto model =
      core::build_trade_lqn(cal(), core::arch_f(), {0.5, 0.0, 7.0});
  const auto r = lqn::LayeredSolver().solve(model);
  EXPECT_GT(r.response_time_s("browse_clients"), 0.0);
  EXPECT_LT(r.response_time_s("browse_clients"), 0.05);
}

TEST(Robustness, SolverZeroDemandEntries) {
  lqn::Model model;
  const auto box = model.add_processor({"box", lqn::Scheduling::kDelay, 1.0, 1});
  const auto cpu = model.add_processor({"cpu", lqn::Scheduling::kProcessorSharing, 1.0, 1});
  const auto clients =
      model.add_task(lqn::make_closed_client_task("clients", box, 10.0, 1.0));
  const auto server = model.add_task(lqn::make_server_task("server", cpu));
  const auto cycle = model.add_entry({"cycle", clients, 0.0, {}});
  const auto serve = model.add_entry({"serve", server, 0.0, {}});
  model.add_call(cycle, serve, 1.0);
  const auto r = lqn::LayeredSolver().solve(model);
  EXPECT_NEAR(r.response_time_s("clients"), 0.0, 1e-9);
  EXPECT_NEAR(r.throughput_rps("clients"), 10.0, 1e-6);
}

TEST(Robustness, ParserRejectsGarbageGracefully) {
  for (const char* text :
       {"processor", "task t", "entry e", "call a", "call a b",
        "processor p ps speed=", "processor p ps =1",
        "task t processor=p population=abc"}) {
    EXPECT_THROW((void)lqn::parse_model(text), std::invalid_argument) << text;
  }
}

TEST(Robustness, ParserHandlesLongInput) {
  std::string text = "processor cpu ps\n";
  text += "processor box delay\n";
  text += "task clients ref processor=box population=5 think=1\n";
  text += "entry cycle task=clients\n";
  for (int i = 0; i < 500; ++i) {
    const std::string n = std::to_string(i);
    text += "task t" + n + " processor=cpu\n";
    text += "entry e" + n + " task=t" + n + " demand=0.0001\n";
    text += "call cycle e" + n + " 0.01\n";
  }
  const lqn::Model model = lqn::parse_model(text);
  EXPECT_NO_THROW(model.validate());
  const auto r = lqn::LayeredSolver().solve(model);
  EXPECT_TRUE(r.converged);
}

// ---------------------------------------------------------------------------
// Workload validation at the service boundary.
// ---------------------------------------------------------------------------

TEST(Robustness, WorkloadValidationRejectsMalformedSpecs) {
  const auto invalid = [](core::WorkloadSpec w) {
    EXPECT_THROW(core::validate_workload(w), core::InvalidWorkloadError);
  };
  core::WorkloadSpec w;

  w.browse_clients = -1.0;
  invalid(w);
  w.browse_clients = std::nan("");
  invalid(w);
  w.browse_clients = std::numeric_limits<double>::infinity();
  invalid(w);

  w = {};
  w.buy_clients = -0.5;
  invalid(w);
  w.buy_clients = -std::numeric_limits<double>::infinity();
  invalid(w);

  w = {};
  w.browse_clients = 100.0;
  w.think_time_s = -7.0;
  invalid(w);
  w.think_time_s = std::nan("");
  invalid(w);
}

TEST(Robustness, WorkloadValidationAcceptsBoundaryValues) {
  core::WorkloadSpec empty;  // zero clients is a legal (trivial) workload
  EXPECT_NO_THROW(core::validate_workload(empty));

  core::WorkloadSpec zero_think;
  zero_think.browse_clients = 50.0;
  zero_think.think_time_s = 0.0;
  EXPECT_NO_THROW(core::validate_workload(zero_think));

  core::WorkloadSpec all_buy;
  all_buy.buy_clients = 10.0;
  EXPECT_NO_THROW(core::validate_workload(all_buy));
  EXPECT_DOUBLE_EQ(all_buy.buy_fraction(), 1.0);
}

TEST(Robustness, WorkloadValidationErrorNamesTheOffendingField) {
  core::WorkloadSpec w;
  w.buy_clients = -2.0;
  try {
    core::validate_workload(w);
    FAIL() << "negative buy_clients accepted";
  } catch (const core::InvalidWorkloadError& error) {
    EXPECT_NE(std::string(error.what()).find("buy_clients"),
              std::string::npos)
        << error.what();
  }
}

// ---------------------------------------------------------------------------
// Historical method numerics.
// ---------------------------------------------------------------------------

TEST(Robustness, Relationship1NoisyFlatLowerDataClamped) {
  // A lower trend that comes out flat/decreasing from noise must still
  // produce a monotone (clamped) prediction curve.
  const std::vector<hydra::DataPoint> lower{{100.0, 0.0102, 50},
                                            {400.0, 0.0100, 50}};
  const std::vector<hydra::DataPoint> upper{{1500.0, 1.0, 50},
                                            {2000.0, 3.5, 50}};
  const hydra::Relationship1 rel =
      hydra::fit_relationship1(lower, upper, 186.0, 0.14);
  double prev = 0.0;
  for (double n = 0.0; n < 2500.0; n += 50.0) {
    const double rt = rel.predict_metric(n);
    EXPECT_GE(rt, prev - 1e-9) << n;
    prev = rt;
  }
}

TEST(Robustness, Relationship1RejectsDecreasingUpperTrend) {
  const std::vector<hydra::DataPoint> lower{{100.0, 0.01, 50},
                                            {400.0, 0.02, 50}};
  const std::vector<hydra::DataPoint> upper{{1500.0, 3.5, 50},
                                            {2000.0, 1.0, 50}};
  EXPECT_THROW(hydra::fit_relationship1(lower, upper, 186.0, 0.14),
               std::invalid_argument);
}

}  // namespace
}  // namespace epp
