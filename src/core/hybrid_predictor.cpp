#include "core/hybrid_predictor.hpp"

#include <cmath>
#include <vector>

#include "hydra/relationships.hpp"
#include "util/timer.hpp"

namespace epp::core {

HybridPredictor::HybridPredictor(TradeCalibration calibration,
                                 double think_time_s,
                                 lqn::SolverOptions solver_options)
    : lqn_(calibration, solver_options), think_time_s_(think_time_s) {}

void HybridPredictor::register_server(const ServerArch& server) {
  lqn_.register_server(server);
}

std::string HybridPredictor::key(const std::string& server,
                                 double buy_fraction) {
  // Bucket the mix to whole buy-percentage points so nearby queries share
  // one calibration.
  const int bucket = static_cast<int>(std::lround(buy_fraction * 100.0));
  return server + "@buy" + std::to_string(bucket);
}

const hydra::Relationship1& HybridPredictor::ensure_calibrated(
    const std::string& server, double buy_fraction) const {
  const std::string k = key(server, buy_fraction);
  const std::lock_guard lock(mutex_);
  const auto it = fits_.find(k);
  if (it != fits_.end()) return it->second;

  const util::Timer timer;
  // Gradient m from a light-load LQN solve: X = N / (Z + R_light).
  const double n_light = 10.0;
  const hydra::DataPoint light =
      lqn_.pseudo_point(server, n_light, buy_fraction, think_time_s_);
  const double gradient = 1.0 / (think_time_s_ + light.metric_s);
  // Max throughput from the LQN bottleneck bound locates the knee.
  const double max_tput = lqn_.predict_max_throughput_rps(server, buy_fraction);
  const double n_star = max_tput / gradient;

  std::vector<hydra::DataPoint> lower, upper;
  for (const double fraction : kLowerFractions)
    lower.push_back(lqn_.pseudo_point(server, fraction * n_star, buy_fraction,
                                      think_time_s_));
  for (const double fraction : kUpperFractions)
    upper.push_back(lqn_.pseudo_point(server, fraction * n_star, buy_fraction,
                                      think_time_s_));
  const hydra::Relationship1 fit =
      hydra::fit_relationship1(lower, upper, max_tput, gradient);
  startup_delay_[server] += timer.elapsed_seconds();
  return fits_.emplace(k, fit).first->second;
}

double HybridPredictor::predict_mean_rt_s(const std::string& server,
                                          const WorkloadSpec& workload) const {
  return ensure_calibrated(server, workload.buy_fraction())
      .predict_metric(workload.total_clients());
}

double HybridPredictor::predict_throughput_rps(
    const std::string& server, const WorkloadSpec& workload) const {
  return ensure_calibrated(server, workload.buy_fraction())
      .predict_throughput(workload.total_clients());
}

double HybridPredictor::predict_max_throughput_rps(const std::string& server,
                                                   double buy_fraction) const {
  return ensure_calibrated(server, buy_fraction).max_throughput_rps;
}

bool HybridPredictor::predicts_saturated(const std::string& server,
                                         const WorkloadSpec& workload) const {
  const hydra::Relationship1& rel =
      ensure_calibrated(server, workload.buy_fraction());
  return workload.total_clients() >= rel.clients_at_max_throughput();
}

CapacityResult HybridPredictor::max_clients_for_goal(
    const std::string& server, double goal_s, double buy_fraction,
    double /*think_time_s*/) const {
  CapacityResult result;
  result.prediction_evaluations = 1;  // closed-form once calibrated
  result.max_clients =
      ensure_calibrated(server, buy_fraction).clients_for_metric(goal_s);
  return result;
}

std::size_t HybridPredictor::calibrations() const {
  const std::lock_guard lock(mutex_);
  return fits_.size();
}

double HybridPredictor::startup_delay_s(const std::string& server) const {
  const std::lock_guard lock(mutex_);
  const auto it = startup_delay_.find(server);
  return it == startup_delay_.end() ? 0.0 : it->second;
}

}  // namespace epp::core
