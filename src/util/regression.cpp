#include "util/regression.hpp"

#include <cmath>
#include <stdexcept>

namespace epp::util {
namespace {

struct OlsResult {
  double slope, intercept, r_squared;
};

OlsResult ols(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size())
    throw std::invalid_argument("fit: x/y size mismatch");
  const std::size_t n = x.size();
  if (n < 2) throw std::invalid_argument("fit: need at least two points");
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) throw std::invalid_argument("fit: x values are constant");
  const double slope = sxy / sxx;
  const double intercept = my - slope * mx;
  double r2 = 1.0;
  if (syy > 0.0) {
    double ss_res = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double resid = y[i] - (slope * x[i] + intercept);
      ss_res += resid * resid;
    }
    r2 = 1.0 - ss_res / syy;
  }
  return {slope, intercept, r2};
}

}  // namespace

double LinearFit::solve_for_x(double y) const {
  if (slope == 0.0) throw std::domain_error("LinearFit: zero slope");
  return (y - intercept) / slope;
}

double ExponentialFit::operator()(double x) const noexcept {
  return coeff * std::exp(rate * x);
}

double ExponentialFit::solve_for_x(double y) const {
  if (coeff <= 0.0 || rate == 0.0 || y <= 0.0)
    throw std::domain_error("ExponentialFit: not invertible here");
  return std::log(y / coeff) / rate;
}

double PowerFit::operator()(double x) const noexcept {
  return coeff * std::pow(x, exponent);
}

LinearFit fit_linear(std::span<const double> x, std::span<const double> y) {
  const OlsResult r = ols(x, y);
  return {r.slope, r.intercept, r.r_squared};
}

ExponentialFit fit_exponential(std::span<const double> x,
                               std::span<const double> y) {
  std::vector<double> logy(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y[i] <= 0.0)
      throw std::invalid_argument("fit_exponential: y must be positive");
    logy[i] = std::log(y[i]);
  }
  const OlsResult r = ols(x, logy);
  return {std::exp(r.intercept), r.slope, r.r_squared};
}

PowerFit fit_power(std::span<const double> x, std::span<const double> y) {
  std::vector<double> logx(x.size()), logy(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] <= 0.0 || y[i] <= 0.0)
      throw std::invalid_argument("fit_power: x and y must be positive");
    logx[i] = std::log(x[i]);
    logy[i] = std::log(y[i]);
  }
  const OlsResult r = ols(logx, logy);
  return {std::exp(r.intercept), r.slope, r.r_squared};
}

}  // namespace epp::util
