// Section 7.1 — response-time distribution predictions: converting each
// method's mean prediction into a 90th-percentile prediction through the
// regime distributions (exponential before max throughput,
// double-exponential after, with a scale b calibrated once on an
// established server; 204.1 ms in the paper).
//
// Paper accuracies (p = 90%): historical 80%/88% (new/established), LQN
// 77%/69%, hybrid 77%/70% — each within ~4.6% of the corresponding mean
// response time accuracy.
#include <iostream>

#include "common.hpp"
#include "dist/rtdist.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace epp;
  std::cout << "== Section 7.1: 90th-percentile response time predictions "
               "==\n\n";

  bench::Setup setup;

  // Calibrate the regime distributions once on the established AppServF:
  // one pre-saturation and one post-saturation run's samples give (a) the
  // double-exponential scale b of the paper's equation 7 and (b) the
  // measured p90-vs-mean shapes the paper extrapolates across servers.
  auto sampled_run = [&](double knee_fraction, std::uint64_t seed) {
    sim::trade::TestbedConfig config = sim::trade::typical_workload(
        sim::trade::app_serv_f(),
        static_cast<std::size_t>(knee_fraction * setup.n_star("AppServF")),
        seed);
    config.warmup_s = 40.0;
    config.measure_s = 160.0;
    return sim::trade::run_testbed(config, /*keep_samples=*/true);
  };
  const auto pre_run = sampled_run(0.5, 0xA11CE);
  const auto post_run = sampled_run(1.4, 0xB0B);
  const double scale_b =
      dist::calibrate_scale_b(post_run.rt_samples_s, post_run.mean_rt_s);
  const auto extrapolator = dist::PercentileExtrapolator::calibrate(
      0.90, pre_run.rt_samples_s, post_run.rt_samples_s);
  std::cout << "calibrated double-exponential scale b = "
            << util::fmt(scale_b * 1e3, 1)
            << " ms (paper's testbed: 204.1 ms)\n"
            << "measured shape: pre-saturation p90/mean = "
            << util::fmt(extrapolator.pre_ratio(), 2)
            << ", post-saturation p90-mean = "
            << util::fmt(extrapolator.post_offset_s() * 1e3, 1) << " ms\n\n";

  const std::vector<double> fractions{0.3, 0.5, 0.65, 1.3, 1.8};
  util::Table table({"method", "server", "p90_accuracy_pct",
                     "analytic_eq6_eq7_pct", "mean_rt_accuracy_pct",
                     "delta_pct"});
  for (const std::string& server : bench::server_names()) {
    const auto measured = setup.validation_sweep(server, fractions);
    for (const core::Predictor* predictor :
         {static_cast<const core::Predictor*>(setup.historical.get()),
          static_cast<const core::Predictor*>(setup.lqn.get()),
          static_cast<const core::Predictor*>(setup.hybrid.get())}) {
      std::vector<double> p90_pred, p90_analytic, p90_meas;
      for (const core::MeasuredPoint& p : measured) {
        core::WorkloadSpec w;
        w.browse_clients = p.clients;
        const double mean = predictor->predict_mean_rt_s(server, w);
        const bool post = predictor->predicts_saturated(server, w);
        p90_pred.push_back(extrapolator.predict(mean, post));
        p90_analytic.push_back(
            predictor->predict_percentile_rt_s(server, w, 0.90, scale_b));
        p90_meas.push_back(p.p90_rt_s);
      }
      const double p90_acc = util::prediction_accuracy_percent(p90_pred, p90_meas);
      const double analytic_acc =
          util::prediction_accuracy_percent(p90_analytic, p90_meas);
      const double rt_acc =
          core::accuracy_against(*predictor, server, measured).mean_rt_pct;
      table.add_row({predictor->name(), server, util::fmt(p90_acc, 1),
                     util::fmt(analytic_acc, 1), util::fmt(rt_acc, 1),
                     util::fmt(p90_acc - rt_acc, 1)});
    }
  }
  table.print(std::cout);

  // The historical method can also record p90 as a variable and predict it
  // *directly* (section 7.1's closing remark) — no extrapolation step.
  std::cout << "\n-- historical method, direct p90 model --\n";
  util::Table direct({"server", "direct_p90_accuracy_pct"});
  for (const std::string& server : bench::server_names()) {
    const auto measured = setup.validation_sweep(server, fractions);
    std::vector<double> pred, meas;
    for (const core::MeasuredPoint& p : measured) {
      pred.push_back(setup.historical->predict_p90_direct(server, p.clients));
      meas.push_back(p.p90_rt_s);
    }
    direct.add_row({server,
                    util::fmt(util::prediction_accuracy_percent(pred, meas), 1)});
  }
  direct.print(std::cout);

  std::cout << "\nexpected shape: with the measured-shape extrapolation the "
               "percentile accuracy stays within a few points of the mean-RT "
               "accuracy (the paper's <= 4.6% gap); the pure analytic "
               "exponential/double-exponential forms (equations 6/7) are "
               "rougher on this testbed.\n";
  return 0;
}
