// Corpus: EPP-DET-001 — ambient entropy flowing into seeds. Two
// defects: a raw std::random_device read, and a wall-clock value that
// taints a variable and then reaches a util::Rng constructor.
#include <cstdint>
#include <ctime>
#include <random>

#include "util/rng.hpp"

namespace lint_corpus {

inline std::uint64_t entropy_seeded_draw() {
  std::random_device device;  // hardware entropy: unreproducible
  const std::uint64_t wall = static_cast<std::uint64_t>(std::time(nullptr));
  epp::util::Rng rng(wall, 0);  // seed tainted by time()
  return rng() ^ device();
}

}  // namespace lint_corpus
