// Corpus: a real finding silenced by an inline suppression — this file
// must produce no diagnostics when suppressions are honored, and one
// EPP-CONC-006 under --no-suppress.
#include <thread>

namespace lint_corpus {

inline void sanctioned_detach() {
  std::thread watchdog([] {});
  // epp-lint: ignore(EPP-CONC-006) the watchdog must outlive its creator
  watchdog.detach();
}

}  // namespace lint_corpus
