// Discrete-event simulation engine.
//
// A single-threaded event heap: deterministic given a fixed seed, cheap to
// replicate, so the parallelism in EPP lives one level up (independent
// replications and parameter sweeps on util::ThreadPool), which is the
// standard way to scale stochastic discrete-event studies.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

namespace epp::sim {

class Engine {
 public:
  using Callback = std::function<void()>;

  struct Event {
    double time = 0.0;
    std::uint64_t seq = 0;  // tie-break so equal-time events run FIFO
    Callback fn;
    bool canceled = false;
  };
  using Handle = std::shared_ptr<Event>;

  double now() const noexcept { return now_; }
  std::uint64_t events_processed() const noexcept { return processed_; }

  /// Schedule at an absolute time >= now(). Returns a handle usable with
  /// cancel(); the handle may be discarded if cancellation is not needed.
  Handle schedule_at(double time, Callback fn);
  Handle schedule_after(double delay, Callback fn);

  /// Cancel a pending event (no-op if already fired or canceled).
  static void cancel(const Handle& handle) noexcept {
    if (handle) handle->canceled = true;
  }

  /// Run the next pending event. Returns false when the heap is empty.
  bool step();

  /// Process every event with time <= end_time, then advance now() to it.
  void run_until(double end_time);

  /// Drain the entire event heap (useful for terminating workloads).
  void run_all();

 private:
  struct Later {
    bool operator()(const Handle& a, const Handle& b) const noexcept {
      if (a->time != b->time) return a->time > b->time;
      return a->seq > b->seq;
    }
  };

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Handle, std::vector<Handle>, Later> heap_;
};

}  // namespace epp::sim
