// Figure 4 — heterogeneous workload mean response time predictions for
// the new server architecture (AppServS) at different buy percentages.
//
// Relationship 3 is calibrated from the established server's measured max
// throughputs at 0% and 25% buy (paper: 189 and 158 req/s on AppServF) and
// scaled to the new server; the historical curve then comes from
// relationship 2 at the scaled max throughput, the LQN curve from solving
// the mixed-class model directly.
//
// Expected shape: good prediction of the curve shapes; the scalability
// lines appear almost linear before max throughput (small lambdaL), and a
// higher buy percentage shifts the knee left (lower max throughput).
#include <iostream>

#include "common.hpp"
#include "util/table.hpp"

int main() {
  using namespace epp;
  std::cout << "== Figure 4: heterogeneous-workload mean RT predictions, "
               "new server (AppServS) ==\n\n";

  bench::Setup setup(/*measure_mix=*/true);
  std::cout << "relationship-3 calibration on AppServF: max throughput "
            << util::fmt(setup.max_f, 1) << " req/s at 0% buy, "
            << util::fmt(setup.max_f_buy25, 1) << " at 25% buy (paper: 189 / 158)\n\n";

  for (const double buy_fraction : {0.0, 0.25}) {
    std::cout << "-- " << 100.0 * buy_fraction << "% buy clients --\n";
    const double predicted_max =
        setup.historical->predict_max_throughput_rps("AppServS", buy_fraction);
    const double n_star = predicted_max / setup.gradient_m;
    std::vector<double> fractions{0.3, 0.6, 0.9, 1.2, 1.6, 2.0};
    std::vector<double> clients;
    for (double f : fractions) clients.push_back(f * n_star);
    core::SweepOptions options;
    options.buy_client_fraction = buy_fraction;
    options.seed = 0xFEED;
    const auto measured = core::measure_sweep(
        bench::spec_for("AppServS"), clients, options, &setup.pool);

    util::Table table({"clients", "measured_rt_ms", "historical_rt_ms",
                       "lqn_rt_ms", "hybrid_rt_ms"});
    for (const core::MeasuredPoint& p : measured) {
      core::WorkloadSpec w;
      w.buy_clients = p.clients * buy_fraction;
      w.browse_clients = p.clients - w.buy_clients;
      table.add_row(
          {util::fmt(p.clients, 0), util::fmt(p.mean_rt_s * 1e3, 1),
           util::fmt(setup.historical->predict_mean_rt_s("AppServS", w) * 1e3, 1),
           util::fmt(setup.lqn->predict_mean_rt_s("AppServS", w) * 1e3, 1),
           util::fmt(setup.hybrid->predict_mean_rt_s("AppServS", w) * 1e3, 1)});
    }
    table.print(std::cout);
    std::cout << "predicted max throughput at this mix: historical "
              << util::fmt(predicted_max, 1) << " req/s, LQN "
              << util::fmt(setup.lqn->predict_max_throughput_rps("AppServS",
                                                                 buy_fraction),
                           1)
              << " req/s, measured "
              << util::fmt(sim::trade::measure_max_throughput(
                               bench::spec_for("AppServS"), buy_fraction, 21),
                           1)
              << " req/s\n\n";
  }
  return 0;
}
