// Corpus: EPP-DET-003 — hash-order iteration emitting output. Two runs
// of the same binary print the same names in different orders, so any
// byte-compare of the artifact trips.
#include <iostream>
#include <string>
#include <unordered_set>

namespace lint_corpus {

inline void dump_active(const std::unordered_set<std::string>& active) {
  for (const auto& name : active) {
    std::cout << name << "\n";
  }
}

}  // namespace lint_corpus
