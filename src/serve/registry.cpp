#include "serve/registry.hpp"

#include <exception>
#include <utility>

namespace epp::serve {

BundleRegistry::BundleRegistry(RegistryOptions options)
    : options_(std::move(options)) {
  // The chain-coverage rules must judge the candidate under the serving
  // configuration it will actually run with.
  options_.verify.resilience = options_.resilience;
}

PromotionResult BundleRegistry::promote(calib::CalibrationBundle bundle,
                                        const std::string& source,
                                        const calib::BundleParseInfo* info) {
  PromotionResult result;
  if (options_.gate) {
    lint::verify_bundle(bundle, source, info, options_.verify,
                        result.findings);
    if (result.findings.has_errors()) {
      const util::MutexLock lock(mutex_);
      ++counters_.rejections;
      result.active_version = active_ != nullptr ? active_->version : 0;
      result.message =
          "candidate '" + source + "' rejected by the EPP-SEM gate (" +
          std::to_string(result.findings.count(lint::Severity::kError)) +
          " error(s)); version " + std::to_string(result.active_version) +
          " keeps serving";
      return result;
    }
  }

  auto candidate = std::make_shared<ServingVersion>();
  candidate->source = source;
  candidate->bundle = std::move(bundle);
  try {
    candidate->predictors =
        calib::make_predictors(candidate->bundle, options_.batch);
    candidate->resilient = std::make_unique<svc::ResilientPredictor>(
        *candidate->predictors.batch, options_.resilience);
  } catch (const std::exception& error) {
    const util::MutexLock lock(mutex_);
    ++counters_.rejections;
    result.active_version = active_ != nullptr ? active_->version : 0;
    result.message = "candidate '" + source +
                     "' failed predictor construction: " + error.what();
    return result;
  }

  const util::MutexLock lock(mutex_);
  candidate->version = next_version_++;
  if (active_ != nullptr) {
    history_.push_back(active_);
    while (history_.size() > options_.keep_history)
      history_.erase(history_.begin());
  }
  active_ = std::move(candidate);
  ++counters_.promotions;
  result.accepted = true;
  result.active_version = active_->version;
  result.message = "promoted '" + source + "' as version " +
                   std::to_string(active_->version);
  return result;
}

bool BundleRegistry::rollback() {
  const util::MutexLock lock(mutex_);
  if (history_.empty()) return false;
  active_ = std::move(history_.back());
  history_.pop_back();
  ++counters_.rollbacks;
  return true;
}

std::shared_ptr<const ServingVersion> BundleRegistry::active() const {
  const util::MutexLock lock(mutex_);
  return active_;
}

std::uint64_t BundleRegistry::active_version() const {
  const util::MutexLock lock(mutex_);
  return active_ != nullptr ? active_->version : 0;
}

RegistryStats BundleRegistry::stats() const {
  const util::MutexLock lock(mutex_);
  RegistryStats stats;
  stats.promotions = counters_.promotions;
  stats.rejections = counters_.rejections;
  stats.rollbacks = counters_.rollbacks;
  stats.active_version = active_ != nullptr ? active_->version : 0;
  return stats;
}

}  // namespace epp::serve
