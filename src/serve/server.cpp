#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

#include "util/timer.hpp"

namespace epp::serve {
namespace {

net::ResponseMessage error_response(std::uint64_t id, svc::ErrorCode code,
                                    std::string detail) {
  net::ResponseMessage response;
  response.id = id;
  response.status = 1;
  response.error_code = static_cast<std::uint8_t>(code);
  response.detail = std::move(detail);
  return response;
}

/// Bytes per slow-loris chunk: small enough that a typical ~70-byte
/// response frame dribbles out over several paced sends.
constexpr std::size_t kDribbleChunk = 16;

}  // namespace

PredictionServer::PredictionServer(BundleRegistry& registry,
                                   ServerOptions options)
    : registry_(registry),
      options_(std::move(options)),
      drift_(options_.drift) {
  if (options_.workers == 0)
    throw std::invalid_argument("PredictionServer: workers must be >= 1");
  if (options_.queue_capacity == 0)
    throw std::invalid_argument(
        "PredictionServer: queue_capacity must be >= 1");
}

PredictionServer::~PredictionServer() {
  if (started_.load(std::memory_order_acquire)) stop();
}

void PredictionServer::start() {
  if (started_.exchange(true, std::memory_order_acq_rel))
    throw std::logic_error("PredictionServer: started twice");
  listener_ = std::make_unique<net::Listener>(options_.host, options_.port);
  port_ = listener_->port();
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void PredictionServer::request_stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  if (listener_ != nullptr) listener_->interrupt();
  {
    // Unblock every reader parked in recv: half-close the read sides.
    // Write sides stay open so drained responses still flush.
    const std::lock_guard lock(sessions_mutex_);
    for (SessionHandle& handle : session_threads_)
      if (const SessionPtr session = handle.session.lock())
        session->socket.shutdown_read();
  }
  queue_cv_.notify_all();
}

void PredictionServer::wait() {
  // lifecycle_mutex_ exists precisely to park concurrent wait()/stop()
  // callers while the first one joins; blocking under it is the point.
  const std::lock_guard lifecycle(lifecycle_mutex_);
  if (joined_.load(std::memory_order_acquire)) return;
  // epp-lint: ignore(EPP-CONC-003) serialized join is this lock's purpose
  if (accept_thread_.joinable()) accept_thread_.join();
  reap_sessions(/*all=*/true);
  // Readers are gone: nothing can be admitted any more. Let the workers
  // finish what was queued, then stop.
  workers_stop_.store(true, std::memory_order_release);
  queue_cv_.notify_all();
  for (std::thread& worker : workers_)
    // epp-lint: ignore(EPP-CONC-003) serialized join is this lock's purpose
    if (worker.joinable()) worker.join();
  joined_.store(true, std::memory_order_release);
}

void PredictionServer::stop() {
  request_stop();
  wait();
}

void PredictionServer::accept_loop() {
  while (!stopping()) {
    reap_sessions(/*all=*/false);
    std::optional<net::Socket> accepted;
    try {
      accepted = listener_->accept();
    } catch (const net::SocketError&) {
      break;  // listener died; shut the server down
    }
    if (!accepted) break;  // interrupted
    if (options_.chaos != nullptr && options_.chaos->reset_on_accept()) {
      accepted->reset();
      continue;  // the destructor's close fires the RST
    }
    if (open_sessions_.load(std::memory_order_acquire) >=
        options_.max_connections) {
      counters_.connections_rejected.fetch_add(1, std::memory_order_relaxed);
      continue;  // socket closes as `accepted` goes out of scope
    }
    counters_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    auto session = std::make_shared<Session>();
    session->socket = std::move(*accepted);
    auto done = std::make_shared<std::atomic<bool>>(false);
    open_sessions_.fetch_add(1, std::memory_order_acq_rel);
    std::thread reader([this, session, done] {
      session_loop(session);
      open_sessions_.fetch_sub(1, std::memory_order_acq_rel);
      done->store(true, std::memory_order_release);
    });
    const std::lock_guard lock(sessions_mutex_);
    session_threads_.push_back(
        SessionHandle{std::move(reader), std::move(done), session});
  }
}

void PredictionServer::reap_sessions(bool all) {
  std::list<SessionHandle> to_join;
  {
    const std::lock_guard lock(sessions_mutex_);
    for (auto it = session_threads_.begin(); it != session_threads_.end();) {
      if (all || it->done->load(std::memory_order_acquire)) {
        to_join.splice(to_join.end(), session_threads_, it++);
      } else {
        ++it;
      }
    }
  }
  for (SessionHandle& handle : to_join)
    if (handle.thread.joinable()) handle.thread.join();
}

void PredictionServer::session_loop(SessionPtr session) {
  if (options_.chaos != nullptr) {
    // Accept-time stall: the session exists but its first read waits, as
    // it would behind a loaded accept queue.
    const double delay = options_.chaos->accept_delay_s();
    if (delay > 0.0)
      std::this_thread::sleep_for(std::chrono::duration<double>(delay));
  }
  if (options_.idle_timeout_s > 0.0)
    session->socket.set_recv_timeout(options_.idle_timeout_s);

  std::vector<std::uint8_t> payload;
  while (!stopping()) {
    bool got = false;
    try {
      got = net::read_frame(session->socket, payload);
    } catch (const net::SocketTimeout&) {
      counters_.idle_closes.fetch_add(1, std::memory_order_relaxed);
      break;  // silent client; reclaim the reader thread
    } catch (const std::exception&) {
      counters_.bad_frames.fetch_add(1, std::memory_order_relaxed);
      break;  // framing is lost; the only safe move is to close
    }
    if (!got) break;  // peer closed
    counters_.frames_received.fetch_add(1, std::memory_order_relaxed);

    net::RequestMessage request;
    try {
      request = net::decode_request(payload);
    } catch (const net::FrameError& error) {
      counters_.bad_frames.fetch_add(1, std::memory_order_relaxed);
      write_response(*session, error_response(0, svc::ErrorCode::kInternal,
                                              error.what()));
      break;  // desynchronized stream; close
    }

    if (request.kind != net::MessageKind::kPredict &&
        request.kind != net::MessageKind::kObserve) {
      handle_control(*session, request);
      continue;
    }

    if (stopping()) {
      write_response(*session,
                     error_response(request.id, svc::ErrorCode::kOverloaded,
                                    "server is draining"));
      break;
    }

    // Version pinning happens here, at admission: this request will be
    // served by exactly this registry version, even if a promotion
    // lands while it waits in the queue.
    std::shared_ptr<const ServingVersion> pinned = registry_.active();
    if (pinned == nullptr) {
      write_response(*session,
                     error_response(request.id, svc::ErrorCode::kNotCalibrated,
                                    "no active bundle version"));
      continue;
    }

    // Admission control: bounded queue, shed-on-full with a typed error
    // — overload turns into fast failures, never an unbounded backlog.
    bool admitted = false;
    {
      const std::lock_guard lock(queue_mutex_);
      if (queue_.size() < options_.queue_capacity) {
        queue_.push_back(
            WorkItem{session, std::move(request), std::move(pinned)});
        const std::size_t depth = queue_.size();
        std::size_t peak = counters_.queue_peak.load(std::memory_order_relaxed);
        while (depth > peak &&
               !counters_.queue_peak.compare_exchange_weak(
                   peak, depth, std::memory_order_relaxed)) {
        }
        admitted = true;
      }
    }
    if (admitted) {
      counters_.requests_enqueued.fetch_add(1, std::memory_order_relaxed);
      queue_cv_.notify_one();
    } else {
      counters_.requests_shed.fetch_add(1, std::memory_order_relaxed);
      write_response(*session,
                     error_response(request.id, svc::ErrorCode::kOverloaded,
                                    "dispatch queue full (" +
                                        std::to_string(options_.queue_capacity) +
                                        " deep); request shed"));
    }
  }
}

void PredictionServer::worker_loop() {
  for (;;) {
    WorkItem item;
    {
      std::unique_lock lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return !queue_.empty() ||
               workers_stop_.load(std::memory_order_acquire);
      });
      if (queue_.empty()) {
        if (workers_stop_.load(std::memory_order_acquire)) return;
        continue;
      }
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    if (options_.worker_delay_s > 0.0)
      std::this_thread::sleep_for(
          std::chrono::duration<double>(options_.worker_delay_s));
    net::ResponseMessage response = evaluate(item.request, *item.pinned);
    if (item.request.kind == net::MessageKind::kObserve && response.ok()) {
      drift_track_version(item.pinned->version);
      drift_.observe(response.mean_rt_s, item.request.observed_rt_s);
    }
    response.health = static_cast<std::uint8_t>(drift_.state());
    write_response(*item.session, response);
    counters_.requests_served.fetch_add(1, std::memory_order_relaxed);
  }
}

net::ResponseMessage PredictionServer::evaluate(
    const net::RequestMessage& request, const ServingVersion& version) {
  if (request.method > static_cast<std::uint8_t>(svc::Method::kHybrid))
    return error_response(request.id, svc::ErrorCode::kInvalidWorkload,
                          "unknown method byte " +
                              std::to_string(request.method));
  svc::PredictionRequest prediction_request;
  prediction_request.method = static_cast<svc::Method>(request.method);
  prediction_request.server = request.server;
  prediction_request.workload.browse_clients = request.browse_clients;
  prediction_request.workload.buy_clients = request.buy_clients;
  prediction_request.workload.think_time_s = request.think_time_s;

  double deadline_s = request.deadline_ms / 1e3;
  if (options_.max_request_deadline_s > 0.0)
    deadline_s = std::min(deadline_s, options_.max_request_deadline_s);
  else
    deadline_s = 0.0;

  const util::Timer timer;
  const svc::Outcome outcome =
      version.resilient->predict_with_deadline(prediction_request, deadline_s);
  const double predictor_latency_s = timer.elapsed_seconds();

  net::ResponseMessage response;
  response.id = request.id;
  response.bundle_version = version.version;
  response.predictor_latency_s = predictor_latency_s;
  if (outcome.ok()) {
    const svc::ResilientResult& result = outcome.value();
    response.served_by = static_cast<std::uint8_t>(result.served_by);
    response.flags = static_cast<std::uint8_t>(
        (result.fallback ? net::kFlagFallback : 0) |
        (result.stale ? net::kFlagStale : 0) |
        (result.prediction.cached ? net::kFlagCached : 0));
    response.retries = static_cast<std::uint32_t>(result.retries);
    response.mean_rt_s = result.prediction.mean_rt_s;
    response.throughput_rps = result.prediction.throughput_rps;
  } else {
    response.status = 1;
    response.error_code = static_cast<std::uint8_t>(outcome.error().code);
    response.detail = outcome.error().detail;
  }
  return response;
}

void PredictionServer::drift_track_version(std::uint64_t version) {
  std::uint64_t seen = drift_version_.load(std::memory_order_acquire);
  while (seen != version)
    if (drift_version_.compare_exchange_weak(seen, version,
                                             std::memory_order_acq_rel)) {
      drift_.reset();  // new bundle: its error history starts clean
      return;
    }
}

void PredictionServer::handle_control(Session& session,
                                      const net::RequestMessage& request) {
  net::ResponseMessage response;
  response.id = request.id;
  response.bundle_version = registry_.active_version();
  response.health = static_cast<std::uint8_t>(drift_.state());
  switch (request.kind) {
    case net::MessageKind::kPing:
      break;  // an empty ok response is the pong
    case net::MessageKind::kStats: {
      const ServerStats server_stats = stats();
      const RegistryStats registry_stats = registry_.stats();
      const DriftSnapshot drift_stats = drift_.snapshot();
      std::ostringstream text;
      text << "connections_accepted=" << server_stats.connections_accepted
           << " requests_enqueued=" << server_stats.requests_enqueued
           << " requests_served=" << server_stats.requests_served
           << " requests_shed=" << server_stats.requests_shed
           << " queue_depth=" << server_stats.queue_depth
           << " queue_peak=" << server_stats.queue_peak
           << " open_sessions=" << server_stats.open_sessions
           << " idle_closes=" << server_stats.idle_closes
           << " bundle_version=" << registry_stats.active_version
           << " promotions=" << registry_stats.promotions
           << " rejections=" << registry_stats.rejections
           << " rollbacks=" << registry_stats.rollbacks
           << " health=" << health_state_name(drift_stats.state)
           << " drift_observations=" << drift_stats.observations
           << " drift_trips=" << drift_stats.trips;
      if (const auto active = registry_.active(); active != nullptr) {
        const svc::ResilienceStats resilience = active->resilient->stats();
        text << " served=" << resilience.served
             << " errors=" << resilience.errors
             << " fallbacks=" << resilience.fallbacks
             << " stale_serves=" << resilience.stale_serves
             << " stale_evictions=" << resilience.stale_evictions
             << " deadline_hits=" << resilience.deadline_hits
             << " breaker_opens=" << resilience.breaker_opens;
      }
      if (options_.chaos != nullptr) {
        const net::ChaosStats chaos = options_.chaos->stats();
        text << " chaos_accept_resets=" << chaos.accept_resets
             << " chaos_accept_delays=" << chaos.accept_delays
             << " chaos_write_resets=" << chaos.write_resets
             << " chaos_write_truncates=" << chaos.write_truncates
             << " chaos_dribbled_writes=" << chaos.dribbled_writes;
      }
      response.detail = text.str();
      break;
    }
    case net::MessageKind::kReload: {
      ReloadStatus reload;
      if (!options_.reload_handler) {
        reload.message = "reload unsupported: no reload handler configured";
      } else {
        try {
          reload = options_.reload_handler(request.server);
        } catch (const std::exception& error) {
          reload.ok = false;
          reload.message = error.what();
        }
      }
      if (reload.ok) {
        counters_.reloads_ok.fetch_add(1, std::memory_order_relaxed);
        // The promotion (or rollback) may have changed the active
        // version; the drift history belongs to the old one.
        drift_track_version(registry_.active_version());
      } else {
        counters_.reloads_failed.fetch_add(1, std::memory_order_relaxed);
        response.status = 1;
        response.error_code =
            static_cast<std::uint8_t>(svc::ErrorCode::kInternal);
      }
      response.bundle_version = registry_.active_version();
      response.detail = reload.message;
      break;
    }
    case net::MessageKind::kShutdown:
      response.detail = "draining";
      write_response(session, response);
      request_stop();
      return;
    case net::MessageKind::kPredict:
    case net::MessageKind::kObserve:
      return;  // unreachable; work frames never land here
  }
  write_response(session, response);
}

void PredictionServer::write_response(Session& session,
                                      const net::ResponseMessage& response) {
  if (session.dead.load(std::memory_order_acquire)) {
    counters_.responses_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::vector<std::uint8_t> payload = net::encode_response(response);
  const std::lock_guard lock(session.write_mutex);
  const net::ChaosPolicy* chaos = options_.chaos;
  bool wrote = false;
  try {
    const net::WriteFault fault = chaos != nullptr
                                      ? chaos->next_write_fault()
                                      : net::WriteFault::kNone;
    if (fault == net::WriteFault::kReset) {
      // Injected fault, not a peer failure: the session dies by design
      // and is not counted in responses_dropped (the chaos counters
      // record it).
      session.socket.reset();
      session.dead.store(true, std::memory_order_release);
      return;
    }
    if (fault == net::WriteFault::kTruncate) {
      const std::vector<std::uint8_t> wire = net::frame_wire(payload);
      (void)session.socket.send_all(wire.data(), wire.size() / 2);
      session.socket.reset();
      session.dead.store(true, std::memory_order_release);
      return;
    }
    if (chaos != nullptr && chaos->dribble_writes()) {
      const std::vector<std::uint8_t> wire = net::frame_wire(payload);
      wrote = true;
      for (std::size_t offset = 0; wrote && offset < wire.size();
           offset += kDribbleChunk) {
        const double pause = chaos->dribble_pause_s();
        if (pause > 0.0)
          // epp-lint: ignore(EPP-CONC-003) slow-loris chaos paces sends on purpose
          std::this_thread::sleep_for(std::chrono::duration<double>(pause));
        wrote = session.socket.send_all(
            wire.data() + offset, std::min(kDribbleChunk, wire.size() - offset));
      }
      if (wrote) chaos->count_dribbled_write();
    } else {
      wrote = net::write_frame(session.socket, payload);
    }
  } catch (const std::exception&) {
    wrote = false;
  }
  if (!wrote) {
    session.dead.store(true, std::memory_order_release);
    counters_.responses_dropped.fetch_add(1, std::memory_order_relaxed);
  }
}

ServerStats PredictionServer::stats() const {
  ServerStats stats;
  stats.connections_accepted =
      counters_.connections_accepted.load(std::memory_order_relaxed);
  stats.connections_rejected =
      counters_.connections_rejected.load(std::memory_order_relaxed);
  stats.frames_received =
      counters_.frames_received.load(std::memory_order_relaxed);
  stats.requests_enqueued =
      counters_.requests_enqueued.load(std::memory_order_relaxed);
  stats.requests_served =
      counters_.requests_served.load(std::memory_order_relaxed);
  stats.requests_shed =
      counters_.requests_shed.load(std::memory_order_relaxed);
  stats.bad_frames = counters_.bad_frames.load(std::memory_order_relaxed);
  stats.responses_dropped =
      counters_.responses_dropped.load(std::memory_order_relaxed);
  stats.idle_closes = counters_.idle_closes.load(std::memory_order_relaxed);
  stats.reloads_ok = counters_.reloads_ok.load(std::memory_order_relaxed);
  stats.reloads_failed =
      counters_.reloads_failed.load(std::memory_order_relaxed);
  {
    const std::lock_guard lock(queue_mutex_);
    stats.queue_depth = queue_.size();
  }
  stats.queue_peak = counters_.queue_peak.load(std::memory_order_relaxed);
  stats.open_sessions = open_sessions_.load(std::memory_order_acquire);
  return stats;
}

}  // namespace epp::serve
