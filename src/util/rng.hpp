// Deterministic random-number infrastructure for simulation experiments.
//
// Every stochastic component in EPP draws from an epp::util::Rng seeded from
// an explicit stream id, so experiments are reproducible and independent
// replications (run in parallel on the ThreadPool) use provably disjoint
// streams: stream ids are hashed through SplitMix64 into the 256-bit state
// of a xoshiro256** generator.
#pragma once

#include <cstdint>
#include <limits>

namespace epp::util {

/// SplitMix64 step: used both as a tiny standalone generator and as the
/// state initialiser recommended by the xoshiro authors.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator so it can also be
/// plugged into <random> distributions, though EPP ships its own samplers
/// for cross-platform determinism (libstdc++/libc++ distributions differ).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seed from a (seed, stream) pair; distinct streams are independent for
  /// all practical purposes because the full 256-bit state is derived by
  /// iterating SplitMix64 over the combined key.
  static constexpr std::uint64_t kDefaultSeed = 0x5EED0FACADEULL;

  explicit Rng(std::uint64_t seed = kDefaultSeed,
               std::uint64_t stream = 0) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept;

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [0, n) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t n) noexcept;
  /// Exponential variate with the given mean (mean <= 0 returns 0).
  double exponential(double mean) noexcept;
  /// Bulk sampler: fill dst[0..n) with iid exponential variates of the
  /// given mean. Equivalent to n calls of exponential() (same draws in
  /// the same order) but generates in blocks so the state updates and
  /// the log transform pipeline — the batched think-time path used when
  /// a simulation arms hundreds of thousands of client timers at once.
  void fill_exponential(double mean, double* dst, std::size_t n) noexcept;
  /// Bernoulli trial.
  bool bernoulli(double p) noexcept;
  /// Geometric number of trials >= 1 with success probability p; used for
  /// "buy users make on average 10 buy requests before logoff".
  std::uint64_t geometric_trials(double p) noexcept;

  /// Derive an independent child generator (e.g. one per simulated client).
  Rng spawn() noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace epp::util
