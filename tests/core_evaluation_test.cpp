#include "core/evaluation.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/thread_pool.hpp"

namespace epp::core {
namespace {

TEST(Evaluation, MeasureSweepReturnsOnePointPerLoad) {
  const auto points = measure_sweep(sim::trade::app_serv_f(),
                                    {100.0, 300.0},
                                    {0.0, 10.0, 30.0, 42});
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0].clients, 100.0);
  EXPECT_DOUBLE_EQ(points[1].clients, 300.0);
  EXPECT_GT(points[1].throughput_rps, points[0].throughput_rps);
  EXPECT_GT(points[0].p90_rt_s, points[0].mean_rt_s);
}

TEST(Evaluation, ParallelSweepMatchesSequential) {
  util::ThreadPool pool(4);
  const SweepOptions options{0.0, 10.0, 30.0, 7};
  const auto sequential =
      measure_sweep(sim::trade::app_serv_f(), {150.0, 450.0}, options);
  const auto parallel =
      measure_sweep(sim::trade::app_serv_f(), {150.0, 450.0}, options, &pool);
  ASSERT_EQ(sequential.size(), parallel.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_DOUBLE_EQ(sequential[i].mean_rt_s, parallel[i].mean_rt_s);
    EXPECT_DOUBLE_EQ(sequential[i].throughput_rps, parallel[i].throughput_rps);
  }
}

TEST(Evaluation, DataPointConversions) {
  const std::vector<MeasuredPoint> points{{100.0, 0.01, 0.02, 14.0}};
  const auto mean_points = to_data_points(points);
  ASSERT_EQ(mean_points.size(), 1u);
  EXPECT_DOUBLE_EQ(mean_points[0].metric_s, 0.01);
  const auto p90_points = to_p90_data_points(points);
  EXPECT_DOUBLE_EQ(p90_points[0].metric_s, 0.02);
}

TEST(Evaluation, ReplicatedMeasurementTightensUncertainty) {
  util::ThreadPool pool(4);
  const SweepOptions options{0.0, 10.0, 25.0, 9};
  const ReplicatedPoint few = measure_replicated(sim::trade::app_serv_f(),
                                                 300.0, 3, options, &pool);
  const ReplicatedPoint many = measure_replicated(sim::trade::app_serv_f(),
                                                  300.0, 10, options, &pool);
  EXPECT_EQ(few.replications, 3u);
  EXPECT_EQ(many.replications, 10u);
  EXPECT_GT(few.rt_ci95_s, 0.0);
  // More replications shrink the confidence interval (usually ~1/sqrt(n);
  // allow slack for the small sample count).
  EXPECT_LT(many.rt_ci95_s, few.rt_ci95_s * 1.5);
  EXPECT_NEAR(many.mean.mean_rt_s, few.mean.mean_rt_s,
              5.0 * (few.rt_ci95_s + many.rt_ci95_s));
  EXPECT_NEAR(many.mean.throughput_rps, 300.0 / 7.05, 1.5);
}

TEST(Evaluation, ReplicatedRejectsZeroReplications) {
  EXPECT_THROW(measure_replicated(sim::trade::app_serv_f(), 100.0, 0),
               std::invalid_argument);
}

TEST(Evaluation, AccuracyAgainstEmptyIsPerfect) {
  // Degenerate but legal: no measured points -> vacuous 100%.
  class Zero final : public Predictor {
   public:
    std::string name() const override { return "zero"; }
    double predict_mean_rt_s(const std::string&,
                             const WorkloadSpec&) const override {
      return 1.0;
    }
    double predict_throughput_rps(const std::string&,
                                  const WorkloadSpec&) const override {
      return 1.0;
    }
    double predict_max_throughput_rps(const std::string&,
                                      double) const override {
      return 1.0;
    }
  };
  const Zero predictor;
  const AccuracySummary acc = accuracy_against(predictor, "s", {});
  EXPECT_DOUBLE_EQ(acc.mean_rt_pct, 100.0);
  EXPECT_DOUBLE_EQ(acc.throughput_pct, 100.0);
}

}  // namespace
}  // namespace epp::core
