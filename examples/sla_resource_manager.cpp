// SLA-driven resource management: run Algorithm 1 over the paper's
// 16-server pool, inspect the allocation it produces, and tune the slack
// knob — an end-to-end tour of epp::rm on top of the prediction stack.
#include <iostream>

#include "core/evaluation.hpp"
#include "core/historical_predictor.hpp"
#include "core/hybrid_predictor.hpp"
#include "hydra/relationships.hpp"
#include "rm/manager.hpp"
#include "rm/runtime.hpp"
#include "rm/tuning.hpp"
#include "sim/trade/testbed.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace epp;
  std::cout << "EPP resource manager demo: 16 servers, 3 SLA classes\n\n";
  util::ThreadPool pool;

  // Calibrate the planning model (hybrid) and the ground truth stand-in
  // (historical calibrated from measurements), as in the paper's section 9.
  const double max_s = sim::trade::measure_max_throughput(sim::trade::app_serv_s());
  const double max_f = sim::trade::measure_max_throughput(sim::trade::app_serv_f());
  const double max_vf = sim::trade::measure_max_throughput(sim::trade::app_serv_vf());
  const core::TradeCalibration calibration = core::calibrate_lqn_from_testbed(7, &pool);

  core::HybridPredictor planner(calibration);
  for (const auto& arch : {core::arch_s(), core::arch_f(), core::arch_vf()})
    planner.register_server(arch);

  const auto grad = core::measure_sweep(sim::trade::app_serv_f(), {300.0, 600.0},
                                        {}, &pool);
  const double m =
      hydra::fit_gradient({grad[0].clients, grad[1].clients},
                          {grad[0].throughput_rps, grad[1].throughput_rps});
  core::HistoricalPredictor truth(m);
  for (const auto& [name, spec, max] :
       {std::tuple{"AppServF", sim::trade::app_serv_f(), max_f},
        std::tuple{"AppServVF", sim::trade::app_serv_vf(), max_vf}}) {
    const double knee = max / m;
    truth.calibrate_established(
        name,
        core::to_data_points(
            core::measure_sweep(spec, {0.25 * knee, 0.6 * knee}, {}, &pool)),
        core::to_data_points(
            core::measure_sweep(spec, {1.25 * knee, 1.7 * knee}, {}, &pool)),
        max);
  }
  truth.register_new_server("AppServS", max_s);
  // Servers hosting buy clients need the mix relationship (relationship 3).
  const double max_f_25 =
      sim::trade::measure_max_throughput(sim::trade::app_serv_f(), 0.25, 11);
  truth.calibrate_mix({0.0, 25.0}, {max_f, max_f_25});

  // One allocation in detail.
  const auto pool_servers = rm::standard_pool(max_s, max_f, max_vf);
  const auto classes = rm::standard_classes(9000.0);
  const rm::ResourceManager manager(planner, {1.1, 7.0, 1.0});
  const rm::Allocation allocation = manager.allocate(classes, pool_servers);

  std::cout << "-- allocation at 9000 clients, slack 1.1 --\n";
  util::Table alloc({"server", "arch", "buy", "browse_high", "browse_low"});
  for (std::size_t i = 0; i < pool_servers.size(); ++i) {
    if (!allocation.server_used(i)) continue;
    auto cell = [&](const char* cls) {
      const auto it = allocation.per_server[i].find(cls);
      return it == allocation.per_server[i].end() ? std::string("0")
                                                  : util::fmt(it->second, 0);
    };
    alloc.add_row({std::to_string(i), pool_servers[i].arch, cell("buy"),
                   cell("browse_high"), cell("browse_low")});
  }
  alloc.print(std::cout);
  std::cout << "prediction evaluations: " << allocation.prediction_evaluations
            << ", unallocated (scaled): "
            << util::fmt(allocation.unallocated_scaled, 0) << "\n\n";

  const rm::RuntimeOutcome outcome =
      rm::evaluate_runtime(allocation, classes, pool_servers, truth, {});
  std::cout << "runtime outcome: " << util::fmt(outcome.sla_failure_pct, 2)
            << "% SLA failures, " << util::fmt(outcome.server_usage_pct, 1)
            << "% server usage, " << outcome.servers_used << " servers used\n\n";

  // Slack tuning summary.
  rm::TuningConfig config;
  config.planner = &planner;
  config.truth = &truth;
  config.pool = pool_servers;
  for (double load = 2000.0; load <= 18000.0; load += 2000.0)
    config.loads.push_back(load);
  std::cout << "-- slack tuning (averages across loads below 100% usage) --\n";
  util::Table tune({"slack", "avg_sla_failure_pct", "avg_server_usage_pct"});
  for (double slack : {1.2, 1.1, 1.0, 0.9, 0.8}) {
    const auto points = rm::sweep_slack(config, {slack}, 0.0, &pool);
    tune.add_row({util::fmt(slack, 1),
                  util::fmt(points[0].avg_sla_failure_pct, 2),
                  util::fmt(points[0].avg_server_usage_pct, 1)});
  }
  tune.print(std::cout);
  return 0;
}
