#include "sim/trade/session_cache.hpp"

namespace epp::sim::trade {

bool SessionCache::access(std::uint64_t client_id, std::uint64_t bytes) {
  if (!enabled()) return true;  // disabled cache never charges a fetch
  const auto it = index_.find(client_id);
  if (it != index_.end()) {
    ++hits_;
    auto node = it->second;
    used_ += bytes - node->bytes;
    node->bytes = bytes;
    lru_.splice(lru_.begin(), lru_, node);
    evict_until_fits(0, /*keep_front=*/true);  // grown session may overflow
    return true;
  }
  ++misses_;
  evict_until_fits(bytes, /*keep_front=*/false);
  lru_.push_front(Entry{client_id, bytes});
  index_[client_id] = lru_.begin();
  used_ += bytes;
  return false;
}

void SessionCache::invalidate(std::uint64_t client_id) {
  const auto it = index_.find(client_id);
  if (it == index_.end()) return;
  used_ -= it->second->bytes;
  lru_.erase(it->second);
  index_.erase(it);
}

void SessionCache::evict_until_fits(std::uint64_t bytes, bool keep_front) {
  // When keeping the front, never evict the most-recently-used entry (the
  // active client): a session larger than the whole cache still has to be
  // resident while in use.
  const std::size_t min_size = keep_front ? 1 : 0;
  while (used_ + bytes > capacity_ && lru_.size() > min_size) {
    const Entry& victim = lru_.back();
    used_ -= victim.bytes;
    index_.erase(victim.client_id);
    lru_.pop_back();
  }
}

}  // namespace epp::sim::trade
