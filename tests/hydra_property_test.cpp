// Parameterized property sweeps over the historical method's
// relationships: monotonicity, inverse consistency and cross-server
// extrapolation across a grid of synthetic server families.
#include <gtest/gtest.h>

#include <cmath>

#include "hydra/model.hpp"
#include "hydra/relationships.hpp"

namespace epp::hydra {
namespace {

struct Family {
  double max_tput;
  double base_rt;
  double think;
};

class Rel1Properties : public ::testing::TestWithParam<Family> {
 protected:
  double gradient() const { return 1.0 / (GetParam().think + GetParam().base_rt); }
  double n_star() const { return GetParam().max_tput / gradient(); }
  double truth(double n) const {
    const Family f = GetParam();
    return std::max(f.base_rt * std::exp(std::log(2.0) * n / n_star()),
                    n / f.max_tput - f.think);
  }
  Relationship1 fit() const {
    const std::vector<DataPoint> lower{{0.2 * n_star(), truth(0.2 * n_star()), 50},
                                       {0.6 * n_star(), truth(0.6 * n_star()), 50}};
    const std::vector<DataPoint> upper{{1.2 * n_star(), truth(1.2 * n_star()), 50},
                                       {1.8 * n_star(), truth(1.8 * n_star()), 50}};
    return fit_relationship1(lower, upper, GetParam().max_tput, gradient());
  }
};

TEST_P(Rel1Properties, PredictionMonotoneOverFullRange) {
  const Relationship1 rel = fit();
  double prev = 0.0;
  for (double n = 0.0; n <= 3.0 * n_star(); n += n_star() / 40.0) {
    const double rt = rel.predict_metric(n);
    EXPECT_GE(rt, prev - 1e-12) << n;
    prev = rt;
  }
}

TEST_P(Rel1Properties, InverseRoundTripsAcrossRange) {
  const Relationship1 rel = fit();
  for (double fraction : {0.2, 0.5, 0.9, 1.3, 2.0, 2.8}) {
    const double n = fraction * n_star();
    const double goal = rel.predict_metric(n);
    if (goal <= rel.predict_metric(0.0)) continue;  // flat region
    EXPECT_NEAR(rel.clients_for_metric(goal), n, 0.02 * n + 1.0) << fraction;
  }
}

TEST_P(Rel1Properties, ThroughputCapsAtMax) {
  const Relationship1 rel = fit();
  EXPECT_NEAR(rel.predict_throughput(0.5 * n_star()),
              0.5 * GetParam().max_tput, 1e-6 * GetParam().max_tput);
  EXPECT_DOUBLE_EQ(rel.predict_throughput(5.0 * n_star()),
                   GetParam().max_tput);
}

TEST_P(Rel1Properties, UpperEquationAccurateDeepInSaturation) {
  const Relationship1 rel = fit();
  const double n = 2.5 * n_star();
  EXPECT_NEAR(rel.predict_metric(n), truth(n), 0.02 * truth(n));
}

INSTANTIATE_TEST_SUITE_P(
    Families, Rel1Properties,
    ::testing::Values(Family{40.0, 0.12, 7.0}, Family{86.0, 0.05, 7.0},
                      Family{186.0, 0.05, 7.0}, Family{320.0, 0.02, 7.0},
                      Family{500.0, 0.01, 4.0}, Family{1500.0, 0.004, 10.0}));

class Rel2Extrapolation : public ::testing::TestWithParam<double> {};

TEST_P(Rel2Extrapolation, PredictsUnseenServerWithinTolerance) {
  // Calibrate relationship 2 on three synthetic servers, predict a fourth
  // whose max throughput is the parameter.
  const double think = 7.0;
  auto family = [&](double max_tput) {
    const double base = 10.0 / max_tput;  // base RT shrinking with speed
    const double gradient = 1.0 / (think + base);
    const double knee = max_tput / gradient;
    auto truth = [=](double n) {
      return std::max(base * std::exp(std::log(2.0) * n / knee),
                      n / max_tput - think);
    };
    const std::vector<DataPoint> lower{{0.2 * knee, truth(0.2 * knee), 50},
                                       {0.6 * knee, truth(0.6 * knee), 50}};
    const std::vector<DataPoint> upper{{1.2 * knee, truth(1.2 * knee), 50},
                                       {1.8 * knee, truth(1.8 * knee), 50}};
    return fit_relationship1(lower, upper, max_tput, gradient);
  };
  const Relationship2 rel2 =
      fit_relationship2({family(120.0), family(200.0), family(340.0)});
  const double target = GetParam();
  const double base = 10.0 / target;
  const double gradient = 1.0 / (think + base);
  const Relationship1 derived = rel2.predict_for(target, gradient);
  const double knee = target / gradient;
  auto truth = [=](double n) {
    return std::max(base * std::exp(std::log(2.0) * n / knee),
                    n / target - think);
  };
  // Deep saturation must extrapolate well even outside the fitted range.
  const double n_hi = 2.2 * knee;
  EXPECT_NEAR(derived.predict_metric(n_hi), truth(n_hi), 0.06 * truth(n_hi));
  // Light load within a factor ~2 (cL/lambdaL power-law extrapolation).
  const double n_lo = 0.4 * knee;
  EXPECT_NEAR(derived.predict_metric(n_lo), truth(n_lo), truth(n_lo));
}

INSTANTIATE_TEST_SUITE_P(Targets, Rel2Extrapolation,
                         ::testing::Values(90.0, 150.0, 260.0, 420.0));

class MixScaling : public ::testing::TestWithParam<double> {};

TEST_P(MixScaling, Relationship3LinearInBuyPercent) {
  const Relationship3 rel = fit_relationship3({0.0, 25.0}, {186.0, 155.0});
  const double b = GetParam();
  const double expected = 186.0 - (31.0 / 25.0) * b;
  EXPECT_NEAR(rel.established(b), expected, 1e-9);
  // Scaling to a server with half the typical max throughput halves it.
  EXPECT_NEAR(rel.predict(b, 93.0), expected * 0.5, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(BuyPercents, MixScaling,
                         ::testing::Values(0.0, 5.0, 12.5, 25.0, 40.0));

TEST(HistoricalModelProperty, DerivedServersConsistentWithEstablishedOnes) {
  // Registering an established server's own max throughput as a "new"
  // server must give predictions close to its established fit.
  const double think = 7.0;
  HistoricalModel model(1.0 / (think + 0.05));
  auto add = [&](const char* name, double max_tput) {
    const double gradient = model.gradient_m();
    const double knee = max_tput / gradient;
    auto truth = [=](double n) {
      return std::max(0.05 * std::exp(std::log(2.0) * n / knee),
                      n / max_tput - think);
    };
    model.add_established(name,
                          {{0.2 * knee, truth(0.2 * knee), 50},
                           {0.6 * knee, truth(0.6 * knee), 50}},
                          {{1.2 * knee, truth(1.2 * knee), 50},
                           {1.8 * knee, truth(1.8 * knee), 50}},
                          max_tput);
  };
  add("A", 150.0);
  add("B", 250.0);
  add("C", 350.0);
  model.add_new_server("A_clone", 150.0);
  const double knee = 150.0 / model.gradient_m();
  for (double fraction : {0.4, 1.5, 2.2}) {
    const double n = fraction * knee;
    EXPECT_NEAR(model.predict_metric("A_clone", n),
                model.predict_metric("A", n),
                0.25 * model.predict_metric("A", n) + 0.01)
        << fraction;
  }
}

}  // namespace
}  // namespace epp::hydra
