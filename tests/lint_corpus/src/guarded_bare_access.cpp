// Corpus: EPP-CONC-005 — a guarded field touched without its lock.
#include <cstdint>

#include "util/annotations.hpp"
#include "util/lock_rank.hpp"

namespace lint_corpus {

struct Counter {
  epp::util::RankedMutex mutex{EPP_LOCK_RANK(50), "corpus.counter"};
  std::uint64_t value EPP_GUARDED_BY(mutex) = 0;

  void locked_bump() {
    const epp::util::MutexLock lock(mutex);
    ++value;
  }

  std::uint64_t racy_read() const { return value; }
};

}  // namespace lint_corpus
