// Versioned, refcounted calibration bundles for hot-swap serving.
//
// A long-running prediction daemon cannot restart to pick up a refit
// bundle, and it cannot blindly trust one either: a candidate that
// parses may still encode a semantically broken model (negative curve
// pieces, diverging solver parameters, dead fallback chains). The
// registry is the single promotion path:
//
//   1. a candidate CalibrationBundle arrives (reload frame, SIGHUP,
//      test harness);
//   2. the EPP-SEM verifier (lint::verify_bundle) gates it — any
//      semantic *error* rejects the candidate and the previously active
//      version keeps serving, which is the automatic-rollback contract:
//      promotion is gate-then-swap, so a failed gate simply never swaps;
//   3. an accepted candidate becomes a new immutable ServingVersion —
//      bundle, predictors and ResilientPredictor built once, then never
//      mutated — and the active pointer swaps atomically.
//
// In-flight requests are version-pinned: the server captures
// shared_ptr<const ServingVersion> at admission, so a request admitted
// under version N finishes on version N's predictors even if version
// N+1 is promoted mid-evaluation. Old versions die when their last
// pinned request drops the refcount (plus the bounded history the
// registry retains for explicit rollback()).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "calib/bundle.hpp"
#include "calib/predictor_set.hpp"
#include "lint/diagnostic.hpp"
#include "lint/verify.hpp"
#include "svc/resilient.hpp"
#include "util/annotations.hpp"
#include "util/lock_rank.hpp"

namespace epp::serve {

/// One immutable promoted bundle: everything a request needs to be
/// served, owned together so a shared_ptr pin keeps it all alive.
struct ServingVersion {
  std::uint64_t version = 0;
  std::string source;  // path or label the bundle was promoted from
  calib::CalibrationBundle bundle;
  calib::PredictorSet predictors;
  std::unique_ptr<svc::ResilientPredictor> resilient;
};

struct RegistryOptions {
  svc::BatchOptions batch;
  svc::ResilienceOptions resilience;
  /// EPP-SEM verifier configuration for the promotion gate. The chain
  /// rules run against `resilience` (kept in sync by the registry).
  lint::VerifyOptions verify;
  /// Gate candidates through the verifier; disable only in tests that
  /// deliberately promote broken bundles.
  bool gate = true;
  /// Superseded versions retained for rollback() (beyond the active
  /// one). In-flight pins keep older versions alive regardless.
  std::size_t keep_history = 2;
};

struct PromotionResult {
  bool accepted = false;
  /// Active version after the attempt (the candidate's on success, the
  /// incumbent's on rejection).
  std::uint64_t active_version = 0;
  /// Verifier findings for the candidate (empty when the gate is off or
  /// construction failed before verification).
  lint::Diagnostics findings;
  std::string message;
};

struct RegistryStats {
  std::uint64_t promotions = 0;   // accepted candidates
  std::uint64_t rejections = 0;   // gate or construction failures
  std::uint64_t rollbacks = 0;
  std::uint64_t active_version = 0;  // 0 = nothing promoted yet
};

class BundleRegistry {
 public:
  explicit BundleRegistry(RegistryOptions options = {});

  /// Gate `bundle` through the EPP-SEM verifier and, on a clean pass,
  /// build its predictors and swap it in as the active version. On any
  /// failure the incumbent keeps serving untouched. `info` (optional)
  /// locates verifier findings on the candidate's source lines.
  PromotionResult promote(calib::CalibrationBundle bundle,
                          const std::string& source,
                          const calib::BundleParseInfo* info = nullptr);

  /// Reactivate the most recently superseded version (operator escape
  /// hatch when a gated bundle turns out bad in ways the verifier cannot
  /// see, e.g. drift). Returns false when no history remains.
  bool rollback();

  /// The active version, or nullptr before the first promotion. The
  /// returned pin keeps the version (bundle + predictors) alive for as
  /// long as the caller holds it — this is the capture point for
  /// per-request version pinning.
  std::shared_ptr<const ServingVersion> active() const;
  std::uint64_t active_version() const;

  RegistryStats stats() const;
  const RegistryOptions& options() const noexcept { return options_; }

 private:
  RegistryOptions options_;

  mutable util::RankedMutex mutex_{EPP_LOCK_RANK(30), "serve.registry"};
  std::shared_ptr<const ServingVersion> active_ EPP_GUARDED_BY(mutex_);
  /// Superseded versions, oldest first, bounded by keep_history.
  std::vector<std::shared_ptr<const ServingVersion>> history_
      EPP_GUARDED_BY(mutex_);
  std::uint64_t next_version_ EPP_GUARDED_BY(mutex_) = 1;

  struct Counters {
    std::uint64_t promotions = 0;
    std::uint64_t rejections = 0;
    std::uint64_t rollbacks = 0;
  };
  mutable Counters counters_ EPP_GUARDED_BY(mutex_);
};

}  // namespace epp::serve
