// The hybrid method as a Predictor (paper section 6).
//
// An "advanced" hybrid model: the first time a prediction is needed for a
// (server architecture, workload mix) pair, the layered queuing model
// generates a handful of pseudo-historical data points (2 lower + 2 upper)
// and calibrates a historical relationship-1 fit for that pair — the
// "start-up delay". All subsequent predictions go through the closed-form
// historical equations and are near-instant.
//
// Relationship 2 is not used (the LQN generates data for each specific
// architecture, so every architecture is effectively "established"), and
// relationship 3 is itself calibrated from LQN max-throughput predictions.
#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "core/lqn_predictor.hpp"
#include "core/predictor.hpp"
#include "hydra/model.hpp"
#include "util/annotations.hpp"
#include "util/lock_rank.hpp"

namespace epp::core {

class HybridPredictor final : public Predictor {
 public:
  HybridPredictor(TradeCalibration calibration, double think_time_s = 7.0,
                  lqn::SolverOptions solver_options = {});

  void register_server(const ServerArch& server);
  bool has_server(const std::string& name) const {
    return lqn_.has_server(name);
  }

  std::string name() const override { return "hybrid"; }
  double predict_mean_rt_s(const std::string& server,
                           const WorkloadSpec& workload) const override;
  double predict_throughput_rps(const std::string& server,
                                const WorkloadSpec& workload) const override;
  double predict_max_throughput_rps(const std::string& server,
                                    double buy_fraction) const override;
  bool predicts_saturated(const std::string& server,
                          const WorkloadSpec& workload) const override;
  CapacityResult max_clients_for_goal(const std::string& server,
                                      double goal_s, double buy_fraction = 0.0,
                                      double think_time_s = 7.0) const override;

  /// Wall-clock seconds spent generating pseudo-historical data for this
  /// server across all mixes so far (the paper's ~11 s start-up delay; EPP's
  /// solver is far faster, the *structure* of the cost is what matters).
  double startup_delay_s(const std::string& server) const;
  /// Number of calibrated (server, mix) relationship fits so far.
  std::size_t calibrations() const;

  const LqnPredictor& lqn() const noexcept { return lqn_; }

 private:
  /// Pseudo-data-point client positions relative to the max-throughput
  /// load (2 lower + 2 upper, the minimal calibration section 4.2 showed
  /// to be sufficient).
  static constexpr double kLowerFractions[2] = {0.25, 0.60};
  static constexpr double kUpperFractions[2] = {1.25, 1.70};

  const hydra::Relationship1& ensure_calibrated(const std::string& server,
                                                double buy_fraction) const;
  static std::string key(const std::string& server, double buy_fraction);

  LqnPredictor lqn_;
  double think_time_s_;
  // Lazily generated per (server, mix-bucket) fits and their build cost.
  // Guarded by mutex_: predictions are issued concurrently from sweep
  // thread pools (e.g. the resource-manager tuning figures). std::map
  // node stability keeps returned references valid after unlocking.
  mutable util::RankedMutex mutex_{EPP_LOCK_RANK(75), "core.hybrid.memo"};
  mutable std::map<std::string, hydra::Relationship1> fits_;
  mutable std::map<std::string, double> startup_delay_;
};

}  // namespace epp::core
