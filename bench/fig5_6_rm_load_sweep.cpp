// Figures 5 & 6 — the prediction-enhanced resource management algorithm
// at different loads and slack levels: % SLA failures (fig 5) and % server
// usage (fig 6) across the 16-server pool (8 new AppServS + 4 AppServF +
// 4 AppServVF) with the paper's three service classes (10% buy / 150 ms,
// 45% high-priority browse / 300 ms, 45% low-priority browse / 600 ms).
//
// As in the paper, the more accurate historical model stands in for the
// real system response times and the hybrid model provides the (less
// accurate) predictions the algorithm plans with.
//
// Expected shape: with enough slack, 0% failures until server usage
// approaches 100%; with less slack, failure spikes appear at loads where
// the allocation just crosses a server boundary (tempered by the runtime
// spare-capacity optimisation); % server usage is a staircase in load and
// decreases as slack shrinks.
#include <iostream>

#include "common.hpp"
#include "rm/tuning.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace epp;
  std::cout << "== Figures 5 & 6: resource manager load sweep at slack "
               "levels ==\n\n";

  bench::Setup setup(/*measure_mix=*/true);
  rm::TuningConfig config;
  config.planner = setup.hybrid.get();
  config.truth = setup.historical.get();
  config.pool = rm::standard_pool(setup.max_s, setup.max_f, setup.max_vf);
  for (double load = 1000.0; load <= 20000.0; load += 1000.0)
    config.loads.push_back(load);

  const std::vector<double> slacks{0.90, 1.00, 1.05, 1.10};
  std::vector<std::vector<rm::LoadPoint>> curves;
  for (double slack : slacks) {
    const util::Timer timer;
    curves.push_back(rm::sweep_loads(config, slack, &setup.pool));
    std::cout << "slack " << util::fmt(slack, 2) << ": line generated in "
              << util::fmt(timer.elapsed_seconds(), 3)
              << " s (paper: under one second)\n";
  }

  std::cout << "\n-- Figure 5: % SLA failures --\n";
  util::Table failures({"total_clients", "slack_0.90", "slack_1.00",
                        "slack_1.05", "slack_1.10"});
  for (std::size_t i = 0; i < config.loads.size(); ++i)
    failures.add_row({util::fmt(config.loads[i], 0),
                      util::fmt(curves[0][i].sla_failure_pct, 2),
                      util::fmt(curves[1][i].sla_failure_pct, 2),
                      util::fmt(curves[2][i].sla_failure_pct, 2),
                      util::fmt(curves[3][i].sla_failure_pct, 2)});
  failures.print(std::cout);

  std::cout << "\n-- Figure 6: % server usage --\n";
  util::Table usage({"total_clients", "slack_0.90", "slack_1.00",
                     "slack_1.05", "slack_1.10"});
  for (std::size_t i = 0; i < config.loads.size(); ++i)
    usage.add_row({util::fmt(config.loads[i], 0),
                   util::fmt(curves[0][i].server_usage_pct, 1),
                   util::fmt(curves[1][i].server_usage_pct, 1),
                   util::fmt(curves[2][i].server_usage_pct, 1),
                   util::fmt(curves[3][i].server_usage_pct, 1)});
  usage.print(std::cout);
  return 0;
}
