#include "util/lock_rank.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace epp::util::lock_rank {
namespace {

void abort_handler(const char* acquiring, int acquiring_rank, const char* held,
                   int held_rank) {
  if (acquiring == held || acquiring_rank == held_rank) {
    std::fprintf(stderr,
                 "epp lock-rank: double lock of \"%s\" (rank %d) — "
                 "non-recursive mutex re-acquired on the same thread\n",
                 acquiring, acquiring_rank);
  } else {
    std::fprintf(stderr,
                 "epp lock-rank: acquiring \"%s\" (rank %d) while holding "
                 "\"%s\" (rank %d) — lock order requires strictly "
                 "increasing ranks\n",
                 acquiring, acquiring_rank, held, held_rank);
  }
  std::abort();
}

std::atomic<ViolationHandler> g_handler{&abort_handler};

// A thread never legitimately holds more than a handful of mutexes at
// once (the deepest real chain is two); 16 leaves headroom for tests.
constexpr int kMaxHeld = 16;

struct HeldRecord {
  int rank;
  const char* name;
  const void* mutex;
  // false: this was a same-thread re-lock downgraded to a no-op — the
  // underlying mutex was never touched, so its release must skip the
  // underlying unlock too.
  bool acquired;
};

struct HeldStack {
  HeldRecord records[kMaxHeld];
  int count = 0;
};

thread_local HeldStack t_held;

}  // namespace

ViolationHandler set_violation_handler(ViolationHandler handler) noexcept {
  return g_handler.exchange(handler != nullptr ? handler : &abort_handler);
}

bool on_acquire(int rank, const char* name, const void* mutex) noexcept {
  HeldStack& held = t_held;
  // Report against the worst offender: the highest held rank, or the
  // prior record for a re-acquired mutex.
  const HeldRecord* violator = nullptr;
  bool re_lock = false;
  for (int i = 0; i < held.count; ++i) {
    const HeldRecord& r = held.records[i];
    if (r.mutex == mutex) {
      violator = &r;
      re_lock = true;
      break;
    }
    if (r.rank >= rank && (violator == nullptr || r.rank > violator->rank)) {
      violator = &r;
    }
  }
  if (violator != nullptr) {
    g_handler.load()(name, rank, violator->name, violator->rank);
    // A non-aborting handler (tests) falls through: still record the
    // acquisition so release stays balanced. A same-mutex re-lock is
    // downgraded to a no-op — actually re-acquiring a non-recursive
    // mutex would deadlock right here, under the checker meant to
    // report it.
  }
  if (held.count < kMaxHeld) {
    held.records[held.count++] = HeldRecord{rank, name, mutex, !re_lock};
  }
  return !re_lock;
}

bool on_release(const void* mutex) noexcept {
  HeldStack& held = t_held;
  // Releases are usually LIFO but std::unique_lock allows any order;
  // scan from the top so a re-lock's no-op record pops before the real
  // acquisition underneath it.
  for (int i = held.count - 1; i >= 0; --i) {
    if (held.records[i].mutex == mutex) {
      const bool acquired = held.records[i].acquired;
      for (int j = i; j + 1 < held.count; ++j) {
        held.records[j] = held.records[j + 1];
      }
      --held.count;
      return acquired;
    }
  }
  return true;  // unbalanced release: let the underlying mutex report it
}

int held_count() noexcept { return t_held.count; }

}  // namespace epp::util::lock_rank
