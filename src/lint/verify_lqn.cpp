// EPP-SEM-010..012: the LQN convergence pre-checker. Mirrors the layered
// solver's flattening (processor stations, surrogate thread-pool stations,
// light-load demands) to decide *statically* whether the solve can
// succeed, instead of letting a sweep discover it minutes in:
//
//   * SEM-010 — open-class arrivals offer utilization >= 1 at a station;
//     the MVA core refuses such models with a std::domain_error.
//   * SEM-011/012 — the layered surrogate-demand fixed point is a
//     contraction only while priority starvation stays bounded. We
//     estimate a contraction factor from three necessary ingredients of
//     every observed divergence: high-priority utilization pressure at a
//     shared station (U_high), the starved class actually competing there
//     (u_low), and a finite thread pool feeding queue growth back into
//     the surrogate demand (Q_low, population per thread). The estimate
//       kappa = min(U_high / 2.5, u_low / 9.0, Q_low / 90.0)
//     is calibrated so every diverging probe model scores >= 1 (error)
//     or lands in the [0.5, 1) at-risk band (warning) while all
//     converging pipeline models stay below 0.5. It is an honest
//     heuristic bound, not a proof — which is why only the >= 1 band is
//     an error.
#include "lint/verify.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "lqn/model.hpp"

namespace epp::lint {
namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

double light_exec_time(const lqn::Model& model, lqn::EntryId e) {
  const lqn::Entry& entry = model.entry(e);
  double time = entry.service_demand_s /
                model.processor(model.task(entry.task).processor).speed;
  for (const lqn::Call& call : entry.calls)
    time += call.mean_calls * light_exec_time(model, call.target);
  return time;
}

void collect_below(const lqn::Model& model, lqn::TaskId task,
                   std::set<lqn::ProcessorId>& procs,
                   std::set<lqn::TaskId>& seen) {
  if (!seen.insert(task).second) return;
  procs.insert(model.task(task).processor);
  for (lqn::EntryId e : model.task(task).entries)
    for (const lqn::Call& call : model.entry(e).calls)
      collect_below(model, model.entry(call.target).task, procs, seen);
}

SourceLocation task_location(const std::string& file,
                             const LqnSourceIndex* index,
                             const std::string& task_name) {
  if (index != nullptr)
    if (const auto it = index->task_lines.find(task_name);
        it != index->task_lines.end())
      return {file, it->second};
  return {file, 0};
}

void run_convergence_checks(const lqn::Model& model, const std::string& file,
                            Diagnostics& diagnostics,
                            const LqnSourceIndex* index) {
  const std::size_t ne = model.entries().size();
  const std::size_t nt = model.tasks().size();

  std::vector<lqn::TaskId> refs, open_refs;
  for (lqn::TaskId ref : model.reference_tasks())
    (model.task(ref).open_arrivals ? open_refs : refs).push_back(ref);
  const std::size_t nc = refs.size();
  const std::size_t no = open_refs.size();
  if (nc == 0 && no == 0) return;

  std::vector<std::vector<double>> visits(nc), open_visits(no);
  for (std::size_t c = 0; c < nc; ++c)
    visits[c] = model.visit_ratios(refs[c]);
  for (std::size_t c = 0; c < no; ++c)
    open_visits[c] = model.visit_ratios(open_refs[c]);

  // Stations exactly as the solver flattens them: processors hosting
  // non-reference entries first, then thread-pool surrogates.
  struct StationInfo {
    std::string name;
    bool delay = false;
    double servers = 1.0;
  };
  std::vector<std::size_t> proc_station(model.processors().size(), kNpos);
  std::vector<StationInfo> stations;
  for (lqn::EntryId e = 0; e < ne; ++e) {
    const lqn::Entry& entry = model.entry(e);
    if (model.task(entry.task).is_reference) continue;
    const lqn::ProcessorId p = model.task(entry.task).processor;
    if (proc_station[p] != kNpos) continue;
    proc_station[p] = stations.size();
    const lqn::Processor& proc = model.processor(p);
    stations.push_back(
        {proc.name, proc.scheduling == lqn::Scheduling::kDelay,
         static_cast<double>(std::max<std::size_t>(proc.multiplicity, 1))});
  }
  const std::size_t n_proc_stations = stations.size();

  std::vector<std::vector<double>> demands(
      nc, std::vector<double>(stations.size(), 0.0));
  std::vector<double> think(nc, 0.0);
  for (std::size_t c = 0; c < nc; ++c) {
    const lqn::Task& ref = model.task(refs[c]);
    think[c] = ref.think_time_s;
    for (lqn::EntryId e = 0; e < ne; ++e) {
      if (visits[c][e] == 0.0) continue;
      const lqn::Entry& entry = model.entry(e);
      const lqn::Task& task = model.task(entry.task);
      const lqn::Processor& proc = model.processor(task.processor);
      const double time = visits[c][e] * entry.service_demand_s / proc.speed;
      if (task.is_reference)
        think[c] += time;
      else
        demands[c][proc_station[task.processor]] += time;
    }
  }
  std::vector<std::vector<double>> open_demands(
      no, std::vector<double>(stations.size(), 0.0));
  for (std::size_t c = 0; c < no; ++c) {
    for (lqn::EntryId e = 0; e < ne; ++e) {
      if (open_visits[c][e] == 0.0) continue;
      const lqn::Entry& entry = model.entry(e);
      const lqn::Task& task = model.task(entry.task);
      if (task.is_reference) continue;
      const lqn::Processor& proc = model.processor(task.processor);
      open_demands[c][proc_station[task.processor]] +=
          open_visits[c][e] * entry.service_demand_s / proc.speed;
    }
  }

  // Task visit counts and the surrogate-station selection rule.
  std::vector<std::vector<double>> task_visits(nc,
                                               std::vector<double>(nt, 0.0));
  for (std::size_t c = 0; c < nc; ++c)
    for (lqn::EntryId e = 0; e < ne; ++e)
      task_visits[c][model.entry(e).task] += visits[c][e];
  std::vector<std::vector<double>> open_task_visits(
      no, std::vector<double>(nt, 0.0));
  for (std::size_t c = 0; c < no; ++c)
    for (lqn::EntryId e = 0; e < ne; ++e)
      open_task_visits[c][model.entry(e).task] += open_visits[c][e];

  std::vector<std::size_t> tasks_on_processor(model.processors().size(), 0);
  for (lqn::TaskId t = 0; t < nt; ++t)
    if (!model.task(t).is_reference)
      ++tasks_on_processor[model.task(t).processor];

  std::vector<lqn::TaskId> finite_tasks;
  std::vector<std::set<std::size_t>> below_stations;  // per finite task
  for (lqn::TaskId t = 0; t < nt; ++t) {
    const lqn::Task& task = model.task(t);
    if (task.is_reference) continue;
    const bool leaf = [&] {
      for (lqn::EntryId e : task.entries)
        if (!model.entry(e).calls.empty()) return false;
      return true;
    }();
    if (task.multiplicity == 1 && leaf &&
        tasks_on_processor[task.processor] == 1)
      continue;
    double light_total = 0.0;
    for (lqn::EntryId e : task.entries)
      light_total += light_exec_time(model, e);
    const double light_s =
        task.entries.empty()
            ? 0.0
            : light_total / static_cast<double>(task.entries.size());
    const double m = static_cast<double>(std::max<std::size_t>(
        task.multiplicity, 1));
    const std::size_t station = stations.size();
    stations.push_back({task.name + ".threads", false, 1.0});
    for (std::size_t c = 0; c < nc; ++c)
      demands[c].push_back(task_visits[c][t] * light_s / m);
    for (std::size_t c = 0; c < no; ++c)
      open_demands[c].push_back(open_task_visits[c][t] * light_s / m);
    std::set<lqn::ProcessorId> procs;
    std::set<lqn::TaskId> seen;
    collect_below(model, t, procs, seen);
    std::set<std::size_t> below;
    for (lqn::ProcessorId p : procs)
      if (proc_station[p] != kNpos) below.insert(proc_station[p]);
    finite_tasks.push_back(t);
    below_stations.push_back(below);
    (void)station;
  }

  // --- SEM-010: open arrivals must leave every queueing station spare
  // capacity, or solve_mva throws before producing anything.
  if (no > 0) {
    const std::string first_open = model.task(open_refs[0]).name;
    const SourceLocation where = task_location(file, index, first_open);
    for (std::size_t s = 0; s < stations.size(); ++s) {
      if (stations[s].delay) continue;
      double util = 0.0;
      for (std::size_t c = 0; c < no; ++c)
        util += model.task(open_refs[c]).arrival_rate_rps *
                open_demands[c][s];
      util /= stations[s].servers;
      if (util >= 1.0) {
        diagnostics.error(
            "EPP-SEM-010", where,
            "open arrivals saturate station '" + stations[s].name +
                "': offered utilization " + fmt_value(util) +
                " >= 1, the MVA solver will refuse this model",
            "reduce arrival rates or add capacity so that "
            "sum(lambda * demand) / servers < 1 at every station");
      }
    }
  }

  // --- SEM-011/012: contraction estimate for the layered fixed point
  // under priority starvation with finite-pool feedback.
  if (nc < 2) return;
  bool priorities_differ = false;
  for (std::size_t c = 1; c < nc; ++c)
    priorities_differ =
        priorities_differ ||
        model.task(refs[c]).priority != model.task(refs[0]).priority;
  if (!priorities_differ) return;

  std::vector<double> x_unc(nc, 0.0);  // uncontended throughput bound
  for (std::size_t c = 0; c < nc; ++c) {
    double total_demand = 0.0;
    for (double d : demands[c]) total_demand += d;
    const double cycle = think[c] + total_demand;
    if (cycle > 0.0) x_unc[c] = model.task(refs[c]).population / cycle;
  }

  double kappa = 0.0;
  std::size_t kappa_class = kNpos, kappa_station = kNpos;
  for (std::size_t s = 0; s < n_proc_stations; ++s) {
    if (stations[s].delay) continue;
    for (std::size_t l = 0; l < nc; ++l) {
      const int prio_l = model.task(refs[l]).priority;
      double u_high = 0.0;
      for (std::size_t c = 0; c < nc; ++c)
        if (model.task(refs[c]).priority > prio_l)
          u_high += x_unc[c] * demands[c][s] / stations[s].servers;
      if (u_high <= 0.0) continue;
      const double u_low = x_unc[l] * demands[l][s] / stations[s].servers;
      if (u_low <= 0.0) continue;
      // Feedback strength: the starved population per thread of a finite
      // pool whose subtree contains this station. No qualifying pool
      // means queue growth cannot feed back into surrogate demands.
      double q_low = 0.0;
      for (std::size_t i = 0; i < finite_tasks.size(); ++i) {
        const lqn::TaskId t = finite_tasks[i];
        if (task_visits[l][t] <= 0.0 || below_stations[i].count(s) == 0)
          continue;
        const double m = static_cast<double>(std::max<std::size_t>(
            model.task(t).multiplicity, 1));
        q_low = std::max(q_low, model.task(refs[l]).population / m);
      }
      if (q_low <= 0.0) continue;
      const double estimate =
          std::min(u_high / 2.5, std::min(u_low / 9.0, q_low / 90.0));
      if (estimate > kappa) {
        kappa = estimate;
        kappa_class = l;
        kappa_station = s;
      }
    }
  }
  if (kappa < 0.5 || kappa_class == kNpos) return;
  const std::string& cls = model.task(refs[kappa_class]).name;
  const std::string& station = stations[kappa_station].name;
  const SourceLocation where = task_location(file, index, cls);
  if (kappa >= 1.0) {
    diagnostics.error(
        "EPP-SEM-011", where,
        "layered solve cannot converge: class '" + cls +
            "' is priority-starved at station '" + station +
            "' with finite-pool feedback (contraction estimate " +
            fmt_value(kappa) + " >= 1)",
        "raise '" + cls +
            "' priority, shrink its population, or add capacity at '" +
            station +
            "'; at runtime the layered solver exhausts its iteration "
            "budget (SolverDivergedError)");
  } else {
    diagnostics.warning(
        "EPP-SEM-012", where,
        "layered convergence at risk: class '" + cls +
            "' is priority-starved at station '" + station +
            "' with finite-pool feedback (contraction estimate " +
            fmt_value(kappa) + " in [0.5, 1))",
        "expect slow convergence; raising '" + cls +
            "' priority or adding capacity at '" + station +
            "' restores a safe margin");
  }
}

}  // namespace

void verify_lqn_model(const lqn::Model& model, const std::string& file,
                      Diagnostics& diagnostics, const LqnSourceIndex* index) {
  // The pre-checker assumes a structurally valid (lint-clean) model; on
  // anything else it stays silent rather than crash the pre-flight — a
  // malformed model is the structural rules' finding, not ours.
  try {
    run_convergence_checks(model, file, diagnostics, index);
  } catch (const std::exception&) {
  }
}

}  // namespace epp::lint
