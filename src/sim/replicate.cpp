#include "sim/replicate.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace epp::sim {
namespace {

/// Completion-weighted average: Σ value_i · weight_i / Σ weight_i.
class WeightedMean {
 public:
  void add(double value, double weight) noexcept {
    sum_ += value * weight;
    weight_ += weight;
  }
  double get() const noexcept { return weight_ > 0.0 ? sum_ / weight_ : 0.0; }

 private:
  double sum_ = 0.0;
  double weight_ = 0.0;
};

std::size_t total_completions(const trade::RunResult& r) {
  std::size_t n = 0;
  for (const auto& [_, cr] : r.per_class) n += cr.completions;
  return n;
}

template <typename Fn>
void for_each_index(std::size_t n, util::ThreadPool* pool, const Fn& fn) {
  if (pool != nullptr && n > 1) {
    pool->parallel_for(n, fn);
  } else {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
}

}  // namespace

std::uint64_t replication_seed(std::uint64_t base, std::size_t index) {
  if (index == 0) return base;  // 1 replication == a plain run, bitwise
  util::Rng derive(base, 0x5EEDFA9ULL);
  std::uint64_t seed = base;
  for (std::size_t i = 0; i < index; ++i) seed = derive();
  return seed;
}

ReplicatedResult run_replications(const trade::TestbedConfig& config,
                                  const ReplicationOptions& options) {
  const std::size_t n = options.replications;
  if (n == 0)
    throw std::invalid_argument("run_replications: zero replications");

  ReplicatedResult out;
  out.per_replication.resize(n);
  // Each lane writes only its own slot; the merge below walks the slots in
  // index order, so the result does not depend on execution interleaving.
  for_each_index(n, options.pool, [&](std::size_t i) {
    trade::TestbedConfig rep = config;
    rep.seed = replication_seed(config.seed, i);
    out.per_replication[i] = trade::run_testbed(rep, options.keep_samples);
  });

  if (n == 1) {
    // One replication IS the plain run — copy it through untouched so the
    // result is bitwise identical (a weighted merge of one value can
    // round differently in the last ulp).
    out.summary = out.per_replication[0];
    return out;
  }

  trade::RunResult& s = out.summary;
  WeightedMean mean_rt, p90_rt, buy_frac, db_calls, miss_ratio;
  util::OnlineStats rep_means;
  std::map<std::string, WeightedMean> class_mean, class_p90;
  for (const trade::RunResult& r : out.per_replication) {
    const auto weight = static_cast<double>(total_completions(r));
    mean_rt.add(r.mean_rt_s, weight);
    p90_rt.add(r.p90_rt_s, weight);
    buy_frac.add(r.buy_request_fraction, weight);
    db_calls.add(r.db_calls_per_request, weight);
    miss_ratio.add(r.cache_miss_ratio, weight);
    s.throughput_rps += r.throughput_rps;
    s.app_cpu_utilization += r.app_cpu_utilization;
    s.db_cpu_utilization += r.db_cpu_utilization;
    s.disk_utilization += r.disk_utilization;
    s.solved_by_fluid = s.solved_by_fluid || r.solved_by_fluid;
    rep_means.add(r.mean_rt_s);
    for (const auto& [name, cr] : r.per_class) {
      trade::ClassResult& merged = s.per_class[name];
      const auto w = static_cast<double>(cr.completions);
      merged.completions += cr.completions;
      merged.throughput_rps += cr.throughput_rps;
      class_mean[name].add(cr.mean_rt_s, w);
      class_p90[name].add(cr.p90_rt_s, w);
    }
    if (options.keep_samples)
      s.rt_samples_s.insert(s.rt_samples_s.end(), r.rt_samples_s.begin(),
                            r.rt_samples_s.end());
  }
  const auto dn = static_cast<double>(n);
  s.mean_rt_s = mean_rt.get();
  s.p90_rt_s = p90_rt.get();
  s.buy_request_fraction = buy_frac.get();
  s.db_calls_per_request = db_calls.get();
  s.cache_miss_ratio = miss_ratio.get();
  s.throughput_rps /= dn;
  s.app_cpu_utilization /= dn;
  s.db_cpu_utilization /= dn;
  s.disk_utilization /= dn;
  for (auto& [name, merged] : s.per_class) {
    merged.throughput_rps /= dn;
    merged.mean_rt_s = class_mean[name].get();
    merged.p90_rt_s = class_p90[name].get();
  }
  out.mean_rt_stddev_s = rep_means.stddev();
  out.mean_rt_ci95_s = rep_means.ci95_halfwidth();
  return out;
}

ClusterReplicatedResult run_cluster_replications(
    const trade::ClusterConfig& config, const ReplicationOptions& options) {
  const std::size_t n = options.replications;
  if (n == 0)
    throw std::invalid_argument("run_cluster_replications: zero replications");

  ClusterReplicatedResult out;
  out.per_replication.resize(n);
  for_each_index(n, options.pool, [&](std::size_t i) {
    trade::ClusterConfig rep = config;
    rep.seed = replication_seed(config.seed, i);
    out.per_replication[i] = trade::run_cluster(rep);
  });

  if (n == 1) {
    out.summary = out.per_replication[0];
    return out;
  }

  trade::ClusterRunResult& s = out.summary;
  std::map<std::string, WeightedMean> bucket_mean, bucket_p90;
  std::map<std::string, WeightedMean> class_mean, class_p90;
  util::OnlineStats rep_means;
  for (const trade::ClusterRunResult& r : out.per_replication) {
    s.total_throughput_rps += r.total_throughput_rps;
    s.db_cpu_utilization += r.db_cpu_utilization;
    s.disk_utilization += r.disk_utilization;
    if (s.app_cpu_utilization.size() < r.app_cpu_utilization.size())
      s.app_cpu_utilization.resize(r.app_cpu_utilization.size(), 0.0);
    for (std::size_t k = 0; k < r.app_cpu_utilization.size(); ++k)
      s.app_cpu_utilization[k] += r.app_cpu_utilization[k];
    WeightedMean rep_rt;
    for (const auto& [name, cr] : r.per_bucket) {
      trade::ClusterClassResult& merged = s.per_bucket[name];
      const auto w = static_cast<double>(cr.completions);
      merged.completions += cr.completions;
      bucket_mean[name].add(cr.mean_rt_s, w);
      bucket_p90[name].add(cr.p90_rt_s, w);
      rep_rt.add(cr.mean_rt_s, w);
    }
    for (const auto& [name, cr] : r.per_class) {
      trade::ClusterClassResult& merged = s.per_class[name];
      const auto w = static_cast<double>(cr.completions);
      merged.completions += cr.completions;
      class_mean[name].add(cr.mean_rt_s, w);
      class_p90[name].add(cr.p90_rt_s, w);
    }
    rep_means.add(rep_rt.get());
  }
  const auto dn = static_cast<double>(n);
  s.total_throughput_rps /= dn;
  s.db_cpu_utilization /= dn;
  s.disk_utilization /= dn;
  for (double& u : s.app_cpu_utilization) u /= dn;
  for (auto& [name, merged] : s.per_bucket) {
    merged.mean_rt_s = bucket_mean[name].get();
    merged.p90_rt_s = bucket_p90[name].get();
  }
  for (auto& [name, merged] : s.per_class) {
    merged.mean_rt_s = class_mean[name].get();
    merged.p90_rt_s = class_p90[name].get();
  }
  out.mean_rt_stddev_s = rep_means.stddev();
  out.mean_rt_ci95_s = rep_means.ci95_halfwidth();
  return out;
}

}  // namespace epp::sim
