// Corpus: EPP-DET-005 — default-seeded util::Rng in library code. Every
// caller silently shares kDefaultSeed, so "independent" replications
// collapse onto one stream.
#include "util/rng.hpp"

namespace lint_corpus {

inline epp::util::Rng ambient_rng;

inline double ambient_draw() {
  return ambient_rng.uniform();
}

}  // namespace lint_corpus
